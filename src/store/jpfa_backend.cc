#include "src/store/jpfa_backend.h"

namespace jnvm::store {

JpfaBackend::JpfaBackend(core::JnvmRuntime* rt, const std::string& root_name,
                         uint64_t initial_capacity)
    : rt_(rt) {
  map_ = rt->root().GetAs<pdt::PStringHashMap>(root_name);
  if (map_ == nullptr) {
    map_ = std::make_shared<pdt::PStringHashMap>(*rt, initial_capacity);
    map_->Pwb();
    rt->root().Put(root_name, map_.get());
  }
  map_->SetCaching(pdt::ProxyCaching::kCached);
}

bool JpfaBackend::DoPut(const std::string& key, const Record& r) {
  // The whole operation — record allocation, key allocation, publication —
  // is one failure-atomic block, as the generator would emit for a
  // @Persistent(fa="non-private") store class (§2.5).
  std::lock_guard<std::mutex> lk(op_mu_);
  core::FaBlock fa(*rt_);
  PRecord rec(*rt_, r);
  return map_->Put(key, &rec);
}

bool JpfaBackend::DoGet(const std::string& key, Record* out) {
  std::lock_guard<std::mutex> lk(op_mu_);
  core::FaBlock fa(*rt_);
  const auto rec = map_->GetAs<PRecord>(key);
  if (rec == nullptr) {
    return false;
  }
  *out = rec->ToRecord();
  return true;
}

bool JpfaBackend::DoUpdateField(const std::string& key, size_t field,
                                const std::string& value) {
  std::lock_guard<std::mutex> lk(op_mu_);
  core::FaBlock fa(*rt_);
  const auto rec = map_->GetAs<PRecord>(key);
  if (rec == nullptr || field >= rec->NumFields()) {
    return false;
  }
  if (value.size() > rec->FieldCapacity()) {
    // Oversized value (server-driven update): replace the whole record
    // inside the same failure-atomic block.
    Record full = rec->ToRecord();
    full.fields[field] = value;
    PRecord bigger(*rt_, full);
    map_->Put(key, &bigger);
    return true;
  }
  // Atomic via the enclosing block: the write lands in an in-flight copy
  // and is committed by the redo log (§4.2).
  rec->SetFieldWeak(field, value);
  return true;
}

bool JpfaBackend::DoDelete(const std::string& key) {
  std::lock_guard<std::mutex> lk(op_mu_);
  core::FaBlock fa(*rt_);
  return map_->Remove(key, /*free_value=*/true);
}

size_t JpfaBackend::Size() { return map_->Size(); }

bool JpfaBackend::SnapshotRecords(
    const std::function<void(const std::string&, const Record&)>& fn) {
  std::lock_guard<std::mutex> lk(op_mu_);
  core::FaBlock fa(*rt_);  // reads of in-flight copies stay consistent
  map_->ForEach([&](const std::string& key, core::Handle<core::PObject> v) {
    fn(key, std::static_pointer_cast<PRecord>(v)->ToRecord());
  });
  return true;
}

bool JpfaBackend::DoTouch(const std::string& key) {
  std::lock_guard<std::mutex> lk(op_mu_);
  core::FaBlock fa(*rt_);
  const auto rec = map_->GetAs<PRecord>(key);
  if (rec == nullptr) {
    return false;
  }
  volatile uint32_t sink = rec->NumFields();
  (void)sink;
  return true;
}

}  // namespace jnvm::store
