// Persistence backend interface for the key-value store (§5.1).
//
// One implementation per backend the paper evaluates: J-PDT, J-PFA, FS
// (ext4-DAX on NVMM), PCJ (PMDK over a simulated JNI), plus the dummy
// baselines TmpFS, NullFS and Volatile.
//
// All persistent backends are write-through: an operation is durable when it
// returns (Infinispan "uses a write-through policy for durability" —
// Figure 9a discussion).
#ifndef JNVM_SRC_STORE_BACKEND_H_
#define JNVM_SRC_STORE_BACKEND_H_

#include <string>

#include "src/store/record.h"

namespace jnvm::store {

class Backend {
 public:
  virtual ~Backend() = default;

  virtual std::string name() const = 0;

  // Insert-or-replace.
  virtual void Put(const std::string& key, const Record& r) = 0;
  // Returns false when absent.
  virtual bool Get(const std::string& key, Record* out) = 0;
  // Field-granular update (YCSB updates touch a single field). Returns
  // false when the key is absent. Backends without sub-record granularity
  // (file systems, PCJ) pay their natural read-modify-write cost here.
  virtual bool UpdateField(const std::string& key, size_t field,
                           const std::string& value) = 0;
  virtual bool Delete(const std::string& key) = 0;
  virtual size_t Size() = 0;

  // YCSB read against a "persistent values" client (§5.2: the modified
  // Infinispan client hands the application persistent keys and values):
  // J-NVM backends return a proxy and touch one field — no conversion of
  // the whole record. Marshalling backends have no such shortcut and
  // materialize the record (the default).
  virtual bool Touch(const std::string& key) {
    Record tmp;
    return Get(key, &tmp);
  }
};

}  // namespace jnvm::store

#endif  // JNVM_SRC_STORE_BACKEND_H_
