// Persistence backend interface for the key-value store (§5.1).
//
// One implementation per backend the paper evaluates: J-PDT, J-PFA, FS
// (ext4-DAX on NVMM), PCJ (PMDK over a simulated JNI), plus the dummy
// baselines TmpFS, NullFS and Volatile.
//
// All persistent backends are write-through: an operation is durable when it
// returns (Infinispan "uses a write-through policy for durability" —
// Figure 9a discussion). Under a heap group-commit batch (src/server fence
// batching) the durability point moves to the batch's Psync instead.
//
// The public entry points are non-virtual and count every operation into
// OpStats (puts/gets/updates/deletes and payload bytes) before delegating to
// the Do* virtuals — the counters feed the server's STATS command, the
// loadgen report and the Figure 7 harness.
#ifndef JNVM_SRC_STORE_BACKEND_H_
#define JNVM_SRC_STORE_BACKEND_H_

#include <atomic>
#include <functional>
#include <string>

#include "src/store/record.h"

namespace jnvm::store {

// Per-backend operation counters. Snapshot type returned by stats().
struct OpStats {
  uint64_t puts = 0;
  uint64_t gets = 0;        // Get + Touch calls
  uint64_t get_misses = 0;  // absent-key Gets/Touches
  uint64_t updates = 0;     // field-granular updates
  uint64_t deletes = 0;     // only those that removed a key
  uint64_t bytes_written = 0;  // record/field payload bytes through Put/Update
  uint64_t bytes_read = 0;     // record payload bytes returned by Get

  uint64_t ops() const { return puts + gets + updates + deletes; }
};

class Backend {
 public:
  virtual ~Backend() = default;

  virtual std::string name() const = 0;
  virtual size_t Size() = 0;

  // Insert-or-replace; true when the key was newly inserted (false =
  // replaced). The signal feeds the server's per-slot key accounting
  // (DESIGN.md §10) — a slot migration needs to know how many keys a slot
  // holds without scanning the whole store.
  bool Put(const std::string& key, const Record& r) {
    puts_.fetch_add(1, std::memory_order_relaxed);
    bytes_written_.fetch_add(r.TotalBytes(), std::memory_order_relaxed);
    return DoPut(key, r);
  }

  // Returns false when absent.
  bool Get(const std::string& key, Record* out) {
    gets_.fetch_add(1, std::memory_order_relaxed);
    if (!DoGet(key, out)) {
      get_misses_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    bytes_read_.fetch_add(out->TotalBytes(), std::memory_order_relaxed);
    return true;
  }

  // Field-granular update (YCSB updates touch a single field). Returns
  // false when the key is absent. Backends without sub-record granularity
  // (file systems, PCJ) pay their natural read-modify-write cost here.
  bool UpdateField(const std::string& key, size_t field, const std::string& value) {
    updates_.fetch_add(1, std::memory_order_relaxed);
    if (!DoUpdateField(key, field, value)) {
      return false;
    }
    bytes_written_.fetch_add(value.size(), std::memory_order_relaxed);
    return true;
  }

  bool Delete(const std::string& key) {
    if (!DoDelete(key)) {
      return false;
    }
    deletes_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  // YCSB read against a "persistent values" client (§5.2: the modified
  // Infinispan client hands the application persistent keys and values):
  // J-NVM backends return a proxy and touch one field — no conversion of
  // the whole record. Marshalling backends have no such shortcut and
  // materialize the record (the DoTouch default).
  bool Touch(const std::string& key) {
    gets_.fetch_add(1, std::memory_order_relaxed);
    if (!DoTouch(key)) {
      get_misses_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    return true;
  }

  // Replication bootstrap (REPLSNAP): materializes every record through
  // `fn`. Returns false for backends without full-iteration support. Not
  // counted in OpStats — snapshot transfer is not client traffic.
  virtual bool SnapshotRecords(
      const std::function<void(const std::string&, const Record&)>& fn) {
    (void)fn;
    return false;
  }

  OpStats stats() const {
    OpStats s;
    s.puts = puts_.load(std::memory_order_relaxed);
    s.gets = gets_.load(std::memory_order_relaxed);
    s.get_misses = get_misses_.load(std::memory_order_relaxed);
    s.updates = updates_.load(std::memory_order_relaxed);
    s.deletes = deletes_.load(std::memory_order_relaxed);
    s.bytes_written = bytes_written_.load(std::memory_order_relaxed);
    s.bytes_read = bytes_read_.load(std::memory_order_relaxed);
    return s;
  }

  void ResetStats() {
    puts_ = gets_ = get_misses_ = updates_ = deletes_ = 0;
    bytes_written_ = bytes_read_ = 0;
  }

 protected:
  // Returns true when the key was newly inserted.
  virtual bool DoPut(const std::string& key, const Record& r) = 0;
  virtual bool DoGet(const std::string& key, Record* out) = 0;
  virtual bool DoUpdateField(const std::string& key, size_t field,
                             const std::string& value) = 0;
  virtual bool DoDelete(const std::string& key) = 0;
  virtual bool DoTouch(const std::string& key) {
    Record tmp;
    return DoGet(key, &tmp);
  }

 private:
  std::atomic<uint64_t> puts_{0}, gets_{0}, get_misses_{0};
  std::atomic<uint64_t> updates_{0}, deletes_{0};
  std::atomic<uint64_t> bytes_written_{0}, bytes_read_{0};
};

}  // namespace jnvm::store

#endif  // JNVM_SRC_STORE_BACKEND_H_
