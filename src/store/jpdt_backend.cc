#include "src/store/jpdt_backend.h"

namespace jnvm::store {

JpdtBackend::JpdtBackend(core::JnvmRuntime* rt, const std::string& root_name,
                         uint64_t initial_capacity)
    : rt_(rt) {
  map_ = rt->root().GetAs<pdt::PStringHashMap>(root_name);
  if (map_ == nullptr) {
    map_ = std::make_shared<pdt::PStringHashMap>(*rt, initial_capacity);
    map_->Pwb();
    rt->root().Put(root_name, map_.get());
  }
  // Value proxies are cached (§4.3.2 cached maps): re-association — walking
  // an object's block chain on every retrieval — is what the cache avoids.
  map_->SetCaching(pdt::ProxyCaching::kCached);
}

bool JpdtBackend::DoPut(const std::string& key, const Record& r) {
  PRecord rec(*rt_, r);
  // The map validates, fences and publishes (and frees a replaced value).
  return map_->Put(key, &rec);
}

bool JpdtBackend::DoGet(const std::string& key, Record* out) {
  const auto rec = map_->GetAs<PRecord>(key);
  if (rec == nullptr) {
    return false;
  }
  *out = rec->ToRecord();  // no unmarshalling: direct field reads
  return true;
}

bool JpdtBackend::DoUpdateField(const std::string& key, size_t field,
                                const std::string& value) {
  const auto rec = map_->GetAs<PRecord>(key);
  if (rec == nullptr || field >= rec->NumFields()) {
    return false;
  }
  if (value.size() > rec->FieldCapacity()) {
    // The new value does not fit the record's fixed field cells (possible
    // for server-driven updates with arbitrary sizes): fall back to a
    // full-record replace with larger capacity.
    Record full = rec->ToRecord();
    full.fields[field] = value;
    PRecord bigger(*rt_, full);
    map_->Put(key, &bigger);
    return true;
  }
  rec->SetField(field, value);  // touches only this field's bytes
  return true;
}

bool JpdtBackend::DoDelete(const std::string& key) {
  return map_->Remove(key, /*free_value=*/true);
}

size_t JpdtBackend::Size() { return map_->Size(); }

bool JpdtBackend::SnapshotRecords(
    const std::function<void(const std::string&, const Record&)>& fn) {
  map_->ForEach([&](const std::string& key, core::Handle<core::PObject> v) {
    fn(key, std::static_pointer_cast<PRecord>(v)->ToRecord());
  });
  return true;
}

bool JpdtBackend::DoTouch(const std::string& key) {
  const auto rec = map_->GetAs<PRecord>(key);
  if (rec == nullptr) {
    return false;
  }
  volatile uint32_t sink = rec->NumFields();  // one proxy-mediated access
  (void)sink;
  return true;
}

}  // namespace jnvm::store
