// Records and marshalling.
//
// A record is the YCSB data unit: N fields of fixed length (10 × 100 B by
// default, §5.2). The marshaller converts records to/from a byte image —
// the conversion cost that dominates the file-system backends (Figure 8:
// "the main cost comes from data marshalling and not from the file system
// itself").
//
// Wire format: u32 nfields, then per field { u32 len, bytes }.
#ifndef JNVM_SRC_STORE_RECORD_H_
#define JNVM_SRC_STORE_RECORD_H_

#include <string>
#include <string_view>
#include <vector>

namespace jnvm::store {

struct Record {
  std::vector<std::string> fields;

  size_t TotalBytes() const {
    size_t n = 0;
    for (const std::string& f : fields) {
      n += f.size();
    }
    return n;
  }

  bool operator==(const Record&) const = default;
};

// Serializes `r` into `out` (replacing its contents).
void MarshalRecord(const Record& r, std::string* out);

// Parses an image produced by MarshalRecord. Returns false on corruption.
bool UnmarshalRecord(std::string_view image, Record* out);

// Size of the marshalled image without building it.
size_t MarshalledSize(const Record& r);

// Byte offset of field `i`'s payload inside a marshalled image whose fields
// all have fixed length `field_len` (used by the PCJ backend for in-place
// field updates).
size_t MarshalledFieldOffset(size_t i, size_t field_len);

// Builds a deterministic record for (key_index, generation) — the YCSB
// value generator used by loaders and checkers.
Record SyntheticRecord(uint64_t key_index, uint64_t generation, uint32_t nfields,
                       uint32_t field_len);

// Cost model for *Java* object serialization (JBoss Marshalling in
// Infinispan). The C++ marshaller above does the real copying, but the
// paper's marshalling cost is dominated by JVM work (reflection, object
// graph walking, boxing) that has no C++ equivalent — so benchmarks charge
// it explicitly as a calibrated busy-wait (see DESIGN.md §2). Zero by
// default: tests and correctness paths pay nothing.
struct SerCostModel {
  uint32_t marshal_base_ns = 0;
  uint32_t marshal_per_field_ns = 0;
  uint32_t marshal_per_kb_ns = 0;
  uint32_t unmarshal_base_ns = 0;
  uint32_t unmarshal_per_field_ns = 0;
  uint32_t unmarshal_per_kb_ns = 0;

  uint64_t MarshalNs(size_t fields, size_t bytes) const {
    return marshal_base_ns + marshal_per_field_ns * static_cast<uint64_t>(fields) +
           marshal_per_kb_ns * (static_cast<uint64_t>(bytes) / 1024);
  }
  uint64_t UnmarshalNs(size_t fields, size_t bytes) const {
    return unmarshal_base_ns +
           unmarshal_per_field_ns * static_cast<uint64_t>(fields) +
           unmarshal_per_kb_ns * (static_cast<uint64_t>(bytes) / 1024);
  }

  // Calibrated against §5.3.1: FS read ~32.5 us at 0% cache, update ~71 us,
  // growing to ~71 ms at 10k fields (9c) and ~6.5 ms at 1 MB records (9d).
  static SerCostModel JavaLike() {
    SerCostModel m;
    m.marshal_base_ns = 4'000;
    m.marshal_per_field_ns = 1'200;
    m.marshal_per_kb_ns = 2'000;
    m.unmarshal_base_ns = 6'000;
    m.unmarshal_per_field_ns = 1'800;
    m.unmarshal_per_kb_ns = 3'000;
    return m;
  }
};

}  // namespace jnvm::store

#endif  // JNVM_SRC_STORE_RECORD_H_
