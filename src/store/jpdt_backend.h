// J-PDT backend (§5.1): the store's records live in a PStringHashMap from
// the J-PDT library with PRecord values. Hand-crafted crash consistency, no
// failure-atomic blocks — the fastest backend in Figure 7.
#ifndef JNVM_SRC_STORE_JPDT_BACKEND_H_
#define JNVM_SRC_STORE_JPDT_BACKEND_H_

#include "src/pdt/pmap.h"
#include "src/store/backend.h"
#include "src/store/precord.h"

namespace jnvm::store {

class JpdtBackend final : public Backend {
 public:
  // Binds to (or creates) the map registered under `root_name` in the
  // runtime's root map.
  JpdtBackend(core::JnvmRuntime* rt, const std::string& root_name = "store",
              uint64_t initial_capacity = 1024);

  std::string name() const override { return "J-PDT"; }
  size_t Size() override;
  bool SnapshotRecords(
      const std::function<void(const std::string&, const Record&)>& fn) override;

  pdt::PStringHashMap& map() { return *map_; }

 protected:
  bool DoPut(const std::string& key, const Record& r) override;
  bool DoGet(const std::string& key, Record* out) override;
  bool DoUpdateField(const std::string& key, size_t field,
                     const std::string& value) override;
  bool DoDelete(const std::string& key) override;
  // Proxy read: resurrect (or hit the proxy cache) and touch one field.
  bool DoTouch(const std::string& key) override;

 private:
  core::JnvmRuntime* rt_;
  core::Handle<pdt::PStringHashMap> map_;
};

}  // namespace jnvm::store

#endif  // JNVM_SRC_STORE_JPDT_BACKEND_H_
