// PRecord — the persistent record value used by the J-NVM backends.
//
// The record's fields live off-heap; field reads and writes go straight to
// NVMM through the proxy, with no marshalling (the core advantage over the
// FS backends, §5.2). A field update touches only that field's bytes —
// which is why J-PDT update latency barely moves with the number of fields
// in Figure 9c while FS explodes.
//
// Layout: u32 nfields, u32 field_capacity, then per field
// { u32 len, bytes[field_capacity] } at stride 4 + field_capacity.
#ifndef JNVM_SRC_STORE_PRECORD_H_
#define JNVM_SRC_STORE_PRECORD_H_

#include "src/core/pobject.h"
#include "src/core/runtime.h"
#include "src/store/record.h"

namespace jnvm::store {

class PRecord final : public core::PObject {
 public:
  static const core::ClassInfo* Class();

  explicit PRecord(core::Resurrect) {}
  // field_capacity must be >= every field length of r.
  PRecord(core::JnvmRuntime& rt, const Record& r, uint32_t field_capacity);
  // Convenience: capacity = max field length.
  PRecord(core::JnvmRuntime& rt, const Record& r);

  uint32_t NumFields() const { return ReadField<uint32_t>(kNumFieldsOff); }
  uint32_t FieldCapacity() const { return ReadField<uint32_t>(kFieldCapOff); }

  std::string GetField(size_t i) const;
  // In-place write of one field (+ write-back queue + fence: durable on
  // return). Atomicity is at field granularity; callers needing multi-field
  // atomicity wrap the calls in a failure-atomic block.
  void SetField(size_t i, std::string_view value);
  // Field write without the trailing fence (failure-atomic callers).
  void SetFieldWeak(size_t i, std::string_view value);

  Record ToRecord() const;

  static size_t PayloadBytesFor(uint32_t nfields, uint32_t field_capacity) {
    return kFieldsOff + static_cast<size_t>(nfields) * (4 + field_capacity);
  }

 private:
  static constexpr size_t kNumFieldsOff = 0;
  static constexpr size_t kFieldCapOff = 4;
  static constexpr size_t kFieldsOff = 8;

  size_t FieldOff(size_t i) const {
    return kFieldsOff + i * (4ull + FieldCapacity());
  }
};

}  // namespace jnvm::store

#endif  // JNVM_SRC_STORE_PRECORD_H_
