#include "src/store/volatile_backend.h"

namespace jnvm::store {

namespace {
void DeleteRecord(void* p) { delete static_cast<Record*>(p); }
}  // namespace

gcsim::ObjRef VolatileBackend::MakeRecordNode(const Record& r) {
  // One node per record plus one ballast child per field: the GC traces a
  // graph shaped like the Java object graph. AllocGraph links the children
  // atomically so a collection never sweeps the half-built record.
  auto* copy = new Record(r);
  std::vector<uint64_t> child_bytes;
  child_bytes.reserve(r.fields.size());
  for (const std::string& f : r.fields) {
    child_bytes.push_back(f.size() + 48);
  }
  return heap_->AllocGraph(64, child_bytes, copy, &DeleteRecord);
}

bool VolatileBackend::DoPut(const std::string& key, const Record& r) {
  const gcsim::ObjRef node = MakeRecordNode(r);
  std::lock_guard<std::mutex> lk(mu_);
  auto it = index_.find(key);
  bool inserted = false;
  if (it != index_.end()) {
    heap_->RemoveRoot(it->second);  // old record becomes garbage
    it->second = node;
  } else {
    index_.emplace(key, node);
    inserted = true;
  }
  heap_->AddRoot(node);
  return inserted;
}

bool VolatileBackend::DoGet(const std::string& key, Record* out) {
  gcsim::ObjRef node;
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = index_.find(key);
    if (it == index_.end()) {
      return false;
    }
    node = it->second;
  }
  *out = *static_cast<Record*>(heap_->External(node));
  return true;
}

bool VolatileBackend::DoUpdateField(const std::string& key, size_t field,
                                  const std::string& value) {
  gcsim::ObjRef node;
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = index_.find(key);
    if (it == index_.end()) {
      return false;
    }
    node = it->second;
  }
  auto* rec = static_cast<Record*>(heap_->External(node));
  if (field >= rec->fields.size()) {
    return false;
  }
  rec->fields[field] = value;
  // The updated field is a fresh object; the old one floats until the GC
  // runs — the allocation churn of a managed runtime.
  heap_->AllocInto(node, static_cast<uint32_t>(field), value.size() + 48);
  return true;
}

bool VolatileBackend::DoDelete(const std::string& key) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    return false;
  }
  heap_->RemoveRoot(it->second);
  index_.erase(it);
  return true;
}

size_t VolatileBackend::Size() {
  std::lock_guard<std::mutex> lk(mu_);
  return index_.size();
}

}  // namespace jnvm::store
