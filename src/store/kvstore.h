// KvStore — the Infinispan-like embedded data store (§5.1).
//
// Structure copied from the evaluation setup: a volatile cache in front of a
// pluggable persistence backend. The cache holds up to cache_ratio ×
// expected_records entries as managed objects in the (garbage-collected)
// gcsim heap — exactly the Java-heap pressure of the original. Writes are
// write-through (durability in the critical path, Figure 9a); reads hit the
// cache first and populate it on miss. Accesses are protected by striped
// locks ("accesses to the persistent state are protected by the locks of
// Infinispan", §5.3.2).
//
// For J-NVM backends the paper disables caching ("it is disabled in all our
// experiments using J-NVM as a backend") — pass cache_ratio = 0.
#ifndef JNVM_SRC_STORE_KVSTORE_H_
#define JNVM_SRC_STORE_KVSTORE_H_

#include <atomic>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "src/gcsim/managed_heap.h"
#include "src/store/backend.h"

namespace jnvm::store {

struct StoreOptions {
  double cache_ratio = 0.10;
  uint64_t expected_records = 0;  // cache capacity = ratio × expected
  uint32_t lock_stripes = 64;
};

struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t entries = 0;
};

class KvStore {
 public:
  // `gc_heap` may be null when cache_ratio == 0 (J-NVM backends).
  KvStore(Backend* backend, gcsim::ManagedHeap* gc_heap, const StoreOptions& opts);
  ~KvStore();

  Backend& backend() { return *backend_; }

  bool Read(const std::string& key, Record* out);
  // YCSB read with persistent-values semantics: J-NVM backends touch a
  // proxy instead of materializing the record; cache-fronted backends
  // behave exactly like Read.
  bool ReadTouch(const std::string& key);
  // Insert-or-replace; true when the key was newly inserted.
  bool Insert(const std::string& key, const Record& r);
  // Full-record replace (same insert signal as Insert).
  bool Put(const std::string& key, const Record& r);
  // Field-granular update (the YCSB update op).
  bool Update(const std::string& key, size_t field, const std::string& value);
  bool Delete(const std::string& key);
  // Read-modify-write (YCSB rmw): read all fields, update one.
  bool ReadModifyWrite(const std::string& key, size_t field, const std::string& value);

  // Replica apply path (DESIGN.md §8): re-applies an operation decoded from
  // a replication batch frame. Skips the stripe locks — the replica's shard
  // worker is the store's only writer — and goes straight to the backend;
  // cache entries (when enabled) are invalidated, not re-rendered, since a
  // follower's cache is read-driven. Idempotent: frames carry state-setting
  // operations, so re-applying after a crash or resync converges.
  bool ApplyPut(const std::string& key, const Record& r);
  bool ApplyUpdate(const std::string& key, size_t field, const std::string& value);
  bool ApplyDelete(const std::string& key);

  // Restart path (Figure 11): reload up to the cache capacity eagerly, like
  // Infinispan rebuilding its cache from the store.
  size_t WarmCache(const std::vector<std::string>& keys);

  CacheStats cache_stats() const;

 private:
  struct CacheEntry {
    gcsim::ObjRef node = 0;
    std::list<std::string>::iterator lru_it;
  };

  std::mutex& StripeFor(const std::string& key);
  gcsim::ObjRef MakeRecordNode(const Record& r);
  bool cache_enabled() const { return capacity_ > 0 && gc_heap_ != nullptr; }

  // All cache helpers require cache_mu_.
  bool CacheGetLocked(const std::string& key, Record* out);
  void CacheInsertLocked(const std::string& key, const Record& r);
  void CacheUpdateFieldLocked(const std::string& key, size_t field,
                              const std::string& value);
  void CacheEraseLocked(const std::string& key);

  Backend* backend_;
  gcsim::ManagedHeap* gc_heap_;
  uint64_t capacity_;
  std::vector<std::unique_ptr<std::mutex>> stripes_;

  std::mutex cache_mu_;
  std::unordered_map<std::string, CacheEntry> cache_;
  std::list<std::string> lru_;  // front = most recent

  std::atomic<uint64_t> hits_{0}, misses_{0}, evictions_{0};
};

}  // namespace jnvm::store

#endif  // JNVM_SRC_STORE_KVSTORE_H_
