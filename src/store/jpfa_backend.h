// J-PFA backend (§5.1): "The J-PFA and J-PDT backends use the same code
// base" — the same map structure, but every store operation runs inside a
// failure-atomic block instead of relying on the hand-crafted publication
// protocol. The convenience cost (redo log, in-flight block copies, commit
// fences) is what Figure 7 quantifies against J-PDT.
#ifndef JNVM_SRC_STORE_JPFA_BACKEND_H_
#define JNVM_SRC_STORE_JPFA_BACKEND_H_

#include <mutex>

#include "src/pdt/pmap.h"
#include "src/store/backend.h"
#include "src/store/precord.h"

namespace jnvm::store {

class JpfaBackend final : public Backend {
 public:
  JpfaBackend(core::JnvmRuntime* rt, const std::string& root_name = "store.jpfa",
              uint64_t initial_capacity = 1024);

  std::string name() const override { return "J-PFA"; }
  size_t Size() override;
  bool SnapshotRecords(
      const std::function<void(const std::string&, const Record&)>& fn) override;

  pdt::PStringHashMap& map() { return *map_; }

 protected:
  bool DoPut(const std::string& key, const Record& r) override;
  bool DoGet(const std::string& key, Record* out) override;
  bool DoUpdateField(const std::string& key, size_t field,
                     const std::string& value) override;
  bool DoDelete(const std::string& key) override;
  bool DoTouch(const std::string& key) override;

 private:
  core::JnvmRuntime* rt_;
  core::Handle<pdt::PStringHashMap> map_;
  // Serializes whole operations: concurrent failure-atomic blocks must not
  // hold diverging in-flight copies of shared map blocks (§4.4).
  std::mutex op_mu_;
};

}  // namespace jnvm::store

#endif  // JNVM_SRC_STORE_JPFA_BACKEND_H_
