#include "src/store/jpfa_map.h"

namespace jnvm::store {

const core::ClassInfo* JpfaEntry::Class() {
  static const core::ClassInfo* info = RegisterClass(
      core::MakeClassInfo<JpfaEntry>("jnvm.store.JpfaEntry", &JpfaEntry::Trace));
  return info;
}

void JpfaEntry::Trace(core::ObjectView& view, core::RefVisitor& v) {
  v.VisitRef(view, kKeyOff);
  v.VisitRef(view, kValueOff);
  v.VisitRef(view, kNextOff);
}

const core::ClassInfo* JpfaHashMap::Class() {
  static const core::ClassInfo* info = RegisterClass(
      core::MakeClassInfo<JpfaHashMap>("jnvm.store.JpfaHashMap", &JpfaHashMap::Trace));
  return info;
}

void JpfaHashMap::Trace(core::ObjectView& view, core::RefVisitor& v) {
  v.VisitRef(view, kBucketsOff);
}

JpfaHashMap::JpfaHashMap(core::JnvmRuntime& rt, uint64_t nbuckets) {
  AllocatePersistent(rt, Class(), 16);
  auto buckets = std::make_shared<core::PRefArray>(rt, nbuckets);
  buckets->Validate();
  WritePObject(kBucketsOff, buckets.get());
  WriteField<uint64_t>(kSizeOff, 0);
  PwbField(0, 16);
  buckets_ = std::move(buckets);
}

core::Handle<JpfaEntry> JpfaHashMap::FindLocked(const std::string& key,
                                                uint64_t* bucket,
                                                core::Handle<JpfaEntry>* prev) {
  *bucket = std::hash<std::string>()(key) % buckets_->capacity();
  if (prev != nullptr) {
    prev->reset();
  }
  nvm::Offset cur = buckets_->GetRaw(*bucket);
  core::Handle<JpfaEntry> prev_entry;
  while (cur != 0) {
    auto entry = runtime().ResurrectRefAs<JpfaEntry>(cur);
    if (entry->Key()->Equals(key)) {
      if (prev != nullptr) {
        *prev = prev_entry;
      }
      return entry;
    }
    prev_entry = entry;
    cur = entry->NextRaw();
  }
  return nullptr;
}

core::Handle<core::PObject> JpfaHashMap::Get(const std::string& key) {
  core::JnvmRuntime& rt = runtime();
  std::lock_guard<std::mutex> lk(mu_);
  core::FaBlock fa(rt);  // generated methods are failure-atomic (§2.5)
  uint64_t bucket;
  auto entry = FindLocked(key, &bucket, nullptr);
  return entry == nullptr ? nullptr : entry->Value();
}

void JpfaHashMap::Put(const std::string& key, core::PObject* value, bool free_old) {
  core::JnvmRuntime& rt = runtime();
  std::lock_guard<std::mutex> lk(mu_);
  rt.FaStart();
  uint64_t bucket;
  auto entry = FindLocked(key, &bucket, nullptr);
  if (entry != nullptr) {
    const nvm::Offset old = entry->ValueRaw();
    entry->SetValue(value);
    if (free_old && old != 0) {
      rt.FreeRef(old);  // deferred to commit inside the block
    }
  } else {
    pdt::PString k(rt, key);
    JpfaEntry fresh(rt, &k, value, buckets_->GetRaw(bucket));
    buckets_->Set(bucket, &fresh);
    WriteField<uint64_t>(kSizeOff, ReadField<uint64_t>(kSizeOff) + 1);
  }
  rt.FaEnd();
}

bool JpfaHashMap::Remove(const std::string& key, bool free_value) {
  core::JnvmRuntime& rt = runtime();
  std::lock_guard<std::mutex> lk(mu_);
  rt.FaStart();
  uint64_t bucket;
  core::Handle<JpfaEntry> prev;
  auto entry = FindLocked(key, &bucket, &prev);
  if (entry == nullptr) {
    rt.FaEnd();
    return false;
  }
  if (prev == nullptr) {
    buckets_->SetRaw(bucket, entry->NextRaw());
  } else {
    prev->SetNextRaw(entry->NextRaw());
  }
  const nvm::Offset kref = entry->KeyRaw();
  const nvm::Offset vref = entry->ValueRaw();
  if (kref != 0) {
    rt.FreeRef(kref);
  }
  if (free_value && vref != 0) {
    rt.FreeRef(vref);
  }
  rt.Free(*entry);
  WriteField<uint64_t>(kSizeOff, ReadField<uint64_t>(kSizeOff) - 1);
  rt.FaEnd();
  return true;
}

bool JpfaHashMap::WithValue(const std::string& key,
                            const std::function<void(core::PObject&)>& fn) {
  core::JnvmRuntime& rt = runtime();
  std::lock_guard<std::mutex> lk(mu_);
  rt.FaStart();
  uint64_t bucket;
  auto entry = FindLocked(key, &bucket, nullptr);
  if (entry == nullptr) {
    rt.FaEnd();
    return false;
  }
  auto value = entry->Value();
  if (value == nullptr) {
    rt.FaEnd();
    return false;
  }
  fn(*value);
  rt.FaEnd();
  return true;
}

uint64_t JpfaHashMap::Size() {
  core::JnvmRuntime& rt = runtime();
  std::lock_guard<std::mutex> lk(mu_);
  core::FaBlock fa(rt);
  return ReadField<uint64_t>(kSizeOff);
}

}  // namespace jnvm::store
