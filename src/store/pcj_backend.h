// PCJ backend (§5.1): Persistent Collections for Java over PMDK via JNI.
//
// The paper attributes PCJ's poor showing (13.8×–22.7× slower than J-PDT in
// Figure 7) to two costs, both modelled here with real work plus a
// calibrated delay:
//   1. every access crosses the Java Native Interface, which "requires
//      heavy synchronization to call a native method" — one crossing per
//      operation plus one per field touched (PCJ stores fields as separate
//      persistent cells), charged as a busy-wait of kJniCrossingNs under a
//      global lock (JNI synchronizes the whole JVM);
//   2. mutations run PMDK undo-log transactions (src/pmdkx): snapshot +
//      fence per modified range, fences at commit.
//
// Data layout in the pmdkx pool: a fixed bucket table of entry chains,
// entry = {u64 next, u32 klen, u32 vcap, u32 vlen, key bytes, value image}.
#ifndef JNVM_SRC_STORE_PCJ_BACKEND_H_
#define JNVM_SRC_STORE_PCJ_BACKEND_H_

#include <mutex>

#include "src/pmdkx/pmdk_pool.h"
#include "src/store/backend.h"

namespace jnvm::store {

struct PcjOptions {
  uint64_t nbuckets = 4096;
  // Cost of one JNI crossing (synchronization + argument marshalling).
  uint32_t jni_crossing_ns = 3000;
  // Fields per record (for per-field crossing charges on get/put).
  uint32_t fields_per_record = 10;
};

class PcjBackend final : public Backend {
 public:
  PcjBackend(pmdkx::PmdkPool* pool, const PcjOptions& opts);

  std::string name() const override { return "PCJ"; }
  size_t Size() override;

  uint64_t jni_crossings() const { return crossings_; }

 protected:
  bool DoPut(const std::string& key, const Record& r) override;
  bool DoGet(const std::string& key, Record* out) override;
  bool DoUpdateField(const std::string& key, size_t field,
                     const std::string& value) override;
  bool DoDelete(const std::string& key) override;

 private:
  // Entry header layout (pool-relative).
  static constexpr size_t kNextOff = 0;
  static constexpr size_t kKlenOff = 8;
  static constexpr size_t kVcapOff = 12;
  static constexpr size_t kVlenOff = 16;
  static constexpr size_t kDataOff = 20;

  void ChargeJni(uint32_t crossings);
  nvm::Offset BucketOff(uint64_t bucket) const;
  // Returns entry offset (0 if absent); *prev gets the predecessor.
  nvm::Offset Find(const std::string& key, uint64_t* bucket, nvm::Offset* prev);
  std::string ReadKey(nvm::Offset entry);
  std::string ReadValue(nvm::Offset entry);

  pmdkx::PmdkPool* pool_;
  PcjOptions opts_;
  std::mutex jvm_mu_;  // JNI synchronizes the whole JVM (§5.2)
  nvm::Offset table_;  // bucket table offset
  size_t size_ = 0;
  uint64_t crossings_ = 0;
};

}  // namespace jnvm::store

#endif  // JNVM_SRC_STORE_PCJ_BACKEND_H_
