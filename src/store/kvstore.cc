#include "src/store/kvstore.h"

namespace jnvm::store {

namespace {
void DeleteRecord(void* p) { delete static_cast<Record*>(p); }
}  // namespace

// Allocates a managed record object shaped like its Java original: one node
// per record plus one ballast child per field, so the collector's tracing
// work scales with the object graph exactly as in the JVM (§2.2.1).
gcsim::ObjRef KvStore::MakeRecordNode(const Record& r) {
  auto* copy = new Record(r);
  std::vector<uint64_t> child_bytes;
  child_bytes.reserve(r.fields.size());
  for (const std::string& f : r.fields) {
    child_bytes.push_back(f.size() + 48);
  }
  return gc_heap_->AllocGraph(64, child_bytes, copy, &DeleteRecord);
}

KvStore::KvStore(Backend* backend, gcsim::ManagedHeap* gc_heap,
                 const StoreOptions& opts)
    : backend_(backend),
      gc_heap_(gc_heap),
      capacity_(static_cast<uint64_t>(opts.cache_ratio *
                                      static_cast<double>(opts.expected_records))) {
  stripes_.reserve(opts.lock_stripes);
  for (uint32_t i = 0; i < opts.lock_stripes; ++i) {
    stripes_.push_back(std::make_unique<std::mutex>());
  }
}

KvStore::~KvStore() {
  if (gc_heap_ != nullptr) {
    std::lock_guard<std::mutex> lk(cache_mu_);
    for (auto& [key, entry] : cache_) {
      gc_heap_->RemoveRoot(entry.node);
    }
  }
}

std::mutex& KvStore::StripeFor(const std::string& key) {
  return *stripes_[std::hash<std::string>()(key) % stripes_.size()];
}

bool KvStore::CacheGetLocked(const std::string& key, Record* out) {
  auto it = cache_.find(key);
  if (it == cache_.end()) {
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);  // touch
  *out = *static_cast<Record*>(gc_heap_->External(it->second.node));
  return true;
}

void KvStore::CacheInsertLocked(const std::string& key, const Record& r) {
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    // Java semantics: the cache holds a *new* value object; the old one
    // becomes floating garbage for the collector.
    gc_heap_->RemoveRoot(it->second.node);
    it->second.node = MakeRecordNode(r);
    gc_heap_->AddRoot(it->second.node);
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return;
  }
  while (cache_.size() >= capacity_ && !lru_.empty()) {
    const std::string victim = lru_.back();
    lru_.pop_back();
    auto vit = cache_.find(victim);
    if (vit != cache_.end()) {
      gc_heap_->RemoveRoot(vit->second.node);  // freed at the next GC cycle
      cache_.erase(vit);
    }
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
  const gcsim::ObjRef node = MakeRecordNode(r);
  gc_heap_->AddRoot(node);
  lru_.push_front(key);
  cache_.emplace(key, CacheEntry{node, lru_.begin()});
}

void KvStore::CacheUpdateFieldLocked(const std::string& key, size_t field,
                                     const std::string& value) {
  auto it = cache_.find(key);
  if (it == cache_.end()) {
    return;
  }
  auto* rec = static_cast<Record*>(gc_heap_->External(it->second.node));
  if (field >= rec->fields.size()) {
    return;
  }
  Record updated = *rec;
  updated.fields[field] = value;
  // Replace the cached value object (Infinispan put()): allocation churn
  // proportional to the update rate, independent of the cache ratio.
  gc_heap_->RemoveRoot(it->second.node);
  it->second.node = MakeRecordNode(updated);
  gc_heap_->AddRoot(it->second.node);
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
}

void KvStore::CacheEraseLocked(const std::string& key) {
  auto it = cache_.find(key);
  if (it == cache_.end()) {
    return;
  }
  gc_heap_->RemoveRoot(it->second.node);
  lru_.erase(it->second.lru_it);
  cache_.erase(it);
}

bool KvStore::Read(const std::string& key, Record* out) {
  std::lock_guard<std::mutex> lk(StripeFor(key));
  if (cache_enabled()) {
    std::lock_guard<std::mutex> clk(cache_mu_);
    if (CacheGetLocked(key, out)) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
  }
  if (!backend_->Get(key, out)) {
    return false;
  }
  if (cache_enabled()) {
    std::lock_guard<std::mutex> clk(cache_mu_);
    CacheInsertLocked(key, *out);
  }
  return true;
}

bool KvStore::ReadTouch(const std::string& key) {
  if (cache_enabled()) {
    Record tmp;
    return Read(key, &tmp);
  }
  std::lock_guard<std::mutex> lk(StripeFor(key));
  return backend_->Touch(key);
}

bool KvStore::Insert(const std::string& key, const Record& r) {
  std::lock_guard<std::mutex> lk(StripeFor(key));
  const bool inserted = backend_->Put(key, r);  // write-through
  if (cache_enabled()) {
    std::lock_guard<std::mutex> clk(cache_mu_);
    CacheInsertLocked(key, r);
  }
  return inserted;
}

bool KvStore::Put(const std::string& key, const Record& r) { return Insert(key, r); }

bool KvStore::Update(const std::string& key, size_t field, const std::string& value) {
  std::lock_guard<std::mutex> lk(StripeFor(key));
  if (!backend_->UpdateField(key, field, value)) {  // write-through
    return false;
  }
  if (cache_enabled()) {
    std::lock_guard<std::mutex> clk(cache_mu_);
    CacheUpdateFieldLocked(key, field, value);
  }
  return true;
}

bool KvStore::Delete(const std::string& key) {
  std::lock_guard<std::mutex> lk(StripeFor(key));
  const bool ok = backend_->Delete(key);
  if (cache_enabled()) {
    std::lock_guard<std::mutex> clk(cache_mu_);
    CacheEraseLocked(key);
  }
  return ok;
}

bool KvStore::ApplyPut(const std::string& key, const Record& r) {
  const bool inserted = backend_->Put(key, r);
  if (cache_enabled()) {
    std::lock_guard<std::mutex> clk(cache_mu_);
    CacheEraseLocked(key);
  }
  return inserted;
}

bool KvStore::ApplyUpdate(const std::string& key, size_t field,
                          const std::string& value) {
  const bool ok = backend_->UpdateField(key, field, value);
  if (cache_enabled()) {
    std::lock_guard<std::mutex> clk(cache_mu_);
    CacheEraseLocked(key);
  }
  return ok;
}

bool KvStore::ApplyDelete(const std::string& key) {
  const bool ok = backend_->Delete(key);
  if (cache_enabled()) {
    std::lock_guard<std::mutex> clk(cache_mu_);
    CacheEraseLocked(key);
  }
  return ok;
}

bool KvStore::ReadModifyWrite(const std::string& key, size_t field,
                              const std::string& value) {
  Record r;
  if (!Read(key, &r)) {
    return false;
  }
  return Update(key, field, value);
}

size_t KvStore::WarmCache(const std::vector<std::string>& keys) {
  if (!cache_enabled()) {
    return 0;
  }
  size_t loaded = 0;
  Record r;
  for (const std::string& key : keys) {
    if (loaded >= capacity_) {
      break;
    }
    if (backend_->Get(key, &r)) {
      std::lock_guard<std::mutex> clk(cache_mu_);
      CacheInsertLocked(key, r);
      ++loaded;
    }
  }
  return loaded;
}

CacheStats KvStore::cache_stats() const {
  CacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.entries = cache_.size();
  return s;
}

}  // namespace jnvm::store
