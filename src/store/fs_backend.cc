#include "src/store/fs_backend.h"

#include <cstring>

#include "src/common/clock.h"

namespace jnvm::store {

// On-file extent: u32 magic, u32 capacity, u32 total_len, u32 key_len, key,
// marshalled record. Capacity is persisted so an index rebuild can stride
// over reused (over-sized) extents correctly.
static constexpr size_t kHeaderBytes = 16;

uint64_t FsBackend::AllocExtent(uint32_t need, uint32_t* capacity) {
  auto it = free_extents_.lower_bound(need);
  if (it != free_extents_.end()) {
    *capacity = it->first;
    const uint64_t off = it->second;
    free_extents_.erase(it);
    return off;
  }
  // Round up so small growth can reuse extents in place.
  *capacity = (need + 63) / 64 * 64;
  const uint64_t off = file_bump_;
  JNVM_CHECK_MSG(off + *capacity <= fs_->capacity(), "store file full");
  file_bump_ += *capacity;
  return off;
}

void FsBackend::WriteExtent(const Extent& e, const std::string& key,
                            const std::string& image) {
  // Header + key + image in one buffer, one pwrite, one fsync.
  std::string buf;
  buf.reserve(kHeaderBytes + key.size() + image.size());
  const uint32_t total = static_cast<uint32_t>(kHeaderBytes + key.size() + image.size());
  const uint32_t klen = static_cast<uint32_t>(key.size());
  buf.append(reinterpret_cast<const char*>(&kMagic), 4);
  buf.append(reinterpret_cast<const char*>(&e.capacity), 4);
  buf.append(reinterpret_cast<const char*>(&total), 4);
  buf.append(reinterpret_cast<const char*>(&klen), 4);
  buf.append(key);
  buf.append(image);
  fs_->Pwrite(e.off, buf.data(), buf.size());
  fs_->Fsync();
}

bool FsBackend::DoPut(const std::string& key, const Record& r) {
  std::string image;
  MarshalRecord(r, &image);  // the conversion cost (Figure 8)
  SpinFor(ser_.MarshalNs(r.fields.size(), image.size()));
  const uint32_t need = static_cast<uint32_t>(kHeaderBytes + key.size() + image.size());

  std::lock_guard<std::mutex> lk(mu_);
  auto it = index_.find(key);
  if (it != index_.end() && it->second.capacity >= need) {
    it->second.len = need;
    WriteExtent(it->second, key, image);
    return false;
  }
  Extent e;
  e.len = need;
  e.off = AllocExtent(need, &e.capacity);
  WriteExtent(e, key, image);
  if (it != index_.end()) {
    // Tombstone the superseded extent so a rebuild skips it.
    const uint32_t zero = 0;
    fs_->Pwrite(it->second.off, &zero, 4);
    fs_->Fsync();
    free_extents_.emplace(it->second.capacity, it->second.off);
    it->second = e;
    return false;
  }
  index_.emplace(key, e);
  return true;
}

bool FsBackend::DoGet(const std::string& key, Record* out) {
  Extent e;
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = index_.find(key);
    if (it == index_.end()) {
      return false;
    }
    e = it->second;
  }
  std::string buf(e.len, '\0');
  fs_->Pread(e.off, buf.data(), e.len);
  const size_t header = kHeaderBytes + key.size();
  if (!UnmarshalRecord(std::string_view(buf).substr(header), out)) {
    return false;
  }
  SpinFor(ser_.UnmarshalNs(out->fields.size(), e.len - header));
  return true;
}

bool FsBackend::DoUpdateField(const std::string& key, size_t field,
                              const std::string& value) {
  // Read-modify-write: unmarshal, patch, remarshal, rewrite — the full
  // conversion cost on every update. Internal Do* calls: the RMW is this
  // backend's natural update cost, not extra counted gets/puts.
  Record r;
  if (!DoGet(key, &r) || field >= r.fields.size()) {
    return false;
  }
  r.fields[field] = value;
  DoPut(key, r);
  return true;
}

bool FsBackend::DoDelete(const std::string& key) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    return false;
  }
  const uint32_t zero = 0;
  fs_->Pwrite(it->second.off, &zero, 4);
  fs_->Fsync();
  free_extents_.emplace(it->second.capacity, it->second.off);
  index_.erase(it);
  return true;
}

size_t FsBackend::Size() {
  std::lock_guard<std::mutex> lk(mu_);
  return index_.size();
}

size_t FsBackend::RebuildIndex() {
  std::lock_guard<std::mutex> lk(mu_);
  index_.clear();
  free_extents_.clear();
  uint64_t off = 0;
  while (off + kHeaderBytes <= fs_->capacity()) {
    uint32_t magic;
    uint32_t capacity;
    fs_->Pread(off, &magic, 4);
    fs_->Pread(off + 4, &capacity, 4);
    if (magic == 0 && capacity != 0) {
      // Tombstoned extent: skip and reuse.
      free_extents_.emplace(capacity, off);
      off += capacity;
      continue;
    }
    if (magic != kMagic || capacity == 0) {
      break;  // end of data
    }
    uint32_t total;
    uint32_t klen;
    fs_->Pread(off + 8, &total, 4);
    fs_->Pread(off + 12, &klen, 4);
    std::string key(klen, '\0');
    fs_->Pread(off + kHeaderBytes, key.data(), klen);
    Extent e;
    e.off = off;
    e.len = total;
    e.capacity = capacity;
    index_[key] = e;
    off += capacity;
  }
  file_bump_ = off;
  return index_.size();
}

std::vector<std::string> FsBackend::Keys() {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<std::string> keys;
  keys.reserve(index_.size());
  for (const auto& [k, e] : index_) {
    keys.push_back(k);
  }
  return keys;
}

}  // namespace jnvm::store
