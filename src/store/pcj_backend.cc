#include "src/store/pcj_backend.h"

#include "src/common/clock.h"

namespace jnvm::store {

PcjBackend::PcjBackend(pmdkx::PmdkPool* pool, const PcjOptions& opts)
    : pool_(pool), opts_(opts) {
  table_ = pool_->Alloc(opts.nbuckets * 8);
  JNVM_CHECK_MSG(table_ != 0, "pmdkx pool too small for the bucket table");
  for (uint64_t i = 0; i < opts.nbuckets; ++i) {
    pool_->WriteT<uint64_t>(table_ + i * 8, 0);
  }
  pool_->dev().PwbRange(0, 8);  // coarse: table init is a startup path
  pool_->dev().Psync();
}

void PcjBackend::ChargeJni(uint32_t crossings) {
  crossings_ += crossings;
  SpinFor(static_cast<uint64_t>(crossings) * opts_.jni_crossing_ns);
}

nvm::Offset PcjBackend::BucketOff(uint64_t bucket) const {
  return table_ + bucket * 8;
}

nvm::Offset PcjBackend::Find(const std::string& key, uint64_t* bucket,
                             nvm::Offset* prev) {
  *bucket = std::hash<std::string>()(key) % opts_.nbuckets;
  if (prev != nullptr) {
    *prev = 0;
  }
  nvm::Offset cur = pool_->ReadT<uint64_t>(BucketOff(*bucket));
  while (cur != 0) {
    if (ReadKey(cur) == key) {
      return cur;
    }
    if (prev != nullptr) {
      *prev = cur;
    }
    cur = pool_->ReadT<uint64_t>(cur + kNextOff);
  }
  return 0;
}

std::string PcjBackend::ReadKey(nvm::Offset entry) {
  const uint32_t klen = pool_->ReadT<uint32_t>(entry + kKlenOff);
  std::string key(klen, '\0');
  pool_->Read(entry + kDataOff, key.data(), klen);
  return key;
}

std::string PcjBackend::ReadValue(nvm::Offset entry) {
  const uint32_t klen = pool_->ReadT<uint32_t>(entry + kKlenOff);
  const uint32_t vlen = pool_->ReadT<uint32_t>(entry + kVlenOff);
  std::string value(vlen, '\0');
  pool_->Read(entry + kDataOff + klen, value.data(), vlen);
  return value;
}

bool PcjBackend::DoPut(const std::string& key, const Record& r) {
  std::lock_guard<std::mutex> lk(jvm_mu_);
  // One crossing for the call, one per field handed to the native side.
  ChargeJni(1 + 2 * static_cast<uint32_t>(r.fields.size()));  // handle + cell per field
  std::string image;
  MarshalRecord(r, &image);

  uint64_t bucket;
  const nvm::Offset existing = Find(key, &bucket, nullptr);
  pool_->TxBegin();
  if (existing != 0 &&
      pool_->ReadT<uint32_t>(existing + kVcapOff) >= image.size()) {
    const uint32_t klen = pool_->ReadT<uint32_t>(existing + kKlenOff);
    pool_->TxSnapshot(existing + kVlenOff, 4 + klen + image.size());
    pool_->WriteT<uint32_t>(existing + kVlenOff, static_cast<uint32_t>(image.size()));
    pool_->Write(existing + kDataOff + klen, image.data(), image.size());
    pool_->TxCommit();
    return false;
  }
  // Allocate a fresh entry and link it at the bucket head.
  const size_t bytes = kDataOff + key.size() + image.size();
  const nvm::Offset entry = pool_->Alloc(bytes);
  JNVM_CHECK_MSG(entry != 0, "pmdkx pool full");
  pool_->WriteT<uint64_t>(entry + kNextOff, pool_->ReadT<uint64_t>(BucketOff(bucket)));
  pool_->WriteT<uint32_t>(entry + kKlenOff, static_cast<uint32_t>(key.size()));
  pool_->WriteT<uint32_t>(entry + kVcapOff, static_cast<uint32_t>(image.size()));
  pool_->WriteT<uint32_t>(entry + kVlenOff, static_cast<uint32_t>(image.size()));
  pool_->Write(entry + kDataOff, key.data(), key.size());
  pool_->Write(entry + kDataOff + key.size(), image.data(), image.size());
  pool_->TxSnapshot(BucketOff(bucket), 8);
  pool_->WriteT<uint64_t>(BucketOff(bucket), entry);
  if (existing != 0) {
    // Unlink the superseded entry lazily: overwrite its key length so scans
    // skip it (simplified PCJ remove path).
    pool_->TxSnapshot(existing + kKlenOff, 4);
    pool_->WriteT<uint32_t>(existing + kKlenOff, 0);
    --size_;
  }
  pool_->TxCommit();
  ++size_;
  return existing == 0;
}

bool PcjBackend::DoGet(const std::string& key, Record* out) {
  std::lock_guard<std::mutex> lk(jvm_mu_);
  ChargeJni(1 + 2 * opts_.fields_per_record);  // handle + cell per field
  uint64_t bucket;
  const nvm::Offset entry = Find(key, &bucket, nullptr);
  if (entry == 0) {
    return false;
  }
  return UnmarshalRecord(ReadValue(entry), out);
}

bool PcjBackend::DoUpdateField(const std::string& key, size_t field,
                             const std::string& value) {
  std::lock_guard<std::mutex> lk(jvm_mu_);
  ChargeJni(3);  // call + handle + the one field cell
  uint64_t bucket;
  const nvm::Offset entry = Find(key, &bucket, nullptr);
  if (entry == 0) {
    return false;
  }
  // In-place patch of the marshalled image (fixed-length fields).
  const uint32_t klen = pool_->ReadT<uint32_t>(entry + kKlenOff);
  const size_t field_off = MarshalledFieldOffset(field, value.size());
  const nvm::Offset target = entry + kDataOff + klen + field_off;
  pool_->TxBegin();
  pool_->TxSnapshot(target, value.size());
  pool_->Write(target, value.data(), value.size());
  pool_->TxCommit();
  return true;
}

bool PcjBackend::DoDelete(const std::string& key) {
  std::lock_guard<std::mutex> lk(jvm_mu_);
  ChargeJni(1);
  uint64_t bucket;
  nvm::Offset prev;
  const nvm::Offset entry = Find(key, &bucket, &prev);
  if (entry == 0) {
    return false;
  }
  pool_->TxBegin();
  const nvm::Offset next = pool_->ReadT<uint64_t>(entry + kNextOff);
  if (prev == 0) {
    pool_->TxSnapshot(BucketOff(bucket), 8);
    pool_->WriteT<uint64_t>(BucketOff(bucket), next);
  } else {
    pool_->TxSnapshot(prev + kNextOff, 8);
    pool_->WriteT<uint64_t>(prev + kNextOff, next);
  }
  pool_->TxCommit();
  --size_;
  return true;
}

size_t PcjBackend::Size() {
  std::lock_guard<std::mutex> lk(jvm_mu_);
  return size_;
}

}  // namespace jnvm::store
