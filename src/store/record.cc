#include "src/store/record.h"

#include <cstring>

#include "src/common/check.h"
#include "src/common/rand.h"

namespace jnvm::store {

void MarshalRecord(const Record& r, std::string* out) {
  out->clear();
  out->reserve(MarshalledSize(r));
  const uint32_t n = static_cast<uint32_t>(r.fields.size());
  out->append(reinterpret_cast<const char*>(&n), 4);
  for (const std::string& f : r.fields) {
    const uint32_t len = static_cast<uint32_t>(f.size());
    out->append(reinterpret_cast<const char*>(&len), 4);
    out->append(f);
  }
}

bool UnmarshalRecord(std::string_view image, Record* out) {
  out->fields.clear();
  if (image.size() < 4) {
    return false;
  }
  uint32_t n;
  std::memcpy(&n, image.data(), 4);
  size_t pos = 4;
  if (n > 1u << 24) {
    return false;  // implausible field count: corrupt image
  }
  out->fields.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    if (pos + 4 > image.size()) {
      return false;
    }
    uint32_t len;
    std::memcpy(&len, image.data() + pos, 4);
    pos += 4;
    if (pos + len > image.size()) {
      return false;
    }
    out->fields.emplace_back(image.substr(pos, len));
    pos += len;
  }
  return true;
}

size_t MarshalledSize(const Record& r) {
  size_t n = 4;
  for (const std::string& f : r.fields) {
    n += 4 + f.size();
  }
  return n;
}

size_t MarshalledFieldOffset(size_t i, size_t field_len) {
  return 4 + i * (4 + field_len) + 4;
}

Record SyntheticRecord(uint64_t key_index, uint64_t generation, uint32_t nfields,
                       uint32_t field_len) {
  Record r;
  r.fields.reserve(nfields);
  Xorshift rng(Mix64(key_index * 1000003 + generation));
  for (uint32_t f = 0; f < nfields; ++f) {
    std::string field(field_len, '\0');
    for (uint32_t i = 0; i < field_len; ++i) {
      field[i] = static_cast<char>('a' + rng.NextBelow(26));
    }
    r.fields.push_back(std::move(field));
  }
  return r;
}

}  // namespace jnvm::store
