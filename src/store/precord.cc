#include "src/store/precord.h"

#include <algorithm>

namespace jnvm::store {

const core::ClassInfo* PRecord::Class() {
  static const core::ClassInfo* info =
      RegisterClass(core::MakeClassInfo<PRecord>("jnvm.store.PRecord"));
  return info;
}

PRecord::PRecord(core::JnvmRuntime& rt, const Record& r, uint32_t field_capacity) {
  const uint32_t n = static_cast<uint32_t>(r.fields.size());
  // Leaf class: every field cell is written below; skip the voiding.
  AllocatePersistent(rt, Class(), PayloadBytesFor(n, field_capacity), /*zero=*/false);
  WriteField<uint32_t>(kNumFieldsOff, n);
  WriteField<uint32_t>(kFieldCapOff, field_capacity);
  for (uint32_t i = 0; i < n; ++i) {
    JNVM_CHECK(r.fields[i].size() <= field_capacity);
    const uint32_t len = static_cast<uint32_t>(r.fields[i].size());
    const size_t off = FieldOff(i);
    WriteBytesField(off, &len, 4);
    if (len > 0) {
      WriteBytesField(off + 4, r.fields[i].data(), len);
    }
  }
  Pwb();  // queue everything; publication fences are the container's job
}

static uint32_t MaxFieldLen(const Record& r) {
  size_t cap = 1;
  for (const std::string& f : r.fields) {
    cap = std::max(cap, f.size());
  }
  return static_cast<uint32_t>(cap);
}

PRecord::PRecord(core::JnvmRuntime& rt, const Record& r)
    : PRecord(rt, r, MaxFieldLen(r)) {}

std::string PRecord::GetField(size_t i) const {
  JNVM_DCHECK(i < NumFields());
  const size_t off = FieldOff(i);
  uint32_t len;
  ReadBytesField(off, &len, 4);
  std::string out(len, '\0');
  if (len > 0) {
    ReadBytesField(off + 4, out.data(), len);
  }
  return out;
}

void PRecord::SetFieldWeak(size_t i, std::string_view value) {
  JNVM_DCHECK(i < NumFields());
  JNVM_CHECK(value.size() <= FieldCapacity());
  const size_t off = FieldOff(i);
  const uint32_t len = static_cast<uint32_t>(value.size());
  WriteBytesField(off, &len, 4);
  if (len > 0) {
    WriteBytesField(off + 4, value.data(), len);
  }
  PwbField(off, 4 + value.size());
}

void PRecord::SetField(size_t i, std::string_view value) {
  SetFieldWeak(i, value);
  DurabilityFence();  // durable on return (write-through store semantics)
}

Record PRecord::ToRecord() const {
  // Bulk-read the whole payload once, then parse in DRAM: a full-record
  // read touches each NVMM block once instead of once per field.
  Record r;
  const uint32_t n = NumFields();
  const uint32_t cap = FieldCapacity();
  r.fields.reserve(n);
  const size_t stride = 4ull + cap;
  std::vector<char> buf(n * stride);
  ReadBytesField(kFieldsOff, buf.data(), buf.size());
  for (uint32_t i = 0; i < n; ++i) {
    uint32_t len;
    memcpy(&len, buf.data() + i * stride, 4);
    JNVM_CHECK(len <= cap);
    r.fields.emplace_back(buf.data() + i * stride + 4, len);
  }
  return r;
}

}  // namespace jnvm::store
