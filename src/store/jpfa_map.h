// JpfaHashMap — a persistent hash map written the "high-level" way (§5.1
// J-PFA backend): a straightforward chained-bucket structure whose methods
// are wrapped in failure-atomic blocks, exactly like code produced by the
// generator from @Persistent(fa="non-private") classes (§2.5).
//
// Unlike the J-PDT maps there is no hand-crafted publication protocol and no
// volatile mirror: lookups walk NVMM chains, and every mutation pays the
// redo-log machinery (in-flight block copies, commit fences). Figure 7/12's
// comparison J-PFA vs J-PDT quantifies that convenience cost ("J-PDT is
// still up to 65% faster").
#ifndef JNVM_SRC_STORE_JPFA_MAP_H_
#define JNVM_SRC_STORE_JPFA_MAP_H_

#include <mutex>

#include "src/core/ref_array.h"
#include "src/core/runtime.h"
#include "src/pdt/pstring.h"
#include "src/store/precord.h"

namespace jnvm::store {

// One chain link: {ref key (PString), ref value, ref next}.
class JpfaEntry final : public core::PObject {
 public:
  static const core::ClassInfo* Class();

  explicit JpfaEntry(core::Resurrect) {}
  JpfaEntry(core::JnvmRuntime& rt, const core::PObject* key,
            const core::PObject* value, nvm::Offset next) {
    AllocatePersistent(rt, Class(), 24);
    WritePObject(kKeyOff, key);
    WritePObject(kValueOff, value);
    WriteRefRaw(kNextOff, next);
    Pwb();
  }

  core::Handle<pdt::PString> Key() const { return ReadPObjectAs<pdt::PString>(kKeyOff); }
  nvm::Offset KeyRaw() const { return ReadRefRaw(kKeyOff); }
  core::Handle<core::PObject> Value() const { return ReadPObject(kValueOff); }
  nvm::Offset ValueRaw() const { return ReadRefRaw(kValueOff); }
  void SetValue(const core::PObject* v) { WritePObject(kValueOff, v); }
  nvm::Offset NextRaw() const { return ReadRefRaw(kNextOff); }
  void SetNextRaw(nvm::Offset next) { WriteRefRaw(kNextOff, next); }

  static constexpr size_t kKeyOff = 0;
  static constexpr size_t kValueOff = 8;
  static constexpr size_t kNextOff = 16;

 private:
  static void Trace(core::ObjectView& view, core::RefVisitor& v);
};

class JpfaHashMap final : public core::PObject {
 public:
  static const core::ClassInfo* Class();

  explicit JpfaHashMap(core::Resurrect) {}
  // Fixed bucket count (no rehash — sized at creation like a pre-dimensioned
  // Java HashMap; documented simplification).
  JpfaHashMap(core::JnvmRuntime& rt, uint64_t nbuckets);

  void Resurrect_() override { buckets_ = ReadPObjectAs<core::PRefArray>(kBucketsOff); }

  // All public operations execute inside failure-atomic blocks.
  core::Handle<core::PObject> Get(const std::string& key);
  void Put(const std::string& key, core::PObject* value, bool free_old = true);
  bool Remove(const std::string& key, bool free_value = true);
  // Runs `fn(PRecord proxy)` on the value of `key` inside the same
  // failure-atomic block (field updates become atomic).
  bool WithValue(const std::string& key,
                 const std::function<void(core::PObject&)>& fn);
  uint64_t Size();

 private:
  static constexpr size_t kBucketsOff = 0;
  static constexpr size_t kSizeOff = 8;

  static void Trace(core::ObjectView& view, core::RefVisitor& v);

  // Returns the entry for key (or nullptr); `prev` gets the predecessor.
  core::Handle<JpfaEntry> FindLocked(const std::string& key, uint64_t* bucket,
                                     core::Handle<JpfaEntry>* prev);

  std::mutex mu_;
  core::Handle<core::PRefArray> buckets_;  // transient
};

}  // namespace jnvm::store

#endif  // JNVM_SRC_STORE_JPFA_MAP_H_
