// File-system backend (§5.1 "FS"): records marshalled into a single flat
// file (Infinispan's single-file store) on ext4-DAX / TmpFS / NullFS.
//
// Every Put marshals the record, writes it with one pwrite, and fsyncs
// (write-through durability). Every cache-missing Get preads and
// unmarshals. A field update is a full read-modify-write of the record —
// the file system has no sub-record granularity, which is why FS update
// latency explodes with record size in Figures 9c/9d.
//
// On-file extent format: u32 magic, u32 total_len, u32 key_len, key bytes,
// marshalled record. The index (key -> extent) is volatile and rebuilt by
// scanning the file on restart (Figure 11's slow FS recovery).
#ifndef JNVM_SRC_STORE_FS_BACKEND_H_
#define JNVM_SRC_STORE_FS_BACKEND_H_

#include <map>
#include <mutex>
#include <unordered_map>

#include "src/fs/sim_fs.h"
#include "src/store/backend.h"

namespace jnvm::store {

class FsBackend final : public Backend {
 public:
  // `label` distinguishes FS / TmpFS / NullFS in reports. `ser` charges the
  // Java-serialization cost model on each (un)marshal (zero by default).
  FsBackend(fs::SimFs* fs, std::string label, SerCostModel ser = {})
      : fs_(fs), label_(std::move(label)), ser_(ser) {}

  std::string name() const override { return label_; }
  size_t Size() override;

  // Rebuilds the volatile index by scanning the file (restart path).
  // Returns the number of records found.
  size_t RebuildIndex();

  // All current keys (used by the store to reload its cache on restart).
  std::vector<std::string> Keys();

 protected:
  bool DoPut(const std::string& key, const Record& r) override;
  bool DoGet(const std::string& key, Record* out) override;
  bool DoUpdateField(const std::string& key, size_t field,
                     const std::string& value) override;
  bool DoDelete(const std::string& key) override;

 private:
  struct Extent {
    uint64_t off = 0;
    uint32_t len = 0;       // bytes used
    uint32_t capacity = 0;  // bytes reserved
  };

  static constexpr uint32_t kMagic = 0x52454331;  // "REC1"

  void WriteExtent(const Extent& e, const std::string& key, const std::string& image);
  uint64_t AllocExtent(uint32_t need, uint32_t* capacity);

  fs::SimFs* fs_;
  std::string label_;
  SerCostModel ser_;
  std::mutex mu_;
  std::unordered_map<std::string, Extent> index_;
  std::multimap<uint32_t, uint64_t> free_extents_;  // capacity -> offset
  uint64_t file_bump_ = 0;
};

}  // namespace jnvm::store

#endif  // JNVM_SRC_STORE_FS_BACKEND_H_
