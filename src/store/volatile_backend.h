// Volatile backend: "a configuration in which persistence is simply
// disabled. Volatile behaves as NullFS, except that the marshalling/
// unmarshalling phase is avoided" (§5.1).
//
// Records live as objects in the managed (garbage-collected) heap — like
// plain Java objects in Infinispan with no store attached. Each record is
// one managed node with one ballast child per field, so the GC traces a
// graph shaped like the Java original, and updates create floating garbage
// (the GC pressure that lets J-PDT edge past Volatile in Figure 10).
#ifndef JNVM_SRC_STORE_VOLATILE_BACKEND_H_
#define JNVM_SRC_STORE_VOLATILE_BACKEND_H_

#include <mutex>
#include <unordered_map>

#include "src/gcsim/managed_heap.h"
#include "src/store/backend.h"

namespace jnvm::store {

class VolatileBackend final : public Backend {
 public:
  explicit VolatileBackend(gcsim::ManagedHeap* heap) : heap_(heap) {}

  std::string name() const override { return "Volatile"; }
  size_t Size() override;

 protected:
  bool DoPut(const std::string& key, const Record& r) override;
  bool DoGet(const std::string& key, Record* out) override;
  bool DoUpdateField(const std::string& key, size_t field,
                     const std::string& value) override;
  bool DoDelete(const std::string& key) override;

 private:
  gcsim::ObjRef MakeRecordNode(const Record& r);

  gcsim::ManagedHeap* heap_;
  std::mutex mu_;
  std::unordered_map<std::string, gcsim::ObjRef> index_;
};

}  // namespace jnvm::store

#endif  // JNVM_SRC_STORE_VOLATILE_BACKEND_H_
