#include "src/core/pobject.h"

#include "src/core/pool.h"
#include "src/core/runtime.h"

namespace jnvm::core {

pfa::FaContext* PObject::ActiveFa() const { return rt_->CurrentFaOrNull(); }

void PObject::AllocatePersistent(JnvmRuntime& rt, const ClassInfo* cls,
                                 size_t payload_bytes, bool zero) {
  JNVM_CHECK(!attached_);
  rt_ = &rt;
  heap_ = &rt.heap();
  cls_ = cls;
  const uint16_t id = rt.ClassIdFor(cls);
  const nvm::Offset master = heap_->AllocObject(id, payload_bytes, zero);
  JNVM_CHECK_MSG(master != 0, "persistent heap full");
  view_ = ObjectView(heap_, master);
  attached_ = true;
  if (pfa::FaContext* fa = ActiveFa(); fa != nullptr && fa->InFa()) {
    fa->NoteAlloc(master);  // validated at commit (§4.2)
  }
}

void PObject::AllocatePersistentPooled(JnvmRuntime& rt, const ClassInfo* cls,
                                       size_t bytes) {
  JNVM_CHECK(!attached_);
  JNVM_CHECK_MSG(cls->is_pool, "pool allocation of a non-pool class");
  rt_ = &rt;
  heap_ = &rt.heap();
  cls_ = cls;
  const uint16_t id = rt.ClassIdFor(cls);
  const nvm::Offset slot = rt.pools().AllocSlot(id, bytes);
  JNVM_CHECK_MSG(slot != 0, "persistent heap full");
  view_ = ObjectView(heap_, slot, PoolManager::SlotBytesOf(heap_, slot));
  attached_ = true;
  // No alloc log entry: pool objects have no valid bit; an uncommitted crash
  // leaves the slot unreachable and recovery reclaims it.
}

void PObject::AttachExisting(JnvmRuntime& rt, nvm::Offset ref) {
  JNVM_CHECK(!attached_);
  rt_ = &rt;
  heap_ = &rt.heap();
  cls_ = nullptr;  // filled by the runtime's resurrection path if needed
  if (heap_->IsBlockAligned(ref)) {
    view_ = ObjectView(heap_, ref);
  } else {
    view_ = ObjectView(heap_, ref, PoolManager::SlotBytesOf(heap_, ref));
  }
  attached_ = true;
}

void PObject::Detach() {
  attached_ = false;
  view_ = ObjectView();
}

bool PObject::IsValidObject() const {
  const ObjectView& v = view();
  if (v.is_pool_slot()) {
    return true;
  }
  return heap_->IsValid(v.master());
}

void PObject::Validate() {
  ObjectView& v = MutableView();
  if (v.is_pool_slot()) {
    v.PwbAll();  // flush-before-publish stands in for the valid bit (§4.4)
    return;
  }
  heap_->SetValid(v.master());
}

void PObject::Pwb() { MutableView().PwbAll(); }

void PObject::Pfence() const { heap_->Pfence(); }

void PObject::Psync() const { heap_->Psync(); }

void PObject::DurabilityFence() const { heap_->DurabilityFence(); }

nvm::Offset PObject::LocateForRead(size_t off, size_t n) const {
  const ObjectView& v = view();
  const nvm::Offset loc = v.Locate(off);
  pfa::FaContext* fa = ActiveFa();
  if (fa == nullptr || !fa->InFa() || v.is_pool_slot()) {
    return loc;
  }
  const nvm::Offset block = v.BlockFor(off);
  const nvm::Offset target = fa->ReadBlock(block);
  return target == block ? loc : target + (loc - block);
}

nvm::Offset PObject::LocateForWrite(size_t off, size_t n) {
  ObjectView& v = MutableView();
  const nvm::Offset loc = v.Locate(off);
  pfa::FaContext* fa = ActiveFa();
  if (fa == nullptr || !fa->InFa() || v.is_pool_slot()) {
    return loc;
  }
  if (!heap_->IsValid(v.master())) {
    // Writes to invalid objects go direct (§4.2): an uncommitted crash
    // deletes the object anyway.
    return loc;
  }
  const nvm::Offset block = v.BlockFor(off);
  const nvm::Offset copy = fa->WriteBlockCow(block);
  return copy + (loc - block);
}

void PObject::ReadBytesField(size_t off, void* dst, size_t n) const {
  char* out = static_cast<char*>(dst);
  const size_t ppb = view().is_pool_slot() ? view().capacity()
                                           : heap_->payload_per_block();
  while (n > 0) {
    const size_t within = off % ppb;
    const size_t chunk = std::min(n, ppb - within);
    heap_->dev().ReadBytes(LocateForRead(off, chunk), out, chunk);
    off += chunk;
    out += chunk;
    n -= chunk;
  }
}

void PObject::WriteBytesField(size_t off, const void* src, size_t n) {
  const char* in = static_cast<const char*>(src);
  const size_t ppb = view().is_pool_slot() ? view().capacity()
                                           : heap_->payload_per_block();
  while (n > 0) {
    const size_t within = off % ppb;
    const size_t chunk = std::min(n, ppb - within);
    heap_->dev().WriteBytes(LocateForWrite(off, chunk), in, chunk);
    off += chunk;
    in += chunk;
    n -= chunk;
  }
}

Handle<PObject> PObject::ReadPObject(size_t off) const {
  return rt_->ResurrectRef(ReadRefRaw(off));
}

void PObject::WritePObject(size_t off, const PObject* target) {
  WriteRefRaw(off, target == nullptr ? 0 : target->addr());
}

void PObject::UpdateRef(size_t off, PObject* target) {
  pfa::FaContext* fa = ActiveFa();
  if (fa != nullptr && fa->InFa()) {
    // Commit already provides atomicity; a plain logged store suffices.
    WritePObject(off, target);
    return;
  }
  // Figure 6: validate the new object, pfence, then store — the collection
  // pass can then never nullify this reference.
  if (target != nullptr && !target->IsValidObject()) {
    target->Pwb();
    target->Validate();
  }
  heap_->Pfence();
  WritePObject(off, target);
  PwbField(off, sizeof(uint64_t));
}

void PObject::UpdateRefAndFreeOld(size_t off, PObject* target) {
  const nvm::Offset old_ref = ReadRefRaw(off);
  UpdateRef(off, target);
  if (old_ref == 0) {
    return;
  }
  pfa::FaContext* fa = ActiveFa();
  if (fa == nullptr || !fa->InFa()) {
    // The new reference must be durable before the old object's memory can
    // possibly be invalidated or reused — otherwise a crash could leave the
    // field pointing at an invalid object and recovery would nullify it,
    // losing the (still intact) old value. Under group commit this is a
    // durability fence only: FreeRef defers the reclamation past the
    // batch's Psync (JnvmRuntime::DrainGroupFrees), which restores the
    // swing-before-reuse ordering without a per-operation fence.
    heap_->DurabilityFence();
  }
  rt_->FreeRef(old_ref);
}

}  // namespace jnvm::core
