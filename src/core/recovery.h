// Recovery procedure (§2.4, §3.2.3, §4.1.3, §4.2).
//
// Executed when a heap is opened. Steps:
//   1. Replay committed per-thread redo logs; discard uncommitted ones.
//   2. (graph mode) Traverse the live-object graph from the root map.
//      References to invalid or partially-deleted objects are nullified;
//      reachable pool slots are collected per block; each live object's
//      recover() hook runs before the application resumes.
//   3. Rebuild the pool allocators' volatile state.
//   4. Sweep every unmarked block into the volatile free queue (voiding its
//      valid bit) and issue one final pfence.
//
// The scan variant (J-PFA-nogc, §5.3.3) replaces step 2 with a flat block
// scan: chains of valid masters are live, no reference is nullified. It is
// only sound when the application cannot leave an invalid object reachable
// (e.g. every allocation and publication shares one failure-atomic block).
#ifndef JNVM_SRC_CORE_RECOVERY_H_
#define JNVM_SRC_CORE_RECOVERY_H_

#include "src/heap/heap.h"
#include "src/pfa/fa_log.h"

namespace jnvm::core {

class JnvmRuntime;

struct RecoveryReport {
  bool graph = false;
  pfa::ReplayStats replay;
  heap::Heap::RecoveryStats sweep;
  uint64_t traversed_objects = 0;
  uint64_t live_pool_slots = 0;
  uint64_t nullified_refs = 0;
  double seconds = 0.0;
};

// Full recovery with the object-graph collection pass.
RecoveryReport RecoverGraph(JnvmRuntime& rt);

// Block-scan recovery (J-PFA-nogc).
RecoveryReport RecoverBlockScan(JnvmRuntime& rt);

}  // namespace jnvm::core

#endif  // JNVM_SRC_CORE_RECOVERY_H_
