#include "src/core/ref_array.h"

#include "src/core/runtime.h"

namespace jnvm::core {

const ClassInfo* PRefArray::Class() {
  static const ClassInfo* info = RegisterClass(
      MakeClassInfo<PRefArray>("jnvm.PRefArray", &PRefArray::Trace));
  return info;
}

PRefArray::PRefArray(JnvmRuntime& rt, uint64_t capacity) {
  AllocatePersistent(rt, Class(), PayloadBytesFor(capacity));
  WriteField<uint64_t>(kCapacityOff, capacity);
  PwbField(kCapacityOff, sizeof(uint64_t));
}

void PRefArray::Trace(ObjectView& view, RefVisitor& v) {
  const uint64_t cap = view.Read<uint64_t>(kCapacityOff);
  // A torn capacity cannot escape the payload: clamp defensively.
  const uint64_t max_cap = (view.capacity() - kSlotsOff) / sizeof(uint64_t);
  const uint64_t n = cap > max_cap ? max_cap : cap;
  for (uint64_t i = 0; i < n; ++i) {
    v.VisitRef(view, SlotOff(i));
  }
}

}  // namespace jnvm::core
