#include "src/core/recovery.h"

#include <cstdio>
#include <cstdlib>
#include <unordered_map>
#include <vector>

#include "src/common/clock.h"
#include "src/core/object_view.h"
#include "src/core/pool.h"
#include "src/core/runtime.h"

namespace jnvm::core {

namespace {

// The collection pass (§4.1.3): a worklist traversal of the live object
// graph starting from the root map. Complexity is linear in the number of
// live objects — which is why it runs at recovery and never at runtime
// (§2.2.1).
class GraphWalker : public RefVisitor {
 public:
  GraphWalker(JnvmRuntime* rt, heap::LiveBitmap* bitmap)
      : rt_(rt), heap_(&rt->heap()), bitmap_(bitmap) {}

  void Run(nvm::Offset root_master) {
    if (root_master != 0) {
      Push(root_master);
    }
    while (!worklist_.empty()) {
      const nvm::Offset master = worklist_.back();
      worklist_.pop_back();
      if (bitmap_->IsMarked(heap_->BlockIndex(master))) {
        continue;  // already traced via another path
      }
      heap_->MarkChainLive(master, bitmap_);
      ++traversed_;

      const uint16_t class_id = heap_->ClassIdOf(master);
      const ClassInfo* info = rt_->ClassInfoForId(class_id);
      JNVM_CHECK_MSG(info != nullptr,
                     ("live object of unregistered class id " +
                      std::to_string(class_id) + " ('" +
                      heap_->ClassName(class_id) + "')")
                         .c_str());
      ObjectView view(heap_, master);
      if (info->trace) {
        info->trace(view, *this);
      }
      if (info->recover) {
        info->recover(view);  // the recover() hook (§3.2.1)
      }
    }
  }

  void VisitRef(ObjectView& view, size_t off) override {
    const nvm::Offset ref = view.Read<uint64_t>(off);
    if (ref == 0) {
      return;
    }
    if (ref >= heap_->bump() || ref < heap_->first_block()) {
      Nullify(view, off);  // torn or stale reference outside the heap
      return;
    }
    if (!heap_->IsBlockAligned(ref)) {
      VisitPoolRef(view, off, ref);
      return;
    }
    const heap::BlockHeader h = heap_->ReadHeader(ref);
    const ClassInfo* info = rt_->ClassInfoForId(h.id);
    if (!h.IsMaster() || !h.valid || info == nullptr || info->is_pool) {
      // Invalid (partially deleted or never validated) object: nullify the
      // reference instead of exposing it (§2.4).
      Nullify(view, off);
      return;
    }
    if (!bitmap_->IsMarked(heap_->BlockIndex(ref))) {
      Push(ref);
    }
  }

  const std::unordered_map<nvm::Offset, std::vector<nvm::Offset>>& live_pool_slots()
      const {
    return live_pool_slots_;
  }
  uint64_t traversed() const { return traversed_; }
  uint64_t nullified() const { return nullified_; }
  uint64_t pool_slot_count() const { return pool_slot_count_; }

 private:
  void Push(nvm::Offset master) { worklist_.push_back(master); }

  void VisitPoolRef(ObjectView& view, size_t off, nvm::Offset ref) {
    const nvm::Offset block =
        (ref / heap_->block_size()) * heap_->block_size();
    const heap::BlockHeader h = heap_->ReadHeader(block);
    const ClassInfo* info = rt_->ClassInfoForId(h.id);
    if (!h.IsMaster() || info == nullptr || !info->is_pool) {
      Nullify(view, off);
      return;
    }
    bitmap_->Mark(heap_->BlockIndex(block));
    auto& slots = live_pool_slots_[block];
    slots.push_back(ref);
    ++pool_slot_count_;
  }

  // Env-gated diagnostic: a nullified reference is recovery working as
  // designed, but WHICH ref got dropped (and what its target looked like)
  // is the first question when a crash-consistency sweep finds a torn
  // structure. JNVM_DEBUG_NULLIFY=1 prints one line per dropped ref.
  void Nullify(ObjectView& view, size_t off) {
    static const bool debug = getenv("JNVM_DEBUG_NULLIFY") != nullptr;
    if (debug) {
      const nvm::Offset ref = view.Read<uint64_t>(off);
      const ClassInfo* owner = rt_->ClassInfoForId(heap_->ClassIdOf(view.master()));
      fprintf(stderr,
              "NULLIFY owner=%s master=%llu off=%zu ref=%llu "
              "(first=%llu bump=%llu bs=%u aligned=%d)",
              owner ? owner->name.c_str() : "?",
              (unsigned long long)view.master(), off, (unsigned long long)ref,
              (unsigned long long)heap_->first_block(),
              (unsigned long long)heap_->bump(), heap_->block_size(),
              heap_->IsBlockAligned(ref));
      if (ref >= heap_->first_block() && ref < heap_->bump() &&
          heap_->IsBlockAligned(ref)) {
        const heap::BlockHeader h = heap_->ReadHeader(ref);
        const ClassInfo* tc = rt_->ClassInfoForId(h.id);
        fprintf(stderr, " target{master=%d valid=%d id=%u cls=%s}", h.IsMaster(),
                h.valid, h.id, tc ? tc->name.c_str() : "?");
      }
      fprintf(stderr, "\n");
    }
    view.Write<uint64_t>(off, 0);
    view.PwbRange(off, sizeof(uint64_t));
    ++nullified_;
  }

  JnvmRuntime* rt_;
  Heap* heap_;
  heap::LiveBitmap* bitmap_;
  std::vector<nvm::Offset> worklist_;
  std::unordered_map<nvm::Offset, std::vector<nvm::Offset>> live_pool_slots_;
  uint64_t traversed_ = 0;
  uint64_t nullified_ = 0;
  uint64_t pool_slot_count_ = 0;
};

pfa::FaHooks RecoveryHooks(JnvmRuntime& rt) {
  pfa::FaHooks hooks;
  PoolManager* pools = &rt.pools();
  hooks.pool_free = [pools](nvm::Offset slot) { pools->FreeSlot(slot); };
  return hooks;
}

}  // namespace

RecoveryReport RecoverGraph(JnvmRuntime& rt) {
  Stopwatch sw;
  RecoveryReport report;
  report.graph = true;
  Heap& heap = rt.heap();

  // Step 1: redo logs first (§4.2 "After a failure, J-NVM first handles the
  // per-thread logs of failure-atomic blocks, then it executes the recovery
  // procedure").
  report.replay = pfa::ReplayAllLogs(&heap, RecoveryHooks(rt));

  // Step 2: collection pass.
  heap::LiveBitmap bitmap = heap.NewBitmap();
  GraphWalker walker(&rt, &bitmap);
  walker.Run(heap.root_master());
  report.traversed_objects = walker.traversed();
  report.nullified_refs = walker.nullified();
  report.live_pool_slots = walker.pool_slot_count();

  // Step 3: pool allocators (precise occupancy from reachability).
  rt.pools().RebuildFromLiveSlots(walker.live_pool_slots());

  // Step 4: sweep + the single terminal pfence (§4.1.3).
  report.sweep = heap.SweepUnmarked(bitmap);
  report.seconds = sw.ElapsedSec();
  return report;
}

RecoveryReport RecoverBlockScan(JnvmRuntime& rt) {
  Stopwatch sw;
  RecoveryReport report;
  report.graph = false;
  Heap& heap = rt.heap();

  report.replay = pfa::ReplayAllLogs(&heap, RecoveryHooks(rt));
  report.sweep = heap.RecoverBlockScan();
  rt.pools().RebuildByScan([&rt](uint16_t id) {
    const ClassInfo* info = rt.ClassInfoForId(id);
    return info != nullptr && info->is_pool;
  });
  report.seconds = sw.ElapsedSec();
  return report;
}

}  // namespace jnvm::core
