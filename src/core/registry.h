// Global class registry.
//
// The paper attaches durability to a *class* (class-centric model, §2.3) and
// uses a bytecode generator to derive, for each @Persistent class, the code
// that accesses the persistent data structure. In C++ the equivalent
// metadata is registered once per class: a factory that builds an empty
// proxy for resurrection (§3.1), a tracer that enumerates reference fields
// for the recovery-time GC (§2.4, §4.1.3), and a flag for pool-allocated
// (small immutable) classes (§4.4).
//
// The registry maps class *names*; numeric ids are per-heap (interned into
// the persistent class table) and resolved by the runtime.
#ifndef JNVM_SRC_CORE_REGISTRY_H_
#define JNVM_SRC_CORE_REGISTRY_H_

#include <functional>
#include <memory>
#include <string>

namespace jnvm::core {

class PObject;
class ObjectView;

// Passed to a class tracer; the tracer reports where its reference fields
// live so recovery can follow or nullify them.
class RefVisitor {
 public:
  virtual ~RefVisitor() = default;
  // `payload_off` is the byte offset of a 64-bit reference field.
  virtual void VisitRef(ObjectView& view, size_t payload_off) = 0;
};

struct ClassInfo {
  std::string name;
  // Small immutable class packed into pool blocks (§4.4).
  bool is_pool = false;
  // Builds an unattached proxy (the "resurrect constructor", §3.1).
  std::function<std::unique_ptr<PObject>()> factory;
  // Enumerates reference fields; nullptr for leaf classes.
  std::function<void(ObjectView&, RefVisitor&)> trace;
  // Optional recover() hook (§3.2.1) invoked on each live object during the
  // recovery collection pass, before the application resumes.
  std::function<void(ObjectView&)> recover;
};

// Registers a class; the returned pointer is stable for the process
// lifetime. Registering the same name twice is a fatal error.
const ClassInfo* RegisterClass(ClassInfo info);

// Returns nullptr when no class of that name was registered.
const ClassInfo* FindClass(const std::string& name);

}  // namespace jnvm::core

#endif  // JNVM_SRC_CORE_REGISTRY_H_
