// Raw accessor over the persistent data structure of one object.
//
// An ObjectView addresses an object's payload as a contiguous byte range and
// hides the block chain behind the index arithmetic described in §4.1
// ("retrieving the block that contains a given field simply requires a
// division"). It performs *no* failure-atomic redirection — it is the
// low-level view used by recovery and by PObject internally.
//
// For pool-allocated objects (small immutables, §4.4) the view covers one
// slot inside a shared block.
#ifndef JNVM_SRC_CORE_OBJECT_VIEW_H_
#define JNVM_SRC_CORE_OBJECT_VIEW_H_

#include <vector>

#include "src/heap/heap.h"

namespace jnvm::core {

using heap::Heap;
using nvm::Offset;

class ObjectView {
 public:
  // Null view (unattached proxy state); any access is invalid.
  ObjectView() = default;
  // Chained object: walks the block chain of `master`.
  ObjectView(Heap* heap, Offset master);
  // Pool slot: `slot` points inside a pool block; `slot_bytes` is its size.
  ObjectView(Heap* heap, Offset slot, size_t slot_bytes);

  Heap& heap() const { return *heap_; }
  Offset master() const { return master_; }
  bool is_pool_slot() const { return pool_; }
  size_t capacity() const { return capacity_; }
  size_t block_count() const { return pool_ ? 1 : (blocks_.empty() ? 1 : blocks_.size()); }

  // Device offset holding payload byte `off` (the field must not straddle a
  // block payload boundary for scalar access; byte ranges may).
  Offset Locate(size_t off) const {
    JNVM_DCHECK(off < capacity_);
    if (pool_) {
      return master_ + off;
    }
    const size_t ppb = ppb_;
    const size_t i = off / ppb;
    const Offset block = blocks_.empty() ? master_ : blocks_[i];
    return heap_->PayloadOf(block) + (off % ppb);
  }

  // Block (device offset) containing payload byte `off`; pool slots live in
  // their enclosing pool block.
  Offset BlockFor(size_t off) const {
    if (pool_) {
      return (master_ / heap_->block_size()) * heap_->block_size();
    }
    const size_t i = off / ppb_;
    return blocks_.empty() ? master_ : blocks_[i];
  }

  template <typename T>
  T Read(size_t off) const {
    JNVM_DCHECK(off / ppb_ == (off + sizeof(T) - 1) / ppb_ || pool_);
    return heap_->dev().Read<T>(Locate(off));
  }

  template <typename T>
  void Write(size_t off, T v) {
    JNVM_DCHECK(off / ppb_ == (off + sizeof(T) - 1) / ppb_ || pool_);
    heap_->dev().Write<T>(Locate(off), v);
  }

  // Byte-range access; spans block boundaries.
  void ReadBytes(size_t off, void* dst, size_t n) const;
  void WriteBytes(size_t off, const void* src, size_t n);

  // Queues the cache lines of [off, off+n) for write-back.
  void PwbRange(size_t off, size_t n);
  // Queues every payload line of the object.
  void PwbAll();

  const std::vector<Offset>& blocks() const { return blocks_; }

 private:
  Heap* heap_ = nullptr;
  Offset master_ = 0;  // master block offset, or slot offset for pool slots
  bool pool_ = false;
  size_t capacity_ = 0;
  size_t ppb_ = 0;     // payload bytes per block (pool: slot size)
  std::vector<Offset> blocks_;  // empty for single-block and pool objects
};

}  // namespace jnvm::core

#endif  // JNVM_SRC_CORE_OBJECT_VIEW_H_
