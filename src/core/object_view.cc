#include "src/core/object_view.h"

#include <algorithm>

namespace jnvm::core {

ObjectView::ObjectView(Heap* heap, Offset master)
    : heap_(heap), master_(master), ppb_(heap->payload_per_block()) {
  JNVM_DCHECK(heap->IsBlockAligned(master));
  // Single-block objects (the common case) avoid the vector.
  if (heap->ReadHeader(master).next == 0) {
    capacity_ = ppb_;
  } else {
    heap->CollectBlocks(master, &blocks_);
    capacity_ = blocks_.size() * ppb_;
  }
}

ObjectView::ObjectView(Heap* heap, Offset slot, size_t slot_bytes)
    : heap_(heap), master_(slot), pool_(true), capacity_(slot_bytes), ppb_(slot_bytes) {
  JNVM_DCHECK(!heap->IsBlockAligned(slot));
}

void ObjectView::ReadBytes(size_t off, void* dst, size_t n) const {
  JNVM_DCHECK(off + n <= capacity_);
  char* out = static_cast<char*>(dst);
  while (n > 0) {
    const size_t within = pool_ ? off : off % ppb_;
    const size_t chunk = std::min(n, ppb_ - within);
    heap_->dev().ReadBytes(Locate(off), out, chunk);
    off += chunk;
    out += chunk;
    n -= chunk;
  }
}

void ObjectView::WriteBytes(size_t off, const void* src, size_t n) {
  JNVM_DCHECK(off + n <= capacity_);
  const char* in = static_cast<const char*>(src);
  while (n > 0) {
    const size_t within = pool_ ? off : off % ppb_;
    const size_t chunk = std::min(n, ppb_ - within);
    heap_->dev().WriteBytes(Locate(off), in, chunk);
    off += chunk;
    in += chunk;
    n -= chunk;
  }
}

void ObjectView::PwbRange(size_t off, size_t n) {
  while (n > 0) {
    const size_t within = pool_ ? off : off % ppb_;
    const size_t chunk = std::min(n, ppb_ - within);
    heap_->dev().PwbRange(Locate(off), chunk);
    off += chunk;
    n -= chunk;
  }
}

void ObjectView::PwbAll() { PwbRange(0, capacity_); }

}  // namespace jnvm::core
