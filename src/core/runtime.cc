#include "src/core/runtime.h"

#include <atomic>

#include "src/core/root_map.h"

namespace jnvm::core {

namespace {

std::atomic<uint64_t> g_runtime_generation{1};

// Per-thread fast path for the failure-atomic nesting check (§3.2): "the
// counter is always in the L1 cache" — here, a one-compare TLS cache.
struct FaTlsCache {
  const JnvmRuntime* rt = nullptr;
  uint64_t generation = 0;
  pfa::FaContext* ctx = nullptr;
};
thread_local FaTlsCache t_fa_cache;

}  // namespace

std::unique_ptr<JnvmRuntime> JnvmRuntime::Boot(nvm::PmemDevice* dev,
                                               const RuntimeOptions& opts, bool format) {
  auto rt = std::unique_ptr<JnvmRuntime>(new JnvmRuntime());
  rt->generation_ = g_runtime_generation.fetch_add(1, std::memory_order_relaxed);
  rt->heap_ = format ? heap::Heap::Format(dev, opts.heap) : heap::Heap::Open(dev);
  rt->pools_ = std::make_unique<PoolManager>(rt->heap_.get());

  pfa::FaHooks hooks;
  PoolManager* pools = rt->pools_.get();
  hooks.pool_free = [pools](nvm::Offset slot) { pools->FreeSlot(slot); };
  rt->fa_ = std::make_unique<pfa::FaManager>(rt->heap_.get(), std::move(hooks));

  if (!format) {
    // The runtime's own bootstrap classes must be registered before the
    // recovery walk resurrects them — a fresh process recovering an
    // existing heap reaches the root map before BootstrapRoot() would
    // register it lazily.
    RootMap::Class();
    RootEntry::Class();
    PRefArray::Class();
    rt->recovery_report_ =
        opts.graph_recovery ? RecoverGraph(*rt) : RecoverBlockScan(*rt);
  }
  rt->BootstrapRoot();
  return rt;
}

std::unique_ptr<JnvmRuntime> JnvmRuntime::Format(nvm::PmemDevice* dev,
                                                 const RuntimeOptions& opts) {
  return Boot(dev, opts, /*format=*/true);
}

std::unique_ptr<JnvmRuntime> JnvmRuntime::Open(nvm::PmemDevice* dev,
                                               const RuntimeOptions& opts) {
  return Boot(dev, opts, /*format=*/false);
}

void JnvmRuntime::BootstrapRoot() {
  const nvm::Offset master = heap_->root_master();
  if (master != 0) {
    root_ = ResurrectRefAs<RootMap>(master);
    return;
  }
  auto root = std::make_shared<RootMap>(*this);
  root->Pwb();
  root->Validate();
  heap_->Pfence();
  heap_->SetRootMaster(root->addr());  // fences internally
  root_ = std::move(root);
}

JnvmRuntime::~JnvmRuntime() {
  if (!closed_) {
    Close();
  }
  // Invalidate this thread's FA cache (other threads hold a generation that
  // can never match a future runtime).
  if (t_fa_cache.rt == this) {
    t_fa_cache = FaTlsCache{};
  }
}

void JnvmRuntime::Close() {
  JNVM_CHECK(!closed_);
  heap_->CloseClean();
  closed_ = true;
}

uint16_t JnvmRuntime::ClassIdFor(const ClassInfo* info) {
  JNVM_CHECK(info != nullptr);
  {
    std::lock_guard<std::mutex> lk(class_mu_);
    auto it = class_ids_.find(info);
    if (it != class_ids_.end()) {
      return it->second;
    }
  }
  const uint16_t id = heap_->InternClassId(info->name);
  std::lock_guard<std::mutex> lk(class_mu_);
  class_ids_.emplace(info, id);
  if (class_by_id_.size() <= id) {
    class_by_id_.resize(id + 1, nullptr);
  }
  class_by_id_[id] = info;
  return id;
}

const ClassInfo* JnvmRuntime::ClassInfoForId(uint16_t id) {
  {
    std::lock_guard<std::mutex> lk(class_mu_);
    if (id < class_by_id_.size() && class_by_id_[id] != nullptr) {
      return class_by_id_[id];
    }
  }
  const std::string name = heap_->ClassName(id);
  if (name.empty()) {
    return nullptr;
  }
  const ClassInfo* info = FindClass(name);
  if (info == nullptr) {
    return nullptr;
  }
  std::lock_guard<std::mutex> lk(class_mu_);
  class_ids_.emplace(info, id);
  if (class_by_id_.size() <= id) {
    class_by_id_.resize(id + 1, nullptr);
  }
  class_by_id_[id] = info;
  return info;
}

Handle<PObject> JnvmRuntime::ResurrectRef(nvm::Offset ref) {
  if (ref == 0) {
    return nullptr;
  }
  const nvm::Offset block =
      heap_->IsBlockAligned(ref) ? ref : (ref / heap_->block_size()) * heap_->block_size();
  const uint16_t id = heap_->ClassIdOf(block);
  const ClassInfo* info = ClassInfoForId(id);
  JNVM_CHECK_MSG(info != nullptr, "resurrecting an object of an unregistered class");
  std::unique_ptr<PObject> obj = info->factory();
  obj->AttachExisting(*this, ref);
  obj->Resurrect_();
  return Handle<PObject>(std::move(obj));
}

void JnvmRuntime::Free(PObject& obj) {
  JNVM_CHECK_MSG(obj.attached(), "double free of persistent object");
  JNVM_CHECK(&obj.runtime() == this);
  const nvm::Offset a = obj.addr();
  pfa::FaContext* fa = CurrentFaOrNull();
  if (fa != nullptr && fa->InFa()) {
    if (obj.is_pool()) {
      fa->NoteFreePoolSlot(a);
    } else {
      fa->NoteFreeObject(a);
    }
  } else if (heap_->InGroupCommit()) {
    group_frees_.emplace_back(a, obj.is_pool());  // reclaimed after the Psync
  } else if (obj.is_pool()) {
    pools_->FreeSlot(a);
  } else {
    heap_->FreeObject(a);
  }
  obj.Detach();
}

void JnvmRuntime::FreeRef(nvm::Offset ref) {
  JNVM_CHECK(ref != 0);
  pfa::FaContext* fa = CurrentFaOrNull();
  const bool pool = !heap_->IsBlockAligned(ref);
  if (fa != nullptr && fa->InFa()) {
    if (pool) {
      fa->NoteFreePoolSlot(ref);
    } else {
      fa->NoteFreeObject(ref);
    }
  } else if (heap_->InGroupCommit()) {
    group_frees_.emplace_back(ref, pool);  // reclaimed after the Psync
  } else if (pool) {
    pools_->FreeSlot(ref);
  } else {
    heap_->FreeObject(ref);
  }
}

void JnvmRuntime::DrainGroupFrees() {
  // Only sound outside the batch: the caller must have Psync'd the batch so
  // every unlink/swing referencing these structures is durable.
  JNVM_CHECK(!heap_->InGroupCommit());
  for (const auto& [ref, pool] : group_frees_) {
    if (pool) {
      pools_->FreeSlot(ref);
    } else {
      heap_->FreeObject(ref);
    }
  }
  group_frees_.clear();
}

pfa::FaContext* JnvmRuntime::CurrentFaOrNull() const {
  if (t_fa_cache.rt == this && t_fa_cache.generation == generation_) {
    return t_fa_cache.ctx;
  }
  return nullptr;
}

void JnvmRuntime::FaStart() {
  pfa::FaContext* ctx = CurrentFaOrNull();
  if (ctx == nullptr) {
    // A thread may interleave runtimes only outside failure-atomic blocks:
    // the cache is the unique carrier of "this thread is inside a block".
    JNVM_CHECK_MSG(t_fa_cache.ctx == nullptr || t_fa_cache.ctx->depth() == 0,
                   "interleaved failure-atomic blocks across runtimes");
    ctx = &fa_->ForCurrentThread();
    t_fa_cache = FaTlsCache{this, generation_, ctx};
  }
  ctx->Begin();
}

void JnvmRuntime::FaEnd() {
  pfa::FaContext* ctx = CurrentFaOrNull();
  JNVM_CHECK_MSG(ctx != nullptr && ctx->depth() > 0, "FaEnd without FaStart");
  ctx->End();
}

void JnvmRuntime::FaAbort() {
  pfa::FaContext* ctx = CurrentFaOrNull();
  JNVM_CHECK_MSG(ctx != nullptr && ctx->depth() > 0, "FaAbort without FaStart");
  ctx->Abort();
}

void JnvmRuntime::FaUnwind() {
  pfa::FaContext* ctx = CurrentFaOrNull();
  if (ctx != nullptr && ctx->depth() > 0) {
    ctx->Abort();
  }
}

uint64_t JnvmRuntime::FaLogCapacity() {
  pfa::FaContext* ctx = CurrentFaOrNull();
  if (ctx != nullptr) return ctx->log_capacity();
  return fa_->ForCurrentThread().log_capacity();
}

int JnvmRuntime::FaDepth() {
  pfa::FaContext* ctx = CurrentFaOrNull();
  return ctx == nullptr ? 0 : ctx->depth();
}

}  // namespace jnvm::core
