#include "src/core/root_map.h"

#include "src/core/runtime.h"

namespace jnvm::core {

// ---- RootEntry -------------------------------------------------------------

const ClassInfo* RootEntry::Class() {
  static const ClassInfo* info = RegisterClass(
      MakeClassInfo<RootEntry>("jnvm.RootEntry", &RootEntry::Trace));
  return info;
}

RootEntry::RootEntry(JnvmRuntime& rt, const std::string& key, const PObject* value) {
  JNVM_CHECK(key.size() <= UINT16_MAX);
  AllocatePersistent(rt, Class(), kKeyOff + key.size());
  WritePObject(kValueOff, value);
  WriteField<uint16_t>(kKeyLenOff, static_cast<uint16_t>(key.size()));
  WriteBytesField(kKeyOff, key.data(), key.size());
  Pwb();  // queue the content; the publication fence makes it durable
}

std::string RootEntry::Key() const {
  const uint16_t len = ReadField<uint16_t>(kKeyLenOff);
  std::string key(len, '\0');
  ReadBytesField(kKeyOff, key.data(), len);
  return key;
}

void RootEntry::Trace(ObjectView& view, RefVisitor& v) { v.VisitRef(view, kValueOff); }

// ---- RootMap ---------------------------------------------------------------

const ClassInfo* RootMap::Class() {
  static const ClassInfo* info =
      RegisterClass(MakeClassInfo<RootMap>("jnvm.RootMap", &RootMap::Trace));
  return info;
}

RootMap::RootMap(JnvmRuntime& rt, uint64_t initial_capacity) {
  AllocatePersistent(rt, Class(), 8);
  auto arr = std::make_shared<PRefArray>(rt, initial_capacity);
  arr->Validate();  // no fence; covered by the runtime's bootstrap fence
  WritePObject(kArrOff, arr.get());
  PwbField(kArrOff, 8);
  arr_ = std::move(arr);
  free_slots_.reserve(initial_capacity);
  for (uint64_t i = initial_capacity; i > 0; --i) {
    free_slots_.push_back(i - 1);
  }
}

void RootMap::Resurrect_() {
  std::lock_guard<std::mutex> lk(mu_);
  arr_ = ReadPObjectAs<PRefArray>(kArrOff);
  JNVM_CHECK_MSG(arr_ != nullptr,
                 "root map array ref is null — was jnvm.PRefArray registered "
                 "before recovery nullified it?");
  mirror_.clear();
  free_slots_.clear();
  const uint64_t cap = arr_->capacity();
  for (uint64_t i = 0; i < cap; ++i) {
    const nvm::Offset ref = arr_->GetRaw(i);
    if (ref == 0) {
      free_slots_.push_back(i);
      continue;
    }
    const auto entry = std::static_pointer_cast<RootEntry>(arr_->Get(i));
    mirror_.emplace(entry->Key(), i);
  }
}

bool RootMap::Exists(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  return mirror_.find(name) != mirror_.end();
}

Handle<PObject> RootMap::Get(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = mirror_.find(name);
  if (it == mirror_.end()) {
    return nullptr;
  }
  const auto entry = std::static_pointer_cast<RootEntry>(arr_->Get(it->second));
  return entry->Value();
}

void RootMap::Put(const std::string& name, PObject* value) {
  JnvmRuntime& rt = runtime();
  // The lock is held across the commit: two concurrent failure-atomic
  // blocks must never hold diverging in-flight copies of the shared slot
  // array's block (§4.4 — reconciling replicas of one block is what the
  // design avoids).
  std::lock_guard<std::mutex> lk(mu_);
  rt.FaStart();
  WputLocked(name, value);
  rt.FaEnd();
}

void RootMap::Wput(const std::string& name, PObject* value) {
  std::lock_guard<std::mutex> lk(mu_);
  WputLocked(name, value);
}

void RootMap::WputLocked(const std::string& name, PObject* value) {
  auto it = mirror_.find(name);
  if (it != mirror_.end()) {
    const auto entry = std::static_pointer_cast<RootEntry>(arr_->Get(it->second));
    entry->SetValue(value);
    return;
  }
  const uint64_t slot = TakeSlotLocked();
  RootEntry entry(runtime(), name, value);
  entry.Validate();  // no fence (weak); Put()'s commit or the caller fences
  if (value != nullptr && !value->IsValidObject()) {
    value->Pwb();
    value->Validate();
  }
  arr_->SetRaw(slot, entry.addr());  // single-word publication
  mirror_.emplace(name, slot);
}

uint64_t RootMap::TakeSlotLocked() {
  if (!free_slots_.empty()) {
    const uint64_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  // Grow: build a copy with twice the capacity, publish it with the atomic
  // reference update (§4.1.6), then free the old array.
  JnvmRuntime& rt = runtime();
  const uint64_t old_cap = arr_->capacity();
  const uint64_t new_cap = old_cap * 2;
  auto bigger = std::make_shared<PRefArray>(rt, new_cap);
  for (uint64_t i = 0; i < old_cap; ++i) {
    bigger->SetRaw(i, arr_->GetRaw(i));
  }
  UpdateRefAndFreeOld(kArrOff, bigger.get());
  arr_ = std::move(bigger);
  for (uint64_t i = new_cap; i > old_cap; --i) {
    free_slots_.push_back(i - 1);
  }
  const uint64_t slot = free_slots_.back();
  free_slots_.pop_back();
  return slot;
}

bool RootMap::Remove(const std::string& name) {
  JnvmRuntime& rt = runtime();
  std::lock_guard<std::mutex> lk(mu_);  // held across commit, as in Put()
  rt.FaStart();
  bool removed = false;
  auto it = mirror_.find(name);
  if (it != mirror_.end()) {
    const uint64_t slot = it->second;
    const auto entry = std::static_pointer_cast<RootEntry>(arr_->Get(slot));
    arr_->SetRaw(slot, 0);  // unlink first, then reclaim
    rt.Free(*entry);
    mirror_.erase(it);
    free_slots_.push_back(slot);
    removed = true;
  }
  rt.FaEnd();
  return removed;
}

size_t RootMap::Size() {
  std::lock_guard<std::mutex> lk(mu_);
  return mirror_.size();
}

std::vector<std::string> RootMap::Keys() {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<std::string> keys;
  keys.reserve(mirror_.size());
  for (const auto& [k, slot] : mirror_) {
    keys.push_back(k);
  }
  return keys;
}

void RootMap::Trace(ObjectView& view, RefVisitor& v) { v.VisitRef(view, kArrOff); }

}  // namespace jnvm::core
