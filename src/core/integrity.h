// Heap integrity verification — a read-only audit of the persistent heap's
// invariants, for tests and tooling (not part of the paper's system, but
// the invariants are the paper's):
//
//   I1  every object reachable from the root map is valid (§2.4 — recovery
//       nullifies references to invalid objects, so none survive it),
//   I2  every reachable reference points to a master block of a registered
//       class, or to a pool slot inside a pool-class block,
//   I3  block chains are acyclic and stay inside the allocated range,
//   I4  no two reachable objects share a block,
//   I5  reachable pool slots have their occupancy hint set,
//   I6  the persistent bump pointer covers every reachable block,
//   I7  (quiescent heaps only, opt-in) every failure-atomic log slot is
//       erased — recovery replayed-and-erased committed logs and discarded
//       uncommitted ones, and no commit is in flight.
//
// Returns a report; `ok()` is true when no invariant is violated.
#ifndef JNVM_SRC_CORE_INTEGRITY_H_
#define JNVM_SRC_CORE_INTEGRITY_H_

#include <string>
#include <vector>

#include "src/core/runtime.h"

namespace jnvm::core {

struct IntegrityReport {
  uint64_t objects = 0;
  uint64_t pool_slots = 0;
  uint64_t blocks = 0;
  std::vector<std::string> violations;

  bool ok() const { return violations.empty(); }
  std::string Summary() const;
};

struct IntegrityOptions {
  // Audit the failure-atomic log directory (I7). Only sound on a quiescent
  // heap: no thread inside a failure-atomic block — e.g. right after
  // recovery, which is exactly when the crash-consistency checker asks.
  bool audit_fa_logs = false;
};

IntegrityReport VerifyHeapIntegrity(JnvmRuntime& rt);
IntegrityReport VerifyHeapIntegrity(JnvmRuntime& rt, const IntegrityOptions& opts);

}  // namespace jnvm::core

#endif  // JNVM_SRC_CORE_INTEGRITY_H_
