// Compile-time field layout builder — the C++ stand-in for the paper's
// bytecode generator (§2.5, §3).
//
// In J-NVM the code generator replaces each non-transient field with a typed
// accessor at a fixed payload offset (Figure 4: "getX returns the integer
// located at offset 8 in the persistent data structure"). Here a class
// declares its fields once, at compile time, and PackFields computes
// offsets such that a scalar field never straddles a block payload boundary
// (fields must be addressable by a single device access, §4.1):
//
//   class Simple : public PObject {
//     static constexpr auto kL = core::PackFields<2>({core::kRefField, 4});
//     // field 0: msg (ref), field 1: x (i32)
//     int32_t x() const { return ReadField<int32_t>(kL.off[1]); }
//     ...
//   };
#ifndef JNVM_SRC_CORE_LAYOUT_H_
#define JNVM_SRC_CORE_LAYOUT_H_

#include <array>
#include <cstddef>

namespace jnvm::core {

// Payload bytes per 256 B block with an 8-byte header.
inline constexpr size_t kDefaultPayloadPerBlock = 248;

// Size token for a 64-bit persistent reference field.
inline constexpr size_t kRefField = 8;

template <size_t N>
struct LayoutSpec {
  std::array<size_t, N> off;
  size_t bytes;  // total payload footprint
};

// Packs N fields of the given byte sizes: each field is aligned to its size
// (power-of-two sizes up to 8; larger fields are 8-aligned) and moved to the
// next block when it would straddle a payload boundary.
template <size_t N>
consteval LayoutSpec<N> PackFields(std::array<size_t, N> sizes,
                                   size_t ppb = kDefaultPayloadPerBlock) {
  LayoutSpec<N> spec{};
  size_t cursor = 0;
  for (size_t i = 0; i < N; ++i) {
    const size_t size = sizes[i];
    const size_t align = size >= 8 ? 8 : size;
    cursor = (cursor + align - 1) / align * align;
    if (size <= ppb && cursor / ppb != (cursor + size - 1) / ppb) {
      cursor = (cursor / ppb + 1) * ppb;  // skip to the next block
    }
    spec.off[i] = cursor;
    cursor += size;
  }
  spec.bytes = cursor;
  return spec;
}

}  // namespace jnvm::core

#endif  // JNVM_SRC_CORE_LAYOUT_H_
