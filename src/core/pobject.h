// PObject — the volatile proxy of a persistent object (§2.1, §3).
//
// The decoupling principle: a persistent object consists of a persistent
// data structure stored off-heap in NVMM and a *proxy* that lives in
// volatile memory. The proxy holds the methods and the block addresses; the
// data structure holds the fields. Proxies are instantiated on demand when
// a persistent reference is dereferenced (resurrection, §3.1) and are
// ordinary C++ objects managed by shared_ptr (the stand-in for the Java
// runtime's management of proxies).
//
// Field accessors check the per-thread failure-atomic nesting counter on
// every access (§3.2): depth zero grants direct access to NVMM; otherwise
// loads and stores are redirected through the redo log's in-flight copies.
#ifndef JNVM_SRC_CORE_POBJECT_H_
#define JNVM_SRC_CORE_POBJECT_H_

#include <memory>

#include "src/core/layout.h"
#include "src/core/object_view.h"
#include "src/core/registry.h"
#include "src/pfa/fa_context.h"

namespace jnvm::core {

class JnvmRuntime;

// Handle to a proxy. Proxies are cheap to create and do not own persistent
// state: destroying a handle never frees NVMM (explicit JnvmRuntime::Free
// does, §2.6).
template <typename T>
using Handle = std::shared_ptr<T>;

// Tag for the resurrect constructor (§3.1): `MyClass(jnvm::core::Resurrect)`
// must exist on every persistent class so the registry factory can build an
// unattached proxy. Its signature "cannot collide with a user-defined
// constructor" — exactly the paper's trick.
struct Resurrect {};

class PObject {
 public:
  virtual ~PObject() = default;
  PObject(const PObject&) = delete;
  PObject& operator=(const PObject&) = delete;

  // Address of the persistent data structure; 0 once freed (a freed proxy is
  // invalid and any access aborts, §3.1 "Free").
  nvm::Offset addr() const { return attached_ ? view_.master() : 0; }
  bool attached() const { return attached_; }
  bool is_pool() const { return view_.is_pool_slot(); }
  const ClassInfo* class_info() const { return cls_; }
  JnvmRuntime& runtime() const {
    JNVM_CHECK_MSG(rt_ != nullptr, "proxy not attached to a runtime");
    return *rt_;
  }
  Heap& heap() const { return *heap_; }
  size_t payload_capacity() const { return view_.capacity(); }

  // ---- Low-level persistence interface (§3.2) ----------------------------

  // True when the object's valid bit is set (§3.2.3). Pool-allocated
  // immutables have no valid bit: they are treated as always-valid and rely
  // on flush-before-publish.
  bool IsValidObject() const;
  // Sets the valid bit and queues the header line — no fence: validation is
  // decoupled from publication so several objects can share one fence
  // (Figure 5). Pool objects flush their content instead.
  void Validate();
  // Queues every cache line of the object for write-back (Figure 5 o.pwb()).
  void Pwb();
  // Queues the lines of one field.
  void PwbField(size_t off, size_t n) { MutableView().PwbRange(off, n); }
  void Pfence() const;
  void Psync() const;
  // Durability-only fence: elided when the heap is in a group-commit batch
  // (src/server fence batching) — the batch's Psync provides durability.
  void DurabilityFence() const;

  // Overridden to initialize transient state after resurrection (§3.1).
  virtual void Resurrect_() {}
  // Overridden by low-level classes to repair state at recovery (§3.2.1).
  // NOTE: during recovery this runs through the class's `recover` hook on an
  // ObjectView (no proxy exists yet); this virtual is for app-level use.
  virtual void Recover_() {}

 protected:
  PObject() = default;

  // Constructor path (§3.1 "Allocation"): allocates the block chain in the
  // *invalid* state. Inside a failure-atomic block the allocation is logged
  // and validated at commit (§4.2). Classes with no reference fields that
  // fully write their payload may pass zero = false to skip the voiding.
  void AllocatePersistent(JnvmRuntime& rt, const ClassInfo* cls, size_t payload_bytes,
                          bool zero = true);
  // Pool path for small immutable classes (§4.4).
  void AllocatePersistentPooled(JnvmRuntime& rt, const ClassInfo* cls, size_t bytes);

  // ---- Typed field accessors (what the code generator emits, Figure 4) ---

  template <typename T>
  T ReadField(size_t off) const {
    return heap_->dev().Read<T>(LocateForRead(off, sizeof(T)));
  }

  template <typename T>
  void WriteField(size_t off, T v) {
    heap_->dev().Write<T>(LocateForWrite(off, sizeof(T)), v);
  }

  void ReadBytesField(size_t off, void* dst, size_t n) const;
  void WriteBytesField(size_t off, const void* src, size_t n);

  // ---- Persistent references (§3.1) --------------------------------------

  nvm::Offset ReadRefRaw(size_t off) const { return ReadField<uint64_t>(off); }
  void WriteRefRaw(size_t off, nvm::Offset ref) { WriteField<uint64_t>(off, ref); }

  // Dereference: resurrects a proxy for the referenced object (§3.1).
  Handle<PObject> ReadPObject(size_t off) const;
  template <typename T>
  Handle<T> ReadPObjectAs(size_t off) const {
    return std::static_pointer_cast<T>(ReadPObject(off));
  }
  // Stores target->addr(); the type system guarantees NVMM only references
  // persistent objects (§3.1). Accepts nullptr (stores a null reference).
  void WritePObject(size_t off, const PObject* target);

  // Atomic reference update (§4.1.6, Figure 6): validate the new object,
  // pfence, then store — so recovery can never nullify the reference.
  // Inside a failure-atomic block the commit protocol already provides
  // atomicity and this degrades to a plain logged store.
  void UpdateRef(size_t off, PObject* target);
  // Second generated helper (§4.1.6): atomically update and free the object
  // previously referenced.
  void UpdateRefAndFreeOld(size_t off, PObject* target);

  // Raw view (no failure-atomic redirection); for class internals that know
  // what they are doing (J-PDT uses it for single-word publications).
  ObjectView& MutableView() {
    JNVM_CHECK_MSG(attached_, "access to freed or unattached persistent object");
    return view_;
  }
  const ObjectView& view() const {
    JNVM_CHECK_MSG(attached_, "access to freed or unattached persistent object");
    return view_;
  }

 private:
  friend class JnvmRuntime;

  // Resurrection path: binds the proxy to an existing data structure.
  void AttachExisting(JnvmRuntime& rt, nvm::Offset ref);
  void Detach();  // after JnvmRuntime::Free

  // Translates a payload offset to a device offset, applying failure-atomic
  // redirection (reads follow in-flight copies; writes to valid objects
  // create them).
  nvm::Offset LocateForRead(size_t off, size_t n) const;
  nvm::Offset LocateForWrite(size_t off, size_t n);

  pfa::FaContext* ActiveFa() const;

  JnvmRuntime* rt_ = nullptr;
  Heap* heap_ = nullptr;
  const ClassInfo* cls_ = nullptr;
  ObjectView view_;
  bool attached_ = false;
};

// Convenience builder for the registry entry of class T.
template <typename T>
ClassInfo MakeClassInfo(std::string name,
                        std::function<void(ObjectView&, RefVisitor&)> trace = nullptr,
                        bool is_pool = false) {
  ClassInfo info;
  info.name = std::move(name);
  info.is_pool = is_pool;
  info.factory = [] { return std::unique_ptr<PObject>(new T(Resurrect{})); };
  info.trace = std::move(trace);
  return info;
}

}  // namespace jnvm::core

#endif  // JNVM_SRC_CORE_POBJECT_H_
