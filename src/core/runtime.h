// JnvmRuntime — the JNVM facade (§2.5 `JNVM.init`, `JNVM.root`,
// `JNVM.free`, `JNVM.faStart/faEnd`).
//
// One runtime owns one persistent heap on one simulated NVMM device, the
// pool allocators, the failure-atomic manager, and the root map. Opening a
// runtime runs recovery (replaying redo logs, collecting the object graph,
// rebuilding volatile allocator state) before handing the heap back to the
// application.
#ifndef JNVM_SRC_CORE_RUNTIME_H_
#define JNVM_SRC_CORE_RUNTIME_H_

#include <exception>
#include <memory>

#include "src/core/pobject.h"
#include "src/core/pool.h"
#include "src/core/recovery.h"
#include "src/core/root_map.h"
#include "src/pfa/fa_context.h"

namespace jnvm::core {

struct RuntimeOptions {
  heap::HeapOptions heap;
  // false selects the J-PFA-nogc recovery (§5.3.3): no graph traversal.
  bool graph_recovery = true;
};

class JnvmRuntime {
 public:
  // Formats the device and bootstraps a fresh root map (JNVM.init on a new
  // region).
  static std::unique_ptr<JnvmRuntime> Format(nvm::PmemDevice* dev,
                                             const RuntimeOptions& opts = {});
  // Opens an existing heap and runs recovery (JNVM.init on an existing
  // region after a restart or a crash).
  static std::unique_ptr<JnvmRuntime> Open(nvm::PmemDevice* dev,
                                           const RuntimeOptions& opts = {});

  ~JnvmRuntime();
  JnvmRuntime(const JnvmRuntime&) = delete;
  JnvmRuntime& operator=(const JnvmRuntime&) = delete;

  Heap& heap() { return *heap_; }
  PoolManager& pools() { return *pools_; }
  RootMap& root() { return *root_; }

  // ---- Class ids ---------------------------------------------------------

  // Heap-local id for a registered class (interned on first use).
  uint16_t ClassIdFor(const ClassInfo* info);
  // nullptr when the persistent id maps to no registered class.
  const ClassInfo* ClassInfoForId(uint16_t id);

  // ---- Object life cycle -------------------------------------------------

  // Resurrection (§3.1): builds a proxy for the persistent structure at
  // `ref` (master block or pool slot). Null ref yields nullptr.
  Handle<PObject> ResurrectRef(nvm::Offset ref);
  template <typename T>
  Handle<T> ResurrectRefAs(nvm::Offset ref) {
    return std::static_pointer_cast<T>(ResurrectRef(ref));
  }

  // JNVM.free (§3.1, §4.1.5): frees the persistent structure and detaches
  // the proxy (subsequent accesses abort). Inside a failure-atomic block the
  // free is deferred to commit (§4.2). No fence in either case.
  void Free(PObject& obj);
  void Free(const Handle<PObject>& obj) {
    JNVM_CHECK(obj != nullptr);
    Free(*obj);
  }
  // Frees a persistent structure by raw reference, without a proxy (used by
  // container internals). Same deferral/fence semantics as Free().
  void FreeRef(nvm::Offset ref);

  // While the heap is in group-commit mode (src/server fence batching) and
  // no failure-atomic block is active, Free/FreeRef defer the actual
  // reclamation to this call — made after the batch's Psync, so freed
  // memory can never be reused before the unlink/swing that orphaned it is
  // durable. That ordering is what lets UpdateRefAndFreeOld and container
  // removal elide their pre-free fence under group commit.
  void DrainGroupFrees();

  // ---- Failure-atomic blocks (§2.5, §4.2) --------------------------------

  void FaStart();
  void FaEnd();
  // Abandons the current (possibly nested) block — test/tooling aid.
  void FaAbort();
  // Abort used by FaBlock when an exception unwinds through the block. A
  // no-op when no block is active: an inner FaBlock's unwind already
  // aborted the whole nest, and the outer guards must not re-trip.
  void FaUnwind();
  int FaDepth();
  // Entry capacity of this thread's J-PFA redo-log slot. Callers that batch
  // many mutations into one failure-atomic block (the txn apply path) size
  // the block against this — FaLog::Append aborts on overflow.
  uint64_t FaLogCapacity();
  // Fast per-thread lookup; nullptr when this thread never entered a block.
  pfa::FaContext* CurrentFaOrNull() const;

  // ---- Persistence primitives --------------------------------------------

  void Pfence() { heap_->Pfence(); }
  void Psync() { heap_->Psync(); }

  const RecoveryReport& recovery_report() const { return recovery_report_; }

  // Clean shutdown; also performed by the destructor.
  void Close();

  // Drops the runtime WITHOUT the clean-shutdown write. Used after a
  // simulated crash: the device must stay exactly as the failure left it so
  // that a subsequent Open exercises recovery.
  void Abandon() { closed_ = true; }

 private:
  friend RecoveryReport RecoverGraph(JnvmRuntime& rt);
  friend RecoveryReport RecoverBlockScan(JnvmRuntime& rt);

  JnvmRuntime() = default;

  static std::unique_ptr<JnvmRuntime> Boot(nvm::PmemDevice* dev,
                                           const RuntimeOptions& opts, bool format);
  void BootstrapRoot();

  std::unique_ptr<heap::Heap> heap_;
  std::unique_ptr<PoolManager> pools_;
  std::unique_ptr<pfa::FaManager> fa_;
  Handle<RootMap> root_;
  std::vector<std::pair<nvm::Offset, bool>> group_frees_;  // (ref, is_pool)
  RecoveryReport recovery_report_;
  uint64_t generation_ = 0;  // for the thread-local FA cache
  bool closed_ = false;

  std::mutex class_mu_;
  std::unordered_map<const ClassInfo*, uint16_t> class_ids_;
  std::vector<const ClassInfo*> class_by_id_;  // index = id
};

// RAII failure-atomic block:
//   { FaBlock fa(rt); ... }   ==   rt.FaStart(); ...; rt.FaEnd();
//
// If an exception unwinds through the scope, the block ABORTS instead of
// committing: the body did not finish, so committing would persist half of
// a failure-atomic mutation set. (This also keeps the crash simulation
// honest — a SimulatedCrash thrown mid-block must not run the commit
// protocol from this destructor after the simulated power cut.)
class FaBlock {
 public:
  explicit FaBlock(JnvmRuntime& rt)
      : rt_(rt), exceptions_on_entry_(std::uncaught_exceptions()) {
    rt_.FaStart();
  }
  ~FaBlock() noexcept(false) {
    if (std::uncaught_exceptions() > exceptions_on_entry_) {
      rt_.FaUnwind();
    } else {
      rt_.FaEnd();
    }
  }
  FaBlock(const FaBlock&) = delete;
  FaBlock& operator=(const FaBlock&) = delete;

 private:
  JnvmRuntime& rt_;
  const int exceptions_on_entry_;
};

}  // namespace jnvm::core

#endif  // JNVM_SRC_CORE_RUNTIME_H_
