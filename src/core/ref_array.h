// PRefArray — a fixed-capacity persistent array of references.
//
// The building block of the root map and of every J-PDT map/set (§4.3.2):
// the persistent part of a map is exactly an extensible array of references
// to key/value pairs, and mutating the map incurs a *single* reference write
// into this array, which keeps the persistent structure consistent at all
// times.
#ifndef JNVM_SRC_CORE_REF_ARRAY_H_
#define JNVM_SRC_CORE_REF_ARRAY_H_

#include "src/core/pobject.h"

namespace jnvm::core {

class PRefArray final : public PObject {
 public:
  static const ClassInfo* Class();

  explicit PRefArray(Resurrect) {}
  // Allocates with all slots null (the heap voids fresh payloads).
  PRefArray(JnvmRuntime& rt, uint64_t capacity);

  uint64_t capacity() const { return ReadField<uint64_t>(kCapacityOff); }

  nvm::Offset GetRaw(uint64_t i) const {
    JNVM_DCHECK(i < capacity());
    return ReadRefRaw(SlotOff(i));
  }

  // Single-word publication: store + queue line, no fence (§4.3.2 — "the
  // persistent data structure is always in a consistent state because
  // modifying it incurs a single write to NVMM").
  void SetRaw(uint64_t i, nvm::Offset ref) {
    JNVM_DCHECK(i < capacity());
    WriteRefRaw(SlotOff(i), ref);
    PwbField(SlotOff(i), sizeof(uint64_t));
  }

  Handle<PObject> Get(uint64_t i) const { return ReadPObject(SlotOff(i)); }
  void Set(uint64_t i, const PObject* obj) {
    SetRaw(i, obj == nullptr ? 0 : obj->addr());
  }

  // Atomic update per §4.1.6 (validates the target and fences first).
  void UpdateSlot(uint64_t i, PObject* target) { UpdateRef(SlotOff(i), target); }

  static size_t PayloadBytesFor(uint64_t capacity) {
    return kSlotsOff + capacity * sizeof(uint64_t);
  }

 private:
  static constexpr size_t kCapacityOff = 0;
  static constexpr size_t kSlotsOff = 8;
  static size_t SlotOff(uint64_t i) { return kSlotsOff + i * sizeof(uint64_t); }

  static void Trace(ObjectView& view, RefVisitor& v);
};

}  // namespace jnvm::core

#endif  // JNVM_SRC_CORE_REF_ARRAY_H_
