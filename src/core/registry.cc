#include "src/core/registry.h"

#include <deque>
#include <mutex>
#include <unordered_map>

#include "src/common/check.h"

namespace jnvm::core {

namespace {

struct RegistryState {
  std::mutex mu;
  std::deque<ClassInfo> storage;
  std::unordered_map<std::string, const ClassInfo*> by_name;
};

RegistryState& State() {
  static RegistryState* state = new RegistryState();  // leaked: registry lives forever
  return *state;
}

}  // namespace

const ClassInfo* RegisterClass(ClassInfo info) {
  JNVM_CHECK(!info.name.empty());
  JNVM_CHECK(static_cast<bool>(info.factory));
  RegistryState& state = State();
  std::lock_guard<std::mutex> lk(state.mu);
  JNVM_CHECK_MSG(state.by_name.find(info.name) == state.by_name.end(),
                 "duplicate persistent class name");
  state.storage.push_back(std::move(info));
  const ClassInfo* stable = &state.storage.back();
  state.by_name.emplace(stable->name, stable);
  return stable;
}

const ClassInfo* FindClass(const std::string& name) {
  RegistryState& state = State();
  std::lock_guard<std::mutex> lk(state.mu);
  auto it = state.by_name.find(name);
  return it == state.by_name.end() ? nullptr : it->second;
}

}  // namespace jnvm::core
