#include "src/core/integrity.h"

#include <cinttypes>
#include <unordered_set>

#include "src/core/object_view.h"
#include "src/pfa/fa_log.h"

namespace jnvm::core {

namespace {

class Auditor : public RefVisitor {
 public:
  Auditor(JnvmRuntime* rt, IntegrityReport* report)
      : rt_(rt), heap_(&rt->heap()), report_(report) {}

  void Run(nvm::Offset root) {
    if (root != 0) {
      PushMaster(root, "root");
    }
    while (!worklist_.empty()) {
      const nvm::Offset master = worklist_.back();
      worklist_.pop_back();
      if (!visited_.insert(master).second) {
        continue;
      }
      AuditObject(master);
    }
  }

  void VisitRef(ObjectView& view, size_t off) override {
    const nvm::Offset ref = view.Read<uint64_t>(off);
    if (ref == 0) {
      return;
    }
    if (ref < heap_->first_block() || ref >= heap_->bump()) {
      Violate("I6: reference 0x%" PRIx64 " outside the allocated range", ref);
      return;
    }
    if (heap_->IsBlockAligned(ref)) {
      PushMaster(ref, "reference");
    } else {
      AuditPoolSlot(ref);
    }
  }

 private:
  void PushMaster(nvm::Offset master, const char* what) {
    const heap::BlockHeader h = heap_->ReadHeader(master);
    if (!h.IsMaster()) {
      Violate("I2: %s 0x%" PRIx64 " is not a master block", what, master);
      return;
    }
    if (!h.valid) {
      Violate("I1: reachable object 0x%" PRIx64 " is invalid", master);
      return;
    }
    worklist_.push_back(master);
  }

  void AuditObject(nvm::Offset master) {
    ++report_->objects;
    const ClassInfo* info = rt_->ClassInfoForId(heap_->ClassIdOf(master));
    if (info == nullptr) {
      Violate("I2: object 0x%" PRIx64 " has an unregistered class id", master);
      return;
    }
    if (info->is_pool) {
      Violate("I2: block-aligned reference into pool class '%s'", info->name.c_str());
      return;
    }
    // I3/I4: chain shape and exclusive block ownership.
    std::vector<nvm::Offset> blocks;
    heap_->CollectBlocks(master, &blocks);  // aborts on cycles (I3)
    for (const nvm::Offset b : blocks) {
      ++report_->blocks;
      if (b >= heap_->bump()) {
        Violate("I6: block 0x%" PRIx64 " beyond the bump pointer", b);
      }
      if (!owned_.insert(b).second) {
        Violate("I4: block 0x%" PRIx64 " belongs to two objects", b);
      }
    }
    ObjectView view(heap_, master);
    if (info->trace) {
      info->trace(view, *this);
    }
  }

  void AuditPoolSlot(nvm::Offset slot) {
    ++report_->pool_slots;
    const nvm::Offset block = (slot / heap_->block_size()) * heap_->block_size();
    const heap::BlockHeader h = heap_->ReadHeader(block);
    const ClassInfo* info = rt_->ClassInfoForId(h.id);
    if (!h.IsMaster() || info == nullptr || !info->is_pool) {
      Violate("I2: pool reference 0x%" PRIx64 " into a non-pool block", slot);
      return;
    }
    // I5: the occupancy hint of a reachable slot must be set.
    const nvm::Offset payload = heap_->PayloadOf(block);
    const uint16_t slot_size = heap_->dev().Read<uint16_t>(payload);
    const uint32_t nslots =
        static_cast<uint32_t>((heap_->payload_per_block() - 2) / (slot_size + 1));
    const nvm::Offset slots_base = payload + 2 + nslots;
    const uint32_t index = static_cast<uint32_t>((slot - slots_base) / slot_size);
    if (index >= nslots || slots_base + static_cast<uint64_t>(index) * slot_size != slot) {
      Violate("I2: pool reference 0x%" PRIx64 " is not slot-aligned", slot);
      return;
    }
    if (heap_->dev().Read<uint8_t>(payload + 2 + index) == 0) {
      Violate("I5: reachable pool slot 0x%" PRIx64 " marked free", slot);
    }
    owned_.insert(block);  // pool blocks may be shared between slots only
  }

  template <typename... Args>
  void Violate(const char* fmt, Args... args) {
    char buf[256];
    std::snprintf(buf, sizeof(buf), fmt, args...);
    report_->violations.emplace_back(buf);
  }

  JnvmRuntime* rt_;
  Heap* heap_;
  IntegrityReport* report_;
  std::vector<nvm::Offset> worklist_;
  std::unordered_set<nvm::Offset> visited_;
  std::unordered_set<nvm::Offset> owned_;
};

}  // namespace

std::string IntegrityReport::Summary() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "%llu objects, %llu pool slots, %llu blocks, %zu violations",
                static_cast<unsigned long long>(objects),
                static_cast<unsigned long long>(pool_slots),
                static_cast<unsigned long long>(blocks), violations.size());
  std::string out = buf;
  for (const std::string& v : violations) {
    out += "\n  " + v;
  }
  return out;
}

IntegrityReport VerifyHeapIntegrity(JnvmRuntime& rt) {
  return VerifyHeapIntegrity(rt, IntegrityOptions{});
}

IntegrityReport VerifyHeapIntegrity(JnvmRuntime& rt, const IntegrityOptions& opts) {
  IntegrityReport report;
  Auditor auditor(&rt, &report);
  auditor.Run(rt.heap().root_master());
  if (opts.audit_fa_logs) {
    const pfa::LogAudit logs = pfa::AuditLogs(&rt.heap());
    if (logs.committed_slots != 0) {
      char buf[128];
      std::snprintf(buf, sizeof(buf),
                    "I7: %u FA log slot(s) still committed on a quiescent heap",
                    logs.committed_slots);
      report.violations.emplace_back(buf);
    }
    if (logs.active_slots != 0) {
      char buf[128];
      std::snprintf(buf, sizeof(buf),
                    "I7: %u FA log slot(s) hold %llu entries on a quiescent heap",
                    logs.active_slots,
                    static_cast<unsigned long long>(logs.pending_entries));
      report.violations.emplace_back(buf);
    }
  }
  return report;
}

}  // namespace jnvm::core
