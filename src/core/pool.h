// Memory pool allocators for small immutable objects (§4.4).
//
// A whole 256 B block per tiny object (e.g. a PString) would waste NVMM to
// internal fragmentation, so pools pack several same-sized objects into one
// block. Only *immutable* objects may share a block: the failure-atomic
// algorithm works at block granularity, and two concurrent in-flight copies
// of one block could diverge (§4.4).
//
// Pool block layout (payload of a master block whose header id is the
// element class id, valid = 1):
//   +0           u16 slot_size
//   +2           u8 occupancy[nslots]      (durability hint, see below)
//   +2+nslots    slots, slot_size bytes each
// with nslots = (payload - 2) / (slot_size + 1).
//
// The occupancy bytes are written without fences (set on allocation before
// the publish fence, cleared on free). They are a *hint*: the block-scan
// recovery trusts them (a crash can leak slots until the next full
// recovery), while the full graph recovery rewrites them precisely from the
// set of reachable slots — reachability, not the hint, decides liveness.
#ifndef JNVM_SRC_CORE_POOL_H_
#define JNVM_SRC_CORE_POOL_H_

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/heap/heap.h"

namespace jnvm::core {

using heap::Heap;
using nvm::Offset;

class PoolManager {
 public:
  explicit PoolManager(Heap* heap) : heap_(heap) {}

  // Largest object a pool can hold; bigger objects use a normal block chain.
  size_t max_slot_bytes() const;

  // Allocates a slot of at least `bytes` for pool class `class_id`. Sets the
  // occupancy hint and queues it (no fence: the publish fence of the
  // reference that makes the object reachable covers it). Returns 0 when the
  // heap is full.
  Offset AllocSlot(uint16_t class_id, size_t bytes);

  // Frees a slot: clears the occupancy hint (queued, no fence — §4.1.5
  // semantics) and recycles the slot in volatile memory.
  void FreeSlot(Offset slot);

  // Slot size of the pool block containing `slot` (used when attaching a
  // proxy to a pool object).
  static uint16_t SlotBytesOf(Heap* heap, Offset slot);

  // ---- Recovery ----------------------------------------------------------

  void ResetVolatile();

  // Full recovery: `live_by_block` maps each reachable pool block to its
  // reachable slot offsets. Occupancy hints are rewritten precisely and the
  // free lists rebuilt. Blocks absent from the map were swept by the heap.
  void RebuildFromLiveSlots(
      const std::unordered_map<Offset, std::vector<Offset>>& live_by_block);

  // Block-scan recovery: walks all valid masters of pool classes and trusts
  // their occupancy hints. Fully-empty pool blocks are freed.
  void RebuildByScan(const std::function<bool(uint16_t)>& is_pool_class);

  struct PoolStats {
    uint64_t slots_allocated = 0;
    uint64_t slots_freed = 0;
    uint64_t blocks_created = 0;
  };
  PoolStats stats() const;

 private:
  struct FreeList {
    std::vector<Offset> slots;
  };

  static size_t SizeClassFor(size_t bytes);
  static uint32_t NumSlots(size_t payload, size_t slot_size) {
    return static_cast<uint32_t>((payload - 2) / (slot_size + 1));
  }

  // Creates a fresh pool block and pushes its slots on `list`.
  bool AddBlock(uint16_t class_id, uint16_t slot_size, FreeList* list);
  void PushBlockSlots(Offset block, uint16_t slot_size, FreeList* list,
                      const std::vector<bool>* occupied);

  Heap* heap_;
  std::mutex mu_;
  std::map<std::pair<uint16_t, uint16_t>, FreeList> lists_;  // (class, slot size)
  PoolStats stats_;
};

}  // namespace jnvm::core

#endif  // JNVM_SRC_CORE_POOL_H_
