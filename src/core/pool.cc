#include "src/core/pool.h"

#include <algorithm>
#include <array>

namespace jnvm::core {

namespace {

// Size classes chosen so the per-block waste (headers + padding) stays
// small across the record/field sizes of the evaluation (§5.3.5 reports
// 21.2 % NVMM overhead for 100 B fields with 256 B blocks).
constexpr std::array<uint16_t, 10> kSizeClasses = {16, 24, 32, 48, 64,
                                                   96, 128, 160, 200, 245};

constexpr size_t kMetaSlotSizeOff = 0;  // u16 in pool block payload
constexpr size_t kMetaOccupancyOff = 2;

}  // namespace

size_t PoolManager::max_slot_bytes() const {
  // Must satisfy nslots >= 1 for the largest class.
  return kSizeClasses.back();
}

size_t PoolManager::SizeClassFor(size_t bytes) {
  for (const uint16_t sc : kSizeClasses) {
    if (bytes <= sc) {
      return sc;
    }
  }
  return 0;  // too large for any pool
}

uint16_t PoolManager::SlotBytesOf(Heap* heap, Offset slot) {
  const Offset block = (slot / heap->block_size()) * heap->block_size();
  return heap->dev().Read<uint16_t>(heap->PayloadOf(block) + kMetaSlotSizeOff);
}

bool PoolManager::AddBlock(uint16_t class_id, uint16_t slot_size, FreeList* list) {
  const Offset block = heap_->AllocBlockRaw();
  if (block == 0) {
    return false;
  }
  const size_t payload = heap_->payload_per_block();
  const uint32_t nslots = NumSlots(payload, slot_size);
  JNVM_CHECK(nslots >= 1);

  heap::BlockHeader h;
  h.id = class_id;
  h.valid = true;  // pool blocks carry the element class; liveness is per slot
  h.next = 0;
  heap_->dev().Write<uint64_t>(block, h.Pack());
  const Offset meta = heap_->PayloadOf(block);
  heap_->dev().Write<uint16_t>(meta + kMetaSlotSizeOff, slot_size);
  heap_->dev().Memset(meta + kMetaOccupancyOff, 0, nslots);
  heap_->PwbRange(block, kMetaOccupancyOff + nslots + heap::kBlockHeaderBytes);
  // No fence: the first published slot's fence makes the block durable.

  PushBlockSlots(block, slot_size, list, nullptr);
  ++stats_.blocks_created;
  return true;
}

void PoolManager::PushBlockSlots(Offset block, uint16_t slot_size, FreeList* list,
                                 const std::vector<bool>* occupied) {
  const size_t payload = heap_->payload_per_block();
  const uint32_t nslots = NumSlots(payload, slot_size);
  const Offset slots_base = heap_->PayloadOf(block) + kMetaOccupancyOff + nslots;
  for (uint32_t i = 0; i < nslots; ++i) {
    if (occupied != nullptr && (*occupied)[i]) {
      continue;
    }
    list->slots.push_back(slots_base + static_cast<Offset>(i) * slot_size);
  }
}

Offset PoolManager::AllocSlot(uint16_t class_id, size_t bytes) {
  const size_t sc = SizeClassFor(bytes);
  JNVM_CHECK_MSG(sc != 0, "object too large for pool allocation");
  std::lock_guard<std::mutex> lk(mu_);
  FreeList& list = lists_[{class_id, static_cast<uint16_t>(sc)}];
  if (list.slots.empty() && !AddBlock(class_id, static_cast<uint16_t>(sc), &list)) {
    return 0;
  }
  const Offset slot = list.slots.back();
  list.slots.pop_back();

  // Occupancy hint: set before the publish fence of the enclosing object.
  const Offset block = (slot / heap_->block_size()) * heap_->block_size();
  const uint32_t nslots = NumSlots(heap_->payload_per_block(), static_cast<uint16_t>(sc));
  const Offset slots_base = heap_->PayloadOf(block) + kMetaOccupancyOff + nslots;
  const uint32_t index = static_cast<uint32_t>((slot - slots_base) / sc);
  const Offset occ = heap_->PayloadOf(block) + kMetaOccupancyOff + index;
  heap_->dev().Write<uint8_t>(occ, 1);
  heap_->Pwb(occ);
  ++stats_.slots_allocated;
  return slot;
}

void PoolManager::FreeSlot(Offset slot) {
  const Offset block = (slot / heap_->block_size()) * heap_->block_size();
  const uint16_t class_id = heap_->ClassIdOf(block);
  const uint16_t slot_size = SlotBytesOf(heap_, slot);
  const uint32_t nslots = NumSlots(heap_->payload_per_block(), slot_size);
  const Offset slots_base = heap_->PayloadOf(block) + kMetaOccupancyOff + nslots;
  const uint32_t index = static_cast<uint32_t>((slot - slots_base) / slot_size);
  JNVM_DCHECK(slots_base + static_cast<Offset>(index) * slot_size == slot);

  const Offset occ = heap_->PayloadOf(block) + kMetaOccupancyOff + index;
  heap_->dev().Write<uint8_t>(occ, 0);
  heap_->Pwb(occ);  // no fence, like JNVM.free (§4.1.5)

  std::lock_guard<std::mutex> lk(mu_);
  lists_[{class_id, slot_size}].slots.push_back(slot);
  ++stats_.slots_freed;
}

void PoolManager::ResetVolatile() {
  std::lock_guard<std::mutex> lk(mu_);
  lists_.clear();
}

void PoolManager::RebuildFromLiveSlots(
    const std::unordered_map<Offset, std::vector<Offset>>& live_by_block) {
  std::lock_guard<std::mutex> lk(mu_);
  lists_.clear();
  for (const auto& [block, live_slots] : live_by_block) {
    const uint16_t class_id = heap_->ClassIdOf(block);
    const uint16_t slot_size =
        heap_->dev().Read<uint16_t>(heap_->PayloadOf(block) + kMetaSlotSizeOff);
    const uint32_t nslots = NumSlots(heap_->payload_per_block(), slot_size);
    const Offset slots_base = heap_->PayloadOf(block) + kMetaOccupancyOff + nslots;

    std::vector<bool> occupied(nslots, false);
    for (const Offset slot : live_slots) {
      const uint32_t index = static_cast<uint32_t>((slot - slots_base) / slot_size);
      JNVM_CHECK(index < nslots);
      occupied[index] = true;
    }
    // Rewrite the hints precisely (reachability is the ground truth).
    for (uint32_t i = 0; i < nslots; ++i) {
      heap_->dev().Write<uint8_t>(heap_->PayloadOf(block) + kMetaOccupancyOff + i,
                                  occupied[i] ? 1 : 0);
    }
    heap_->PwbRange(heap_->PayloadOf(block) + kMetaOccupancyOff, nslots);
    PushBlockSlots(block, slot_size, &lists_[{class_id, slot_size}], &occupied);
  }
  // The caller (core recovery) fences once at the end of the procedure.
}

void PoolManager::RebuildByScan(const std::function<bool(uint16_t)>& is_pool_class) {
  std::lock_guard<std::mutex> lk(mu_);
  lists_.clear();
  const Offset end = heap_->bump();
  for (Offset block = heap_->first_block(); block < end; block += heap_->block_size()) {
    const heap::BlockHeader h = heap_->ReadHeader(block);
    if (!h.IsMaster() || !h.valid || !is_pool_class(h.id)) {
      continue;
    }
    const uint16_t slot_size =
        heap_->dev().Read<uint16_t>(heap_->PayloadOf(block) + kMetaSlotSizeOff);
    const uint32_t nslots = NumSlots(heap_->payload_per_block(), slot_size);
    std::vector<bool> occupied(nslots, false);
    bool any_live = false;
    for (uint32_t i = 0; i < nslots; ++i) {
      const uint8_t occ =
          heap_->dev().Read<uint8_t>(heap_->PayloadOf(block) + kMetaOccupancyOff + i);
      occupied[i] = occ != 0;
      any_live = any_live || occupied[i];
    }
    if (!any_live) {
      heap_->FreeObject(block);
      continue;
    }
    PushBlockSlots(block, slot_size, &lists_[{h.id, slot_size}], &occupied);
  }
}

PoolManager::PoolStats PoolManager::stats() const { return stats_; }

}  // namespace jnvm::core
