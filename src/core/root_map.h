// The persistent root map (§2.5): "A persistent memory region contains by
// default the persistent map JNVM.root. This map associates names with the
// root persistent objects used by the application."
//
// Liveness by reachability (§2.4) starts here: an object is alive iff it is
// reachable from this map (and valid). The map follows the J-PDT design
// (§4.3.2): the durable state is a PRefArray of references to entry objects;
// a volatile mirror (hash map keyed by name) and a volatile free-slot list
// implement the lookup logic and are rebuilt on resurrection.
//
// Put/Remove are failure-atomic; Wput is the weak variant used by the
// low-level interface (Figure 5): no fences, the caller batches validation
// under one pfence.
#ifndef JNVM_SRC_CORE_ROOT_MAP_H_
#define JNVM_SRC_CORE_ROOT_MAP_H_

#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/core/ref_array.h"

namespace jnvm::core {

// One name→value binding. Payload: {u64 value_ref, u16 key_len, key bytes}.
class RootEntry final : public PObject {
 public:
  static const ClassInfo* Class();

  explicit RootEntry(Resurrect) {}
  RootEntry(JnvmRuntime& rt, const std::string& key, const PObject* value);

  std::string Key() const;
  nvm::Offset ValueRaw() const { return ReadRefRaw(kValueOff); }
  Handle<PObject> Value() const { return ReadPObject(kValueOff); }
  // Atomic replace of the value (§4.1.6). Does not free the old value: the
  // application owns persistent object lifetimes (§2.6).
  void SetValue(PObject* value) { UpdateRef(kValueOff, value); }

 private:
  static constexpr size_t kValueOff = 0;
  static constexpr size_t kKeyLenOff = 8;
  static constexpr size_t kKeyOff = 10;

  static void Trace(ObjectView& view, RefVisitor& v);
};

class RootMap final : public PObject {
 public:
  static const ClassInfo* Class();

  explicit RootMap(Resurrect) {}
  RootMap(JnvmRuntime& rt, uint64_t initial_capacity = 64);

  void Resurrect_() override;  // rebuilds the volatile mirror

  bool Exists(const std::string& name);
  Handle<PObject> Get(const std::string& name);
  template <typename T>
  Handle<T> GetAs(const std::string& name) {
    return std::static_pointer_cast<T>(Get(name));
  }

  // Failure-atomic insert-or-replace.
  void Put(const std::string& name, PObject* value);
  // Weak insert-or-replace (Figure 5 `wput`): no fence, no failure-atomic
  // block. The caller is responsible for the publication fence.
  void Wput(const std::string& name, PObject* value);
  // Failure-atomic removal of the binding (frees the entry, not the value).
  bool Remove(const std::string& name);

  size_t Size();
  std::vector<std::string> Keys();

 private:
  static constexpr size_t kArrOff = 0;

  static void Trace(ObjectView& view, RefVisitor& v);

  void WputLocked(const std::string& name, PObject* value);
  uint64_t TakeSlotLocked();  // grows the array when exhausted

  std::mutex mu_;
  Handle<PRefArray> arr_;                          // transient
  std::unordered_map<std::string, uint64_t> mirror_;  // name -> slot
  std::vector<uint64_t> free_slots_;
};

}  // namespace jnvm::core

#endif  // JNVM_SRC_CORE_ROOT_MAP_H_
