#include "src/gcsim/managed_heap.h"

#include "src/common/clock.h"

namespace jnvm::gcsim {

ManagedHeap::~ManagedHeap() {
  for (Node& n : nodes_) {
    if (n.live) {
      FreeNode(n);
    }
  }
}

void ManagedHeap::FreeNode(Node& n) {
  if (n.external != nullptr && n.deleter != nullptr) {
    n.deleter(n.external);
  }
  n.external = nullptr;
  n.deleter = nullptr;
  n.refs.clear();
  n.refs.shrink_to_fit();
  n.live = false;
}

void ManagedHeap::MaybeCollectLocked(uint64_t incoming_bytes) {
  allocated_since_gc_ += incoming_bytes;
  stats_.bytes_allocated += incoming_bytes;
  if (opts_.gc_trigger_bytes == 0) {
    return;
  }
  if (opts_.mode == GcMode::kStopTheWorld) {
    if (allocated_since_gc_ >= opts_.gc_trigger_bytes) {
      CollectLocked();
    }
    return;
  }
  // Incremental: pace marking slices against the allocation rate so a
  // cycle's work spreads across one trigger window (G1/go-pmem style).
  if (marking_) {
    const uint64_t step_every = opts_.gc_trigger_bytes / 64 + 1;
    if (allocated_since_gc_ / step_every != last_step_bucket_) {
      last_step_bucket_ = allocated_since_gc_ / step_every;
      IncrementalStepLocked();
    }
  } else if (allocated_since_gc_ >= opts_.gc_trigger_bytes) {
    StartIncrementalCycleLocked();
  }
}

void ManagedHeap::ShadeLocked(ObjRef obj) {
  if (obj == 0) {
    return;
  }
  Node& n = nodes_[obj];
  if (n.live && !n.marked) {
    n.marked = true;  // gray: shaded, children not yet scanned
    gray_.push_back(obj);
  }
}

void ManagedHeap::StartIncrementalCycleLocked() {
  const uint64_t start = NowNs();
  marking_ = true;
  cycle_marked_ = 0;
  last_step_bucket_ = 0;
  allocated_since_gc_ = 0;
  gray_.clear();
  for (const ObjRef root : roots_) {
    ShadeLocked(root);
  }
  const uint64_t pause = NowNs() - start;
  stats_.gc_ns_total += pause;
  pauses_.Record(pause);
}

void ManagedHeap::IncrementalStepLocked() {
  const uint64_t start = NowNs();
  if (sweep_cursor_ == 0) {
    // Marking phase: the budget counts *edges*, and a large object is
    // scanned across slices (scan_pos remembers the resume point) so no
    // single giant fan-out blows the pause bound.
    uint32_t budget = opts_.mark_budget_per_step;
    while (budget > 0 && !gray_.empty()) {
      const ObjRef ref = gray_.back();
      gray_.pop_back();
      Node& n = nodes_[ref];
      if (!n.live) {
        continue;
      }
      while (n.scan_pos < n.refs.size() && budget > 0) {
        ShadeLocked(n.refs[n.scan_pos]);
        ++n.scan_pos;
        --budget;
      }
      if (n.scan_pos < n.refs.size()) {
        gray_.push_back(ref);  // resume this object next slice
      } else {
        n.scan_pos = 0;
        ++cycle_marked_;
        if (budget > 0) {
          --budget;  // charge the node itself
        }
      }
    }
    if (gray_.empty()) {
      sweep_cursor_ = 1;  // marking done; sweep in slices too
    }
  } else {
    // Sweeping phase: reclaim up to 4x the mark budget per slice (sweeping
    // is cheaper per object than tracing).
    uint32_t budget = opts_.mark_budget_per_step * 4;
    while (budget > 0 && sweep_cursor_ < nodes_.size()) {
      Node& n = nodes_[sweep_cursor_];
      ++sweep_cursor_;
      --budget;
      if (!n.live) {
        continue;
      }
      if (n.marked) {
        n.marked = false;
        continue;
      }
      stats_.live_objects -= 1;
      stats_.live_bytes -= n.bytes;
      FreeNode(n);
      free_list_.push_back(static_cast<ObjRef>(sweep_cursor_ - 1));
      stats_.swept_total += 1;
    }
    if (sweep_cursor_ >= nodes_.size()) {
      sweep_cursor_ = 0;
      marking_ = false;
      stats_.collections += 1;
      stats_.marked_total += cycle_marked_;
    }
  }
  const uint64_t pause = NowNs() - start;
  stats_.gc_ns_total += pause;
  pauses_.Record(pause);
}

ObjRef ManagedHeap::Alloc(uint32_t nrefs, uint64_t bytes, void* external,
                          void (*deleter)(void*)) {
  std::unique_lock<std::mutex> lk(mu_);
  MaybeCollectLocked(bytes);
  return AllocNodeLocked(nrefs, bytes, external, deleter);
}

ObjRef ManagedHeap::AllocGraph(uint64_t parent_bytes,
                               const std::vector<uint64_t>& child_bytes,
                               void* external, void (*deleter)(void*)) {
  std::unique_lock<std::mutex> lk(mu_);
  uint64_t total = parent_bytes;
  for (const uint64_t b : child_bytes) {
    total += b;
  }
  MaybeCollectLocked(total);
  const ObjRef parent = AllocNodeLocked(static_cast<uint32_t>(child_bytes.size()),
                                        parent_bytes, external, deleter);
  for (size_t i = 0; i < child_bytes.size(); ++i) {
    nodes_[parent].refs[i] = AllocNodeLocked(0, child_bytes[i], nullptr, nullptr);
  }
  return parent;
}

ObjRef ManagedHeap::AllocInto(ObjRef parent, uint32_t slot, uint64_t bytes) {
  std::unique_lock<std::mutex> lk(mu_);
  MaybeCollectLocked(bytes);
  JNVM_DCHECK(parent != 0 && nodes_[parent].live);
  const ObjRef child = AllocNodeLocked(0, bytes, nullptr, nullptr);
  nodes_[parent].refs.at(slot) = child;
  return child;
}

ObjRef ManagedHeap::AllocNodeLocked(uint32_t nrefs, uint64_t bytes, void* external,
                                    void (*deleter)(void*)) {
  ObjRef ref;
  if (!free_list_.empty()) {
    ref = free_list_.back();
    free_list_.pop_back();
  } else {
    if (nodes_.empty()) {
      nodes_.emplace_back();  // handle 0 = null
    }
    nodes_.emplace_back();
    ref = static_cast<ObjRef>(nodes_.size() - 1);
  }
  Node& n = nodes_[ref];
  n.bytes = bytes;
  n.external = external;
  n.deleter = deleter;
  n.refs.assign(nrefs, 0);
  // During an incremental cycle newborns are allocated black: they cannot
  // be freed by the in-flight sweep.
  n.marked = marking_;
  n.live = true;
  stats_.live_objects += 1;
  stats_.live_bytes += bytes;
  return ref;
}

void ManagedHeap::SetRef(ObjRef obj, uint32_t slot, ObjRef target) {
  std::lock_guard<std::mutex> lk(mu_);
  JNVM_DCHECK(obj != 0 && nodes_[obj].live);
  nodes_[obj].refs.at(slot) = target;
  if (marking_) {
    ShadeLocked(target);  // Dijkstra insertion barrier
  }
}

ObjRef ManagedHeap::GetRef(ObjRef obj, uint32_t slot) const {
  std::lock_guard<std::mutex> lk(mu_);
  JNVM_DCHECK(obj != 0 && nodes_[obj].live);
  return nodes_[obj].refs.at(slot);
}

void* ManagedHeap::External(ObjRef obj) const {
  std::lock_guard<std::mutex> lk(mu_);
  JNVM_DCHECK(obj != 0 && nodes_[obj].live);
  return nodes_[obj].external;
}

void ManagedHeap::AddRoot(ObjRef obj) {
  std::lock_guard<std::mutex> lk(mu_);
  roots_.insert(obj);
  if (marking_) {
    ShadeLocked(obj);  // roots added mid-cycle must survive it
  }
}

void ManagedHeap::RemoveRoot(ObjRef obj) {
  std::lock_guard<std::mutex> lk(mu_);
  roots_.erase(obj);
}

void ManagedHeap::Collect() {
  std::lock_guard<std::mutex> lk(mu_);
  if (opts_.mode == GcMode::kIncremental) {
    if (!marking_) {
      StartIncrementalCycleLocked();
    }
    while (marking_) {
      IncrementalStepLocked();
    }
    return;
  }
  CollectLocked();
}

void ManagedHeap::MaybeCollect() {
  std::lock_guard<std::mutex> lk(mu_);
  MaybeCollectLocked(0);
}

void ManagedHeap::CollectLocked() {
  const uint64_t start = NowNs();
  allocated_since_gc_ = 0;

  // Mark: worklist traversal from the roots. Every live object costs a
  // visit — this linearity in the live set is the effect of §2.2.1.
  std::vector<ObjRef> worklist(roots_.begin(), roots_.end());
  uint64_t marked = 0;
  while (!worklist.empty()) {
    const ObjRef ref = worklist.back();
    worklist.pop_back();
    if (ref == 0) {
      continue;
    }
    Node& n = nodes_[ref];
    if (!n.live || n.marked) {
      continue;
    }
    n.marked = true;
    ++marked;
    for (const ObjRef child : n.refs) {
      if (child != 0 && !nodes_[child].marked) {
        worklist.push_back(child);
      }
    }
  }

  // Sweep.
  uint64_t swept = 0;
  for (ObjRef ref = 1; ref < nodes_.size(); ++ref) {
    Node& n = nodes_[ref];
    if (!n.live) {
      continue;
    }
    if (n.marked) {
      n.marked = false;
      continue;
    }
    stats_.live_objects -= 1;
    stats_.live_bytes -= n.bytes;
    FreeNode(n);
    free_list_.push_back(ref);
    ++swept;
  }

  const uint64_t pause = NowNs() - start;
  stats_.collections += 1;
  stats_.gc_ns_total += pause;
  stats_.marked_total += marked;
  stats_.swept_total += swept;
  pauses_.Record(pause);
}

GcStats ManagedHeap::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

}  // namespace jnvm::gcsim
