// A managed-heap simulator with a tracing garbage collector.
//
// This substitutes for the JVM (HotSpot/G1) and the go-pmem runtime in the
// paper's motivation experiments (§2.2.1, Figures 1 and 2) and provides the
// "Volatile" baselines of §5. What those experiments measure is the cost of
// *tracing a large live object graph*: GC work grows with the number of live
// objects, compute work does not. A real mark-sweep collector over a real
// handle graph reproduces that mechanism exactly. Two modes: stop-the-world
// mark-sweep, and tri-color incremental marking with a Dijkstra insertion
// barrier (go-pmem/G1 style pause bounding) — same total tracing work, paid
// in slices.
//
// Objects are handle-addressed. Each object has reference slots (traced) and
// an optional *external* payload — a C++ object owned by the managed heap
// and destroyed when the object is collected. External payloads let callers
// attach rich values (records) without marshalling, exactly like Java object
// fields.
//
// In *integrated* mode (go-pmem's design) persistent objects live in the
// same collected heap: the collector visits them on every cycle, which is
// the effect Figure 2 quantifies.
#ifndef JNVM_SRC_GCSIM_MANAGED_HEAP_H_
#define JNVM_SRC_GCSIM_MANAGED_HEAP_H_

#include <cstdint>
#include <mutex>
#include <unordered_set>
#include <vector>

#include "src/common/check.h"
#include "src/common/histogram.h"

namespace jnvm::gcsim {

// Handle to a managed object; 0 is null.
using ObjRef = uint32_t;

enum class GcMode {
  // Classic stop-the-world mark-sweep: one pause per cycle, linear in the
  // live set (the cost §2.2.1 measures).
  kStopTheWorld,
  // Tri-color incremental marking (Dijkstra insertion barrier, black
  // allocation), go-pmem/G1 style: the same total work, paid in bounded
  // slices interleaved with allocation — shorter pauses, same throughput
  // tax. The sweep is one final slice.
  kIncremental,
};

struct GcOptions {
  // A collection runs after this many bytes of allocation (go-pmem's
  // "collection every N GB of allocation", scaled). 0 disables GC entirely.
  uint64_t gc_trigger_bytes = 64ull << 20;
  GcMode mode = GcMode::kStopTheWorld;
  // kIncremental: objects marked per slice.
  uint32_t mark_budget_per_step = 2048;
};

struct GcStats {
  uint64_t collections = 0;
  uint64_t gc_ns_total = 0;
  uint64_t marked_total = 0;     // objects visited across all cycles
  uint64_t swept_total = 0;      // objects freed across all cycles
  uint64_t bytes_allocated = 0;  // lifetime allocation volume
  uint64_t live_objects = 0;
  uint64_t live_bytes = 0;
};

class ManagedHeap {
 public:
  explicit ManagedHeap(const GcOptions& opts) : opts_(opts) {}
  ~ManagedHeap();
  ManagedHeap(const ManagedHeap&) = delete;
  ManagedHeap& operator=(const ManagedHeap&) = delete;

  // Allocates an object with `nrefs` traced slots. `bytes` is the accounted
  // size (drives the GC trigger and heap statistics). `external` is adopted
  // and destroyed with `deleter` when the object dies.
  ObjRef Alloc(uint32_t nrefs, uint64_t bytes, void* external = nullptr,
               void (*deleter)(void*) = nullptr);

  // Atomically allocates a parent with one child per entry of `child_bytes`
  // and links them — no collection can observe the half-built graph.
  ObjRef AllocGraph(uint64_t parent_bytes, const std::vector<uint64_t>& child_bytes,
                    void* external = nullptr, void (*deleter)(void*) = nullptr);

  // Allocates a leaf object and links it into parent.refs[slot] atomically
  // (replacing any previous child, which becomes floating garbage).
  ObjRef AllocInto(ObjRef parent, uint32_t slot, uint64_t bytes);

  void SetRef(ObjRef obj, uint32_t slot, ObjRef target);
  ObjRef GetRef(ObjRef obj, uint32_t slot) const;
  void* External(ObjRef obj) const;

  void AddRoot(ObjRef obj);
  void RemoveRoot(ObjRef obj);

  // Forces a stop-the-world mark-sweep cycle.
  void Collect();
  // Invoked by Alloc; public so workloads can poll at op boundaries.
  void MaybeCollect();

  GcStats stats() const;
  const Histogram& pause_histogram() const { return pauses_; }

 private:
  struct Node {
    uint64_t bytes = 0;
    void* external = nullptr;
    void (*deleter)(void*) = nullptr;
    std::vector<ObjRef> refs;
    uint32_t scan_pos = 0;  // incremental marking: next child to scan
    bool marked = false;
    bool live = false;  // slot in use
  };

  void FreeNode(Node& n);
  void CollectLocked();
  ObjRef AllocNodeLocked(uint32_t nrefs, uint64_t bytes, void* external,
                         void (*deleter)(void*));
  void MaybeCollectLocked(uint64_t incoming_bytes);

  // Incremental mode internals.
  void StartIncrementalCycleLocked();
  void IncrementalStepLocked();
  void ShadeLocked(ObjRef obj);  // Dijkstra insertion barrier

  GcOptions opts_;
  mutable std::mutex mu_;
  std::vector<Node> nodes_;        // index = handle (0 unused)
  std::vector<ObjRef> free_list_;  // recycled handles
  std::unordered_set<ObjRef> roots_;
  uint64_t allocated_since_gc_ = 0;
  GcStats stats_;
  Histogram pauses_;

  // Incremental-cycle state.
  bool marking_ = false;           // a cycle (marking or sweeping) is active
  std::vector<ObjRef> gray_;       // tri-color worklist
  uint64_t cycle_marked_ = 0;
  uint64_t last_step_bucket_ = 0;
  size_t sweep_cursor_ = 0;        // 0 = marking phase; else next sweep index
};

}  // namespace jnvm::gcsim

#endif  // JNVM_SRC_GCSIM_MANAGED_HEAP_H_
