#include "src/tpcb/bank.h"

namespace jnvm::tpcb {

const core::ClassInfo* PAccount::Class() {
  static const core::ClassInfo* info =
      RegisterClass(core::MakeClassInfo<PAccount>("jnvm.tpcb.PAccount"));
  return info;
}

// ---- JpfaBank ---------------------------------------------------------------

JpfaBank::JpfaBank(core::JnvmRuntime* rt) : rt_(rt) {
  accounts_ = rt->root().GetAs<pdt::PLongHashMap>("bank.accounts");
  if (accounts_ == nullptr) {
    accounts_ = std::make_shared<pdt::PLongHashMap>(*rt, 1024);
    accounts_->Pwb();
    rt->root().Put("bank.accounts", accounts_.get());
  }
  accounts_->SetCaching(pdt::ProxyCaching::kCached);
}

void JpfaBank::CreateAccounts(uint64_t n, int64_t initial) {
  for (uint64_t i = 0; i < n; ++i) {
    // Allocation and insertion share one failure-atomic block: the bank can
    // never leave an invalid account reachable — the precondition for the
    // J-PFA-nogc recovery (§5.3.3).
    rt_->FaStart();
    PAccount acc(*rt_, initial);
    accounts_->Put(static_cast<int64_t>(i), &acc, /*free_old_value=*/false);
    rt_->FaEnd();
  }
}

void JpfaBank::Transfer(int64_t from, int64_t to, int64_t amount) {
  std::lock_guard<std::mutex> lk(mu_);
  const auto a = accounts_->GetAs<PAccount>(from);
  const auto b = accounts_->GetAs<PAccount>(to);
  JNVM_CHECK(a != nullptr && b != nullptr);
  rt_->FaStart();
  a->SetBalance(a->Balance() - amount);
  b->SetBalance(b->Balance() + amount);
  rt_->FaEnd();
}

int64_t JpfaBank::Balance(int64_t id) {
  const auto a = accounts_->GetAs<PAccount>(id);
  return a == nullptr ? 0 : a->Balance();
}

uint64_t JpfaBank::NumAccounts() { return accounts_->Size(); }

// ---- FsBank ------------------------------------------------------------------

std::string FsBank::KeyFor(int64_t id) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "acct%lld", static_cast<long long>(id));
  return buf;
}

void FsBank::CreateAccounts(uint64_t n, int64_t initial) {
  store::Record r;
  r.fields.resize(2);
  r.fields[0].assign(reinterpret_cast<const char*>(&initial), 8);
  r.fields[1].assign(PAccount::kBytes - 8, 'x');  // filler to 140 B
  for (uint64_t i = 0; i < n; ++i) {
    kv_->Insert(KeyFor(static_cast<int64_t>(i)), r);
  }
  std::lock_guard<std::mutex> lk(mu_);
  count_ = n;
}

void FsBank::Transfer(int64_t from, int64_t to, int64_t amount) {
  std::lock_guard<std::mutex> lk(mu_);
  store::Record a;
  store::Record b;
  JNVM_CHECK(kv_->Read(KeyFor(from), &a));
  JNVM_CHECK(kv_->Read(KeyFor(to), &b));
  int64_t ab;
  int64_t bb;
  memcpy(&ab, a.fields[0].data(), 8);
  memcpy(&bb, b.fields[0].data(), 8);
  ab -= amount;
  bb += amount;
  std::string av(reinterpret_cast<const char*>(&ab), 8);
  std::string bv(reinterpret_cast<const char*>(&bb), 8);
  kv_->Update(KeyFor(from), 0, av);
  kv_->Update(KeyFor(to), 0, bv);
}

int64_t FsBank::Balance(int64_t id) {
  store::Record r;
  if (!kv_->Read(KeyFor(id), &r)) {
    return 0;
  }
  int64_t v;
  memcpy(&v, r.fields[0].data(), 8);
  return v;
}

uint64_t FsBank::NumAccounts() { return kv_->backend().Size(); }

// ---- VolatileBank ---------------------------------------------------------------

void VolatileBank::CreateAccounts(uint64_t n, int64_t initial) {
  std::lock_guard<std::mutex> lk(mu_);
  balances_.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    balances_[static_cast<int64_t>(i)] = initial;
  }
}

void VolatileBank::Transfer(int64_t from, int64_t to, int64_t amount) {
  std::lock_guard<std::mutex> lk(mu_);
  balances_[from] -= amount;  // operator[] recreates lost accounts at 0
  balances_[to] += amount;
}

int64_t VolatileBank::Balance(int64_t id) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = balances_.find(id);
  return it == balances_.end() ? 0 : it->second;
}

uint64_t VolatileBank::NumAccounts() {
  std::lock_guard<std::mutex> lk(mu_);
  return balances_.size();
}

// ---- TpcbFullBank ----------------------------------------------------------

// History record: {i64 account, i64 teller, i64 branch, i64 delta}.
class PHistoryRow final : public core::PObject {
 public:
  static const core::ClassInfo* Class() {
    static const core::ClassInfo* info =
        RegisterClass(core::MakeClassInfo<PHistoryRow>("jnvm.tpcb.PHistoryRow"));
    return info;
  }
  explicit PHistoryRow(core::Resurrect) {}
  PHistoryRow(core::JnvmRuntime& rt, int64_t account, int64_t teller,
              int64_t branch, int64_t delta) {
    AllocatePersistent(rt, Class(), 32, /*zero=*/false);
    WriteField<int64_t>(0, account);
    WriteField<int64_t>(8, teller);
    WriteField<int64_t>(16, branch);
    WriteField<int64_t>(24, delta);
    Pwb();
  }
  int64_t Delta() const { return ReadField<int64_t>(24); }
};

namespace {

core::Handle<pdt::PLongHashMap> GetOrCreateTable(core::JnvmRuntime* rt,
                                                 const std::string& name) {
  auto t = rt->root().GetAs<pdt::PLongHashMap>(name);
  if (t == nullptr) {
    t = std::make_shared<pdt::PLongHashMap>(*rt, 256);
    t->Pwb();
    rt->root().Put(name, t.get());
  }
  t->SetCaching(pdt::ProxyCaching::kCached);
  return t;
}

}  // namespace

TpcbFullBank::TpcbFullBank(core::JnvmRuntime* rt) : rt_(rt) {
  accounts_ = GetOrCreateTable(rt, "tpcb.accounts");
  tellers_ = GetOrCreateTable(rt, "tpcb.tellers");
  branches_ = GetOrCreateTable(rt, "tpcb.branches");
  history_ = rt->root().GetAs<pdt::PExtArray>("tpcb.history");
  if (history_ == nullptr) {
    history_ = std::make_shared<pdt::PExtArray>(*rt, 64);
    history_->Pwb();
    rt->root().Put("tpcb.history", history_.get());
  }
}

void TpcbFullBank::Create(int64_t branches) {
  for (int64_t b = 0; b < branches; ++b) {
    rt_->FaStart();
    PAccount branch(*rt_, 0);
    branches_->Put(b, &branch, false);
    rt_->FaEnd();
    for (int64_t t = 0; t < kTellersPerBranch; ++t) {
      rt_->FaStart();
      PAccount teller(*rt_, 0);
      tellers_->Put(b * kTellersPerBranch + t, &teller, false);
      rt_->FaEnd();
    }
    for (int64_t a = 0; a < kAccountsPerBranch; ++a) {
      rt_->FaStart();
      PAccount account(*rt_, 0);
      accounts_->Put(b * kAccountsPerBranch + a, &account, false);
      rt_->FaEnd();
    }
  }
}

void TpcbFullBank::Transaction(int64_t account_id, int64_t teller_id,
                               int64_t delta) {
  std::lock_guard<std::mutex> lk(mu_);
  const int64_t branch_id = account_id / kAccountsPerBranch;
  const auto account = accounts_->GetAs<PAccount>(account_id);
  const auto teller = tellers_->GetAs<PAccount>(teller_id);
  const auto branch = branches_->GetAs<PAccount>(branch_id);
  JNVM_CHECK(account != nullptr && teller != nullptr && branch != nullptr);
  // The TPC-B profile, §5.3.3 style: all four updates in one atomic block.
  rt_->FaStart();
  account->SetBalance(account->Balance() + delta);
  teller->SetBalance(teller->Balance() + delta);
  branch->SetBalance(branch->Balance() + delta);
  PHistoryRow row(*rt_, account_id, teller_id, branch_id, delta);
  history_->Append(&row);
  rt_->FaEnd();
}

core::Handle<PAccount> TpcbFullBank::Load(pdt::PLongHashMap& table, int64_t id) {
  return table.GetAs<PAccount>(id);
}

int64_t TpcbFullBank::AccountBalance(int64_t id) {
  const auto a = Load(*accounts_, id);
  return a == nullptr ? 0 : a->Balance();
}
int64_t TpcbFullBank::TellerBalance(int64_t id) {
  const auto a = Load(*tellers_, id);
  return a == nullptr ? 0 : a->Balance();
}
int64_t TpcbFullBank::BranchBalance(int64_t id) {
  const auto a = Load(*branches_, id);
  return a == nullptr ? 0 : a->Balance();
}
uint64_t TpcbFullBank::HistorySize() { return history_->Size(); }
int64_t TpcbFullBank::NumBranches() {
  return static_cast<int64_t>(branches_->Size());
}

bool TpcbFullBank::CheckConsistent(std::string* why) {
  std::lock_guard<std::mutex> lk(mu_);
  int64_t accounts_sum = 0;
  accounts_->ForEach([&](const int64_t&, core::Handle<core::PObject> v) {
    accounts_sum += static_cast<PAccount&>(*v).Balance();
  });
  int64_t tellers_sum = 0;
  tellers_->ForEach([&](const int64_t&, core::Handle<core::PObject> v) {
    tellers_sum += static_cast<PAccount&>(*v).Balance();
  });
  int64_t branches_sum = 0;
  branches_->ForEach([&](const int64_t&, core::Handle<core::PObject> v) {
    branches_sum += static_cast<PAccount&>(*v).Balance();
  });
  int64_t history_sum = 0;
  for (uint64_t i = 0; i < history_->Size(); ++i) {
    history_sum +=
        std::static_pointer_cast<PHistoryRow>(history_->Get(i))->Delta();
  }
  const bool ok = accounts_sum == tellers_sum && tellers_sum == branches_sum &&
                  branches_sum == history_sum;
  if (!ok && why != nullptr) {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "accounts=%lld tellers=%lld branches=%lld history=%lld",
                  static_cast<long long>(accounts_sum),
                  static_cast<long long>(tellers_sum),
                  static_cast<long long>(branches_sum),
                  static_cast<long long>(history_sum));
    *why = buf;
  }
  return ok;
}

}  // namespace jnvm::tpcb
