// TPC-B-like bank (§5.3.3, Figure 11).
//
// "The bank server holds 10M accounts of 140 B each. It provides a single
// operation to execute a transfer between two accounts in a failure-atomic
// block." Three implementations mirror the figure's backends:
//
//   JpfaBank     — accounts are persistent objects (140 B), indexed by a
//                  J-PDT integer-keyed map; transfers run in failure-atomic
//                  blocks. Recovery = reopen the runtime (graph recovery for
//                  J-PFA, block scan for J-PFA-nogc).
//   FsBank       — accounts as records behind the FS backend + cache
//                  (restart must rebuild the index and reload the cache).
//   VolatileBank — DRAM only; restarts from a blank state and recreates
//                  accounts on demand with a 0 balance, as in the paper.
#ifndef JNVM_SRC_TPCB_BANK_H_
#define JNVM_SRC_TPCB_BANK_H_

#include <mutex>
#include <unordered_map>

#include "src/pdt/pext_array.h"
#include "src/pdt/pmap.h"
#include "src/store/kvstore.h"

namespace jnvm::tpcb {

class Bank {
 public:
  virtual ~Bank() = default;
  virtual std::string name() const = 0;
  virtual void CreateAccounts(uint64_t n, int64_t initial) = 0;
  virtual void Transfer(int64_t from, int64_t to, int64_t amount) = 0;
  virtual int64_t Balance(int64_t id) = 0;
  virtual uint64_t NumAccounts() = 0;
};

// A persistent account: 140 bytes — a balance plus the TPC-B filler.
class PAccount final : public core::PObject {
 public:
  static constexpr size_t kBytes = 140;

  static const core::ClassInfo* Class();

  explicit PAccount(core::Resurrect) {}
  PAccount(core::JnvmRuntime& rt, int64_t balance) {
    AllocatePersistent(rt, Class(), kBytes);
    WriteField<int64_t>(0, balance);
    Pwb();
  }

  int64_t Balance() const { return ReadField<int64_t>(0); }
  void SetBalance(int64_t v) { WriteField<int64_t>(0, v); }
};

class JpfaBank final : public Bank {
 public:
  explicit JpfaBank(core::JnvmRuntime* rt);

  std::string name() const override { return "J-PFA"; }
  void CreateAccounts(uint64_t n, int64_t initial) override;
  void Transfer(int64_t from, int64_t to, int64_t amount) override;
  int64_t Balance(int64_t id) override;
  uint64_t NumAccounts() override;

 private:
  core::JnvmRuntime* rt_;
  core::Handle<pdt::PLongHashMap> accounts_;
  std::mutex mu_;
};

class FsBank final : public Bank {
 public:
  explicit FsBank(store::KvStore* kv) : kv_(kv) {}

  std::string name() const override { return "FS"; }
  void CreateAccounts(uint64_t n, int64_t initial) override;
  void Transfer(int64_t from, int64_t to, int64_t amount) override;
  int64_t Balance(int64_t id) override;
  uint64_t NumAccounts() override;

  static std::string KeyFor(int64_t id);

 private:
  store::KvStore* kv_;
  std::mutex mu_;
  uint64_t count_ = 0;
};

// Full TPC-B schema on J-NVM: branches, tellers, accounts, and an
// append-only history, all updated in ONE failure-atomic block per
// transaction (the TPC-B "transaction profile"). The paper's bank is the
// accounts-only simplification; this is the complete workload for the
// consistency tests (sum(accounts) == sum(tellers) == sum(branches) must
// hold at every recovery point).
class TpcbFullBank {
 public:
  static constexpr int64_t kTellersPerBranch = 10;
  static constexpr int64_t kAccountsPerBranch = 1000;  // scaled from 100k

  explicit TpcbFullBank(core::JnvmRuntime* rt);

  void Create(int64_t branches);

  // The TPC-B transaction: update account, teller, branch; append history.
  void Transaction(int64_t account_id, int64_t teller_id, int64_t delta);

  int64_t AccountBalance(int64_t id);
  int64_t TellerBalance(int64_t id);
  int64_t BranchBalance(int64_t id);
  uint64_t HistorySize();
  int64_t NumBranches();

  // Consistency oracle: the three balance sums must be equal, and the
  // history must explain them.
  bool CheckConsistent(std::string* why = nullptr);

 private:
  core::Handle<PAccount> Load(pdt::PLongHashMap& table, int64_t id);

  core::JnvmRuntime* rt_;
  core::Handle<pdt::PLongHashMap> accounts_;
  core::Handle<pdt::PLongHashMap> tellers_;
  core::Handle<pdt::PLongHashMap> branches_;
  core::Handle<pdt::PExtArray> history_;
  std::mutex mu_;
};

class VolatileBank final : public Bank {
 public:
  std::string name() const override { return "Volatile"; }
  void CreateAccounts(uint64_t n, int64_t initial) override;
  // Accounts missing after a restart are recreated on demand with balance 0.
  void Transfer(int64_t from, int64_t to, int64_t amount) override;
  int64_t Balance(int64_t id) override;
  uint64_t NumAccounts() override;

 private:
  std::mutex mu_;
  std::unordered_map<int64_t, int64_t> balances_;
};

}  // namespace jnvm::tpcb

#endif  // JNVM_SRC_TPCB_BANK_H_
