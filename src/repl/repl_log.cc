#include "src/repl/repl_log.h"

#include <cstring>

#include "src/common/check.h"
#include "src/repl/frame.h"

namespace jnvm::repl {

namespace {

// Record header inside a segment: { u32 len | u32 crc | u64 seq }.
constexpr size_t kRecHdrBytes = 16;
// Single-block root layout bound (see repl_log.h): ring must fit the first
// block so the packed word and every slot are single-line stores.
constexpr uint32_t kMaxRingSlots = 24;

uint32_t RecordCrc(uint64_t seq, std::string_view payload) {
  char seq_bytes[8];
  std::memcpy(seq_bytes, &seq, 8);
  return Crc32(payload, Crc32(std::string_view(seq_bytes, 8)));
}

}  // namespace

// ---- ReplLogRoot -----------------------------------------------------------

const core::ClassInfo* ReplLogRoot::Class() {
  static const core::ClassInfo* info = RegisterClass(
      core::MakeClassInfo<ReplLogRoot>("repl.Log", &ReplLogRoot::Trace));
  return info;
}

void ReplLogRoot::Trace(core::ObjectView& view, core::RefVisitor& v) {
  const uint32_t cap = view.Read<uint32_t>(kSegCapOff);
  for (uint32_t i = 0; i < cap && i < kMaxRingSlots; ++i) {
    v.VisitRef(view, kRingOff + 8ull * i);
  }
}

ReplLogRoot::ReplLogRoot(core::JnvmRuntime& rt, const ReplLogOptions& opts) {
  AllocatePersistent(rt, Class(), kRingOff + 8ull * opts.max_segments);
  WriteField<uint32_t>(kSegCapOff, opts.max_segments);
  WriteField<uint32_t>(kSegBytesOff, opts.segment_bytes);
  WriteField<uint64_t>(kPackedOff, 0);
  WriteField<uint64_t>(kResetSeqOff, 1);
  WriteField<uint64_t>(kSnapPendingOff, 0);
  Pwb();
  Validate();
}

void ReplLogRoot::WritePacked(uint32_t head, uint32_t count) {
  WriteField<uint64_t>(kPackedOff, (static_cast<uint64_t>(head) << 32) | count);
  PwbField(kPackedOff, 8);
}

void ReplLogRoot::WriteResetSeq(uint64_t v) {
  WriteField<uint64_t>(kResetSeqOff, v);
  PwbField(kResetSeqOff, 8);
}

void ReplLogRoot::WriteSnapPending(uint64_t v) {
  WriteField<uint64_t>(kSnapPendingOff, v);
  PwbField(kSnapPendingOff, 8);
}

void ReplLogRoot::WriteSlot(uint32_t i, nvm::Offset ref) {
  WriteRefRaw(kRingOff + 8ull * i, ref);
  PwbField(kRingOff + 8ull * i, 8);
}

// ---- ReplLogSegment --------------------------------------------------------

const core::ClassInfo* ReplLogSegment::Class() {
  static const core::ClassInfo* info = RegisterClass(
      core::MakeClassInfo<ReplLogSegment>("repl.LogSegment"));
  return info;
}

ReplLogSegment::ReplLogSegment(core::JnvmRuntime& rt, uint64_t base_seq,
                               uint32_t data_capacity) {
  // zero = true matters: the record scan relies on virgin space reading as
  // the len == 0 terminator, and the zeroes become durable under the
  // publication fence.
  AllocatePersistent(rt, Class(), kDataOff + data_capacity);
  WriteField<uint64_t>(kBaseSeqOff, base_seq);
  WriteField<uint32_t>(kDataCapOff, data_capacity);
  WriteField<uint32_t>(kDataCapOff + 4, 0);
  PwbField(0, kDataOff);
}

// ---- ReplLog ---------------------------------------------------------------

std::unique_ptr<ReplLog> ReplLog::OpenOrCreate(core::JnvmRuntime* rt,
                                               const std::string& root_name,
                                               const ReplLogOptions& opts) {
  JNVM_CHECK(rt != nullptr);
  JNVM_CHECK_MSG(opts.max_segments >= 2 && opts.max_segments <= kMaxRingSlots,
                 "replication log ring must have 2..24 slots");
  JNVM_CHECK(opts.segment_bytes >= 64);
  ReplLogRoot::Class();
  ReplLogSegment::Class();

  auto log = std::unique_ptr<ReplLog>(new ReplLog());
  log->rt_ = rt;
  log->opts_ = opts;
  bool created = false;
  if (rt->root().Exists(root_name)) {
    log->root_ = rt->root().GetAs<ReplLogRoot>(root_name);
    JNVM_CHECK(log->root_ != nullptr);
  } else {
    log->root_ = std::make_shared<ReplLogRoot>(*rt, opts);
    rt->root().Put(root_name, log->root_.get());  // failure-atomic publish
    created = true;
  }
  // The persisted geometry wins over the caller's options across restarts.
  log->seg_cap_ = log->root_->SegCapacity();
  log->opts_.segment_bytes = log->root_->SegmentBytes();
  log->opts_.max_segments = log->seg_cap_;
  log->Bind(created);
  return log;
}

void ReplLog::Bind(bool created) {
  if (created) {
    head_ = 0;
    start_seq_ = next_seq_ = root_->ResetSeq();
    return;
  }
  if (root_->SnapPending() != 0) {
    // A crash interrupted a snapshot install: the store image and the log
    // disagree. Complete the reset (drop everything) and report that a
    // fresh snapshot is required before this log can be appended to.
    needs_snapshot_ = true;
    std::vector<nvm::Offset> frees;
    for (uint32_t i = 0; i < seg_cap_; ++i) {
      const nvm::Offset ref = root_->Slot(i);
      if (ref != 0) {
        root_->WriteSlot(i, 0);
        frees.push_back(ref);
      }
    }
    root_->WritePacked(0, 0);
    rt_->Pfence();  // unlinks durable before the frees
    for (const nvm::Offset ref : frees) {
      rt_->FreeRef(ref);
    }
    head_ = 0;
    start_seq_ = next_seq_ = root_->ResetSeq();
    return;
  }
  Reconcile();
  ScanSegments();
}

void ReplLog::Reconcile() {
  const uint64_t packed = root_->Packed();
  uint32_t head = ReplLogRoot::HeadOf(packed);
  uint32_t count = ReplLogRoot::CountOf(packed);
  JNVM_CHECK(head < seg_cap_ && count <= seg_cap_);

  // 1. Free segments published in a slot whose count bump never became
  // durable (they carry no sealed records by construction), and slots whose
  // truncation zeroing was lost after the head already advanced.
  std::vector<nvm::Offset> frees;
  bool wrote = false;
  for (uint32_t i = 0; i < seg_cap_; ++i) {
    const uint32_t dist = (i + seg_cap_ - head) % seg_cap_;
    if (dist < count) {
      continue;  // occupied range
    }
    const nvm::Offset ref = root_->Slot(i);
    if (ref != 0) {
      root_->WriteSlot(i, 0);
      frees.push_back(ref);
      wrote = true;
    }
  }
  // 2. A truncation that zeroed the head slot but whose packed update was
  // lost: shrink over the zero prefix.
  const uint32_t head0 = head;
  const uint32_t count0 = count;
  while (count > 0 && root_->Slot(head) == 0) {
    head = (head + 1) % seg_cap_;
    --count;
  }
  // 3. A publication whose count bump became durable but whose slot write
  // was lost: the zero sits at the *tail* of the occupied range. Everything
  // from the first post-prefix zero onward belongs to the batch the crash
  // interrupted (earlier batches sealed their publications under Psync), so
  // none of it carries sealed records — drop the whole suffix.
  for (uint32_t i = 0; i < count; ++i) {
    if (root_->Slot((head + i) % seg_cap_) != 0) {
      continue;
    }
    for (uint32_t j = i + 1; j < count; ++j) {
      const uint32_t slot = (head + j) % seg_cap_;
      const nvm::Offset ref = root_->Slot(slot);
      if (ref != 0) {
        root_->WriteSlot(slot, 0);
        frees.push_back(ref);
      }
    }
    count = i;
    break;
  }
  if (head != head0 || count != count0) {
    root_->WritePacked(head, count);
    wrote = true;
  }
  if (wrote) {
    rt_->Pfence();
  }
  for (const nvm::Offset ref : frees) {
    rt_->FreeRef(ref);
  }
  head_ = head;
}

void ReplLog::ScanSegments() {
  const uint32_t count = ReplLogRoot::CountOf(root_->Packed());
  start_seq_ = next_seq_ = root_->ResetSeq();
  uint64_t expected = 0;
  bool have_any = false;
  bool stop = false;
  uint32_t kept = 0;
  std::vector<nvm::Offset> frees;
  bool wrote = false;

  for (uint32_t i = 0; i < count && !stop; ++i) {
    const uint32_t slot = (head_ + i) % seg_cap_;
    const nvm::Offset ref = root_->Slot(slot);
    JNVM_CHECK(ref != 0);  // zero prefixes/suffixes were dropped by Reconcile
    auto obj = rt_->ResurrectRefAs<ReplLogSegment>(ref);
    const uint64_t base = obj->BaseSeq();
    if (have_any && base != expected) {
      stop = true;  // discontinuity: drop this segment and the rest
      break;
    }

    Seg seg;
    seg.obj = obj;
    seg.slot = slot;
    seg.base_seq = base;
    const uint32_t cap = obj->DataCapacity();
    uint32_t off = 0;
    bool torn = false;
    uint64_t want = base;
    for (;;) {
      if (off + kRecHdrBytes > cap) {
        break;  // segment full to the brim
      }
      uint32_t len = 0, crc = 0;
      uint64_t seq = 0;
      obj->ReadData(off, &len, 4);
      if (len == 0) {
        break;  // clean end
      }
      obj->ReadData(off + 4, &crc, 4);
      obj->ReadData(off + 8, &seq, 8);
      if (len > cap - off - kRecHdrBytes) {
        torn = true;
        break;
      }
      std::string payload(len, '\0');
      obj->ReadData(off + kRecHdrBytes, payload.data(), len);
      if (seq != want || RecordCrc(seq, payload) != crc) {
        torn = true;  // torn tail or stale bytes — at most the last record
        break;
      }
      seg.offs.push_back(off);
      off += kRecHdrBytes + static_cast<uint32_t>(len);
      bytes_ += kRecHdrBytes + len;
      ++want;
    }
    seg.write_off = off;

    const bool last_kept = torn || i == count - 1;
    if (last_kept && off < cap) {
      // Zero the tail so bytes of a torn (unsealed) record can never
      // masquerade as a sealed record under a later scan. Fenced below.
      static constexpr size_t kChunk = 4096;
      char zeros[kChunk] = {0};
      for (uint32_t z = off; z < cap; z += kChunk) {
        const size_t n = std::min<size_t>(kChunk, cap - z);
        obj->WriteData(z, zeros, n);
      }
      obj->PwbData(off, cap - off);
      wrote = true;
    }

    if (!have_any) {
      start_seq_ = base;
      have_any = true;
    }
    expected = want;
    if (seg.offs.empty() && !segs_.empty()) {
      // An empty non-first segment (published, crashed before its first
      // record sealed): drop it rather than retain a hole.
      stop = true;
      break;
    }
    segs_.push_back(std::move(seg));
    ++kept;
    if (torn) {
      stop = true;
    }
  }

  if (kept < count) {
    // Drop the unreachable remainder: zero the slots, shrink the count,
    // fence, then free.
    for (uint32_t i = kept; i < count; ++i) {
      const uint32_t slot = (head_ + i) % seg_cap_;
      const nvm::Offset ref = root_->Slot(slot);
      if (ref != 0) {
        root_->WriteSlot(slot, 0);
        frees.push_back(ref);
      }
    }
    root_->WritePacked(head_, kept);
    wrote = true;
  }
  if (wrote) {
    rt_->Pfence();
  }
  for (const nvm::Offset ref : frees) {
    rt_->FreeRef(ref);
  }
  if (have_any && !segs_.empty()) {
    next_seq_ = expected;
  } else {
    segs_.clear();
    start_seq_ = next_seq_ = root_->ResetSeq();
  }
}

void ReplLog::PersistPacked() {
  root_->WritePacked(head_, static_cast<uint32_t>(segs_.size()));
}

void ReplLog::AddSegment(uint64_t base_seq, uint32_t data_capacity) {
  JNVM_CHECK(segs_.size() < seg_cap_);
  auto obj = std::make_shared<ReplLogSegment>(*rt_, base_seq, data_capacity);
  obj->Validate();
  // Ordering fence: header and zeroes durable before the ring references
  // the segment — recovery never sees a published-but-torn segment.
  obj->Pfence();
  Seg seg;
  seg.obj = obj;
  seg.slot = (head_ + static_cast<uint32_t>(segs_.size())) % seg_cap_;
  seg.base_seq = base_seq;
  root_->WriteSlot(seg.slot, obj->addr());
  segs_.push_back(std::move(seg));
  PersistPacked();  // sealed by the batch's Psync
}

void ReplLog::TruncateHead() {
  JNVM_CHECK(!segs_.empty());
  Seg& h = segs_.front();
  const nvm::Offset ref = h.obj->addr();
  bytes_ -= h.write_off;
  if (segs_.size() == 1) {
    // Dropping the last retained segment: without this, the sequence
    // watermark survives only in DRAM and an empty ring would recover from
    // a stale ResetSeq, regressing next_seq. Persist the watermark under an
    // ordering fence *before* the zeroing that could expose the empty ring.
    root_->WriteResetSeq(next_seq_);
    rt_->Pfence();
  }
  root_->WriteSlot(h.slot, 0);
  head_ = (head_ + 1) % seg_cap_;
  segs_.pop_front();
  PersistPacked();
  // Unlink-before-free: under group commit the fence is elided because the
  // free is deferred past the batch's Psync (DrainGroupFrees).
  root_->DurabilityFence();
  rt_->FreeRef(ref);
  start_seq_ = segs_.empty() ? next_seq_ : segs_.front().base_seq;
}

void ReplLog::Append(uint64_t seq, std::string_view payload) {
  JNVM_CHECK_MSG(!needs_snapshot_, "replication log awaiting snapshot install");
  JNVM_CHECK_MSG(seq == next_seq_, "replication log append out of sequence");
  const size_t need = kRecHdrBytes + payload.size();
  const uint32_t def = opts_.segment_bytes;
  const uint32_t want_cap =
      static_cast<uint32_t>(need > def ? need : def);  // oversized → dedicated
  if (segs_.empty() ||
      segs_.back().write_off + need > segs_.back().obj->DataCapacity()) {
    if (segs_.size() == seg_cap_) {
      TruncateHead();
    }
    AddSegment(seq, want_cap);
    if (segs_.size() == 1) {
      start_seq_ = seq;
    }
  }
  Seg& tail = segs_.back();
  const uint32_t off = tail.write_off;
  char hdr[kRecHdrBytes];
  const uint32_t len = static_cast<uint32_t>(payload.size());
  const uint32_t crc = RecordCrc(seq, payload);
  std::memcpy(hdr, &len, 4);
  std::memcpy(hdr + 4, &crc, 4);
  std::memcpy(hdr + 8, &seq, 8);
  tail.obj->WriteData(off, hdr, kRecHdrBytes);
  if (!payload.empty()) {
    tail.obj->WriteData(off + kRecHdrBytes, payload.data(), payload.size());
  }
  tail.obj->PwbData(off, need);  // no fence: the batch Psync seals it
  tail.offs.push_back(off);
  tail.write_off = off + static_cast<uint32_t>(need);
  next_seq_ = seq + 1;
  bytes_ += need;
}

uint32_t ReplLog::TruncateBelow(uint64_t seq) {
  uint32_t reclaimed = 0;
  while (!segs_.empty() &&
         segs_.front().base_seq + segs_.front().offs.size() <= seq) {
    if (reclaimed > 0) {
      // Ordering fence between successive head truncations: Reconcile's
      // zero-prefix shrink assumes zeroed slots form a durable *prefix* of
      // the occupied ring. Without the fence a crash could persist slot
      // k+1's zeroing while losing slot k's, leaving an interior zero no
      // recovery rule covers. (Ring-full eviction never needs this: it
      // truncates at most one head per append.)
      rt_->Pfence();
    }
    TruncateHead();
    ++reclaimed;
  }
  return reclaimed;
}

std::vector<SegDigest> ReplLog::SegmentDigests() const {
  std::vector<SegDigest> out;
  out.reserve(segs_.size());
  char buf[4096];
  for (const Seg& seg : segs_) {
    SegDigest d;
    d.base_seq = seg.base_seq;
    d.records = static_cast<uint32_t>(seg.offs.size());
    uint32_t crc = 0x811c9dc5u;  // Crc32 seed
    for (uint32_t off = 0; off < seg.write_off;) {
      const size_t n = std::min<size_t>(sizeof(buf), seg.write_off - off);
      seg.obj->ReadData(off, buf, n);
      crc = Crc32(std::string_view(buf, n), crc);
      off += static_cast<uint32_t>(n);
    }
    d.crc = crc;
    out.push_back(d);
  }
  return out;
}

bool ReplLog::VerifyDigest(const SegDigest& d) const {
  if (d.records == 0) {
    return false;  // an empty advertised segment carries no evidence
  }
  if (d.base_seq < start_seq_ || d.base_seq + d.records > next_seq_) {
    return false;  // range not fully retained here
  }
  uint32_t crc = 0x811c9dc5u;
  std::string payload;
  for (uint64_t seq = d.base_seq; seq < d.base_seq + d.records; ++seq) {
    if (!Read(seq, &payload)) {
      return false;
    }
    // Reconstruct the exact on-media header: { u32 len | u32 crc | u64 seq }.
    char hdr[kRecHdrBytes];
    const uint32_t len = static_cast<uint32_t>(payload.size());
    const uint32_t rcrc = RecordCrc(seq, payload);
    std::memcpy(hdr, &len, 4);
    std::memcpy(hdr + 4, &rcrc, 4);
    std::memcpy(hdr + 8, &seq, 8);
    crc = Crc32(std::string_view(hdr, kRecHdrBytes), crc);
    crc = Crc32(payload, crc);
  }
  return crc == d.crc;
}

bool ReplLog::Read(uint64_t seq, std::string* payload) const {
  if (seq < start_seq_ || seq >= next_seq_) {
    return false;
  }
  for (const Seg& seg : segs_) {
    if (seq < seg.base_seq || seq >= seg.base_seq + seg.offs.size()) {
      continue;
    }
    const uint32_t off = seg.offs[seq - seg.base_seq];
    uint32_t len = 0;
    seg.obj->ReadData(off, &len, 4);
    payload->resize(len);
    if (len != 0) {
      seg.obj->ReadData(off + kRecHdrBytes, payload->data(), len);
    }
    return true;
  }
  return false;
}

void ReplLog::BeginInstall() {
  root_->WriteSnapPending(1);
  // The marker must be durable before the store image is overwritten — a
  // crash mid-install then forces a re-bootstrap instead of serving a store
  // that disagrees with the log.
  rt_->Pfence();
  needs_snapshot_ = true;
}

void ReplLog::FinishInstall(uint64_t next) {
  std::vector<nvm::Offset> frees;
  for (const Seg& seg : segs_) {
    root_->WriteSlot(seg.slot, 0);
    frees.push_back(seg.obj->addr());
  }
  segs_.clear();
  head_ = 0;
  root_->WritePacked(0, 0);
  root_->WriteResetSeq(next);
  // One ordering fence covers the installed store image (written by the
  // caller) and the log reset before the pending marker clears.
  rt_->Pfence();
  root_->WriteSnapPending(0);  // sealed by the caller's Psync
  for (const nvm::Offset ref : frees) {
    rt_->FreeRef(ref);
  }
  start_seq_ = next_seq_ = next;
  bytes_ = 0;
  needs_snapshot_ = false;
}

}  // namespace jnvm::repl
