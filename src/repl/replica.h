// ReplClient — the replica's pull loops (DESIGN.md §8).
//
// One thread per shard. Each loop connects to the primary, handshakes with
// `REPLSYNC <shard> <from>` (from = the shard's own sealed boundary + 1, so
// a restarted replica resumes exactly where its durable log ends), then
// reads streamed record frames forever and submits them to the local
// follower shard as kApply requests — the shard's bounded queue is the
// backpressure. When the primary answers -SNAPSHOT (log truncated past
// `from`) or the local log is mid-install, the loop bootstraps via
// REPLSNAP + kSnapInstall and re-handshakes. Any stream error tears the
// connection down, counts a resync and retries with backoff.
//
// WAIT-K acks: each follower shard's worker reports its sealed boundary
// through a seal hook after every apply-batch Psync; a dedicated ack thread
// then sends `REPLACK <shard> <seq>` back on that shard's (otherwise
// one-way) stream connection. The primary parks WAIT-K batches until K
// subscribers have acked their sealed seq. Acks are sent unconditionally —
// on a primary without --wait-acks they just advance a watermark.
//
// Lives in src/repl but compiles into jnvm_server_lib (it drives
// server::Shard and server::Client; see src/repl/CMakeLists.txt).
#ifndef JNVM_SRC_REPL_REPLICA_H_
#define JNVM_SRC_REPL_REPLICA_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace jnvm::server {
class Client;
class Shard;
}  // namespace jnvm::server

namespace jnvm::repl {

struct ReplClientStats {
  uint64_t records_received = 0;
  uint64_t snapshots_installed = 0;
  uint64_t resyncs = 0;  // reconnects after an established stream broke
  // Streams torn down on a sequence discontinuity (upstream log epoch
  // changed or retention truncated mid-stream — chained-feed self-healing).
  uint64_t gap_resyncs = 0;
  // Primary rejected the handshake with -BADCONFIG (shard-count or config-
  // epoch mismatch). Terminal for that shard's pull loop: retrying cannot
  // help until an operator fixes the configuration.
  uint64_t bad_configs = 0;
  // Segment-diff resyncs (DESIGN.md §11): handshakes that streamed only the
  // divergent tail after the primary verified this replica's per-segment
  // digests (REPLDIFF answered +SYNC).
  uint64_t diff_resyncs = 0;
  // REPLDIFF handshakes the primary refused with -DIFFBASE (digest
  // mismatch — diverged history); each fell back to a full REPLSNAP.
  uint64_t diff_rejected = 0;
  // Handshakes the primary deferred with -RETRYLATER (it was itself
  // mid-bootstrap); each retried after the connection backoff.
  uint64_t retry_later = 0;
};

class ReplClient {
 public:
  // Starts one pull thread per shard. `shards` must outlive the client and
  // be follower shards of a server whose shard count matches the primary's.
  static std::unique_ptr<ReplClient> Start(
      const std::string& primary_host, uint16_t primary_port,
      const std::vector<server::Shard*>& shards);
  ~ReplClient();

  // Idempotent; joins every pull thread. Called before shard quiesce (and
  // before PROMOTE) so no applies race the audit.
  void Stop();

  ReplClientStats Stats() const;

 private:
  ReplClient() = default;

  void PullLoop(uint32_t shard_index);
  bool Bootstrap(server::Client* conn, server::Shard* shard, uint32_t shard_index);
  // Asks the local follower shard for its retained log's per-segment CRC
  // digests (kLogDigests control batch). False when the log is unusable
  // (mid-install, empty) — the handshake falls back to plain REPLSYNC.
  bool FetchDigests(server::Shard* shard, std::string* out);
  // Seal hook target (shard worker thread): records the newly sealed seq
  // and wakes the ack thread.
  void NotifySealed(uint32_t shard_index, uint64_t sealed_seq);
  void AckLoop();

  std::string host_;
  uint16_t port_ = 0;
  std::vector<server::Shard*> shards_;

  std::atomic<bool> stop_{false};
  std::vector<std::thread> threads_;
  std::thread ack_thread_;
  // Live connections, indexed by shard — so Stop() can break blocked reads
  // and the ack thread can write REPLACK frames. established_[i] gates ack
  // writes: while false the pull thread owns the socket (handshake); while
  // true the socket is read-only for the pull thread, and ack writes are
  // serialised by conns_mu_.
  std::mutex conns_mu_;
  std::vector<server::Client*> conns_;
  std::vector<uint8_t> established_;

  // Sealed-but-unacked seqs per shard (ack_mu_); sent_acks_ is ack-thread
  // private.
  std::mutex ack_mu_;
  std::condition_variable ack_cv_;
  std::vector<uint64_t> pending_acks_;
  std::vector<uint64_t> sent_acks_;

  std::atomic<uint64_t> records_received_{0};
  std::atomic<uint64_t> snapshots_installed_{0};
  std::atomic<uint64_t> resyncs_{0};
  std::atomic<uint64_t> gap_resyncs_{0};
  std::atomic<uint64_t> bad_configs_{0};
  std::atomic<uint64_t> diff_resyncs_{0};
  std::atomic<uint64_t> diff_rejected_{0};
  std::atomic<uint64_t> retry_later_{0};

  std::mutex stopped_mu_;
  bool stopped_ = false;
};

}  // namespace jnvm::repl

#endif  // JNVM_SRC_REPL_REPLICA_H_
