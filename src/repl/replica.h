// ReplClient — the replica's pull loops (DESIGN.md §8).
//
// One thread per shard. Each loop connects to the primary, handshakes with
// `REPLSYNC <shard> <from>` (from = the shard's own sealed boundary + 1, so
// a restarted replica resumes exactly where its durable log ends), then
// reads streamed record frames forever and submits them to the local
// follower shard as kApply requests — the shard's bounded queue is the
// backpressure. When the primary answers -SNAPSHOT (log truncated past
// `from`) or the local log is mid-install, the loop bootstraps via
// REPLSNAP + kSnapInstall and re-handshakes. Any stream error tears the
// connection down, counts a resync and retries with backoff.
//
// Lives in src/repl but compiles into jnvm_server_lib (it drives
// server::Shard and server::Client; see src/repl/CMakeLists.txt).
#ifndef JNVM_SRC_REPL_REPLICA_H_
#define JNVM_SRC_REPL_REPLICA_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace jnvm::server {
class Client;
class Shard;
}  // namespace jnvm::server

namespace jnvm::repl {

struct ReplClientStats {
  uint64_t records_received = 0;
  uint64_t snapshots_installed = 0;
  uint64_t resyncs = 0;  // reconnects after an established stream broke
};

class ReplClient {
 public:
  // Starts one pull thread per shard. `shards` must outlive the client and
  // be follower shards of a server whose shard count matches the primary's.
  static std::unique_ptr<ReplClient> Start(
      const std::string& primary_host, uint16_t primary_port,
      const std::vector<server::Shard*>& shards);
  ~ReplClient();

  // Idempotent; joins every pull thread. Called before shard quiesce (and
  // before PROMOTE) so no applies race the audit.
  void Stop();

  ReplClientStats Stats() const;

 private:
  ReplClient() = default;

  void PullLoop(uint32_t shard_index);
  bool Bootstrap(server::Client* conn, server::Shard* shard, uint32_t shard_index);

  std::string host_;
  uint16_t port_ = 0;
  std::vector<server::Shard*> shards_;

  std::atomic<bool> stop_{false};
  std::vector<std::thread> threads_;
  // Live connections, indexed by shard — so Stop() can break blocked reads.
  std::mutex conns_mu_;
  std::vector<server::Client*> conns_;

  std::atomic<uint64_t> records_received_{0};
  std::atomic<uint64_t> snapshots_installed_{0};
  std::atomic<uint64_t> resyncs_{0};

  std::mutex stopped_mu_;
  bool stopped_ = false;
};

}  // namespace jnvm::repl

#endif  // JNVM_SRC_REPL_REPLICA_H_
