// Durable per-shard replication log (DESIGN.md §8).
//
// The log is a ring of fixed-size NVMM segments allocated from the shard's
// own heap. Each record is one group-commit batch frame, sequence-numbered
// and checksummed; sealing is *implicit*: a record is sealed when the
// batch's Psync retires — the same durability point that releases client
// replies. The flush-ordering discipline is per-batch, not per-record
// (the Delay-Free Concurrency insight): Append issues only write-backs, no
// fences; the shard's one Psync per batch seals the record, the client
// replies, and the store mutations together.
//
// On-media layout
//   ReplLogRoot ("repl.Log"), single block:
//     u32 seg_capacity        ring slots (fixed at creation)
//     u32 segment_bytes       default data capacity per segment
//     u64 packed head|count   ring occupancy — one word, so truncation and
//                             publication advance it with a single store
//     u64 reset_seq           first sequence number after a reset/install
//     u64 snap_pending        non-zero while a snapshot install is between
//                             its two fences (see BeginInstall)
//     u64 refs[seg_capacity]  the segment ring
//   ReplLogSegment ("repl.LogSegment"), chained blocks:
//     u64 base_seq            sequence number of the first record
//     u32 data_capacity
//     u32 reserved
//     then records: { u32 len | u32 crc | u64 seq | payload[len] } back to
//     back; len == 0 terminates the scan (segments are zero-allocated, so
//     virgin space reads as the terminator).
//
// Crash consistency
//   - Publication: a new segment is written, flushed and validated under an
//     ordering pfence *before* its ring slot and the packed count advance —
//     recovery never sees a published-but-torn segment.
//   - Truncation/reset: the ring slot is zeroed before the segment is freed
//     (same unlink-before-free discipline as the J-PDT maps; the free is
//     deferred past the batch Psync under group commit).
//   - Torn tail: at most the last record can be torn (earlier records were
//     sealed by their batch's Psync). Recovery detects it by checksum, by
//     sequence discontinuity, or by a zero length word, then zeroes the
//     segment's tail under a fence so stale bytes can never masquerade as a
//     sealed record after later appends.
//   - Partially published tail segments (slot written, count not yet
//     durable) carry no sealed records by construction and are freed.
//   - Snapshot install: BeginInstall persists snap_pending under a fence
//     before the store image is overwritten; FinishInstall fences the new
//     store state before clearing it. A crash in between reports
//     needs_snapshot() and the replica re-bootstraps.
#ifndef JNVM_SRC_REPL_REPL_LOG_H_
#define JNVM_SRC_REPL_REPL_LOG_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "src/core/pobject.h"
#include "src/core/runtime.h"
#include "src/repl/frame.h"

namespace jnvm::repl {

struct ReplLogOptions {
  // Data bytes per segment (oversized records get a dedicated segment).
  uint32_t segment_bytes = 64 << 10;
  // Ring capacity = retention: appending past it truncates the oldest
  // segment. Bounded by the single-block root layout (≤ 24 slots).
  uint32_t max_segments = 8;
};

class ReplLogRoot final : public core::PObject {
 public:
  static const core::ClassInfo* Class();

  explicit ReplLogRoot(core::Resurrect) {}
  ReplLogRoot(core::JnvmRuntime& rt, const ReplLogOptions& opts);

  static constexpr size_t kSegCapOff = 0;
  static constexpr size_t kSegBytesOff = 4;
  static constexpr size_t kPackedOff = 8;
  static constexpr size_t kResetSeqOff = 16;
  static constexpr size_t kSnapPendingOff = 24;
  static constexpr size_t kRingOff = 32;

  uint32_t SegCapacity() const { return ReadField<uint32_t>(kSegCapOff); }
  uint32_t SegmentBytes() const { return ReadField<uint32_t>(kSegBytesOff); }
  uint64_t Packed() const { return ReadField<uint64_t>(kPackedOff); }
  uint64_t ResetSeq() const { return ReadField<uint64_t>(kResetSeqOff); }
  uint64_t SnapPending() const { return ReadField<uint64_t>(kSnapPendingOff); }
  nvm::Offset Slot(uint32_t i) const { return ReadRefRaw(kRingOff + 8ull * i); }

  void WritePacked(uint32_t head, uint32_t count);
  void WriteResetSeq(uint64_t v);
  void WriteSnapPending(uint64_t v);
  void WriteSlot(uint32_t i, nvm::Offset ref);

  static uint32_t HeadOf(uint64_t packed) { return static_cast<uint32_t>(packed >> 32); }
  static uint32_t CountOf(uint64_t packed) { return static_cast<uint32_t>(packed); }

 private:
  static void Trace(core::ObjectView& view, core::RefVisitor& v);
};

class ReplLogSegment final : public core::PObject {
 public:
  static const core::ClassInfo* Class();

  explicit ReplLogSegment(core::Resurrect) {}
  // Allocated invalid and zeroed; the caller writes the header, flushes and
  // validates, then fences before publishing the ring slot.
  ReplLogSegment(core::JnvmRuntime& rt, uint64_t base_seq, uint32_t data_capacity);

  static constexpr size_t kBaseSeqOff = 0;
  static constexpr size_t kDataCapOff = 8;
  static constexpr size_t kDataOff = 16;

  uint64_t BaseSeq() const { return ReadField<uint64_t>(kBaseSeqOff); }
  uint32_t DataCapacity() const { return ReadField<uint32_t>(kDataCapOff); }

  void ReadData(size_t off, void* dst, size_t n) const { ReadBytesField(kDataOff + off, dst, n); }
  void WriteData(size_t off, const void* src, size_t n) { WriteBytesField(kDataOff + off, src, n); }
  void PwbData(size_t off, size_t n) { PwbField(kDataOff + off, n); }
};

// Volatile manager over the persistent ring. Single-writer: the shard
// worker thread is the only mutator (reads of retained records also happen
// on the worker — the device is not synchronized).
class ReplLog {
 public:
  // Binds the log named `root_name` in the runtime's root map, creating it
  // on first use. On the recovery path this scans every retained segment,
  // reconciles half-published/half-truncated ring slots and zeroes a torn
  // tail (under one ordering fence).
  static std::unique_ptr<ReplLog> OpenOrCreate(core::JnvmRuntime* rt,
                                               const std::string& root_name,
                                               const ReplLogOptions& opts);

  // Oldest retained sequence number (reads below it need a snapshot).
  uint64_t start_seq() const { return start_seq_; }
  // Next sequence number to append; the last retained record is next-1.
  uint64_t next_seq() const { return next_seq_; }
  bool empty() const { return next_seq_ == start_seq_; }
  uint64_t bytes() const { return bytes_; }
  uint32_t segments() const { return static_cast<uint32_t>(segs_.size()); }
  // True when a crash interrupted a snapshot install: the store image and
  // the log disagree and the replica must re-bootstrap via REPLSNAP.
  bool needs_snapshot() const { return needs_snapshot_; }

  // Appends one record; `seq` must equal next_seq(). Write-backs only — the
  // caller's batch Psync seals it. May truncate the oldest segment when the
  // ring is full (the segment free is deferred under group commit).
  void Append(uint64_t seq, std::string_view payload);

  // Copies the payload of record `seq`; false when truncated away or not
  // yet appended.
  bool Read(uint64_t seq, std::string* payload) const;

  // Drops whole head segments whose records all precede `seq` (LSN-style
  // reclaim against a durable checkpoint). Partially-covered segments are
  // retained — truncation granularity is the segment. Unlink-before-free as
  // in ring-full truncation; the frees defer past the caller's batch Psync
  // under group commit. Returns the number of segments reclaimed.
  uint32_t TruncateBelow(uint64_t seq);

  // One digest per retained segment, oldest first (repl::SegDigest,
  // frame.h). The CRC covers the raw record bytes [0, write_off) — records
  // pack back-to-back from data offset 0, so the byte stream of a record
  // range is a pure function of the records themselves, not of segment
  // boundaries (see VerifyDigest).
  std::vector<SegDigest> SegmentDigests() const;

  // Recomputes, from this log's retained records, the exact byte stream a
  // peer's segment holding records [base, base+records) contains, and
  // compares its CRC. Returns false when any record in the range is not
  // retained here or the CRCs differ — the peer's copy diverges and only a
  // snapshot can reconcile it.
  bool VerifyDigest(const SegDigest& d) const;

  // Snapshot install protocol (replica bootstrap) — see header comment.
  void BeginInstall();
  // Drops every retained record, sets next_seq to `next`, fences the reset
  // and clears the pending marker (sealed by the caller's Psync).
  void FinishInstall(uint64_t next);

 private:
  struct Seg {
    core::Handle<ReplLogSegment> obj;
    uint32_t slot = 0;               // ring slot holding this segment's ref
    uint64_t base_seq = 0;
    uint32_t write_off = 0;          // first free data byte
    std::vector<uint32_t> offs;      // record offsets; offs[seq - base_seq]
  };

  ReplLog() = default;

  void Bind(bool created);
  void Reconcile();   // frees out-of-range slots, shrinks over zero head slots
  void ScanSegments();
  void AddSegment(uint64_t base_seq, uint32_t data_capacity);
  void TruncateHead();
  void PersistPacked();

  core::JnvmRuntime* rt_ = nullptr;
  core::Handle<ReplLogRoot> root_;
  ReplLogOptions opts_;
  uint32_t seg_cap_ = 0;

  uint32_t head_ = 0;   // mirror of the packed word; count = segs_.size()
  std::deque<Seg> segs_;
  uint64_t start_seq_ = 1;
  uint64_t next_seq_ = 1;
  uint64_t bytes_ = 0;
  bool needs_snapshot_ = false;
};

}  // namespace jnvm::repl

#endif  // JNVM_SRC_REPL_REPL_LOG_H_
