// Replication wire frames (DESIGN.md §8).
//
// The group-commit batch is the replication unit: the primary's shard
// worker encodes the successful write operations of one batch into a single
// *batch frame*, appends it to the durable replication log, and ships it to
// subscribed replicas after the batch's Psync. The replica decodes the
// frame and re-applies the operations through the store's apply path — no
// backend-specific re-serialization, the frame already carries the logical
// operation.
//
// Formats are little-endian and length-prefixed throughout (binary-safe
// keys and values). Three frame kinds exist:
//
//   batch frame     EncodeBatch/DecodeBatch — the replicated operations of
//                   one group-commit batch (the replication log payload).
//   record frame    EncodeRecord/DecodeRecord — {u64 seq | batch frame},
//                   the unit shipped over REPLSYNC streams.
//   snapshot frame  EncodeSnapshot/DecodeSnapshot — {u64 snap_seq | full
//                   key→record image}, the REPLSNAP bootstrap payload.
#ifndef JNVM_SRC_REPL_FRAME_H_
#define JNVM_SRC_REPL_FRAME_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/store/record.h"

namespace jnvm::repl {

// One replicated write operation, in batch order.
//
// The three txn kinds carry the cross-shard transaction protocol (DESIGN.md
// §9) through the same log/stream path as data ops. They mutate no store
// state by themselves: kTxnPrepare stages a txn's writes (key = 8-byte txn
// id, field = coordinator shard, value = nested batch frame of the staged
// writes), kTxnCommit either seals the coordinator's decision (value =
// txn::Decision frame) or marks a participant's apply point (value empty),
// and kTxnAbort drops a staged txn explicitly.
struct ReplOp {
  enum class Kind : uint8_t {
    kPut = 1,
    kDel = 2,
    kUpdate = 3,
    kTxnPrepare = 4,
    kTxnCommit = 5,
    kTxnAbort = 6,
  };
  Kind kind = Kind::kPut;
  std::string key;
  store::Record record;   // kPut: the full record written
  uint32_t field = 0;     // kUpdate: field index; kTxnPrepare: coordinator
  std::string value;      // kUpdate: new field value; kTxn*: txn payload

  bool operator==(const ReplOp&) const = default;
};

// True when any op in an encoded batch frame is a txn kind — a cheap kind
// scan (lengths are skipped, payloads never copied) used by the follower to
// give txn records their own apply batch (apply ordering, DESIGN.md §9).
bool BatchHasTxnOps(std::string_view frame);

// FNV-1a 32-bit over `data` — the replication log's record checksum (also
// covers the 8-byte sequence number; see repl_log.h framing).
uint32_t Crc32(std::string_view data, uint32_t seed = 0x811c9dc5u);

// ---- Batch frames ---------------------------------------------------------

void EncodeBatch(const std::vector<ReplOp>& ops, std::string* out);
bool DecodeBatch(std::string_view frame, std::vector<ReplOp>* out);

// ---- Record frames (REPLSYNC stream unit) ---------------------------------

void EncodeRecord(uint64_t seq, std::string_view batch_frame, std::string* out);
bool DecodeRecord(std::string_view frame, uint64_t* seq, std::string_view* batch_frame);

// ---- Snapshot frames (REPLSNAP payload) -----------------------------------

struct SnapshotEntry {
  std::string key;
  store::Record record;

  bool operator==(const SnapshotEntry&) const = default;
};

void EncodeSnapshot(uint64_t snap_seq, const std::vector<SnapshotEntry>& entries,
                    std::string* out);
bool DecodeSnapshot(std::string_view frame, uint64_t* snap_seq,
                    std::vector<SnapshotEntry>* entries);

// ---- Segment-digest frames (REPLDIFF handshake) ---------------------------
//
// A rejoining follower advertises one digest per retained log segment: the
// first sequence it holds, how many records, and a CRC over the segment's
// raw record bytes. Records pack back-to-back from data offset 0, so the
// byte stream of a record range is independent of segment boundaries — the
// primary recomputes each advertised range from its own retained records
// and ships only the records past the last matching digest.

struct SegDigest {
  uint64_t base_seq = 0;
  uint32_t records = 0;
  uint32_t crc = 0;

  bool operator==(const SegDigest&) const = default;
};

void EncodeSegDigests(const std::vector<SegDigest>& digests, std::string* out);
bool DecodeSegDigests(std::string_view frame, std::vector<SegDigest>* out);

}  // namespace jnvm::repl

#endif  // JNVM_SRC_REPL_FRAME_H_
