#include "src/repl/replica.h"

#include <chrono>

#include "src/common/check.h"
#include "src/repl/frame.h"
#include "src/server/client.h"
#include "src/server/shard.h"

namespace jnvm::repl {

namespace {

// Retry backoff bounds. Sliced sleeps keep Stop() responsive.
constexpr int kBackoffStartMs = 20;
constexpr int kBackoffMaxMs = 500;

}  // namespace

std::unique_ptr<ReplClient> ReplClient::Start(
    const std::string& primary_host, uint16_t primary_port,
    const std::vector<server::Shard*>& shards) {
  JNVM_CHECK(!shards.empty());
  auto c = std::unique_ptr<ReplClient>(new ReplClient());
  c->host_ = primary_host;
  c->port_ = primary_port;
  c->shards_ = shards;
  c->conns_.resize(shards.size(), nullptr);
  c->established_.resize(shards.size(), 0);
  c->pending_acks_.resize(shards.size(), 0);
  c->sent_acks_.resize(shards.size(), 0);
  // Seal hooks before the threads: the first apply's seal must not be lost.
  for (uint32_t i = 0; i < shards.size(); ++i) {
    ReplClient* self = c.get();
    shards[i]->SetSealHook(
        [self, i](uint64_t sealed) { self->NotifySealed(i, sealed); });
  }
  c->ack_thread_ = std::thread(&ReplClient::AckLoop, c.get());
  c->threads_.reserve(shards.size());
  for (uint32_t i = 0; i < shards.size(); ++i) {
    c->threads_.emplace_back(&ReplClient::PullLoop, c.get(), i);
  }
  return c;
}

ReplClient::~ReplClient() { Stop(); }

void ReplClient::Stop() {
  {
    std::lock_guard<std::mutex> lk(stopped_mu_);
    if (stopped_) {
      return;
    }
    stopped_ = true;
  }
  stop_.store(true, std::memory_order_release);
  ack_cv_.notify_all();
  {
    std::lock_guard<std::mutex> lk(conns_mu_);
    for (server::Client* c : conns_) {
      if (c != nullptr) {
        c->ShutdownSocket();  // breaks blocked stream reads
      }
    }
  }
  if (ack_thread_.joinable()) {
    ack_thread_.join();
  }
  for (std::thread& t : threads_) {
    if (t.joinable()) {
      t.join();
    }
  }
  // The shards outlive this client (PROMOTE stops it, the server keeps
  // running): drop the hooks so no worker calls into a dead object.
  for (server::Shard* shard : shards_) {
    shard->SetSealHook(nullptr);
  }
}

void ReplClient::NotifySealed(uint32_t shard_index, uint64_t sealed_seq) {
  {
    std::lock_guard<std::mutex> lk(ack_mu_);
    if (sealed_seq <= pending_acks_[shard_index]) {
      return;
    }
    pending_acks_[shard_index] = sealed_seq;
  }
  ack_cv_.notify_one();
}

// Sends REPLACK frames on the stream connections. A failed or skipped send
// (stream down, handshake in progress) is simply dropped: the next
// REPLSYNC's from-seq re-establishes the watermark implicitly.
void ReplClient::AckLoop() {
  while (!stop_.load(std::memory_order_acquire)) {
    std::vector<std::pair<uint32_t, uint64_t>> due;
    {
      std::unique_lock<std::mutex> lk(ack_mu_);
      ack_cv_.wait(lk, [&] {
        if (stop_.load(std::memory_order_acquire)) {
          return true;
        }
        for (size_t i = 0; i < pending_acks_.size(); ++i) {
          if (pending_acks_[i] > sent_acks_[i]) {
            return true;
          }
        }
        return false;
      });
      for (size_t i = 0; i < pending_acks_.size(); ++i) {
        if (pending_acks_[i] > sent_acks_[i]) {
          due.emplace_back(static_cast<uint32_t>(i), pending_acks_[i]);
        }
      }
    }
    for (const auto& [i, seq] : due) {
      std::lock_guard<std::mutex> lk(conns_mu_);
      if (conns_[i] == nullptr || established_[i] == 0) {
        // No live stream: skip, and record the seq as handled — the next
        // handshake's from-seq carries the watermark instead.
        sent_acks_[i] = seq;
        continue;
      }
      conns_[i]->SendCommand(
          {"REPLACK", std::to_string(i), std::to_string(seq)});
      sent_acks_[i] = seq;
    }
  }
}

ReplClientStats ReplClient::Stats() const {
  ReplClientStats s;
  s.records_received = records_received_.load(std::memory_order_relaxed);
  s.snapshots_installed = snapshots_installed_.load(std::memory_order_relaxed);
  s.resyncs = resyncs_.load(std::memory_order_relaxed);
  s.gap_resyncs = gap_resyncs_.load(std::memory_order_relaxed);
  s.bad_configs = bad_configs_.load(std::memory_order_relaxed);
  s.diff_resyncs = diff_resyncs_.load(std::memory_order_relaxed);
  s.diff_rejected = diff_rejected_.load(std::memory_order_relaxed);
  s.retry_later = retry_later_.load(std::memory_order_relaxed);
  return s;
}

// REPLSNAP → kSnapInstall → wait for the install's durability point.
bool ReplClient::Bootstrap(server::Client* conn, server::Shard* shard,
                           uint32_t shard_index) {
  if (!conn->SendCommand({"REPLSNAP", std::to_string(shard_index)})) {
    return false;
  }
  server::RespReply r;
  if (!conn->ReadOneReply(&r)) {
    return false;
  }
  if (r.type == server::RespReply::Type::kError &&
      r.str.rfind("RETRYLATER", 0) == 0) {
    // The primary is itself mid-bootstrap (a chained feeder still
    // installing its own snapshot). Explicit defer, not an error: count it
    // and let the caller's connection backoff pace the retry.
    retry_later_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  if (r.type != server::RespReply::Type::kBulk) {
    return false;
  }
  auto waiter = std::make_shared<server::ReplWaiter>();
  server::Request req;
  req.op = server::Request::Op::kSnapInstall;
  req.value = std::move(r.str);
  req.waiter = waiter;
  if (!shard->Submit(std::move(req))) {
    return false;
  }
  if (!waiter->Wait()) {
    return false;
  }
  snapshots_installed_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool ReplClient::FetchDigests(server::Shard* shard, std::string* out) {
  auto waiter = std::make_shared<server::ReplWaiter>();
  server::Request req;
  req.op = server::Request::Op::kLogDigests;
  req.waiter = waiter;
  if (!shard->Submit(std::move(req))) {
    return false;
  }
  if (!waiter->Wait()) {
    return false;
  }
  // Success payloads are '+'-prefixed binary digest frames (see
  // ExecuteLogDigests); anything else means no usable log to advertise.
  if (waiter->error.empty() || waiter->error[0] != '+') {
    return false;
  }
  *out = waiter->error.substr(1);
  return true;
}

void ReplClient::PullLoop(uint32_t shard_index) {
  server::Shard* shard = shards_[shard_index];
  int backoff_ms = kBackoffStartMs;
  const auto nap = [&](int ms) {
    for (int waited = 0; waited < ms && !stop_.load(std::memory_order_acquire);
         waited += 10) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  };

  while (!stop_.load(std::memory_order_acquire)) {
    std::string error;
    auto conn = server::Client::Connect(host_, port_, &error);
    if (conn == nullptr) {
      nap(backoff_ms);
      backoff_ms = std::min(backoff_ms * 2, kBackoffMaxMs);
      continue;
    }
    {
      std::lock_guard<std::mutex> lk(conns_mu_);
      conns_[shard_index] = conn.get();
    }

    bool established = false;
    bool handshaking = true;
    while (handshaking && !stop_.load(std::memory_order_acquire)) {
      handshaking = false;
      if (shard->repl_needs_snapshot() &&
          !Bootstrap(conn.get(), shard, shard_index)) {
        break;
      }
      const uint64_t from = shard->repl_next_seq();
      // Segment-diff handshake (DESIGN.md §11): when this shard's own log
      // already holds records, advertise their per-segment CRC digests so
      // the primary can verify the shared prefix and stream only the tail
      // — a stale rejoiner then ships bytes proportional to what it missed,
      // not to the store size. An empty/unusable local log (fresh replica,
      // mid-install) falls back to plain REPLSYNC.
      //
      // The shard count rides in either handshake: a primary with a
      // different count rejects with -BADCONFIG instead of silently feeding
      // a stream this replica would route to the wrong shards.
      bool diff_sent = false;
      std::string digests;
      if (from > 1 && !shard->repl_needs_snapshot() &&
          FetchDigests(shard, &digests)) {
        if (!conn->SendCommand({"REPLDIFF", std::to_string(shard_index),
                                std::to_string(from), digests,
                                std::to_string(shards_.size())})) {
          break;
        }
        diff_sent = true;
      } else if (!conn->SendCommand({"REPLSYNC", std::to_string(shard_index),
                                     std::to_string(from),
                                     std::to_string(shards_.size())})) {
        break;
      }
      server::RespReply r;
      if (!conn->ReadOneReply(&r)) {
        break;
      }
      if (r.type == server::RespReply::Type::kError) {
        if (r.str.rfind("BADCONFIG", 0) == 0) {
          // Terminal: no amount of retrying or bootstrapping fixes a
          // configuration mismatch — stop this shard's pull loop and leave
          // the rejection visible in the stats.
          bad_configs_.fetch_add(1, std::memory_order_relaxed);
          std::lock_guard<std::mutex> lk(conns_mu_);
          established_[shard_index] = 0;
          conns_[shard_index] = nullptr;
          return;
        }
        if (r.str.rfind("RETRYLATER", 0) == 0) {
          // The primary is itself mid-bootstrap: explicit defer. Tear the
          // connection down and let the backoff pace the retry.
          retry_later_.fetch_add(1, std::memory_order_relaxed);
          break;
        }
        if (diff_sent && r.str.rfind("DIFFBASE", 0) == 0) {
          // Digest mismatch: this replica's retained history diverged from
          // the primary's (old epoch, corrupt tail). Full snapshot it is.
          diff_rejected_.fetch_add(1, std::memory_order_relaxed);
        }
        // -SNAPSHOT (truncated past `from`), -DIFFBASE, or a fresh log
        // epoch after the primary self-healed: bootstrap and re-handshake
        // on this conn.
        if (Bootstrap(conn.get(), shard, shard_index)) {
          handshaking = true;
        }
        continue;
      }
      if (r.type != server::RespReply::Type::kSimple) {
        break;  // protocol violation
      }
      if (diff_sent) {
        diff_resyncs_.fetch_add(1, std::memory_order_relaxed);
      }
      established = true;
      {
        // Handshake done: the pull thread stops writing to this socket, so
        // the ack thread may now interleave REPLACK frames (conns_mu_).
        std::lock_guard<std::mutex> lk(conns_mu_);
        established_[shard_index] = 1;
      }
      backoff_ms = kBackoffStartMs;
      // The stream is contiguous by construction (the backlog and the
      // subscription are registered in one control batch), so any sequence
      // discontinuity means the upstream's log changed under us — a
      // mid-tree feeder that re-bootstrapped onto a new epoch, or a record
      // truncated out of a chained feeder's retention window mid-stream.
      // Submitting past a gap would be silently dropped by ExecuteApply
      // forever; tear down instead and resync from our durable boundary
      // (which lands on -SNAPSHOT → bootstrap when seqs no longer line up).
      uint64_t expected = from;
      for (;;) {
        server::RespReply rec;
        if (!conn->ReadOneReply(&rec) ||
            rec.type != server::RespReply::Type::kBulk) {
          break;  // stream torn down (or peer gone)
        }
        uint64_t seq = 0;
        std::string_view body;
        if (!DecodeRecord(rec.str, &seq, &body) || seq != expected) {
          gap_resyncs_.fetch_add(1, std::memory_order_relaxed);
          break;
        }
        ++expected;
        records_received_.fetch_add(1, std::memory_order_relaxed);
        server::Request req;
        req.op = server::Request::Op::kApply;
        req.value = std::move(rec.str);
        if (!shard->Submit(std::move(req))) {
          break;  // local shard draining
        }
      }
    }

    {
      std::lock_guard<std::mutex> lk(conns_mu_);
      established_[shard_index] = 0;
      conns_[shard_index] = nullptr;
    }
    conn.reset();
    if (!stop_.load(std::memory_order_acquire)) {
      if (established) {
        resyncs_.fetch_add(1, std::memory_order_relaxed);
      }
      nap(backoff_ms);
      backoff_ms = std::min(backoff_ms * 2, kBackoffMaxMs);
    }
  }
}

}  // namespace jnvm::repl
