#include "src/repl/frame.h"

#include <cstring>

namespace jnvm::repl {

namespace {

void PutU8(std::string* out, uint8_t v) { out->push_back(static_cast<char>(v)); }

void PutU32(std::string* out, uint32_t v) {
  char b[4];
  std::memcpy(b, &v, 4);
  out->append(b, 4);
}

void PutU64(std::string* out, uint64_t v) {
  char b[8];
  std::memcpy(b, &v, 8);
  out->append(b, 8);
}

void PutBytes(std::string* out, std::string_view s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s.data(), s.size());
}

// Cursor over an input frame; every Take* fails (returns false) instead of
// reading past the end, so truncated frames are rejected, never read OOB.
struct Cursor {
  std::string_view in;
  size_t off = 0;

  bool TakeU8(uint8_t* v) {
    if (in.size() - off < 1) return false;
    *v = static_cast<uint8_t>(in[off]);
    off += 1;
    return true;
  }
  bool TakeU32(uint32_t* v) {
    if (in.size() - off < 4) return false;
    std::memcpy(v, in.data() + off, 4);
    off += 4;
    return true;
  }
  bool TakeU64(uint64_t* v) {
    if (in.size() - off < 8) return false;
    std::memcpy(v, in.data() + off, 8);
    off += 8;
    return true;
  }
  bool TakeBytes(std::string* s) {
    uint32_t n = 0;
    if (!TakeU32(&n) || in.size() - off < n) return false;
    s->assign(in.data() + off, n);
    off += n;
    return true;
  }
  bool SkipBytes() {
    uint32_t n = 0;
    if (!TakeU32(&n) || in.size() - off < n) return false;
    off += n;
    return true;
  }
  bool Done() const { return off == in.size(); }
};

void PutRecord(std::string* out, const store::Record& r) {
  PutU32(out, static_cast<uint32_t>(r.fields.size()));
  for (const std::string& f : r.fields) {
    PutBytes(out, f);
  }
}

bool TakeRecord(Cursor* c, store::Record* r) {
  uint32_t nfields = 0;
  if (!c->TakeU32(&nfields)) return false;
  // A field is at least a 4-byte length prefix: bound nfields by the bytes
  // actually present so a corrupt count cannot balloon the allocation.
  if (nfields > (c->in.size() - c->off) / 4) return false;
  r->fields.clear();
  r->fields.reserve(nfields);
  for (uint32_t i = 0; i < nfields; ++i) {
    std::string f;
    if (!c->TakeBytes(&f)) return false;
    r->fields.push_back(std::move(f));
  }
  return true;
}

}  // namespace

uint32_t Crc32(std::string_view data, uint32_t seed) {
  uint32_t h = seed;
  for (const unsigned char c : data) {
    h ^= c;
    h *= 0x01000193u;
  }
  return h;
}

void EncodeBatch(const std::vector<ReplOp>& ops, std::string* out) {
  out->clear();
  PutU32(out, static_cast<uint32_t>(ops.size()));
  for (const ReplOp& op : ops) {
    PutU8(out, static_cast<uint8_t>(op.kind));
    PutBytes(out, op.key);
    switch (op.kind) {
      case ReplOp::Kind::kPut:
        PutRecord(out, op.record);
        break;
      case ReplOp::Kind::kDel:
        break;
      case ReplOp::Kind::kUpdate:
        PutU32(out, op.field);
        PutBytes(out, op.value);
        break;
      case ReplOp::Kind::kTxnPrepare:
        PutU32(out, op.field);
        PutBytes(out, op.value);
        break;
      case ReplOp::Kind::kTxnCommit:
      case ReplOp::Kind::kTxnAbort:
        PutBytes(out, op.value);
        break;
    }
  }
}

bool DecodeBatch(std::string_view frame, std::vector<ReplOp>* out) {
  Cursor c{frame};
  uint32_t nops = 0;
  if (!c.TakeU32(&nops)) return false;
  if (nops > (frame.size() - c.off) / 5) return false;  // kind + key length
  out->clear();
  out->reserve(nops);
  for (uint32_t i = 0; i < nops; ++i) {
    ReplOp op;
    uint8_t kind = 0;
    if (!c.TakeU8(&kind) || !c.TakeBytes(&op.key)) return false;
    switch (kind) {
      case static_cast<uint8_t>(ReplOp::Kind::kPut):
        op.kind = ReplOp::Kind::kPut;
        if (!TakeRecord(&c, &op.record)) return false;
        break;
      case static_cast<uint8_t>(ReplOp::Kind::kDel):
        op.kind = ReplOp::Kind::kDel;
        break;
      case static_cast<uint8_t>(ReplOp::Kind::kUpdate):
        op.kind = ReplOp::Kind::kUpdate;
        if (!c.TakeU32(&op.field) || !c.TakeBytes(&op.value)) return false;
        break;
      case static_cast<uint8_t>(ReplOp::Kind::kTxnPrepare):
        op.kind = ReplOp::Kind::kTxnPrepare;
        if (!c.TakeU32(&op.field) || !c.TakeBytes(&op.value)) return false;
        break;
      case static_cast<uint8_t>(ReplOp::Kind::kTxnCommit):
        op.kind = ReplOp::Kind::kTxnCommit;
        if (!c.TakeBytes(&op.value)) return false;
        break;
      case static_cast<uint8_t>(ReplOp::Kind::kTxnAbort):
        op.kind = ReplOp::Kind::kTxnAbort;
        if (!c.TakeBytes(&op.value)) return false;
        break;
      default:
        return false;
    }
    out->push_back(std::move(op));
  }
  return c.Done();
}

bool BatchHasTxnOps(std::string_view frame) {
  Cursor c{frame};
  uint32_t nops = 0;
  if (!c.TakeU32(&nops)) return false;
  for (uint32_t i = 0; i < nops; ++i) {
    uint8_t kind = 0;
    if (!c.TakeU8(&kind) || !c.SkipBytes()) return false;  // kind + key
    switch (kind) {
      case static_cast<uint8_t>(ReplOp::Kind::kPut): {
        uint32_t nfields = 0;
        if (!c.TakeU32(&nfields)) return false;
        if (nfields > (c.in.size() - c.off) / 4) return false;
        for (uint32_t f = 0; f < nfields; ++f) {
          if (!c.SkipBytes()) return false;
        }
        break;
      }
      case static_cast<uint8_t>(ReplOp::Kind::kDel):
        break;
      case static_cast<uint8_t>(ReplOp::Kind::kUpdate): {
        uint32_t field = 0;
        if (!c.TakeU32(&field) || !c.SkipBytes()) return false;
        break;
      }
      case static_cast<uint8_t>(ReplOp::Kind::kTxnPrepare):
      case static_cast<uint8_t>(ReplOp::Kind::kTxnCommit):
      case static_cast<uint8_t>(ReplOp::Kind::kTxnAbort):
        return true;
      default:
        return false;
    }
  }
  return false;
}

void EncodeRecord(uint64_t seq, std::string_view batch_frame, std::string* out) {
  out->clear();
  PutU64(out, seq);
  out->append(batch_frame.data(), batch_frame.size());
}

bool DecodeRecord(std::string_view frame, uint64_t* seq,
                  std::string_view* batch_frame) {
  Cursor c{frame};
  if (!c.TakeU64(seq)) return false;
  *batch_frame = frame.substr(c.off);
  return true;
}

void EncodeSnapshot(uint64_t snap_seq, const std::vector<SnapshotEntry>& entries,
                    std::string* out) {
  out->clear();
  PutU64(out, snap_seq);
  PutU32(out, static_cast<uint32_t>(entries.size()));
  for (const SnapshotEntry& e : entries) {
    PutBytes(out, e.key);
    PutRecord(out, e.record);
  }
}

bool DecodeSnapshot(std::string_view frame, uint64_t* snap_seq,
                    std::vector<SnapshotEntry>* entries) {
  Cursor c{frame};
  uint32_t n = 0;
  if (!c.TakeU64(snap_seq) || !c.TakeU32(&n)) return false;
  if (n > (frame.size() - c.off) / 8) return false;  // key len + field count
  entries->clear();
  entries->reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    SnapshotEntry e;
    if (!c.TakeBytes(&e.key) || !TakeRecord(&c, &e.record)) return false;
    entries->push_back(std::move(e));
  }
  return c.Done();
}

void EncodeSegDigests(const std::vector<SegDigest>& digests, std::string* out) {
  out->clear();
  PutU32(out, static_cast<uint32_t>(digests.size()));
  for (const SegDigest& d : digests) {
    PutU64(out, d.base_seq);
    PutU32(out, d.records);
    PutU32(out, d.crc);
  }
}

bool DecodeSegDigests(std::string_view frame, std::vector<SegDigest>* out) {
  Cursor c{frame};
  uint32_t n = 0;
  if (!c.TakeU32(&n)) return false;
  if (n > (frame.size() - c.off) / 16) return false;  // 16 bytes per digest
  out->clear();
  out->reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    SegDigest d;
    if (!c.TakeU64(&d.base_seq) || !c.TakeU32(&d.records) ||
        !c.TakeU32(&d.crc)) {
      return false;
    }
    out->push_back(d);
  }
  return c.Done();
}

}  // namespace jnvm::repl
