#include "src/server/protocol.h"

#include <charconv>

namespace jnvm::server {

namespace {

// Strict non-negative integer parse; RESP lengths admit no sign, blanks or
// leading zeros beyond "0".
bool ParseLen(std::string_view s, uint64_t* out) {
  if (s.empty() || s.size() > 19) {
    return false;
  }
  if (s.size() > 1 && s[0] == '0') {
    return false;  // "04" must not alias "4": lengths have one spelling
  }
  uint64_t v = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') {
      return false;
    }
    v = v * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = v;
  return true;
}

}  // namespace

void RespParser::Feed(const char* data, size_t n) {
  Compact();
  if (buffered_bytes() + n > max_buffer_) {
    // Drop the input and poison the parser: the caller observes kError on
    // the next Next() and overflowed() to distinguish the cause.
    overflowed_ = true;
    stage_ = Stage::kBroken;
    return;
  }
  buf_.append(data, n);
}

void RespParser::Compact() {
  // Reclaim consumed prefix once it dominates the buffer.
  if (consumed_ > 4096 && consumed_ * 2 > buf_.size()) {
    buf_.erase(0, consumed_);
    consumed_ = 0;
  }
}

bool RespParser::TakeLine(std::string_view* line) {
  const size_t eol = buf_.find("\r\n", consumed_);
  if (eol == std::string::npos) {
    return false;
  }
  *line = std::string_view(buf_).substr(consumed_, eol - consumed_);
  consumed_ = eol + 2;
  return true;
}

RespParser::Status RespParser::Fail(std::string* error, const std::string& msg) {
  stage_ = Stage::kBroken;
  if (error != nullptr) {
    *error = msg;
  }
  return Status::kError;
}

RespParser::Status RespParser::Next(std::vector<std::string>* args,
                                    std::string* error) {
  while (true) {
    switch (stage_) {
      case Stage::kBroken:
        return Fail(error, overflowed_ ? "input buffer cap exceeded"
                                       : "parser in error state");
      case Stage::kArrayHeader: {
        std::string_view line;
        if (!TakeLine(&line)) {
          return Status::kNeedMore;
        }
        if (line.empty() || line[0] != '*') {
          return Fail(error, "expected array header '*'");
        }
        uint64_t n;
        if (!ParseLen(line.substr(1), &n) || n == 0) {
          return Fail(error, "bad array length");
        }
        if (n > kMaxArgs) {
          return Fail(error, "array exceeds argument limit");
        }
        args_left_ = n;
        partial_.clear();
        partial_.reserve(n);
        stage_ = Stage::kBulkHeader;
        break;
      }
      case Stage::kBulkHeader: {
        std::string_view line;
        if (!TakeLine(&line)) {
          return Status::kNeedMore;
        }
        if (line.empty() || line[0] != '$') {
          return Fail(error, "expected bulk header '$'");
        }
        if (!ParseLen(line.substr(1), &bulk_len_)) {
          return Fail(error, "bad bulk length");
        }
        if (bulk_len_ > kMaxBulkBytes) {
          return Fail(error, "bulk string exceeds size limit");
        }
        stage_ = Stage::kBulkBody;
        break;
      }
      case Stage::kBulkBody: {
        if (buf_.size() - consumed_ < bulk_len_ + 2) {
          return Status::kNeedMore;
        }
        if (buf_[consumed_ + bulk_len_] != '\r' ||
            buf_[consumed_ + bulk_len_ + 1] != '\n') {
          return Fail(error, "bulk string not CRLF-terminated");
        }
        partial_.emplace_back(buf_, consumed_, bulk_len_);
        consumed_ += bulk_len_ + 2;
        if (--args_left_ == 0) {
          *args = std::move(partial_);
          partial_.clear();
          stage_ = Stage::kArrayHeader;
          Compact();
          return Status::kCommand;
        }
        stage_ = Stage::kBulkHeader;
        break;
      }
    }
  }
}

// ---- Reply builders ---------------------------------------------------------

void AppendSimple(std::string* out, std::string_view s) {
  out->push_back('+');
  out->append(s);
  out->append("\r\n");
}

void AppendError(std::string* out, std::string_view msg) {
  out->append("-ERR ");
  out->append(msg);
  out->append("\r\n");
}

void AppendErrorCode(std::string* out, std::string_view msg) {
  out->push_back('-');
  out->append(msg);
  out->append("\r\n");
}

void AppendInteger(std::string* out, int64_t v) {
  out->push_back(':');
  out->append(std::to_string(v));
  out->append("\r\n");
}

void AppendBulk(std::string* out, std::string_view s) {
  out->push_back('$');
  out->append(std::to_string(s.size()));
  out->append("\r\n");
  out->append(s);
  out->append("\r\n");
}

void AppendNil(std::string* out) { out->append("$-1\r\n"); }

void AppendArrayHeader(std::string* out, size_t n) {
  out->push_back('*');
  out->append(std::to_string(n));
  out->append("\r\n");
}

// ---- Reply parser -----------------------------------------------------------

void RespReplyParser::Feed(const char* data, size_t n) {
  if (consumed_ > 4096 && consumed_ * 2 > buf_.size()) {
    buf_.erase(0, consumed_);
    consumed_ = 0;
  }
  buf_.append(data, n);
}

RespParser::Status RespReplyParser::Next(RespReply* out, std::string* error) {
  if (broken_) {
    if (error != nullptr) {
      *error = "reply parser in error state";
    }
    return RespParser::Status::kError;
  }
  size_t pos = consumed_;
  const RespParser::Status st = ParseOne(out, error, &pos, 0);
  if (st == RespParser::Status::kCommand) {
    consumed_ = pos;
  }
  return st;
}

RespParser::Status RespReplyParser::ParseOne(RespReply* out, std::string* error,
                                             size_t* pos, int depth) {
  const size_t eol = buf_.find("\r\n", *pos);
  if (eol == std::string::npos) {
    return RespParser::Status::kNeedMore;
  }
  const std::string_view line = std::string_view(buf_).substr(*pos, eol - *pos);
  auto fail = [&](const char* msg) {
    broken_ = true;
    if (error != nullptr) {
      *error = msg;
    }
    return RespParser::Status::kError;
  };
  if (line.empty()) {
    return fail("empty reply line");
  }
  switch (line[0]) {
    case '+':
      out->type = RespReply::Type::kSimple;
      out->str.assign(line.substr(1));
      *pos = eol + 2;
      return RespParser::Status::kCommand;
    case '-':
      out->type = RespReply::Type::kError;
      out->str.assign(line.substr(1));
      *pos = eol + 2;
      return RespParser::Status::kCommand;
    case ':': {
      int64_t v = 0;
      const std::string_view num = line.substr(1);
      const auto res = std::from_chars(num.data(), num.data() + num.size(), v);
      if (res.ec != std::errc() || res.ptr != num.data() + num.size()) {
        return fail("bad integer reply");
      }
      out->type = RespReply::Type::kInteger;
      out->integer = v;
      *pos = eol + 2;
      return RespParser::Status::kCommand;
    }
    case '$': {
      if (line.substr(1) == "-1") {
        out->type = RespReply::Type::kNil;
        out->str.clear();
        *pos = eol + 2;
        return RespParser::Status::kCommand;
      }
      uint64_t len;
      if (!ParseLen(line.substr(1), &len) || len > kMaxBulkBytes) {
        return fail("bad bulk reply length");
      }
      const size_t body = eol + 2;
      if (buf_.size() < body + len + 2) {
        return RespParser::Status::kNeedMore;
      }
      if (buf_[body + len] != '\r' || buf_[body + len + 1] != '\n') {
        return fail("bulk reply not CRLF-terminated");
      }
      out->type = RespReply::Type::kBulk;
      out->str.assign(buf_, body, len);
      *pos = body + len + 2;
      return RespParser::Status::kCommand;
    }
    case '*': {
      // Reply arrays (EXEC). *-1 is the nil array; elements recurse one
      // level deep in practice, but tolerate modest nesting.
      if (line.substr(1) == "-1") {
        out->type = RespReply::Type::kNil;
        out->str.clear();
        *pos = eol + 2;
        return RespParser::Status::kCommand;
      }
      if (depth >= 4) {
        return fail("reply array nested too deep");
      }
      uint64_t n;
      if (!ParseLen(line.substr(1), &n) || n > kMaxArgs) {
        return fail("bad array reply length");
      }
      out->type = RespReply::Type::kArray;
      out->str.clear();
      out->elements.clear();
      out->elements.reserve(n);
      *pos = eol + 2;
      for (uint64_t i = 0; i < n; ++i) {
        RespReply elem;
        const RespParser::Status st = ParseOne(&elem, error, pos, depth + 1);
        if (st != RespParser::Status::kCommand) {
          return st;  // kNeedMore: caller rolls *pos back wholesale
        }
        out->elements.push_back(std::move(elem));
      }
      return RespParser::Status::kCommand;
    }
    default:
      return fail("unknown reply type byte");
  }
}

}  // namespace jnvm::server
