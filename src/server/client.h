// Blocking RESP client for the J-NVM server — used by the load generator,
// the e2e tests and anything scripting the server.
//
// One Client = one TCP connection; not thread-safe (one per thread). Two
// call styles:
//  * synchronous helpers (Ping/Set/Get/...) — one round trip each;
//  * explicit pipelining — queue commands with Pipe*() and collect the
//    replies in order with Sync(), amortizing round trips (and letting the
//    server fill its fence-batching groups).
#ifndef JNVM_SRC_SERVER_CLIENT_H_
#define JNVM_SRC_SERVER_CLIENT_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/server/protocol.h"

namespace jnvm::server {

class Client {
 public:
  // nullptr on connection failure (*error holds the reason).
  static std::unique_ptr<Client> Connect(const std::string& host, uint16_t port,
                                         std::string* error);
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // ---- Synchronous helpers (send one command, read one reply) ------------
  // On I/O failure they return false/nullopt and last_error() explains.

  bool Ping();
  bool Set(const std::string& key, const std::string& value);
  std::optional<std::string> Get(const std::string& key);
  // True when the key existed.
  bool Del(const std::string& key);
  bool Hset(const std::string& key, uint32_t field, const std::string& value);
  bool Touch(const std::string& key);
  bool Mset(const std::vector<std::pair<std::string, std::string>>& pairs);
  // ---- Session consistency (DESIGN.md §8) --------------------------------
  // LastSeq asks a server for a shard's sealed watermark; on a primary that
  // covers every write this connection issued before the call, so the value
  // is the session token for read-your-writes on replicas. MinSeq raises
  // this connection's read floor on a (replica) server: subsequent reads on
  // the shard park until the replica applied through `seq`, or fail -STALE.
  std::optional<uint64_t> LastSeq(uint32_t shard);
  bool MinSeq(uint32_t shard, uint64_t seq);
  std::optional<std::string> Stats();
  // +OK = clean quiesce (integrity audit passed, images saved).
  bool Shutdown();

  // ---- Transactions (DESIGN.md §9) ---------------------------------------
  // MULTI / queued ops / EXEC. Multi() opens the txn; ops queue with the
  // pipelining helpers or plain Roundtrip ("+QUEUED" replies); Exec() sends
  // EXEC and returns the per-op reply array. An -TXNABORT (or any error)
  // reply surfaces as false with last_error() set; *replies then stays
  // empty — the txn applied nothing.
  bool Multi();
  bool Exec(std::vector<RespReply>* replies);
  bool Discard();

  // ---- Pipelining ---------------------------------------------------------

  // Queues a command without flushing.
  void PipeCommand(const std::vector<std::string>& args);
  void PipeSet(const std::string& key, const std::string& value) {
    PipeCommand({"SET", key, value});
  }
  void PipeGet(const std::string& key) { PipeCommand({"GET", key}); }
  void PipeHset(const std::string& key, uint32_t field, const std::string& value) {
    PipeCommand({"HSET", key, std::to_string(field), value});
  }
  // Flushes the queue and reads exactly as many replies as were queued.
  // False on I/O error (replies gathered so far are in *out).
  bool Sync(std::vector<RespReply>* out);

  // Sends one command and reads one reply; the workhorse behind the helpers.
  bool Roundtrip(const std::vector<std::string>& args, RespReply* reply);

  // ---- Streaming (replication) -------------------------------------------
  // REPLSYNC converts the connection into a reply stream: send the command
  // once, then read replies forever. These split Roundtrip into its halves.

  bool SendCommand(const std::vector<std::string>& args);
  // Blocks until one reply arrives; false on I/O error or peer close.
  bool ReadOneReply(RespReply* out);
  // Half-closes the socket from any thread: a blocked ReadOneReply returns
  // false. Used to stop replication pull loops.
  void ShutdownSocket();

  const std::string& last_error() const { return err_; }

 private:
  Client() = default;

  bool WriteAll(const char* data, size_t n);
  bool ReadReply(RespReply* out);

  int fd_ = -1;
  uint32_t queued_ = 0;
  std::string outbuf_;
  RespReplyParser replies_;
  std::string err_;
};

}  // namespace jnvm::server

#endif  // JNVM_SRC_SERVER_CLIENT_H_
