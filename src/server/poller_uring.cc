// io_uring readiness backend (DESIGN.md §7), raw syscalls — no liburing.
//
// Readiness: every watched fd is armed with a one-shot IORING_OP_POLL_ADD
// SQE; all arms and cancels accumulated since the last round are flushed in
// a single io_uring_enter that also waits for completions, so a loop
// watching 10k fds pays one syscall per round regardless of churn. One-shot
// polls give the same level-triggered contract as epoll here: a fired fd is
// re-armed on the next Wait, and poll(2) semantics report it again if it is
// still ready. Stale completions (an fd re-watched or forgotten while its
// poll was in flight) are fenced by a per-fd generation stamped into
// user_data.
//
// Output: WritevBatch maps the chunked output queues of N dirty connections
// onto N IORING_OP_SENDMSG SQEs (MSG_DONTWAIT | MSG_NOSIGNAL) submitted and
// reaped in one io_uring_enter — the DrainCompletions flush phase ships
// every connection it dirtied with one syscall instead of one writev each.
// MSG_DONTWAIT makes each op complete immediately (bytes or -EAGAIN), so
// waiting for all N completions cannot park the event loop on a slow peer.
// Poll completions that surface during the reap are spilled to a buffer the
// next Wait drains first, so no readiness event is lost.
#include "src/server/poller.h"

#ifdef __linux__
#include <linux/io_uring.h>
#include <sys/mman.h>
#include <sys/socket.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

#include <poll.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstring>
#include <unordered_map>

namespace jnvm::server {

#if defined(__linux__) && defined(__NR_io_uring_setup)

namespace {

int SysUringSetup(unsigned entries, io_uring_params* p) {
  return static_cast<int>(::syscall(__NR_io_uring_setup, entries, p));
}

int SysUringEnter(int fd, unsigned to_submit, unsigned min_complete,
                  unsigned flags, const void* arg, size_t argsz) {
  return static_cast<int>(::syscall(__NR_io_uring_enter, fd, to_submit,
                                    min_complete, flags, arg, argsz));
}

// user_data layout: tag (2 bits) | fd (30 bits) | generation (32 bits).
constexpr uint64_t kTagPoll = 0;
constexpr uint64_t kTagCancel = 1;
constexpr uint64_t kTagWrite = 2;
constexpr int kTagShift = 62;

uint64_t PollData(int fd, uint32_t gen) {
  return (kTagPoll << kTagShift) |
         (static_cast<uint64_t>(static_cast<uint32_t>(fd)) << 32) | gen;
}

class UringPoller final : public Poller {
 public:
  static std::unique_ptr<Poller> Make() {
    auto p = std::unique_ptr<UringPoller>(new UringPoller());
    return p->Init() ? std::unique_ptr<Poller>(std::move(p)) : nullptr;
  }

  ~UringPoller() override {
    if (sq_ring_ != MAP_FAILED) {
      ::munmap(sq_ring_, sq_ring_sz_);
    }
    if (cq_ring_ != MAP_FAILED && cq_ring_ != sq_ring_) {
      ::munmap(cq_ring_, cq_ring_sz_);
    }
    if (sqes_ != MAP_FAILED) {
      ::munmap(sqes_, sqes_sz_);
    }
    if (ring_fd_ >= 0) {
      ::close(ring_fd_);
    }
  }

  const char* name() const override { return "uring"; }

  void Watch(int fd, bool want_read, bool want_write) override {
    const uint16_t mask = static_cast<uint16_t>(
        (want_read ? POLLIN : 0) | (want_write ? POLLOUT : 0));
    FdState& st = fds_[fd];
    if (st.armed && st.armed_mask != mask) {
      CancelArm(fd, st);  // interest changed mid-flight: re-arm next Wait
    }
    st.mask = mask;
  }

  void Forget(int fd) override {
    const auto it = fds_.find(fd);
    if (it == fds_.end()) {
      return;
    }
    if (it->second.armed) {
      CancelArm(fd, it->second);
    }
    fds_.erase(it);
  }

  void Wait(std::vector<Event>* out, int timeout_ms) override {
    out->clear();
    // Readiness that surfaced while WritevBatch reaped its SQEs.
    out->swap(spill_);
    // Re-arm: one one-shot POLL_ADD per watched-but-unarmed fd. The arms,
    // plus any queued cancels, ride the same io_uring_enter as the wait.
    for (auto& [fd, st] : fds_) {
      if (st.armed || st.mask == 0) {
        continue;
      }
      io_uring_sqe sqe{};
      sqe.opcode = IORING_OP_POLL_ADD;
      sqe.fd = fd;
      sqe.poll_events = st.mask;
      sqe.user_data = PollData(fd, st.gen);
      PushSqe(sqe);
      st.armed = true;
      st.armed_mask = st.mask;
    }
    const unsigned to_submit = pending_submit_;
    pending_submit_ = 0;
    if (!out->empty() || CqReady()) {
      // Events already on hand: submit without blocking, drain, return.
      if (to_submit > 0) {
        EnterRetry(to_submit, 0, 0, nullptr, 0);
      }
      DrainCq(out);
      return;
    }
    __kernel_timespec ts{};
    ts.tv_sec = timeout_ms / 1000;
    ts.tv_nsec = static_cast<long long>(timeout_ms % 1000) * 1000000;
    io_uring_getevents_arg arg{};
    arg.ts = reinterpret_cast<uint64_t>(&ts);
    EnterRetry(to_submit, 1, IORING_ENTER_GETEVENTS | IORING_ENTER_EXT_ARG,
               &arg, sizeof(arg));
    DrainCq(out);
  }

  bool WritevBatch(WriteOp* ops, size_t n) override {
    if (n == 0) {
      return true;
    }
    // msghdrs must outlive the enter; they live here for the whole reap.
    std::vector<msghdr> hdrs(n);
    size_t submitted = 0;
    size_t reaped = 0;
    while (reaped < n) {
      unsigned batch = 0;
      while (submitted < n) {
        msghdr& mh = hdrs[submitted];
        std::memset(&mh, 0, sizeof(mh));
        mh.msg_iov = ops[submitted].iov;
        mh.msg_iovlen = static_cast<size_t>(ops[submitted].niov);
        io_uring_sqe sqe{};
        sqe.opcode = IORING_OP_SENDMSG;
        sqe.fd = ops[submitted].fd;
        sqe.addr = reinterpret_cast<uint64_t>(&mh);
        sqe.msg_flags = MSG_DONTWAIT | MSG_NOSIGNAL;
        sqe.user_data =
            (kTagWrite << kTagShift) | static_cast<uint64_t>(submitted);
        if (!TryPushSqe(sqe)) {
          break;  // SQ full: flush this chunk first
        }
        ++submitted;
        ++batch;
      }
      // MSG_DONTWAIT completes every op immediately, so waiting for the
      // whole chunk cannot stall on a slow peer.
      EnterRetry(pending_submit_, batch, IORING_ENTER_GETEVENTS, nullptr, 0);
      pending_submit_ = 0;
      reaped += ReapWrites(ops, n);
    }
    return true;
  }

 private:
  struct FdState {
    uint16_t mask = 0;        // current interest (POLLIN/POLLOUT bits)
    uint16_t armed_mask = 0;  // interest the in-flight POLL_ADD carries
    bool armed = false;
    uint32_t gen = 0;  // bumped on cancel: fences stale completions
  };

  UringPoller() = default;

  bool Init() {
    io_uring_params p{};
    ring_fd_ = SysUringSetup(256, &p);
    if (ring_fd_ < 0) {
      return false;
    }
    // The timed wait needs EXT_ARG (5.11+); without it, fall back to epoll
    // rather than busy-poll.
    if ((p.features & IORING_FEAT_EXT_ARG) == 0) {
      return false;
    }
    sq_entries_ = p.sq_entries;
    sq_ring_sz_ = p.sq_off.array + p.sq_entries * sizeof(uint32_t);
    cq_ring_sz_ = p.cq_off.cqes + p.cq_entries * sizeof(io_uring_cqe);
    if ((p.features & IORING_FEAT_SINGLE_MMAP) != 0) {
      sq_ring_sz_ = cq_ring_sz_ = std::max(sq_ring_sz_, cq_ring_sz_);
    }
    sq_ring_ = ::mmap(nullptr, sq_ring_sz_, PROT_READ | PROT_WRITE,
                      MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQ_RING);
    if (sq_ring_ == MAP_FAILED) {
      return false;
    }
    if ((p.features & IORING_FEAT_SINGLE_MMAP) != 0) {
      cq_ring_ = sq_ring_;
    } else {
      cq_ring_ = ::mmap(nullptr, cq_ring_sz_, PROT_READ | PROT_WRITE,
                        MAP_SHARED | MAP_POPULATE, ring_fd_,
                        IORING_OFF_CQ_RING);
      if (cq_ring_ == MAP_FAILED) {
        return false;
      }
    }
    sqes_sz_ = p.sq_entries * sizeof(io_uring_sqe);
    sqes_ = ::mmap(nullptr, sqes_sz_, PROT_READ | PROT_WRITE,
                   MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQES);
    if (sqes_ == MAP_FAILED) {
      return false;
    }
    auto* sq = static_cast<uint8_t*>(sq_ring_);
    sq_head_ = reinterpret_cast<std::atomic<uint32_t>*>(sq + p.sq_off.head);
    sq_tail_ = reinterpret_cast<std::atomic<uint32_t>*>(sq + p.sq_off.tail);
    sq_mask_ = *reinterpret_cast<uint32_t*>(sq + p.sq_off.ring_mask);
    sq_array_ = reinterpret_cast<uint32_t*>(sq + p.sq_off.array);
    auto* cq = static_cast<uint8_t*>(cq_ring_);
    cq_head_ = reinterpret_cast<std::atomic<uint32_t>*>(cq + p.cq_off.head);
    cq_tail_ = reinterpret_cast<std::atomic<uint32_t>*>(cq + p.cq_off.tail);
    cq_mask_ = *reinterpret_cast<uint32_t*>(cq + p.cq_off.ring_mask);
    cqes_ = reinterpret_cast<io_uring_cqe*>(cq + p.cq_off.cqes);
    return true;
  }

  // Queues a POLL_REMOVE for the in-flight arm and bumps the generation so
  // the cancelled (or already-fired) completion is recognized as stale.
  void CancelArm(int fd, FdState& st) {
    io_uring_sqe sqe{};
    sqe.opcode = IORING_OP_POLL_REMOVE;
    sqe.addr = PollData(fd, st.gen);
    sqe.user_data = kTagCancel << kTagShift;
    PushSqe(sqe);
    st.armed = false;
    ++st.gen;
  }

  bool TryPushSqe(const io_uring_sqe& sqe) {
    const uint32_t tail = sq_tail_->load(std::memory_order_relaxed);
    const uint32_t head = sq_head_->load(std::memory_order_acquire);
    if (tail - head == sq_entries_) {
      return false;
    }
    const uint32_t idx = tail & sq_mask_;
    reinterpret_cast<io_uring_sqe*>(sqes_)[idx] = sqe;
    sq_array_[idx] = idx;
    sq_tail_->store(tail + 1, std::memory_order_release);
    ++pending_submit_;
    return true;
  }

  void PushSqe(const io_uring_sqe& sqe) {
    while (!TryPushSqe(sqe)) {
      // SQ full: flush what is queued, then retry.
      EnterRetry(pending_submit_, 0, 0, nullptr, 0);
      pending_submit_ = 0;
    }
  }

  void EnterRetry(unsigned to_submit, unsigned min_complete, unsigned flags,
                  const void* arg, size_t argsz) {
    for (;;) {
      const int r = SysUringEnter(ring_fd_, to_submit, min_complete, flags,
                                  arg, argsz);
      if (r >= 0) {
        return;
      }
      if (errno == EINTR) {
        continue;  // signal: not a lost round
      }
      return;  // ETIME (timed wait expired) and hard errors alike
    }
  }

  bool CqReady() const {
    return cq_head_->load(std::memory_order_relaxed) !=
           cq_tail_->load(std::memory_order_acquire);
  }

  void HandlePollCqe(const io_uring_cqe& cqe, std::vector<Event>* out) {
    const int fd = static_cast<int>((cqe.user_data >> 32) & 0x3fffffffu);
    const uint32_t gen = static_cast<uint32_t>(cqe.user_data);
    const auto it = fds_.find(fd);
    if (it == fds_.end() || it->second.gen != gen) {
      return;  // stale: fd forgotten or re-armed since this poll was queued
    }
    it->second.armed = false;  // one-shot fired; next Wait re-arms
    if (cqe.res < 0) {
      if (cqe.res == -ECANCELED) {
        return;
      }
      Event e;
      e.fd = fd;
      e.error = true;
      out->push_back(e);
      return;
    }
    Event e;
    e.fd = fd;
    e.readable = (cqe.res & (POLLIN | POLLHUP)) != 0;
    e.writable = (cqe.res & POLLOUT) != 0;
    e.error = (cqe.res & (POLLERR | POLLNVAL)) != 0;
    if (e.readable || e.writable || e.error) {
      out->push_back(e);
    }
  }

  void DrainCq(std::vector<Event>* out) {
    uint32_t head = cq_head_->load(std::memory_order_relaxed);
    const uint32_t tail = cq_tail_->load(std::memory_order_acquire);
    while (head != tail) {
      const io_uring_cqe& cqe = cqes_[head & cq_mask_];
      if ((cqe.user_data >> kTagShift) == kTagPoll) {
        HandlePollCqe(cqe, out);
      }
      ++head;
    }
    cq_head_->store(head, std::memory_order_release);
  }

  // Reaps the CQ during WritevBatch: write completions record their result;
  // poll completions spill to the buffer the next Wait() drains first.
  size_t ReapWrites(WriteOp* ops, size_t n) {
    size_t got = 0;
    uint32_t head = cq_head_->load(std::memory_order_relaxed);
    const uint32_t tail = cq_tail_->load(std::memory_order_acquire);
    while (head != tail) {
      const io_uring_cqe& cqe = cqes_[head & cq_mask_];
      const uint64_t tag = cqe.user_data >> kTagShift;
      if (tag == kTagWrite) {
        const size_t idx = static_cast<size_t>(cqe.user_data & 0xffffffffu);
        if (idx < n) {
          ops[idx].nsent = cqe.res;
          ++got;
        }
      } else if (tag == kTagPoll) {
        HandlePollCqe(cqe, &spill_);
      }
      ++head;
    }
    cq_head_->store(head, std::memory_order_release);
    return got;
  }

  int ring_fd_ = -1;
  void* sq_ring_ = MAP_FAILED;
  void* cq_ring_ = MAP_FAILED;
  void* sqes_ = MAP_FAILED;
  size_t sq_ring_sz_ = 0, cq_ring_sz_ = 0, sqes_sz_ = 0;
  uint32_t sq_entries_ = 0;
  std::atomic<uint32_t>* sq_head_ = nullptr;
  std::atomic<uint32_t>* sq_tail_ = nullptr;
  uint32_t sq_mask_ = 0;
  uint32_t* sq_array_ = nullptr;
  std::atomic<uint32_t>* cq_head_ = nullptr;
  std::atomic<uint32_t>* cq_tail_ = nullptr;
  uint32_t cq_mask_ = 0;
  io_uring_cqe* cqes_ = nullptr;
  unsigned pending_submit_ = 0;
  std::unordered_map<int, FdState> fds_;
  std::vector<Event> spill_;  // poll events surfaced during WritevBatch
};

}  // namespace

bool IoUringSupported() {
  io_uring_params p{};
  const int fd = SysUringSetup(4, &p);
  if (fd < 0) {
    return false;
  }
  ::close(fd);
  return (p.features & IORING_FEAT_EXT_ARG) != 0;
}

std::unique_ptr<Poller> MakeUringPoller() { return UringPoller::Make(); }

#else  // !__linux__ || !__NR_io_uring_setup

bool IoUringSupported() { return false; }
std::unique_ptr<Poller> MakeUringPoller() { return nullptr; }

#endif

}  // namespace jnvm::server
