// Event-loop readiness backend (DESIGN.md §7). Three implementations sit
// behind this interface:
//   * epoll   — the Linux default (edge of nothing: level-triggered);
//   * poll    — portable fallback, also forced by tests so both ready paths
//               stay exercised on one platform;
//   * uring   — io_uring: readiness via one-shot POLL_ADD SQEs re-armed per
//               Wait, all arms/cancels batched into a single io_uring_enter,
//               plus a batched-writev path (WritevBatch) that maps the
//               chunked output queue of N dirty connections onto N SENDMSG
//               SQEs submitted and reaped in one syscall.
// Each Server event loop owns one Poller instance; a Poller is never shared
// across threads. Create() resolves the requested kind at runtime: asking
// for uring on a kernel without io_uring support falls back to epoll and
// reports the substitution through name() (STATS shows the poller actually
// in use — the CI fallback probe asserts on it).
#ifndef JNVM_SRC_SERVER_POLLER_H_
#define JNVM_SRC_SERVER_POLLER_H_

#include <sys/uio.h>

#include <cstdint>
#include <memory>
#include <vector>

namespace jnvm::server {

enum class PollerKind {
  kEpoll,
  kPoll,
  kUring,
};

class Poller {
 public:
  struct Event {
    int fd = -1;
    bool readable = false;
    bool writable = false;
    bool error = false;
  };

  // One connection's scatter-gather flush in a WritevBatch: `iov`/`niov`
  // describe the pending chunks, `nsent` comes back as the byte count the
  // kernel accepted (or -errno). Buffers must stay valid across the call —
  // WritevBatch is synchronous (every SQE is reaped before it returns), so
  // ordinary stack/queue lifetime is enough.
  struct WriteOp {
    int fd = -1;
    struct iovec* iov = nullptr;
    int niov = 0;
    ssize_t nsent = 0;  // out: >=0 bytes accepted, or -errno
  };

  virtual ~Poller() = default;

  // Declares interest in `fd`. Level-triggered semantics on every backend:
  // a still-readable fd reports readable on the next Wait even if the
  // previous round did not consume it. Read interest is a parameter so a
  // connection under shard backpressure can stop watching readable
  // (read-pause) and let the kernel buffer the client's pipeline.
  virtual void Watch(int fd, bool want_read, bool want_write) = 0;
  virtual void Forget(int fd) = 0;
  virtual void Wait(std::vector<Event>* out, int timeout_ms) = 0;

  // Flushes `n` connections' output queues in one submission when the
  // backend supports it (io_uring: N SENDMSG SQEs, one io_uring_enter,
  // MSG_DONTWAIT so a full socket completes -EAGAIN instead of parking the
  // loop). Returns false when unsupported — the caller falls back to one
  // writev(2) per connection.
  virtual bool WritevBatch(WriteOp* /*ops*/, size_t /*n*/) { return false; }

  // "epoll" | "poll" | "uring" — the backend actually running, after any
  // runtime fallback.
  virtual const char* name() const = 0;

  // Builds the requested backend, falling back uring → epoll (and, off
  // Linux, epoll → poll) when the kernel lacks support. Never fails.
  static std::unique_ptr<Poller> Create(PollerKind kind);
};

// True when io_uring_setup succeeds on this kernel (used by tests and the
// CI probe to decide whether `uring` runs natively or falls back).
bool IoUringSupported();

// Internal constructors (poller.cc / poller_uring.cc).
std::unique_ptr<Poller> MakeClassicPoller(bool use_epoll);
std::unique_ptr<Poller> MakeUringPoller();  // nullptr when unsupported

}  // namespace jnvm::server

#endif  // JNVM_SRC_SERVER_POLLER_H_
