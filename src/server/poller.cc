// Classic readiness backends: epoll on Linux, poll(2) everywhere. Moved out
// of server.cc when the loop pool landed so all three backends (this file
// plus poller_uring.cc) share one interface and one factory.
#include "src/server/poller.h"

#include <poll.h>

#include <cerrno>
#include <unordered_map>

#ifdef __linux__
#include <sys/epoll.h>
#include <unistd.h>
#endif

namespace jnvm::server {

namespace {

class ClassicPoller final : public Poller {
 public:
  explicit ClassicPoller(bool use_epoll) {
#ifdef __linux__
    if (use_epoll) {
      epfd_ = epoll_create1(0);
      epoll_ = epfd_ >= 0;
    }
#else
    (void)use_epoll;
#endif
  }

  ~ClassicPoller() override {
#ifdef __linux__
    if (epfd_ >= 0) {
      ::close(epfd_);
    }
#endif
  }

  const char* name() const override { return epoll_ ? "epoll" : "poll"; }

  void Watch(int fd, bool want_read, bool want_write) override {
    const uint8_t mask = (want_read ? 1u : 0u) | (want_write ? 2u : 0u);
    const auto it = fds_.find(fd);
    const bool known = it != fds_.end();
    if (known && it->second == mask) {
      return;
    }
    fds_[fd] = mask;
#ifdef __linux__
    if (epoll_) {
      epoll_event ev{};
      ev.events = (want_read ? EPOLLIN : 0u) | (want_write ? EPOLLOUT : 0u);
      ev.data.fd = fd;
      epoll_ctl(epfd_, known ? EPOLL_CTL_MOD : EPOLL_CTL_ADD, fd, &ev);
    }
#endif
  }

  void Forget(int fd) override {
    fds_.erase(fd);
#ifdef __linux__
    if (epoll_) {
      epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, nullptr);
    }
#endif
  }

  void Wait(std::vector<Event>* out, int timeout_ms) override {
    out->clear();
#ifdef __linux__
    if (epoll_) {
      epoll_event evs[64];
      int n;
      do {
        n = epoll_wait(epfd_, evs, 64, timeout_ms);
      } while (n < 0 && errno == EINTR);  // signal: not a lost round
      for (int i = 0; i < n; ++i) {
        Event e;
        e.fd = evs[i].data.fd;
        e.readable = (evs[i].events & (EPOLLIN | EPOLLHUP)) != 0;
        e.writable = (evs[i].events & EPOLLOUT) != 0;
        e.error = (evs[i].events & EPOLLERR) != 0;
        out->push_back(e);
      }
      return;
    }
#endif
    std::vector<pollfd> pfds;
    pfds.reserve(fds_.size());
    for (const auto& [fd, mask] : fds_) {
      pollfd p{};
      p.fd = fd;
      p.events = static_cast<short>(((mask & 1u) != 0 ? POLLIN : 0) |
                                    ((mask & 2u) != 0 ? POLLOUT : 0));
      pfds.push_back(p);
    }
    int n;
    do {
      n = ::poll(pfds.data(), pfds.size(), timeout_ms);
    } while (n < 0 && errno == EINTR);  // signal: not a lost round
    if (n <= 0) {
      return;
    }
    for (const pollfd& p : pfds) {
      if (p.revents == 0) {
        continue;
      }
      Event e;
      e.fd = p.fd;
      e.readable = (p.revents & (POLLIN | POLLHUP)) != 0;
      e.writable = (p.revents & POLLOUT) != 0;
      e.error = (p.revents & (POLLERR | POLLNVAL)) != 0;
      out->push_back(e);
    }
  }

 private:
  bool epoll_ = false;
#ifdef __linux__
  int epfd_ = -1;
#endif
  std::unordered_map<int, uint8_t> fds_;  // fd -> interest mask (1=r, 2=w)
};

}  // namespace

std::unique_ptr<Poller> MakeClassicPoller(bool use_epoll) {
  return std::make_unique<ClassicPoller>(use_epoll);
}

std::unique_ptr<Poller> Poller::Create(PollerKind kind) {
  if (kind == PollerKind::kUring) {
    auto p = MakeUringPoller();
    if (p != nullptr) {
      return p;
    }
    kind = PollerKind::kEpoll;  // runtime fallback: kernel lacks io_uring
  }
  return MakeClassicPoller(kind == PollerKind::kEpoll);
}

}  // namespace jnvm::server
