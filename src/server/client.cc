#include "src/server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace jnvm::server {

namespace {

void AppendCommand(std::string* out, const std::vector<std::string>& args) {
  out->push_back('*');
  out->append(std::to_string(args.size()));
  out->append("\r\n");
  for (const std::string& a : args) {
    AppendBulk(out, a);
  }
}

}  // namespace

std::unique_ptr<Client> Client::Connect(const std::string& host, uint16_t port,
                                        std::string* error) {
  auto fail = [&](const std::string& msg) {
    if (error != nullptr) {
      *error = msg + ": " + std::strerror(errno);
    }
    return nullptr;
  };
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return fail("socket");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return fail("inet_pton(" + host + ")");
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return fail("connect");
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  auto c = std::unique_ptr<Client>(new Client());
  c->fd_ = fd;
  return c;
}

Client::~Client() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

bool Client::WriteAll(const char* data, size_t n) {
  size_t off = 0;
  while (off < n) {
    // MSG_NOSIGNAL: a write racing the peer's death (the REPLACK path when
    // a primary is killed) must fail with EPIPE, not raise SIGPIPE.
    const ssize_t w = ::send(fd_, data + off, n - off, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) {
        continue;
      }
      err_ = std::string("write: ") + std::strerror(errno);
      return false;
    }
    off += static_cast<size_t>(w);
  }
  return true;
}

bool Client::ReadReply(RespReply* out) {
  char buf[65536];
  for (;;) {
    std::string perr;
    const RespParser::Status st = replies_.Next(out, &perr);
    if (st == RespParser::Status::kCommand) {
      return true;
    }
    if (st == RespParser::Status::kError) {
      err_ = "reply parse: " + perr;
      return false;
    }
    const ssize_t n = ::read(fd_, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      err_ = std::string("read: ") + std::strerror(errno);
      return false;
    }
    if (n == 0) {
      err_ = "connection closed by server";
      return false;
    }
    replies_.Feed(buf, static_cast<size_t>(n));
  }
}

bool Client::Roundtrip(const std::vector<std::string>& args, RespReply* reply) {
  std::string wire;
  AppendCommand(&wire, args);
  return WriteAll(wire.data(), wire.size()) && ReadReply(reply);
}

bool Client::SendCommand(const std::vector<std::string>& args) {
  std::string wire;
  AppendCommand(&wire, args);
  return WriteAll(wire.data(), wire.size());
}

bool Client::ReadOneReply(RespReply* out) { return ReadReply(out); }

void Client::ShutdownSocket() {
  if (fd_ >= 0) {
    ::shutdown(fd_, SHUT_RDWR);
  }
}

void Client::PipeCommand(const std::vector<std::string>& args) {
  AppendCommand(&outbuf_, args);
  ++queued_;
}

bool Client::Sync(std::vector<RespReply>* out) {
  out->clear();
  if (!WriteAll(outbuf_.data(), outbuf_.size())) {
    outbuf_.clear();
    queued_ = 0;
    return false;
  }
  outbuf_.clear();
  const uint32_t expect = queued_;
  queued_ = 0;
  out->reserve(expect);
  for (uint32_t i = 0; i < expect; ++i) {
    RespReply r;
    if (!ReadReply(&r)) {
      return false;
    }
    out->push_back(std::move(r));
  }
  return true;
}

bool Client::Ping() {
  RespReply r;
  return Roundtrip({"PING"}, &r) && r.type == RespReply::Type::kSimple &&
         r.str == "PONG";
}

bool Client::Set(const std::string& key, const std::string& value) {
  RespReply r;
  if (!Roundtrip({"SET", key, value}, &r)) {
    return false;
  }
  if (r.type == RespReply::Type::kError) {
    err_ = r.str;
    return false;
  }
  return r.type == RespReply::Type::kSimple;
}

std::optional<std::string> Client::Get(const std::string& key) {
  RespReply r;
  if (!Roundtrip({"GET", key}, &r)) {
    return std::nullopt;
  }
  if (r.type != RespReply::Type::kBulk) {
    if (r.type == RespReply::Type::kError) {
      err_ = r.str;
    }
    return std::nullopt;
  }
  return std::move(r.str);
}

bool Client::Del(const std::string& key) {
  RespReply r;
  return Roundtrip({"DEL", key}, &r) && r.type == RespReply::Type::kInteger &&
         r.integer == 1;
}

bool Client::Hset(const std::string& key, uint32_t field,
                  const std::string& value) {
  RespReply r;
  return Roundtrip({"HSET", key, std::to_string(field), value}, &r) &&
         r.type == RespReply::Type::kInteger && r.integer == 1;
}

bool Client::Touch(const std::string& key) {
  RespReply r;
  return Roundtrip({"TOUCH", key}, &r) && r.type == RespReply::Type::kInteger &&
         r.integer == 1;
}

bool Client::Mset(const std::vector<std::pair<std::string, std::string>>& pairs) {
  std::vector<std::string> args;
  args.reserve(1 + 2 * pairs.size());
  args.push_back("MSET");
  for (const auto& [k, v] : pairs) {
    args.push_back(k);
    args.push_back(v);
  }
  RespReply r;
  if (!Roundtrip(args, &r)) {
    return false;
  }
  if (r.type == RespReply::Type::kError) {
    err_ = r.str;
    return false;
  }
  return r.type == RespReply::Type::kSimple;
}

std::optional<uint64_t> Client::LastSeq(uint32_t shard) {
  RespReply r;
  if (!Roundtrip({"LASTSEQ", std::to_string(shard)}, &r)) {
    return std::nullopt;
  }
  if (r.type != RespReply::Type::kInteger) {
    if (r.type == RespReply::Type::kError) {
      err_ = r.str;
    }
    return std::nullopt;
  }
  return static_cast<uint64_t>(r.integer);
}

bool Client::MinSeq(uint32_t shard, uint64_t seq) {
  RespReply r;
  if (!Roundtrip({"MINSEQ", std::to_string(shard), std::to_string(seq)}, &r)) {
    return false;
  }
  if (r.type == RespReply::Type::kError) {
    err_ = r.str;
    return false;
  }
  return r.type == RespReply::Type::kSimple;
}

std::optional<std::string> Client::Stats() {
  RespReply r;
  if (!Roundtrip({"STATS"}, &r) || r.type != RespReply::Type::kBulk) {
    return std::nullopt;
  }
  return std::move(r.str);
}

bool Client::Multi() {
  RespReply r;
  if (!Roundtrip({"MULTI"}, &r)) {
    return false;
  }
  if (r.type == RespReply::Type::kError) {
    err_ = r.str;
    return false;
  }
  return r.type == RespReply::Type::kSimple;
}

bool Client::Exec(std::vector<RespReply>* replies) {
  replies->clear();
  RespReply r;
  if (!Roundtrip({"EXEC"}, &r)) {
    return false;
  }
  if (r.type != RespReply::Type::kArray) {
    if (r.type == RespReply::Type::kError) {
      err_ = r.str;
    } else {
      err_ = "unexpected EXEC reply type";
    }
    return false;
  }
  *replies = std::move(r.elements);
  return true;
}

bool Client::Discard() {
  RespReply r;
  if (!Roundtrip({"DISCARD"}, &r)) {
    return false;
  }
  if (r.type == RespReply::Type::kError) {
    err_ = r.str;
    return false;
  }
  return r.type == RespReply::Type::kSimple;
}

bool Client::Shutdown() {
  RespReply r;
  if (!Roundtrip({"SHUTDOWN"}, &r)) {
    return false;
  }
  if (r.type == RespReply::Type::kError) {
    err_ = r.str;
    return false;
  }
  return r.type == RespReply::Type::kSimple;
}

}  // namespace jnvm::server
