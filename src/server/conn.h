// Per-connection state for the server event loops (DESIGN.md §7).
//
// A connection is pinned to the event loop that accepted it for its whole
// life: the owning loop's index rides in the top bits of `id`, completions
// route back to that loop by id, and everything in this struct is
// therefore touched by exactly one thread — no locks here, by design.
//
// Commands are sequenced per connection in arrival order. Replies can be
// produced out of order — pipelined commands fan out to different shards
// whose batches complete independently — so each finished reply is staged
// in a reorder buffer and flushed to the socket only when every earlier
// command of the connection has replied. RESP clients rely on this: the
// k-th reply answers the k-th command.
//
// The write side is a chunked queue of two chunk kinds (DESIGN.md §7):
//   * owned chunks — a mutable tail that coalesces small RESP replies, so
//     ordinary request/reply traffic pays no per-reply chunk overhead;
//   * shared frames — refcounted immutable buffers
//     (std::shared_ptr<const std::string>) enqueued by reference. A sealed
//     replication batch is serialized once and every REPLSYNC subscriber
//     queues the same bytes: fan-out costs one pointer per subscriber, not
//     one memcpy of the batch.
// The flush path drains multiple chunks per syscall with writev(); a
// partial write leaves `out_off` mid-chunk and the next flush resumes
// there. Cap accounting (`max_conn_out_bytes`) counts *logical* pending
// bytes — a shared frame charges its full size to every subscriber holding
// it, so a slow subscriber is still evicted at the same backlog it would
// have reached with private copies.
#ifndef JNVM_SRC_SERVER_CONN_H_
#define JNVM_SRC_SERVER_CONN_H_

#include <sys/uio.h>

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <utility>

#include "src/server/protocol.h"
#include "src/server/shard.h"

namespace jnvm::server {

// A parsed request whose target shard queue was full when it was dispatched.
// The connection stops reading (backpressure) and the request waits here
// until the shard drains; arrival order within the connection is preserved.
struct StalledRequest {
  uint32_t shard = 0;
  Request req;
};

// One element of the chunked output queue. Exactly one representation is
// active: `shared` (immutable refcounted frame, fan-out by reference) or
// `own` (mutable buffer coalescing small replies).
struct OutChunk {
  std::shared_ptr<const std::string> shared;
  std::string own;

  const char* data() const { return shared != nullptr ? shared->data() : own.data(); }
  size_t size() const { return shared != nullptr ? shared->size() : own.size(); }
};

struct Conn {
  // Replies at or below this size coalesce into the mutable tail chunk;
  // larger ones are moved in wholesale as their own chunk (no byte copy).
  static constexpr size_t kCoalesceMax = 2048;
  // A tail chunk stops accepting appends past this size so one buffer never
  // grows without bound; the next reply starts a fresh chunk.
  static constexpr size_t kTailChunkMax = 256 * 1024;

  int fd = -1;
  uint64_t id = 0;
  RespParser parser;

  // Write side: the chunk queue. `out_off` is the consumed prefix of the
  // front chunk (partial-write resume point); `out_bytes` is the logical
  // pending total across all chunks.
  std::deque<OutChunk> outq;
  size_t out_off = 0;
  size_t out_bytes = 0;

  uint64_t next_seq = 0;      // sequence assigned to the next parsed command
  uint64_t next_to_send = 0;  // sequence whose reply goes out next
  std::map<uint64_t, std::string> replies;  // finished, waiting their turn

  uint64_t inflight = 0;  // submitted to shards, not yet completed
  bool closing = false;   // close once the queue drains and inflight == 0

  // Session consistency tokens (MINSEQ <shard> <seq>): per-shard floor a
  // read on this connection must observe. Monotone — MINSEQ only raises a
  // slot, so a session can never accidentally weaken its own contract.
  std::map<uint32_t, uint64_t> min_seq;

  uint64_t MinSeqFor(uint32_t shard) const {
    const auto it = min_seq.find(shard);
    return it == min_seq.end() ? 0 : it->second;
  }
  void RaiseMinSeq(uint32_t shard, uint64_t seq) {
    uint64_t& slot = min_seq[shard];
    if (seq > slot) {
      slot = seq;
    }
  }

  // Cluster plane (DESIGN.md §10): set by ASKING, consumed by the next
  // key command — a one-shot permit to serve a slot this node is still
  // *importing* (the table names the source until the handoff commits).
  bool asking = false;

  // MULTI/EXEC transaction queue (DESIGN.md §9). While `in_multi`, data
  // commands buffer here (replying +QUEUED) instead of dispatching; EXEC
  // turns the buffer into one atomic transaction, DISCARD drops it. A
  // queue-time error (bad arity, command outside the txn subset) marks the
  // txn dirty: EXEC then refuses with -TXNABORT rather than running a
  // half-valid batch.
  bool in_multi = false;
  bool txn_dirty = false;
  std::vector<std::vector<std::string>> txn_cmds;

  // Backpressure: parsed requests waiting for shard-queue space. While
  // non-empty the connection is read-paused (`paused`): the poller stops
  // watching readable and no further buffered commands are dispatched, so
  // per-connection memory stays bounded by what was already read.
  std::deque<StalledRequest> stalled;
  bool paused = false;

  // Set while this connection is on DrainCompletions' deferred-flush list:
  // completions landing in the same drain round coalesce into one writev.
  bool flush_pending = false;

  // Queues reply bytes: small strings coalesce into the mutable tail chunk,
  // large ones are adopted by move.
  void AppendOut(std::string&& s) {
    if (s.empty()) {
      return;
    }
    out_bytes += s.size();
    if (s.size() <= kCoalesceMax && !outq.empty() &&
        outq.back().shared == nullptr && outq.back().own.size() < kTailChunkMax) {
      outq.back().own += s;
      return;
    }
    OutChunk c;
    c.own = std::move(s);
    outq.push_back(std::move(c));
  }

  // Queues a shared immutable frame by reference (no byte copy). The frame
  // still charges its full size to this connection's logical backlog.
  void AppendFrame(std::shared_ptr<const std::string> frame) {
    if (frame == nullptr || frame->empty()) {
      return;
    }
    out_bytes += frame->size();
    OutChunk c;
    c.shared = std::move(frame);
    outq.push_back(std::move(c));
  }

  // Stages the reply for `seq`, then moves every consecutive ready reply
  // into the output queue. Returns true when new bytes became writable.
  bool Complete(uint64_t seq, std::string&& reply) {
    replies.emplace(seq, std::move(reply));
    bool advanced = false;
    auto it = replies.find(next_to_send);
    while (it != replies.end()) {
      AppendOut(std::move(it->second));  // staged string moves, never copies
      replies.erase(it);
      ++next_to_send;
      advanced = true;
      it = replies.find(next_to_send);
    }
    return advanced;
  }

  bool WantsWrite() const { return out_bytes > 0; }

  // Logical pending bytes (cap accounting): shared frames count at full
  // size per subscriber even though the bytes exist once.
  size_t pending_out_bytes() const { return out_bytes; }

  // Fills up to `max` iovecs from the pending chunks, starting at the
  // front chunk's resume offset. Returns the count filled.
  size_t BuildIovecs(struct iovec* iov, size_t max) const {
    size_t n = 0;
    size_t off = out_off;
    for (const OutChunk& c : outq) {
      if (n == max) {
        break;
      }
      iov[n].iov_base = const_cast<char*>(c.data() + off);
      iov[n].iov_len = c.size() - off;
      ++n;
      off = 0;
    }
    return n;
  }

  // Consumes `n` accepted bytes: pops fully written chunks (releasing
  // owned memory / shared refs) and leaves `out_off` mid-chunk on a
  // partial write so the next flush resumes exactly there.
  void ConsumeOut(size_t n) {
    out_bytes -= n;
    while (n > 0) {
      OutChunk& front = outq.front();
      const size_t left = front.size() - out_off;
      if (n < left) {
        out_off += n;
        return;
      }
      n -= left;
      out_off = 0;
      outq.pop_front();
    }
  }
};

}  // namespace jnvm::server

#endif  // JNVM_SRC_SERVER_CONN_H_
