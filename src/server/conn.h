// Per-connection state for the server event loop (DESIGN.md §7).
//
// Commands are sequenced per connection in arrival order. Replies can be
// produced out of order — pipelined commands fan out to different shards
// whose batches complete independently — so each finished reply is staged
// in a reorder buffer and flushed to the socket only when every earlier
// command of the connection has replied. RESP clients rely on this: the
// k-th reply answers the k-th command.
#ifndef JNVM_SRC_SERVER_CONN_H_
#define JNVM_SRC_SERVER_CONN_H_

#include <cstdint>
#include <deque>
#include <map>
#include <string>

#include "src/server/protocol.h"
#include "src/server/shard.h"

namespace jnvm::server {

// A parsed request whose target shard queue was full when it was dispatched.
// The connection stops reading (backpressure) and the request waits here
// until the shard drains; arrival order within the connection is preserved.
struct StalledRequest {
  uint32_t shard = 0;
  Request req;
};

struct Conn {
  int fd = -1;
  uint64_t id = 0;
  RespParser parser;

  // Write side: bytes not yet accepted by the socket.
  std::string out;
  size_t out_off = 0;

  uint64_t next_seq = 0;      // sequence assigned to the next parsed command
  uint64_t next_to_send = 0;  // sequence whose reply goes out next
  std::map<uint64_t, std::string> replies;  // finished, waiting their turn

  uint64_t inflight = 0;  // submitted to shards, not yet completed
  bool closing = false;   // close once `out` drains and inflight == 0

  // Backpressure: parsed requests waiting for shard-queue space. While
  // non-empty the connection is read-paused (`paused`): the poller stops
  // watching readable and no further buffered commands are dispatched, so
  // per-connection memory stays bounded by what was already read.
  std::deque<StalledRequest> stalled;
  bool paused = false;

  // Stages the reply for `seq`, then moves every consecutive ready reply
  // into the output buffer. Returns true when new bytes became writable.
  bool Complete(uint64_t seq, std::string&& reply) {
    replies.emplace(seq, std::move(reply));
    bool advanced = false;
    auto it = replies.find(next_to_send);
    while (it != replies.end()) {
      out += it->second;
      replies.erase(it);
      ++next_to_send;
      advanced = true;
      it = replies.find(next_to_send);
    }
    return advanced;
  }

  bool WantsWrite() const { return out_off < out.size(); }

  void CompactOut() {
    if (out_off == out.size()) {
      out.clear();
      out_off = 0;
    } else if (out_off > 65536 && out_off * 2 > out.size()) {
      out.erase(0, out_off);
      out_off = 0;
    }
  }
};

}  // namespace jnvm::server

#endif  // JNVM_SRC_SERVER_CONN_H_
