#include "src/server/shard.h"

#include <filesystem>

#include "src/common/check.h"
#include "src/core/integrity.h"
#include "src/pdt/register_all.h"
#include "src/server/protocol.h"
#include "src/store/jpdt_backend.h"
#include "src/store/jpfa_backend.h"
#include "src/store/jpfa_map.h"
#include "src/store/precord.h"

namespace jnvm::server {

namespace {

// Root-map name for the shard's store — must be stable across restarts so
// recovery finds the map again.
constexpr char kRootName[] = "server.store";

nvm::DeviceOptions DeviceOptionsFor(const ShardOptions& opts) {
  nvm::DeviceOptions d;
  d.size_bytes = opts.device_bytes;
  if (opts.optane_latency) {
    // Same Optane-like asymmetry as bench/bench_util.h OptaneLike().
    d.read_delay_ns = 80;
    d.write_delay_ns = 60;
    d.pwb_delay_ns = 10;
    d.fence_delay_ns = 150;
  }
  if (opts.fence_ns != 0) {
    d.fence_delay_ns = opts.fence_ns;
  }
  return d;
}

std::string ImagePathFor(const ShardOptions& opts, uint32_t index) {
  if (opts.image_base.empty()) {
    return {};
  }
  return opts.image_base + ".shard" + std::to_string(index) + ".img";
}

}  // namespace

std::unique_ptr<Shard> Shard::Open(const ShardOptions& opts, uint32_t index,
                                   CompletionSink* sink) {
  JNVM_CHECK(sink != nullptr);
  JNVM_CHECK(opts.backend == "jpdt" || opts.backend == "jpfa");
  auto s = std::unique_ptr<Shard>(new Shard());
  s->index_ = index;
  s->opts_ = opts;
  s->sink_ = sink;

  // Recovery resurrects objects by persisted class name: every class that
  // can live on a shard heap must be registered before Open().
  pdt::RegisterStandardClasses();
  store::PRecord::Class();
  store::JpfaEntry::Class();
  store::JpfaHashMap::Class();

  const std::string image = ImagePathFor(opts, index);
  const nvm::DeviceOptions dopts = DeviceOptionsFor(opts);
  if (!image.empty() && std::filesystem::exists(image)) {
    s->dev_ = nvm::PmemDevice::LoadFrom(image, dopts);
    JNVM_CHECK(s->dev_ != nullptr);  // existing image must be readable
    s->rt_ = core::JnvmRuntime::Open(s->dev_.get());  // runs recovery
    s->recovered_ = true;
  } else {
    s->dev_ = std::make_unique<nvm::PmemDevice>(dopts);
    s->rt_ = core::JnvmRuntime::Format(s->dev_.get());
  }

  if (opts.backend == "jpdt") {
    s->backend_ = std::make_unique<store::JpdtBackend>(s->rt_.get(), kRootName,
                                                       opts.map_capacity);
  } else {
    s->backend_ = std::make_unique<store::JpfaBackend>(s->rt_.get(), kRootName,
                                                       opts.map_capacity);
  }
  store::StoreOptions sopts;
  sopts.cache_ratio = 0.0;  // J-NVM backends run uncached (§5.3.1)
  sopts.expected_records = opts.map_capacity;
  s->kv_ = std::make_unique<store::KvStore>(s->backend_.get(), nullptr, sopts);

  s->worker_ = std::thread(&Shard::WorkerLoop, s.get());
  return s;
}

Shard::~Shard() { Quiesce(); }

bool Shard::Submit(Request&& req) {
  std::unique_lock<std::mutex> lk(mu_);
  not_full_.wait(lk,
                 [&] { return stopping_ || queue_.size() < opts_.queue_capacity; });
  if (stopping_) {
    return false;
  }
  queue_.push_back(std::move(req));
  lk.unlock();
  not_empty_.notify_one();
  return true;
}

bool Shard::Execute(const Request& req, std::string* reply) {
  switch (req.op) {
    case Request::Op::kSet: {
      store::Record r;
      r.fields.push_back(req.value);
      kv_->Put(req.key, r);
      if (req.multi == nullptr) {
        AppendSimple(reply, "OK");
      }
      return true;
    }
    case Request::Op::kGet: {
      store::Record r;
      if (!kv_->Read(req.key, &r)) {
        AppendNil(reply);
        return false;
      }
      if (r.fields.size() == 1) {
        AppendBulk(reply, r.fields[0]);
      } else {
        std::string joined;
        for (const std::string& f : r.fields) {
          joined += f;
        }
        AppendBulk(reply, joined);
      }
      return false;
    }
    case Request::Op::kDel: {
      const bool removed = kv_->Delete(req.key);
      AppendInteger(reply, removed ? 1 : 0);
      return removed;
    }
    case Request::Op::kHset: {
      const bool ok = kv_->Update(req.key, req.field, req.value);
      AppendInteger(reply, ok ? 1 : 0);
      return ok;
    }
    case Request::Op::kTouch: {
      AppendInteger(reply, kv_->ReadTouch(req.key) ? 1 : 0);
      return false;
    }
  }
  AppendError(reply, "internal: unknown op");
  return false;
}

void Shard::DeliverBatch(std::vector<Request>& batch,
                         std::vector<std::string>& replies) {
  // Runs after the batch's durability point: replies may now leave the
  // machine. Multi-op parts are counted down here — post-Psync — so the
  // joined +OK implies every part is durable on its own shard.
  for (size_t i = 0; i < batch.size(); ++i) {
    Request& req = batch[i];
    if (req.multi != nullptr) {
      if (req.multi->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        Completion c;
        c.conn_id = req.multi->conn_id;
        c.seq = req.multi->seq;
        AppendSimple(&c.reply, "OK");
        sink_->OnCompletion(std::move(c));
      }
      continue;
    }
    Completion c;
    c.conn_id = req.conn_id;
    c.seq = req.seq;
    c.reply = std::move(replies[i]);
    sink_->OnCompletion(std::move(c));
  }
}

void Shard::WorkerLoop() {
  std::vector<Request> batch;
  std::vector<std::string> replies;
  const uint32_t max_batch = opts_.batch == 0 ? 1 : opts_.batch;
  for (;;) {
    batch.clear();
    replies.clear();
    {
      std::unique_lock<std::mutex> lk(mu_);
      not_empty_.wait(lk, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stopping and drained
      }
      const size_t take = std::min<size_t>(max_batch, queue_.size());
      for (size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }
    not_full_.notify_all();

    bool wrote = false;
    const bool group = max_batch > 1;
    if (group) {
      rt_->heap().BeginGroupCommit();
    }
    for (const Request& req : batch) {
      std::string reply;
      wrote |= Execute(req, &reply);
      replies.push_back(std::move(reply));
    }
    if (group) {
      rt_->heap().EndGroupCommit();
      if (wrote) {
        rt_->Psync();  // one durability point for the whole group
      }
      // Reclaim structures orphaned by this batch's replaces/deletes — only
      // now that their unlinks are durable.
      rt_->DrainGroupFrees();
    }
    // batch == 1: every op kept its own trailing durability fence; no
    // group Psync needed (ablation baseline).
    batches_.fetch_add(1, std::memory_order_relaxed);
    uint64_t prev = max_batch_.load(std::memory_order_relaxed);
    while (batch.size() > prev &&
           !max_batch_.compare_exchange_weak(prev, batch.size(),
                                             std::memory_order_relaxed)) {
    }
    DeliverBatch(batch, replies);
  }
}

ShardStats Shard::Stats() const {
  ShardStats s;
  {
    std::lock_guard<std::mutex> lk(mu_);
    s.queue_depth = queue_.size();
  }
  s.batches = batches_.load(std::memory_order_relaxed);
  s.max_batch = max_batch_.load(std::memory_order_relaxed);
  s.elided_fences = rt_->heap().elided_fences();
  s.records = backend_->Size();
  s.ops = backend_->stats();
  s.cache = kv_->cache_stats();
  s.device = dev_->stats();
  return s;
}

ShardReport Shard::Quiesce() {
  std::lock_guard<std::mutex> qlk(quiesce_mu_);
  if (quiesced_) {
    return report_;
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    stopping_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
  if (worker_.joinable()) {
    worker_.join();
  }

  rt_->Psync();
  // The heap is quiescent (worker joined, intake closed): audit everything,
  // including the failure-atomic log directory (I7).
  core::IntegrityOptions iopts;
  iopts.audit_fa_logs = true;
  const core::IntegrityReport ir = core::VerifyHeapIntegrity(*rt_, iopts);
  report_.integrity_ok = ir.ok();
  report_.violations = ir.violations;
  report_.records = backend_->Size();
  report_.elided_fences = rt_->heap().elided_fences();
  report_.psyncs = dev_->stats().psyncs;
  rt_->Close();

  const std::string image = ImagePathFor(opts_, index_);
  if (!image.empty()) {
    report_.image_saved = dev_->SaveTo(image);
    report_.image_path = image;
  }
  quiesced_ = true;
  return report_;
}

}  // namespace jnvm::server
