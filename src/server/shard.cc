#include "src/server/shard.h"

#include <algorithm>
#include <filesystem>
#include <unordered_set>

#include "src/common/check.h"
#include "src/common/clock.h"
#include "src/core/integrity.h"
#include "src/pdt/register_all.h"
#include "src/server/protocol.h"
#include "src/store/jpdt_backend.h"
#include "src/store/jpfa_backend.h"
#include "src/store/jpfa_map.h"
#include "src/store/precord.h"

namespace jnvm::server {

namespace {

// Root-map names — must be stable across restarts so recovery finds the
// store and the replication log again.
constexpr char kRootName[] = "server.store";
constexpr char kReplRootName[] = "server.repl";
constexpr char kCkptRootName[] = "server.ckpt";

nvm::DeviceOptions DeviceOptionsFor(const ShardOptions& opts) {
  nvm::DeviceOptions d;
  d.size_bytes = opts.device_bytes;
  if (opts.optane_latency) {
    // Same Optane-like asymmetry as bench/bench_util.h OptaneLike().
    d.read_delay_ns = 80;
    d.write_delay_ns = 60;
    d.pwb_delay_ns = 10;
    d.fence_delay_ns = 150;
  }
  if (opts.fence_ns != 0) {
    d.fence_delay_ns = opts.fence_ns;
  }
  return d;
}

std::string ImagePathFor(const ShardOptions& opts, uint32_t index) {
  if (opts.image_base.empty()) {
    return {};
  }
  return opts.image_base + ".shard" + std::to_string(index) + ".img";
}

std::string DaxPathFor(const ShardOptions& opts, uint32_t index) {
  if (opts.dax_base.empty()) {
    return {};
  }
  return opts.dax_base + ".shard" + std::to_string(index) + ".pmem";
}

bool IsControl(Request::Op op) {
  return op == Request::Op::kReplSync || op == Request::Op::kReplSnap ||
         op == Request::Op::kSnapInstall || op == Request::Op::kPromote ||
         op == Request::Op::kLastSeq || op == Request::Op::kSlotSnap ||
         op == Request::Op::kSlotTail || op == Request::Op::kSlotPurge ||
         op == Request::Op::kCkpt || op == Request::Op::kReplDiff ||
         op == Request::Op::kLogDigests;
}

// Batch composition classes: requests in one batch must share a class.
// Control ops and txn boundary ops (decide / apply / repair — their records
// carry a kTxnCommit op, and no non-txn op may trail a kTxnCommit in a
// record, or live execution order and replay order would diverge) run as
// singleton batches. kTxnExec groups with itself — a run of single-shard
// txns shares one record and one Psync, keeping the group-commit fast path
// — and kApply groups with itself under the apply cap. kTxnPrepare and
// kTxnAbortMark ride in normal batches: staging and dropping touch no store
// state, so their position relative to plain ops is immaterial.
enum class BatchClass : uint8_t { kNormal, kApplyRun, kTxnExecRun, kSingleton };

BatchClass ClassOf(Request::Op op) {
  if (IsControl(op) || op == Request::Op::kTxnDecide ||
      op == Request::Op::kTxnApply || op == Request::Op::kTxnRepair) {
    return BatchClass::kSingleton;
  }
  if (op == Request::Op::kApply) {
    return BatchClass::kApplyRun;
  }
  if (op == Request::Op::kTxnExec) {
    return BatchClass::kTxnExecRun;
  }
  return BatchClass::kNormal;
}

// A shipped record carrying txn ops must form its own apply batch on the
// follower: its staged applies run post-seal of *its* Psync, before any
// later record's plain ops execute — same order as the primary.
bool ApplyRecordHasTxnOps(const Request& req) {
  uint64_t seq = 0;
  std::string_view bf;
  return repl::DecodeRecord(req.value, &seq, &bf) && repl::BatchHasTxnOps(bf);
}

constexpr char kReadonlyMsg[] = "READONLY replica - write rejected";

uint64_t NowMs() { return NowNs() / 1000000ull; }

}  // namespace

std::unique_ptr<Shard> Shard::Open(const ShardOptions& opts, uint32_t index,
                                   CompletionSink* sink) {
  JNVM_CHECK(sink != nullptr);
  JNVM_CHECK(opts.backend == "jpdt" || opts.backend == "jpfa");
  JNVM_CHECK_MSG(!opts.follower || opts.repl_log,
                 "follower shards need the replication log");
  JNVM_CHECK_MSG(opts.wait_acks == 0 || opts.repl_log,
                 "--wait-acks needs the replication log");
  JNVM_CHECK_MSG(opts.wait_acks == 0 || opts.wait_max_parked > 0,
                 "wait_max_parked must be positive");
  auto s = std::unique_ptr<Shard>(new Shard());
  s->index_ = index;
  s->opts_ = opts;
  s->sink_ = sink;
  s->follower_.store(opts.follower, std::memory_order_release);

  // Recovery resurrects objects by persisted class name: every class that
  // can live on a shard heap must be registered before Open().
  pdt::RegisterStandardClasses();
  store::PRecord::Class();
  store::JpfaEntry::Class();
  store::JpfaHashMap::Class();
  repl::ReplLogRoot::Class();
  repl::ReplLogSegment::Class();
  ckpt::CkptMeta::Class();

  const std::string dax = DaxPathFor(opts, index);
  const std::string image = ImagePathFor(opts, index);
  const nvm::DeviceOptions dopts = DeviceOptionsFor(opts);
  if (!dax.empty()) {
    // Cluster fleet mode: the device is the mmap'd file itself — a crashed
    // process (kill -9) leaves its state in the page cache, and the next
    // Open() recovers from it exactly like a restart from an image.
    bool existed = false;
    std::string map_err;
    s->dev_ = nvm::PmemDevice::MapFile(dax, dopts, &existed, &map_err);
    JNVM_CHECK_MSG(s->dev_ != nullptr, "cannot map shard dax file");
    if (existed) {
      s->rt_ = core::JnvmRuntime::Open(s->dev_.get());  // runs recovery
      s->recovered_ = true;
    } else {
      s->rt_ = core::JnvmRuntime::Format(s->dev_.get());
    }
  } else if (!image.empty() && std::filesystem::exists(image)) {
    s->dev_ = nvm::PmemDevice::LoadFrom(image, dopts);
    JNVM_CHECK(s->dev_ != nullptr);  // existing image must be readable
    s->rt_ = core::JnvmRuntime::Open(s->dev_.get());  // runs recovery
    s->recovered_ = true;
  } else {
    s->dev_ = std::make_unique<nvm::PmemDevice>(dopts);
    s->rt_ = core::JnvmRuntime::Format(s->dev_.get());
  }

  if (opts.backend == "jpdt") {
    s->backend_ = std::make_unique<store::JpdtBackend>(s->rt_.get(), kRootName,
                                                       opts.map_capacity);
  } else {
    s->backend_ = std::make_unique<store::JpfaBackend>(s->rt_.get(), kRootName,
                                                       opts.map_capacity);
  }
  store::StoreOptions sopts;
  sopts.cache_ratio = 0.0;  // J-NVM backends run uncached (§5.3.1)
  sopts.expected_records = opts.map_capacity;
  s->kv_ = std::make_unique<store::KvStore>(s->backend_.get(), nullptr, sopts);

  if (opts.repl_log) {
    repl::ReplLogOptions lopts;
    lopts.segment_bytes = opts.repl_segment_bytes;
    lopts.max_segments = opts.repl_max_segments;
    s->log_ = repl::ReplLog::OpenOrCreate(s->rt_.get(), kReplRootName, lopts);
    if (!opts.follower && s->log_->needs_snapshot()) {
      // A crash interrupted a snapshot install and the shard now (re)starts
      // as a primary: the store image is authoritative, so open a fresh log
      // epoch. Replicas whose sequence numbers no longer line up fall back
      // to REPLSNAP bootstrap.
      s->log_->FinishInstall(1);
      s->rt_->Psync();
    }
    // Checkpoint meta (DESIGN.md §11): the durable LSN pair bounding replay.
    if (s->rt_->root().Exists(kCkptRootName)) {
      s->ckpt_meta_ = s->rt_->root().GetAs<ckpt::CkptMeta>(kCkptRootName);
      JNVM_CHECK(s->ckpt_meta_ != nullptr);
    } else {
      s->ckpt_meta_ = std::make_shared<ckpt::CkptMeta>(*s->rt_);
      s->rt_->root().Put(kCkptRootName, s->ckpt_meta_.get());
    }
    s->ckpt_count_.store(s->ckpt_meta_->Count(), std::memory_order_relaxed);
    s->ckpt_begin_.store(s->ckpt_meta_->BeginSeq(), std::memory_order_relaxed);
    s->ckpt_end_.store(s->ckpt_meta_->EndSeq(), std::memory_order_relaxed);
    s->ckpt_walked_keys_.store(s->ckpt_meta_->WalkedKeys(),
                               std::memory_order_relaxed);
    s->ckpt_walked_bytes_.store(s->ckpt_meta_->WalkedBytes(),
                                std::memory_order_relaxed);

    // Rebuild txn state from the retained log (DESIGN.md §9): prepares
    // stage, decisions index, markers and aborts resolve. Records before
    // the replay point have fully-applied store effects; the replay range
    // is then redone against this state so a marker re-applies its staged
    // writes idempotently.
    //
    // Without a checkpoint only the tail record's effects can be incomplete
    // (replay point = next-1, the pre-checkpoint behaviour). A durable
    // checkpoint widens the range to [ckpt_begin, next) — clamped into the
    // retained log, so a stale pair (older epoch, or behind a ring-full
    // truncation) degrades to a broader idempotent replay, never a gap.
    txn::LogScanResult scan;
    uint64_t replay_from = 0;
    if (!s->log_->needs_snapshot() && !s->log_->empty()) {
      replay_from = s->log_->next_seq() - 1;
      if (s->ckpt_meta_->Count() > 0) {
        replay_from =
            std::min(std::max(s->ckpt_meta_->BeginSeq(), s->log_->start_seq()),
                     s->log_->next_seq());
      }
      txn::ScanLogForTxns(*s->log_, replay_from, &scan);
    }
    if (s->recovered_) {
      s->RedoLogTail(replay_from, &scan);
    }
    for (auto& [id, t] : scan.staged) {
      s->staged_txns_.Stage(id, std::move(t));
    }
    for (auto& [id, sd] : scan.decisions) {
      s->txn_decisions_.Add(id, sd.first, std::move(sd.second));
    }
    s->PublishReplStats();
  }

  // Per-slot accounting starts from the recovered store; every later
  // mutation adjusts it incrementally on the worker thread.
  s->RebuildSlotCounts();

  s->worker_ = std::thread(&Shard::WorkerLoop, s.get());
  return s;
}

Shard::~Shard() { Quiesce(); }

// Redo replay (recovery): a crash can leave the last log record sealed
// while the store's mutations for that batch are per-key old-or-new
// (eviction decides per line). Re-applying records from `replay_from` — the
// ops are idempotent state-setters — converges the store onto the
// sealed-batch boundary, so the log and the store agree before the shard
// serves traffic. Without a checkpoint the range is just the tail record;
// with one it is [ckpt_begin, next) — every record below ckpt_begin had
// durably-applied effects when the checkpoint finalized (DESIGN.md §11).
// `scan` holds the txn state reconstructed from the records before the
// range: a replayed commit marker re-applies its staged writes through the
// same transition the live post-seal path took.
void Shard::RedoLogTail(uint64_t replay_from, txn::LogScanResult* scan) {
  if (log_ == nullptr || log_->needs_snapshot() || log_->empty()) {
    return;
  }
  const uint64_t next = log_->next_seq();
  uint64_t replayed = 0;
  std::string payload;
  for (uint64_t seq = replay_from; seq < next; ++seq) {
    if (!log_->Read(seq, &payload)) {
      continue;  // below retention (stale checkpoint pair); be defensive
    }
    std::vector<repl::ReplOp> ops;
    if (!repl::DecodeBatch(payload, &ops)) {
      continue;  // cannot happen for a checksummed record; be defensive
    }
    txn::ReplayRecordOps(rt_.get(), kv_.get(), ops, scan);
    // The replay stages this record's prepares with seq 0; resolution
    // planning wants the real seq the prepare sealed under.
    for (auto& [id, t] : scan->staged) {
      if (t.prepare_seq == 0) {
        t.prepare_seq = seq;
      }
    }
    ++replayed;
  }
  // STATS `ckpt` line: the CI bootstrap job asserts recovery replayed a
  // tail, not the whole log, once a checkpoint bounds it.
  ckpt_replayed_.store(replayed, std::memory_order_relaxed);
  if (replayed > 0) {
    rt_->Psync();
  }
}

bool Shard::Submit(Request&& req) {
  std::unique_lock<std::mutex> lk(mu_);
  not_full_.wait(lk,
                 [&] { return stopping_ || queue_.size() < opts_.queue_capacity; });
  if (stopping_) {
    return false;
  }
  queue_.push_back(std::move(req));
  lk.unlock();
  not_empty_.notify_one();
  return true;
}

Shard::SubmitResult Shard::TrySubmit(Request&& req) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (stopping_) {
      return SubmitResult::kStopped;
    }
    if (queue_.size() >= opts_.queue_capacity) {
      return SubmitResult::kFull;  // req untouched: caller stalls and retries
    }
    queue_.push_back(std::move(req));
  }
  not_empty_.notify_one();
  return SubmitResult::kOk;
}

void Shard::Unsubscribe(uint64_t conn_id) {
  {
    std::lock_guard<std::mutex> lk(subs_mu_);
    for (auto it = subs_.begin(); it != subs_.end();) {
      it = it->conn_id == conn_id ? subs_.erase(it) : it + 1;
    }
    RecomputeSyncedLocked();
  }
  // Losing a subscriber can only lower the watermark: parked batches that
  // now lack their quorum stay parked and fall out via the timeout path.
}

// Caller holds subs_mu_. With K = wait_acks, the shard-wide synced seq is
// the K-th highest subscriber watermark: every record <= it is durable on
// at least K replicas. Fewer than K subscribers → nothing is synced.
void Shard::RecomputeSyncedLocked() {
  const uint32_t k = opts_.wait_acks;
  if (k == 0) {
    return;
  }
  uint64_t synced = 0;
  if (subs_.size() >= k) {
    std::vector<uint64_t> marks;
    marks.reserve(subs_.size());
    for (const Subscriber& s : subs_) {
      marks.push_back(s.acked_seq);
    }
    std::nth_element(marks.begin(), marks.begin() + (k - 1), marks.end(),
                     std::greater<uint64_t>());
    synced = marks[k - 1];
  }
  synced_seq_.store(synced, std::memory_order_release);
}

void Shard::Ack(uint64_t conn_id, uint64_t seq) {
  {
    std::lock_guard<std::mutex> lk(subs_mu_);
    bool known = false;
    for (Subscriber& s : subs_) {
      if (s.conn_id == conn_id) {
        known = true;
        if (seq > s.acked_seq) {
          s.acked_seq = seq;
        }
      }
    }
    if (!known) {
      return;  // ack raced the unsubscribe; watermark unchanged
    }
    RecomputeSyncedLocked();
  }
  ReleaseParked(NowMs(), /*force=*/false);
}

void Shard::TickWait(uint64_t now_ms) {
  if (parked_count_.load(std::memory_order_acquire) == 0) {
    return;
  }
  ReleaseParked(now_ms, /*force=*/false);
}

void Shard::SetSealHook(std::function<void(uint64_t)> hook) {
  std::lock_guard<std::mutex> lk(hook_mu_);
  seal_hook_ = std::move(hook);
}

void Shard::NotifySealHook(uint64_t sealed_seq) {
  std::lock_guard<std::mutex> lk(hook_mu_);
  if (seal_hook_) {
    seal_hook_(sealed_seq);
  }
}

bool Shard::Execute(const Request& req, std::string* reply,
                    std::vector<repl::ReplOp>* rops) {
  switch (req.op) {
    case Request::Op::kSet: {
      if (follower()) {
        if (req.multi != nullptr) {
          req.multi->Fail(kReadonlyMsg);
        } else {
          AppendErrorCode(reply, kReadonlyMsg);
        }
        return false;
      }
      // MIGRATING slot: a key this node no longer holds belongs to the
      // destination — redirect instead of resurrecting it here (the copy
      // cursor may already be past its slot).
      if (!req.ask_addr.empty() && !kv_->ReadTouch(req.key)) {
        ask_replies_.fetch_add(1, std::memory_order_relaxed);
        if (req.multi != nullptr) {
          req.multi->Fail("ASK " + req.ask_addr);
        } else {
          AppendErrorCode(reply, "ASK " + req.ask_addr);
        }
        return false;
      }
      store::Record r;
      r.fields.push_back(req.value);
      if (kv_->Put(req.key, r)) {
        SlotDelta(req.key, +1);
      }
      if (log_ != nullptr) {
        repl::ReplOp op;
        op.kind = repl::ReplOp::Kind::kPut;
        op.key = req.key;
        op.record = std::move(r);
        rops->push_back(std::move(op));
      }
      if (req.multi == nullptr) {
        AppendSimple(reply, "OK");
      }
      return true;
    }
    case Request::Op::kGet: {
      store::Record r;
      if (!kv_->Read(req.key, &r)) {
        if (!req.ask_addr.empty()) {
          ask_replies_.fetch_add(1, std::memory_order_relaxed);
          AppendErrorCode(reply, "ASK " + req.ask_addr);
          return false;
        }
        AppendNil(reply);
        return false;
      }
      if (r.fields.size() == 1) {
        AppendBulk(reply, r.fields[0]);
      } else {
        std::string joined;
        for (const std::string& f : r.fields) {
          joined += f;
        }
        AppendBulk(reply, joined);
      }
      return false;
    }
    case Request::Op::kDel: {
      if (follower()) {
        AppendErrorCode(reply, kReadonlyMsg);
        return false;
      }
      const bool removed = kv_->Delete(req.key);
      if (!removed && !req.ask_addr.empty()) {
        ask_replies_.fetch_add(1, std::memory_order_relaxed);
        AppendErrorCode(reply, "ASK " + req.ask_addr);
        return false;
      }
      if (removed) {
        SlotDelta(req.key, -1);
      }
      AppendInteger(reply, removed ? 1 : 0);
      if (removed && log_ != nullptr) {
        repl::ReplOp op;
        op.kind = repl::ReplOp::Kind::kDel;
        op.key = req.key;
        rops->push_back(std::move(op));
      }
      return removed;
    }
    case Request::Op::kHset: {
      if (follower()) {
        AppendErrorCode(reply, kReadonlyMsg);
        return false;
      }
      const bool ok = kv_->Update(req.key, req.field, req.value);
      if (!ok && !req.ask_addr.empty()) {
        ask_replies_.fetch_add(1, std::memory_order_relaxed);
        AppendErrorCode(reply, "ASK " + req.ask_addr);
        return false;
      }
      AppendInteger(reply, ok ? 1 : 0);
      if (ok && log_ != nullptr) {
        repl::ReplOp op;
        op.kind = repl::ReplOp::Kind::kUpdate;
        op.key = req.key;
        op.field = req.field;
        op.value = req.value;
        rops->push_back(std::move(op));
      }
      return ok;
    }
    case Request::Op::kTouch: {
      const bool present = kv_->ReadTouch(req.key);
      if (!present && !req.ask_addr.empty()) {
        ask_replies_.fetch_add(1, std::memory_order_relaxed);
        AppendErrorCode(reply, "ASK " + req.ask_addr);
        return false;
      }
      AppendInteger(reply, present ? 1 : 0);
      return false;
    }
    case Request::Op::kApply:
      return ExecuteApply(req);
    case Request::Op::kTxnExec:
      return ExecuteTxnExec(req, rops);
    case Request::Op::kTxnPrepare:
      return ExecuteTxnPrepare(req, rops);
    case Request::Op::kTxnDecide:
      return ExecuteTxnDecide(req, rops);
    case Request::Op::kTxnApply:
      return ExecuteTxnApply(req, rops);
    case Request::Op::kTxnAbortMark:
      return ExecuteTxnAbortMark(req, rops);
    case Request::Op::kTxnRepair:
      return ExecuteTxnRepair(req, rops);
    case Request::Op::kReplSync:
      ExecuteReplSync(req, reply);
      return false;
    case Request::Op::kReplSnap:
      ExecuteReplSnap(reply);
      return false;
    case Request::Op::kSnapInstall: {
      std::string error;
      const bool ok = ExecuteSnapInstall(req, &error);
      // Waiter payload, not RESP: '-' marks failure (see DeliverBatch).
      *reply = ok ? std::string() : "-" + error;
      return ok;
    }
    case Request::Op::kSlotSnap:
      ExecuteSlotSnap(req, reply);
      return false;
    case Request::Op::kSlotTail:
      ExecuteSlotTail(req, reply);
      return false;
    case Request::Op::kSlotPurge:
      return ExecuteSlotPurge(req, reply, rops);
    case Request::Op::kMigApply:
      return ExecuteMigApply(req, reply, rops);
    case Request::Op::kCkpt:
      return ExecuteCkpt(req, reply);
    case Request::Op::kReplDiff:
      ExecuteReplDiff(req, reply);
      return false;
    case Request::Op::kLogDigests:
      ExecuteLogDigests(reply);
      return false;
    case Request::Op::kPromote:
      ExecutePromote(req, reply);
      return false;
    case Request::Op::kLastSeq: {
      // Singleton control batch: every write the connection pipelined ahead
      // of this command is already sealed, so next-1 covers them all — the
      // client lib turns this into its session min-seq token.
      if (log_ == nullptr) {
        AppendError(reply, "replication log disabled");
      } else {
        AppendInteger(reply, static_cast<int64_t>(log_->next_seq() - 1));
      }
      return false;
    }
  }
  AppendError(reply, "internal: unknown op");
  return false;
}

// Applies one shipped record: store mutations through the apply path, then
// the record is appended to the *local* log under the primary's sequence
// number — the mirrored log is what makes promotion, restart resync and
// chained replication work. Duplicates (stale frames after a resync) and
// gaps are dropped; the batch Psync seals apply + append together.
bool Shard::ExecuteApply(const Request& req) {
  if (log_ == nullptr || log_->needs_snapshot()) {
    return false;
  }
  uint64_t seq = 0;
  std::string_view bf;
  if (!repl::DecodeRecord(req.value, &seq, &bf)) {
    return false;
  }
  if (seq != log_->next_seq()) {
    return false;  // duplicate (< next) or gap (> next): wait for resync
  }
  std::vector<repl::ReplOp> ops;
  if (!repl::DecodeBatch(bf, &ops)) {
    return false;
  }
  for (const repl::ReplOp& op : ops) {
    switch (op.kind) {
      case repl::ReplOp::Kind::kPut:
        if (kv_->ApplyPut(op.key, op.record)) {
          SlotDelta(op.key, +1);
        }
        break;
      case repl::ReplOp::Kind::kDel:
        if (kv_->ApplyDelete(op.key)) {
          SlotDelta(op.key, -1);
        }
        break;
      case repl::ReplOp::Kind::kUpdate:
        kv_->ApplyUpdate(op.key, op.field, op.value);
        break;
      // Txn ops mirror the primary's discipline: stage at execute, apply
      // post-seal — a record carrying them runs as its own apply batch
      // (ApplyRecordHasTxnOps), so the staged writes become visible after
      // exactly this record's Psync, never interleaved with later records.
      case repl::ReplOp::Kind::kTxnPrepare: {
        txn::TxnId id = 0;
        if (!txn::ParseTxnIdKey(op.key, &id)) {
          break;
        }
        txn::StagedTxn st;
        st.coordinator = op.field;
        st.prepare_seq = seq;
        std::vector<repl::ReplOp> writes;
        if (repl::DecodeBatch(op.value, &writes)) {
          st.writes = std::move(writes);
        }
        staged_txns_.Stage(id, std::move(st));
        txns_prepared_.fetch_add(1, std::memory_order_relaxed);
        break;
      }
      case repl::ReplOp::Kind::kTxnCommit: {
        txn::TxnId id = 0;
        if (!txn::ParseTxnIdKey(op.key, &id)) {
          break;
        }
        if (!op.value.empty()) {
          txn::Decision d;
          if (txn::DecodeDecision(op.value, &d)) {
            txn_decisions_.Add(id, seq, std::move(d));
            txn_decisions_.PruneBelow(log_->start_seq());
            txn_decision_records_.fetch_add(1, std::memory_order_relaxed);
          }
        }
        post_seal_txns_.push_back(id);
        break;
      }
      case repl::ReplOp::Kind::kTxnAbort: {
        txn::TxnId id = 0;
        if (txn::ParseTxnIdKey(op.key, &id) && staged_txns_.Drop(id)) {
          txns_aborted_.fetch_add(1, std::memory_order_relaxed);
        }
        break;
      }
    }
  }
  log_->Append(seq, bf);
  applied_batches_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

// ---- Transaction plane (DESIGN.md §9) ---------------------------------------
//
// All six handlers obey one discipline: txn writes never mutate the store at
// execute time. They stage in staged_txns_ and the record that justifies the
// apply (commit marker or decision) queues the id in post_seal_txns_; the
// actual mutation runs in ApplyPostSealTxns, after the batch's Psync sealed
// that record. A crash before the seal leaves the store untouched — the txn
// is still cleanly abortable — and a crash after it is redone from the log.

void Shard::RunTxnOps(txn::TxnPart& part,
                      const std::shared_ptr<txn::TxnState>& t,
                      std::vector<repl::ReplOp>* writes) {
  std::lock_guard<std::mutex> lk(t->mu);
  for (const txn::TxnOp& op : part.ops) {
    std::string* reply = &t->replies[op.reply_index];
    // The latest staged write to the same key wins a read or an existence
    // probe (txn read-your-writes); the store itself is pre-txn state.
    const repl::ReplOp* staged = nullptr;
    for (const repl::ReplOp& w : *writes) {
      if (w.key == op.key) {
        staged = &w;
      }
    }
    switch (op.kind) {
      case txn::TxnOp::Kind::kSet: {
        repl::ReplOp w;
        w.kind = repl::ReplOp::Kind::kPut;
        w.key = op.key;
        w.record.fields.push_back(op.value);
        writes->push_back(std::move(w));
        AppendSimple(reply, "OK");
        break;
      }
      case txn::TxnOp::Kind::kGet: {
        std::string joined;
        if (staged != nullptr) {
          if (staged->kind == repl::ReplOp::Kind::kDel) {
            AppendNil(reply);
            break;
          }
          for (const std::string& f : staged->record.fields) {
            joined += f;
          }
          AppendBulk(reply, joined);
          break;
        }
        store::Record r;
        if (!kv_->Read(op.key, &r)) {
          AppendNil(reply);
          break;
        }
        for (const std::string& f : r.fields) {
          joined += f;
        }
        AppendBulk(reply, joined);
        break;
      }
      case txn::TxnOp::Kind::kDel: {
        bool present = false;
        if (staged != nullptr) {
          present = staged->kind != repl::ReplOp::Kind::kDel;
        } else {
          store::Record r;
          present = kv_->Read(op.key, &r);
        }
        AppendInteger(reply, present ? 1 : 0);
        if (present) {
          repl::ReplOp w;
          w.kind = repl::ReplOp::Kind::kDel;
          w.key = op.key;
          writes->push_back(std::move(w));
        }
        break;
      }
    }
  }
}

// Single-shard fast path: one record carries both the prepare image and the
// commit marker, so the txn costs the same one sealed record and one Psync
// as a plain batch — and a run of kTxnExec requests shares both.
bool Shard::ExecuteTxnExec(const Request& req, std::vector<repl::ReplOp>* rops) {
  const std::shared_ptr<txn::TxnState>& t = req.txn;
  txn::TxnPart& part = t->parts[req.txn_part];
  if (follower()) {
    t->Fail(kReadonlyMsg);
    return false;
  }
  if (log_ == nullptr) {
    t->Fail("replication log disabled - transactions unavailable");
    return false;
  }
  std::vector<repl::ReplOp> writes;
  RunTxnOps(part, t, &writes);
  if (writes.empty()) {
    part.has_writes = false;
    return false;  // read-only txn: nothing to seal or apply
  }
  part.has_writes = true;
  repl::EncodeBatch(writes, &part.writes_frame);
  part.prepare_seq = log_->next_seq();
  txn::StagedTxn st;
  st.coordinator = t->coordinator;
  st.prepare_seq = part.prepare_seq;
  st.writes = std::move(writes);
  staged_txns_.Stage(t->id, std::move(st));
  txns_prepared_.fetch_add(1, std::memory_order_relaxed);
  repl::ReplOp prep;
  prep.kind = repl::ReplOp::Kind::kTxnPrepare;
  prep.key = txn::TxnIdKey(t->id);
  prep.field = t->coordinator;
  prep.value = part.writes_frame;
  rops->push_back(std::move(prep));
  repl::ReplOp marker;
  marker.kind = repl::ReplOp::Kind::kTxnCommit;
  marker.key = txn::TxnIdKey(t->id);
  rops->push_back(std::move(marker));
  post_seal_txns_.push_back(t->id);
  return true;
}

// Cross-shard phase 1: run this part's ops, stage its writes, seal a
// kTxnPrepare record carrying them. Read-only participants join the phase
// without a record — they never enter the decision's membership.
bool Shard::ExecuteTxnPrepare(const Request& req,
                              std::vector<repl::ReplOp>* rops) {
  const std::shared_ptr<txn::TxnState>& t = req.txn;
  txn::TxnPart& part = t->parts[req.txn_part];
  if (follower()) {
    t->Fail(kReadonlyMsg);
    return false;
  }
  if (log_ == nullptr) {
    t->Fail("replication log disabled - transactions unavailable");
    return false;
  }
  std::vector<repl::ReplOp> writes;
  RunTxnOps(part, t, &writes);
  if (writes.empty()) {
    part.has_writes = false;
    return false;
  }
  part.has_writes = true;
  repl::EncodeBatch(writes, &part.writes_frame);
  part.prepare_seq = log_->next_seq();
  txn::StagedTxn st;
  st.coordinator = t->coordinator;
  st.prepare_seq = part.prepare_seq;
  st.writes = std::move(writes);
  staged_txns_.Stage(t->id, std::move(st));
  txns_prepared_.fetch_add(1, std::memory_order_relaxed);
  repl::ReplOp prep;
  prep.kind = repl::ReplOp::Kind::kTxnPrepare;
  prep.key = txn::TxnIdKey(t->id);
  prep.field = t->coordinator;
  prep.value = part.writes_frame;
  rops->push_back(std::move(prep));
  return true;
}

// Cross-shard phase 2, coordinator only: seal the decision record — THE
// durability point of the txn. req.value carries the encoded txn::Decision
// built by the event loop from the prepare phase's results. The decision
// doubles as this shard's own commit marker, so a coordinator that is also
// a write participant applies its staged writes post-seal of this record.
bool Shard::ExecuteTxnDecide(const Request& req,
                             std::vector<repl::ReplOp>* rops) {
  const std::shared_ptr<txn::TxnState>& t = req.txn;
  txn::Decision d;
  if (txn::DecodeDecision(req.value, &d)) {
    txn_decisions_.Add(t->id, log_->next_seq(), std::move(d));
    txn_decisions_.PruneBelow(log_->start_seq());
  }
  txn_decision_records_.fetch_add(1, std::memory_order_relaxed);
  repl::ReplOp op;
  op.kind = repl::ReplOp::Kind::kTxnCommit;
  op.key = txn::TxnIdKey(t->id);
  op.value = req.value;
  rops->push_back(std::move(op));
  post_seal_txns_.push_back(t->id);
  return true;
}

// Cross-shard phase 3 (and recovery resolution): seal a commit marker for a
// staged txn, apply post-seal. Idempotent — a marker for a txn no longer
// staged (already resolved) seals nothing.
bool Shard::ExecuteTxnApply(const Request& req,
                            std::vector<repl::ReplOp>* rops) {
  txn::TxnId id = 0;
  if (!txn::ParseTxnIdKey(req.key, &id) || !staged_txns_.Has(id)) {
    return false;
  }
  repl::ReplOp op;
  op.kind = repl::ReplOp::Kind::kTxnCommit;
  op.key = req.key;
  rops->push_back(std::move(op));
  post_seal_txns_.push_back(id);
  return true;
}

// Abort: drop the staged writes and seal an explicit kTxnAbort marker, so
// the log records the resolution (recovery and replicas drop it the same
// way) — never a silent partial apply.
bool Shard::ExecuteTxnAbortMark(const Request& req,
                                std::vector<repl::ReplOp>* rops) {
  txn::TxnId id = 0;
  if (!txn::ParseTxnIdKey(req.key, &id) || !staged_txns_.Drop(id)) {
    return false;  // never prepared here, or already resolved: no record
  }
  txns_aborted_.fetch_add(1, std::memory_order_relaxed);
  repl::ReplOp op;
  op.kind = repl::ReplOp::Kind::kTxnAbort;
  op.key = req.key;
  rops->push_back(std::move(op));
  return true;
}

// Promote repair: the sealed decision proves this shard was a write
// participant, but its log never received the prepare (gapless log, next
// seq <= the decision's prepare seq). Stage the writes from the decision
// record itself (req.value) and commit them in one [prepare|marker] record.
bool Shard::ExecuteTxnRepair(const Request& req,
                             std::vector<repl::ReplOp>* rops) {
  txn::TxnId id = 0;
  if (!txn::ParseTxnIdKey(req.key, &id)) {
    return false;
  }
  if (!staged_txns_.Has(id)) {
    std::vector<repl::ReplOp> writes;
    if (!repl::DecodeBatch(req.value, &writes)) {
      return false;
    }
    txn::StagedTxn st;
    st.coordinator = req.field;
    st.prepare_seq = log_->next_seq();
    st.writes = std::move(writes);
    staged_txns_.Stage(id, std::move(st));
    txns_prepared_.fetch_add(1, std::memory_order_relaxed);
    repl::ReplOp prep;
    prep.kind = repl::ReplOp::Kind::kTxnPrepare;
    prep.key = req.key;
    prep.field = req.field;
    prep.value = req.value;
    rops->push_back(std::move(prep));
  }
  repl::ReplOp marker;
  marker.kind = repl::ReplOp::Kind::kTxnCommit;
  marker.key = req.key;
  rops->push_back(std::move(marker));
  post_seal_txns_.push_back(id);
  return true;
}

// Worker thread, directly after the batch's Psync: every record justifying
// these applies is sealed. The staged writes run through the store's apply
// path inside a fresh group-commit window (J-PFA failure-atomic blocks
// inside, see txn::ApplyStagedWrites), then a Psync orders them before any
// later record can seal — preserving the redo-tail invariant that only the
// tail record's store effects may be incomplete after a crash.
void Shard::ApplyPostSealTxns() {
  if (post_seal_txns_.empty()) {
    return;
  }
  rt_->heap().BeginGroupCommit();
  for (const txn::TxnId id : post_seal_txns_) {
    txn::StagedTxn t;
    if (!staged_txns_.Take(id, &t)) {
      continue;  // marker for an already-resolved txn (idempotent)
    }
    txn::ApplyStagedWrites(rt_.get(), kv_.get(), t.writes,
                           [this](const repl::ReplOp& op, bool changed) {
                             if (changed) {
                               const int d =
                                   op.kind == repl::ReplOp::Kind::kDel ? -1 : 1;
                               SlotDelta(op.key, d);
                             }
                           });
    txns_committed_.fetch_add(1, std::memory_order_relaxed);
  }
  rt_->heap().EndGroupCommit();
  rt_->Psync();
  rt_->DrainGroupFrees();
  post_seal_txns_.clear();
}

// The last part of a txn phase to deliver — post-Psync, and post-WAIT-K
// when configured — posts one completion carrying the txn; the event loop
// advances the phase state machine.
void Shard::TxnJoin(const std::shared_ptr<txn::TxnState>& t) {
  if (t->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    Completion c;
    c.conn_id = t->conn_id;
    c.seq = t->reply_seq;
    c.txn = t;
    sink_->OnCompletion(std::move(c));
  }
}

txn::ShardTxnView Shard::TxnView() const {
  txn::ShardTxnView v;
  v.undecided = staged_txns_.Undecided();
  v.decisions = &txn_decisions_;
  v.log_next_seq = sealed_seq_.load(std::memory_order_acquire) + 1;
  return v;
}

// REPLSYNC <shard> <from>: replies +SYNC <from> followed by one bulk per
// retained record in [from, next), then registers the connection as a
// stream subscriber — all within one singleton control batch, so there is
// no gap and no overlap between the backlog and the live stream.
void Shard::ExecuteReplSync(const Request& req, std::string* reply) {
  if (log_ == nullptr) {
    AppendError(reply, "replication log disabled");
    return;
  }
  const uint64_t from = req.repl_seq;
  if (log_->needs_snapshot() || from < log_->start_seq()) {
    AppendErrorCode(reply,
                    "SNAPSHOT replication log truncated; REPLSNAP required");
    return;
  }
  if (from > log_->next_seq()) {
    AppendError(reply, "REPLSYNC from-seq ahead of log");
    return;
  }
  AppendSimple(reply, "SYNC " + std::to_string(from));
  std::string payload;
  std::string frame;
  for (uint64_t seq = from; seq < log_->next_seq(); ++seq) {
    JNVM_CHECK(log_->Read(seq, &payload));
    repl::EncodeRecord(seq, payload, &frame);
    AppendBulk(reply, frame);
    catchup_records_.fetch_add(1, std::memory_order_relaxed);
    catchup_bytes_.fetch_add(frame.size(), std::memory_order_relaxed);
  }
  if (req.conn_id != 0) {
    {
      std::lock_guard<std::mutex> lk(subs_mu_);
      // REPLSYNC from=X is an implicit watermark: the replica's own log is
      // durable through X-1, or it would have asked for an earlier seq.
      subs_.push_back(Subscriber{req.conn_id, from == 0 ? 0 : from - 1});
      RecomputeSyncedLocked();
    }
    // A resynced replica can already hold parked batches' records: its
    // subscription alone may complete the quorum.
    ReleaseParked(NowMs(), /*force=*/false);
  }
}

void Shard::ExecuteReplSnap(std::string* reply) {
  if (log_ == nullptr) {
    AppendError(reply, "replication log disabled");
    return;
  }
  // Chained shipping rule: a feeder only ever ships sealed-and-applied
  // state. Mid-bootstrap (crashed between a snapshot install's fences, or
  // never bootstrapped) the store is not a sealed prefix of anything —
  // refuse with an explicit -RETRYLATER, and the downstream backs off and
  // retries once this shard has caught up (counted in STATS `ckpt`).
  if (log_->needs_snapshot()) {
    ckpt_retry_later_.fetch_add(1, std::memory_order_relaxed);
    AppendErrorCode(reply, "RETRYLATER shard is mid-bootstrap; retry");
    return;
  }
  std::vector<repl::SnapshotEntry> entries;
  const bool ok = backend_->SnapshotRecords(
      [&](const std::string& key, const store::Record& r) {
        entries.push_back({key, r});
      });
  if (!ok) {
    AppendError(reply, "backend does not support snapshots");
    return;
  }
  // Singleton control batch: every applied batch is sealed, so next-1 is
  // the exact boundary the image represents.
  const uint64_t snap_seq = log_->next_seq() - 1;
  std::string frame;
  repl::EncodeSnapshot(snap_seq, entries, &frame);
  snap_bytes_.fetch_add(frame.size(), std::memory_order_relaxed);
  AppendBulk(reply, frame);
}

// Installs a bootstrap snapshot: the log's pending marker brackets the
// store overwrite (see ReplLog::BeginInstall), extraneous keys are dropped,
// every snapshot record is applied, and the log resets to snap_seq + 1.
bool Shard::ExecuteSnapInstall(const Request& req, std::string* error) {
  if (log_ == nullptr) {
    *error = "replication log disabled";
    return false;
  }
  uint64_t snap_seq = 0;
  std::vector<repl::SnapshotEntry> entries;
  if (!repl::DecodeSnapshot(req.value, &snap_seq, &entries)) {
    *error = "bad snapshot frame";
    return false;
  }
  log_->BeginInstall();
  std::unordered_set<std::string> keep;
  keep.reserve(entries.size());
  for (const repl::SnapshotEntry& e : entries) {
    keep.insert(e.key);
  }
  std::vector<std::string> drop;
  backend_->SnapshotRecords([&](const std::string& key, const store::Record&) {
    if (keep.find(key) == keep.end()) {
      drop.push_back(key);
    }
  });
  for (const std::string& key : drop) {
    kv_->ApplyDelete(key);
  }
  for (const repl::SnapshotEntry& e : entries) {
    kv_->ApplyPut(e.key, e.record);
  }
  log_->FinishInstall(snap_seq + 1);
  // The installed image IS a checkpoint at snap_seq: publish the pair so a
  // crash after this batch's Psync recovers with a tight replay bound. (A
  // crash before it leaves the old pair; recovery clamps a stale begin into
  // the reset log's range, so no misdirected replay either way.)
  ckpt_meta_->Publish(snap_seq + 1, snap_seq, 0, 0);
  ckpt_count_.store(ckpt_meta_->Count(), std::memory_order_relaxed);
  ckpt_begin_.store(snap_seq + 1, std::memory_order_relaxed);
  ckpt_end_.store(snap_seq, std::memory_order_relaxed);
  RebuildSlotCounts();  // the store was wholesale-replaced
  return true;
}

// ---- Checkpoint plane (DESIGN.md §11) ----------------------------------------

// One kCkpt control batch: field 0 walks one slot chunk (fuzzy — client
// batches interleave between chunks), field 1 finalizes. Waiter payloads:
// '+…' success, '-…' failure.
bool Shard::ExecuteCkpt(const Request& req, std::string* reply) {
  if (log_ == nullptr) {
    *reply = "-ERR replication log disabled";
    return false;
  }
  if (log_->needs_snapshot()) {
    *reply = "-RETRYLATER shard is mid-bootstrap; retry";
    return false;
  }
  if (req.field == 0) {
    // Walk chunk. Under the J-NVM heap the store IS the checkpoint image —
    // every batch Psync already made its effects durable in place — so the
    // walk copies nothing: it enumerates the in-range records through the
    // snapshot cursor (read-back validation) and accounts keys/bytes.
    if (req.slot_lo == 0) {
      ckpt_walk_keys_ = 0;
      ckpt_walk_bytes_ = 0;
    }
    uint64_t keys = 0;
    uint64_t bytes = 0;
    const bool ok = backend_->SnapshotRecords(
        [&](const std::string& key, const store::Record& r) {
          const uint16_t s = cluster::SlotForKey(key);
          if (s >= req.slot_lo && s <= req.slot_hi) {
            ++keys;
            bytes += key.size();
            for (const std::string& f : r.fields) {
              bytes += f.size();
            }
          }
        });
    if (!ok) {
      *reply = "-ERR backend does not support snapshots";
      return false;
    }
    ckpt_walk_keys_ += keys;
    ckpt_walk_bytes_ += bytes;
    *reply = "+";
    return false;
  }
  // Finalize — the checkpoint's durability point. The sequence (and why a
  // crash at any prefix of it is safe) is documented in ckpt_meta.h:
  //   Psync → meta Publish → Pfence → TruncateBelow(begin).
  // Singleton control batch: every sealed record's store effects were
  // applied at execute time (plain ops) or post-seal with their own Psync
  // (staged txns), so the Psync here makes the whole prefix durable.
  rt_->Psync();
  // An undecided txn's prepare record must outlive the checkpoint: its
  // staged writes materialize only at the (future) decision, so truncating
  // the prepare would lose them on a crash. Clamp the pair below the oldest
  // staged prepare — replay from there re-stages it idempotently.
  const uint64_t begin =
      std::min(log_->next_seq(), staged_txns_.MinPrepareSeq());
  ckpt_meta_->Publish(begin, begin - 1, ckpt_walk_keys_, ckpt_walk_bytes_);
  rt_->Pfence();
  const uint32_t reclaimed = log_->TruncateBelow(begin);
  ckpt_count_.store(ckpt_meta_->Count(), std::memory_order_relaxed);
  ckpt_begin_.store(begin, std::memory_order_relaxed);
  ckpt_end_.store(begin - 1, std::memory_order_relaxed);
  ckpt_walked_keys_.store(ckpt_walk_keys_, std::memory_order_relaxed);
  ckpt_walked_bytes_.store(ckpt_walk_bytes_, std::memory_order_relaxed);
  ckpt_truncated_segs_.fetch_add(reclaimed, std::memory_order_relaxed);
  *reply = "+begin=" + std::to_string(begin) +
           " end=" + std::to_string(begin - 1) +
           " truncated=" + std::to_string(reclaimed);
  // True: the meta published and segments may have unlinked — the batch
  // Psync must run before DrainGroupFrees releases them.
  return true;
}

// Segment-diff rejoin, primary side (REPLDIFF <shard> <from> <digests>):
// verify every digest the follower advertises against this log's retained
// records, then — all verified — behave exactly like REPLSYNC: +SYNC, the
// backlog from `from`, and a live subscription. Digests below this log's
// retention are skipped (their records' effects are inside the checkpointed
// image and REPLSYNC's from-seq contract never verified them either); a
// digest past next_seq or one that mismatches is genuine divergence —
// -DIFFBASE, only REPLSNAP can reconcile.
void Shard::ExecuteReplDiff(const Request& req, std::string* reply) {
  if (log_ == nullptr) {
    AppendError(reply, "replication log disabled");
    return;
  }
  if (log_->needs_snapshot()) {
    ckpt_retry_later_.fetch_add(1, std::memory_order_relaxed);
    AppendErrorCode(reply, "RETRYLATER shard is mid-bootstrap; retry");
    return;
  }
  if (req.repl_seq < log_->start_seq()) {
    AppendErrorCode(reply,
                    "SNAPSHOT replication log truncated; REPLSNAP required");
    return;
  }
  if (req.repl_seq > log_->next_seq()) {
    AppendError(reply, "REPLDIFF from-seq ahead of log");
    return;
  }
  std::vector<repl::SegDigest> digests;
  if (!repl::DecodeSegDigests(req.value, &digests)) {
    AppendError(reply, "bad digest frame");
    return;
  }
  for (const repl::SegDigest& d : digests) {
    if (d.records == 0 || d.base_seq < log_->start_seq()) {
      continue;  // fully or partially below retention: unverifiable here
    }
    if (d.base_seq + d.records > log_->next_seq() || !log_->VerifyDigest(d)) {
      AppendErrorCode(reply,
                      "DIFFBASE segment digest mismatch; REPLSNAP required");
      return;
    }
  }
  ExecuteReplSync(req, reply);
}

// Follower side of the handshake: the log is worker-thread-only, so the
// ReplClient fetches its own digests through a control batch.
void Shard::ExecuteLogDigests(std::string* reply) {
  if (log_ == nullptr || log_->needs_snapshot()) {
    *reply = "-ERR no usable replication log";
    return;
  }
  std::string frame;
  repl::EncodeSegDigests(log_->SegmentDigests(), &frame);
  reply->clear();
  reply->push_back('+');
  reply->append(frame);
}

// ---- Cluster plane: slot cursors and import applies --------------------------
//
// The three cursor ops run as singleton control batches submitted by the
// migrator thread with a ReplWaiter: the queue ahead of them has drained, so
// the store and the log are a sealed, mutually consistent prefix when the
// cursor reads them. Waiter payloads are raw bytes, not RESP: '+…' carries
// the frame, '-…' a failure.

// Copy phase: every live key whose slot falls in [slot_lo, slot_hi], plus
// the log seq the image represents — the tail cursor resumes from there.
void Shard::ExecuteSlotSnap(const Request& req, std::string* reply) {
  if (log_ == nullptr || log_->needs_snapshot()) {
    *reply = "-ERR slot snapshot needs a sealed replication log";
    return;
  }
  // A staged-but-undecided txn can commit writes into the range *behind*
  // the cursor (post-seal applies re-run old prepare records): refuse until
  // the staged table drains, so every in-range effect is either in this
  // image or in a log record at a seq the tail cursor will scan.
  if (staged_txns_.Size() > 0) {
    *reply = "-TRYAGAIN staged transactions in flight";
    return;
  }
  std::vector<repl::SnapshotEntry> entries;
  const bool ok = backend_->SnapshotRecords(
      [&](const std::string& key, const store::Record& r) {
        const uint16_t s = cluster::SlotForKey(key);
        if (s >= req.slot_lo && s <= req.slot_hi) {
          entries.push_back({key, r});
        }
      });
  if (!ok) {
    *reply = "-ERR backend does not support snapshots";
    return;
  }
  const uint64_t snap_seq = log_->next_seq() - 1;
  std::string frame;
  repl::EncodeSnapshot(snap_seq, entries, &frame);
  reply->clear();
  reply->push_back('+');
  reply->append(frame);
}

// Catch-up phase: logical ops for the migrating range replayed from the
// replication log. Scans up to kSlotTailMaxRecords records from req.repl_seq
// and returns "+<u64 next-cursor><u8 caught_up><batch frame>"; the migrator
// loops until the cursor passes its barrier seq. A prepare record whose
// nested writes touch the range is refused with -TXNTAIL: its store effects
// materialize only at the (later) decision record, so the migrator must
// wait the txn out and re-snapshot rather than miss the writes.
void Shard::ExecuteSlotTail(const Request& req, std::string* reply) {
  constexpr size_t kSlotTailMaxRecords = 256;
  if (log_ == nullptr || log_->needs_snapshot()) {
    *reply = "-ERR slot tail needs a sealed replication log";
    return;
  }
  uint64_t seq = req.repl_seq;
  if (seq < log_->start_seq()) {
    *reply = "-TAILTRUNC replication log truncated below the cursor";
    return;
  }
  const uint64_t next = log_->next_seq();
  std::vector<repl::ReplOp> kept;
  std::string payload;
  for (size_t scanned = 0; seq < next && scanned < kSlotTailMaxRecords;
       ++seq, ++scanned) {
    if (!log_->Read(seq, &payload)) {
      *reply = "-TAILTRUNC record " + std::to_string(seq) + " unavailable";
      return;
    }
    std::vector<repl::ReplOp> ops;
    if (!repl::DecodeBatch(payload, &ops)) {
      continue;  // cannot happen for a checksummed record; be defensive
    }
    for (repl::ReplOp& op : ops) {
      switch (op.kind) {
        case repl::ReplOp::Kind::kPut:
        case repl::ReplOp::Kind::kDel:
        case repl::ReplOp::Kind::kUpdate: {
          const uint16_t s = cluster::SlotForKey(op.key);
          if (s >= req.slot_lo && s <= req.slot_hi) {
            kept.push_back(std::move(op));
          }
          break;
        }
        case repl::ReplOp::Kind::kTxnPrepare: {
          std::vector<repl::ReplOp> writes;
          if (repl::DecodeBatch(op.value, &writes)) {
            for (const repl::ReplOp& w : writes) {
              const uint16_t s = cluster::SlotForKey(w.key);
              if (s >= req.slot_lo && s <= req.slot_hi) {
                *reply =
                    "-TXNTAIL transaction writes into the migrating range; "
                    "re-snapshot after it resolves";
                return;
              }
            }
          }
          break;
        }
        default:
          // Commit / abort markers: their store effects always trace back
          // to a prepare record this scan either saw (and refused) or
          // proved range-free — skipping them loses nothing.
          break;
      }
    }
  }
  std::string bf;
  repl::EncodeBatch(kept, &bf);
  reply->clear();
  reply->push_back('+');
  for (int i = 0; i < 8; ++i) {
    reply->push_back(static_cast<char>((seq >> (8 * i)) & 0xff));
  }
  reply->push_back(seq >= next ? 1 : 0);
  reply->append(bf);
}

// Destination-side import reset: drop every key already in the range so a
// re-driven migration (crash on either side) starts from a clean import —
// never a duplicate. The deletes are logged like any other write, so this
// node's own replicas purge too.
bool Shard::ExecuteSlotPurge(const Request& req, std::string* reply,
                             std::vector<repl::ReplOp>* rops) {
  if (follower()) {
    if (req.multi != nullptr) {
      req.multi->Fail(kReadonlyMsg);
    } else {
      *reply = std::string("-") + kReadonlyMsg;
    }
    return false;
  }
  std::vector<std::string> victims;
  backend_->SnapshotRecords([&](const std::string& key, const store::Record&) {
    const uint16_t s = cluster::SlotForKey(key);
    if (s >= req.slot_lo && s <= req.slot_hi) {
      victims.push_back(key);
    }
  });
  for (const std::string& key : victims) {
    if (!kv_->Delete(key)) {
      continue;
    }
    SlotDelta(key, -1);
    if (log_ != nullptr) {
      repl::ReplOp op;
      op.kind = repl::ReplOp::Kind::kDel;
      op.key = key;
      rops->push_back(std::move(op));
    }
  }
  if (req.multi == nullptr) {
    *reply = "+PURGED " + std::to_string(victims.size());
  }
  return !victims.empty();
}

// Destination-side import: ops shipped by the source (snapshot entries as
// kPut, tail replays verbatim) applied through the idempotent apply path —
// a re-driven handoff re-ships the same ops harmlessly. Re-logged locally:
// the import is replicated downstream like native writes.
bool Shard::ExecuteMigApply(const Request& req, std::string* reply,
                            std::vector<repl::ReplOp>* rops) {
  if (follower()) {
    if (req.multi != nullptr) {
      req.multi->Fail(kReadonlyMsg);
    } else {
      AppendErrorCode(reply, kReadonlyMsg);
    }
    return false;
  }
  bool wrote = false;
  for (const repl::ReplOp& op : req.mig_ops) {
    switch (op.kind) {
      case repl::ReplOp::Kind::kPut:
        if (kv_->ApplyPut(op.key, op.record)) {
          SlotDelta(op.key, +1);
        }
        wrote = true;
        break;
      case repl::ReplOp::Kind::kDel:
        if (kv_->ApplyDelete(op.key)) {
          SlotDelta(op.key, -1);
        }
        wrote = true;
        break;
      case repl::ReplOp::Kind::kUpdate:
        kv_->ApplyUpdate(op.key, op.field, op.value);
        wrote = true;
        break;
      default:
        break;  // txn markers never ship through MIGAPPLY
    }
  }
  mig_applied_ops_.fetch_add(req.mig_ops.size(), std::memory_order_relaxed);
  if (log_ != nullptr && wrote) {
    for (const repl::ReplOp& op : req.mig_ops) {
      if (op.kind == repl::ReplOp::Kind::kPut ||
          op.kind == repl::ReplOp::Kind::kDel ||
          op.kind == repl::ReplOp::Kind::kUpdate) {
        rops->push_back(op);
      }
    }
  }
  if (req.multi == nullptr && req.conn_id != 0) {
    AppendSimple(reply, "OK");
  }
  return wrote;
}

// ---- Per-slot accounting ------------------------------------------------------

void Shard::SlotDelta(std::string_view key, int d) {
  const uint16_t s = cluster::SlotForKey(key);
  std::lock_guard<std::mutex> lk(slot_mu_);
  if (slot_keys_.empty()) {
    slot_keys_.assign(cluster::kNumSlots, 0);
  }
  if (d >= 0) {
    slot_keys_[s] += static_cast<uint32_t>(d);
  } else if (slot_keys_[s] >= static_cast<uint32_t>(-d)) {
    slot_keys_[s] -= static_cast<uint32_t>(-d);
  }
}

void Shard::RebuildSlotCounts() {
  std::vector<uint32_t> fresh(cluster::kNumSlots, 0);
  backend_->SnapshotRecords([&](const std::string& key, const store::Record&) {
    fresh[cluster::SlotForKey(key)]++;
  });
  std::lock_guard<std::mutex> lk(slot_mu_);
  slot_keys_ = std::move(fresh);
}

uint64_t Shard::KeysInSlotRange(uint32_t lo, uint32_t hi) const {
  std::lock_guard<std::mutex> lk(slot_mu_);
  if (slot_keys_.empty()) {
    return 0;
  }
  uint64_t n = 0;
  for (uint32_t s = lo; s <= hi && s < cluster::kNumSlots; ++s) {
    n += slot_keys_[s];
  }
  return n;
}

// PROMOTE phase 1: the queue ahead of this op has drained (singleton
// control batch), so the heap is quiescent. Seal outstanding state and run
// the full I1–I7 audit (with FA-log quiescence). The shard does NOT flip
// writable here: the multi-op join — which sees every shard's verdict —
// flips all shards or none (MultiOp::promote_shards), so a failed audit on
// one shard never leaves the fleet half-writable.
void Shard::ExecutePromote(const Request& req, std::string* reply) {
  rt_->Psync();
  core::IntegrityOptions iopts;
  iopts.audit_fa_logs = true;
  core::IntegrityReport ir = core::VerifyHeapIntegrity(*rt_, iopts);
  if (opts_.fail_promote_audit_shard == static_cast<int32_t>(index_)) {
    ir.violations.insert(ir.violations.begin(), "injected audit failure");
  }
  if (!ir.ok()) {
    std::string msg = "ERR promote audit failed on shard " +
                      std::to_string(index_) + ": " + ir.violations.front();
    if (req.multi != nullptr) {
      req.multi->Fail(msg);
    } else {
      AppendErrorCode(reply, msg);
    }
    return;
  }
  if (req.multi == nullptr) {
    // Direct single-shard promotion (tests): audit and flip are one step.
    MakeWritable();
    AppendSimple(reply, "OK");
  }
}

void Shard::DeliverBatch(std::vector<Request>& batch,
                         std::vector<std::string>& replies) {
  // Runs after the batch's durability point: replies may now leave the
  // machine. Multi-op parts are counted down here — post-Psync — so the
  // joined +OK implies every part is durable on its own shard.
  for (size_t i = 0; i < batch.size(); ++i) {
    Request& req = batch[i];
    if (req.txn != nullptr) {
      TxnJoin(req.txn);
      continue;
    }
    if (req.waiter != nullptr) {
      // Waiter payloads are not RESP: empty or '+…' signals success (the
      // slot cursors return binary frames through the '+' arm), '-…' is a
      // failure message.
      const bool ok = replies[i].empty() || replies[i][0] != '-';
      req.waiter->Signal(ok, std::move(replies[i]));
      continue;
    }
    if (req.multi != nullptr) {
      if (req.multi->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        Completion c;
        c.conn_id = req.multi->conn_id;
        c.seq = req.multi->seq;
        if (req.multi->failures.load(std::memory_order_acquire) > 0) {
          std::lock_guard<std::mutex> lk(req.multi->err_mu);
          AppendErrorCode(&c.reply, req.multi->error);
        } else {
          // PROMOTE phase 2: every shard's audit passed — flip the whole
          // fleet writable at once (all-or-nothing).
          for (Shard* sh : req.multi->promote_shards) {
            sh->MakeWritable();
          }
          AppendSimple(&c.reply, req.multi->ok_reply.empty()
                                     ? "OK"
                                     : req.multi->ok_reply);
        }
        sink_->OnCompletion(std::move(c));
      }
      continue;
    }
    if (req.conn_id == 0) {
      continue;  // internal request (ReplClient): no completion
    }
    Completion c;
    c.conn_id = req.conn_id;
    c.seq = req.seq;
    c.reply = std::move(replies[i]);
    sink_->OnCompletion(std::move(c));
  }
}

// ---- WAIT-K parking ---------------------------------------------------------
//
// Lifecycle of a parked batch: sealed by its Psync on the worker → parked
// (replies withheld, worker moves on to the next batch) → released by the
// event loop when the K-th subscriber acks its last_seq (success) or its
// deadline passes (degraded: write replies become -WAITTIMEOUT). Release is
// strictly front-first: subscriber watermarks and deadlines are both
// monotone in seq, so if the front batch is neither acked nor expired, no
// later batch can be.

void Shard::ParkBatch(uint64_t last_seq, std::vector<Request>& batch,
                      std::vector<std::string>& replies,
                      std::vector<uint8_t>& wrote) {
  ParkedBatch p;
  p.last_seq = last_seq;
  p.deadline_ms = NowMs() + opts_.wait_timeout_ms;
  p.reqs = std::move(batch);
  p.replies = std::move(replies);
  p.wrote = std::move(wrote);
  std::unique_lock<std::mutex> lk(park_mu_);
  // Ack that landed between the Psync and here: deliver without parking.
  // Reading synced_seq_ under park_mu_ closes the race — an ack completing
  // before we acquired the lock is visible; one completing after will find
  // the parked entry in its release scan.
  if (synced_seq_.load(std::memory_order_acquire) >= last_seq) {
    lk.unlock();
    DeliverParked(std::move(p), /*timed_out=*/false);
    return;
  }
  // Bounded pipeline: block the worker once too many batches are in flight.
  // No deadlock — releases come from the event-loop thread (acks, ticks),
  // which never waits on this worker; Quiesce raises stop_parking_ before
  // joining so a blocked worker always gets out.
  park_cv_.wait(lk, [&] {
    return stop_parking_.load(std::memory_order_acquire) ||
           parked_.size() < opts_.wait_max_parked;
  });
  if (stop_parking_.load(std::memory_order_acquire)) {
    lk.unlock();
    DeliverParked(std::move(p), /*timed_out=*/true);
    return;
  }
  parked_.push_back(std::move(p));
  parked_count_.store(parked_.size(), std::memory_order_release);
}

void Shard::ReleaseParked(uint64_t now_ms, bool force) {
  std::vector<std::pair<ParkedBatch, bool>> ready;  // batch, timed_out
  {
    std::lock_guard<std::mutex> lk(park_mu_);
    const uint64_t synced = synced_seq_.load(std::memory_order_acquire);
    while (!parked_.empty()) {
      ParkedBatch& front = parked_.front();
      const bool acked = synced >= front.last_seq;
      const bool expired = force || now_ms >= front.deadline_ms;
      if (!acked && !expired) {
        break;
      }
      ready.emplace_back(std::move(front), !acked);
      parked_.pop_front();
    }
    parked_count_.store(parked_.size(), std::memory_order_release);
  }
  if (!ready.empty()) {
    park_cv_.notify_all();
    for (auto& [p, timed_out] : ready) {
      DeliverParked(std::move(p), timed_out);
    }
  }
}

void Shard::DeliverParked(ParkedBatch&& p, bool timed_out) {
  if (timed_out) {
    wait_timeouts_.fetch_add(1, std::memory_order_relaxed);
    const std::string msg =
        "WAITTIMEOUT wrote locally durable; replica quorum of " +
        std::to_string(opts_.wait_acks) + " not reached for seq " +
        std::to_string(p.last_seq);
    // Only write replies degrade: a read in the batch observed committed
    // state and keeps its payload.
    for (size_t i = 0; i < p.reqs.size(); ++i) {
      if (!p.wrote[i]) {
        continue;
      }
      if (p.reqs[i].txn != nullptr) {
        // The txn keeps committing — its record IS sealed — but the final
        // EXEC reply degrades to -WAITTIMEOUT (decided by the event loop).
        p.reqs[i].txn->NoteWaitTimeout();
        continue;
      }
      if (p.reqs[i].multi != nullptr) {
        p.reqs[i].multi->Fail(msg);
      } else {
        p.replies[i].clear();
        AppendErrorCode(&p.replies[i], msg);
      }
    }
  }
  DeliverBatch(p.reqs, p.replies);
}

// ---- Session-read parking ---------------------------------------------------
//
// Lifecycle of a parked read: the event loop gates a kGet/kTouch whose
// MINSEQ token is ahead of the shard's applied watermark and parks it here
// (never in the worker queue — kApply batches must keep flowing, or the
// watermark could never catch up). The apply batch that advances the
// watermark releases every now-covered read in park order and executes it
// on the worker thread, against exactly the sealed-prefix state it waited
// for. A read the watermark never reaches is answered -STALE when its
// deadline passes (event-loop tick) — an explicit refusal, never a silently
// old value. The park bound overflowing answers -STALE immediately.

Shard::ReadGate Shard::GateSessionRead(Request& req, uint64_t now_ms) {
  JNVM_CHECK(req.op == Request::Op::kGet || req.op == Request::Op::kTouch);
  if (req.min_seq == 0 || !opts_.repl_log) {
    return ReadGate::kReady;
  }
  std::lock_guard<std::mutex> lk(read_park_mu_);
  // Recheck under the park lock: a watermark advance that completed before
  // we acquired it is visible here; one completing after will find this
  // entry in its release scan. No lost wakeups.
  const uint64_t sealed = sealed_seq_.load(std::memory_order_acquire);
  if (sealed >= req.min_seq) {
    return ReadGate::kReady;
  }
  if (stop_parking_.load(std::memory_order_acquire) ||
      parked_reads_.size() >= opts_.read_park_max) {
    CompleteStaleRead(req, sealed);
    return ReadGate::kStale;
  }
  ParkedRead pr;
  pr.deadline_ms = now_ms + opts_.read_stale_timeout_ms;
  pr.req = std::move(req);
  parked_reads_.push_back(std::move(pr));
  parked_reads_count_.store(parked_reads_.size(), std::memory_order_release);
  return ReadGate::kParked;
}

void Shard::CompleteStaleRead(Request& req, uint64_t watermark) {
  stale_reads_.fetch_add(1, std::memory_order_relaxed);
  if (req.conn_id == 0) {
    return;
  }
  Completion c;
  c.conn_id = req.conn_id;
  c.seq = req.seq;
  AppendErrorCode(&c.reply, "STALE shard " + std::to_string(index_) +
                                " applied watermark " +
                                std::to_string(watermark) +
                                " behind session min-seq " +
                                std::to_string(req.min_seq));
  sink_->OnCompletion(std::move(c));
}

// Worker thread, directly after PublishReplStats: the store state IS the
// sealed prefix the new watermark names, so released reads observe exactly
// what their session token demanded. Reads are released in park order;
// kApply batches flow through the request queue untouched by parked reads.
void Shard::ReleaseSessionReads() {
  if (parked_reads_count_.load(std::memory_order_acquire) == 0) {
    return;
  }
  std::vector<Request> ready;
  {
    std::lock_guard<std::mutex> lk(read_park_mu_);
    const uint64_t sealed = sealed_seq_.load(std::memory_order_acquire);
    for (auto it = parked_reads_.begin(); it != parked_reads_.end();) {
      if (it->req.min_seq <= sealed) {
        ready.push_back(std::move(it->req));
        it = parked_reads_.erase(it);
      } else {
        ++it;
      }
    }
    parked_reads_count_.store(parked_reads_.size(), std::memory_order_release);
  }
  std::vector<repl::ReplOp> rops;  // reads never append to it
  for (Request& req : ready) {
    std::string reply;
    Execute(req, &reply, &rops);
    released_reads_.fetch_add(1, std::memory_order_relaxed);
    if (req.conn_id == 0) {
      continue;
    }
    Completion c;
    c.conn_id = req.conn_id;
    c.seq = req.seq;
    c.reply = std::move(reply);
    sink_->OnCompletion(std::move(c));
  }
}

void Shard::TickReadStale(uint64_t now_ms) {
  if (parked_reads_count_.load(std::memory_order_acquire) == 0) {
    return;
  }
  std::vector<Request> expired;
  uint64_t sealed = 0;
  {
    std::lock_guard<std::mutex> lk(read_park_mu_);
    sealed = sealed_seq_.load(std::memory_order_acquire);
    for (auto it = parked_reads_.begin(); it != parked_reads_.end();) {
      // A read the watermark already covers belongs to the worker's release
      // scan (which is ordered after the advance that satisfied it): the
      // tick only expires reads that are both late and still uncovered.
      if (it->req.min_seq > sealed && now_ms >= it->deadline_ms) {
        expired.push_back(std::move(it->req));
        it = parked_reads_.erase(it);
      } else {
        ++it;
      }
    }
    parked_reads_count_.store(parked_reads_.size(), std::memory_order_release);
  }
  for (Request& req : expired) {
    CompleteStaleRead(req, sealed);
  }
}

void Shard::ForceStaleReads() {
  std::vector<Request> all;
  uint64_t sealed = 0;
  {
    std::lock_guard<std::mutex> lk(read_park_mu_);
    sealed = sealed_seq_.load(std::memory_order_acquire);
    for (ParkedRead& pr : parked_reads_) {
      all.push_back(std::move(pr.req));
    }
    parked_reads_.clear();
    parked_reads_count_.store(0, std::memory_order_release);
  }
  for (Request& req : all) {
    CompleteStaleRead(req, sealed);
  }
}

// Ships records [first, last] — just sealed by this batch's Psync — to all
// stream subscribers. Stream completions bypass the reorder buffer and are
// appended to the subscriber's socket in emission order. The whole sealed
// range is serialized exactly once into a refcounted immutable buffer;
// each subscriber's completion carries a reference to the same bytes, so
// fan-out cost is O(subscribers) pointers, not O(subscribers) memcpys.
void Shard::StreamToSubscribers(uint64_t first_seq, uint64_t last_seq) {
  std::lock_guard<std::mutex> lk(subs_mu_);
  if (subs_.empty()) {
    return;
  }
  auto buf = std::make_shared<std::string>();
  std::string payload;
  std::string frame;
  for (uint64_t seq = first_seq; seq <= last_seq; ++seq) {
    if (!log_->Read(seq, &payload)) {
      continue;  // truncated under retention pressure mid-batch
    }
    repl::EncodeRecord(seq, payload, &frame);
    AppendBulk(buf.get(), frame);
  }
  if (buf->empty()) {
    return;
  }
  stream_frames_.fetch_add(1, std::memory_order_relaxed);
  stream_frame_bytes_.fetch_add(buf->size(), std::memory_order_relaxed);
  const std::shared_ptr<const std::string> shared = std::move(buf);
  for (const Subscriber& sub : subs_) {
    Completion c;
    c.conn_id = sub.conn_id;
    c.stream = true;
    c.frame = shared;
    sink_->OnCompletion(std::move(c));
  }
}

void Shard::PublishReplStats() {
  if (log_ == nullptr) {
    return;
  }
  sealed_seq_.store(log_->next_seq() - 1, std::memory_order_release);
  repl_start_seq_.store(log_->start_seq(), std::memory_order_relaxed);
  repl_bytes_.store(log_->bytes(), std::memory_order_relaxed);
  repl_segments_.store(log_->segments(), std::memory_order_relaxed);
  repl_needs_snapshot_.store(log_->needs_snapshot(), std::memory_order_release);
}

void Shard::WorkerLoop() {
  std::vector<Request> batch;
  std::vector<std::string> replies;
  std::vector<uint8_t> wrote_flags;
  std::vector<repl::ReplOp> rops;
  const uint32_t max_batch = opts_.batch == 0 ? 1 : opts_.batch;
  // Apply-side group size: how many kApply records (each one sealed primary
  // batch) a follower folds into one local group commit. Defaults to the
  // regular batch knob; --apply-batch decouples it from the primary's seal.
  const uint32_t apply_cap =
      opts_.apply_batch == 0 ? max_batch : opts_.apply_batch;
  for (;;) {
    batch.clear();
    replies.clear();
    wrote_flags.clear();
    rops.clear();
    bool apply_run = false;
    {
      std::unique_lock<std::mutex> lk(mu_);
      not_empty_.wait(lk, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stopping and drained
      }
      // Batches are homogeneous in class (see BatchClass): control and txn
      // boundary ops run alone, a run of kApply records groups up to
      // apply_cap, a run of kTxnExec and anything else groups up to
      // max_batch — class boundaries never mix two caps (or two apply
      // disciplines) within one durability point.
      const BatchClass bclass = ClassOf(queue_.front().op);
      apply_run = bclass == BatchClass::kApplyRun;
      const uint32_t cap = apply_run ? apply_cap : max_batch;
      const size_t take = std::min<size_t>(cap, queue_.size());
      for (size_t i = 0; i < take; ++i) {
        if (!batch.empty() && ClassOf(queue_.front().op) != bclass) {
          break;
        }
        // A shipped record with txn ops forms its own apply batch so its
        // post-seal applies order exactly as on the primary.
        const bool txn_rec = apply_run && ApplyRecordHasTxnOps(queue_.front());
        if (txn_rec && !batch.empty()) {
          break;
        }
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
        if (bclass == BatchClass::kSingleton || txn_rec) {
          break;
        }
      }
    }
    not_full_.notify_all();

    bool wrote = false;
    const bool group = (apply_run ? apply_cap : max_batch) > 1;
    const uint64_t log_first =
        log_ != nullptr ? log_->next_seq() : 0;  // first record this batch
    if (group) {
      rt_->heap().BeginGroupCommit();
    }
    for (const Request& req : batch) {
      std::string reply;
      const bool w = Execute(req, &reply, &rops);
      wrote |= w;
      wrote_flags.push_back(w ? 1 : 0);
      replies.push_back(std::move(reply));
    }
    if (!rops.empty() && !log_->needs_snapshot()) {
      // One record per batch: the group's write ops in execution order.
      std::string bf;
      repl::EncodeBatch(rops, &bf);
      log_->Append(log_->next_seq(), bf);
    }
    const uint64_t log_last = log_ != nullptr ? log_->next_seq() - 1 : 0;
    const bool appended = log_ != nullptr && log_last + 1 > log_first;
    if (group) {
      rt_->heap().EndGroupCommit();
      if (wrote) {
        rt_->Psync();  // one durability point for the whole group
      }
      // Reclaim structures orphaned by this batch's replaces/deletes — only
      // now that their unlinks are durable.
      rt_->DrainGroupFrees();
    } else if (appended) {
      // batch == 1: ops kept their own trailing durability fences, but the
      // log record still needs sealing before it can be shipped or acked.
      rt_->Psync();
    }
    // batch == 1, no log: every op kept its own trailing durability fence;
    // no group Psync needed (ablation baseline).
    if (log_ != nullptr) {
      // Staged txn writes whose justifying record this batch just sealed
      // apply now — after the seal, before the watermark publishes, so a
      // session read released below already sees them.
      ApplyPostSealTxns();
      PublishReplStats();
      // Session reads waiting on this batch's watermark advance run here,
      // against exactly the sealed-prefix state their token named.
      ReleaseSessionReads();
    }
    batches_.fetch_add(1, std::memory_order_relaxed);
    uint64_t prev = max_batch_.load(std::memory_order_relaxed);
    while (batch.size() > prev &&
           !max_batch_.compare_exchange_weak(prev, batch.size(),
                                             std::memory_order_relaxed)) {
    }
    // Ship before delivering: under WAIT-K the acks that release the batch
    // can only arrive once the subscribers have the frames.
    if (appended) {
      StreamToSubscribers(log_first, log_last);
    }
    if (appended && opts_.wait_acks > 0 && !follower()) {
      // WAIT-K: withhold the replies until K subscribers ack log_last or
      // the deadline passes. The worker moves straight on to the next
      // batch — parking is pipelined, not stop-and-wait.
      ParkBatch(log_last, batch, replies, wrote_flags);
    } else {
      DeliverBatch(batch, replies);
    }
    if (appended) {
      // Follower role: tell the local ReplClient the apply batch is sealed
      // so it can ack the primary (no-op when no hook is registered).
      NotifySealHook(log_last);
    }
  }
}

ShardStats Shard::Stats() const {
  ShardStats s;
  {
    std::lock_guard<std::mutex> lk(mu_);
    s.queue_depth = queue_.size();
  }
  s.batches = batches_.load(std::memory_order_relaxed);
  s.max_batch = max_batch_.load(std::memory_order_relaxed);
  s.elided_fences = rt_->heap().elided_fences();
  s.records = backend_->Size();
  s.ask_replies = ask_replies_.load(std::memory_order_relaxed);
  s.mig_applied_ops = mig_applied_ops_.load(std::memory_order_relaxed);
  s.ops = backend_->stats();
  s.cache = kv_->cache_stats();
  s.device = dev_->stats();
  s.repl.enabled = log_ != nullptr;
  s.repl.follower = follower();
  s.repl.needs_snapshot = repl_needs_snapshot();
  s.repl.start_seq = repl_start_seq_.load(std::memory_order_relaxed);
  s.repl.sealed_seq = sealed_seq_.load(std::memory_order_acquire);
  s.repl.applied_batches = applied_batches_.load(std::memory_order_relaxed);
  s.repl.log_bytes = repl_bytes_.load(std::memory_order_relaxed);
  s.repl.log_segments = repl_segments_.load(std::memory_order_relaxed);
  s.repl.wait_acks = opts_.wait_acks;
  s.repl.acked_seq = synced_seq_.load(std::memory_order_acquire);
  s.repl.wait_timeouts = wait_timeouts_.load(std::memory_order_relaxed);
  s.repl.parked_batches = parked_count_.load(std::memory_order_acquire);
  s.repl.parked_reads = parked_reads_count_.load(std::memory_order_acquire);
  s.repl.released_reads = released_reads_.load(std::memory_order_relaxed);
  s.repl.stale_reads = stale_reads_.load(std::memory_order_relaxed);
  s.repl.stream_frames = stream_frames_.load(std::memory_order_relaxed);
  s.repl.stream_frame_bytes =
      stream_frame_bytes_.load(std::memory_order_relaxed);
  s.repl.catchup_records = catchup_records_.load(std::memory_order_relaxed);
  s.repl.catchup_bytes = catchup_bytes_.load(std::memory_order_relaxed);
  s.repl.snap_bytes = snap_bytes_.load(std::memory_order_relaxed);
  s.repl.apply_batch = opts_.apply_batch;
  {
    std::lock_guard<std::mutex> lk(subs_mu_);
    s.repl.subscribers = subs_.size();
  }
  s.txn.prepared = txns_prepared_.load(std::memory_order_relaxed);
  s.txn.committed = txns_committed_.load(std::memory_order_relaxed);
  s.txn.aborted = txns_aborted_.load(std::memory_order_relaxed);
  s.txn.inflight = staged_txns_.Size();
  s.txn.decision_records = txn_decision_records_.load(std::memory_order_relaxed);
  s.ckpt.count = ckpt_count_.load(std::memory_order_relaxed);
  s.ckpt.begin_seq = ckpt_begin_.load(std::memory_order_relaxed);
  s.ckpt.end_seq = ckpt_end_.load(std::memory_order_relaxed);
  s.ckpt.walked_keys = ckpt_walked_keys_.load(std::memory_order_relaxed);
  s.ckpt.walked_bytes = ckpt_walked_bytes_.load(std::memory_order_relaxed);
  s.ckpt.truncated_segments =
      ckpt_truncated_segs_.load(std::memory_order_relaxed);
  s.ckpt.replayed_records = ckpt_replayed_.load(std::memory_order_relaxed);
  s.ckpt.retry_later = ckpt_retry_later_.load(std::memory_order_relaxed);
  return s;
}

ShardReport Shard::Quiesce() {
  std::lock_guard<std::mutex> qlk(quiesce_mu_);
  if (quiesced_) {
    return report_;
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    stopping_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
  stop_parking_.store(true, std::memory_order_release);
  park_cv_.notify_all();
  if (worker_.joinable()) {
    worker_.join();
  }
  // Acks can no longer arrive (the event loop is in shutdown): deliver any
  // still-parked batch now — acked ones succeed, the rest degrade to an
  // explicit -WAITTIMEOUT, never a silently dropped reply.
  ReleaseParked(NowMs(), /*force=*/true);
  // The worker is gone, so no watermark advance will release parked reads:
  // refuse them explicitly rather than dropping the replies.
  ForceStaleReads();

  rt_->Psync();
  // The heap is quiescent (worker joined, intake closed): audit everything,
  // including the failure-atomic log directory (I7).
  core::IntegrityOptions iopts;
  iopts.audit_fa_logs = true;
  const core::IntegrityReport ir = core::VerifyHeapIntegrity(*rt_, iopts);
  report_.integrity_ok = ir.ok();
  report_.violations = ir.violations;
  report_.records = backend_->Size();
  report_.elided_fences = rt_->heap().elided_fences();
  report_.psyncs = dev_->stats().psyncs;
  rt_->Close();

  const std::string image = ImagePathFor(opts_, index_);
  if (dev_->mapped()) {
    // Dax mode: the device IS the file — every store already landed in it.
    report_.image_saved = true;
    report_.image_path = DaxPathFor(opts_, index_);
  } else if (!image.empty()) {
    report_.image_saved = dev_->SaveTo(image);
    report_.image_path = image;
  }
  quiesced_ = true;
  return report_;
}

}  // namespace jnvm::server
