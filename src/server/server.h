// The J-NVM network server (DESIGN.md §7): a RESP front-end over N shards.
//
// Threading model: one event-loop thread (accept + socket I/O + protocol +
// routing) and one worker thread per shard (src/server/shard.h). Requests
// flow event loop → shard queue; completions flow back through a queue
// drained by the event loop, which a self-pipe byte wakes. Replies are
// delivered in per-connection command order (src/server/conn.h).
//
// Commands (RESP arrays of bulk strings; names case-insensitive):
//   PING                       +PONG
//   SET key value              +OK           (durable when replied)
//   GET key                    $value | $-1
//   DEL key                    :1 | :0
//   HSET key field value       :1 | :0       (field = decimal index)
//   TOUCH key                  :1 | :0       (proxy touch, no materialize)
//   MSET k1 v1 [k2 v2 ...]     +OK           (all pairs durable when replied)
//   STATS                      $<text>       (per-shard + server counters)
//   SHUTDOWN                   +OK | -ERR    (quiesce, audit I1–I7, save images)
//
// Transactions (DESIGN.md §9):
//   MULTI                      +OK           (opens a txn; SET/GET/DEL queue
//                              with +QUEUED; anything else dirties the txn)
//   EXEC                       *N array of per-op replies | *0 (empty txn) |
//                              -TXNABORT <reason> (all-or-nothing refusal)
//   DISCARD                    +OK           (drops the queued txn)
// A single-shard txn commits through the shard's ordinary group commit; a
// cross-shard txn two-phase-commits with the decision record sealed in the
// coordinator shard's replication log. Either way the EXEC reply means every
// op is durably applied (or, on -TXNABORT, none is).
//
// Replication plane (DESIGN.md §8):
//   REPLSYNC shard from        +SYNC <from>, then a bulk stream of sealed
//                              record frames — the connection becomes a
//                              one-way feed (first/only command on it)
//   REPLSNAP shard             $<snapshot>   (bootstrap / catch-up image)
//   PROMOTE                    +OK | -ERR    (stop pulling, audit I1–I7 on
//                              every shard, flip followers writable)
// A server started with ServerOptions::replica_of runs every shard as a
// follower (-READONLY to client writes) and pulls those commands from the
// primary itself via repl::ReplClient.
//
// The event loop uses epoll on Linux and poll(2) otherwise; ServerOptions
// can force the poll path so both are testable on one platform.
#ifndef JNVM_SRC_SERVER_SERVER_H_
#define JNVM_SRC_SERVER_SERVER_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/cluster/meta.h"
#include "src/cluster/migrate.h"
#include "src/repl/replica.h"
#include "src/server/conn.h"
#include "src/server/shard.h"
#include "src/txn/txn.h"

namespace jnvm::server {

struct ServerOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;  // 0 = ephemeral; read back with port()
  uint32_t nshards = 4;
  ShardOptions shard;
  // Force the poll(2) event loop even where epoll is available.
  bool force_poll = false;
  // "host:port" of a primary to replicate from. Non-empty = replica role:
  // every shard opens as a follower (shard.follower and shard.repl_log are
  // forced on) and a ReplClient pulls the primary's record stream. The
  // shard count must match the primary's. PROMOTE clears the role.
  std::string replica_of;

  // ---- Cluster plane (DESIGN.md §10) --------------------------------------
  // Enables hash-slot routing: the node opens (or recovers) its persisted
  // slot table, single-key commands route through it (-MOVED / -ASK /
  // -TRYAGAIN / -CLUSTERDOWN for slots this node does not plainly own), the
  // CLUSTER / ASKING / MIG* command families appear, and STATS gains a
  // `cluster:` line. cluster_meta.announce defaults to the bound host:port.
  bool cluster = false;
  cluster::ClusterOptions cluster_meta;

  // Per-connection memory caps. A connection whose unparsed input exceeds
  // max_conn_in_bytes, or whose pending output exceeds max_conn_out_bytes
  // (the classic slow REPLSYNC subscriber), is disconnected and counted in
  // STATS (in_overflows / out_overflows) — a stalled peer cannot OOM the
  // server. The input cap must exceed the largest legal command frame.
  uint64_t max_conn_in_bytes = 32ull << 20;
  uint64_t max_conn_out_bytes = 64ull << 20;
};

// Aggregate outcome of a SHUTDOWN / Stop(): per-shard quiesce reports.
struct ShutdownReport {
  bool ok = false;  // every shard quiesced with a clean integrity audit
  std::vector<ShardReport> shards;
  std::string Summary() const;
};

class Server : public CompletionSink {
 public:
  // Binds, listens, opens the shards (recovering from images when present)
  // and starts the event loop. Returns nullptr on socket failure with the
  // reason in *error.
  static std::unique_ptr<Server> Start(const ServerOptions& opts,
                                       std::string* error);
  ~Server() override;

  uint16_t port() const { return port_; }
  bool AnyShardRecovered() const;
  // Replica role (null on a primary, and after the client was stopped the
  // pointer stays valid for Stats()).
  const repl::ReplClient* repl_client() const { return repl_client_.get(); }
  // Cluster plane (null unless ServerOptions::cluster). Tests and tools.
  cluster::ClusterState* cluster_state() { return cluster_.get(); }
  cluster::Migrator* migrator() { return migrator_.get(); }

  // Blocks until the event loop exits (SHUTDOWN command or RequestShutdown).
  void Wait();
  // Programmatic shutdown: same path as the SHUTDOWN command.
  void RequestShutdown();

  // Valid after the event loop exited.
  const ShutdownReport& shutdown_report() const { return shutdown_report_; }

  // CompletionSink (called from shard workers).
  void OnCompletion(Completion&& c) override;

 private:
  Server() = default;

  void EventLoop();
  void AcceptPending();
  void HandleReadable(Conn& conn);
  void HandleWritable(Conn& conn);
  // Parses + dispatches the commands already buffered on the connection;
  // stops early on a read-pause (shard backpressure) or a protocol error.
  void ProcessInput(Conn& conn);
  // Parses and dispatches one command; false = protocol error, close conn.
  bool Dispatch(Conn& conn, std::vector<std::string>& args);
  // ---- Cluster plane (DESIGN.md §10) --------------------------------------
  // Slot-routes one single-key command. True = the command was answered
  // inline with a redirect (-MOVED / -TRYAGAIN / -CLUSTERDOWN) and must not
  // submit; false = serve locally (req->ask_addr set when the slot is
  // mid-migration, so a key miss answers -ASK). `asking` is the connection's
  // consumed one-shot ASKING flag.
  bool RouteClusterKey(Conn& conn, uint64_t seq, const std::string& key,
                       bool asking, Request* req);
  // CLUSTER MEET / SLOTS / SETSLOT / INFO admin family.
  bool DispatchCluster(Conn& conn, uint64_t seq, std::vector<std::string>& args);
  // Destination-side migration protocol: MIGSTART / MIGAPPLY / MIGCOMMIT /
  // MIGABORT (sent by a peer's Migrator, never by ordinary clients).
  bool DispatchMigStart(Conn& conn, uint64_t seq, std::vector<std::string>& args);
  bool DispatchMigApply(Conn& conn, uint64_t seq, std::vector<std::string>& args);
  // Queues `req` on shard `shard_idx` or stalls it on the connection
  // (read-pause backpressure). False = shard stopping; caller replies -ERR.
  bool SubmitOrStall(Conn& conn, uint32_t shard_idx, Request&& req);
  // Re-drives stalled requests after shard queues drained; resumes reading
  // and parsing when a connection's stall queue empties.
  void RetryStalled();
  void PauseReads(Conn& conn);
  // Resolves the reply slot of a stalled request whose shard is stopping.
  void FailStalledRequest(Conn& conn, Request& req);
  void CompleteInline(Conn& conn, uint64_t seq, std::string&& reply);
  void DrainCompletions();
  // ---- Transactions (DESIGN.md §9) ---------------------------------------
  // EXEC: turns the connection's queued MULTI buffer into a TxnState and
  // launches phase 1 (kTxnExec single-shard / kTxnPrepare per participant).
  bool DispatchExec(Conn& conn, uint64_t seq);
  // Phase machine, driven by shard completions carrying Completion::txn:
  // prepare → decide (cross-shard) → fan commit markers + reply.
  void AdvanceTxn(const std::shared_ptr<txn::TxnState>& t);
  // Assembles and delivers the final EXEC reply (*N array, -TXNABORT or
  // -WAITTIMEOUT) to the owning connection, if it still exists.
  void DeliverTxnReply(const std::shared_ptr<txn::TxnState>& t);
  // Submits an internal txn request to a shard without ever blocking the
  // event loop: kFull requests park in txn_pending_ and retry on loop ticks.
  void SubmitTxn(uint32_t shard_idx, Request&& req);
  void RetryTxnPending();
  // Crash/promote resolution: commit-or-abort every prepared-but-undecided
  // txn by presence of the sealed decision in its coordinator's log.
  void ResolveCrossShardTxns();
  // Disconnects a connection whose pending output exceeded the cap.
  // True when the connection was evicted (iterators into conns_ invalid).
  bool EnforceOutCap(Conn& conn);
  void CloseConn(uint64_t id);
  std::string BuildStats();
  void DoShutdown(uint64_t conn_id, uint64_t seq);
  void FlushAllBestEffort();

  ServerOptions opts_;
  uint16_t port_ = 0;
  int listen_fd_ = -1;
  int wake_r_ = -1, wake_w_ = -1;  // self-pipe
  std::vector<std::unique_ptr<Shard>> shards_;
  // Declared after shards_ so destruction stops the pull threads first.
  std::unique_ptr<repl::ReplClient> repl_client_;
  // Cluster plane: the persisted slot table and the migration driver.
  // Declared after shards_ (and destroyed first) because the migrator
  // thread submits control requests to the shards.
  std::unique_ptr<cluster::ClusterState> cluster_;
  std::unique_ptr<cluster::Migrator> migrator_;

  std::thread loop_;
  std::atomic<bool> shutdown_requested_{false};
  bool shutting_down_ = false;  // event-loop local
  ShutdownReport shutdown_report_;

  std::unordered_map<uint64_t, std::unique_ptr<Conn>> conns_;
  std::unordered_map<int, uint64_t> by_fd_;
  uint64_t next_conn_id_ = 1;
  std::unique_ptr<class Poller> poller_;

  std::mutex comp_mu_;
  std::vector<Completion> completions_;

  // Connections with a non-empty stall queue (backpressure), retried after
  // completions drain and on each loop tick.
  std::vector<uint64_t> stalled_conns_;

  // Transactions: id generator and internal phase requests waiting for
  // shard-queue space (the event loop never blocks on Submit).
  txn::TxnIdGenerator txn_ids_;
  std::deque<std::pair<uint32_t, Request>> txn_pending_;

  // Server-level counters (STATS).
  uint64_t accepted_ = 0;
  uint64_t commands_ = 0;
  uint64_t protocol_errors_ = 0;
  uint64_t in_overflows_ = 0;   // connections dropped: input cap exceeded
  uint64_t out_overflows_ = 0;  // connections dropped: output cap exceeded
  // Output-path counters (chunked writev flush, DESIGN.md §7).
  uint64_t flush_syscalls_ = 0;  // writev() calls that accepted bytes
  uint64_t flushed_bytes_ = 0;   // bytes the kernel accepted
  uint64_t flush_chunks_ = 0;    // chunks submitted across those calls
  uint64_t frame_refs_ = 0;      // shared frames enqueued by reference
  uint64_t frame_bytes_ = 0;     // logical bytes those refs would have copied
  // Cluster plane: -MOVED redirects answered (event-loop thread only).
  uint64_t moved_replies_ = 0;
};

}  // namespace jnvm::server

#endif  // JNVM_SRC_SERVER_SERVER_H_
