// The J-NVM network server (DESIGN.md §7): a RESP front-end over N shards.
//
// Threading model: a pool of event-loop threads (ServerOptions::loops, default
// 1) and one worker thread per shard (src/server/shard.h). Each loop owns a
// SO_REUSEPORT listener (or, where the kernel lacks it, loop 0 accepts and
// hands fds off round-robin through per-loop inboxes), and a connection is
// pinned to its accepting loop for life — all of its socket I/O, parsing and
// reply assembly happen on that one thread, so per-connection state needs no
// locks. Requests flow any loop → shard MPSC queue; completions flow back
// through a per-loop completion queue selected by the loop index encoded in
// the connection id, and a per-loop self-pipe byte wakes the owner. Replies
// are delivered in per-connection command order (src/server/conn.h).
//
// Commands (RESP arrays of bulk strings; names case-insensitive):
//   PING                       +PONG
//   SET key value              +OK           (durable when replied)
//   GET key                    $value | $-1
//   DEL key                    :1 | :0
//   HSET key field value       :1 | :0       (field = decimal index)
//   TOUCH key                  :1 | :0       (proxy touch, no materialize)
//   MSET k1 v1 [k2 v2 ...]     +OK           (all pairs durable when replied)
//   STATS                      $<text>       (per-shard + server counters)
//   SHUTDOWN                   +OK | -ERR    (quiesce, audit I1–I7, save images)
//
// Transactions (DESIGN.md §9):
//   MULTI                      +OK           (opens a txn; SET/GET/DEL queue
//                              with +QUEUED; anything else dirties the txn)
//   EXEC                       *N array of per-op replies | *0 (empty txn) |
//                              -TXNABORT <reason> (all-or-nothing refusal)
//   DISCARD                    +OK           (drops the queued txn)
// A single-shard txn commits through the shard's ordinary group commit; a
// cross-shard txn two-phase-commits with the decision record sealed in the
// coordinator shard's replication log. Either way the EXEC reply means every
// op is durably applied (or, on -TXNABORT, none is). A transaction's 2PC
// state machine is driven entirely by the loop owning its connection (phase
// joins route back by conn id), so its phases never race across loops.
//
// Replication plane (DESIGN.md §8):
//   REPLSYNC shard from        +SYNC <from>, then a bulk stream of sealed
//                              record frames — the connection becomes a
//                              one-way feed (first/only command on it)
//   REPLDIFF shard from digest [nshards [epoch]]
//                              segment-diff resync (DESIGN.md §11): the
//                              follower advertises per-segment CRC digests;
//                              the primary verifies them against its
//                              retained log and answers like REPLSYNC on
//                              match, -DIFFBASE (take REPLSNAP) on
//                              divergence, -SNAPSHOT when `from` fell below
//                              the truncation watermark
//   REPLSNAP shard             $<snapshot>   (bootstrap / catch-up image;
//                              -RETRYLATER while the shard is itself
//                              mid-bootstrap)
//
// Checkpoint plane (DESIGN.md §11):
//   CKPT                       +OK <detail> | -BUSY | -ERR — runs one fuzzy
//                              checkpoint pass over every shard (walk +
//                              finalize + log truncation); the reply lands
//                              when the pass completes. ServerOptions::
//                              ckpt_interval_ms triggers the same pass on a
//                              timer.
//   PROMOTE                    +OK | -ERR    (stop pulling, audit I1–I7 on
//                              every shard, flip followers writable)
// A server started with ServerOptions::replica_of runs every shard as a
// follower (-READONLY to client writes) and pulls those commands from the
// primary itself via repl::ReplClient.
//
// Readiness backends (src/server/poller.h): epoll (Linux default), poll(2)
// (portable / forced by tests), io_uring (--poller=uring; one-shot POLL_ADD
// arms batched into a single io_uring_enter per round, plus batched SENDMSG
// flushing — falls back to epoll at runtime when the kernel lacks io_uring).
#ifndef JNVM_SRC_SERVER_SERVER_H_
#define JNVM_SRC_SERVER_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/ckpt/ckpt_runner.h"
#include "src/cluster/meta.h"
#include "src/cluster/migrate.h"
#include "src/repl/replica.h"
#include "src/server/conn.h"
#include "src/server/poller.h"
#include "src/server/shard.h"
#include "src/txn/txn.h"

namespace jnvm::server {

struct ServerOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;  // 0 = ephemeral; read back with port()
  uint32_t nshards = 4;
  ShardOptions shard;
  // Event-loop threads (clamped to [1, 64]). Each owns a listener and the
  // connections it accepts.
  uint32_t loops = 1;
  // Readiness backend: "" (epoll, honoring force_poll), "epoll", "poll",
  // or "uring" (io_uring, falling back to epoll when the kernel lacks it).
  std::string poller;
  // Force the poll(2) event loop even where epoll is available (legacy
  // spelling of poller="poll"; ignored when `poller` is set).
  bool force_poll = false;
  // When false, skip SO_REUSEPORT and run the accept-and-hand-off fallback
  // (loop 0 accepts, fds round-robin to the pool) — the path kernels
  // without SO_REUSEPORT take; exposed so tests cover it everywhere.
  bool reuseport = true;
  // "host:port" of a primary to replicate from. Non-empty = replica role:
  // every shard opens as a follower (shard.follower and shard.repl_log are
  // forced on) and a ReplClient pulls the primary's record stream. The
  // shard count must match the primary's. PROMOTE clears the role.
  std::string replica_of;

  // ---- Checkpoint plane (DESIGN.md §11) -----------------------------------
  // Periodic fuzzy checkpoint: every ckpt_interval_ms the server runs the
  // same pass the CKPT verb runs (walk + finalize + log truncation) from
  // the runner's own thread. 0 = manual CKPT only. Replicas skip the timer
  // (their logs truncate when the primary's checkpoints stream through).
  uint32_t ckpt_interval_ms = 0;

  // ---- Cluster plane (DESIGN.md §10) --------------------------------------
  // Enables hash-slot routing: the node opens (or recovers) its persisted
  // slot table, single-key commands route through it (-MOVED / -ASK /
  // -TRYAGAIN / -CLUSTERDOWN for slots this node does not plainly own), the
  // CLUSTER / ASKING / MIG* command families appear, and STATS gains a
  // `cluster:` line. cluster_meta.announce defaults to the bound host:port.
  bool cluster = false;
  cluster::ClusterOptions cluster_meta;

  // Per-connection memory caps. A connection whose unparsed input exceeds
  // max_conn_in_bytes, or whose pending output exceeds max_conn_out_bytes
  // (the classic slow REPLSYNC subscriber), is disconnected and counted in
  // STATS (in_overflows / out_overflows) — a stalled peer cannot OOM the
  // server. The input cap must exceed the largest legal command frame.
  uint64_t max_conn_in_bytes = 32ull << 20;
  uint64_t max_conn_out_bytes = 64ull << 20;
};

// Aggregate outcome of a SHUTDOWN / Stop(): per-shard quiesce reports.
struct ShutdownReport {
  bool ok = false;  // every shard quiesced with a clean integrity audit
  std::vector<ShardReport> shards;
  std::string Summary() const;
};

// Per-loop counters. Each is mutated only by its owning loop thread, but
// STATS (served on whichever loop got the command) aggregates across all
// loops, so the slots are relaxed atomics — an aggregate can lag a few
// operations but can never be torn or lose increments.
struct LoopCounters {
  std::atomic<uint64_t> accepted{0};
  std::atomic<uint64_t> commands{0};
  std::atomic<uint64_t> protocol_errors{0};
  std::atomic<uint64_t> in_overflows{0};   // dropped: input cap exceeded
  std::atomic<uint64_t> out_overflows{0};  // dropped: output cap exceeded
  // Output-path counters (chunked writev flush, DESIGN.md §7).
  std::atomic<uint64_t> flush_syscalls{0};  // flush syscalls that accepted bytes
  std::atomic<uint64_t> flushed_bytes{0};   // bytes the kernel accepted
  std::atomic<uint64_t> flush_chunks{0};    // chunks submitted across those
  std::atomic<uint64_t> batch_flushes{0};   // WritevBatch submissions (uring)
  std::atomic<uint64_t> frame_refs{0};      // shared frames enqueued by ref
  std::atomic<uint64_t> frame_bytes{0};     // logical bytes those refs share
  std::atomic<uint64_t> moved_replies{0};   // cluster -MOVED redirects
  std::atomic<uint64_t> open_conns{0};      // live connections on this loop
};

class Server : public CompletionSink {
 public:
  // Binds, listens, opens the shards (recovering from images when present)
  // and starts the event-loop pool. Returns nullptr on socket failure with
  // the reason in *error.
  static std::unique_ptr<Server> Start(const ServerOptions& opts,
                                       std::string* error);
  ~Server() override;

  uint16_t port() const { return port_; }
  bool AnyShardRecovered() const;
  // Replica role (null on a primary, and after the client was stopped the
  // pointer stays valid for Stats()).
  const repl::ReplClient* repl_client() const { return repl_client_.get(); }
  // Cluster plane (null unless ServerOptions::cluster). Tests and tools.
  cluster::ClusterState* cluster_state() { return cluster_.get(); }
  cluster::Migrator* migrator() { return migrator_.get(); }
  // Checkpoint driver (always present). Tests and tools.
  ckpt::CheckpointRunner* ckpt_runner() { return ckpt_runner_.get(); }
  // The readiness backend actually running (after any runtime fallback).
  const char* poller_name() const;

  // Blocks until every event loop exits (SHUTDOWN command or
  // RequestShutdown).
  void Wait();
  // Programmatic shutdown: same path as the SHUTDOWN command.
  void RequestShutdown();

  // Valid after the event loops exited.
  const ShutdownReport& shutdown_report() const { return shutdown_report_; }

  // CompletionSink (called from shard workers and any loop): routes the
  // completion to the loop owning its connection and wakes it.
  void OnCompletion(Completion&& c) override;

 private:
  // Everything one event-loop thread owns. Connections live and die on one
  // loop; cross-thread traffic enters only through `mu`-guarded queues
  // (completions, handed-off fds) plus the wake pipe.
  struct Loop {
    uint32_t index = 0;
    int listen_fd = -1;  // own SO_REUSEPORT listener; -1 in hand-off mode
    int wake_r = -1, wake_w = -1;  // self-pipe
    std::unique_ptr<Poller> poller;
    std::thread thread;

    std::unordered_map<uint64_t, std::unique_ptr<Conn>> conns;
    std::unordered_map<int, uint64_t> by_fd;
    uint64_t next_conn = 1;  // low 48 bits of the next conn id

    std::mutex mu;  // guards completions + fd_inbox (the cross-thread doors)
    std::vector<Completion> completions;
    std::vector<int> fd_inbox;  // accepted fds handed off by loop 0

    // Connections with a non-empty stall queue (backpressure), retried
    // after completions drain and on each loop tick.
    std::vector<uint64_t> stalled_conns;
    // Internal txn-phase requests waiting for shard-queue space (a loop
    // never blocks on Submit).
    std::deque<std::pair<uint32_t, Request>> txn_pending;

    LoopCounters counters;

    // Loop-local shutdown progression (guarded by being loop-thread-only).
    bool intake_stopped = false;  // phase 1 processed: no accepts, no reads
    bool exiting = false;         // phase 2 processed: leave the loop
  };

  Server() = default;

  // Loop index lives in bits 48+ of the conn id (loop 1 = pool index 0, so
  // id 0 keeps meaning "no connection" / internal).
  static constexpr int kLoopShift = 48;
  Loop& LoopFor(uint64_t conn_id);
  void WakeLoop(Loop& lp);

  void EventLoop(Loop& lp);
  void AcceptPending(Loop& lp);
  // Registers a freshly accepted fd on this loop (both accept paths).
  void RegisterConn(Loop& lp, int fd);
  // Hand-off fallback: drains fds loop 0 accepted for this loop.
  void DrainFdInbox(Loop& lp);
  void CloseConn(Loop& lp, uint64_t id);
  void HandleReadable(Loop& lp, Conn& conn);
  void HandleWritable(Loop& lp, Conn& conn);
  // Parses + dispatches the commands already buffered on the connection;
  // stops early on a read-pause (shard backpressure) or a protocol error.
  void ProcessInput(Loop& lp, Conn& conn);
  // Parses and dispatches one command; false = protocol error, close conn.
  bool Dispatch(Loop& lp, Conn& conn, std::vector<std::string>& args);
  // ---- Cluster plane (DESIGN.md §10) --------------------------------------
  // Slot-routes one single-key command. True = the command was answered
  // inline with a redirect (-MOVED / -TRYAGAIN / -CLUSTERDOWN) and must not
  // submit; false = serve locally (req->ask_addr set when the slot is
  // mid-migration, so a key miss answers -ASK). `asking` is the connection's
  // consumed one-shot ASKING flag.
  bool RouteClusterKey(Loop& lp, Conn& conn, uint64_t seq,
                       const std::string& key, bool asking, Request* req);
  // CLUSTER MEET / SLOTS / SETSLOT / INFO admin family.
  bool DispatchCluster(Conn& conn, uint64_t seq,
                       std::vector<std::string>& args);
  // Destination-side migration protocol: MIGSTART / MIGAPPLY / MIGCOMMIT /
  // MIGABORT (sent by a peer's Migrator, never by ordinary clients).
  bool DispatchMigStart(Loop& lp, Conn& conn, uint64_t seq,
                        std::vector<std::string>& args);
  bool DispatchMigApply(Loop& lp, Conn& conn, uint64_t seq,
                        std::vector<std::string>& args);
  // Queues `req` on shard `shard_idx` or stalls it on the connection
  // (read-pause backpressure). False = shard stopping; caller replies -ERR.
  bool SubmitOrStall(Loop& lp, Conn& conn, uint32_t shard_idx, Request&& req);
  // Re-drives stalled requests after shard queues drained; resumes reading
  // and parsing when a connection's stall queue empties.
  void RetryStalled(Loop& lp);
  void PauseReads(Loop& lp, Conn& conn);
  // Resolves the reply slot of a stalled request whose shard is stopping.
  void FailStalledRequest(Loop& lp, Conn& conn, Request& req);
  void CompleteInline(Conn& conn, uint64_t seq, std::string&& reply);
  void DrainCompletions(Loop& lp);
  // Ships every connection DrainCompletions dirtied: one writev each, or —
  // on io_uring — one batched submission for the whole set.
  void FlushDirty(Loop& lp, std::vector<uint64_t>& dirty);
  // ---- Transactions (DESIGN.md §9) ---------------------------------------
  // EXEC: turns the connection's queued MULTI buffer into a TxnState and
  // launches phase 1 (kTxnExec single-shard / kTxnPrepare per participant).
  bool DispatchExec(Loop& lp, Conn& conn, uint64_t seq);
  // Phase machine, driven by shard completions carrying Completion::txn.
  // Always runs on the loop owning the txn's connection.
  void AdvanceTxn(Loop& lp, const std::shared_ptr<txn::TxnState>& t);
  // Assembles and delivers the final EXEC reply (*N array, -TXNABORT or
  // -WAITTIMEOUT) to the owning connection, if it still exists.
  void DeliverTxnReply(Loop& lp, const std::shared_ptr<txn::TxnState>& t);
  // Submits an internal txn request to a shard without ever blocking the
  // loop: kFull requests park in lp.txn_pending and retry on loop ticks.
  void SubmitTxn(Loop& lp, uint32_t shard_idx, Request&& req);
  void RetryTxnPending(Loop& lp);
  // Crash/promote resolution: commit-or-abort every prepared-but-undecided
  // txn by presence of the sealed decision in its coordinator's log.
  void ResolveCrossShardTxns(Loop& lp);
  // Disconnects a connection whose pending output exceeded the cap.
  // True when the connection was evicted (iterators into conns invalid).
  bool EnforceOutCap(Loop& lp, Conn& conn);
  std::string BuildStats(Loop& lp);
  // Two-phase cross-loop shutdown, run by the coordinating loop: phase 1
  // stops intake on every loop (accepts + new input) and barriers on it, so
  // no loop can submit new work while the shards quiesce; phase 2 releases
  // every loop to drain its completions, flush and close its connections.
  void DoShutdown(Loop& lp, uint64_t conn_id, uint64_t seq);
  // Phase-1 entry each loop runs on itself exactly once.
  void StopIntake(Loop& lp);
  // Phase-2 exit each loop runs on itself: fail stalled work, drain, flush,
  // close, leave.
  void FinishLoop(Loop& lp);
  void FlushAllBestEffort(Loop& lp);

  ServerOptions opts_;
  uint16_t port_ = 0;
  std::vector<std::unique_ptr<Loop>> loops_;
  uint32_t rr_next_ = 0;  // hand-off round-robin cursor (loop 0 only)
  std::vector<std::unique_ptr<Shard>> shards_;
  // Declared after shards_ so destruction stops the pull threads first.
  std::unique_ptr<repl::ReplClient> repl_client_;
  // Cluster plane: the persisted slot table and the migration driver.
  // Declared after shards_ (and destroyed first) because the migrator
  // thread submits control requests to the shards.
  std::unique_ptr<cluster::ClusterState> cluster_;
  std::unique_ptr<cluster::Migrator> migrator_;
  // Checkpoint driver: declared after shards_ (destroyed first) because its
  // thread submits control batches to the shards, like the migrator.
  std::unique_ptr<ckpt::CheckpointRunner> ckpt_runner_;
  uint64_t last_ckpt_ms_ = 0;  // loop-0 tick timer state

  std::atomic<bool> shutdown_requested_{false};
  // 0 = running; 1 = quiesce (no accepts, no new input, loops keep draining
  // completions); 2 = exit (final drain + flush + close). Advanced only by
  // the coordinating loop.
  std::atomic<int> shutdown_phase_{0};
  std::atomic<bool> shutdown_claimed_{false};  // one loop coordinates
  std::mutex shutdown_mu_;
  std::condition_variable shutdown_cv_;
  uint32_t intake_stopped_loops_ = 0;  // guarded by shutdown_mu_
  ShutdownReport shutdown_report_;

  // Transactions: id generator shared by all loops (atomic).
  txn::TxnIdGenerator txn_ids_;
};

}  // namespace jnvm::server

#endif  // JNVM_SRC_SERVER_SERVER_H_
