#include "src/server/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "src/common/check.h"
#include "src/common/clock.h"

#ifdef __linux__
#include <sys/epoll.h>
#endif

namespace jnvm::server {

namespace {

bool SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

std::string Upper(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  return out;
}

bool ParseU32(const std::string& s, uint32_t* out) {
  if (s.empty() || s.size() > 9) {
    return false;
  }
  uint32_t v = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') {
      return false;
    }
    v = v * 10 + static_cast<uint32_t>(c - '0');
  }
  *out = v;
  return true;
}

bool ParseU64(const std::string& s, uint64_t* out) {
  if (s.empty() || s.size() > 19) {
    return false;
  }
  uint64_t v = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') {
      return false;
    }
    v = v * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = v;
  return true;
}

// "host:port" → (host, port). False on malformed input.
bool SplitHostPort(const std::string& s, std::string* host, uint16_t* port) {
  const size_t colon = s.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == s.size()) {
    return false;
  }
  uint32_t p = 0;
  if (!ParseU32(s.substr(colon + 1), &p) || p == 0 || p > 65535) {
    return false;
  }
  *host = s.substr(0, colon);
  *port = static_cast<uint16_t>(p);
  return true;
}

}  // namespace

// Event-loop readiness backend: epoll on Linux, poll(2) otherwise or when
// forced (ServerOptions::force_poll) — both paths are compiled on Linux so
// tests can exercise either at runtime.
class Poller {
 public:
  struct Event {
    int fd = -1;
    bool readable = false;
    bool writable = false;
    bool error = false;
  };

  explicit Poller(bool use_epoll) {
#ifdef __linux__
    if (use_epoll) {
      epfd_ = epoll_create1(0);
      epoll_ = epfd_ >= 0;
    }
#else
    (void)use_epoll;
#endif
  }

  ~Poller() {
    if (epfd_ >= 0) {
      ::close(epfd_);
    }
  }

  bool using_epoll() const { return epoll_; }

  // Read interest is now a parameter too: a connection under shard
  // backpressure stops watching readable (read-pause) so the kernel, not
  // the server, buffers the client's pipeline.
  void Watch(int fd, bool want_read, bool want_write) {
    const uint8_t mask =
        (want_read ? 1u : 0u) | (want_write ? 2u : 0u);
    const auto it = fds_.find(fd);
    const bool known = it != fds_.end();
    if (known && it->second == mask) {
      return;
    }
    fds_[fd] = mask;
#ifdef __linux__
    if (epoll_) {
      epoll_event ev{};
      ev.events = (want_read ? EPOLLIN : 0u) | (want_write ? EPOLLOUT : 0u);
      ev.data.fd = fd;
      epoll_ctl(epfd_, known ? EPOLL_CTL_MOD : EPOLL_CTL_ADD, fd, &ev);
    }
#endif
  }

  void Forget(int fd) {
    fds_.erase(fd);
#ifdef __linux__
    if (epoll_) {
      epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, nullptr);
    }
#endif
  }

  void Wait(std::vector<Event>* out, int timeout_ms) {
    out->clear();
#ifdef __linux__
    if (epoll_) {
      epoll_event evs[64];
      int n;
      do {
        n = epoll_wait(epfd_, evs, 64, timeout_ms);
      } while (n < 0 && errno == EINTR);  // signal: not a lost round
      for (int i = 0; i < n; ++i) {
        Event e;
        e.fd = evs[i].data.fd;
        e.readable = (evs[i].events & (EPOLLIN | EPOLLHUP)) != 0;
        e.writable = (evs[i].events & EPOLLOUT) != 0;
        e.error = (evs[i].events & EPOLLERR) != 0;
        out->push_back(e);
      }
      return;
    }
#endif
    std::vector<pollfd> pfds;
    pfds.reserve(fds_.size());
    for (const auto& [fd, mask] : fds_) {
      pollfd p{};
      p.fd = fd;
      p.events = static_cast<short>(((mask & 1u) != 0 ? POLLIN : 0) |
                                    ((mask & 2u) != 0 ? POLLOUT : 0));
      pfds.push_back(p);
    }
    int n;
    do {
      n = ::poll(pfds.data(), pfds.size(), timeout_ms);
    } while (n < 0 && errno == EINTR);  // signal: not a lost round
    if (n <= 0) {
      return;
    }
    for (const pollfd& p : pfds) {
      if (p.revents == 0) {
        continue;
      }
      Event e;
      e.fd = p.fd;
      e.readable = (p.revents & (POLLIN | POLLHUP)) != 0;
      e.writable = (p.revents & POLLOUT) != 0;
      e.error = (p.revents & (POLLERR | POLLNVAL)) != 0;
      out->push_back(e);
    }
  }

 private:
  bool epoll_ = false;
  int epfd_ = -1;
  std::unordered_map<int, uint8_t> fds_;  // fd -> interest mask (1=r, 2=w)
};

std::string ShutdownReport::Summary() const {
  std::string s;
  char line[256];
  for (size_t i = 0; i < shards.size(); ++i) {
    const ShardReport& r = shards[i];
    std::snprintf(line, sizeof(line),
                  "shard%zu: integrity=%s records=%llu elided_fences=%llu "
                  "psyncs=%llu image=%s\n",
                  i, r.integrity_ok ? "ok" : "VIOLATED",
                  static_cast<unsigned long long>(r.records),
                  static_cast<unsigned long long>(r.elided_fences),
                  static_cast<unsigned long long>(r.psyncs),
                  r.image_saved ? r.image_path.c_str() : "-");
    s += line;
    for (const std::string& v : r.violations) {
      s += "  violation: " + v + "\n";
    }
  }
  return s;
}

std::unique_ptr<Server> Server::Start(const ServerOptions& opts,
                                      std::string* error) {
  auto fail = [&](const std::string& msg) {
    if (error != nullptr) {
      *error = msg + ": " + std::strerror(errno);
    }
    return nullptr;
  };
  if (opts.nshards == 0 ||
      (opts.shard.backend != "jpdt" && opts.shard.backend != "jpfa")) {
    if (error != nullptr) {
      *error = "bad options: nshards must be > 0, backend jpdt|jpfa";
    }
    return nullptr;
  }
  if (opts.shard.wait_acks > 0 && !opts.shard.repl_log) {
    if (error != nullptr) {
      *error = "bad options: --wait-acks requires the replication log";
    }
    return nullptr;
  }

  auto s = std::unique_ptr<Server>(new Server());
  s->opts_ = opts;
  std::string primary_host;
  uint16_t primary_port = 0;
  if (!opts.replica_of.empty()) {
    if (!SplitHostPort(opts.replica_of, &primary_host, &primary_port)) {
      if (error != nullptr) {
        *error = "bad replica_of '" + opts.replica_of + "', expected host:port";
      }
      return nullptr;
    }
    // Replica role: followers with a (mirrored) replication log.
    s->opts_.shard.follower = true;
    s->opts_.shard.repl_log = true;
  }

  s->listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (s->listen_fd_ < 0) {
    return fail("socket");
  }
  const int one = 1;
  ::setsockopt(s->listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(opts.port);
  if (::inet_pton(AF_INET, opts.host.c_str(), &addr.sin_addr) != 1) {
    return fail("inet_pton(" + opts.host + ")");
  }
  if (::bind(s->listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return fail("bind");
  }
  if (::listen(s->listen_fd_, 128) != 0) {
    return fail("listen");
  }
  socklen_t alen = sizeof(addr);
  ::getsockname(s->listen_fd_, reinterpret_cast<sockaddr*>(&addr), &alen);
  s->port_ = ntohs(addr.sin_port);
  SetNonBlocking(s->listen_fd_);

  int pipefd[2];
  if (::pipe(pipefd) != 0) {
    return fail("pipe");
  }
  s->wake_r_ = pipefd[0];
  s->wake_w_ = pipefd[1];
  SetNonBlocking(s->wake_r_);
  SetNonBlocking(s->wake_w_);

  if (opts.cluster) {
    // The slot table opens before the shards: recovery of a torn handoff
    // (RecoverLocked) must settle before any request can route.
    cluster::ClusterOptions copts = opts.cluster_meta;
    if (copts.announce.empty()) {
      copts.announce = opts.host + ":" + std::to_string(s->port_);
    }
    std::string cerr;
    s->cluster_ = cluster::ClusterState::Open(copts, &cerr);
    if (s->cluster_ == nullptr) {
      if (error != nullptr) {
        *error = "cluster meta: " + cerr;
      }
      return nullptr;
    }
  }
  for (uint32_t i = 0; i < opts.nshards; ++i) {
    s->shards_.push_back(Shard::Open(s->opts_.shard, i, s.get()));
  }
  if (s->cluster_ != nullptr) {
    std::vector<Shard*> raw;
    raw.reserve(s->shards_.size());
    for (const auto& sh : s->shards_) {
      raw.push_back(sh.get());
    }
    s->migrator_ =
        std::make_unique<cluster::Migrator>(s->cluster_.get(), std::move(raw));
  }
  if (opts.replica_of.empty() && s->opts_.shard.repl_log) {
    // Primary crash recovery (DESIGN.md §9): commit-or-abort every
    // prepared-but-undecided cross-shard txn before the event loop serves
    // clients. Replicas resolve at PROMOTE instead, once the pull stops.
    s->ResolveCrossShardTxns();
  }

  s->poller_ = std::make_unique<Poller>(!opts.force_poll);
  s->poller_->Watch(s->listen_fd_, true, false);
  s->poller_->Watch(s->wake_r_, true, false);
  s->loop_ = std::thread(&Server::EventLoop, s.get());
  if (!opts.replica_of.empty()) {
    std::vector<Shard*> raw;
    raw.reserve(s->shards_.size());
    for (const auto& sh : s->shards_) {
      raw.push_back(sh.get());
    }
    s->repl_client_ = repl::ReplClient::Start(primary_host, primary_port, raw);
  }
  return s;
}

Server::~Server() {
  RequestShutdown();
  Wait();
  if (wake_r_ >= 0) ::close(wake_r_);
  if (wake_w_ >= 0) ::close(wake_w_);
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

bool Server::AnyShardRecovered() const {
  for (const auto& sh : shards_) {
    if (sh->recovered()) {
      return true;
    }
  }
  return false;
}

void Server::Wait() {
  if (loop_.joinable()) {
    loop_.join();
  }
}

void Server::RequestShutdown() {
  shutdown_requested_.store(true, std::memory_order_release);
  // Wake the loop in case it is parked in Wait().
  if (wake_w_ >= 0) {
    const char b = 'x';
    [[maybe_unused]] const ssize_t n = ::write(wake_w_, &b, 1);
  }
}

void Server::OnCompletion(Completion&& c) {
  {
    std::lock_guard<std::mutex> lk(comp_mu_);
    completions_.push_back(std::move(c));
  }
  // Self-pipe wakeup; EAGAIN (pipe already full of wake bytes) is fine —
  // the pending byte already guarantees a drain.
  const char b = 'c';
  [[maybe_unused]] const ssize_t n = ::write(wake_w_, &b, 1);
}

void Server::EventLoop() {
  std::vector<Poller::Event> events;
  while (!shutting_down_) {
    poller_->Wait(&events, 100);
    if (shutdown_requested_.load(std::memory_order_acquire) && !shutting_down_) {
      DoShutdown(/*conn_id=*/0, /*seq=*/0);
      break;
    }
    // Periodic work rides the wait timeout: expire WAIT-K parked batches
    // (degraded -WAITTIMEOUT delivery), expire parked session reads to
    // -STALE, and re-drive stalled submissions.
    {
      const uint64_t now_ms = NowNs() / 1000000ull;
      for (auto& sh : shards_) {
        sh->TickWait(now_ms);
        sh->TickReadStale(now_ms);
      }
    }
    RetryStalled();
    RetryTxnPending();
    for (const Poller::Event& ev : events) {
      if (shutting_down_) {
        break;
      }
      if (ev.fd == listen_fd_) {
        AcceptPending();
        continue;
      }
      if (ev.fd == wake_r_) {
        char buf[256];
        while (::read(wake_r_, buf, sizeof(buf)) > 0) {
        }
        DrainCompletions();
        continue;
      }
      const auto it = by_fd_.find(ev.fd);
      if (it == by_fd_.end()) {
        continue;  // closed earlier this round
      }
      const uint64_t id = it->second;
      if (ev.error) {
        CloseConn(id);
        continue;
      }
      if (ev.writable) {
        HandleWritable(*conns_[id]);
        if (conns_.find(id) == conns_.end()) {
          continue;
        }
      }
      if (ev.readable) {
        HandleReadable(*conns_[id]);
      }
    }
  }
}

void Server::AcceptPending() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      return;  // EAGAIN or transient error
    }
    SetNonBlocking(fd);
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    conn->id = next_conn_id_++;
    conn->parser.set_max_buffer(opts_.max_conn_in_bytes);
    by_fd_[fd] = conn->id;
    poller_->Watch(fd, true, false);
    ++accepted_;
    conns_.emplace(conn->id, std::move(conn));
  }
}

void Server::CloseConn(uint64_t id) {
  const auto it = conns_.find(id);
  if (it == conns_.end()) {
    return;
  }
  for (auto& sh : shards_) {
    sh->Unsubscribe(id);  // no-op unless `id` held a REPLSYNC stream
  }
  poller_->Forget(it->second->fd);
  by_fd_.erase(it->second->fd);
  ::close(it->second->fd);
  conns_.erase(it);
}

void Server::HandleReadable(Conn& conn) {
  if (conn.closing) {
    return;  // draining replies; further input is ignored
  }
  if (conn.paused) {
    return;  // shard backpressure: leave the bytes in the kernel buffer
  }
  char buf[65536];
  for (;;) {
    const ssize_t n = ::read(conn.fd, buf, sizeof(buf));
    if (n > 0) {
      conn.parser.Feed(buf, static_cast<size_t>(n));
      if (static_cast<size_t>(n) < sizeof(buf)) {
        break;
      }
      continue;
    }
    if (n == 0) {
      CloseConn(conn.id);
      return;
    }
    if (errno == EINTR) {
      continue;  // interrupted by a signal, not a socket failure
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      break;
    }
    CloseConn(conn.id);
    return;
  }

  ProcessInput(conn);
  if (shutting_down_ || conns_.find(conn.id) == conns_.end()) {
    return;
  }
  if (conn.WantsWrite()) {
    HandleWritable(conn);
  } else if (conn.closing && conn.inflight == 0) {
    CloseConn(conn.id);
  }
}

void Server::ProcessInput(Conn& conn) {
  std::vector<std::string> args;
  std::string perr;
  while (!conn.paused) {
    const RespParser::Status st = conn.parser.Next(&args, &perr);
    if (st == RespParser::Status::kNeedMore) {
      return;
    }
    if (st == RespParser::Status::kError) {
      // Protocol violation (or input-cap overflow): this connection's
      // stream position is lost, so reply -ERR and close it once pending
      // replies drain. Other connections are unaffected.
      if (conn.parser.overflowed()) {
        ++in_overflows_;
      } else {
        ++protocol_errors_;
      }
      CompleteInline(conn, conn.next_seq++, [&] {
        std::string r;
        AppendError(&r, "protocol error: " + perr);
        return r;
      }());
      conn.closing = true;
      return;
    }
    ++commands_;
    if (!Dispatch(conn, args)) {
      conn.closing = true;
      return;
    }
    if (shutting_down_) {
      return;  // SHUTDOWN handled inside Dispatch; conns are gone
    }
  }
}

void Server::HandleWritable(Conn& conn) {
  // Scatter-gather flush: up to kFlushIovecs chunks per writev() — shared
  // frames and coalesced tails alike go out in one syscall. A partial write
  // leaves the resume offset mid-chunk; ConsumeOut pops what the kernel
  // accepted (releasing owned buffers and shared-frame refs).
  static constexpr size_t kFlushIovecs = 64;
  struct iovec iov[kFlushIovecs];
  while (conn.WantsWrite()) {
    const size_t niov = conn.BuildIovecs(iov, kFlushIovecs);
    const ssize_t n = ::writev(conn.fd, iov, static_cast<int>(niov));
    if (n > 0) {
      ++flush_syscalls_;
      flushed_bytes_ += static_cast<uint64_t>(n);
      flush_chunks_ += niov;
      conn.ConsumeOut(static_cast<size_t>(n));
      continue;
    }
    if (errno == EINTR) {
      continue;  // interrupted by a signal, not a socket failure
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      poller_->Watch(conn.fd, !conn.paused, true);
      return;
    }
    CloseConn(conn.id);
    return;
  }
  poller_->Watch(conn.fd, !conn.paused, false);
  if (conn.closing && conn.inflight == 0 && conn.replies.empty()) {
    CloseConn(conn.id);
  }
}

void Server::PauseReads(Conn& conn) {
  if (conn.paused) {
    return;
  }
  conn.paused = true;
  poller_->Watch(conn.fd, false, conn.WantsWrite());
  stalled_conns_.push_back(conn.id);
}

bool Server::SubmitOrStall(Conn& conn, uint32_t shard_idx, Request&& req) {
  if (conn.stalled.empty()) {
    switch (shards_[shard_idx]->TrySubmit(std::move(req))) {
      case Shard::SubmitResult::kOk:
        return true;
      case Shard::SubmitResult::kStopped:
        return false;
      case Shard::SubmitResult::kFull:
        break;  // kFull left req intact: stall it below
    }
  }
  // Either the shard is full or earlier requests of this connection are
  // already stalled (order must hold). Park the request and read-pause.
  conn.stalled.push_back(StalledRequest{shard_idx, std::move(req)});
  PauseReads(conn);
  return true;
}

void Server::RetryStalled() {
  if (stalled_conns_.empty()) {
    return;
  }
  // Swap out the list: PauseReads may append to stalled_conns_ while we
  // re-run ProcessInput below (a resumed connection can stall again).
  std::vector<uint64_t> work;
  work.swap(stalled_conns_);
  for (const uint64_t id : work) {
    const auto it = conns_.find(id);
    if (it == conns_.end()) {
      continue;  // connection closed while stalled
    }
    Conn& conn = *it->second;
    while (!conn.stalled.empty()) {
      StalledRequest& front = conn.stalled.front();
      const Shard::SubmitResult r =
          shards_[front.shard]->TrySubmit(std::move(front.req));
      if (r == Shard::SubmitResult::kFull) {
        break;
      }
      if (r == Shard::SubmitResult::kStopped) {
        FailStalledRequest(conn, front.req);
      }
      conn.stalled.pop_front();
    }
    if (!conn.stalled.empty()) {
      stalled_conns_.push_back(id);  // still blocked; stay paused
      continue;
    }
    // Drained: resume reading and the commands buffered before the pause.
    conn.paused = false;
    poller_->Watch(conn.fd, true, conn.WantsWrite());
    ProcessInput(conn);
    if (shutting_down_ || conns_.find(id) == conns_.end()) {
      continue;
    }
    if (conn.WantsWrite()) {
      HandleWritable(conn);
    } else if (conn.closing && conn.inflight == 0) {
      CloseConn(conn.id);
    }
  }
}

// A stalled request met a stopping shard (shutdown). Resolve its reply slot
// so the connection does not hang on a reply that can never come.
void Server::FailStalledRequest(Conn& conn, Request& req) {
  std::string r;
  AppendError(&r, "server shutting down");
  if (req.multi != nullptr) {
    req.multi->Fail("ERR server shutting down");
    if (req.multi->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      const auto target = conns_.find(req.multi->conn_id);
      if (target != conns_.end()) {
        JNVM_DCHECK(target->second->inflight > 0);
        --target->second->inflight;
        std::string joined;
        {
          std::lock_guard<std::mutex> lk(req.multi->err_mu);
          AppendErrorCode(&joined, req.multi->error);
        }
        CompleteInline(*target->second, req.multi->seq, std::move(joined));
      }
    }
    return;
  }
  if (req.conn_id != 0) {
    JNVM_DCHECK(conn.inflight > 0);
    --conn.inflight;
    CompleteInline(conn, req.seq, std::move(r));
  }
}

void Server::CompleteInline(Conn& conn, uint64_t seq, std::string&& reply) {
  // If this seq was next in line the bytes land in `out` now; they go out
  // in HandleReadable's tail flush or on the next POLLOUT.
  conn.Complete(seq, std::move(reply));
}

bool Server::Dispatch(Conn& conn, std::vector<std::string>& args) {
  const std::string cmd = Upper(args[0]);
  if (cmd == "REPLACK") {
    // Ack frame from a REPLSYNC subscriber: REPLACK <shard> <seq> certifies
    // that the replica's log is durable through <seq>. One-way — it gets no
    // reply and consumes no command sequence, so it neither occupies the
    // reorder buffer nor corrupts the stream framing the follower reads.
    uint32_t idx = 0;
    uint64_t acked = 0;
    if (args.size() != 3 || !ParseU32(args[1], &idx) ||
        idx >= shards_.size() || !ParseU64(args[2], &acked)) {
      ++protocol_errors_;
      return false;  // malformed ack: drop the stream connection
    }
    shards_[idx]->Ack(conn.id, acked);
    return true;
  }
  const uint64_t seq = conn.next_seq++;
  auto inline_error = [&](const std::string& msg) {
    std::string r;
    AppendError(&r, msg);
    CompleteInline(conn, seq, std::move(r));
    return true;
  };
  // Error replies whose first token IS the code (-MOVED, -ASK, -TRYAGAIN,
  // -CLUSTERDOWN, -BADCONFIG) rather than the generic -ERR prefix.
  auto inline_code = [&](const std::string& msg) {
    std::string r;
    AppendErrorCode(&r, msg);
    CompleteInline(conn, seq, std::move(r));
    return true;
  };

  // ---- Transactions (DESIGN.md §9): MULTI queues, EXEC runs, DISCARD drops.
  if (cmd == "MULTI") {
    if (conn.in_multi) {
      return inline_error("MULTI calls can not be nested");
    }
    conn.in_multi = true;
    conn.txn_dirty = false;
    conn.txn_cmds.clear();
    std::string r;
    AppendSimple(&r, "OK");
    CompleteInline(conn, seq, std::move(r));
    return true;
  }
  if (cmd == "DISCARD") {
    if (!conn.in_multi) {
      return inline_error("DISCARD without MULTI");
    }
    conn.in_multi = false;
    conn.txn_dirty = false;
    conn.txn_cmds.clear();
    std::string r;
    AppendSimple(&r, "OK");
    CompleteInline(conn, seq, std::move(r));
    return true;
  }
  if (cmd == "EXEC") {
    if (args.size() != 1) {
      return inline_error("wrong number of arguments for EXEC");
    }
    if (!conn.in_multi) {
      return inline_error("EXEC without MULTI");
    }
    return DispatchExec(conn, seq);
  }
  if (conn.in_multi) {
    // Queue time: only the data subset (SET/GET/DEL) may ride in a txn, and
    // any queue-time error dirties it — EXEC then refuses the whole batch
    // with -TXNABORT rather than executing a half-valid txn.
    if (cmd == "SET" || cmd == "GET" || cmd == "DEL") {
      const size_t want = cmd == "SET" ? 3 : 2;
      if (args.size() != want) {
        conn.txn_dirty = true;
        return inline_error("wrong number of arguments for " + cmd);
      }
      if (conn.txn_cmds.size() >= kMaxArgs) {
        conn.txn_dirty = true;
        return inline_error("transaction exceeds " + std::to_string(kMaxArgs) +
                            " commands");
      }
      args[0] = cmd;  // canonical upper case for DispatchExec
      conn.txn_cmds.push_back(std::move(args));
      std::string r;
      AppendSimple(&r, "QUEUED");
      CompleteInline(conn, seq, std::move(r));
      return true;
    }
    conn.txn_dirty = true;
    return inline_error("command not allowed in MULTI: " + cmd);
  }

  if (cmd == "PING") {
    std::string r;
    AppendSimple(&r, "PONG");
    CompleteInline(conn, seq, std::move(r));
    return true;
  }
  if (cmd == "SET" || cmd == "GET" || cmd == "DEL" || cmd == "TOUCH" ||
      cmd == "HSET") {
    Request req;
    if (cmd == "SET") {
      if (args.size() != 3) {
        return inline_error("wrong number of arguments for SET");
      }
      req.op = Request::Op::kSet;
      req.value = std::move(args[2]);
    } else if (cmd == "HSET") {
      if (args.size() != 4) {
        return inline_error("wrong number of arguments for HSET");
      }
      uint32_t field;
      if (!ParseU32(args[2], &field)) {
        return inline_error("HSET field must be a decimal index");
      }
      req.op = Request::Op::kHset;
      req.field = field;
      req.value = std::move(args[3]);
    } else {
      if (args.size() != 2) {
        return inline_error("wrong number of arguments for " + cmd);
      }
      req.op = cmd == "GET"   ? Request::Op::kGet
               : cmd == "DEL" ? Request::Op::kDel
                              : Request::Op::kTouch;
    }
    req.key = std::move(args[1]);
    if (cluster_ != nullptr) {
      const bool asking = conn.asking;
      conn.asking = false;  // one-shot: ASKING covers exactly one command
      if (RouteClusterKey(conn, seq, req.key, asking, &req)) {
        return true;  // redirect answered inline
      }
    }
    req.conn_id = conn.id;
    req.seq = seq;
    const uint32_t idx = ShardFor(req.key, static_cast<uint32_t>(shards_.size()));
    if (req.op == Request::Op::kGet || req.op == Request::Op::kTouch) {
      req.min_seq = conn.MinSeqFor(idx);
    }
    ++conn.inflight;
    if (req.min_seq > 0) {
      // Session read: when the shard's applied watermark is behind the
      // connection's MINSEQ token the shard parks the read (released by the
      // apply batch that catches up, or -STALE on timeout/overflow). kReady
      // leaves the request untouched and it submits like any other read.
      switch (shards_[idx]->GateSessionRead(req, NowNs() / 1000000ull)) {
        case Shard::ReadGate::kReady:
          break;
        case Shard::ReadGate::kParked:
        case Shard::ReadGate::kStale:
          return true;  // the shard owns the completion now
      }
    }
    if (!SubmitOrStall(conn, idx, std::move(req))) {
      --conn.inflight;
      return inline_error("server shutting down");
    }
    return true;
  }
  if (cmd == "MINSEQ" || cmd == "LASTSEQ") {
    // Session-consistency plane. MINSEQ <shard> <seq> raises this
    // connection's read floor for the shard (monotone; answered inline).
    // LASTSEQ <shard> runs as a singleton control batch on the shard worker
    // and replies the sealed watermark — on a primary that covers every
    // write the connection pipelined before it, which is exactly the token
    // a client needs for read-your-writes on a replica.
    const size_t want = cmd == "MINSEQ" ? 3 : 2;
    uint32_t idx = 0;
    if (args.size() != want || !ParseU32(args[1], &idx) ||
        idx >= shards_.size()) {
      return inline_error(cmd + " expects a shard index" +
                          (cmd == "MINSEQ" ? " and a sequence number" : ""));
    }
    if (cmd == "MINSEQ") {
      uint64_t mseq = 0;
      if (!ParseU64(args[2], &mseq)) {
        return inline_error("MINSEQ seq must be a decimal sequence number");
      }
      conn.RaiseMinSeq(idx, mseq);
      std::string r;
      AppendSimple(&r, "OK");
      CompleteInline(conn, seq, std::move(r));
      return true;
    }
    Request req;
    req.op = Request::Op::kLastSeq;
    req.conn_id = conn.id;
    req.seq = seq;
    ++conn.inflight;
    if (!SubmitOrStall(conn, idx, std::move(req))) {
      --conn.inflight;
      return inline_error("server shutting down");
    }
    return true;
  }
  if (cmd == "MSET") {
    if (args.size() < 3 || (args.size() - 1) % 2 != 0) {
      return inline_error("wrong number of arguments for MSET");
    }
    const uint32_t pairs = static_cast<uint32_t>((args.size() - 1) / 2);
    if (cluster_ != nullptr) {
      // Multi-key commands cannot follow an -ASK (one redirect, many slots),
      // so every key's slot must be plainly local — owned here and not
      // mid-migration. The first offending key decides the refusal.
      conn.asking = false;
      for (uint32_t i = 0; i < pairs; ++i) {
        const uint16_t slot = cluster::SlotForKey(args[1 + 2 * i]);
        const cluster::Route rt = cluster_->Lookup(slot, /*asking=*/false);
        if (rt.action == cluster::Route::Action::kLocal && !rt.migrating) {
          continue;
        }
        if (rt.action == cluster::Route::Action::kMoved) {
          ++moved_replies_;
          return inline_code("MOVED " + std::to_string(slot) + " " + rt.addr);
        }
        if (rt.action == cluster::Route::Action::kDown) {
          return inline_code("CLUSTERDOWN slot " + std::to_string(slot) +
                             " is unassigned");
        }
        return inline_code("TRYAGAIN slot " + std::to_string(slot) +
                           " is migrating; multi-key commands need stable "
                           "slots");
      }
    }
    auto multi = std::make_shared<MultiOp>();
    multi->remaining.store(pairs, std::memory_order_relaxed);
    multi->conn_id = conn.id;
    multi->seq = seq;
    ++conn.inflight;
    for (uint32_t i = 0; i < pairs; ++i) {
      Request req;
      req.op = Request::Op::kSet;
      req.key = std::move(args[1 + 2 * i]);
      req.value = std::move(args[2 + 2 * i]);
      req.multi = multi;
      const uint32_t idx =
          ShardFor(req.key, static_cast<uint32_t>(shards_.size()));
      if (!SubmitOrStall(conn, idx, std::move(req))) {
        // Parts already queued still execute but the joined reply can no
        // longer be produced; fail the command now. The connection is
        // closing with the server anyway.
        --conn.inflight;
        return inline_error("server shutting down");
      }
    }
    return true;
  }
  if (cmd == "REPLSYNC" || cmd == "REPLSNAP") {
    // REPLSYNC <shard> <from> [nshards [epoch]]: the optional arguments let
    // the replica prove its configuration matches before the connection
    // becomes a one-way record feed. A mismatch is a hard, explicit
    // -BADCONFIG — a replica with a different shard count would route keys
    // to the wrong shards, and a different config epoch means the two nodes
    // disagree about slot ownership; silently streaming would corrupt it.
    const bool sync = cmd == "REPLSYNC";
    if (sync ? (args.size() < 3 || args.size() > 5) : args.size() != 2) {
      return inline_error("wrong number of arguments for " + cmd);
    }
    uint32_t idx = 0;
    if (!ParseU32(args[1], &idx) || idx >= shards_.size()) {
      return inline_error(cmd + " shard index out of range");
    }
    Request req;
    if (sync) {
      uint64_t from = 0;
      if (!ParseU64(args[2], &from) || from == 0) {
        return inline_error("REPLSYNC from-seq must be >= 1");
      }
      if (args.size() >= 4) {
        uint32_t nshards = 0;
        if (!ParseU32(args[3], &nshards)) {
          return inline_error("REPLSYNC nshards must be decimal");
        }
        if (nshards != shards_.size()) {
          return inline_code("BADCONFIG shard count mismatch: primary has " +
                             std::to_string(shards_.size()) +
                             " shards, replica has " + std::to_string(nshards));
        }
      }
      if (args.size() == 5) {
        uint64_t epoch = 0;
        if (!ParseU64(args[4], &epoch)) {
          return inline_error("REPLSYNC epoch must be decimal");
        }
        const uint64_t mine = cluster_ != nullptr ? cluster_->epoch() : 0;
        if (epoch != mine) {
          return inline_code("BADCONFIG config epoch mismatch: primary at " +
                             std::to_string(mine) + ", replica at " +
                             std::to_string(epoch));
        }
      }
      req.op = Request::Op::kReplSync;
      req.repl_seq = from;
    } else {
      req.op = Request::Op::kReplSnap;
    }
    req.conn_id = conn.id;
    req.seq = seq;
    ++conn.inflight;
    if (!SubmitOrStall(conn, idx, std::move(req))) {
      --conn.inflight;
      return inline_error("server shutting down");
    }
    return true;
  }
  if (cmd == "PROMOTE") {
    if (args.size() != 1) {
      return inline_error("wrong number of arguments for PROMOTE");
    }
    // Quiesce the pull side first: joins every pull thread, so no kApply
    // can land after the audit below starts.
    if (repl_client_ != nullptr) {
      repl_client_->Stop();
    }
    // Resolve staged cross-shard txns against the mirrored decision records
    // before the audit/flip: the resolution requests queue ahead of each
    // shard's kPromote, so a txn whose decision reached this replica commits
    // and the rest abort — never a silent partial apply.
    ResolveCrossShardTxns();
    auto multi = std::make_shared<MultiOp>();
    multi->remaining.store(static_cast<uint32_t>(shards_.size()),
                           std::memory_order_relaxed);
    multi->conn_id = conn.id;
    multi->seq = seq;
    // Two-phase: each shard only audits; the join flips this whole list
    // writable iff every audit passed (see MultiOp::promote_shards).
    multi->promote_shards.reserve(shards_.size());
    for (auto& sh : shards_) {
      multi->promote_shards.push_back(sh.get());
    }
    ++conn.inflight;
    for (uint32_t i = 0; i < shards_.size(); ++i) {
      Request req;
      req.op = Request::Op::kPromote;
      req.multi = multi;
      if (!SubmitOrStall(conn, i, std::move(req))) {
        --conn.inflight;
        return inline_error("server shutting down");
      }
    }
    return true;
  }
  // ---- Cluster plane (DESIGN.md §10) ---------------------------------------
  if (cmd == "ASKING") {
    if (cluster_ == nullptr) {
      return inline_error("cluster support is disabled");
    }
    conn.asking = true;
    std::string r;
    AppendSimple(&r, "OK");
    CompleteInline(conn, seq, std::move(r));
    return true;
  }
  if (cmd == "CLUSTER") {
    return DispatchCluster(conn, seq, args);
  }
  if (cmd == "MIGSTART") {
    return DispatchMigStart(conn, seq, args);
  }
  if (cmd == "MIGAPPLY") {
    return DispatchMigApply(conn, seq, args);
  }
  if (cmd == "MIGCOMMIT") {
    // THE commit point of a migration: the importing range's owner words
    // flip to this node, durably, before the +OK goes back to the source.
    uint32_t lo = 0, hi = 0;
    uint64_t epoch = 0;
    if (cluster_ == nullptr) {
      return inline_error("cluster support is disabled");
    }
    if (args.size() != 4 || !ParseU32(args[1], &lo) || !ParseU32(args[2], &hi) ||
        !ParseU64(args[3], &epoch)) {
      return inline_error("MIGCOMMIT expects lo hi epoch");
    }
    std::string err;
    if (!cluster_->CommitImport(lo, hi, epoch, &err)) {
      return inline_error("MIGCOMMIT: " + err);
    }
    std::string r;
    AppendSimple(&r, "OK");
    CompleteInline(conn, seq, std::move(r));
    return true;
  }
  if (cmd == "MIGABORT") {
    // Best-effort from a rolling-back source; always +OK — an import that
    // already ended (or never started) needs nothing. The keys a dead
    // import copied are unserved (owners still name the source) and the
    // next MIGSTART purges the range before copying again.
    if (cluster_ == nullptr) {
      return inline_error("cluster support is disabled");
    }
    std::string err;
    cluster_->AbortImport(&err);
    std::string r;
    AppendSimple(&r, "OK");
    CompleteInline(conn, seq, std::move(r));
    return true;
  }
  if (cmd == "STATS") {
    std::string r;
    AppendBulk(&r, BuildStats());
    CompleteInline(conn, seq, std::move(r));
    return true;
  }
  if (cmd == "SHUTDOWN") {
    DoShutdown(conn.id, seq);
    return true;
  }
  return inline_error("unknown command '" + args[0] + "'");
}

// ---- Cluster plane (DESIGN.md §10) ------------------------------------------

bool Server::RouteClusterKey(Conn& conn, uint64_t seq, const std::string& key,
                             bool asking, Request* req) {
  const uint16_t slot = cluster::SlotForKey(key);
  const cluster::Route rt = cluster_->Lookup(slot, asking);
  std::string r;
  switch (rt.action) {
    case cluster::Route::Action::kLocal:
      if (rt.migrating && !rt.addr.empty()) {
        // Serve here, but a key miss now means "already moved (or never
        // existed)": the shard answers -ASK <slot> <addr> instead of a
        // plain miss, and writes of missing keys redirect the same way.
        req->ask_addr = std::to_string(slot) + " " + rt.addr;
      }
      return false;
    case cluster::Route::Action::kMoved:
      ++moved_replies_;
      AppendErrorCode(&r, "MOVED " + std::to_string(slot) + " " + rt.addr);
      break;
    case cluster::Route::Action::kTryAgain:
      AppendErrorCode(&r, "TRYAGAIN slot " + std::to_string(slot) +
                              " is frozen for handoff");
      break;
    case cluster::Route::Action::kDown:
      AppendErrorCode(&r, "CLUSTERDOWN slot " + std::to_string(slot) +
                              " is unassigned");
      break;
  }
  CompleteInline(conn, seq, std::move(r));
  return true;
}

bool Server::DispatchCluster(Conn& conn, uint64_t seq,
                             std::vector<std::string>& args) {
  auto reply_err = [&](const std::string& msg) {
    std::string r;
    AppendError(&r, msg);
    CompleteInline(conn, seq, std::move(r));
    return true;
  };
  auto reply_ok = [&] {
    std::string r;
    AppendSimple(&r, "OK");
    CompleteInline(conn, seq, std::move(r));
    return true;
  };
  if (cluster_ == nullptr) {
    return reply_err("cluster support is disabled");
  }
  if (args.size() < 2) {
    return reply_err("CLUSTER expects a subcommand");
  }
  const std::string sub = Upper(args[1]);
  if (sub == "MEET") {
    // CLUSTER MEET <index> <host:port> — register a peer in the node table.
    uint32_t idx = 0;
    if (args.size() != 4 || !ParseU32(args[2], &idx)) {
      return reply_err("CLUSTER MEET expects index host:port");
    }
    std::string err;
    if (!cluster_->Meet(idx, args[3], &err)) {
      return reply_err("CLUSTER MEET: " + err);
    }
    return reply_ok();
  }
  if (sub == "SLOTS") {
    // One bulk "lo hi host:port" per contiguous owned run — the client's
    // slot-cache bootstrap.
    std::vector<std::string> runs;
    uint16_t run_owner = cluster::kNoOwner;
    uint32_t run_lo = 0;
    const auto flush = [&](uint32_t end_exclusive) {
      if (run_owner == cluster::kNoOwner) {
        return;
      }
      const std::string addr = cluster_->NodeAddr(run_owner);
      if (!addr.empty()) {
        runs.push_back(std::to_string(run_lo) + " " +
                       std::to_string(end_exclusive - 1) + " " + addr);
      }
    };
    for (uint32_t slot = 0; slot < cluster::kNumSlots; ++slot) {
      const uint16_t o = cluster_->OwnerOf(static_cast<uint16_t>(slot));
      if (o != run_owner) {
        flush(slot);
        run_owner = o;
        run_lo = slot;
      }
    }
    flush(cluster::kNumSlots);
    std::string r;
    AppendArrayHeader(&r, runs.size());
    for (const std::string& run : runs) {
      AppendBulk(&r, run);
    }
    CompleteInline(conn, seq, std::move(r));
    return true;
  }
  if (sub == "SETSLOT") {
    if (args.size() < 3) {
      return reply_err("CLUSTER SETSLOT expects ASSIGN or MIGRATE");
    }
    const std::string verb = Upper(args[2]);
    uint32_t lo = 0, hi = 0, node = 0;
    if (args.size() < 6 || !ParseU32(args[3], &lo) || !ParseU32(args[4], &hi) ||
        !ParseU32(args[5], &node)) {
      return reply_err("CLUSTER SETSLOT " + verb + " expects lo hi node");
    }
    if (verb == "ASSIGN") {
      // Static assignment (bootstrap / tests): rewrite the range's owner
      // words and bump the epoch. No data moves.
      std::string err;
      if (!cluster_->AssignRange(lo, hi, node, &err)) {
        return reply_err("CLUSTER SETSLOT ASSIGN: " + err);
      }
      return reply_ok();
    }
    if (verb == "MIGRATE") {
      // Live migration: spawns the Migrator thread; progress via CLUSTER
      // INFO. The optional throttle widens the crash window for CI.
      cluster::MigrateOptions mo;
      mo.lo = lo;
      mo.hi = hi;
      mo.peer = node;
      if (args.size() >= 7) {
        uint32_t throttle = 0;
        if (!ParseU32(args[6], &throttle)) {
          return reply_err("CLUSTER SETSLOT MIGRATE: bad throttle_ms");
        }
        mo.throttle_ms = throttle;
      }
      std::string err;
      if (!migrator_->Start(mo, &err)) {
        return reply_err("CLUSTER SETSLOT MIGRATE: " + err);
      }
      return reply_ok();
    }
    return reply_err("CLUSTER SETSLOT expects ASSIGN or MIGRATE");
  }
  if (sub == "INFO") {
    std::string text = cluster_->Describe();
    text += "migrator:" + migrator_->status() + "\n";
    uint32_t lo = 0, hi = 0, peer = 0;
    if (cluster_->mig_state() != cluster::MigState::kNone) {
      cluster_->MigRange(&lo, &hi, &peer);
      uint64_t residual = 0;
      for (const auto& sh : shards_) {
        residual += sh->KeysInSlotRange(lo, hi);
      }
      text += "keys_in_mig_range:" + std::to_string(residual) + "\n";
    }
    std::string r;
    AppendBulk(&r, text);
    CompleteInline(conn, seq, std::move(r));
    return true;
  }
  return reply_err("unknown CLUSTER subcommand '" + args[1] + "'");
}

bool Server::DispatchMigStart(Conn& conn, uint64_t seq,
                              std::vector<std::string>& args) {
  auto reply_err = [&](const std::string& msg, bool code = false) {
    std::string r;
    if (code) {
      AppendErrorCode(&r, msg);
    } else {
      AppendError(&r, msg);
    }
    CompleteInline(conn, seq, std::move(r));
    return true;
  };
  if (cluster_ == nullptr) {
    return reply_err("cluster support is disabled");
  }
  uint32_t lo = 0, hi = 0, src = 0;
  uint64_t src_epoch = 0;
  if (args.size() != 5 || !ParseU32(args[1], &lo) || !ParseU32(args[2], &hi) ||
      !ParseU32(args[3], &src) || !ParseU64(args[4], &src_epoch)) {
    return reply_err("MIGSTART expects lo hi src-node src-epoch");
  }
  if (lo > hi || hi >= cluster::kNumSlots) {
    return reply_err("MIGSTART: bad slot range");
  }
  // "+OWNED" short-circuit: a previous drive of this migration durably
  // committed here; the source learns it can only roll forward.
  if (cluster_->OwnsRange(lo, hi)) {
    std::string r;
    AppendSimple(&r, "OWNED");
    CompleteInline(conn, seq, std::move(r));
    return true;
  }
  // Config validation — explicit -BADCONFIG, never a silent accept: the
  // source must be a node this table knows, and no slot of the range may be
  // owned by a third node (the two tables would disagree about ownership).
  if (src >= cluster::ClusterMetaRoot::kMaxNodes ||
      cluster_->NodeAddr(src).empty()) {
    return reply_err("BADCONFIG unknown source node " + std::to_string(src),
                     /*code=*/true);
  }
  for (uint32_t slot = lo; slot <= hi; ++slot) {
    const uint16_t o = cluster_->OwnerOf(static_cast<uint16_t>(slot));
    if (o != cluster::kNoOwner && o != src && o != cluster_->self()) {
      return reply_err("BADCONFIG slot " + std::to_string(slot) +
                           " is owned by node " + std::to_string(o) +
                           ", not the migration source",
                       /*code=*/true);
    }
  }
  std::string err;
  if (!cluster_->StartImporting(lo, hi, src, &err)) {
    return reply_err("MIGSTART: " + err);
  }
  // Purge the range on every shard before the copy streams in: a re-driven
  // migration must not leave keys a previous partial copy wrote and the
  // source has since deleted. The joined reply is +IMPORTING.
  auto multi = std::make_shared<MultiOp>();
  multi->remaining.store(static_cast<uint32_t>(shards_.size()),
                         std::memory_order_relaxed);
  multi->conn_id = conn.id;
  multi->seq = seq;
  multi->ok_reply = "IMPORTING";
  ++conn.inflight;
  for (uint32_t i = 0; i < shards_.size(); ++i) {
    Request req;
    req.op = Request::Op::kSlotPurge;
    req.slot_lo = static_cast<uint16_t>(lo);
    req.slot_hi = static_cast<uint16_t>(hi);
    req.multi = multi;
    if (!SubmitOrStall(conn, i, std::move(req))) {
      --conn.inflight;
      return reply_err("server shutting down");
    }
  }
  return true;
}

bool Server::DispatchMigApply(Conn& conn, uint64_t seq,
                              std::vector<std::string>& args) {
  auto reply_err = [&](const std::string& msg) {
    std::string r;
    AppendError(&r, msg);
    CompleteInline(conn, seq, std::move(r));
    return true;
  };
  if (cluster_ == nullptr) {
    return reply_err("cluster support is disabled");
  }
  if (args.size() != 2) {
    return reply_err("MIGAPPLY expects a batch frame");
  }
  if (cluster_->mig_state() != cluster::MigState::kImporting) {
    return reply_err("MIGAPPLY: no import in progress");
  }
  std::vector<repl::ReplOp> ops;
  if (!repl::DecodeBatch(args[1], &ops)) {
    return reply_err("MIGAPPLY: bad batch frame");
  }
  if (ops.empty()) {
    std::string r;
    AppendSimple(&r, "OK");
    CompleteInline(conn, seq, std::move(r));
    return true;
  }
  // Fan the ops out to their owning shards (the slot hash places keys on
  // nodes; the shard hash places them on workers — decorrelated, so one
  // migration chunk touches many shards).
  std::vector<std::vector<repl::ReplOp>> per_shard(shards_.size());
  for (repl::ReplOp& op : ops) {
    per_shard[ShardFor(op.key, static_cast<uint32_t>(shards_.size()))]
        .push_back(std::move(op));
  }
  uint32_t participants = 0;
  for (const auto& v : per_shard) {
    participants += v.empty() ? 0 : 1;
  }
  auto multi = std::make_shared<MultiOp>();
  multi->remaining.store(participants, std::memory_order_relaxed);
  multi->conn_id = conn.id;
  multi->seq = seq;
  ++conn.inflight;
  for (uint32_t i = 0; i < per_shard.size(); ++i) {
    if (per_shard[i].empty()) {
      continue;
    }
    Request req;
    req.op = Request::Op::kMigApply;
    req.mig_ops = std::move(per_shard[i]);
    req.multi = multi;
    if (!SubmitOrStall(conn, i, std::move(req))) {
      --conn.inflight;
      return reply_err("server shutting down");
    }
  }
  return true;
}

// ---- Transactions (DESIGN.md §9) -------------------------------------------

bool Server::DispatchExec(Conn& conn, uint64_t seq) {
  std::vector<std::vector<std::string>> cmds = std::move(conn.txn_cmds);
  const bool dirty = conn.txn_dirty;
  conn.in_multi = false;
  conn.txn_dirty = false;
  conn.txn_cmds.clear();
  if (dirty) {
    std::string r;
    AppendErrorCode(&r, "TXNABORT transaction discarded because of previous errors");
    CompleteInline(conn, seq, std::move(r));
    return true;
  }
  if (cmds.empty()) {
    std::string r;
    AppendArrayHeader(&r, 0);
    CompleteInline(conn, seq, std::move(r));
    return true;
  }
  if (cluster_ != nullptr) {
    // A transaction's atomicity lives inside this node's shards; every key
    // must map to a plainly-local slot (owned here, not mid-migration) or
    // the whole EXEC is refused with the route's redirect.
    for (const std::vector<std::string>& a : cmds) {
      const uint16_t slot = cluster::SlotForKey(a[1]);
      const cluster::Route rt = cluster_->Lookup(slot, /*asking=*/false);
      if (rt.action == cluster::Route::Action::kLocal && !rt.migrating) {
        continue;
      }
      std::string r;
      if (rt.action == cluster::Route::Action::kMoved) {
        ++moved_replies_;
        AppendErrorCode(&r, "MOVED " + std::to_string(slot) + " " + rt.addr);
      } else if (rt.action == cluster::Route::Action::kDown) {
        AppendErrorCode(&r, "CLUSTERDOWN slot " + std::to_string(slot) +
                                " is unassigned");
      } else {
        AppendErrorCode(&r, "TRYAGAIN slot " + std::to_string(slot) +
                                " is migrating; transactions need stable "
                                "slots");
      }
      CompleteInline(conn, seq, std::move(r));
      return true;
    }
  }

  auto t = std::make_shared<txn::TxnState>();
  t->id = txn_ids_.Next();
  t->conn_id = conn.id;
  t->reply_seq = seq;
  t->nops = cmds.size();
  t->replies.resize(cmds.size());

  // Partition the ops across shards, preserving txn order within each part.
  std::map<uint32_t, txn::TxnPart> parts;  // ordered: lowest shard first
  for (size_t i = 0; i < cmds.size(); ++i) {
    std::vector<std::string>& a = cmds[i];
    txn::TxnOp op;
    op.kind = a[0] == "SET"   ? txn::TxnOp::Kind::kSet
              : a[0] == "GET" ? txn::TxnOp::Kind::kGet
                              : txn::TxnOp::Kind::kDel;
    op.key = std::move(a[1]);
    if (op.kind == txn::TxnOp::Kind::kSet) {
      op.value = std::move(a[2]);
    }
    op.reply_index = i;
    const uint32_t idx = ShardFor(op.key, static_cast<uint32_t>(shards_.size()));
    txn::TxnPart& part = parts[idx];
    part.shard = idx;
    part.ops.push_back(std::move(op));
  }
  t->parts.reserve(parts.size());
  for (auto& [idx, part] : parts) {
    t->parts.push_back(std::move(part));
  }
  t->single_shard = t->parts.size() == 1;
  // Coordinator = lowest shard that may write (SET/DEL): its replication
  // log carries the decision record. A pure-read txn never seals one, so
  // the choice is moot there.
  t->coordinator = t->parts[0].shard;
  for (const txn::TxnPart& p : t->parts) {
    bool writes = false;
    for (const txn::TxnOp& op : p.ops) {
      if (op.kind != txn::TxnOp::Kind::kGet) {
        writes = true;
        break;
      }
    }
    if (writes) {
      t->coordinator = p.shard;
      break;
    }
  }

  // Phase 1: single-shard txns run their whole commit as one kTxnExec
  // record (the fast path — one record, one Psync, group-commit batched);
  // cross-shard txns prepare on every participant.
  ++conn.inflight;
  t->remaining.store(static_cast<uint32_t>(t->parts.size()),
                     std::memory_order_release);
  for (uint32_t i = 0; i < t->parts.size(); ++i) {
    Request req;
    req.op = t->single_shard ? Request::Op::kTxnExec : Request::Op::kTxnPrepare;
    req.key = txn::TxnIdKey(t->id);
    req.txn = t;
    req.txn_part = i;
    SubmitTxn(t->parts[i].shard, std::move(req));
  }
  return true;
}

void Server::AdvanceTxn(const std::shared_ptr<txn::TxnState>& t) {
  if (t->Failed()) {
    // Abort is always explicit: drop whatever staged with abort-marker
    // records (recovery and replicas observe the same outcome), then tell
    // the client. Parts that never staged (has_writes false) need nothing.
    const std::string idkey = txn::TxnIdKey(t->id);
    for (const txn::TxnPart& p : t->parts) {
      if (!p.has_writes) {
        continue;
      }
      Request req;
      req.op = Request::Op::kTxnAbortMark;
      req.key = idkey;
      SubmitTxn(p.shard, std::move(req));
    }
    DeliverTxnReply(t);
    return;
  }
  const int phase = t->phase.load(std::memory_order_acquire);
  if (phase == txn::TxnState::kPhasePrepare) {
    if (t->single_shard) {
      DeliverTxnReply(t);  // the kTxnExec record was the commit
      return;
    }
    const txn::Decision d = t->BuildDecision();
    if (d.parts.empty()) {
      DeliverTxnReply(t);  // pure-read cross-shard txn: nothing to commit
      return;
    }
    // Phase 2: seal the decision record in the coordinator's log — the
    // durability point of the whole txn.
    t->phase.store(txn::TxnState::kPhaseDecide, std::memory_order_release);
    t->remaining.store(1, std::memory_order_release);
    Request req;
    req.op = Request::Op::kTxnDecide;
    req.key = txn::TxnIdKey(t->id);
    txn::EncodeDecision(d, &req.value);
    req.txn = t;
    for (uint32_t i = 0; i < t->parts.size(); ++i) {
      if (t->parts[i].shard == t->coordinator) {
        req.txn_part = i;
        break;
      }
    }
    SubmitTxn(t->coordinator, std::move(req));
    return;
  }
  // Phase 2 joined: the decision is sealed (and WAIT-K acked or timed out).
  // Phase 3 fans commit markers to the other write participants — fire and
  // forget, because a crash here is repaired from the decision record at
  // recovery — then the EXEC answers.
  t->phase.store(txn::TxnState::kPhaseApply, std::memory_order_release);
  const std::string idkey = txn::TxnIdKey(t->id);
  for (const txn::TxnPart& p : t->parts) {
    if (!p.has_writes || p.shard == t->coordinator) {
      continue;
    }
    Request req;
    req.op = Request::Op::kTxnApply;
    req.key = idkey;
    SubmitTxn(p.shard, std::move(req));
  }
  DeliverTxnReply(t);
}

void Server::DeliverTxnReply(const std::shared_ptr<txn::TxnState>& t) {
  std::string r;
  if (t->Failed()) {
    AppendErrorCode(&r, "TXNABORT " + t->AbortReason());
  } else if (t->WaitTimedOut()) {
    // Committed locally; the WAIT-K replication quorum missed the deadline.
    // Same degraded contract as a plain write's -WAITTIMEOUT.
    AppendErrorCode(&r,
                    "WAITTIMEOUT txn committed locally; replication ack "
                    "quorum not reached");
  } else {
    AppendArrayHeader(&r, t->nops);
    std::lock_guard<std::mutex> lk(t->mu);
    for (const std::string& frag : t->replies) {
      r += frag;
    }
  }
  const auto it = conns_.find(t->conn_id);
  if (it == conns_.end()) {
    return;  // client went away; the txn outcome stands regardless
  }
  Conn& conn = *it->second;
  JNVM_DCHECK(conn.inflight > 0);
  --conn.inflight;
  if (conn.Complete(t->reply_seq, std::move(r))) {
    if (!EnforceOutCap(conn)) {
      HandleWritable(conn);
    }
  }
}

void Server::SubmitTxn(uint32_t shard_idx, Request&& req) {
  // Internal txn-plane submission: never blocks the event loop and never
  // read-pauses a connection. Full queues park the request here and retry
  // on loop ticks / completion drains; a stopping shard fails the txn and
  // counts the phase join down itself so the reply still resolves.
  switch (shards_[shard_idx]->TrySubmit(std::move(req))) {
    case Shard::SubmitResult::kOk:
      return;
    case Shard::SubmitResult::kFull:
      txn_pending_.emplace_back(shard_idx, std::move(req));
      return;
    case Shard::SubmitResult::kStopped:
      if (req.txn != nullptr) {
        req.txn->Fail("server shutting down");
        if (req.txn->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          AdvanceTxn(req.txn);
        }
      }
      return;
  }
}

void Server::RetryTxnPending() {
  // One pass over the queue; still-full shards re-park at the back.
  size_t n = txn_pending_.size();
  while (n-- > 0 && !txn_pending_.empty()) {
    auto item = std::move(txn_pending_.front());
    txn_pending_.pop_front();
    SubmitTxn(item.first, std::move(item.second));
  }
}

void Server::ResolveCrossShardTxns() {
  // Recovery matrix (DESIGN.md §9): a prepared-but-undecided txn commits
  // iff its coordinator's log holds the sealed decision record; otherwise
  // it aborts — both via explicit records, applied idempotently. Decisions
  // whose participant provably never received its prepare (gapless logs)
  // yield repair actions replaying the writes from the decision itself.
  std::vector<txn::ShardTxnView> views;
  views.reserve(shards_.size());
  for (const auto& sh : shards_) {
    views.push_back(sh->TxnView());
  }
  for (const txn::ResolutionAction& a : txn::PlanResolution(views)) {
    Request req;
    req.key = txn::TxnIdKey(a.id);
    if (!a.commit) {
      req.op = Request::Op::kTxnAbortMark;
    } else if (a.repair) {
      req.op = Request::Op::kTxnRepair;
      req.field = a.coordinator;
      req.value = a.repair_writes_frame;
    } else {
      req.op = Request::Op::kTxnApply;
    }
    SubmitTxn(a.shard, std::move(req));
  }
}

void Server::DrainCompletions() {
  std::vector<Completion> batch;
  {
    std::lock_guard<std::mutex> lk(comp_mu_);
    batch.swap(completions_);
  }
  // Flushes are deferred to the end of the round: every completion a
  // connection receives in this drain lands in its chunk queue first, then
  // one writev ships them all — N sealed batches fanning out to a
  // subscriber cost one syscall, not N.
  std::vector<uint64_t> dirty;
  const auto mark_dirty = [&dirty](Conn& conn) {
    if (!conn.flush_pending) {
      conn.flush_pending = true;
      dirty.push_back(conn.id);
    }
  };
  for (Completion& c : batch) {
    if (c.txn != nullptr) {
      // Txn phase join: advance the 2PC regardless of client liveness —
      // the decision and commit markers must still seal even when the
      // issuing connection is gone.
      AdvanceTxn(c.txn);
      continue;
    }
    const auto it = conns_.find(c.conn_id);
    if (it == conns_.end()) {
      continue;  // client went away before its reply
    }
    Conn& conn = *it->second;
    if (c.stream) {
      // Replication-stream frame: not a command reply, so it neither holds
      // an inflight slot nor passes the reorder buffer — by subscription
      // time every earlier reply on this connection has flushed. The frame
      // is enqueued by reference (one serialization shared by every
      // subscriber); the cap still counts its full logical size, so a
      // subscriber that stops reading is evicted at the same backlog as
      // with private copies.
      if (c.frame != nullptr) {
        ++frame_refs_;
        frame_bytes_ += c.frame->size();
        conn.AppendFrame(std::move(c.frame));
      } else {
        conn.AppendOut(std::move(c.reply));  // backlog replay path
      }
      if (!EnforceOutCap(conn)) {
        mark_dirty(conn);
      }
      continue;
    }
    JNVM_DCHECK(conn.inflight > 0);
    --conn.inflight;
    if (conn.Complete(c.seq, std::move(c.reply))) {
      if (!EnforceOutCap(conn)) {
        mark_dirty(conn);
      }
    }
  }
  for (const uint64_t id : dirty) {
    const auto it = conns_.find(id);
    if (it == conns_.end()) {
      continue;  // evicted later in the same round
    }
    it->second->flush_pending = false;
    HandleWritable(*it->second);
  }
  // Completions mean shard queues drained: stalled submissions may fit now.
  RetryStalled();
  RetryTxnPending();
}

bool Server::EnforceOutCap(Conn& conn) {
  if (conn.pending_out_bytes() <= opts_.max_conn_out_bytes) {
    return false;
  }
  ++out_overflows_;
  CloseConn(conn.id);
  return true;
}

std::string Server::BuildStats() {
  std::string out;
  char line[512];
  std::snprintf(line, sizeof(line),
                "server: shards=%zu batch=%u backend=%s poller=%s conns=%zu "
                "accepted=%llu commands=%llu protocol_errors=%llu "
                "in_overflows=%llu out_overflows=%llu\n",
                shards_.size(), opts_.shard.batch, opts_.shard.backend.c_str(),
                poller_->using_epoll() ? "epoll" : "poll", conns_.size(),
                static_cast<unsigned long long>(accepted_),
                static_cast<unsigned long long>(commands_),
                static_cast<unsigned long long>(protocol_errors_),
                static_cast<unsigned long long>(in_overflows_),
                static_cast<unsigned long long>(out_overflows_));
  out += line;
  // chunks_per_flush ×100 (two implied decimals) keeps the dump integer-only.
  const uint64_t cpf100 =
      flush_syscalls_ == 0 ? 0 : flush_chunks_ * 100 / flush_syscalls_;
  std::snprintf(line, sizeof(line),
                "output: flush_syscalls=%llu flushed_bytes=%llu "
                "chunks_per_flush=%llu.%02llu frame_refs=%llu "
                "frame_bytes=%llu\n",
                static_cast<unsigned long long>(flush_syscalls_),
                static_cast<unsigned long long>(flushed_bytes_),
                static_cast<unsigned long long>(cpf100 / 100),
                static_cast<unsigned long long>(cpf100 % 100),
                static_cast<unsigned long long>(frame_refs_),
                static_cast<unsigned long long>(frame_bytes_));
  out += line;
  uint64_t records = 0, elided = 0, puts = 0, gets = 0, updates = 0, dels = 0;
  uint64_t txn_prep = 0, txn_comm = 0, txn_abrt = 0, txn_infl = 0, txn_dec = 0;
  uint64_t ask_replies = 0, mig_applied = 0;
  for (const auto& sh : shards_) {
    const ShardStats s = sh->Stats();
    ask_replies += s.ask_replies;
    mig_applied += s.mig_applied_ops;
    records += s.records;
    elided += s.elided_fences;
    puts += s.ops.puts;
    gets += s.ops.gets;
    updates += s.ops.updates;
    dels += s.ops.deletes;
    txn_prep += s.txn.prepared;
    txn_comm += s.txn.committed;
    txn_abrt += s.txn.aborted;
    txn_infl += s.txn.inflight;
    txn_dec += s.txn.decision_records;
    std::snprintf(
        line, sizeof(line),
        "shard%u: records=%llu queue=%llu batches=%llu max_batch=%llu "
        "elided_fences=%llu puts=%llu gets=%llu misses=%llu updates=%llu "
        "deletes=%llu bytes_w=%llu bytes_r=%llu cache_hits=%llu "
        "cache_misses=%llu psyncs=%llu pfences=%llu\n",
        sh->index(), static_cast<unsigned long long>(s.records),
        static_cast<unsigned long long>(s.queue_depth),
        static_cast<unsigned long long>(s.batches),
        static_cast<unsigned long long>(s.max_batch),
        static_cast<unsigned long long>(s.elided_fences),
        static_cast<unsigned long long>(s.ops.puts),
        static_cast<unsigned long long>(s.ops.gets),
        static_cast<unsigned long long>(s.ops.get_misses),
        static_cast<unsigned long long>(s.ops.updates),
        static_cast<unsigned long long>(s.ops.deletes),
        static_cast<unsigned long long>(s.ops.bytes_written),
        static_cast<unsigned long long>(s.ops.bytes_read),
        static_cast<unsigned long long>(s.cache.hits),
        static_cast<unsigned long long>(s.cache.misses),
        static_cast<unsigned long long>(s.device.psyncs),
        static_cast<unsigned long long>(s.device.pfences));
    out += line;
    if (s.repl.enabled) {
      std::snprintf(
          line, sizeof(line),
          "repl%u: role=%s sealed=%llu start=%llu applied=%llu "
          "log_bytes=%llu log_segments=%llu subs=%llu wait_acks=%u "
          "acked=%llu parked=%llu wait_timeouts=%llu stream_frames=%llu "
          "stream_frame_bytes=%llu apply_batch=%u parked_reads=%llu "
          "released_reads=%llu stale_reads=%llu%s\n",
          sh->index(), s.repl.follower ? "replica" : "primary",
          static_cast<unsigned long long>(s.repl.sealed_seq),
          static_cast<unsigned long long>(s.repl.start_seq),
          static_cast<unsigned long long>(s.repl.applied_batches),
          static_cast<unsigned long long>(s.repl.log_bytes),
          static_cast<unsigned long long>(s.repl.log_segments),
          static_cast<unsigned long long>(s.repl.subscribers),
          s.repl.wait_acks,
          static_cast<unsigned long long>(s.repl.acked_seq),
          static_cast<unsigned long long>(s.repl.parked_batches),
          static_cast<unsigned long long>(s.repl.wait_timeouts),
          static_cast<unsigned long long>(s.repl.stream_frames),
          static_cast<unsigned long long>(s.repl.stream_frame_bytes),
          s.repl.apply_batch,
          static_cast<unsigned long long>(s.repl.parked_reads),
          static_cast<unsigned long long>(s.repl.released_reads),
          static_cast<unsigned long long>(s.repl.stale_reads),
          s.repl.needs_snapshot ? " needs_snapshot" : "");
      out += line;
    }
  }
  if (repl_client_ != nullptr) {
    const repl::ReplClientStats rs = repl_client_->Stats();
    std::snprintf(line, sizeof(line),
                  "replclient: received=%llu snapshots=%llu resyncs=%llu "
                  "gap_resyncs=%llu bad_configs=%llu\n",
                  static_cast<unsigned long long>(rs.records_received),
                  static_cast<unsigned long long>(rs.snapshots_installed),
                  static_cast<unsigned long long>(rs.resyncs),
                  static_cast<unsigned long long>(rs.gap_resyncs),
                  static_cast<unsigned long long>(rs.bad_configs));
    out += line;
  }
  std::snprintf(line, sizeof(line),
                "txn: committed=%llu aborted=%llu prepared=%llu inflight=%llu "
                "decision_records=%llu\n",
                static_cast<unsigned long long>(txn_comm),
                static_cast<unsigned long long>(txn_abrt),
                static_cast<unsigned long long>(txn_prep),
                static_cast<unsigned long long>(txn_infl),
                static_cast<unsigned long long>(txn_dec));
  out += line;
  if (cluster_ != nullptr) {
    std::snprintf(
        line, sizeof(line),
        "cluster: epoch=%llu slots_owned=%llu migrations_in=%llu "
        "migrations_out=%llu moved_replies=%llu ask_replies=%llu "
        "mig_applied_ops=%llu\n",
        static_cast<unsigned long long>(cluster_->epoch()),
        static_cast<unsigned long long>(cluster_->slots_owned()),
        static_cast<unsigned long long>(cluster_->migrations_in()),
        static_cast<unsigned long long>(cluster_->migrations_out()),
        static_cast<unsigned long long>(moved_replies_),
        static_cast<unsigned long long>(ask_replies),
        static_cast<unsigned long long>(mig_applied));
    out += line;
  }
  std::snprintf(line, sizeof(line),
                "total: records=%llu elided_fences=%llu puts=%llu gets=%llu "
                "updates=%llu deletes=%llu\n",
                static_cast<unsigned long long>(records),
                static_cast<unsigned long long>(elided),
                static_cast<unsigned long long>(puts),
                static_cast<unsigned long long>(gets),
                static_cast<unsigned long long>(updates),
                static_cast<unsigned long long>(dels));
  out += line;
  return out;
}

void Server::DoShutdown(uint64_t conn_id, uint64_t seq) {
  shutting_down_ = true;
  // 1. Stop intake: no new connections, and Submit() starts failing as each
  //    shard flips to stopping.
  poller_->Forget(listen_fd_);
  ::close(listen_fd_);
  listen_fd_ = -1;
  // On a replica, stop the pull loops before draining the shards so no
  // kApply arrives once the quiesce begins.
  if (repl_client_ != nullptr) {
    repl_client_->Stop();
  }

  // 2. Quiesce shards: drains every queued request, joins the workers,
  //    Psyncs, audits integrity (I1–I7) and saves the device images.
  shutdown_report_.shards.clear();
  bool ok = true;
  for (auto& sh : shards_) {
    shutdown_report_.shards.push_back(sh->Quiesce());
    ok &= shutdown_report_.shards.back().integrity_ok;
  }
  shutdown_report_.ok = ok;
  // A migration racing the quiesce fails fast (shard Submit refuses once
  // stopping); join its thread before the slot table closes under it.
  if (migrator_ != nullptr) {
    migrator_->Join();
  }
  if (cluster_ != nullptr) {
    cluster_->Close();
  }

  // 3. Deliver the completions the drain produced, then answer SHUTDOWN
  //    itself — its +OK certifies a clean audit and saved images.
  DrainCompletions();
  const auto it = conns_.find(conn_id);
  if (it != conns_.end()) {
    std::string r;
    if (ok) {
      AppendSimple(&r, "OK");
    } else {
      size_t nviol = 0;
      for (const ShardReport& rep : shutdown_report_.shards) {
        nviol += rep.violations.size();
      }
      AppendError(&r, "integrity audit failed: " + std::to_string(nviol) +
                          " violation(s)");
    }
    it->second->Complete(seq, std::move(r));
  }

  // 4. Flush what we can, close everything, exit the loop.
  FlushAllBestEffort();
  while (!conns_.empty()) {
    CloseConn(conns_.begin()->first);
  }
}

void Server::FlushAllBestEffort() {
  // Bounded synchronous flush of every connection's pending output (the
  // sockets are non-blocking; wait briefly for writability when stalled).
  struct iovec iov[64];
  for (auto& [id, conn] : conns_) {
    int spins = 0;
    while (conn->WantsWrite() && spins < 200) {
      const size_t niov = conn->BuildIovecs(iov, 64);
      const ssize_t n = ::writev(conn->fd, iov, static_cast<int>(niov));
      if (n > 0) {
        ++flush_syscalls_;
        flushed_bytes_ += static_cast<uint64_t>(n);
        flush_chunks_ += niov;
        conn->ConsumeOut(static_cast<size_t>(n));
        continue;
      }
      if (errno == EINTR) {
        continue;
      }
      if (errno != EAGAIN && errno != EWOULDBLOCK) {
        break;
      }
      pollfd p{};
      p.fd = conn->fd;
      p.events = POLLOUT;
      ::poll(&p, 1, 10);
      ++spins;
    }
  }
}

}  // namespace jnvm::server
