#include "src/server/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "src/common/check.h"

#ifdef __linux__
#include <sys/epoll.h>
#endif

namespace jnvm::server {

namespace {

bool SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

std::string Upper(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  return out;
}

bool ParseU32(const std::string& s, uint32_t* out) {
  if (s.empty() || s.size() > 9) {
    return false;
  }
  uint32_t v = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') {
      return false;
    }
    v = v * 10 + static_cast<uint32_t>(c - '0');
  }
  *out = v;
  return true;
}

bool ParseU64(const std::string& s, uint64_t* out) {
  if (s.empty() || s.size() > 19) {
    return false;
  }
  uint64_t v = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') {
      return false;
    }
    v = v * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = v;
  return true;
}

// "host:port" → (host, port). False on malformed input.
bool SplitHostPort(const std::string& s, std::string* host, uint16_t* port) {
  const size_t colon = s.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == s.size()) {
    return false;
  }
  uint32_t p = 0;
  if (!ParseU32(s.substr(colon + 1), &p) || p == 0 || p > 65535) {
    return false;
  }
  *host = s.substr(0, colon);
  *port = static_cast<uint16_t>(p);
  return true;
}

}  // namespace

// Event-loop readiness backend: epoll on Linux, poll(2) otherwise or when
// forced (ServerOptions::force_poll) — both paths are compiled on Linux so
// tests can exercise either at runtime.
class Poller {
 public:
  struct Event {
    int fd = -1;
    bool readable = false;
    bool writable = false;
    bool error = false;
  };

  explicit Poller(bool use_epoll) {
#ifdef __linux__
    if (use_epoll) {
      epfd_ = epoll_create1(0);
      epoll_ = epfd_ >= 0;
    }
#else
    (void)use_epoll;
#endif
  }

  ~Poller() {
    if (epfd_ >= 0) {
      ::close(epfd_);
    }
  }

  bool using_epoll() const { return epoll_; }

  void Watch(int fd, bool want_write) {
    const auto it = fds_.find(fd);
    const bool known = it != fds_.end();
    if (known && it->second == want_write) {
      return;
    }
    fds_[fd] = want_write;
#ifdef __linux__
    if (epoll_) {
      epoll_event ev{};
      ev.events = EPOLLIN | (want_write ? EPOLLOUT : 0u);
      ev.data.fd = fd;
      epoll_ctl(epfd_, known ? EPOLL_CTL_MOD : EPOLL_CTL_ADD, fd, &ev);
    }
#endif
  }

  void Forget(int fd) {
    fds_.erase(fd);
#ifdef __linux__
    if (epoll_) {
      epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, nullptr);
    }
#endif
  }

  void Wait(std::vector<Event>* out, int timeout_ms) {
    out->clear();
#ifdef __linux__
    if (epoll_) {
      epoll_event evs[64];
      const int n = epoll_wait(epfd_, evs, 64, timeout_ms);
      for (int i = 0; i < n; ++i) {
        Event e;
        e.fd = evs[i].data.fd;
        e.readable = (evs[i].events & (EPOLLIN | EPOLLHUP)) != 0;
        e.writable = (evs[i].events & EPOLLOUT) != 0;
        e.error = (evs[i].events & EPOLLERR) != 0;
        out->push_back(e);
      }
      return;
    }
#endif
    std::vector<pollfd> pfds;
    pfds.reserve(fds_.size());
    for (const auto& [fd, want_write] : fds_) {
      pollfd p{};
      p.fd = fd;
      p.events = static_cast<short>(POLLIN | (want_write ? POLLOUT : 0));
      pfds.push_back(p);
    }
    const int n = ::poll(pfds.data(), pfds.size(), timeout_ms);
    if (n <= 0) {
      return;
    }
    for (const pollfd& p : pfds) {
      if (p.revents == 0) {
        continue;
      }
      Event e;
      e.fd = p.fd;
      e.readable = (p.revents & (POLLIN | POLLHUP)) != 0;
      e.writable = (p.revents & POLLOUT) != 0;
      e.error = (p.revents & (POLLERR | POLLNVAL)) != 0;
      out->push_back(e);
    }
  }

 private:
  bool epoll_ = false;
  int epfd_ = -1;
  std::unordered_map<int, bool> fds_;  // fd -> watching for writability
};

std::string ShutdownReport::Summary() const {
  std::string s;
  char line[256];
  for (size_t i = 0; i < shards.size(); ++i) {
    const ShardReport& r = shards[i];
    std::snprintf(line, sizeof(line),
                  "shard%zu: integrity=%s records=%llu elided_fences=%llu "
                  "psyncs=%llu image=%s\n",
                  i, r.integrity_ok ? "ok" : "VIOLATED",
                  static_cast<unsigned long long>(r.records),
                  static_cast<unsigned long long>(r.elided_fences),
                  static_cast<unsigned long long>(r.psyncs),
                  r.image_saved ? r.image_path.c_str() : "-");
    s += line;
    for (const std::string& v : r.violations) {
      s += "  violation: " + v + "\n";
    }
  }
  return s;
}

std::unique_ptr<Server> Server::Start(const ServerOptions& opts,
                                      std::string* error) {
  auto fail = [&](const std::string& msg) {
    if (error != nullptr) {
      *error = msg + ": " + std::strerror(errno);
    }
    return nullptr;
  };
  if (opts.nshards == 0 ||
      (opts.shard.backend != "jpdt" && opts.shard.backend != "jpfa")) {
    if (error != nullptr) {
      *error = "bad options: nshards must be > 0, backend jpdt|jpfa";
    }
    return nullptr;
  }

  auto s = std::unique_ptr<Server>(new Server());
  s->opts_ = opts;
  std::string primary_host;
  uint16_t primary_port = 0;
  if (!opts.replica_of.empty()) {
    if (!SplitHostPort(opts.replica_of, &primary_host, &primary_port)) {
      if (error != nullptr) {
        *error = "bad replica_of '" + opts.replica_of + "', expected host:port";
      }
      return nullptr;
    }
    // Replica role: followers with a (mirrored) replication log.
    s->opts_.shard.follower = true;
    s->opts_.shard.repl_log = true;
  }

  s->listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (s->listen_fd_ < 0) {
    return fail("socket");
  }
  const int one = 1;
  ::setsockopt(s->listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(opts.port);
  if (::inet_pton(AF_INET, opts.host.c_str(), &addr.sin_addr) != 1) {
    return fail("inet_pton(" + opts.host + ")");
  }
  if (::bind(s->listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return fail("bind");
  }
  if (::listen(s->listen_fd_, 128) != 0) {
    return fail("listen");
  }
  socklen_t alen = sizeof(addr);
  ::getsockname(s->listen_fd_, reinterpret_cast<sockaddr*>(&addr), &alen);
  s->port_ = ntohs(addr.sin_port);
  SetNonBlocking(s->listen_fd_);

  int pipefd[2];
  if (::pipe(pipefd) != 0) {
    return fail("pipe");
  }
  s->wake_r_ = pipefd[0];
  s->wake_w_ = pipefd[1];
  SetNonBlocking(s->wake_r_);
  SetNonBlocking(s->wake_w_);

  for (uint32_t i = 0; i < opts.nshards; ++i) {
    s->shards_.push_back(Shard::Open(s->opts_.shard, i, s.get()));
  }

  s->poller_ = std::make_unique<Poller>(!opts.force_poll);
  s->poller_->Watch(s->listen_fd_, false);
  s->poller_->Watch(s->wake_r_, false);
  s->loop_ = std::thread(&Server::EventLoop, s.get());
  if (!opts.replica_of.empty()) {
    std::vector<Shard*> raw;
    raw.reserve(s->shards_.size());
    for (const auto& sh : s->shards_) {
      raw.push_back(sh.get());
    }
    s->repl_client_ = repl::ReplClient::Start(primary_host, primary_port, raw);
  }
  return s;
}

Server::~Server() {
  RequestShutdown();
  Wait();
  if (wake_r_ >= 0) ::close(wake_r_);
  if (wake_w_ >= 0) ::close(wake_w_);
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

bool Server::AnyShardRecovered() const {
  for (const auto& sh : shards_) {
    if (sh->recovered()) {
      return true;
    }
  }
  return false;
}

void Server::Wait() {
  if (loop_.joinable()) {
    loop_.join();
  }
}

void Server::RequestShutdown() {
  shutdown_requested_.store(true, std::memory_order_release);
  // Wake the loop in case it is parked in Wait().
  if (wake_w_ >= 0) {
    const char b = 'x';
    [[maybe_unused]] const ssize_t n = ::write(wake_w_, &b, 1);
  }
}

void Server::OnCompletion(Completion&& c) {
  {
    std::lock_guard<std::mutex> lk(comp_mu_);
    completions_.push_back(std::move(c));
  }
  // Self-pipe wakeup; EAGAIN (pipe already full of wake bytes) is fine —
  // the pending byte already guarantees a drain.
  const char b = 'c';
  [[maybe_unused]] const ssize_t n = ::write(wake_w_, &b, 1);
}

void Server::EventLoop() {
  std::vector<Poller::Event> events;
  while (!shutting_down_) {
    poller_->Wait(&events, 100);
    if (shutdown_requested_.load(std::memory_order_acquire) && !shutting_down_) {
      DoShutdown(/*conn_id=*/0, /*seq=*/0);
      break;
    }
    for (const Poller::Event& ev : events) {
      if (shutting_down_) {
        break;
      }
      if (ev.fd == listen_fd_) {
        AcceptPending();
        continue;
      }
      if (ev.fd == wake_r_) {
        char buf[256];
        while (::read(wake_r_, buf, sizeof(buf)) > 0) {
        }
        DrainCompletions();
        continue;
      }
      const auto it = by_fd_.find(ev.fd);
      if (it == by_fd_.end()) {
        continue;  // closed earlier this round
      }
      const uint64_t id = it->second;
      if (ev.error) {
        CloseConn(id);
        continue;
      }
      if (ev.writable) {
        HandleWritable(*conns_[id]);
        if (conns_.find(id) == conns_.end()) {
          continue;
        }
      }
      if (ev.readable) {
        HandleReadable(*conns_[id]);
      }
    }
  }
}

void Server::AcceptPending() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      return;  // EAGAIN or transient error
    }
    SetNonBlocking(fd);
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    conn->id = next_conn_id_++;
    by_fd_[fd] = conn->id;
    poller_->Watch(fd, false);
    ++accepted_;
    conns_.emplace(conn->id, std::move(conn));
  }
}

void Server::CloseConn(uint64_t id) {
  const auto it = conns_.find(id);
  if (it == conns_.end()) {
    return;
  }
  for (auto& sh : shards_) {
    sh->Unsubscribe(id);  // no-op unless `id` held a REPLSYNC stream
  }
  poller_->Forget(it->second->fd);
  by_fd_.erase(it->second->fd);
  ::close(it->second->fd);
  conns_.erase(it);
}

void Server::HandleReadable(Conn& conn) {
  if (conn.closing) {
    return;  // draining replies; further input is ignored
  }
  char buf[65536];
  for (;;) {
    const ssize_t n = ::read(conn.fd, buf, sizeof(buf));
    if (n > 0) {
      conn.parser.Feed(buf, static_cast<size_t>(n));
      if (static_cast<size_t>(n) < sizeof(buf)) {
        break;
      }
      continue;
    }
    if (n == 0) {
      CloseConn(conn.id);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      break;
    }
    CloseConn(conn.id);
    return;
  }

  std::vector<std::string> args;
  std::string perr;
  for (;;) {
    const RespParser::Status st = conn.parser.Next(&args, &perr);
    if (st == RespParser::Status::kNeedMore) {
      break;
    }
    if (st == RespParser::Status::kError) {
      // Protocol violation: this connection's stream position is lost, so
      // reply -ERR and close it once pending replies drain. Other
      // connections are unaffected.
      ++protocol_errors_;
      CompleteInline(conn, conn.next_seq++, [&] {
        std::string r;
        AppendError(&r, "protocol error: " + perr);
        return r;
      }());
      conn.closing = true;
      break;
    }
    ++commands_;
    if (!Dispatch(conn, args)) {
      conn.closing = true;
      break;
    }
    if (shutting_down_) {
      return;  // SHUTDOWN handled inside Dispatch; conns are gone
    }
  }
  if (conns_.find(conn.id) == conns_.end()) {
    return;
  }
  if (conn.WantsWrite()) {
    HandleWritable(conn);
  } else if (conn.closing && conn.inflight == 0) {
    CloseConn(conn.id);
  }
}

void Server::HandleWritable(Conn& conn) {
  while (conn.WantsWrite()) {
    const ssize_t n = ::write(conn.fd, conn.out.data() + conn.out_off,
                              conn.out.size() - conn.out_off);
    if (n > 0) {
      conn.out_off += static_cast<size_t>(n);
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      poller_->Watch(conn.fd, true);
      conn.CompactOut();
      return;
    }
    CloseConn(conn.id);
    return;
  }
  conn.CompactOut();
  poller_->Watch(conn.fd, false);
  if (conn.closing && conn.inflight == 0 && conn.replies.empty()) {
    CloseConn(conn.id);
  }
}

void Server::CompleteInline(Conn& conn, uint64_t seq, std::string&& reply) {
  // If this seq was next in line the bytes land in `out` now; they go out
  // in HandleReadable's tail flush or on the next POLLOUT.
  conn.Complete(seq, std::move(reply));
}

bool Server::Dispatch(Conn& conn, std::vector<std::string>& args) {
  const std::string cmd = Upper(args[0]);
  const uint64_t seq = conn.next_seq++;
  auto inline_error = [&](const std::string& msg) {
    std::string r;
    AppendError(&r, msg);
    CompleteInline(conn, seq, std::move(r));
    return true;
  };

  if (cmd == "PING") {
    std::string r;
    AppendSimple(&r, "PONG");
    CompleteInline(conn, seq, std::move(r));
    return true;
  }
  if (cmd == "SET" || cmd == "GET" || cmd == "DEL" || cmd == "TOUCH" ||
      cmd == "HSET") {
    Request req;
    if (cmd == "SET") {
      if (args.size() != 3) {
        return inline_error("wrong number of arguments for SET");
      }
      req.op = Request::Op::kSet;
      req.value = std::move(args[2]);
    } else if (cmd == "HSET") {
      if (args.size() != 4) {
        return inline_error("wrong number of arguments for HSET");
      }
      uint32_t field;
      if (!ParseU32(args[2], &field)) {
        return inline_error("HSET field must be a decimal index");
      }
      req.op = Request::Op::kHset;
      req.field = field;
      req.value = std::move(args[3]);
    } else {
      if (args.size() != 2) {
        return inline_error("wrong number of arguments for " + cmd);
      }
      req.op = cmd == "GET"   ? Request::Op::kGet
               : cmd == "DEL" ? Request::Op::kDel
                              : Request::Op::kTouch;
    }
    req.key = std::move(args[1]);
    req.conn_id = conn.id;
    req.seq = seq;
    Shard& shard = *shards_[ShardFor(req.key, static_cast<uint32_t>(shards_.size()))];
    ++conn.inflight;
    if (!shard.Submit(std::move(req))) {
      --conn.inflight;
      return inline_error("server shutting down");
    }
    return true;
  }
  if (cmd == "MSET") {
    if (args.size() < 3 || (args.size() - 1) % 2 != 0) {
      return inline_error("wrong number of arguments for MSET");
    }
    const uint32_t pairs = static_cast<uint32_t>((args.size() - 1) / 2);
    auto multi = std::make_shared<MultiOp>();
    multi->remaining.store(pairs, std::memory_order_relaxed);
    multi->conn_id = conn.id;
    multi->seq = seq;
    ++conn.inflight;
    for (uint32_t i = 0; i < pairs; ++i) {
      Request req;
      req.op = Request::Op::kSet;
      req.key = std::move(args[1 + 2 * i]);
      req.value = std::move(args[2 + 2 * i]);
      req.multi = multi;
      Shard& shard = *shards_[ShardFor(req.key, static_cast<uint32_t>(shards_.size()))];
      if (!shard.Submit(std::move(req))) {
        // Parts already queued still execute but the joined reply can no
        // longer be produced; fail the command now. The connection is
        // closing with the server anyway.
        --conn.inflight;
        return inline_error("server shutting down");
      }
    }
    return true;
  }
  if (cmd == "REPLSYNC" || cmd == "REPLSNAP") {
    const size_t want = cmd == "REPLSYNC" ? 3 : 2;
    if (args.size() != want) {
      return inline_error("wrong number of arguments for " + cmd);
    }
    uint32_t idx = 0;
    if (!ParseU32(args[1], &idx) || idx >= shards_.size()) {
      return inline_error(cmd + " shard index out of range");
    }
    Request req;
    if (cmd == "REPLSYNC") {
      uint64_t from = 0;
      if (!ParseU64(args[2], &from) || from == 0) {
        return inline_error("REPLSYNC from-seq must be >= 1");
      }
      req.op = Request::Op::kReplSync;
      req.repl_seq = from;
    } else {
      req.op = Request::Op::kReplSnap;
    }
    req.conn_id = conn.id;
    req.seq = seq;
    ++conn.inflight;
    if (!shards_[idx]->Submit(std::move(req))) {
      --conn.inflight;
      return inline_error("server shutting down");
    }
    return true;
  }
  if (cmd == "PROMOTE") {
    if (args.size() != 1) {
      return inline_error("wrong number of arguments for PROMOTE");
    }
    // Quiesce the pull side first: joins every pull thread, so no kApply
    // can land after the audit below starts.
    if (repl_client_ != nullptr) {
      repl_client_->Stop();
    }
    auto multi = std::make_shared<MultiOp>();
    multi->remaining.store(static_cast<uint32_t>(shards_.size()),
                           std::memory_order_relaxed);
    multi->conn_id = conn.id;
    multi->seq = seq;
    ++conn.inflight;
    for (auto& sh : shards_) {
      Request req;
      req.op = Request::Op::kPromote;
      req.multi = multi;
      if (!sh->Submit(std::move(req))) {
        --conn.inflight;
        return inline_error("server shutting down");
      }
    }
    return true;
  }
  if (cmd == "STATS") {
    std::string r;
    AppendBulk(&r, BuildStats());
    CompleteInline(conn, seq, std::move(r));
    return true;
  }
  if (cmd == "SHUTDOWN") {
    DoShutdown(conn.id, seq);
    return true;
  }
  return inline_error("unknown command '" + args[0] + "'");
}

void Server::DrainCompletions() {
  std::vector<Completion> batch;
  {
    std::lock_guard<std::mutex> lk(comp_mu_);
    batch.swap(completions_);
  }
  for (Completion& c : batch) {
    const auto it = conns_.find(c.conn_id);
    if (it == conns_.end()) {
      continue;  // client went away before its reply
    }
    Conn& conn = *it->second;
    if (c.stream) {
      // Replication-stream frame: not a command reply, so it neither holds
      // an inflight slot nor passes the reorder buffer — by subscription
      // time every earlier reply on this connection has flushed.
      conn.out += c.reply;
      HandleWritable(conn);
      continue;
    }
    JNVM_DCHECK(conn.inflight > 0);
    --conn.inflight;
    if (conn.Complete(c.seq, std::move(c.reply))) {
      HandleWritable(conn);
    }
  }
}

std::string Server::BuildStats() {
  std::string out;
  char line[512];
  std::snprintf(line, sizeof(line),
                "server: shards=%zu batch=%u backend=%s poller=%s conns=%zu "
                "accepted=%llu commands=%llu protocol_errors=%llu\n",
                shards_.size(), opts_.shard.batch, opts_.shard.backend.c_str(),
                poller_->using_epoll() ? "epoll" : "poll", conns_.size(),
                static_cast<unsigned long long>(accepted_),
                static_cast<unsigned long long>(commands_),
                static_cast<unsigned long long>(protocol_errors_));
  out += line;
  uint64_t records = 0, elided = 0, puts = 0, gets = 0, updates = 0, dels = 0;
  for (const auto& sh : shards_) {
    const ShardStats s = sh->Stats();
    records += s.records;
    elided += s.elided_fences;
    puts += s.ops.puts;
    gets += s.ops.gets;
    updates += s.ops.updates;
    dels += s.ops.deletes;
    std::snprintf(
        line, sizeof(line),
        "shard%u: records=%llu queue=%llu batches=%llu max_batch=%llu "
        "elided_fences=%llu puts=%llu gets=%llu misses=%llu updates=%llu "
        "deletes=%llu bytes_w=%llu bytes_r=%llu cache_hits=%llu "
        "cache_misses=%llu psyncs=%llu pfences=%llu\n",
        sh->index(), static_cast<unsigned long long>(s.records),
        static_cast<unsigned long long>(s.queue_depth),
        static_cast<unsigned long long>(s.batches),
        static_cast<unsigned long long>(s.max_batch),
        static_cast<unsigned long long>(s.elided_fences),
        static_cast<unsigned long long>(s.ops.puts),
        static_cast<unsigned long long>(s.ops.gets),
        static_cast<unsigned long long>(s.ops.get_misses),
        static_cast<unsigned long long>(s.ops.updates),
        static_cast<unsigned long long>(s.ops.deletes),
        static_cast<unsigned long long>(s.ops.bytes_written),
        static_cast<unsigned long long>(s.ops.bytes_read),
        static_cast<unsigned long long>(s.cache.hits),
        static_cast<unsigned long long>(s.cache.misses),
        static_cast<unsigned long long>(s.device.psyncs),
        static_cast<unsigned long long>(s.device.pfences));
    out += line;
    if (s.repl.enabled) {
      std::snprintf(
          line, sizeof(line),
          "repl%u: role=%s sealed=%llu start=%llu applied=%llu "
          "log_bytes=%llu log_segments=%llu subs=%llu%s\n",
          sh->index(), s.repl.follower ? "replica" : "primary",
          static_cast<unsigned long long>(s.repl.sealed_seq),
          static_cast<unsigned long long>(s.repl.start_seq),
          static_cast<unsigned long long>(s.repl.applied_batches),
          static_cast<unsigned long long>(s.repl.log_bytes),
          static_cast<unsigned long long>(s.repl.log_segments),
          static_cast<unsigned long long>(s.repl.subscribers),
          s.repl.needs_snapshot ? " needs_snapshot" : "");
      out += line;
    }
  }
  if (repl_client_ != nullptr) {
    const repl::ReplClientStats rs = repl_client_->Stats();
    std::snprintf(line, sizeof(line),
                  "replclient: received=%llu snapshots=%llu resyncs=%llu\n",
                  static_cast<unsigned long long>(rs.records_received),
                  static_cast<unsigned long long>(rs.snapshots_installed),
                  static_cast<unsigned long long>(rs.resyncs));
    out += line;
  }
  std::snprintf(line, sizeof(line),
                "total: records=%llu elided_fences=%llu puts=%llu gets=%llu "
                "updates=%llu deletes=%llu\n",
                static_cast<unsigned long long>(records),
                static_cast<unsigned long long>(elided),
                static_cast<unsigned long long>(puts),
                static_cast<unsigned long long>(gets),
                static_cast<unsigned long long>(updates),
                static_cast<unsigned long long>(dels));
  out += line;
  return out;
}

void Server::DoShutdown(uint64_t conn_id, uint64_t seq) {
  shutting_down_ = true;
  // 1. Stop intake: no new connections, and Submit() starts failing as each
  //    shard flips to stopping.
  poller_->Forget(listen_fd_);
  ::close(listen_fd_);
  listen_fd_ = -1;
  // On a replica, stop the pull loops before draining the shards so no
  // kApply arrives once the quiesce begins.
  if (repl_client_ != nullptr) {
    repl_client_->Stop();
  }

  // 2. Quiesce shards: drains every queued request, joins the workers,
  //    Psyncs, audits integrity (I1–I7) and saves the device images.
  shutdown_report_.shards.clear();
  bool ok = true;
  for (auto& sh : shards_) {
    shutdown_report_.shards.push_back(sh->Quiesce());
    ok &= shutdown_report_.shards.back().integrity_ok;
  }
  shutdown_report_.ok = ok;

  // 3. Deliver the completions the drain produced, then answer SHUTDOWN
  //    itself — its +OK certifies a clean audit and saved images.
  DrainCompletions();
  const auto it = conns_.find(conn_id);
  if (it != conns_.end()) {
    std::string r;
    if (ok) {
      AppendSimple(&r, "OK");
    } else {
      size_t nviol = 0;
      for (const ShardReport& rep : shutdown_report_.shards) {
        nviol += rep.violations.size();
      }
      AppendError(&r, "integrity audit failed: " + std::to_string(nviol) +
                          " violation(s)");
    }
    it->second->Complete(seq, std::move(r));
  }

  // 4. Flush what we can, close everything, exit the loop.
  FlushAllBestEffort();
  while (!conns_.empty()) {
    CloseConn(conns_.begin()->first);
  }
}

void Server::FlushAllBestEffort() {
  // Bounded synchronous flush of every connection's pending output (the
  // sockets are non-blocking; wait briefly for writability when stalled).
  for (auto& [id, conn] : conns_) {
    int spins = 0;
    while (conn->WantsWrite() && spins < 200) {
      const ssize_t n = ::write(conn->fd, conn->out.data() + conn->out_off,
                                conn->out.size() - conn->out_off);
      if (n > 0) {
        conn->out_off += static_cast<size_t>(n);
        continue;
      }
      if (errno != EAGAIN && errno != EWOULDBLOCK) {
        break;
      }
      pollfd p{};
      p.fd = conn->fd;
      p.events = POLLOUT;
      ::poll(&p, 1, 10);
      ++spins;
    }
  }
}

}  // namespace jnvm::server
