#include "src/server/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <map>

#include "src/common/check.h"
#include "src/common/clock.h"

namespace jnvm::server {

namespace {

bool SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

std::string Upper(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  return out;
}

bool ParseU32(const std::string& s, uint32_t* out) {
  if (s.empty() || s.size() > 9) {
    return false;
  }
  uint32_t v = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') {
      return false;
    }
    v = v * 10 + static_cast<uint32_t>(c - '0');
  }
  *out = v;
  return true;
}

bool ParseU64(const std::string& s, uint64_t* out) {
  if (s.empty() || s.size() > 19) {
    return false;
  }
  uint64_t v = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') {
      return false;
    }
    v = v * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = v;
  return true;
}

// "host:port" → (host, port). False on malformed input.
bool SplitHostPort(const std::string& s, std::string* host, uint16_t* port) {
  const size_t colon = s.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == s.size()) {
    return false;
  }
  uint32_t p = 0;
  if (!ParseU32(s.substr(colon + 1), &p) || p == 0 || p > 65535) {
    return false;
  }
  *host = s.substr(0, colon);
  *port = static_cast<uint16_t>(p);
  return true;
}

// Relaxed counter bump: each LoopCounters slot is written by one loop thread
// and only read cross-thread by STATS aggregation.
inline void Bump(std::atomic<uint64_t>& c, uint64_t n = 1) {
  c.fetch_add(n, std::memory_order_relaxed);
}

inline uint64_t Rd(const std::atomic<uint64_t>& c) {
  return c.load(std::memory_order_relaxed);
}

}  // namespace

std::string ShutdownReport::Summary() const {
  std::string s;
  char line[256];
  for (size_t i = 0; i < shards.size(); ++i) {
    const ShardReport& r = shards[i];
    std::snprintf(line, sizeof(line),
                  "shard%zu: integrity=%s records=%llu elided_fences=%llu "
                  "psyncs=%llu image=%s\n",
                  i, r.integrity_ok ? "ok" : "VIOLATED",
                  static_cast<unsigned long long>(r.records),
                  static_cast<unsigned long long>(r.elided_fences),
                  static_cast<unsigned long long>(r.psyncs),
                  r.image_saved ? r.image_path.c_str() : "-");
    s += line;
    for (const std::string& v : r.violations) {
      s += "  violation: " + v + "\n";
    }
  }
  return s;
}

std::unique_ptr<Server> Server::Start(const ServerOptions& opts,
                                      std::string* error) {
  auto fail = [&](const std::string& msg) {
    if (error != nullptr) {
      *error = msg + ": " + std::strerror(errno);
    }
    return nullptr;
  };
  if (opts.nshards == 0 ||
      (opts.shard.backend != "jpdt" && opts.shard.backend != "jpfa")) {
    if (error != nullptr) {
      *error = "bad options: nshards must be > 0, backend jpdt|jpfa";
    }
    return nullptr;
  }
  if (opts.shard.wait_acks > 0 && !opts.shard.repl_log) {
    if (error != nullptr) {
      *error = "bad options: --wait-acks requires the replication log";
    }
    return nullptr;
  }
  PollerKind kind = PollerKind::kEpoll;
  if (opts.poller == "poll") {
    kind = PollerKind::kPoll;
  } else if (opts.poller == "uring") {
    kind = PollerKind::kUring;
  } else if (opts.poller.empty() ? opts.force_poll : opts.poller != "epoll") {
    if (opts.poller.empty()) {
      kind = PollerKind::kPoll;  // legacy force_poll spelling
    } else {
      if (error != nullptr) {
        *error = "bad poller '" + opts.poller + "' (epoll|poll|uring)";
      }
      return nullptr;
    }
  }

  auto s = std::unique_ptr<Server>(new Server());
  s->opts_ = opts;
  s->opts_.loops = std::min(std::max(opts.loops, 1u), 64u);
  std::string primary_host;
  uint16_t primary_port = 0;
  if (!opts.replica_of.empty()) {
    if (!SplitHostPort(opts.replica_of, &primary_host, &primary_port)) {
      if (error != nullptr) {
        *error = "bad replica_of '" + opts.replica_of + "', expected host:port";
      }
      return nullptr;
    }
    // Replica role: followers with a (mirrored) replication log.
    s->opts_.shard.follower = true;
    s->opts_.shard.repl_log = true;
  }

  const uint32_t nloops = s->opts_.loops;
  for (uint32_t i = 0; i < nloops; ++i) {
    auto lp = std::make_unique<Loop>();
    lp->index = i;
    s->loops_.push_back(std::move(lp));
  }

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  if (::inet_pton(AF_INET, opts.host.c_str(), &addr.sin_addr) != 1) {
    return fail("inet_pton(" + opts.host + ")");
  }
  // Opens one listener. `want_reuseport` failing to stick is reported via
  // *rp_ok so the caller can fall back to hand-off mode instead of dying.
  auto open_listener = [&](uint16_t port, bool want_reuseport,
                           bool* rp_ok) -> int {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      return -1;
    }
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (want_reuseport) {
      bool ok = false;
#ifdef SO_REUSEPORT
      ok = ::setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) == 0;
#endif
      if (rp_ok != nullptr) {
        *rp_ok = ok;
      }
      if (!ok) {
        return fd;  // caller decides: single-listener hand-off still works
      }
    }
    sockaddr_in a = addr;
    a.sin_port = htons(port);
    if (::bind(fd, reinterpret_cast<sockaddr*>(&a), sizeof(a)) != 0 ||
        ::listen(fd, 128) != 0) {
      ::close(fd);
      return -1;
    }
    SetNonBlocking(fd);
    return fd;
  };

  // A pool wants one SO_REUSEPORT listener per loop so the kernel spreads
  // accepts; when the kernel (or the options) say no, loop 0 accepts alone
  // and hands fds off round-robin (AcceptPending → fd_inbox).
  bool want_rp = s->opts_.reuseport && nloops > 1;
  bool rp_ok = false;
  const int fd0 = open_listener(opts.port, want_rp, &rp_ok);
  if (fd0 < 0) {
    return fail("bind");
  }
  if (want_rp && !rp_ok) {
    want_rp = false;
    // The socket exists but was never bound; bind it plainly.
    sockaddr_in a = addr;
    a.sin_port = htons(opts.port);
    if (::bind(fd0, reinterpret_cast<sockaddr*>(&a), sizeof(a)) != 0 ||
        ::listen(fd0, 128) != 0) {
      ::close(fd0);
      return fail("bind");
    }
    SetNonBlocking(fd0);
  }
  s->loops_[0]->listen_fd = fd0;
  socklen_t alen = sizeof(addr);
  ::getsockname(fd0, reinterpret_cast<sockaddr*>(&addr), &alen);
  s->port_ = ntohs(addr.sin_port);
  if (want_rp) {
    for (uint32_t i = 1; i < nloops; ++i) {
      bool ok = false;
      const int fd = open_listener(s->port_, /*want_reuseport=*/true, &ok);
      if (fd < 0 || !ok) {
        // Runtime fallback: tear the extra listeners down, loop 0 accepts
        // for everyone.
        if (fd >= 0) {
          ::close(fd);
        }
        for (uint32_t j = 1; j < i; ++j) {
          ::close(s->loops_[j]->listen_fd);
          s->loops_[j]->listen_fd = -1;
        }
        break;
      }
      s->loops_[i]->listen_fd = fd;
    }
  }

  for (auto& lp : s->loops_) {
    int pipefd[2];
    if (::pipe(pipefd) != 0) {
      return fail("pipe");
    }
    lp->wake_r = pipefd[0];
    lp->wake_w = pipefd[1];
    SetNonBlocking(lp->wake_r);
    SetNonBlocking(lp->wake_w);
    lp->poller = Poller::Create(kind);
    if (lp->listen_fd >= 0) {
      lp->poller->Watch(lp->listen_fd, true, false);
    }
    lp->poller->Watch(lp->wake_r, true, false);
  }

  if (opts.cluster) {
    // The slot table opens before the shards: recovery of a torn handoff
    // (RecoverLocked) must settle before any request can route.
    cluster::ClusterOptions copts = opts.cluster_meta;
    if (copts.announce.empty()) {
      copts.announce = opts.host + ":" + std::to_string(s->port_);
    }
    std::string cerr;
    s->cluster_ = cluster::ClusterState::Open(copts, &cerr);
    if (s->cluster_ == nullptr) {
      if (error != nullptr) {
        *error = "cluster meta: " + cerr;
      }
      return nullptr;
    }
  }
  for (uint32_t i = 0; i < opts.nshards; ++i) {
    s->shards_.push_back(Shard::Open(s->opts_.shard, i, s.get()));
  }
  if (s->cluster_ != nullptr) {
    std::vector<Shard*> raw;
    raw.reserve(s->shards_.size());
    for (const auto& sh : s->shards_) {
      raw.push_back(sh.get());
    }
    s->migrator_ =
        std::make_unique<cluster::Migrator>(s->cluster_.get(), std::move(raw));
  }
  {
    std::vector<Shard*> raw;
    raw.reserve(s->shards_.size());
    for (const auto& sh : s->shards_) {
      raw.push_back(sh.get());
    }
    s->ckpt_runner_ =
        std::make_unique<ckpt::CheckpointRunner>(std::move(raw), s.get());
  }
  if (opts.replica_of.empty() && s->opts_.shard.repl_log) {
    // Primary crash recovery (DESIGN.md §9): commit-or-abort every
    // prepared-but-undecided cross-shard txn before the event loops serve
    // clients (single-threaded here: no loop thread has spawned yet).
    // Replicas resolve at PROMOTE instead, once the pull stops.
    s->ResolveCrossShardTxns(*s->loops_[0]);
  }

  for (auto& lp : s->loops_) {
    Loop* raw = lp.get();
    raw->thread = std::thread([s_raw = s.get(), raw] {
      s_raw->EventLoop(*raw);
    });
  }
  if (!opts.replica_of.empty()) {
    std::vector<Shard*> raw;
    raw.reserve(s->shards_.size());
    for (const auto& sh : s->shards_) {
      raw.push_back(sh.get());
    }
    s->repl_client_ = repl::ReplClient::Start(primary_host, primary_port, raw);
  }
  return s;
}

Server::~Server() {
  RequestShutdown();
  Wait();
  for (auto& lp : loops_) {
    if (lp->wake_r >= 0) ::close(lp->wake_r);
    if (lp->wake_w >= 0) ::close(lp->wake_w);
    if (lp->listen_fd >= 0) ::close(lp->listen_fd);
  }
}

bool Server::AnyShardRecovered() const {
  for (const auto& sh : shards_) {
    if (sh->recovered()) {
      return true;
    }
  }
  return false;
}

const char* Server::poller_name() const {
  return loops_.empty() ? "none" : loops_[0]->poller->name();
}

void Server::Wait() {
  for (auto& lp : loops_) {
    if (lp->thread.joinable()) {
      lp->thread.join();
    }
  }
}

void Server::RequestShutdown() {
  shutdown_requested_.store(true, std::memory_order_release);
  // Wake every loop in case it is parked in Wait(); whichever notices first
  // claims coordination (shutdown_claimed_).
  for (auto& lp : loops_) {
    WakeLoop(*lp);
  }
}

Server::Loop& Server::LoopFor(uint64_t conn_id) {
  const uint64_t idx = conn_id >> kLoopShift;
  if (idx == 0 || idx > loops_.size()) {
    return *loops_[0];  // internal (conn_id 0) work homes on loop 0
  }
  return *loops_[idx - 1];
}

void Server::WakeLoop(Loop& lp) {
  if (lp.wake_w < 0) {
    return;
  }
  // Self-pipe wakeup. EINTR is retried — a swallowed wake could strand a
  // completion for a full poll timeout. EAGAIN (pipe already full of wake
  // bytes) is fine: the pending byte already guarantees a drain.
  const char b = 'c';
  ssize_t n;
  do {
    n = ::write(lp.wake_w, &b, 1);
  } while (n < 0 && errno == EINTR);
}

void Server::OnCompletion(Completion&& c) {
  // Called from shard workers and from any loop (inline joins). The loop
  // index rides in the conn id's high bits, so every completion source —
  // batch replies, released WAIT parks, released session reads, stream
  // frames, txn phase joins — lands on the loop owning the connection.
  Loop& lp = LoopFor(c.conn_id);
  {
    std::lock_guard<std::mutex> lk(lp.mu);
    lp.completions.push_back(std::move(c));
  }
  WakeLoop(lp);
}

void Server::EventLoop(Loop& lp) {
  std::vector<Poller::Event> events;
  for (;;) {
    lp.poller->Wait(&events, 100);
    // External shutdown request (RequestShutdown / ~Server): exactly one
    // loop claims coordination; the rest follow the phase variable.
    if (shutdown_requested_.load(std::memory_order_acquire) &&
        shutdown_phase_.load(std::memory_order_acquire) == 0 &&
        !shutdown_claimed_.exchange(true, std::memory_order_acq_rel)) {
      DoShutdown(lp, /*conn_id=*/0, /*seq=*/0);
    }
    const int phase = shutdown_phase_.load(std::memory_order_acquire);
    if (phase >= 1) {
      StopIntake(lp);
    }
    if (phase >= 2) {
      FinishLoop(lp);
    }
    if (lp.exiting) {
      return;
    }
    // Periodic work rides the wait timeout: expire WAIT-K parked batches
    // (degraded -WAITTIMEOUT delivery), expire parked session reads to
    // -STALE, and re-drive stalled submissions. One loop ticks the shared
    // shard timers; every loop re-drives its own stalled work.
    if (lp.index == 0 && phase == 0) {
      const uint64_t now_ms = NowNs() / 1000000ull;
      for (auto& sh : shards_) {
        sh->TickWait(now_ms);
        sh->TickReadStale(now_ms);
      }
      // Periodic fuzzy checkpoint (DESIGN.md §11). Primaries only: a
      // replica's log truncates when the primary's checkpoint streams
      // through. Trigger refuses (false) while a pass is still running —
      // the timer just retries next interval.
      if (opts_.ckpt_interval_ms > 0 && opts_.replica_of.empty() &&
          opts_.shard.repl_log) {
        if (last_ckpt_ms_ == 0) {
          last_ckpt_ms_ = now_ms;
        } else if (now_ms - last_ckpt_ms_ >= opts_.ckpt_interval_ms &&
                   ckpt_runner_->Trigger(/*conn_id=*/0, /*seq=*/0)) {
          last_ckpt_ms_ = now_ms;
        }
      }
    }
    RetryStalled(lp);
    RetryTxnPending(lp);
    for (const Poller::Event& ev : events) {
      if (lp.exiting) {
        break;
      }
      if (ev.fd == lp.listen_fd && lp.listen_fd >= 0) {
        AcceptPending(lp);
        continue;
      }
      if (ev.fd == lp.wake_r) {
        char buf[256];
        ssize_t n;
        do {
          n = ::read(lp.wake_r, buf, sizeof(buf));
        } while (n > 0 || (n < 0 && errno == EINTR));
        DrainFdInbox(lp);
        DrainCompletions(lp);
        continue;
      }
      const auto it = lp.by_fd.find(ev.fd);
      if (it == lp.by_fd.end()) {
        continue;  // closed earlier this round
      }
      const uint64_t id = it->second;
      if (ev.error) {
        CloseConn(lp, id);
        continue;
      }
      if (ev.writable) {
        HandleWritable(lp, *lp.conns[id]);
        if (lp.conns.find(id) == lp.conns.end()) {
          continue;
        }
      }
      if (ev.readable) {
        HandleReadable(lp, *lp.conns[id]);
      }
    }
  }
}

void Server::AcceptPending(Loop& lp) {
  // Hand-off mode iff the pool has more than one loop but only loop 0 holds
  // a listener (no SO_REUSEPORT): loop 0 accepts and deals fds round-robin.
  const bool handoff = loops_.size() > 1 && loops_[1]->listen_fd < 0;
  for (;;) {
    const int fd = ::accept(lp.listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) {
        continue;  // interrupted by a signal: the backlog is still there
      }
      if (errno == ECONNABORTED) {
        continue;  // peer gave up while queued; next one may be fine
      }
      return;  // EAGAIN or a real error: nothing more to accept now
    }
    if (!handoff) {
      RegisterConn(lp, fd);
      continue;
    }
    Loop& target = *loops_[rr_next_++ % loops_.size()];
    if (&target == &lp) {
      RegisterConn(lp, fd);
      continue;
    }
    {
      std::lock_guard<std::mutex> lk(target.mu);
      target.fd_inbox.push_back(fd);
    }
    WakeLoop(target);
  }
}

void Server::RegisterConn(Loop& lp, int fd) {
  SetNonBlocking(fd);
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  auto conn = std::make_unique<Conn>();
  conn->fd = fd;
  // Loop index in the high bits (loop 1 = pool index 0) so completions can
  // route home; id 0 keeps meaning "internal".
  conn->id = (static_cast<uint64_t>(lp.index + 1) << kLoopShift) |
             (lp.next_conn++ & ((1ull << kLoopShift) - 1));
  conn->parser.set_max_buffer(opts_.max_conn_in_bytes);
  lp.by_fd[fd] = conn->id;
  lp.poller->Watch(fd, true, false);
  Bump(lp.counters.accepted);
  lp.counters.open_conns.fetch_add(1, std::memory_order_relaxed);
  lp.conns.emplace(conn->id, std::move(conn));
}

void Server::DrainFdInbox(Loop& lp) {
  std::vector<int> fds;
  {
    std::lock_guard<std::mutex> lk(lp.mu);
    fds.swap(lp.fd_inbox);
  }
  for (const int fd : fds) {
    if (lp.intake_stopped) {
      ::close(fd);  // arrived after quiesce began: never a client
      continue;
    }
    RegisterConn(lp, fd);
  }
}

void Server::CloseConn(Loop& lp, uint64_t id) {
  const auto it = lp.conns.find(id);
  if (it == lp.conns.end()) {
    return;
  }
  for (auto& sh : shards_) {
    sh->Unsubscribe(id);  // no-op unless `id` held a REPLSYNC stream
  }
  lp.poller->Forget(it->second->fd);
  lp.by_fd.erase(it->second->fd);
  ::close(it->second->fd);
  lp.conns.erase(it);
  lp.counters.open_conns.fetch_sub(1, std::memory_order_relaxed);
}

void Server::HandleReadable(Loop& lp, Conn& conn) {
  if (conn.closing) {
    return;  // draining replies; further input is ignored
  }
  if (conn.paused || lp.intake_stopped) {
    return;  // backpressure / quiesce: leave the bytes in the kernel buffer
  }
  char buf[65536];
  for (;;) {
    const ssize_t n = ::read(conn.fd, buf, sizeof(buf));
    if (n > 0) {
      conn.parser.Feed(buf, static_cast<size_t>(n));
      if (static_cast<size_t>(n) < sizeof(buf)) {
        break;
      }
      continue;
    }
    if (n == 0) {
      CloseConn(lp, conn.id);
      return;
    }
    if (errno == EINTR) {
      continue;  // interrupted by a signal, not a socket failure
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      break;
    }
    CloseConn(lp, conn.id);
    return;
  }

  ProcessInput(lp, conn);
  if (lp.exiting || lp.conns.find(conn.id) == lp.conns.end()) {
    return;
  }
  if (conn.WantsWrite()) {
    HandleWritable(lp, conn);
  } else if (conn.closing && conn.inflight == 0) {
    CloseConn(lp, conn.id);
  }
}

void Server::ProcessInput(Loop& lp, Conn& conn) {
  std::vector<std::string> args;
  std::string perr;
  while (!conn.paused && !lp.intake_stopped) {
    const RespParser::Status st = conn.parser.Next(&args, &perr);
    if (st == RespParser::Status::kNeedMore) {
      return;
    }
    if (st == RespParser::Status::kError) {
      // Protocol violation (or input-cap overflow): this connection's
      // stream position is lost, so reply -ERR and close it once pending
      // replies drain. Other connections are unaffected.
      if (conn.parser.overflowed()) {
        Bump(lp.counters.in_overflows);
      } else {
        Bump(lp.counters.protocol_errors);
      }
      CompleteInline(conn, conn.next_seq++, [&] {
        std::string r;
        AppendError(&r, "protocol error: " + perr);
        return r;
      }());
      conn.closing = true;
      return;
    }
    Bump(lp.counters.commands);
    if (!Dispatch(lp, conn, args)) {
      conn.closing = true;
      return;
    }
    if (lp.exiting) {
      return;  // SHUTDOWN handled inside Dispatch; conns are gone
    }
  }
}

void Server::HandleWritable(Loop& lp, Conn& conn) {
  // Scatter-gather flush: up to kFlushIovecs chunks per writev() — shared
  // frames and coalesced tails alike go out in one syscall. A partial write
  // leaves the resume offset mid-chunk; ConsumeOut pops what the kernel
  // accepted (releasing owned buffers and shared-frame refs).
  static constexpr size_t kFlushIovecs = 64;
  struct iovec iov[kFlushIovecs];
  while (conn.WantsWrite()) {
    const size_t niov = conn.BuildIovecs(iov, kFlushIovecs);
    const ssize_t n = ::writev(conn.fd, iov, static_cast<int>(niov));
    if (n > 0) {
      Bump(lp.counters.flush_syscalls);
      Bump(lp.counters.flushed_bytes, static_cast<uint64_t>(n));
      Bump(lp.counters.flush_chunks, niov);
      conn.ConsumeOut(static_cast<size_t>(n));
      continue;
    }
    if (errno == EINTR) {
      continue;  // interrupted by a signal, not a socket failure
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      lp.poller->Watch(conn.fd, !conn.paused && !lp.intake_stopped, true);
      return;
    }
    CloseConn(lp, conn.id);
    return;
  }
  lp.poller->Watch(conn.fd, !conn.paused && !lp.intake_stopped, false);
  if (conn.closing && conn.inflight == 0 && conn.replies.empty()) {
    CloseConn(lp, conn.id);
  }
}

void Server::PauseReads(Loop& lp, Conn& conn) {
  if (conn.paused) {
    return;
  }
  conn.paused = true;
  lp.poller->Watch(conn.fd, false, conn.WantsWrite());
  lp.stalled_conns.push_back(conn.id);
}

bool Server::SubmitOrStall(Loop& lp, Conn& conn, uint32_t shard_idx,
                           Request&& req) {
  if (conn.stalled.empty()) {
    switch (shards_[shard_idx]->TrySubmit(std::move(req))) {
      case Shard::SubmitResult::kOk:
        return true;
      case Shard::SubmitResult::kStopped:
        return false;
      case Shard::SubmitResult::kFull:
        break;  // kFull left req intact: stall it below
    }
  }
  // Either the shard is full or earlier requests of this connection are
  // already stalled (order must hold). Park the request and read-pause.
  conn.stalled.push_back(StalledRequest{shard_idx, std::move(req)});
  PauseReads(lp, conn);
  return true;
}

void Server::RetryStalled(Loop& lp) {
  if (lp.stalled_conns.empty()) {
    return;
  }
  // Swap out the list: PauseReads may append to stalled_conns while we
  // re-run ProcessInput below (a resumed connection can stall again).
  std::vector<uint64_t> work;
  work.swap(lp.stalled_conns);
  for (const uint64_t id : work) {
    const auto it = lp.conns.find(id);
    if (it == lp.conns.end()) {
      continue;  // connection closed while stalled
    }
    Conn& conn = *it->second;
    while (!conn.stalled.empty()) {
      StalledRequest& front = conn.stalled.front();
      const Shard::SubmitResult r =
          shards_[front.shard]->TrySubmit(std::move(front.req));
      if (r == Shard::SubmitResult::kFull) {
        break;
      }
      if (r == Shard::SubmitResult::kStopped) {
        FailStalledRequest(lp, conn, front.req);
      }
      conn.stalled.pop_front();
    }
    if (!conn.stalled.empty()) {
      lp.stalled_conns.push_back(id);  // still blocked; stay paused
      continue;
    }
    if (lp.intake_stopped) {
      // Quiescing: the stall queue drained (or failed against stopping
      // shards) — flush what resolved but do not resume parsing.
      conn.paused = false;
      if (conn.WantsWrite()) {
        HandleWritable(lp, conn);
      }
      continue;
    }
    // Drained: resume reading and the commands buffered before the pause.
    conn.paused = false;
    lp.poller->Watch(conn.fd, true, conn.WantsWrite());
    ProcessInput(lp, conn);
    if (lp.exiting || lp.conns.find(id) == lp.conns.end()) {
      continue;
    }
    if (conn.WantsWrite()) {
      HandleWritable(lp, conn);
    } else if (conn.closing && conn.inflight == 0) {
      CloseConn(lp, conn.id);
    }
  }
}

// A stalled request met a stopping shard (shutdown). Resolve its reply slot
// so the connection does not hang on a reply that can never come.
void Server::FailStalledRequest(Loop& lp, Conn& conn, Request& req) {
  std::string r;
  AppendError(&r, "server shutting down");
  if (req.multi != nullptr) {
    req.multi->Fail("ERR server shutting down");
    if (req.multi->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Every part of a multi was submitted from the owning connection's
      // loop, so the join target lives here too.
      const auto target = lp.conns.find(req.multi->conn_id);
      if (target != lp.conns.end()) {
        JNVM_DCHECK(target->second->inflight > 0);
        --target->second->inflight;
        std::string joined;
        {
          std::lock_guard<std::mutex> lk(req.multi->err_mu);
          AppendErrorCode(&joined, req.multi->error);
        }
        CompleteInline(*target->second, req.multi->seq, std::move(joined));
      }
    }
    return;
  }
  if (req.conn_id != 0) {
    JNVM_DCHECK(conn.inflight > 0);
    --conn.inflight;
    CompleteInline(conn, req.seq, std::move(r));
  }
}

void Server::CompleteInline(Conn& conn, uint64_t seq, std::string&& reply) {
  // If this seq was next in line the bytes land in `out` now; they go out
  // in HandleReadable's tail flush or on the next POLLOUT.
  conn.Complete(seq, std::move(reply));
}

bool Server::Dispatch(Loop& lp, Conn& conn, std::vector<std::string>& args) {
  const std::string cmd = Upper(args[0]);
  if (cmd == "REPLACK") {
    // Ack frame from a REPLSYNC subscriber: REPLACK <shard> <seq> certifies
    // that the replica's log is durable through <seq>. One-way — it gets no
    // reply and consumes no command sequence, so it neither occupies the
    // reorder buffer nor corrupts the stream framing the follower reads.
    uint32_t idx = 0;
    uint64_t acked = 0;
    if (args.size() != 3 || !ParseU32(args[1], &idx) ||
        idx >= shards_.size() || !ParseU64(args[2], &acked)) {
      Bump(lp.counters.protocol_errors);
      return false;  // malformed ack: drop the stream connection
    }
    shards_[idx]->Ack(conn.id, acked);
    return true;
  }
  const uint64_t seq = conn.next_seq++;
  auto inline_error = [&](const std::string& msg) {
    std::string r;
    AppendError(&r, msg);
    CompleteInline(conn, seq, std::move(r));
    return true;
  };
  // Error replies whose first token IS the code (-MOVED, -ASK, -TRYAGAIN,
  // -CLUSTERDOWN, -BADCONFIG) rather than the generic -ERR prefix.
  auto inline_code = [&](const std::string& msg) {
    std::string r;
    AppendErrorCode(&r, msg);
    CompleteInline(conn, seq, std::move(r));
    return true;
  };

  // ---- Transactions (DESIGN.md §9): MULTI queues, EXEC runs, DISCARD drops.
  if (cmd == "MULTI") {
    if (conn.in_multi) {
      return inline_error("MULTI calls can not be nested");
    }
    conn.in_multi = true;
    conn.txn_dirty = false;
    conn.txn_cmds.clear();
    std::string r;
    AppendSimple(&r, "OK");
    CompleteInline(conn, seq, std::move(r));
    return true;
  }
  if (cmd == "DISCARD") {
    if (!conn.in_multi) {
      return inline_error("DISCARD without MULTI");
    }
    conn.in_multi = false;
    conn.txn_dirty = false;
    conn.txn_cmds.clear();
    std::string r;
    AppendSimple(&r, "OK");
    CompleteInline(conn, seq, std::move(r));
    return true;
  }
  if (cmd == "EXEC") {
    if (args.size() != 1) {
      return inline_error("wrong number of arguments for EXEC");
    }
    if (!conn.in_multi) {
      return inline_error("EXEC without MULTI");
    }
    return DispatchExec(lp, conn, seq);
  }
  if (conn.in_multi) {
    // Queue time: only the data subset (SET/GET/DEL) may ride in a txn, and
    // any queue-time error dirties it — EXEC then refuses the whole batch
    // with -TXNABORT rather than executing a half-valid txn.
    if (cmd == "SET" || cmd == "GET" || cmd == "DEL") {
      const size_t want = cmd == "SET" ? 3 : 2;
      if (args.size() != want) {
        conn.txn_dirty = true;
        return inline_error("wrong number of arguments for " + cmd);
      }
      if (conn.txn_cmds.size() >= kMaxArgs) {
        conn.txn_dirty = true;
        return inline_error("transaction exceeds " + std::to_string(kMaxArgs) +
                            " commands");
      }
      args[0] = cmd;  // canonical upper case for DispatchExec
      conn.txn_cmds.push_back(std::move(args));
      std::string r;
      AppendSimple(&r, "QUEUED");
      CompleteInline(conn, seq, std::move(r));
      return true;
    }
    conn.txn_dirty = true;
    return inline_error("command not allowed in MULTI: " + cmd);
  }

  if (cmd == "PING") {
    std::string r;
    AppendSimple(&r, "PONG");
    CompleteInline(conn, seq, std::move(r));
    return true;
  }
  if (cmd == "SET" || cmd == "GET" || cmd == "DEL" || cmd == "TOUCH" ||
      cmd == "HSET") {
    Request req;
    if (cmd == "SET") {
      if (args.size() != 3) {
        return inline_error("wrong number of arguments for SET");
      }
      req.op = Request::Op::kSet;
      req.value = std::move(args[2]);
    } else if (cmd == "HSET") {
      if (args.size() != 4) {
        return inline_error("wrong number of arguments for HSET");
      }
      uint32_t field;
      if (!ParseU32(args[2], &field)) {
        return inline_error("HSET field must be a decimal index");
      }
      req.op = Request::Op::kHset;
      req.field = field;
      req.value = std::move(args[3]);
    } else {
      if (args.size() != 2) {
        return inline_error("wrong number of arguments for " + cmd);
      }
      req.op = cmd == "GET"   ? Request::Op::kGet
               : cmd == "DEL" ? Request::Op::kDel
                              : Request::Op::kTouch;
    }
    req.key = std::move(args[1]);
    if (cluster_ != nullptr) {
      const bool asking = conn.asking;
      conn.asking = false;  // one-shot: ASKING covers exactly one command
      if (RouteClusterKey(lp, conn, seq, req.key, asking, &req)) {
        return true;  // redirect answered inline
      }
    }
    req.conn_id = conn.id;
    req.seq = seq;
    const uint32_t idx = ShardFor(req.key, static_cast<uint32_t>(shards_.size()));
    if (req.op == Request::Op::kGet || req.op == Request::Op::kTouch) {
      req.min_seq = conn.MinSeqFor(idx);
    }
    ++conn.inflight;
    if (req.min_seq > 0) {
      // Session read: when the shard's applied watermark is behind the
      // connection's MINSEQ token the shard parks the read (released by the
      // apply batch that catches up, or -STALE on timeout/overflow). kReady
      // leaves the request untouched and it submits like any other read.
      // The release routes back to this loop by conn id, wherever the
      // MINSEQ token was minted.
      switch (shards_[idx]->GateSessionRead(req, NowNs() / 1000000ull)) {
        case Shard::ReadGate::kReady:
          break;
        case Shard::ReadGate::kParked:
        case Shard::ReadGate::kStale:
          return true;  // the shard owns the completion now
      }
    }
    if (!SubmitOrStall(lp, conn, idx, std::move(req))) {
      --conn.inflight;
      return inline_error("server shutting down");
    }
    return true;
  }
  if (cmd == "MINSEQ" || cmd == "LASTSEQ") {
    // Session-consistency plane. MINSEQ <shard> <seq> raises this
    // connection's read floor for the shard (monotone; answered inline).
    // LASTSEQ <shard> runs as a singleton control batch on the shard worker
    // and replies the sealed watermark — on a primary that covers every
    // write the connection pipelined before it, which is exactly the token
    // a client needs for read-your-writes on a replica.
    const size_t want = cmd == "MINSEQ" ? 3 : 2;
    uint32_t idx = 0;
    if (args.size() != want || !ParseU32(args[1], &idx) ||
        idx >= shards_.size()) {
      return inline_error(cmd + " expects a shard index" +
                          (cmd == "MINSEQ" ? " and a sequence number" : ""));
    }
    if (cmd == "MINSEQ") {
      uint64_t mseq = 0;
      if (!ParseU64(args[2], &mseq)) {
        return inline_error("MINSEQ seq must be a decimal sequence number");
      }
      conn.RaiseMinSeq(idx, mseq);
      std::string r;
      AppendSimple(&r, "OK");
      CompleteInline(conn, seq, std::move(r));
      return true;
    }
    Request req;
    req.op = Request::Op::kLastSeq;
    req.conn_id = conn.id;
    req.seq = seq;
    ++conn.inflight;
    if (!SubmitOrStall(lp, conn, idx, std::move(req))) {
      --conn.inflight;
      return inline_error("server shutting down");
    }
    return true;
  }
  if (cmd == "MSET") {
    if (args.size() < 3 || (args.size() - 1) % 2 != 0) {
      return inline_error("wrong number of arguments for MSET");
    }
    const uint32_t pairs = static_cast<uint32_t>((args.size() - 1) / 2);
    if (cluster_ != nullptr) {
      // Multi-key commands cannot follow an -ASK (one redirect, many slots),
      // so every key's slot must be plainly local — owned here and not
      // mid-migration. The first offending key decides the refusal.
      conn.asking = false;
      for (uint32_t i = 0; i < pairs; ++i) {
        const uint16_t slot = cluster::SlotForKey(args[1 + 2 * i]);
        const cluster::Route rt = cluster_->Lookup(slot, /*asking=*/false);
        if (rt.action == cluster::Route::Action::kLocal && !rt.migrating) {
          continue;
        }
        if (rt.action == cluster::Route::Action::kMoved) {
          Bump(lp.counters.moved_replies);
          return inline_code("MOVED " + std::to_string(slot) + " " + rt.addr);
        }
        if (rt.action == cluster::Route::Action::kDown) {
          return inline_code("CLUSTERDOWN slot " + std::to_string(slot) +
                             " is unassigned");
        }
        return inline_code("TRYAGAIN slot " + std::to_string(slot) +
                           " is migrating; multi-key commands need stable "
                           "slots");
      }
    }
    auto multi = std::make_shared<MultiOp>();
    multi->remaining.store(pairs, std::memory_order_relaxed);
    multi->conn_id = conn.id;
    multi->seq = seq;
    ++conn.inflight;
    for (uint32_t i = 0; i < pairs; ++i) {
      Request req;
      req.op = Request::Op::kSet;
      req.key = std::move(args[1 + 2 * i]);
      req.value = std::move(args[2 + 2 * i]);
      req.multi = multi;
      const uint32_t idx =
          ShardFor(req.key, static_cast<uint32_t>(shards_.size()));
      if (!SubmitOrStall(lp, conn, idx, std::move(req))) {
        // Parts already queued still execute but the joined reply can no
        // longer be produced; fail the command now. The connection is
        // closing with the server anyway.
        --conn.inflight;
        return inline_error("server shutting down");
      }
    }
    return true;
  }
  if (cmd == "REPLSYNC" || cmd == "REPLSNAP" || cmd == "REPLDIFF") {
    // REPLSYNC <shard> <from> [nshards [epoch]]: the optional arguments let
    // the replica prove its configuration matches before the connection
    // becomes a one-way record feed. A mismatch is a hard, explicit
    // -BADCONFIG — a replica with a different shard count would route keys
    // to the wrong shards, and a different config epoch means the two nodes
    // disagree about slot ownership; silently streaming would corrupt it.
    //
    // REPLDIFF <shard> <from> <digests> [nshards [epoch]] (DESIGN.md §11)
    // is REPLSYNC plus proof: <digests> carries the follower's per-segment
    // CRC digests, verified against the retained log before the stream
    // starts. Divergence answers -DIFFBASE (take a REPLSNAP) instead of
    // silently feeding records onto mismatched history.
    const bool sync = cmd == "REPLSYNC";
    const bool diff = cmd == "REPLDIFF";
    const size_t lo = diff ? 4 : 3, hi = diff ? 6 : 5;
    if ((sync || diff) ? (args.size() < lo || args.size() > hi)
                       : args.size() != 2) {
      return inline_error("wrong number of arguments for " + cmd);
    }
    uint32_t idx = 0;
    if (!ParseU32(args[1], &idx) || idx >= shards_.size()) {
      return inline_error(cmd + " shard index out of range");
    }
    Request req;
    if (sync || diff) {
      uint64_t from = 0;
      if (!ParseU64(args[2], &from) || from == 0) {
        return inline_error(cmd + " from-seq must be >= 1");
      }
      const size_t opt = diff ? 4 : 3;  // first optional-arg index
      if (args.size() >= opt + 1) {
        uint32_t nshards = 0;
        if (!ParseU32(args[opt], &nshards)) {
          return inline_error(cmd + " nshards must be decimal");
        }
        if (nshards != shards_.size()) {
          return inline_code("BADCONFIG shard count mismatch: primary has " +
                             std::to_string(shards_.size()) +
                             " shards, replica has " + std::to_string(nshards));
        }
      }
      if (args.size() == opt + 2) {
        uint64_t epoch = 0;
        if (!ParseU64(args[opt + 1], &epoch)) {
          return inline_error(cmd + " epoch must be decimal");
        }
        const uint64_t mine = cluster_ != nullptr ? cluster_->epoch() : 0;
        if (epoch != mine) {
          return inline_code("BADCONFIG config epoch mismatch: primary at " +
                             std::to_string(mine) + ", replica at " +
                             std::to_string(epoch));
        }
      }
      req.op = diff ? Request::Op::kReplDiff : Request::Op::kReplSync;
      req.repl_seq = from;
      if (diff) {
        req.value = std::move(args[3]);  // the digest frame
      }
    } else {
      req.op = Request::Op::kReplSnap;
    }
    req.conn_id = conn.id;
    req.seq = seq;
    ++conn.inflight;
    if (!SubmitOrStall(lp, conn, idx, std::move(req))) {
      --conn.inflight;
      return inline_error("server shutting down");
    }
    return true;
  }
  if (cmd == "PROMOTE") {
    if (args.size() != 1) {
      return inline_error("wrong number of arguments for PROMOTE");
    }
    // Quiesce the pull side first: joins every pull thread, so no kApply
    // can land after the audit below starts.
    if (repl_client_ != nullptr) {
      repl_client_->Stop();
    }
    // Resolve staged cross-shard txns against the mirrored decision records
    // before the audit/flip: the resolution requests queue ahead of each
    // shard's kPromote, so a txn whose decision reached this replica commits
    // and the rest abort — never a silent partial apply.
    ResolveCrossShardTxns(lp);
    auto multi = std::make_shared<MultiOp>();
    multi->remaining.store(static_cast<uint32_t>(shards_.size()),
                           std::memory_order_relaxed);
    multi->conn_id = conn.id;
    multi->seq = seq;
    // Two-phase: each shard only audits; the join flips this whole list
    // writable iff every audit passed (see MultiOp::promote_shards).
    multi->promote_shards.reserve(shards_.size());
    for (auto& sh : shards_) {
      multi->promote_shards.push_back(sh.get());
    }
    ++conn.inflight;
    for (uint32_t i = 0; i < shards_.size(); ++i) {
      Request req;
      req.op = Request::Op::kPromote;
      req.multi = multi;
      if (!SubmitOrStall(lp, conn, i, std::move(req))) {
        --conn.inflight;
        return inline_error("server shutting down");
      }
    }
    return true;
  }
  // ---- Cluster plane (DESIGN.md §10) ---------------------------------------
  if (cmd == "ASKING") {
    if (cluster_ == nullptr) {
      return inline_error("cluster support is disabled");
    }
    conn.asking = true;
    std::string r;
    AppendSimple(&r, "OK");
    CompleteInline(conn, seq, std::move(r));
    return true;
  }
  if (cmd == "CLUSTER") {
    return DispatchCluster(conn, seq, args);
  }
  if (cmd == "MIGSTART") {
    return DispatchMigStart(lp, conn, seq, args);
  }
  if (cmd == "MIGAPPLY") {
    return DispatchMigApply(lp, conn, seq, args);
  }
  if (cmd == "MIGCOMMIT") {
    // THE commit point of a migration: the importing range's owner words
    // flip to this node, durably, before the +OK goes back to the source.
    uint32_t lo = 0, hi = 0;
    uint64_t epoch = 0;
    if (cluster_ == nullptr) {
      return inline_error("cluster support is disabled");
    }
    if (args.size() != 4 || !ParseU32(args[1], &lo) || !ParseU32(args[2], &hi) ||
        !ParseU64(args[3], &epoch)) {
      return inline_error("MIGCOMMIT expects lo hi epoch");
    }
    std::string err;
    if (!cluster_->CommitImport(lo, hi, epoch, &err)) {
      return inline_error("MIGCOMMIT: " + err);
    }
    std::string r;
    AppendSimple(&r, "OK");
    CompleteInline(conn, seq, std::move(r));
    return true;
  }
  if (cmd == "MIGABORT") {
    // Best-effort from a rolling-back source; always +OK — an import that
    // already ended (or never started) needs nothing. The keys a dead
    // import copied are unserved (owners still name the source) and the
    // next MIGSTART purges the range before copying again.
    if (cluster_ == nullptr) {
      return inline_error("cluster support is disabled");
    }
    std::string err;
    cluster_->AbortImport(&err);
    std::string r;
    AppendSimple(&r, "OK");
    CompleteInline(conn, seq, std::move(r));
    return true;
  }
  if (cmd == "CKPT") {
    // Fuzzy checkpoint over every shard (DESIGN.md §11). The runner drives
    // the walk + finalize from its own thread and posts the reply through
    // the completion sink when the pass ends — the loop never blocks.
    if (args.size() != 1) {
      return inline_error("wrong number of arguments for CKPT");
    }
    if (!opts_.shard.repl_log) {
      return inline_error("CKPT requires the replication log");
    }
    ++conn.inflight;
    if (!ckpt_runner_->Trigger(conn.id, seq)) {
      --conn.inflight;
      return inline_code("BUSY checkpoint already running");
    }
    return true;
  }
  if (cmd == "STATS") {
    std::string r;
    AppendBulk(&r, BuildStats(lp));
    CompleteInline(conn, seq, std::move(r));
    return true;
  }
  if (cmd == "SHUTDOWN") {
    // One loop coordinates a shutdown; a second SHUTDOWN racing it (from any
    // loop) gets an explicit refusal instead of a second quiesce.
    if (shutdown_claimed_.exchange(true, std::memory_order_acq_rel)) {
      return inline_error("shutdown already in progress");
    }
    DoShutdown(lp, conn.id, seq);
    return true;
  }
  return inline_error("unknown command '" + args[0] + "'");
}

// ---- Cluster plane (DESIGN.md §10) ------------------------------------------

bool Server::RouteClusterKey(Loop& lp, Conn& conn, uint64_t seq,
                             const std::string& key, bool asking,
                             Request* req) {
  const uint16_t slot = cluster::SlotForKey(key);
  const cluster::Route rt = cluster_->Lookup(slot, asking);
  std::string r;
  switch (rt.action) {
    case cluster::Route::Action::kLocal:
      if (rt.migrating && !rt.addr.empty()) {
        // Serve here, but a key miss now means "already moved (or never
        // existed)": the shard answers -ASK <slot> <addr> instead of a
        // plain miss, and writes of missing keys redirect the same way.
        req->ask_addr = std::to_string(slot) + " " + rt.addr;
      }
      return false;
    case cluster::Route::Action::kMoved:
      Bump(lp.counters.moved_replies);
      AppendErrorCode(&r, "MOVED " + std::to_string(slot) + " " + rt.addr);
      break;
    case cluster::Route::Action::kTryAgain:
      AppendErrorCode(&r, "TRYAGAIN slot " + std::to_string(slot) +
                              " is frozen for handoff");
      break;
    case cluster::Route::Action::kDown:
      AppendErrorCode(&r, "CLUSTERDOWN slot " + std::to_string(slot) +
                              " is unassigned");
      break;
  }
  CompleteInline(conn, seq, std::move(r));
  return true;
}

bool Server::DispatchCluster(Conn& conn, uint64_t seq,
                             std::vector<std::string>& args) {
  auto reply_err = [&](const std::string& msg) {
    std::string r;
    AppendError(&r, msg);
    CompleteInline(conn, seq, std::move(r));
    return true;
  };
  auto reply_ok = [&] {
    std::string r;
    AppendSimple(&r, "OK");
    CompleteInline(conn, seq, std::move(r));
    return true;
  };
  if (cluster_ == nullptr) {
    return reply_err("cluster support is disabled");
  }
  if (args.size() < 2) {
    return reply_err("CLUSTER expects a subcommand");
  }
  const std::string sub = Upper(args[1]);
  if (sub == "MEET") {
    // CLUSTER MEET <index> <host:port> — register a peer in the node table.
    uint32_t idx = 0;
    if (args.size() != 4 || !ParseU32(args[2], &idx)) {
      return reply_err("CLUSTER MEET expects index host:port");
    }
    std::string err;
    if (!cluster_->Meet(idx, args[3], &err)) {
      return reply_err("CLUSTER MEET: " + err);
    }
    return reply_ok();
  }
  if (sub == "SLOTS") {
    // One bulk "lo hi host:port" per contiguous owned run — the client's
    // slot-cache bootstrap.
    std::vector<std::string> runs;
    uint16_t run_owner = cluster::kNoOwner;
    uint32_t run_lo = 0;
    const auto flush = [&](uint32_t end_exclusive) {
      if (run_owner == cluster::kNoOwner) {
        return;
      }
      const std::string addr = cluster_->NodeAddr(run_owner);
      if (!addr.empty()) {
        runs.push_back(std::to_string(run_lo) + " " +
                       std::to_string(end_exclusive - 1) + " " + addr);
      }
    };
    for (uint32_t slot = 0; slot < cluster::kNumSlots; ++slot) {
      const uint16_t o = cluster_->OwnerOf(static_cast<uint16_t>(slot));
      if (o != run_owner) {
        flush(slot);
        run_owner = o;
        run_lo = slot;
      }
    }
    flush(cluster::kNumSlots);
    std::string r;
    AppendArrayHeader(&r, runs.size());
    for (const std::string& run : runs) {
      AppendBulk(&r, run);
    }
    CompleteInline(conn, seq, std::move(r));
    return true;
  }
  if (sub == "SETSLOT") {
    if (args.size() < 3) {
      return reply_err("CLUSTER SETSLOT expects ASSIGN or MIGRATE");
    }
    const std::string verb = Upper(args[2]);
    uint32_t lo = 0, hi = 0, node = 0;
    if (args.size() < 6 || !ParseU32(args[3], &lo) || !ParseU32(args[4], &hi) ||
        !ParseU32(args[5], &node)) {
      return reply_err("CLUSTER SETSLOT " + verb + " expects lo hi node");
    }
    if (verb == "ASSIGN") {
      // Static assignment (bootstrap / tests): rewrite the range's owner
      // words and bump the epoch. No data moves.
      std::string err;
      if (!cluster_->AssignRange(lo, hi, node, &err)) {
        return reply_err("CLUSTER SETSLOT ASSIGN: " + err);
      }
      return reply_ok();
    }
    if (verb == "MIGRATE") {
      // Live migration: spawns the Migrator thread; progress via CLUSTER
      // INFO. The optional throttle widens the crash window for CI.
      cluster::MigrateOptions mo;
      mo.lo = lo;
      mo.hi = hi;
      mo.peer = node;
      if (args.size() >= 7) {
        uint32_t throttle = 0;
        if (!ParseU32(args[6], &throttle)) {
          return reply_err("CLUSTER SETSLOT MIGRATE: bad throttle_ms");
        }
        mo.throttle_ms = throttle;
      }
      std::string err;
      if (!migrator_->Start(mo, &err)) {
        return reply_err("CLUSTER SETSLOT MIGRATE: " + err);
      }
      return reply_ok();
    }
    return reply_err("CLUSTER SETSLOT expects ASSIGN or MIGRATE");
  }
  if (sub == "INFO") {
    std::string text = cluster_->Describe();
    text += "migrator:" + migrator_->status() + "\n";
    uint32_t lo = 0, hi = 0, peer = 0;
    if (cluster_->mig_state() != cluster::MigState::kNone) {
      cluster_->MigRange(&lo, &hi, &peer);
      uint64_t residual = 0;
      for (const auto& sh : shards_) {
        residual += sh->KeysInSlotRange(lo, hi);
      }
      text += "keys_in_mig_range:" + std::to_string(residual) + "\n";
    }
    std::string r;
    AppendBulk(&r, text);
    CompleteInline(conn, seq, std::move(r));
    return true;
  }
  return reply_err("unknown CLUSTER subcommand '" + args[1] + "'");
}

bool Server::DispatchMigStart(Loop& lp, Conn& conn, uint64_t seq,
                              std::vector<std::string>& args) {
  auto reply_err = [&](const std::string& msg, bool code = false) {
    std::string r;
    if (code) {
      AppendErrorCode(&r, msg);
    } else {
      AppendError(&r, msg);
    }
    CompleteInline(conn, seq, std::move(r));
    return true;
  };
  if (cluster_ == nullptr) {
    return reply_err("cluster support is disabled");
  }
  uint32_t lo = 0, hi = 0, src = 0;
  uint64_t src_epoch = 0;
  if (args.size() != 5 || !ParseU32(args[1], &lo) || !ParseU32(args[2], &hi) ||
      !ParseU32(args[3], &src) || !ParseU64(args[4], &src_epoch)) {
    return reply_err("MIGSTART expects lo hi src-node src-epoch");
  }
  if (lo > hi || hi >= cluster::kNumSlots) {
    return reply_err("MIGSTART: bad slot range");
  }
  // "+OWNED" short-circuit: a previous drive of this migration durably
  // committed here; the source learns it can only roll forward.
  if (cluster_->OwnsRange(lo, hi)) {
    std::string r;
    AppendSimple(&r, "OWNED");
    CompleteInline(conn, seq, std::move(r));
    return true;
  }
  // Config validation — explicit -BADCONFIG, never a silent accept: the
  // source must be a node this table knows, and no slot of the range may be
  // owned by a third node (the two tables would disagree about ownership).
  if (src >= cluster::ClusterMetaRoot::kMaxNodes ||
      cluster_->NodeAddr(src).empty()) {
    return reply_err("BADCONFIG unknown source node " + std::to_string(src),
                     /*code=*/true);
  }
  for (uint32_t slot = lo; slot <= hi; ++slot) {
    const uint16_t o = cluster_->OwnerOf(static_cast<uint16_t>(slot));
    if (o != cluster::kNoOwner && o != src && o != cluster_->self()) {
      return reply_err("BADCONFIG slot " + std::to_string(slot) +
                           " is owned by node " + std::to_string(o) +
                           ", not the migration source",
                       /*code=*/true);
    }
  }
  std::string err;
  if (!cluster_->StartImporting(lo, hi, src, &err)) {
    return reply_err("MIGSTART: " + err);
  }
  // Purge the range on every shard before the copy streams in: a re-driven
  // migration must not leave keys a previous partial copy wrote and the
  // source has since deleted. The joined reply is +IMPORTING.
  auto multi = std::make_shared<MultiOp>();
  multi->remaining.store(static_cast<uint32_t>(shards_.size()),
                         std::memory_order_relaxed);
  multi->conn_id = conn.id;
  multi->seq = seq;
  multi->ok_reply = "IMPORTING";
  ++conn.inflight;
  for (uint32_t i = 0; i < shards_.size(); ++i) {
    Request req;
    req.op = Request::Op::kSlotPurge;
    req.slot_lo = static_cast<uint16_t>(lo);
    req.slot_hi = static_cast<uint16_t>(hi);
    req.multi = multi;
    if (!SubmitOrStall(lp, conn, i, std::move(req))) {
      --conn.inflight;
      return reply_err("server shutting down");
    }
  }
  return true;
}

bool Server::DispatchMigApply(Loop& lp, Conn& conn, uint64_t seq,
                              std::vector<std::string>& args) {
  auto reply_err = [&](const std::string& msg) {
    std::string r;
    AppendError(&r, msg);
    CompleteInline(conn, seq, std::move(r));
    return true;
  };
  if (cluster_ == nullptr) {
    return reply_err("cluster support is disabled");
  }
  if (args.size() != 2) {
    return reply_err("MIGAPPLY expects a batch frame");
  }
  if (cluster_->mig_state() != cluster::MigState::kImporting) {
    return reply_err("MIGAPPLY: no import in progress");
  }
  std::vector<repl::ReplOp> ops;
  if (!repl::DecodeBatch(args[1], &ops)) {
    return reply_err("MIGAPPLY: bad batch frame");
  }
  if (ops.empty()) {
    std::string r;
    AppendSimple(&r, "OK");
    CompleteInline(conn, seq, std::move(r));
    return true;
  }
  // Fan the ops out to their owning shards (the slot hash places keys on
  // nodes; the shard hash places them on workers — decorrelated, so one
  // migration chunk touches many shards).
  std::vector<std::vector<repl::ReplOp>> per_shard(shards_.size());
  for (repl::ReplOp& op : ops) {
    per_shard[ShardFor(op.key, static_cast<uint32_t>(shards_.size()))]
        .push_back(std::move(op));
  }
  uint32_t participants = 0;
  for (const auto& v : per_shard) {
    participants += v.empty() ? 0 : 1;
  }
  auto multi = std::make_shared<MultiOp>();
  multi->remaining.store(participants, std::memory_order_relaxed);
  multi->conn_id = conn.id;
  multi->seq = seq;
  ++conn.inflight;
  for (uint32_t i = 0; i < per_shard.size(); ++i) {
    if (per_shard[i].empty()) {
      continue;
    }
    Request req;
    req.op = Request::Op::kMigApply;
    req.mig_ops = std::move(per_shard[i]);
    req.multi = multi;
    if (!SubmitOrStall(lp, conn, i, std::move(req))) {
      --conn.inflight;
      return reply_err("server shutting down");
    }
  }
  return true;
}

// ---- Transactions (DESIGN.md §9) -------------------------------------------

bool Server::DispatchExec(Loop& lp, Conn& conn, uint64_t seq) {
  std::vector<std::vector<std::string>> cmds = std::move(conn.txn_cmds);
  const bool dirty = conn.txn_dirty;
  conn.in_multi = false;
  conn.txn_dirty = false;
  conn.txn_cmds.clear();
  if (dirty) {
    std::string r;
    AppendErrorCode(&r, "TXNABORT transaction discarded because of previous errors");
    CompleteInline(conn, seq, std::move(r));
    return true;
  }
  if (cmds.empty()) {
    std::string r;
    AppendArrayHeader(&r, 0);
    CompleteInline(conn, seq, std::move(r));
    return true;
  }
  if (cluster_ != nullptr) {
    // A transaction's atomicity lives inside this node's shards; every key
    // must map to a plainly-local slot (owned here, not mid-migration) or
    // the whole EXEC is refused with the route's redirect.
    for (const std::vector<std::string>& a : cmds) {
      const uint16_t slot = cluster::SlotForKey(a[1]);
      const cluster::Route rt = cluster_->Lookup(slot, /*asking=*/false);
      if (rt.action == cluster::Route::Action::kLocal && !rt.migrating) {
        continue;
      }
      std::string r;
      if (rt.action == cluster::Route::Action::kMoved) {
        Bump(lp.counters.moved_replies);
        AppendErrorCode(&r, "MOVED " + std::to_string(slot) + " " + rt.addr);
      } else if (rt.action == cluster::Route::Action::kDown) {
        AppendErrorCode(&r, "CLUSTERDOWN slot " + std::to_string(slot) +
                                " is unassigned");
      } else {
        AppendErrorCode(&r, "TRYAGAIN slot " + std::to_string(slot) +
                                " is migrating; transactions need stable "
                                "slots");
      }
      CompleteInline(conn, seq, std::move(r));
      return true;
    }
  }

  auto t = std::make_shared<txn::TxnState>();
  t->id = txn_ids_.Next();  // atomic: loops share one id space
  t->conn_id = conn.id;
  t->reply_seq = seq;
  t->nops = cmds.size();
  t->replies.resize(cmds.size());

  // Partition the ops across shards, preserving txn order within each part.
  std::map<uint32_t, txn::TxnPart> parts;  // ordered: lowest shard first
  for (size_t i = 0; i < cmds.size(); ++i) {
    std::vector<std::string>& a = cmds[i];
    txn::TxnOp op;
    op.kind = a[0] == "SET"   ? txn::TxnOp::Kind::kSet
              : a[0] == "GET" ? txn::TxnOp::Kind::kGet
                              : txn::TxnOp::Kind::kDel;
    op.key = std::move(a[1]);
    if (op.kind == txn::TxnOp::Kind::kSet) {
      op.value = std::move(a[2]);
    }
    op.reply_index = i;
    const uint32_t idx = ShardFor(op.key, static_cast<uint32_t>(shards_.size()));
    txn::TxnPart& part = parts[idx];
    part.shard = idx;
    part.ops.push_back(std::move(op));
  }
  t->parts.reserve(parts.size());
  for (auto& [idx, part] : parts) {
    t->parts.push_back(std::move(part));
  }
  t->single_shard = t->parts.size() == 1;
  // Coordinator = lowest shard that may write (SET/DEL): its replication
  // log carries the decision record. A pure-read txn never seals one, so
  // the choice is moot there.
  t->coordinator = t->parts[0].shard;
  for (const txn::TxnPart& p : t->parts) {
    bool writes = false;
    for (const txn::TxnOp& op : p.ops) {
      if (op.kind != txn::TxnOp::Kind::kGet) {
        writes = true;
        break;
      }
    }
    if (writes) {
      t->coordinator = p.shard;
      break;
    }
  }

  // Phase 1: single-shard txns run their whole commit as one kTxnExec
  // record (the fast path — one record, one Psync, group-commit batched);
  // cross-shard txns prepare on every participant.
  ++conn.inflight;
  t->remaining.store(static_cast<uint32_t>(t->parts.size()),
                     std::memory_order_release);
  for (uint32_t i = 0; i < t->parts.size(); ++i) {
    Request req;
    req.op = t->single_shard ? Request::Op::kTxnExec : Request::Op::kTxnPrepare;
    req.key = txn::TxnIdKey(t->id);
    req.txn = t;
    req.txn_part = i;
    SubmitTxn(lp, t->parts[i].shard, std::move(req));
  }
  return true;
}

void Server::AdvanceTxn(Loop& lp, const std::shared_ptr<txn::TxnState>& t) {
  // Phase joins route back through the completion queue of the loop owning
  // t->conn_id, so this always runs on that loop — the phase machine never
  // races across threads.
  if (t->Failed()) {
    // Abort is always explicit: drop whatever staged with abort-marker
    // records (recovery and replicas observe the same outcome), then tell
    // the client. Parts that never staged (has_writes false) need nothing.
    const std::string idkey = txn::TxnIdKey(t->id);
    for (const txn::TxnPart& p : t->parts) {
      if (!p.has_writes) {
        continue;
      }
      Request req;
      req.op = Request::Op::kTxnAbortMark;
      req.key = idkey;
      SubmitTxn(lp, p.shard, std::move(req));
    }
    DeliverTxnReply(lp, t);
    return;
  }
  const int phase = t->phase.load(std::memory_order_acquire);
  if (phase == txn::TxnState::kPhasePrepare) {
    if (t->single_shard) {
      DeliverTxnReply(lp, t);  // the kTxnExec record was the commit
      return;
    }
    const txn::Decision d = t->BuildDecision();
    if (d.parts.empty()) {
      DeliverTxnReply(lp, t);  // pure-read cross-shard txn: nothing to commit
      return;
    }
    // Phase 2: seal the decision record in the coordinator's log — the
    // durability point of the whole txn.
    t->phase.store(txn::TxnState::kPhaseDecide, std::memory_order_release);
    t->remaining.store(1, std::memory_order_release);
    Request req;
    req.op = Request::Op::kTxnDecide;
    req.key = txn::TxnIdKey(t->id);
    txn::EncodeDecision(d, &req.value);
    req.txn = t;
    for (uint32_t i = 0; i < t->parts.size(); ++i) {
      if (t->parts[i].shard == t->coordinator) {
        req.txn_part = i;
        break;
      }
    }
    SubmitTxn(lp, t->coordinator, std::move(req));
    return;
  }
  // Phase 2 joined: the decision is sealed (and WAIT-K acked or timed out).
  // Phase 3 fans commit markers to the other write participants — fire and
  // forget, because a crash here is repaired from the decision record at
  // recovery — then the EXEC answers.
  t->phase.store(txn::TxnState::kPhaseApply, std::memory_order_release);
  const std::string idkey = txn::TxnIdKey(t->id);
  for (const txn::TxnPart& p : t->parts) {
    if (!p.has_writes || p.shard == t->coordinator) {
      continue;
    }
    Request req;
    req.op = Request::Op::kTxnApply;
    req.key = idkey;
    SubmitTxn(lp, p.shard, std::move(req));
  }
  DeliverTxnReply(lp, t);
}

void Server::DeliverTxnReply(Loop& lp, const std::shared_ptr<txn::TxnState>& t) {
  std::string r;
  if (t->Failed()) {
    AppendErrorCode(&r, "TXNABORT " + t->AbortReason());
  } else if (t->WaitTimedOut()) {
    // Committed locally; the WAIT-K replication quorum missed the deadline.
    // Same degraded contract as a plain write's -WAITTIMEOUT.
    AppendErrorCode(&r,
                    "WAITTIMEOUT txn committed locally; replication ack "
                    "quorum not reached");
  } else {
    AppendArrayHeader(&r, t->nops);
    std::lock_guard<std::mutex> lk(t->mu);
    for (const std::string& frag : t->replies) {
      r += frag;
    }
  }
  const auto it = lp.conns.find(t->conn_id);
  if (it == lp.conns.end()) {
    return;  // client went away; the txn outcome stands regardless
  }
  Conn& conn = *it->second;
  JNVM_DCHECK(conn.inflight > 0);
  --conn.inflight;
  if (conn.Complete(t->reply_seq, std::move(r))) {
    if (!EnforceOutCap(lp, conn)) {
      HandleWritable(lp, conn);
    }
  }
}

void Server::SubmitTxn(Loop& lp, uint32_t shard_idx, Request&& req) {
  // Internal txn-plane submission: never blocks the event loop and never
  // read-pauses a connection. Full queues park the request here and retry
  // on loop ticks / completion drains; a stopping shard fails the txn and
  // counts the phase join down itself so the reply still resolves.
  switch (shards_[shard_idx]->TrySubmit(std::move(req))) {
    case Shard::SubmitResult::kOk:
      return;
    case Shard::SubmitResult::kFull:
      lp.txn_pending.emplace_back(shard_idx, std::move(req));
      return;
    case Shard::SubmitResult::kStopped:
      if (req.txn != nullptr) {
        req.txn->Fail("server shutting down");
        if (req.txn->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          AdvanceTxn(lp, req.txn);
        }
      }
      return;
  }
}

void Server::RetryTxnPending(Loop& lp) {
  // One pass over the queue; still-full shards re-park at the back.
  size_t n = lp.txn_pending.size();
  while (n-- > 0 && !lp.txn_pending.empty()) {
    auto item = std::move(lp.txn_pending.front());
    lp.txn_pending.pop_front();
    SubmitTxn(lp, item.first, std::move(item.second));
  }
}

void Server::ResolveCrossShardTxns(Loop& lp) {
  // Recovery matrix (DESIGN.md §9): a prepared-but-undecided txn commits
  // iff its coordinator's log holds the sealed decision record; otherwise
  // it aborts — both via explicit records, applied idempotently. Decisions
  // whose participant provably never received its prepare (gapless logs)
  // yield repair actions replaying the writes from the decision itself.
  // Runs single-threaded at startup (loop 0, before the pool spawns) or on
  // the loop dispatching PROMOTE.
  std::vector<txn::ShardTxnView> views;
  views.reserve(shards_.size());
  for (const auto& sh : shards_) {
    views.push_back(sh->TxnView());
  }
  for (const txn::ResolutionAction& a : txn::PlanResolution(views)) {
    Request req;
    req.key = txn::TxnIdKey(a.id);
    if (!a.commit) {
      req.op = Request::Op::kTxnAbortMark;
    } else if (a.repair) {
      req.op = Request::Op::kTxnRepair;
      req.field = a.coordinator;
      req.value = a.repair_writes_frame;
    } else {
      req.op = Request::Op::kTxnApply;
    }
    SubmitTxn(lp, a.shard, std::move(req));
  }
}

void Server::DrainCompletions(Loop& lp) {
  std::vector<Completion> batch;
  {
    std::lock_guard<std::mutex> lk(lp.mu);
    batch.swap(lp.completions);
  }
  // Flushes are deferred to the end of the round: every completion a
  // connection receives in this drain lands in its chunk queue first, then
  // one writev (or, on io_uring, one batched submission for the whole dirty
  // set) ships them all — N sealed batches fanning out to a subscriber cost
  // one syscall, not N.
  std::vector<uint64_t> dirty;
  const auto mark_dirty = [&dirty](Conn& conn) {
    if (!conn.flush_pending) {
      conn.flush_pending = true;
      dirty.push_back(conn.id);
    }
  };
  for (Completion& c : batch) {
    if (c.txn != nullptr) {
      // Txn phase join: advance the 2PC regardless of client liveness —
      // the decision and commit markers must still seal even when the
      // issuing connection is gone.
      AdvanceTxn(lp, c.txn);
      continue;
    }
    const auto it = lp.conns.find(c.conn_id);
    if (it == lp.conns.end()) {
      continue;  // client went away before its reply
    }
    Conn& conn = *it->second;
    if (c.stream) {
      // Replication-stream frame: not a command reply, so it neither holds
      // an inflight slot nor passes the reorder buffer — by subscription
      // time every earlier reply on this connection has flushed. The frame
      // is enqueued by reference (one serialization shared by every
      // subscriber); the cap still counts its full logical size, so a
      // subscriber that stops reading is evicted at the same backlog as
      // with private copies.
      if (c.frame != nullptr) {
        Bump(lp.counters.frame_refs);
        Bump(lp.counters.frame_bytes, c.frame->size());
        conn.AppendFrame(std::move(c.frame));
      } else {
        conn.AppendOut(std::move(c.reply));  // backlog replay path
      }
      if (!EnforceOutCap(lp, conn)) {
        mark_dirty(conn);
      }
      continue;
    }
    JNVM_DCHECK(conn.inflight > 0);
    --conn.inflight;
    if (conn.Complete(c.seq, std::move(c.reply))) {
      if (!EnforceOutCap(lp, conn)) {
        mark_dirty(conn);
      }
    }
  }
  FlushDirty(lp, dirty);
  // Completions mean shard queues drained: stalled submissions may fit now.
  RetryStalled(lp);
  RetryTxnPending(lp);
}

void Server::FlushDirty(Loop& lp, std::vector<uint64_t>& dirty) {
  if (dirty.empty()) {
    return;
  }
  // Capability probe: only the io_uring backend accepts a batch. On it, the
  // whole dirty set ships as one submission (N SENDMSG SQEs, one
  // io_uring_enter); leftovers — partial sends, -EAGAIN, errors — fall
  // through to the per-connection path below, which re-arms POLLOUT and
  // does the closing bookkeeping.
  static constexpr size_t kFlushIovecs = 64;
  if (lp.poller->WritevBatch(nullptr, 0) && dirty.size() > 1) {
    std::vector<std::array<struct iovec, kFlushIovecs>> iovs(dirty.size());
    std::vector<Poller::WriteOp> ops;
    std::vector<uint64_t> op_ids;
    ops.reserve(dirty.size());
    op_ids.reserve(dirty.size());
    for (size_t i = 0; i < dirty.size(); ++i) {
      const auto it = lp.conns.find(dirty[i]);
      if (it == lp.conns.end() || !it->second->WantsWrite()) {
        continue;
      }
      Conn& conn = *it->second;
      Poller::WriteOp op;
      op.fd = conn.fd;
      op.iov = iovs[i].data();
      op.niov = static_cast<int>(conn.BuildIovecs(iovs[i].data(), kFlushIovecs));
      ops.push_back(op);
      op_ids.push_back(conn.id);
    }
    if (!ops.empty()) {
      lp.poller->WritevBatch(ops.data(), ops.size());
      Bump(lp.counters.batch_flushes);
      bool any = false;
      for (size_t i = 0; i < ops.size(); ++i) {
        if (ops[i].nsent <= 0) {
          continue;  // -EAGAIN/-EINTR/error: HandleWritable resolves below
        }
        any = true;
        const auto it = lp.conns.find(op_ids[i]);
        if (it == lp.conns.end()) {
          continue;
        }
        Bump(lp.counters.flushed_bytes, static_cast<uint64_t>(ops[i].nsent));
        Bump(lp.counters.flush_chunks, static_cast<uint64_t>(ops[i].niov));
        it->second->ConsumeOut(static_cast<size_t>(ops[i].nsent));
      }
      if (any) {
        Bump(lp.counters.flush_syscalls);
      }
    }
  }
  for (const uint64_t id : dirty) {
    const auto it = lp.conns.find(id);
    if (it == lp.conns.end()) {
      continue;  // evicted earlier in the same round
    }
    it->second->flush_pending = false;
    HandleWritable(lp, *it->second);
  }
}

bool Server::EnforceOutCap(Loop& lp, Conn& conn) {
  if (conn.pending_out_bytes() <= opts_.max_conn_out_bytes) {
    return false;
  }
  Bump(lp.counters.out_overflows);
  CloseConn(lp, conn.id);
  return true;
}

std::string Server::BuildStats(Loop& lp) {
  std::string out;
  char line[512];
  // Counters are per-loop (each slot written by one thread, read here
  // relaxed): the aggregate can lag in-flight operations but never tears
  // or loses increments under --loops > 1.
  uint64_t conns = 0, accepted = 0, commands = 0, proto_errs = 0;
  uint64_t in_ovf = 0, out_ovf = 0, fsys = 0, fbytes = 0, fchunks = 0;
  uint64_t bflush = 0, frefs = 0, fbytes_ref = 0, moved = 0;
  for (const auto& l : loops_) {
    const LoopCounters& c = l->counters;
    conns += Rd(c.open_conns);
    accepted += Rd(c.accepted);
    commands += Rd(c.commands);
    proto_errs += Rd(c.protocol_errors);
    in_ovf += Rd(c.in_overflows);
    out_ovf += Rd(c.out_overflows);
    fsys += Rd(c.flush_syscalls);
    fbytes += Rd(c.flushed_bytes);
    fchunks += Rd(c.flush_chunks);
    bflush += Rd(c.batch_flushes);
    frefs += Rd(c.frame_refs);
    fbytes_ref += Rd(c.frame_bytes);
    moved += Rd(c.moved_replies);
  }
  std::snprintf(line, sizeof(line),
                "server: shards=%zu batch=%u backend=%s poller=%s loops=%zu "
                "conns=%llu accepted=%llu commands=%llu protocol_errors=%llu "
                "in_overflows=%llu out_overflows=%llu\n",
                shards_.size(), opts_.shard.batch, opts_.shard.backend.c_str(),
                lp.poller->name(), loops_.size(),
                static_cast<unsigned long long>(conns),
                static_cast<unsigned long long>(accepted),
                static_cast<unsigned long long>(commands),
                static_cast<unsigned long long>(proto_errs),
                static_cast<unsigned long long>(in_ovf),
                static_cast<unsigned long long>(out_ovf));
  out += line;
  // chunks_per_flush ×100 (two implied decimals) keeps the dump integer-only.
  const uint64_t cpf100 = fsys == 0 ? 0 : fchunks * 100 / fsys;
  std::snprintf(line, sizeof(line),
                "output: flush_syscalls=%llu flushed_bytes=%llu "
                "chunks_per_flush=%llu.%02llu batch_flushes=%llu "
                "frame_refs=%llu frame_bytes=%llu\n",
                static_cast<unsigned long long>(fsys),
                static_cast<unsigned long long>(fbytes),
                static_cast<unsigned long long>(cpf100 / 100),
                static_cast<unsigned long long>(cpf100 % 100),
                static_cast<unsigned long long>(bflush),
                static_cast<unsigned long long>(frefs),
                static_cast<unsigned long long>(fbytes_ref));
  out += line;
  uint64_t records = 0, elided = 0, puts = 0, gets = 0, updates = 0, dels = 0;
  uint64_t txn_prep = 0, txn_comm = 0, txn_abrt = 0, txn_infl = 0, txn_dec = 0;
  uint64_t ask_replies = 0, mig_applied = 0;
  for (const auto& sh : shards_) {
    const ShardStats s = sh->Stats();
    ask_replies += s.ask_replies;
    mig_applied += s.mig_applied_ops;
    records += s.records;
    elided += s.elided_fences;
    puts += s.ops.puts;
    gets += s.ops.gets;
    updates += s.ops.updates;
    dels += s.ops.deletes;
    txn_prep += s.txn.prepared;
    txn_comm += s.txn.committed;
    txn_abrt += s.txn.aborted;
    txn_infl += s.txn.inflight;
    txn_dec += s.txn.decision_records;
    std::snprintf(
        line, sizeof(line),
        "shard%u: records=%llu queue=%llu batches=%llu max_batch=%llu "
        "elided_fences=%llu puts=%llu gets=%llu misses=%llu updates=%llu "
        "deletes=%llu bytes_w=%llu bytes_r=%llu cache_hits=%llu "
        "cache_misses=%llu psyncs=%llu pfences=%llu\n",
        sh->index(), static_cast<unsigned long long>(s.records),
        static_cast<unsigned long long>(s.queue_depth),
        static_cast<unsigned long long>(s.batches),
        static_cast<unsigned long long>(s.max_batch),
        static_cast<unsigned long long>(s.elided_fences),
        static_cast<unsigned long long>(s.ops.puts),
        static_cast<unsigned long long>(s.ops.gets),
        static_cast<unsigned long long>(s.ops.get_misses),
        static_cast<unsigned long long>(s.ops.updates),
        static_cast<unsigned long long>(s.ops.deletes),
        static_cast<unsigned long long>(s.ops.bytes_written),
        static_cast<unsigned long long>(s.ops.bytes_read),
        static_cast<unsigned long long>(s.cache.hits),
        static_cast<unsigned long long>(s.cache.misses),
        static_cast<unsigned long long>(s.device.psyncs),
        static_cast<unsigned long long>(s.device.pfences));
    out += line;
    if (s.repl.enabled) {
      std::snprintf(
          line, sizeof(line),
          "repl%u: role=%s sealed=%llu start=%llu applied=%llu "
          "log_bytes=%llu log_segments=%llu subs=%llu wait_acks=%u "
          "acked=%llu parked=%llu wait_timeouts=%llu stream_frames=%llu "
          "stream_frame_bytes=%llu catchup_records=%llu catchup_bytes=%llu "
          "snap_bytes=%llu apply_batch=%u parked_reads=%llu "
          "released_reads=%llu stale_reads=%llu%s\n",
          sh->index(), s.repl.follower ? "replica" : "primary",
          static_cast<unsigned long long>(s.repl.sealed_seq),
          static_cast<unsigned long long>(s.repl.start_seq),
          static_cast<unsigned long long>(s.repl.applied_batches),
          static_cast<unsigned long long>(s.repl.log_bytes),
          static_cast<unsigned long long>(s.repl.log_segments),
          static_cast<unsigned long long>(s.repl.subscribers),
          s.repl.wait_acks,
          static_cast<unsigned long long>(s.repl.acked_seq),
          static_cast<unsigned long long>(s.repl.parked_batches),
          static_cast<unsigned long long>(s.repl.wait_timeouts),
          static_cast<unsigned long long>(s.repl.stream_frames),
          static_cast<unsigned long long>(s.repl.stream_frame_bytes),
          static_cast<unsigned long long>(s.repl.catchup_records),
          static_cast<unsigned long long>(s.repl.catchup_bytes),
          static_cast<unsigned long long>(s.repl.snap_bytes),
          s.repl.apply_batch,
          static_cast<unsigned long long>(s.repl.parked_reads),
          static_cast<unsigned long long>(s.repl.released_reads),
          static_cast<unsigned long long>(s.repl.stale_reads),
          s.repl.needs_snapshot ? " needs_snapshot" : "");
      out += line;
      std::snprintf(
          line, sizeof(line),
          "ckpt%u: count=%llu begin=%llu end=%llu walked_keys=%llu "
          "walked_bytes=%llu truncated_segs=%llu replayed=%llu "
          "retry_later=%llu\n",
          sh->index(), static_cast<unsigned long long>(s.ckpt.count),
          static_cast<unsigned long long>(s.ckpt.begin_seq),
          static_cast<unsigned long long>(s.ckpt.end_seq),
          static_cast<unsigned long long>(s.ckpt.walked_keys),
          static_cast<unsigned long long>(s.ckpt.walked_bytes),
          static_cast<unsigned long long>(s.ckpt.truncated_segments),
          static_cast<unsigned long long>(s.ckpt.replayed_records),
          static_cast<unsigned long long>(s.ckpt.retry_later));
      out += line;
    }
  }
  if (ckpt_runner_ != nullptr && opts_.shard.repl_log) {
    std::snprintf(line, sizeof(line), "ckpt: busy=%d status=%s\n",
                  ckpt_runner_->busy() ? 1 : 0,
                  ckpt_runner_->status().c_str());
    out += line;
  }
  if (repl_client_ != nullptr) {
    const repl::ReplClientStats rs = repl_client_->Stats();
    std::snprintf(line, sizeof(line),
                  "replclient: received=%llu snapshots=%llu resyncs=%llu "
                  "gap_resyncs=%llu bad_configs=%llu diff_resyncs=%llu "
                  "diff_rejected=%llu retry_later=%llu\n",
                  static_cast<unsigned long long>(rs.records_received),
                  static_cast<unsigned long long>(rs.snapshots_installed),
                  static_cast<unsigned long long>(rs.resyncs),
                  static_cast<unsigned long long>(rs.gap_resyncs),
                  static_cast<unsigned long long>(rs.bad_configs),
                  static_cast<unsigned long long>(rs.diff_resyncs),
                  static_cast<unsigned long long>(rs.diff_rejected),
                  static_cast<unsigned long long>(rs.retry_later));
    out += line;
  }
  std::snprintf(line, sizeof(line),
                "txn: committed=%llu aborted=%llu prepared=%llu inflight=%llu "
                "decision_records=%llu\n",
                static_cast<unsigned long long>(txn_comm),
                static_cast<unsigned long long>(txn_abrt),
                static_cast<unsigned long long>(txn_prep),
                static_cast<unsigned long long>(txn_infl),
                static_cast<unsigned long long>(txn_dec));
  out += line;
  if (cluster_ != nullptr) {
    std::snprintf(
        line, sizeof(line),
        "cluster: epoch=%llu slots_owned=%llu migrations_in=%llu "
        "migrations_out=%llu moved_replies=%llu ask_replies=%llu "
        "mig_applied_ops=%llu\n",
        static_cast<unsigned long long>(cluster_->epoch()),
        static_cast<unsigned long long>(cluster_->slots_owned()),
        static_cast<unsigned long long>(cluster_->migrations_in()),
        static_cast<unsigned long long>(cluster_->migrations_out()),
        static_cast<unsigned long long>(moved),
        static_cast<unsigned long long>(ask_replies),
        static_cast<unsigned long long>(mig_applied));
    out += line;
  }
  std::snprintf(line, sizeof(line),
                "total: records=%llu elided_fences=%llu puts=%llu gets=%llu "
                "updates=%llu deletes=%llu\n",
                static_cast<unsigned long long>(records),
                static_cast<unsigned long long>(elided),
                static_cast<unsigned long long>(puts),
                static_cast<unsigned long long>(gets),
                static_cast<unsigned long long>(updates),
                static_cast<unsigned long long>(dels));
  out += line;
  return out;
}

void Server::DoShutdown(Loop& lp, uint64_t conn_id, uint64_t seq) {
  // Two-phase cross-loop shutdown, coordinated by this loop (the one that
  // dispatched SHUTDOWN or first noticed RequestShutdown; shutdown_claimed_
  // guarantees there is exactly one).
  //
  // Phase 1 — quiesce intake everywhere. Every loop stops accepting and
  // stops reading/parsing client input, then checks in through the barrier
  // below. Only after the last check-in do the shards quiesce: no loop can
  // mint new work while the drain/audit/image-save runs, so a connection on
  // another loop cannot race the image save (the single-loop version got
  // this for free). Loops keep draining completions and flushing replies
  // throughout — in-flight work still resolves.
  shutdown_phase_.store(1, std::memory_order_release);
  StopIntake(lp);
  for (auto& other : loops_) {
    if (other.get() != &lp) {
      WakeLoop(*other);
    }
  }
  {
    std::unique_lock<std::mutex> lk(shutdown_mu_);
    shutdown_cv_.wait(lk, [&] {
      return intake_stopped_loops_ == loops_.size();
    });
  }
  // On a replica, stop the pull loops before draining the shards so no
  // kApply arrives once the quiesce begins.
  if (repl_client_ != nullptr) {
    repl_client_->Stop();
  }

  // Quiesce shards: drains every queued request, joins the workers,
  // Psyncs, audits integrity (I1–I7) and saves the device images.
  shutdown_report_.shards.clear();
  bool ok = true;
  for (auto& sh : shards_) {
    shutdown_report_.shards.push_back(sh->Quiesce());
    ok &= shutdown_report_.shards.back().integrity_ok;
  }
  shutdown_report_.ok = ok;
  // A migration racing the quiesce fails fast (shard Submit refuses once
  // stopping); join its thread before the slot table closes under it.
  if (migrator_ != nullptr) {
    migrator_->Join();
  }
  // Same discipline for a checkpoint pass racing the quiesce: its control
  // batches fail fast once the shards stop; reap the thread here.
  if (ckpt_runner_ != nullptr) {
    ckpt_runner_->Join();
  }
  if (cluster_ != nullptr) {
    cluster_->Close();
  }

  // Deliver the completions the drain produced for THIS loop's conns (the
  // other loops drain their own on their phase-1 ticks), then answer
  // SHUTDOWN itself — its +OK certifies a clean audit and saved images.
  // The issuing connection is pinned to this loop, so the reply is local.
  DrainCompletions(lp);
  const auto it = lp.conns.find(conn_id);
  if (it != lp.conns.end()) {
    std::string r;
    if (ok) {
      AppendSimple(&r, "OK");
    } else {
      size_t nviol = 0;
      for (const ShardReport& rep : shutdown_report_.shards) {
        nviol += rep.violations.size();
      }
      AppendError(&r, "integrity audit failed: " + std::to_string(nviol) +
                          " violation(s)");
    }
    it->second->Complete(seq, std::move(r));
  }

  // Phase 2 — release every loop to run its own exit path: final drain,
  // best-effort flush, close. This loop goes now; the others go on their
  // next wakeup.
  shutdown_phase_.store(2, std::memory_order_release);
  for (auto& other : loops_) {
    if (other.get() != &lp) {
      WakeLoop(*other);
    }
  }
  FinishLoop(lp);
}

void Server::StopIntake(Loop& lp) {
  if (lp.intake_stopped) {
    return;
  }
  lp.intake_stopped = true;
  if (lp.listen_fd >= 0) {
    lp.poller->Forget(lp.listen_fd);
    ::close(lp.listen_fd);
    lp.listen_fd = -1;
  }
  // Stop watching readable on every connection: unread pipelines stay in
  // the kernel buffers. Write interest stays — pending replies still flush.
  for (auto& [id, conn] : lp.conns) {
    lp.poller->Watch(conn->fd, false, conn->WantsWrite());
  }
  // Hand-off fds that raced the stop are closed, not registered.
  {
    std::lock_guard<std::mutex> lk(lp.mu);
    for (const int fd : lp.fd_inbox) {
      ::close(fd);
    }
    lp.fd_inbox.clear();
  }
  {
    std::lock_guard<std::mutex> lk(shutdown_mu_);
    ++intake_stopped_loops_;
  }
  shutdown_cv_.notify_all();
}

void Server::FinishLoop(Loop& lp) {
  if (lp.exiting) {
    return;
  }
  StopIntake(lp);  // no-op when phase 1 already ran here
  lp.exiting = true;
  // The shards are stopped: re-driving stalled and parked txn work now
  // fails it cleanly (kStopped → FailStalledRequest / txn Fail), so every
  // reply slot resolves before the flush below.
  RetryStalled(lp);
  RetryTxnPending(lp);
  DrainCompletions(lp);
  FlushAllBestEffort(lp);
  while (!lp.conns.empty()) {
    CloseConn(lp, lp.conns.begin()->first);
  }
}

void Server::FlushAllBestEffort(Loop& lp) {
  // Bounded synchronous flush of every connection's pending output (the
  // sockets are non-blocking; wait briefly for writability when stalled).
  struct iovec iov[64];
  for (auto& [id, conn] : lp.conns) {
    int spins = 0;
    while (conn->WantsWrite() && spins < 200) {
      const size_t niov = conn->BuildIovecs(iov, 64);
      const ssize_t n = ::writev(conn->fd, iov, static_cast<int>(niov));
      if (n > 0) {
        Bump(lp.counters.flush_syscalls);
        Bump(lp.counters.flushed_bytes, static_cast<uint64_t>(n));
        Bump(lp.counters.flush_chunks, niov);
        conn->ConsumeOut(static_cast<size_t>(n));
        continue;
      }
      if (errno == EINTR) {
        continue;
      }
      if (errno != EAGAIN && errno != EWOULDBLOCK) {
        break;
      }
      pollfd p{};
      p.fd = conn->fd;
      p.events = POLLOUT;
      ::poll(&p, 1, 10);
      ++spins;
    }
  }
}

}  // namespace jnvm::server
