// Shards — the persistence half of the network server (DESIGN.md §7, §8).
//
// Each shard owns a full vertical slice: one simulated NVMM device, one
// JnvmRuntime, one J-NVM backend and the KvStore on top, plus a single
// worker thread draining a bounded MPSC request queue. The queue really is
// multi-producer: with `--loops=N` every event-loop thread (plus the
// ReplClient and the migrator) submits into the same shard concurrently —
// Submit/TrySubmit are safe from any thread, and a completion finds its
// way back to the loop that owns the requesting connection via the conn_id
// it carries (the loop index rides in the id's top bits). Keys are routed
// to shards by FNV-1a hash (ShardFor), so a key's whole history lives on
// one device — restart recovery is per-shard and embarrassingly parallel.
//
// The worker executes requests in batches of up to `batch` and holds the
// heap in group-commit mode for the batch: per-operation trailing
// durability fences are elided (heap::Heap::DurabilityFence) and one Psync
// at the end of the batch makes the whole group durable — the paper's
// "validating N objects under the same fence" (§3.2.3, Figure 5) applied
// to server-side group commit. Completions are delivered only after that
// Psync: a replied write is a durable write. Ordering fences inside the
// publication protocols are untouched, so a crash mid-batch loses only
// unacknowledged operations, never produces torn ones.
//
// Replication (§8): the batch is also the replication unit. The worker
// appends each batch's write ops to a durable per-shard replication log
// (repl::ReplLog) inside the same group commit — the batch Psync seals the
// log record, the store mutations and the client replies together — and
// then streams the sealed record to subscribed replicas. A *follower*
// shard runs the same worker but applies shipped batches (Op::kApply) in
// sequence order, mirrors the primary's log, serves reads, and rejects
// client writes with -READONLY until Op::kPromote flips it writable after
// an I1–I7 audit.
#ifndef JNVM_SRC_SERVER_SHARD_H_
#define JNVM_SRC_SERVER_SHARD_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/ckpt/ckpt_meta.h"
#include "src/cluster/slot_map.h"
#include "src/core/runtime.h"
#include "src/nvm/pmem_device.h"
#include "src/repl/frame.h"
#include "src/repl/repl_log.h"
#include "src/store/kvstore.h"
#include "src/txn/txn.h"

namespace jnvm::server {

// FNV-1a 64-bit — the request router's key hash. Shared with tests and the
// crashcheck "server"/"repl" workloads so all agree on placement.
inline uint64_t KeyHash(std::string_view key) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (const unsigned char c : key) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

inline uint32_t ShardFor(std::string_view key, uint32_t nshards) {
  return static_cast<uint32_t>(KeyHash(key) % nshards);
}

struct ShardOptions {
  uint64_t device_bytes = 256ull << 20;
  // "jpdt" (default) or "jpfa".
  std::string backend = "jpdt";
  uint64_t map_capacity = 1 << 16;
  // Max write group per Psync (the --batch ablation knob). 1 = no batching:
  // every operation pays its own durability fence.
  uint32_t batch = 16;
  uint32_t queue_capacity = 1024;
  // When non-empty, shard i persists its device to "<image_base>.shard<i>.img"
  // on Quiesce, and Open() recovers from that file if it exists.
  std::string image_base;
  // When non-empty, shard i's device is an mmap'd MAP_SHARED file
  // "<dax_base>.shard<i>.pmem" (PmemDevice::MapFile): every store is a
  // store into the kernel page cache, so the state survives `kill -9`
  // without a Quiesce — the cluster CI job's crash model. Takes precedence
  // over image_base; incompatible with the strict crash-emulation mode.
  std::string dax_base;
  // Optane-like latency model on the device (benchmarks); off for tests.
  bool optane_latency = false;
  // When non-zero, overrides the device's per-fence cost (with the other
  // Optane latencies unchanged) — models fence-expensive platforms (ADR
  // write-pending-queue drains) where batching is the headline win.
  uint32_t fence_ns = 0;

  // ---- Replication (DESIGN.md §8) ----------------------------------------
  // Keep a durable replication log ("server.repl" in the root map). Off
  // only for ablation — without it the shard can neither feed replicas nor
  // run as a follower.
  bool repl_log = true;
  uint32_t repl_segment_bytes = 64 << 10;
  uint32_t repl_max_segments = 8;
  // Follower mode: client writes are rejected with -READONLY; state changes
  // arrive as kApply batches shipped from the primary.
  bool follower = false;
  // Follower apply grouping, decoupled from the primary's sealed batch
  // size: up to `apply_batch` shipped records (each one sealed primary
  // batch) share a single apply-side group commit. 0 = follow `batch`.
  // Bigger values amortise the follower's Psyncs across more primary
  // batches and shrink drain lag; the sealed boundary stays per-record, so
  // crash semantics are unchanged (see the abl_repl_lag ablation).
  uint32_t apply_batch = 0;

  // ---- Synchronous replication (WAIT-K) -----------------------------------
  // When > 0, a batch that appended to the replication log is *parked* after
  // its Psync instead of delivered: replies are withheld until `wait_acks`
  // REPLSYNC subscribers acknowledge the sealed seq (REPLACK frames), or
  // until `wait_timeout_ms` elapses — then write replies degrade to an
  // explicit -WAITTIMEOUT (the write IS locally durable; it just lacks the
  // replica guarantee). The worker keeps sealing later batches while earlier
  // ones wait (pipelined), bounded by `wait_max_parked` parked batches.
  // Requires repl_log. Kept in ShardOptions so a promoted replica that was
  // started with --wait-acks honours it once it has subscribers of its own.
  uint32_t wait_acks = 0;
  uint32_t wait_timeout_ms = 1000;
  uint32_t wait_max_parked = 64;

  // ---- Session reads (replica read scaling) -------------------------------
  // A read carrying a session min-seq token (MINSEQ) parks when the shard's
  // applied watermark (sealed_seq — on a follower the last applied AND
  // durable record) is behind the token, and is released in park order by
  // the apply batch that advances the watermark past it. After
  // `read_stale_timeout_ms` a parked read is answered with an explicit
  // -STALE — never a silently old value. `read_park_max` bounds the parked
  // set; overflow also answers -STALE immediately.
  uint32_t read_stale_timeout_ms = 1000;
  uint32_t read_park_max = 1024;

  // Test hook: when >= 0 and equal to this shard's index, the PROMOTE audit
  // reports an injected violation (exercises all-or-nothing promotion).
  // Quiesce's shutdown audit is unaffected.
  int32_t fail_promote_audit_shard = -1;
};

// One client request, routed to the shard owning the key.
struct Request {
  enum class Op : uint8_t {
    kGet,
    kSet,
    kDel,
    kHset,
    kTouch,
    // Replication plane. kApply is submitted by the local ReplClient and
    // batches like a write; the rest are control ops and run as singleton
    // batches on the worker.
    kApply,        // value = record frame {seq | batch frame}
    kReplSync,     // repl_seq = from-seq; converts the conn to a stream
    kReplSnap,     // full-store snapshot frame reply
    kSnapInstall,  // value = snapshot frame; waiter signalled post-Psync
    kPromote,      // audit + flip follower → primary (multi joins shards)
    kLastSeq,      // :sealed-seq reply; singleton batch, so every write the
                   // connection pipelined before it is already sealed
    // Transaction plane (DESIGN.md §9). All five are internal (conn_id = 0,
    // submitted by the server's coordinator hook or recovery); the EXEC
    // reply is staged through Request::txn and delivered by the event loop.
    kTxnExec,      // single-shard txn: one [prepare|marker] record, one Psync
    kTxnPrepare,   // stage this part's writes + seal a kTxnPrepare record
    kTxnDecide,    // coordinator: seal the decision record (value = payload),
                   // then apply own staged writes post-seal
    kTxnApply,     // participant: seal a commit marker, apply staged post-seal
    kTxnAbortMark, // drop staged writes + seal an explicit kTxnAbort marker
    kTxnRepair,    // promote repair: stage writes from a decision record
                   // (value = writes frame) and commit them in one record
    // Cluster plane (DESIGN.md §10). The three slot cursors are internal
    // control ops (singleton batches, waiter rendezvous); kMigApply is the
    // destination-side import write and batches like any other write.
    kSlotSnap,     // snapshot of keys in slots [slot_lo, slot_hi]; the
                   // waiter payload is "+<snapshot frame>"
    kSlotTail,     // slot-filtered replication-log scan from repl_seq; the
                   // waiter payload is "+<u64 next><u8 caught_up><batch>"
    kSlotPurge,    // drop every key in [slot_lo, slot_hi] (import reset)
    kMigApply,     // apply mig_ops shipped by a migration source; the ops
                   // are re-logged locally so this node's replicas see them
    // Checkpoint plane (DESIGN.md §11). All three are internal control ops
    // (singleton batches).
    kCkpt,         // field 0: fuzzy-walk slots [slot_lo, slot_hi] (waiter
                   // payload "+"); field 1: finalize — Psync, publish the
                   // LSN pair, truncate the log below it (waiter payload
                   // "+begin=<b> end=<e> truncated=<n>")
    kReplDiff,     // segment-diff rejoin, primary side: repl_seq = the
                   // follower's resume seq, value = its digest frame; every
                   // digest verified → behaves exactly like kReplSync
    kLogDigests,   // follower side: waiter payload "+<digest frame>" of the
                   // local log (the log is worker-thread-only, so the
                   // ReplClient fetches its own digests through the queue)
  };
  Op op = Op::kGet;
  std::string key;
  std::string value;   // kSet / kHset payload; kApply / kSnapInstall frame
  uint32_t field = 0;  // kHset field index
  uint64_t repl_seq = 0;  // kReplSync from-seq
  // Session token for kGet/kTouch (MINSEQ): the read may only execute once
  // the shard's applied watermark reaches it. 0 = no session constraint.
  uint64_t min_seq = 0;

  // ---- Cluster plane (DESIGN.md §10) ---------------------------------------
  // Inclusive slot range for kSlotSnap / kSlotTail / kSlotPurge.
  uint16_t slot_lo = 0;
  uint16_t slot_hi = 0;
  // Set by the event loop on single-key ops whose slot is MIGRATING away:
  // "<slot> <host:port>". A key miss then answers -ASK instead of executing
  // — the key has already moved (or never existed) and the destination is
  // the authority for it.
  std::string ask_addr;
  // kMigApply payload: decoded ops shipped by the migration source.
  std::vector<repl::ReplOp> mig_ops;

  // Completion routing (opaque to the shard). conn_id == 0 → internal
  // request, no completion is emitted.
  uint64_t conn_id = 0;
  uint64_t seq = 0;

  // Non-null for one part of a multi-shard operation (MSET, PROMOTE): the
  // last part to complete — counted *after* its shard's Psync — emits the
  // one reply.
  std::shared_ptr<struct MultiOp> multi;
  // Non-null for kSnapInstall: signalled after the install's Psync.
  std::shared_ptr<struct ReplWaiter> waiter;
  // Non-null for txn-plane requests (kTxnExec/kTxnPrepare/kTxnDecide/
  // kTxnApply): the in-flight EXEC this request belongs to. The last part
  // of the current phase to deliver — after its shard's Psync (and WAIT-K
  // ack, when configured) — posts one phase completion to the event loop.
  std::shared_ptr<txn::TxnState> txn;
  uint32_t txn_part = 0;  // index into txn->parts for this shard's slice
};

struct MultiOp {
  std::atomic<uint32_t> remaining{0};
  uint64_t conn_id = 0;
  uint64_t seq = 0;
  // Failure funnel: any part may record an error; the joined reply turns
  // into that error instead of +OK.
  std::atomic<uint32_t> failures{0};
  std::mutex err_mu;
  std::string error;  // first failure's message (RESP code included)
  // Joined success reply; empty → "+OK". MIGSTART joins as "+IMPORTING".
  std::string ok_reply;

  // Two-phase PROMOTE: audits run on every shard first (phase 1, recorded
  // through the failure funnel); only the joining part — all audits passed —
  // flips every listed shard writable (phase 2). An audit failure on any
  // shard therefore flips none: no mixed read-only/writable fleet.
  std::vector<class Shard*> promote_shards;

  void Fail(const std::string& msg) {
    failures.fetch_add(1, std::memory_order_acq_rel);
    std::lock_guard<std::mutex> lk(err_mu);
    if (error.empty()) {
      error = msg;
    }
  }
};

// Blocking rendezvous for internal control requests (snapshot install).
struct ReplWaiter {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  bool ok = false;
  std::string error;

  void Signal(bool success, std::string msg) {
    {
      std::lock_guard<std::mutex> lk(mu);
      done = true;
      ok = success;
      error = std::move(msg);
    }
    cv.notify_all();
  }
  bool Wait() {
    std::unique_lock<std::mutex> lk(mu);
    cv.wait(lk, [&] { return done; });
    return ok;
  }
};

// A finished request: the pre-rendered RESP reply plus its routing tag. By
// delivery time the operation's effects are durable. `stream` marks
// replication-stream frames: they bypass the per-connection reorder buffer
// (a REPLSYNC connection has no further pending commands) and are appended
// to the socket in arrival order. Stream frames travel as `frame` — a
// refcounted immutable buffer serialized once per sealed batch and shared
// by every subscriber's completion, so fan-out never copies the payload.
struct Completion {
  uint64_t conn_id = 0;
  uint64_t seq = 0;
  std::string reply;
  bool stream = false;
  std::shared_ptr<const std::string> frame;  // stream payload (shared)
  // Non-null: a txn phase join finished — the event loop advances the txn's
  // state machine instead of writing `reply` to a connection.
  std::shared_ptr<txn::TxnState> txn;
};

// Where shards hand finished requests. The server implementation routes
// each completion by its conn_id to the event loop owning that connection
// (per-loop completion queue + wakeup pipe); tests use a plain collector.
class CompletionSink {
 public:
  virtual ~CompletionSink() = default;
  // Called from shard worker threads; must be thread-safe.
  virtual void OnCompletion(Completion&& c) = 0;
};

// Final state handed back by Quiesce().
struct ShardReport {
  bool integrity_ok = false;
  std::vector<std::string> violations;  // integrity audit failures (I1–I7)
  uint64_t records = 0;
  uint64_t elided_fences = 0;
  uint64_t psyncs = 0;
  bool image_saved = false;
  std::string image_path;
};

// Replication counters (STATS). sealed == last log record made durable by a
// batch Psync; on a follower that is also the last *applied* batch — the
// apply and the local log append share the durability point.
struct ReplStats {
  bool enabled = false;
  bool follower = false;
  bool needs_snapshot = false;
  uint64_t start_seq = 0;    // oldest retained record
  uint64_t sealed_seq = 0;   // last sealed (0 = none)
  uint64_t applied_batches = 0;  // kApply batches executed (follower role)
  uint64_t log_bytes = 0;
  uint64_t log_segments = 0;
  uint64_t subscribers = 0;
  // Fan-out cost accounting: one frame is serialized per sealed batch that
  // had subscribers (stream_frames / stream_frame_bytes); every subscriber
  // then receives the same refcounted buffer. Serializations are therefore
  // independent of the subscriber count — the server-side `frame_refs`
  // counter records the per-subscriber zero-copy enqueues.
  uint64_t stream_frames = 0;
  uint64_t stream_frame_bytes = 0;
  // Rejoin cost accounting (DESIGN.md §11): records/bytes serialized into
  // REPLSYNC/REPLDIFF handshake replies (backlog catch-up) and bytes of
  // REPLSNAP snapshot frames served. A stale replica rejoining through the
  // segment-diff handshake should move catchup_bytes ~ the divergent tail;
  // snap_bytes grows with the whole store — the CI bootstrap job asserts
  // the former stays far below the latter.
  uint64_t catchup_records = 0;
  uint64_t catchup_bytes = 0;
  uint64_t snap_bytes = 0;
  uint32_t apply_batch = 0;  // follower apply grouping (0 = follow batch)
  // WAIT-K (primary role, wait_acks > 0): acked_seq is the K-th-highest
  // subscriber watermark — every record <= acked_seq is on >= K replicas.
  uint32_t wait_acks = 0;
  uint64_t acked_seq = 0;
  uint64_t wait_timeouts = 0;    // batches delivered degraded (-WAITTIMEOUT)
  uint64_t parked_batches = 0;   // currently awaiting acks
  // Session reads: currently parked / released by a watermark advance /
  // answered -STALE (timeout or park-bound overflow).
  uint64_t parked_reads = 0;
  uint64_t released_reads = 0;
  uint64_t stale_reads = 0;
};

// Transaction counters (STATS `txn` line). Per shard: prepared counts
// prepare records sealed, committed counts staged txns this shard applied,
// aborted counts staged txns dropped by an abort, inflight is the staged
// table size, decision_records counts decisions sealed (coordinator role).
struct TxnShardStats {
  uint64_t prepared = 0;
  uint64_t committed = 0;
  uint64_t aborted = 0;
  uint64_t inflight = 0;
  uint64_t decision_records = 0;
};

// Checkpoint counters (STATS `ckpt` line). begin/end mirror the durable
// CkptMeta pair; replayed_records counts the log records the last recovery
// actually replayed — the CI bootstrap job asserts it stays a tail, not the
// whole log, once checkpoints run.
struct CkptStats {
  uint64_t count = 0;         // checkpoints finalized on this heap
  uint64_t begin_seq = 0;     // recovery replays from here (1 = from start)
  uint64_t end_seq = 0;       // last sealed record the checkpoint covers
  uint64_t walked_keys = 0;   // last walk's accounting
  uint64_t walked_bytes = 0;
  uint64_t truncated_segments = 0;  // log segments reclaimed by finalizes
  uint64_t replayed_records = 0;    // records replayed at the last recovery
  uint64_t retry_later = 0;   // REPLSNAP/REPLDIFF refused mid-bootstrap
};

struct ShardStats {
  uint64_t queue_depth = 0;
  uint64_t batches = 0;
  uint64_t max_batch = 0;
  uint64_t elided_fences = 0;
  uint64_t records = 0;
  // Cluster plane: -ASK redirects this shard answered (key miss during a
  // MIGRATING phase) and ops imported through kMigApply.
  uint64_t ask_replies = 0;
  uint64_t mig_applied_ops = 0;
  store::OpStats ops;
  store::CacheStats cache;
  nvm::DeviceStats device;
  ReplStats repl;
  TxnShardStats txn;
  CkptStats ckpt;
};

class Shard {
 public:
  // Creates shard `index`: recovers from its image file when one exists
  // (restart path — runs core recovery), else formats a fresh device. When
  // the replication log is enabled and holds records, the last record is
  // re-applied to the store (redo tail): a crash between the log append and
  // the store's final flush recovers to the sealed-batch boundary with the
  // log and the store in agreement.
  static std::unique_ptr<Shard> Open(const ShardOptions& opts, uint32_t index,
                                     CompletionSink* sink);
  ~Shard();

  uint32_t index() const { return index_; }
  // True when Open() loaded an existing image (→ recovery ran).
  bool recovered() const { return recovered_; }
  const core::RecoveryReport& recovery_report() const {
    return rt_->recovery_report();
  }

  bool follower() const { return follower_.load(std::memory_order_acquire); }
  // Next record the shard's log expects — the REPLSYNC from-seq a replica
  // resumes with after a restart.
  uint64_t repl_next_seq() const {
    return sealed_seq_.load(std::memory_order_acquire) + 1;
  }
  bool repl_needs_snapshot() const {
    return repl_needs_snapshot_.load(std::memory_order_acquire);
  }

  // Blocking bounded push (backpressure). False once the shard is stopping —
  // the caller replies -ERR instead of enqueueing into a draining shard.
  // Safe only from threads that may block (ReplClient); the event loop uses
  // TrySubmit and read-pauses the connection instead.
  bool Submit(Request&& req);

  // Non-blocking push. kFull leaves `req` untouched so the caller can stall
  // it and retry; kStopped means the shard is draining (terminal).
  enum class SubmitResult : uint8_t { kOk, kFull, kStopped };
  SubmitResult TrySubmit(Request&& req);

  // Drops a replication-stream subscription (connection closed).
  void Unsubscribe(uint64_t conn_id);

  // Records a REPLACK from subscriber `conn_id`: every record <= seq is
  // durable on that replica. Advances the K-of-N watermark and delivers any
  // parked batch whose sealed seq is now acknowledged. Event-loop thread.
  void Ack(uint64_t conn_id, uint64_t seq);

  // Delivers parked batches whose deadline passed (degraded -WAITTIMEOUT
  // replies). Called from the event-loop tick; cheap when nothing is parked.
  void TickWait(uint64_t now_ms);

  // ---- Session reads ------------------------------------------------------
  // Routes a kGet/kTouch carrying req.min_seq. kReady: the applied watermark
  // already covers the token — the caller submits the request normally (req
  // untouched). kParked: the shard took ownership; the completion is emitted
  // later, when an apply batch advances the watermark (executed on the
  // worker thread, in park order) or the deadline passes (-STALE). kStale:
  // the parked set is full (or the shard is quiescing) — the -STALE
  // completion was already emitted. Event-loop thread; the watermark recheck
  // under the park lock closes the race with a concurrent release, so a
  // parked read can never miss its wakeup.
  enum class ReadGate : uint8_t { kReady, kParked, kStale };
  ReadGate GateSessionRead(Request& req, uint64_t now_ms);

  // Answers parked reads whose deadline passed with -STALE. Event-loop tick;
  // cheap when nothing is parked. Never touches the store.
  void TickReadStale(uint64_t now_ms);

  // Registers a hook invoked on the worker thread after each batch Psync
  // with the new sealed seq — the follower's ReplClient acks from here.
  // Pass nullptr to unregister (must happen before the owner dies).
  void SetSealHook(std::function<void(uint64_t)> hook);

  // Phase 2 of PROMOTE: flips the shard writable. Only meaningful after its
  // kPromote audit passed; called by the multi-op join for all shards at
  // once.
  void MakeWritable() { follower_.store(false, std::memory_order_release); }

  // Thread-safe counters snapshot (STATS command; no queue round-trip).
  ShardStats Stats() const;

  // Keys this shard holds whose slot falls in [lo, hi] — per-slot
  // accounting maintained at every mutation point (and rebuilt after a
  // snapshot install). Thread-safe; the migrator sizes its copy phase and
  // CLUSTER INFO reports residual keys from it.
  uint64_t KeysInSlotRange(uint32_t lo, uint32_t hi) const;

  // ---- Transaction plane (DESIGN.md §9) -----------------------------------
  // This shard's view for cross-shard resolution planning (recovery after
  // all shards opened, and the PROMOTE hook): staged-undecided txns, the
  // decision index, and the gapless log's next seq. Thread-safe.
  txn::ShardTxnView TxnView() const;
  bool HasTxnDecision(txn::TxnId id) const { return txn_decisions_.Has(id); }

  store::KvStore& kv() { return *kv_; }

  // Stops intake, drains the queue, joins the worker, Psyncs, audits heap
  // integrity (I1–I7 with FA-log audit — the heap is quiescent), closes the
  // runtime and saves the device image. Terminal: the shard accepts no
  // further requests. Idempotent.
  ShardReport Quiesce();

 private:
  Shard() = default;

  void WorkerLoop();
  // Executes one request against the KvStore; appends the RESP reply and
  // collects the batch's replicated ops. Returns true when the op wrote
  // persistent state.
  bool Execute(const Request& req, std::string* reply,
               std::vector<repl::ReplOp>* rops);
  bool ExecuteApply(const Request& req);
  void ExecuteReplSync(const Request& req, std::string* reply);
  void ExecuteReplSnap(std::string* reply);
  bool ExecuteSnapInstall(const Request& req, std::string* error);
  void ExecutePromote(const Request& req, std::string* reply);
  // Cluster plane: slot cursors (waiter payloads: "+…" ok, "-…" error) and
  // the destination-side import ops.
  void ExecuteSlotSnap(const Request& req, std::string* reply);
  void ExecuteSlotTail(const Request& req, std::string* reply);
  bool ExecuteSlotPurge(const Request& req, std::string* reply,
                        std::vector<repl::ReplOp>* rops);
  bool ExecuteMigApply(const Request& req, std::string* reply,
                       std::vector<repl::ReplOp>* rops);
  // Checkpoint plane (DESIGN.md §11): walk / finalize, the primary side of
  // the segment-diff rejoin, and the follower-side digest fetch. ExecuteCkpt
  // returns true on a finalize that published the meta — the batch must
  // Psync before DrainGroupFrees releases the truncated segments.
  bool ExecuteCkpt(const Request& req, std::string* reply);
  void ExecuteReplDiff(const Request& req, std::string* reply);
  void ExecuteLogDigests(std::string* reply);
  void DeliverBatch(std::vector<Request>& batch, std::vector<std::string>& replies);
  void StreamToSubscribers(uint64_t first_seq, uint64_t last_seq);
  void RedoLogTail(uint64_t replay_from, txn::LogScanResult* scan);
  void PublishReplStats();

  // ---- Transaction plane (worker thread) ----------------------------------
  // Execute-time handlers; store mutations never happen here — txn writes
  // stage in staged_txns_ and apply post-seal (ApplyPostSealTxns), so a
  // crash before the record seals leaves the store untouched.
  bool ExecuteTxnExec(const Request& req, std::vector<repl::ReplOp>* rops);
  bool ExecuteTxnPrepare(const Request& req, std::vector<repl::ReplOp>* rops);
  bool ExecuteTxnDecide(const Request& req, std::vector<repl::ReplOp>* rops);
  bool ExecuteTxnApply(const Request& req, std::vector<repl::ReplOp>* rops);
  bool ExecuteTxnAbortMark(const Request& req, std::vector<repl::ReplOp>* rops);
  bool ExecuteTxnRepair(const Request& req, std::vector<repl::ReplOp>* rops);
  // Runs the queued MULTI ops of one part: reads answer from the part's own
  // staged writes first (txn read-your-writes), writes collect into *writes.
  void RunTxnOps(txn::TxnPart& part, const std::shared_ptr<txn::TxnState>& t,
                 std::vector<repl::ReplOp>* writes);
  // Applies every txn queued by the batch after its record sealed, inside a
  // fresh group-commit window, then an ordering Pfence: a later record can
  // only seal after these applies are durable, preserving the redo-tail
  // invariant (only the tail record's store effects may be incomplete).
  void ApplyPostSealTxns();
  // Phase join: the last request of a txn phase posts one completion.
  void TxnJoin(const std::shared_ptr<txn::TxnState>& t);

  // ---- WAIT-K parking (worker + event-loop threads) -----------------------
  // A sealed batch withheld between its Psync and its delivery.
  struct ParkedBatch {
    uint64_t last_seq = 0;     // highest log seq the batch sealed
    uint64_t deadline_ms = 0;  // NowMs() + wait_timeout_ms at parking time
    std::vector<Request> reqs;
    std::vector<std::string> replies;
    std::vector<uint8_t> wrote;  // per-request: did it write durable state?
  };
  // Parks the batch (worker thread; blocks on wait_max_parked — safe: parked
  // batches are released by the event loop, which never waits on the worker).
  void ParkBatch(uint64_t last_seq, std::vector<Request>& batch,
                 std::vector<std::string>& replies,
                 std::vector<uint8_t>& wrote);
  // Pops and delivers every front batch that is acked (success) or timed
  // out / force-released (degraded). Any thread.
  void ReleaseParked(uint64_t now_ms, bool force);
  void DeliverParked(ParkedBatch&& p, bool timed_out);

  // ---- Session-read parking (event-loop parks, worker releases) -----------
  struct ParkedRead {
    uint64_t deadline_ms = 0;  // now + read_stale_timeout_ms at parking time
    Request req;
  };
  // Executes every parked read whose min-seq the watermark now covers, in
  // park order, against the exact sealed-prefix state. Worker thread, after
  // PublishReplStats — kApply batches flow through the queue untouched, so
  // parked reads can never reorder or delay the apply stream.
  void ReleaseSessionReads();
  // Fails every parked read with -STALE (shutdown path).
  void ForceStaleReads();
  void CompleteStaleRead(Request& req, uint64_t watermark);
  // K-th-highest subscriber watermark → synced_seq_. Caller holds subs_mu_.
  void RecomputeSyncedLocked();
  void NotifySealHook(uint64_t sealed_seq);

  // ---- Per-slot accounting (cluster plane) ---------------------------------
  // slot_keys_[s] = live keys in slot s. The worker adjusts it wherever the
  // store changes shape; Stats/KeysInSlotRange read it under slot_mu_.
  void SlotDelta(std::string_view key, int d);
  void RebuildSlotCounts();

  uint32_t index_ = 0;
  ShardOptions opts_;
  CompletionSink* sink_ = nullptr;
  bool recovered_ = false;

  std::unique_ptr<nvm::PmemDevice> dev_;
  std::unique_ptr<core::JnvmRuntime> rt_;
  std::unique_ptr<store::Backend> backend_;
  std::unique_ptr<store::KvStore> kv_;
  std::unique_ptr<repl::ReplLog> log_;  // worker-thread only after Open()
  core::Handle<ckpt::CkptMeta> ckpt_meta_;  // worker-thread only after Open()

  std::atomic<bool> follower_{false};
  std::atomic<uint64_t> sealed_seq_{0};   // last sealed record (0 = none)
  std::atomic<uint64_t> repl_start_seq_{0};
  std::atomic<uint64_t> repl_bytes_{0};
  std::atomic<uint64_t> repl_segments_{0};
  std::atomic<uint64_t> applied_batches_{0};
  std::atomic<bool> repl_needs_snapshot_{false};
  std::atomic<uint64_t> stream_frames_{0};       // frames serialized (once/batch)
  std::atomic<uint64_t> stream_frame_bytes_{0};  // bytes serialized, pre-fan-out
  std::atomic<uint64_t> catchup_records_{0};  // backlog records in handshake replies
  std::atomic<uint64_t> catchup_bytes_{0};
  std::atomic<uint64_t> snap_bytes_{0};  // REPLSNAP frame bytes served

  // ---- Checkpoint plane (DESIGN.md §11) ------------------------------------
  // Walk accumulators live on the worker thread only (reset when a walk
  // restarts at slot 0); the atomics mirror the durable CkptMeta for Stats.
  uint64_t ckpt_walk_keys_ = 0;
  uint64_t ckpt_walk_bytes_ = 0;
  std::atomic<uint64_t> ckpt_count_{0};
  std::atomic<uint64_t> ckpt_begin_{1};
  std::atomic<uint64_t> ckpt_end_{0};
  std::atomic<uint64_t> ckpt_walked_keys_{0};
  std::atomic<uint64_t> ckpt_walked_bytes_{0};
  std::atomic<uint64_t> ckpt_truncated_segs_{0};
  std::atomic<uint64_t> ckpt_replayed_{0};       // set once, at Open()
  std::atomic<uint64_t> ckpt_retry_later_{0};    // mid-bootstrap refusals

  // ---- Cluster plane --------------------------------------------------------
  mutable std::mutex slot_mu_;
  std::vector<uint32_t> slot_keys_;  // per-slot live-key counts
  std::atomic<uint64_t> ask_replies_{0};
  std::atomic<uint64_t> mig_applied_ops_{0};

  // ---- Transaction state (DESIGN.md §9) -----------------------------------
  // Prepared-but-undecided txns (worker mutates; event loop reads for
  // PROMOTE resolution) and the sealed decisions this shard coordinated
  // (pruned against the log's retention).
  txn::StagedTable staged_txns_;
  txn::DecisionIndex txn_decisions_;
  // Txns whose staged writes apply after the current batch's Psync; worker
  // thread only, drained by ApplyPostSealTxns.
  std::vector<txn::TxnId> post_seal_txns_;
  std::atomic<uint64_t> txns_prepared_{0};
  std::atomic<uint64_t> txns_committed_{0};
  std::atomic<uint64_t> txns_aborted_{0};
  std::atomic<uint64_t> txn_decision_records_{0};

  // A replication-stream subscriber and its durability watermark: every
  // record <= acked_seq is durable on that replica (REPLSYNC's from-seq
  // implies from-1; REPLACK frames advance it).
  struct Subscriber {
    uint64_t conn_id = 0;
    uint64_t acked_seq = 0;
  };
  mutable std::mutex subs_mu_;
  std::vector<Subscriber> subs_;

  // WAIT-K state. synced_seq_ is maintained under subs_mu_, read lock-free.
  std::atomic<uint64_t> synced_seq_{0};
  std::atomic<uint64_t> wait_timeouts_{0};
  std::atomic<uint64_t> parked_count_{0};
  std::mutex park_mu_;
  std::condition_variable park_cv_;  // worker waits here when parked_ full
  std::deque<ParkedBatch> parked_;
  // Quiesce sets this before joining the worker: no release will ever come
  // again, so a worker blocked on a full deque must deliver degraded
  // instead of waiting forever.
  std::atomic<bool> stop_parking_{false};

  // Session-read parking. parked_reads_count_ mirrors parked_reads_.size()
  // so the event-loop tick can skip the lock when nothing is parked.
  std::mutex read_park_mu_;
  std::deque<ParkedRead> parked_reads_;
  std::atomic<uint64_t> parked_reads_count_{0};
  std::atomic<uint64_t> released_reads_{0};
  std::atomic<uint64_t> stale_reads_{0};

  std::mutex hook_mu_;
  std::function<void(uint64_t)> seal_hook_;

  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<Request> queue_;
  bool stopping_ = false;

  std::thread worker_;
  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> max_batch_{0};

  std::mutex quiesce_mu_;
  bool quiesced_ = false;
  ShardReport report_;
};

}  // namespace jnvm::server

#endif  // JNVM_SRC_SERVER_SHARD_H_
