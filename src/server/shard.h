// Shards — the persistence half of the network server (DESIGN.md §7).
//
// Each shard owns a full vertical slice: one simulated NVMM device, one
// JnvmRuntime, one J-NVM backend and the KvStore on top, plus a single
// worker thread draining a bounded MPSC request queue. Keys are routed to
// shards by FNV-1a hash (ShardFor), so a key's whole history lives on one
// device — restart recovery is per-shard and embarrassingly parallel.
//
// The worker executes requests in batches of up to `batch` and holds the
// heap in group-commit mode for the batch: per-operation trailing
// durability fences are elided (heap::Heap::DurabilityFence) and one Psync
// at the end of the batch makes the whole group durable — the paper's
// "validating N objects under the same fence" (§3.2.3, Figure 5) applied
// to server-side group commit. Completions are delivered only after that
// Psync: a replied write is a durable write. Ordering fences inside the
// publication protocols are untouched, so a crash mid-batch loses only
// unacknowledged operations, never produces torn ones.
#ifndef JNVM_SRC_SERVER_SHARD_H_
#define JNVM_SRC_SERVER_SHARD_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/core/runtime.h"
#include "src/nvm/pmem_device.h"
#include "src/store/kvstore.h"

namespace jnvm::server {

// FNV-1a 64-bit — the request router's key hash. Shared with tests and the
// crashcheck "server" workload so all three agree on placement.
inline uint64_t KeyHash(std::string_view key) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (const unsigned char c : key) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

inline uint32_t ShardFor(std::string_view key, uint32_t nshards) {
  return static_cast<uint32_t>(KeyHash(key) % nshards);
}

struct ShardOptions {
  uint64_t device_bytes = 256ull << 20;
  // "jpdt" (default) or "jpfa".
  std::string backend = "jpdt";
  uint64_t map_capacity = 1 << 16;
  // Max write group per Psync (the --batch ablation knob). 1 = no batching:
  // every operation pays its own durability fence.
  uint32_t batch = 16;
  uint32_t queue_capacity = 1024;
  // When non-empty, shard i persists its device to "<image_base>.shard<i>.img"
  // on Quiesce, and Open() recovers from that file if it exists.
  std::string image_base;
  // Optane-like latency model on the device (benchmarks); off for tests.
  bool optane_latency = false;
  // When non-zero, overrides the device's per-fence cost (with the other
  // Optane latencies unchanged) — models fence-expensive platforms (ADR
  // write-pending-queue drains) where batching is the headline win.
  uint32_t fence_ns = 0;
};

// One client request, routed to the shard owning the key.
struct Request {
  enum class Op : uint8_t { kGet, kSet, kDel, kHset, kTouch };
  Op op = Op::kGet;
  std::string key;
  std::string value;   // kSet / kHset payload
  uint32_t field = 0;  // kHset field index

  // Completion routing (opaque to the shard).
  uint64_t conn_id = 0;
  uint64_t seq = 0;

  // Non-null for one part of a multi-key operation (MSET): the last part to
  // complete — counted *after* its shard's Psync — emits the one reply.
  std::shared_ptr<struct MultiOp> multi;
};

struct MultiOp {
  std::atomic<uint32_t> remaining{0};
  uint64_t conn_id = 0;
  uint64_t seq = 0;
};

// A finished request: the pre-rendered RESP reply plus its routing tag. By
// delivery time the operation's effects are durable.
struct Completion {
  uint64_t conn_id = 0;
  uint64_t seq = 0;
  std::string reply;
};

// Where shards hand finished requests. The server implementation pushes to
// a completion queue and wakes the event loop; tests use a plain collector.
class CompletionSink {
 public:
  virtual ~CompletionSink() = default;
  // Called from shard worker threads; must be thread-safe.
  virtual void OnCompletion(Completion&& c) = 0;
};

// Final state handed back by Quiesce().
struct ShardReport {
  bool integrity_ok = false;
  std::vector<std::string> violations;  // integrity audit failures (I1–I7)
  uint64_t records = 0;
  uint64_t elided_fences = 0;
  uint64_t psyncs = 0;
  bool image_saved = false;
  std::string image_path;
};

struct ShardStats {
  uint64_t queue_depth = 0;
  uint64_t batches = 0;
  uint64_t max_batch = 0;
  uint64_t elided_fences = 0;
  uint64_t records = 0;
  store::OpStats ops;
  store::CacheStats cache;
  nvm::DeviceStats device;
};

class Shard {
 public:
  // Creates shard `index`: recovers from its image file when one exists
  // (restart path — runs core recovery), else formats a fresh device.
  static std::unique_ptr<Shard> Open(const ShardOptions& opts, uint32_t index,
                                     CompletionSink* sink);
  ~Shard();

  uint32_t index() const { return index_; }
  // True when Open() loaded an existing image (→ recovery ran).
  bool recovered() const { return recovered_; }
  const core::RecoveryReport& recovery_report() const {
    return rt_->recovery_report();
  }

  // Blocking bounded push (backpressure). False once the shard is stopping —
  // the caller replies -ERR instead of enqueueing into a draining shard.
  bool Submit(Request&& req);

  // Thread-safe counters snapshot (STATS command; no queue round-trip).
  ShardStats Stats() const;

  store::KvStore& kv() { return *kv_; }

  // Stops intake, drains the queue, joins the worker, Psyncs, audits heap
  // integrity (I1–I7 with FA-log audit — the heap is quiescent), closes the
  // runtime and saves the device image. Terminal: the shard accepts no
  // further requests. Idempotent.
  ShardReport Quiesce();

 private:
  Shard() = default;

  void WorkerLoop();
  // Executes one request against the KvStore; appends the RESP reply.
  // Returns true when the op wrote persistent state.
  bool Execute(const Request& req, std::string* reply);
  void DeliverBatch(std::vector<Request>& batch, std::vector<std::string>& replies);

  uint32_t index_ = 0;
  ShardOptions opts_;
  CompletionSink* sink_ = nullptr;
  bool recovered_ = false;

  std::unique_ptr<nvm::PmemDevice> dev_;
  std::unique_ptr<core::JnvmRuntime> rt_;
  std::unique_ptr<store::Backend> backend_;
  std::unique_ptr<store::KvStore> kv_;

  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<Request> queue_;
  bool stopping_ = false;

  std::thread worker_;
  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> max_batch_{0};

  std::mutex quiesce_mu_;
  bool quiesced_ = false;
  ShardReport report_;
};

}  // namespace jnvm::server

#endif  // JNVM_SRC_SERVER_SHARD_H_
