// RESP2 wire protocol for the J-NVM network server (DESIGN.md §7).
//
// Requests are RESP arrays of bulk strings (`*N\r\n$len\r\n<bytes>\r\n`…),
// the subset Redis clients speak. Replies are simple strings (+OK), errors
// (-ERR …), integers (:N), bulk strings ($len…), nil ($-1) and — for EXEC —
// arrays of the above (*N).
//
// The parser is incremental and allocation-light: bytes are appended to an
// internal buffer and consumed in place; parse state (stage, argument count,
// current bulk length) survives across Feed calls, so a command split over
// any number of reads is never re-scanned. Argument strings are the only
// per-command allocations.
#ifndef JNVM_SRC_SERVER_PROTOCOL_H_
#define JNVM_SRC_SERVER_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

namespace jnvm::server {

// Frame limits. A violation is a protocol error: the server replies -ERR
// and closes the offending connection (its parse state is unrecoverable);
// other connections are unaffected.
inline constexpr uint64_t kMaxArgs = 1024;
inline constexpr uint64_t kMaxBulkBytes = 16ull << 20;

class RespParser {
 public:
  enum class Status {
    kNeedMore,  // no complete command buffered
    kCommand,   // *args filled with one complete command
    kError,     // protocol violation; *error describes it. Terminal.
  };

  // Appends raw bytes from the socket. When the unconsumed buffer would
  // exceed the cap (set_max_buffer), the bytes are dropped and the parser
  // enters the terminal error state — a peer streaming an endless frame
  // cannot grow the buffer without bound.
  void Feed(const char* data, size_t n);

  // Extracts the next complete command. Call repeatedly until kNeedMore to
  // drain pipelined commands. After kError the parser stays in the error
  // state (the stream position is lost).
  Status Next(std::vector<std::string>* args, std::string* error);

  // Bytes buffered but not yet consumed (tests / memory accounting).
  size_t buffered_bytes() const { return buf_.size() - consumed_; }

  // Caps the unconsumed buffer. Must exceed the largest legal frame the
  // deployment expects (a frame can be up to kMaxArgs * kMaxBulkBytes in
  // principle); the server wires this from ServerOptions::max_conn_in_bytes.
  void set_max_buffer(size_t cap) { max_buffer_ = cap; }
  // True once Feed rejected input for exceeding the cap (terminal).
  bool overflowed() const { return overflowed_; }

 private:
  enum class Stage { kArrayHeader, kBulkHeader, kBulkBody, kBroken };

  Status Fail(std::string* error, const std::string& msg);
  // Reads a CRLF-terminated line starting at consumed_; false = need more.
  bool TakeLine(std::string_view* line);
  void Compact();

  std::string buf_;
  size_t consumed_ = 0;
  size_t max_buffer_ = SIZE_MAX;
  bool overflowed_ = false;
  Stage stage_ = Stage::kArrayHeader;
  uint64_t args_left_ = 0;
  uint64_t bulk_len_ = 0;
  std::vector<std::string> partial_;
};

// ---- Reply builders (append to an output buffer) ---------------------------

void AppendSimple(std::string* out, std::string_view s);   // +s\r\n
void AppendError(std::string* out, std::string_view msg);  // -ERR msg\r\n
// Error with an explicit leading code (e.g. "READONLY ..."): -msg\r\n
void AppendErrorCode(std::string* out, std::string_view msg);
void AppendInteger(std::string* out, int64_t v);           // :v\r\n
void AppendBulk(std::string* out, std::string_view s);     // $len\r\ns\r\n
void AppendNil(std::string* out);                          // $-1\r\n
// Header of an n-element reply array (*n\r\n); the caller appends the
// elements. Used by EXEC, whose reply is one array of per-op replies.
void AppendArrayHeader(std::string* out, size_t n);

// ---- Reply parser (client side) --------------------------------------------

struct RespReply {
  enum class Type { kSimple, kError, kInteger, kBulk, kNil, kArray };
  Type type = Type::kNil;
  std::string str;      // simple / error / bulk payload
  int64_t integer = 0;  // kInteger
  std::vector<RespReply> elements;  // kArray (EXEC replies)
};

// Incremental reply reader for the blocking client: same buffering contract
// as RespParser but over the reply grammar.
class RespReplyParser {
 public:
  void Feed(const char* data, size_t n);
  // kCommand here means "one complete reply in *out".
  RespParser::Status Next(RespReply* out, std::string* error);

 private:
  // Parses one reply starting at *pos; advances *pos past it only on
  // kCommand, so a partial array rolls back wholesale and is re-parsed once
  // more bytes arrive (arrays are rare and small: one per EXEC).
  RespParser::Status ParseOne(RespReply* out, std::string* error, size_t* pos,
                              int depth);

  std::string buf_;
  size_t consumed_ = 0;
  bool broken_ = false;
};

}  // namespace jnvm::server

#endif  // JNVM_SRC_SERVER_PROTOCOL_H_
