// Lightweight assertion macros used across the code base.
//
// JNVM_CHECK is always on (release included): persistent-memory code must
// fail fast on a broken invariant rather than silently corrupt the heap.
// JNVM_DCHECK compiles out in NDEBUG builds and is for hot paths.
#ifndef JNVM_SRC_COMMON_CHECK_H_
#define JNVM_SRC_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace jnvm {

[[noreturn]] inline void CheckFailed(const char* expr, const char* file, int line,
                                     const char* msg) {
  std::fprintf(stderr, "JNVM_CHECK failed: %s at %s:%d%s%s\n", expr, file, line,
               msg[0] != '\0' ? " — " : "", msg);
  std::abort();
}

}  // namespace jnvm

#define JNVM_CHECK(cond) \
  ((cond) ? (void)0 : ::jnvm::CheckFailed(#cond, __FILE__, __LINE__, ""))

#define JNVM_CHECK_MSG(cond, msg) \
  ((cond) ? (void)0 : ::jnvm::CheckFailed(#cond, __FILE__, __LINE__, (msg)))

#ifdef NDEBUG
#define JNVM_DCHECK(cond) ((void)0)
#else
#define JNVM_DCHECK(cond) JNVM_CHECK(cond)
#endif

#endif  // JNVM_SRC_COMMON_CHECK_H_
