// Pseudo-random number generation and the key distributions used by YCSB.
//
// The generators are deliberately simple and deterministic so that every
// benchmark and property test in the repository is reproducible from a seed.
#ifndef JNVM_SRC_COMMON_RAND_H_
#define JNVM_SRC_COMMON_RAND_H_

#include <cstddef>
#include <cstdint>
#include <initializer_list>

namespace jnvm {

// xorshift128+ — fast, good-enough statistical quality for workloads/tests.
class Xorshift {
 public:
  explicit Xorshift(uint64_t seed = 0x9e3779b97f4a7c15ull) {
    // SplitMix64 seeding avoids poor low-entropy seeds.
    uint64_t z = seed;
    for (auto* s : {&s0_, &s1_}) {
      z += 0x9e3779b97f4a7c15ull;
      uint64_t x = z;
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
      *s = x ^ (x >> 31);
    }
    if (s0_ == 0 && s1_ == 0) {
      s0_ = 1;
    }
  }

  uint64_t Next() {
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  // Uniform in [0, n).
  uint64_t NextBelow(uint64_t n) { return n == 0 ? 0 : Next() % n; }

  // Uniform in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

 private:
  uint64_t s0_;
  uint64_t s1_;
};

// Zipfian generator over [0, n), YCSB-style (Gray et al.), with the
// scrambled variant used to spread popular keys across the key space.
class ZipfianGenerator {
 public:
  ZipfianGenerator(uint64_t n, double theta = 0.99, uint64_t seed = 42);

  // Draws the next zipfian rank in [0, n).
  uint64_t Next();

  // YCSB "scrambled zipfian": popular ranks hash to scattered keys.
  uint64_t NextScrambled();

  uint64_t n() const { return n_; }

 private:
  static double Zeta(uint64_t n, double theta);

  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  double zeta2theta_;
  Xorshift rng_;
};

// YCSB "latest" distribution: skewed towards the most recently inserted key.
class LatestGenerator {
 public:
  explicit LatestGenerator(uint64_t n, uint64_t seed = 42)
      : zipf_(n, 0.99, seed), max_(n) {}

  uint64_t Next() {
    const uint64_t off = zipf_.Next();
    return max_ - 1 - (off % max_);
  }

  void Grow(uint64_t new_n) { max_ = new_n; }
  uint64_t max() const { return max_; }

 private:
  ZipfianGenerator zipf_;
  uint64_t max_;
};

// 64-bit finalizer hash (used for key scrambling and test checksums).
inline uint64_t Mix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdull;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ull;
  x ^= x >> 33;
  return x;
}

}  // namespace jnvm

#endif  // JNVM_SRC_COMMON_RAND_H_
