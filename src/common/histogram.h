// Log-bucketed latency histogram (HdrHistogram-style, fixed memory).
//
// Values are recorded in nanoseconds. Buckets are arranged as 64 power-of-two
// groups of kSubBuckets linear sub-buckets, giving a relative error bound of
// 1/kSubBuckets (~1.5%) at any magnitude — good enough for tail-latency
// reporting in the benchmarks (Figure 1 right, Figure 9).
#ifndef JNVM_SRC_COMMON_HISTOGRAM_H_
#define JNVM_SRC_COMMON_HISTOGRAM_H_

#include <array>
#include <cstdint>
#include <string>

namespace jnvm {

class Histogram {
 public:
  static constexpr int kSubBucketBits = 6;  // 64 sub-buckets per octave
  static constexpr int kSubBuckets = 1 << kSubBucketBits;

  Histogram() = default;

  void Record(uint64_t value_ns) {
    counts_[Index(value_ns)] += 1;
    total_ += 1;
    sum_ += value_ns;
    if (value_ns > max_) max_ = value_ns;
    if (value_ns < min_ || total_ == 1) min_ = value_ns;
  }

  // Merges another histogram into this one (for multi-thread aggregation).
  void Merge(const Histogram& other);

  uint64_t count() const { return total_; }
  uint64_t max_ns() const { return max_; }
  uint64_t min_ns() const { return total_ == 0 ? 0 : min_; }
  double mean_ns() const {
    return total_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(total_);
  }

  // Value at quantile q in [0,1]; returns an upper bound of the bucket.
  uint64_t ValueAtQuantile(double q) const;

  // "p50=… p99=… p9999=… max=…" one-line summary, microseconds.
  std::string Summary() const;

  void Reset();

 private:
  static constexpr int kBucketCount = 64 * kSubBuckets;

  static int Index(uint64_t v);
  static uint64_t BucketUpperBound(int index);

  std::array<uint64_t, kBucketCount> counts_{};
  uint64_t total_ = 0;
  uint64_t sum_ = 0;
  uint64_t max_ = 0;
  uint64_t min_ = 0;
};

}  // namespace jnvm

#endif  // JNVM_SRC_COMMON_HISTOGRAM_H_
