// Helpers shared by the benchmark harnesses: environment-variable scaling
// and aligned table printing.
//
// Benchmarks default to sizes that complete in seconds on a small machine;
// JNVM_BENCH_SCALE multiplies record counts / operation counts to approach
// the paper's full-size runs on bigger hardware.
#ifndef JNVM_SRC_COMMON_BENCH_ENV_H_
#define JNVM_SRC_COMMON_BENCH_ENV_H_

#include <cstdint>
#include <cstdlib>
#include <string>

namespace jnvm {

inline double BenchScale() {
  const char* s = std::getenv("JNVM_BENCH_SCALE");
  if (s == nullptr) {
    return 1.0;
  }
  const double v = std::atof(s);
  return v > 0.0 ? v : 1.0;
}

inline uint64_t Scaled(uint64_t base) {
  const double v = static_cast<double>(base) * BenchScale();
  return v < 1.0 ? 1 : static_cast<uint64_t>(v);
}

inline std::string HumanBytes(uint64_t b) {
  char buf[32];
  if (b >= (1ull << 30)) {
    std::snprintf(buf, sizeof(buf), "%.2fGB", static_cast<double>(b) / (1ull << 30));
  } else if (b >= (1ull << 20)) {
    std::snprintf(buf, sizeof(buf), "%.2fMB", static_cast<double>(b) / (1ull << 20));
  } else if (b >= (1ull << 10)) {
    std::snprintf(buf, sizeof(buf), "%.2fKB", static_cast<double>(b) / (1ull << 10));
  } else {
    std::snprintf(buf, sizeof(buf), "%lluB", static_cast<unsigned long long>(b));
  }
  return buf;
}

}  // namespace jnvm

#endif  // JNVM_SRC_COMMON_BENCH_ENV_H_
