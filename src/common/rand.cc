#include "src/common/rand.h"

#include <cmath>

#include "src/common/check.h"

namespace jnvm {

ZipfianGenerator::ZipfianGenerator(uint64_t n, double theta, uint64_t seed)
    : n_(n), theta_(theta), rng_(seed) {
  JNVM_CHECK(n > 0);
  zetan_ = Zeta(n, theta);
  zeta2theta_ = Zeta(2, theta);
  alpha_ = 1.0 / (1.0 - theta);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
         (1.0 - zeta2theta_ / zetan_);
}

double ZipfianGenerator::Zeta(uint64_t n, double theta) {
  // For large n, computing the exact harmonic sum is too slow; YCSB caches
  // known constants. We sum exactly up to a bound, then use the integral
  // approximation for the tail, which is accurate to <0.1% for theta=0.99.
  constexpr uint64_t kExactBound = 1u << 20;
  double sum = 0.0;
  const uint64_t exact = n < kExactBound ? n : kExactBound;
  for (uint64_t i = 1; i <= exact; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  if (n > exact) {
    // Integral of x^-theta from exact to n.
    const double one_minus = 1.0 - theta;
    sum += (std::pow(static_cast<double>(n), one_minus) -
            std::pow(static_cast<double>(exact), one_minus)) /
           one_minus;
  }
  return sum;
}

uint64_t ZipfianGenerator::Next() {
  const double u = rng_.NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) {
    return 0;
  }
  if (uz < 1.0 + std::pow(0.5, theta_)) {
    return 1;
  }
  const uint64_t rank = static_cast<uint64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return rank >= n_ ? n_ - 1 : rank;
}

uint64_t ZipfianGenerator::NextScrambled() { return Mix64(Next()) % n_; }

}  // namespace jnvm
