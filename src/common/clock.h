// Timing utilities: a monotonic stopwatch and a calibrated busy-wait.
//
// SpinFor() is the foundation of the latency models in src/nvm and src/fs:
// simulated device latencies must consume real CPU-visible time so that the
// benchmark harness measures them, but they must not involve the scheduler
// (nanosleep granularity is far too coarse for 100 ns-scale NVM latencies).
#ifndef JNVM_SRC_COMMON_CLOCK_H_
#define JNVM_SRC_COMMON_CLOCK_H_

#include <chrono>
#include <cstdint>

namespace jnvm {

inline uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Busy-waits for approximately `ns` nanoseconds. Zero is free.
inline void SpinFor(uint64_t ns) {
  if (ns == 0) {
    return;
  }
  const uint64_t deadline = NowNs() + ns;
  while (NowNs() < deadline) {
    // Relax the pipeline; keeps the spin cheap on SMT siblings.
#if defined(__x86_64__)
    __builtin_ia32_pause();
#endif
  }
}

class Stopwatch {
 public:
  Stopwatch() : start_(NowNs()) {}

  void Reset() { start_ = NowNs(); }
  uint64_t ElapsedNs() const { return NowNs() - start_; }
  double ElapsedSec() const { return static_cast<double>(ElapsedNs()) / 1e9; }

 private:
  uint64_t start_;
};

}  // namespace jnvm

#endif  // JNVM_SRC_COMMON_CLOCK_H_
