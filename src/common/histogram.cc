#include "src/common/histogram.h"

#include <bit>
#include <cstdio>

namespace jnvm {

int Histogram::Index(uint64_t v) {
  if (v < kSubBuckets) {
    return static_cast<int>(v);
  }
  // Highest set bit determines the octave; the next kSubBucketBits bits
  // select the linear sub-bucket within it.
  const int msb = 63 - std::countl_zero(v);
  const int octave = msb - kSubBucketBits + 1;
  const int sub = static_cast<int>(v >> octave) & (kSubBuckets - 1);
  int idx = (octave + 1) * kSubBuckets + sub;
  if (idx >= kBucketCount) idx = kBucketCount - 1;
  return idx;
}

uint64_t Histogram::BucketUpperBound(int index) {
  if (index < kSubBuckets) {
    return static_cast<uint64_t>(index);
  }
  const int octave = index / kSubBuckets - 1;
  const int sub = index % kSubBuckets;
  return (static_cast<uint64_t>(sub + 1) << octave) - 1;
}

void Histogram::Merge(const Histogram& other) {
  for (int i = 0; i < kBucketCount; ++i) {
    counts_[i] += other.counts_[i];
  }
  if (other.total_ > 0) {
    if (total_ == 0 || other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }
  total_ += other.total_;
  sum_ += other.sum_;
}

uint64_t Histogram::ValueAtQuantile(double q) const {
  if (total_ == 0) {
    return 0;
  }
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const uint64_t target = static_cast<uint64_t>(q * static_cast<double>(total_) + 0.5);
  uint64_t running = 0;
  for (int i = 0; i < kBucketCount; ++i) {
    running += counts_[i];
    if (running >= target) {
      const uint64_t ub = BucketUpperBound(i);
      return ub > max_ ? max_ : ub;
    }
  }
  return max_;
}

std::string Histogram::Summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "p50=%.1fus p90=%.1fus p99=%.1fus p9999=%.1fus max=%.1fus",
                ValueAtQuantile(0.50) / 1e3, ValueAtQuantile(0.90) / 1e3,
                ValueAtQuantile(0.99) / 1e3, ValueAtQuantile(0.9999) / 1e3,
                static_cast<double>(max_) / 1e3);
  return buf;
}

void Histogram::Reset() {
  counts_.fill(0);
  total_ = 0;
  sum_ = 0;
  max_ = 0;
  min_ = 0;
}

}  // namespace jnvm
