// The J-PDT persistent maps and sets (§4.3.2).
//
// Design straight from the paper: "to construct a persistent map, J-PDT
// stores the references to the persistent key/value pairs in a persistent
// extensible array. In the proxy, J-NVM maintains two volatile data
// structures: a free queue that stores the empty cells in the persistent
// array, and a mirror map that mirrors the persistent array in volatile
// memory. The mirror map implements the logic of the data structure."
//
// The persistent structure is always consistent because a mutation incurs a
// single reference write into the array. One pfence per insert (publish) and
// one per remove (unlink-before-reuse) sit in the critical path — the cost
// §5.3.4 attributes to crash handling.
//
// Mirrors give the three structures of Figure 12:
//   PStringHashMap      — std::unordered_map mirror   (HashMap)
//   PStringTreeMap      — std::map mirror (red-black) (TreeMap)
//   PStringSkipListMap  — SkipListMap mirror          (SkipListMap)
// plus integer-keyed variants with inline keys (TPC-B accounts).
//
// Proxy-caching variants (§4.3.2 "Base, cached and eager maps and sets"):
//   kBase   — a fresh value proxy per lookup (lowest memory),
//   kCached — value proxies cached on demand,
//   kEager  — the cache is populated during resurrection.
//
// A persistent set is a persistent map that binds each key to itself — use
// Add/Contains (the stored value reference is null).
#ifndef JNVM_SRC_PDT_PMAP_H_
#define JNVM_SRC_PDT_PMAP_H_

#include <functional>
#include <list>
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>

#include "src/core/ref_array.h"
#include "src/core/runtime.h"
#include "src/pdt/ppair.h"
#include "src/pdt/pstring.h"
#include "src/pdt/skiplist.h"

namespace jnvm::pdt {

enum class ProxyCaching { kBase, kCached, kEager };

// ---- Key policies ------------------------------------------------------------

struct StringKeyPolicy {
  using VKey = std::string;
  using PairT = PRefPair;

  static PairT MakePair(core::JnvmRuntime& rt, const VKey& key,
                        core::PObject* value) {
    PString k(rt, key);
    k.Validate();  // no fence; the map's publish fence covers it
    return PairT(rt, &k, value);
  }
  static VKey LoadKey(PairT& pair) {
    const auto k = std::static_pointer_cast<PString>(pair.Key());
    return k->Str();
  }
  static void FreeKey(core::JnvmRuntime& rt, PairT& pair) {
    const nvm::Offset kref = pair.KeyRaw();
    if (kref != 0) {
      rt.FreeRef(kref);
    }
  }
};

struct LongKeyPolicy {
  using VKey = int64_t;
  using PairT = PIntPair;

  static PairT MakePair(core::JnvmRuntime& rt, const VKey& key,
                        core::PObject* value) {
    return PairT(rt, key, value);
  }
  static VKey LoadKey(PairT& pair) { return pair.Key(); }
  static void FreeKey(core::JnvmRuntime&, PairT&) {}  // inline key
};

// ---- Mirror access shims (std-style maps vs SkipListMap) ----------------------

template <typename M, typename K>
bool MirrorFind(const M& m, const K& k, uint64_t* slot) {
  auto it = m.find(k);
  if (it == m.end()) {
    return false;
  }
  *slot = it->second;
  return true;
}

template <typename K, typename L>
bool MirrorFind(const SkipListMap<K, uint64_t, L>& m, const K& k, uint64_t* slot) {
  auto it = m.find(k);
  if (it == m.end()) {
    return false;
  }
  *slot = it.value();
  return true;
}

template <typename M, typename K>
void MirrorForEach(const M& m, const std::function<void(const K&, uint64_t)>& fn) {
  for (const auto& [k, slot] : m) {
    fn(k, slot);
  }
}

template <typename K, typename L>
void MirrorForEach(const SkipListMap<K, uint64_t, L>& m,
                   const std::function<void(const K&, uint64_t)>& fn) {
  for (auto it = m.begin(); it != m.end(); ++it) {
    fn(it.key(), it.value());
  }
}

// Ordered-mirror range walk over [from, to); returns entries visited.
// Callable only for mirrors with lower_bound (tree / skip-list maps) — the
// instantiation fails for hash mirrors, which have no order.
template <typename K, typename V, typename Cmp, typename Alloc, typename Fn>
size_t MirrorForRange(const std::map<K, V, Cmp, Alloc>& m, const K& from,
                      const K& to, Fn&& fn) {
  size_t n = 0;
  for (auto it = m.lower_bound(from); it != m.end() && it->first < to; ++it) {
    fn(it->first, it->second);
    ++n;
  }
  return n;
}

template <typename K, typename L, typename Fn>
size_t MirrorForRange(const SkipListMap<K, uint64_t, L>& m, const K& from,
                      const K& to, Fn&& fn) {
  size_t n = 0;
  for (auto it = m.lower_bound(from); it != m.end() && it.key() < to; ++it) {
    fn(it.key(), it.value());
    ++n;
  }
  return n;
}

// ---- The map template ----------------------------------------------------------

template <typename Traits>
class PMap final : public core::PObject {
 public:
  using KeyPolicy = typename Traits::KeyPolicy;
  using VKey = typename KeyPolicy::VKey;
  using PairT = typename KeyPolicy::PairT;
  using Mirror = typename Traits::Mirror;

  static const core::ClassInfo* Class() {
    static const core::ClassInfo* info = RegisterClass(
        core::MakeClassInfo<PMap>(Traits::kClassName, &PMap::TraceFn));
    return info;
  }

  explicit PMap(core::Resurrect) {}

  explicit PMap(core::JnvmRuntime& rt, uint64_t initial_capacity = 16,
                ProxyCaching caching = ProxyCaching::kBase)
      : caching_(caching) {
    AllocatePersistent(rt, Class(), 8);
    auto arr = std::make_shared<core::PRefArray>(rt, initial_capacity);
    arr->Validate();
    WritePObject(kArrOff, arr.get());
    PwbField(kArrOff, 8);
    arr_ = std::move(arr);
    for (uint64_t i = initial_capacity; i > 0; --i) {
      free_slots_.push_back(i - 1);
    }
  }

  // Resurrection (§4.3.2): inspect each cell; non-null references feed the
  // mirror, empty ones feed the volatile free queue.
  void Resurrect_() override {
    std::lock_guard<std::mutex> lk(mu_);
    arr_ = ReadPObjectAs<core::PRefArray>(kArrOff);
    mirror_.clear();
    free_slots_.clear();
    cache_.clear();
    cache_lru_.clear();
    lru_pos_.clear();
    const uint64_t cap = arr_->capacity();
    for (uint64_t i = 0; i < cap; ++i) {
      const nvm::Offset ref = arr_->GetRaw(i);
      if (ref == 0) {
        free_slots_.push_back(i);
        continue;
      }
      auto pair = PairAt(i);
      mirror_[KeyPolicy::LoadKey(*pair)] = i;
    }
    if (caching_ == ProxyCaching::kEager) {
      PopulateCacheLocked();
    }
  }

  // Selects the proxy-caching variant. kEager populates immediately.
  // `max_entries` bounds the cached variant to the hottest proxies (§4.3.2:
  // "it would be possible to extend this code to include only the hottest
  // proxies"); 0 means unbounded. Ignored for kBase/kEager.
  void SetCaching(ProxyCaching caching, uint64_t max_entries = 0) {
    std::lock_guard<std::mutex> lk(mu_);
    caching_ = caching;
    cache_capacity_ = caching == ProxyCaching::kCached ? max_entries : 0;
    if (caching_ == ProxyCaching::kBase) {
      cache_.clear();
      cache_lru_.clear();
    } else if (caching_ == ProxyCaching::kEager) {
      PopulateCacheLocked();
    }
  }
  ProxyCaching caching() const { return caching_; }
  size_t CachedProxies() {
    std::lock_guard<std::mutex> lk(mu_);
    return cache_.size();
  }

  bool Contains(const VKey& key) {
    std::lock_guard<std::mutex> lk(mu_);
    uint64_t slot;
    return MirrorFind(mirror_, key, &slot);
  }

  core::Handle<core::PObject> Get(const VKey& key) {
    std::lock_guard<std::mutex> lk(mu_);
    uint64_t slot;
    if (!MirrorFind(mirror_, key, &slot)) {
      return nullptr;
    }
    if (caching_ != ProxyCaching::kBase) {
      auto it = cache_.find(slot);
      if (it != cache_.end()) {
        TouchLruLocked(slot);
        return it->second;
      }
    }
    auto value = PairAt(slot)->Value();
    if (caching_ != ProxyCaching::kBase && value != nullptr) {
      InsertCacheLocked(slot, value);
    }
    return value;
  }

  template <typename T>
  core::Handle<T> GetAs(const VKey& key) {
    return std::static_pointer_cast<T>(Get(key));
  }

  // Insert-or-replace; true when the key was newly inserted (false =
  // replaced an existing mapping). With free_old_value, a replaced value's
  // persistent structure is freed (the Infinispan backend's behaviour,
  // §4.1.6).
  bool Put(const VKey& key, core::PObject* value, bool free_old_value = true) {
    core::JnvmRuntime& rt = runtime();
    std::lock_guard<std::mutex> lk(mu_);
    uint64_t slot;
    if (MirrorFind(mirror_, key, &slot)) {
      auto pair = PairAt(slot);
      if (free_old_value) {
        pair->SetValueAndFreeOld(value);  // fences internally (§4.1.6)
      } else {
        pair->SetValue(value);
        DurabilityFence();  // durable on return (write-through semantics)
      }
      EraseCacheLocked(slot);
      return false;
    }
    slot = TakeSlotLocked();
    PairT pair = KeyPolicy::MakePair(rt, key, value);
    pair.Validate();
    if (value != nullptr && !value->IsValidObject()) {
      value->Pwb();
      value->Validate();
    }
    Pfence();                         // everything durable …
    arr_->SetRaw(slot, pair.addr());  // … before the single publishing write
    DurabilityFence();                // … and the publication durable on return
    mirror_[key] = slot;
    return true;
  }

  // Set-style insert (a set maps each key to itself, §4.3.2).
  void Add(const VKey& key) { Put(key, nullptr, false); }

  bool Remove(const VKey& key, bool free_value = true) {
    core::JnvmRuntime& rt = runtime();
    std::lock_guard<std::mutex> lk(mu_);
    uint64_t slot;
    if (!MirrorFind(mirror_, key, &slot)) {
      return false;
    }
    auto pair = PairAt(slot);
    arr_->SetRaw(slot, 0);
    // Unlink durable before any of the memory can be recycled. Under group
    // commit the frees below are deferred past the batch's Psync, so this
    // reduces to a durability fence and is elided.
    DurabilityFence();
    KeyPolicy::FreeKey(rt, *pair);
    const nvm::Offset vref = pair->ValueRaw();
    if (free_value && vref != 0) {
      rt.FreeRef(vref);
    }
    rt.Free(*pair);
    mirror_.erase(key);
    free_slots_.push_back(slot);
    EraseCacheLocked(slot);
    return true;
  }

  size_t Size() {
    std::lock_guard<std::mutex> lk(mu_);
    return mirror_.size();
  }

  // Iterates keys in mirror order (sorted for tree/skip-list mirrors).
  void ForEach(const std::function<void(const VKey&, core::Handle<core::PObject>)>& fn) {
    std::lock_guard<std::mutex> lk(mu_);
    MirrorForEach<typename Traits::Mirror, VKey>(
        mirror_, [&](const VKey& k, uint64_t slot) { fn(k, PairAt(slot)->Value()); });
  }

  // Range scan over [from, to) for ordered structures (tree / skip-list
  // maps). YCSB's scan operation; hash maps have no order and cannot
  // instantiate this (the paper's Infinispan exposes scans only through an
  // indexed interface for the same reason, §5.2).
  size_t ForEachRange(const VKey& from, const VKey& to,
                      const std::function<void(const VKey&, core::Handle<core::PObject>)>& fn) {
    std::lock_guard<std::mutex> lk(mu_);
    return MirrorForRange(mirror_, from, to, [&](const VKey& k, uint64_t slot) {
      fn(k, PairAt(slot)->Value());
    });
  }

  uint64_t CapacitySlots() {
    std::lock_guard<std::mutex> lk(mu_);
    return arr_->capacity();
  }

  // Oracle adapter (src/crashcheck): walks the *persistent* array directly,
  // bypassing the volatile mirror, so the crash-consistency checker can
  // cross-validate the mirror (what the application sees) against the
  // durable cells (what actually survived the crash). Returns the number of
  // occupied cells visited.
  size_t ForEachPersisted(
      const std::function<void(const VKey&, core::Handle<core::PObject>)>& fn) {
    std::lock_guard<std::mutex> lk(mu_);
    const uint64_t cap = arr_->capacity();
    size_t occupied = 0;
    for (uint64_t i = 0; i < cap; ++i) {
      if (arr_->GetRaw(i) == 0) {
        continue;
      }
      ++occupied;
      auto pair = PairAt(i);
      fn(KeyPolicy::LoadKey(*pair), pair->Value());
    }
    return occupied;
  }

 private:
  static constexpr size_t kArrOff = 0;

  static void TraceFn(core::ObjectView& view, core::RefVisitor& v) {
    v.VisitRef(view, kArrOff);
  }

  core::Handle<PairT> PairAt(uint64_t slot) const {
    return runtime().template ResurrectRefAs<PairT>(arr_->GetRaw(slot));
  }

  uint64_t TakeSlotLocked() {
    if (!free_slots_.empty()) {
      const uint64_t slot = free_slots_.back();
      free_slots_.pop_back();
      return slot;
    }
    core::JnvmRuntime& rt = runtime();
    const uint64_t old_cap = arr_->capacity();
    auto bigger = std::make_shared<core::PRefArray>(rt, old_cap * 2);
    for (uint64_t i = 0; i < old_cap; ++i) {
      bigger->SetRaw(i, arr_->GetRaw(i));
    }
    UpdateRefAndFreeOld(kArrOff, bigger.get());  // §4.1.6 atomic extension
    arr_ = std::move(bigger);
    for (uint64_t i = old_cap * 2; i > old_cap; --i) {
      free_slots_.push_back(i - 1);
    }
    const uint64_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }

  void PopulateCacheLocked() {
    MirrorForEach<typename Traits::Mirror, VKey>(
        mirror_, [&](const VKey&, uint64_t slot) {
          if (cache_.find(slot) == cache_.end()) {
            auto v = PairAt(slot)->Value();
            if (v != nullptr) {
              cache_[slot] = std::move(v);
            }
          }
        });
  }

  void EraseCacheLocked(uint64_t slot) {
    cache_.erase(slot);
    auto it = lru_pos_.find(slot);
    if (it != lru_pos_.end()) {
      cache_lru_.erase(it->second);
      lru_pos_.erase(it);
    }
  }

  // LRU bookkeeping only runs for bounded caches (cache_capacity_ != 0).
  void TouchLruLocked(uint64_t slot) {
    if (cache_capacity_ == 0) {
      return;
    }
    auto it = lru_pos_.find(slot);
    if (it != lru_pos_.end()) {
      cache_lru_.splice(cache_lru_.begin(), cache_lru_, it->second);
    }
  }

  void InsertCacheLocked(uint64_t slot, core::Handle<core::PObject> value) {
    if (cache_capacity_ != 0) {
      while (cache_.size() >= cache_capacity_ && !cache_lru_.empty()) {
        const uint64_t victim = cache_lru_.back();
        cache_lru_.pop_back();
        lru_pos_.erase(victim);
        cache_.erase(victim);  // only the hottest proxies stay
      }
      cache_lru_.push_front(slot);
      lru_pos_[slot] = cache_lru_.begin();
    }
    cache_[slot] = std::move(value);
  }

  std::mutex mu_;
  core::Handle<core::PRefArray> arr_;  // transient
  Mirror mirror_;                      // transient: the structure's logic
  std::vector<uint64_t> free_slots_;   // transient free queue
  std::unordered_map<uint64_t, core::Handle<core::PObject>> cache_;  // cached/eager
  std::list<uint64_t> cache_lru_;  // bounded-cache eviction order
  std::unordered_map<uint64_t, std::list<uint64_t>::iterator> lru_pos_;
  uint64_t cache_capacity_ = 0;  // 0 = unbounded
  ProxyCaching caching_ = ProxyCaching::kBase;
};

// ---- Concrete instantiations ---------------------------------------------------

struct StringHashTraits {
  static constexpr const char* kClassName = "jnvm.PHashMap";
  using KeyPolicy = StringKeyPolicy;
  using Mirror = std::unordered_map<std::string, uint64_t>;
};
struct StringTreeTraits {
  static constexpr const char* kClassName = "jnvm.PTreeMap";
  using KeyPolicy = StringKeyPolicy;
  using Mirror = std::map<std::string, uint64_t>;
};
struct StringSkipTraits {
  static constexpr const char* kClassName = "jnvm.PSkipListMap";
  using KeyPolicy = StringKeyPolicy;
  using Mirror = SkipListMap<std::string, uint64_t>;
};
struct LongHashTraits {
  static constexpr const char* kClassName = "jnvm.PLongHashMap";
  using KeyPolicy = LongKeyPolicy;
  using Mirror = std::unordered_map<int64_t, uint64_t>;
};
struct LongTreeTraits {
  static constexpr const char* kClassName = "jnvm.PLongTreeMap";
  using KeyPolicy = LongKeyPolicy;
  using Mirror = std::map<int64_t, uint64_t>;
};

using PStringHashMap = PMap<StringHashTraits>;
using PStringTreeMap = PMap<StringTreeTraits>;
using PStringSkipListMap = PMap<StringSkipTraits>;
using PLongHashMap = PMap<LongHashTraits>;
using PLongTreeMap = PMap<LongTreeTraits>;

// ---- Sets -----------------------------------------------------------------------
//
// "We first implement a persistent set as a persistent map that associates
// each key with itself" (§4.3.2). PSet is the thin volatile adapter over
// the corresponding map class (no value objects are stored).

template <typename MapT>
class PSet {
 public:
  using VKey = typename MapT::VKey;

  // Adopts an existing (possibly resurrected) map as the set's storage.
  explicit PSet(core::Handle<MapT> storage) : map_(std::move(storage)) {}
  PSet(core::JnvmRuntime& rt, uint64_t initial_capacity = 16)
      : map_(std::make_shared<MapT>(rt, initial_capacity)) {}

  MapT& map() { return *map_; }
  core::Handle<MapT> storage() const { return map_; }

  void Add(const VKey& key) { map_->Add(key); }
  bool Contains(const VKey& key) { return map_->Contains(key); }
  bool Remove(const VKey& key) { return map_->Remove(key, false); }
  size_t Size() { return map_->Size(); }
  void ForEach(const std::function<void(const VKey&)>& fn) {
    map_->ForEach([&](const VKey& k, core::Handle<core::PObject>) { fn(k); });
  }

 private:
  core::Handle<MapT> map_;
};

using PStringHashSet = PSet<PStringHashMap>;
using PStringTreeSet = PSet<PStringTreeMap>;
using PLongHashSet = PSet<PLongHashMap>;

}  // namespace jnvm::pdt

#endif  // JNVM_SRC_PDT_PMAP_H_
