// Persistent key/value pairs — the unit the J-PDT maps point at (§4.3.2).
//
// PRefPair references both a persistent key object (e.g. PString) and a
// persistent value. PIntPair inlines a 64-bit key, avoiding a key object for
// integer-keyed tables (e.g. TPC-B account ids).
#ifndef JNVM_SRC_PDT_PPAIR_H_
#define JNVM_SRC_PDT_PPAIR_H_

#include "src/core/pobject.h"
#include "src/core/runtime.h"

namespace jnvm::pdt {

class PRefPair final : public core::PObject {
 public:
  static const core::ClassInfo* Class();

  explicit PRefPair(core::Resurrect) {}
  PRefPair(core::JnvmRuntime& rt, const core::PObject* key, const core::PObject* value) {
    AllocatePersistent(rt, Class(), 16);
    WritePObject(kValueOff, value);
    WritePObject(kKeyOff, key);
    Pwb();
  }

  nvm::Offset ValueRaw() const { return ReadRefRaw(kValueOff); }
  nvm::Offset KeyRaw() const { return ReadRefRaw(kKeyOff); }
  core::Handle<core::PObject> Value() const { return ReadPObject(kValueOff); }
  core::Handle<core::PObject> Key() const { return ReadPObject(kKeyOff); }

  // Atomic value replacement (§4.1.6); the variant with FreeOld is what the
  // Infinispan backend uses to keep key→value associations sound (§4.1.6).
  void SetValue(core::PObject* v) { UpdateRef(kValueOff, v); }
  void SetValueAndFreeOld(core::PObject* v) { UpdateRefAndFreeOld(kValueOff, v); }

  static constexpr size_t kValueOff = 0;
  static constexpr size_t kKeyOff = 8;

 private:
  static void Trace(core::ObjectView& view, core::RefVisitor& v);
};

class PIntPair final : public core::PObject {
 public:
  static const core::ClassInfo* Class();

  explicit PIntPair(core::Resurrect) {}
  PIntPair(core::JnvmRuntime& rt, int64_t key, const core::PObject* value) {
    AllocatePersistent(rt, Class(), 16);
    WritePObject(kValueOff, value);
    WriteField<int64_t>(kKeyOff, key);
    Pwb();
  }

  nvm::Offset ValueRaw() const { return ReadRefRaw(kValueOff); }
  int64_t Key() const { return ReadField<int64_t>(kKeyOff); }
  core::Handle<core::PObject> Value() const { return ReadPObject(kValueOff); }

  void SetValue(core::PObject* v) { UpdateRef(kValueOff, v); }
  void SetValueAndFreeOld(core::PObject* v) { UpdateRefAndFreeOld(kValueOff, v); }

  static constexpr size_t kValueOff = 0;
  static constexpr size_t kKeyOff = 8;

 private:
  static void Trace(core::ObjectView& view, core::RefVisitor& v);
};

}  // namespace jnvm::pdt

#endif  // JNVM_SRC_PDT_PPAIR_H_
