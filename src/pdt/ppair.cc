#include "src/pdt/ppair.h"

namespace jnvm::pdt {

const core::ClassInfo* PRefPair::Class() {
  static const core::ClassInfo* info =
      RegisterClass(core::MakeClassInfo<PRefPair>("jnvm.PRefPair", &PRefPair::Trace));
  return info;
}

void PRefPair::Trace(core::ObjectView& view, core::RefVisitor& v) {
  v.VisitRef(view, kValueOff);
  v.VisitRef(view, kKeyOff);
}

const core::ClassInfo* PIntPair::Class() {
  static const core::ClassInfo* info =
      RegisterClass(core::MakeClassInfo<PIntPair>("jnvm.PIntPair", &PIntPair::Trace));
  return info;
}

void PIntPair::Trace(core::ObjectView& view, core::RefVisitor& v) {
  v.VisitRef(view, kValueOff);  // the key is inline, not a reference
}

}  // namespace jnvm::pdt
