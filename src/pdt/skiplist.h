// A volatile skip-list map.
//
// Two roles (§4.3.2, §5.3.4): it is the volatile *mirror* behind
// PSkipListMap — "the mirror map implements the logic of the data
// structure" — and, instantiated directly, it is the volatile
// ConcurrentSkipListMap counterpart that Figure 12 benchmarks against.
//
// Interface mimics the std::map subset the mirrors use: operator[], find,
// erase, size, clear, ordered begin/end.
#ifndef JNVM_SRC_PDT_SKIPLIST_H_
#define JNVM_SRC_PDT_SKIPLIST_H_

#include <array>
#include <functional>
#include <utility>

#include "src/common/rand.h"

namespace jnvm::pdt {

template <typename K, typename V, typename Less = std::less<K>>
class SkipListMap {
 public:
  static constexpr int kMaxLevel = 24;

  SkipListMap() : head_(new Node(K{}, V{}, kMaxLevel)), rng_(0x5eed) {}
  ~SkipListMap() {
    clear();
    delete head_;
  }
  SkipListMap(const SkipListMap&) = delete;
  SkipListMap& operator=(const SkipListMap&) = delete;

  struct Node {
    Node(K k, V v, int h) : key(std::move(k)), value(std::move(v)), height(h) {
      next.fill(nullptr);
    }
    K key;
    V value;
    int height;
    std::array<Node*, kMaxLevel> next;
  };

  class iterator {
   public:
    explicit iterator(Node* n) : n_(n) {}
    std::pair<const K&, V&> operator*() const { return {n_->key, n_->value}; }
    iterator& operator++() {
      n_ = n_->next[0];
      return *this;
    }
    bool operator==(const iterator& o) const { return n_ == o.n_; }
    bool operator!=(const iterator& o) const { return n_ != o.n_; }
    const K& key() const { return n_->key; }
    V& value() const { return n_->value; }

   private:
    friend class SkipListMap;
    Node* n_;
  };

  iterator begin() const { return iterator(head_->next[0]); }
  iterator end() const { return iterator(nullptr); }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  iterator find(const K& key) const {
    Node* n = FindGreaterOrEqual(key, nullptr);
    if (n != nullptr && Equal(n->key, key)) {
      return iterator(n);
    }
    return end();
  }

  // First element with key >= `key` (ordered-map range scans).
  iterator lower_bound(const K& key) const {
    return iterator(FindGreaterOrEqual(key, nullptr));
  }

  bool contains(const K& key) const { return find(key) != end(); }

  V& operator[](const K& key) {
    Node* prev[kMaxLevel];
    Node* n = FindGreaterOrEqual(key, prev);
    if (n != nullptr && Equal(n->key, key)) {
      return n->value;
    }
    const int h = RandomHeight();
    Node* node = new Node(key, V{}, h);
    for (int i = 0; i < h; ++i) {
      node->next[i] = prev[i]->next[i];
      prev[i]->next[i] = node;
    }
    ++size_;
    return node->value;
  }

  size_t erase(const K& key) {
    Node* prev[kMaxLevel];
    Node* n = FindGreaterOrEqual(key, prev);
    if (n == nullptr || !Equal(n->key, key)) {
      return 0;
    }
    for (int i = 0; i < n->height; ++i) {
      if (prev[i]->next[i] == n) {
        prev[i]->next[i] = n->next[i];
      }
    }
    delete n;
    --size_;
    return 1;
  }

  void clear() {
    Node* n = head_->next[0];
    while (n != nullptr) {
      Node* next = n->next[0];
      delete n;
      n = next;
    }
    head_->next.fill(nullptr);
    size_ = 0;
  }

 private:
  bool Equal(const K& a, const K& b) const { return !less_(a, b) && !less_(b, a); }

  Node* FindGreaterOrEqual(const K& key, Node** prev) const {
    Node* x = head_;
    for (int level = kMaxLevel - 1; level >= 0; --level) {
      while (x->next[level] != nullptr && less_(x->next[level]->key, key)) {
        x = x->next[level];
      }
      if (prev != nullptr) {
        prev[level] = x;
      }
    }
    return x->next[0];
  }

  int RandomHeight() {
    int h = 1;
    while (h < kMaxLevel && (rng_.Next() & 3) == 0) {  // p = 1/4
      ++h;
    }
    return h;
  }

  Node* head_;
  size_t size_ = 0;
  Less less_;
  Xorshift rng_;
};

}  // namespace jnvm::pdt

#endif  // JNVM_SRC_PDT_SKIPLIST_H_
