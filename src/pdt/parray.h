// Fixed-size persistent arrays (§4.3.1).
//
// "J-PDT provides arrays of fixed sizes. An array contains its length at
// offset 0 and the elements afterward. This class provides a constructor to
// initialize its content appropriately, accessors to retrieve the elements,
// and methods to flush either an element, or the array in full."
//
// PLongArray: 64-bit integers. PByteArray: raw bytes (the persistent
// replacement for Java byte[], used by record-like values).
#ifndef JNVM_SRC_PDT_PARRAY_H_
#define JNVM_SRC_PDT_PARRAY_H_

#include <string_view>
#include <vector>

#include "src/core/pobject.h"
#include "src/core/runtime.h"

namespace jnvm::pdt {

class PLongArray final : public core::PObject {
 public:
  static const core::ClassInfo* Class();

  explicit PLongArray(core::Resurrect) {}
  PLongArray(core::JnvmRuntime& rt, uint64_t length);

  uint64_t Length() const { return ReadField<uint64_t>(kLenOff); }
  int64_t Get(uint64_t i) const {
    JNVM_DCHECK(i < Length());
    return ReadField<int64_t>(ElemOff(i));
  }
  void Set(uint64_t i, int64_t v) {
    JNVM_DCHECK(i < Length());
    WriteField<int64_t>(ElemOff(i), v);
  }
  // Queues the cache line(s) of one element (§4.3.1 flush methods).
  void FlushElement(uint64_t i) { PwbField(ElemOff(i), sizeof(int64_t)); }
  void FlushAll() { Pwb(); }

 private:
  static constexpr size_t kLenOff = 0;
  static constexpr size_t kElemsOff = 8;
  static size_t ElemOff(uint64_t i) { return kElemsOff + i * sizeof(int64_t); }
};

class PByteArray final : public core::PObject {
 public:
  static const core::ClassInfo* Class();

  explicit PByteArray(core::Resurrect) {}
  PByteArray(core::JnvmRuntime& rt, uint64_t length);
  // Initialized from a byte string.
  PByteArray(core::JnvmRuntime& rt, std::string_view content);

  uint64_t Length() const { return ReadField<uint64_t>(kLenOff); }
  void Read(uint64_t off, void* dst, size_t n) const {
    JNVM_DCHECK(off + n <= Length());
    ReadBytesField(kDataOff + off, dst, n);
  }
  void Write(uint64_t off, const void* src, size_t n) {
    JNVM_DCHECK(off + n <= Length());
    WriteBytesField(kDataOff + off, src, n);
  }
  std::string Str() const;
  void FlushRange(uint64_t off, size_t n) { PwbField(kDataOff + off, n); }
  void FlushAll() { Pwb(); }

 private:
  static constexpr size_t kLenOff = 0;
  static constexpr size_t kDataOff = 8;
};

}  // namespace jnvm::pdt

#endif  // JNVM_SRC_PDT_PARRAY_H_
