// PString — the drop-in persistent replacement for java.lang.String (§2.6,
// Figure 3 line 9).
//
// Strings are immutable. Small strings are packed into pool blocks to avoid
// internal fragmentation (§4.4); large strings fall back to a chained
// object. The two representations register distinct persistent class names
// so recovery can tell pool blocks from chained masters, but both resurrect
// into the same proxy type.
//
// Persistent layout: {u32 length, bytes}.
#ifndef JNVM_SRC_PDT_PSTRING_H_
#define JNVM_SRC_PDT_PSTRING_H_

#include <string>
#include <string_view>

#include "src/core/pobject.h"
#include "src/core/runtime.h"

namespace jnvm::pdt {

using core::ClassInfo;
using core::Handle;
using core::JnvmRuntime;
using core::PObject;
using core::Resurrect;

class PString final : public PObject {
 public:
  // Chained representation (large strings).
  static const ClassInfo* Class();
  // Pool representation (small strings).
  static const ClassInfo* SmallClass();

  explicit PString(Resurrect) {}
  // Copies `s` into NVMM and queues the content for write-back; the caller
  // (or the enclosing failure-atomic block) provides the publication fence.
  PString(JnvmRuntime& rt, std::string_view s);

  uint32_t Length() const { return ReadField<uint32_t>(kLenOff); }
  std::string Str() const;
  bool Equals(std::string_view s) const;

  // Byte content starting offset within the payload.
  static constexpr size_t kLenOff = 0;
  static constexpr size_t kDataOff = 4;
};

}  // namespace jnvm::pdt

#endif  // JNVM_SRC_PDT_PSTRING_H_
