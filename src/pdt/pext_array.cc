#include "src/pdt/pext_array.h"

namespace jnvm::pdt {

const core::ClassInfo* PExtArray::Class() {
  static const core::ClassInfo* info = RegisterClass(
      core::MakeClassInfo<PExtArray>("jnvm.PExtArray", &PExtArray::Trace));
  return info;
}

PExtArray::PExtArray(core::JnvmRuntime& rt, uint64_t initial_capacity) {
  AllocatePersistent(rt, Class(), 16);
  auto storage = std::make_shared<core::PRefArray>(rt, initial_capacity);
  storage->Validate();
  WritePObject(kStorageOff, storage.get());
  PwbField(0, 16);
  storage_ = std::move(storage);
}

void PExtArray::Trace(core::ObjectView& view, core::RefVisitor& v) {
  // The storage array's own tracer covers every slot (count included), so
  // stale refs past `count` are followed-or-nullified there.
  v.VisitRef(view, kStorageOff);
}

void PExtArray::Grow() {
  core::JnvmRuntime& rt = runtime();
  const uint64_t old_cap = storage_->capacity();
  auto bigger = std::make_shared<core::PRefArray>(rt, old_cap * 2);
  for (uint64_t i = 0; i < old_cap; ++i) {
    bigger->SetRaw(i, storage_->GetRaw(i));
  }
  // Atomic update (§4.1.6): validate + fence inside, then flip the ref.
  UpdateRefAndFreeOld(kStorageOff, bigger.get());
  storage_ = std::move(bigger);
}

void PExtArray::Append(core::PObject* value) {
  const uint64_t n = Size();
  if (n == storage_->capacity()) {
    Grow();
  }
  if (value != nullptr && !value->IsValidObject()) {
    value->Pwb();
    value->Validate();
  }
  storage_->SetRaw(n, value == nullptr ? 0 : value->addr());
  Pfence();  // element durable before it becomes counted
  WriteField<uint64_t>(kCountOff, n + 1);
  PwbField(kCountOff, sizeof(uint64_t));
}

void PExtArray::PopBack() {
  const uint64_t n = Size();
  JNVM_CHECK(n > 0);
  WriteField<uint64_t>(kCountOff, n - 1);
  PwbField(kCountOff, sizeof(uint64_t));
  Pfence();  // shrink durable before the slot is voided / reused
  storage_->SetRaw(n - 1, 0);
}

}  // namespace jnvm::pdt
