// Forces registration of every built-in persistent class.
//
// Registration is lazy (each class registers on first use). A process that
// *opens* an existing heap without constructing these types first — e.g.
// the jnvm_inspect tool — must register them before recovery runs, exactly
// as a JVM must have the classes on its classpath before resurrecting their
// instances (§3.1).
#ifndef JNVM_SRC_PDT_REGISTER_ALL_H_
#define JNVM_SRC_PDT_REGISTER_ALL_H_

#include "src/core/ref_array.h"
#include "src/core/root_map.h"
#include "src/pdt/parray.h"
#include "src/pdt/pext_array.h"
#include "src/pdt/pmap.h"
#include "src/pdt/ppair.h"
#include "src/pdt/pstring.h"

namespace jnvm::pdt {

inline void RegisterStandardClasses() {
  core::PRefArray::Class();
  core::RootMap::Class();
  core::RootEntry::Class();
  PString::Class();
  PString::SmallClass();
  PLongArray::Class();
  PByteArray::Class();
  PExtArray::Class();
  PRefPair::Class();
  PIntPair::Class();
  PStringHashMap::Class();
  PStringTreeMap::Class();
  PStringSkipListMap::Class();
  PLongHashMap::Class();
  PLongTreeMap::Class();
}

}  // namespace jnvm::pdt

#endif  // JNVM_SRC_PDT_REGISTER_ALL_H_
