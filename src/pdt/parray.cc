#include "src/pdt/parray.h"

namespace jnvm::pdt {

const core::ClassInfo* PLongArray::Class() {
  static const core::ClassInfo* info =
      RegisterClass(core::MakeClassInfo<PLongArray>("jnvm.PLongArray"));
  return info;
}

PLongArray::PLongArray(core::JnvmRuntime& rt, uint64_t length) {
  AllocatePersistent(rt, Class(), kElemsOff + length * sizeof(int64_t));
  WriteField<uint64_t>(kLenOff, length);
  PwbField(kLenOff, sizeof(uint64_t));
  // Elements were voided by the allocator; their zeroes are already queued.
}

const core::ClassInfo* PByteArray::Class() {
  static const core::ClassInfo* info =
      RegisterClass(core::MakeClassInfo<PByteArray>("jnvm.PByteArray"));
  return info;
}

PByteArray::PByteArray(core::JnvmRuntime& rt, uint64_t length) {
  AllocatePersistent(rt, Class(), kDataOff + length);
  WriteField<uint64_t>(kLenOff, length);
  PwbField(kLenOff, sizeof(uint64_t));
}

PByteArray::PByteArray(core::JnvmRuntime& rt, std::string_view content)
    : PByteArray(rt, content.size()) {
  if (!content.empty()) {
    WriteBytesField(kDataOff, content.data(), content.size());
  }
  Pwb();
}

std::string PByteArray::Str() const {
  std::string out(Length(), '\0');
  if (!out.empty()) {
    ReadBytesField(kDataOff, out.data(), out.size());
  }
  return out;
}

}  // namespace jnvm::pdt
