// PExtArray — the extensible array (§4.3.1), similar to Java's ArrayList.
//
// Durable state: {u64 count, ref storage} where storage is a PRefArray.
// Extension uses the low-level atomic update of §4.1.6: the doubled copy is
// validated and fenced before the storage reference flips, so the structure
// is never observed half-grown.
//
// Crash behaviour of Append: the element is written to its slot, fenced,
// then the count is bumped. Losing the count bump loses the append (the
// element becomes unreachable and is collected) — append is all-or-nothing.
#ifndef JNVM_SRC_PDT_PEXT_ARRAY_H_
#define JNVM_SRC_PDT_PEXT_ARRAY_H_

#include "src/core/ref_array.h"
#include "src/core/runtime.h"

namespace jnvm::pdt {

class PExtArray final : public core::PObject {
 public:
  static const core::ClassInfo* Class();

  explicit PExtArray(core::Resurrect) {}
  PExtArray(core::JnvmRuntime& rt, uint64_t initial_capacity = 8);

  void Resurrect_() override {
    storage_ = ReadPObjectAs<core::PRefArray>(kStorageOff);
    JNVM_CHECK_MSG(storage_ != nullptr, "PExtArray storage lost (torn publication)");
  }

  uint64_t Size() const { return ReadField<uint64_t>(kCountOff); }
  uint64_t Capacity() const { return storage_->capacity(); }

  core::Handle<core::PObject> Get(uint64_t i) const {
    JNVM_DCHECK(i < Size());
    return storage_->Get(i);
  }
  nvm::Offset GetRaw(uint64_t i) const { return storage_->GetRaw(i); }

  // Replaces element i (atomic update, §4.1.6).
  void Set(uint64_t i, core::PObject* value) {
    JNVM_DCHECK(i < Size());
    storage_->UpdateSlot(i, value);
  }

  // Appends an element; grows the storage when full. One fence per append.
  void Append(core::PObject* value);

  // Removes the last element (does not free the referenced object).
  void PopBack();

 private:
  static constexpr size_t kCountOff = 0;
  static constexpr size_t kStorageOff = 8;

  static void Trace(core::ObjectView& view, core::RefVisitor& v);

  void Grow();

  core::Handle<core::PRefArray> storage_;  // transient
};

}  // namespace jnvm::pdt

#endif  // JNVM_SRC_PDT_PEXT_ARRAY_H_
