#include "src/pdt/pstring.h"

namespace jnvm::pdt {

const ClassInfo* PString::Class() {
  static const ClassInfo* info =
      RegisterClass(core::MakeClassInfo<PString>("jnvm.PString"));
  return info;
}

const ClassInfo* PString::SmallClass() {
  static const ClassInfo* info = RegisterClass(core::MakeClassInfo<PString>(
      "jnvm.PString$small", /*trace=*/nullptr, /*is_pool=*/true));
  return info;
}

PString::PString(JnvmRuntime& rt, std::string_view s) {
  JNVM_CHECK(s.size() <= UINT32_MAX);
  const size_t bytes = kDataOff + s.size();
  if (bytes <= rt.pools().max_slot_bytes()) {
    AllocatePersistentPooled(rt, SmallClass(), bytes);
  } else {
    // Leaf class, fully written below: skip the payload voiding.
    AllocatePersistent(rt, Class(), bytes, /*zero=*/false);
  }
  WriteField<uint32_t>(kLenOff, static_cast<uint32_t>(s.size()));
  if (!s.empty()) {
    WriteBytesField(kDataOff, s.data(), s.size());
  }
  Pwb();
}

std::string PString::Str() const {
  const uint32_t len = Length();
  std::string out(len, '\0');
  if (len > 0) {
    ReadBytesField(kDataOff, out.data(), len);
  }
  return out;
}

bool PString::Equals(std::string_view s) const {
  if (Length() != s.size()) {
    return false;
  }
  return Str() == s;  // simple; hot paths use the mirror, not this
}

}  // namespace jnvm::pdt
