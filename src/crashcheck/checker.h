// Crash-consistency model checker over PmemDevice crash points.
//
// The strict-mode device counts every persistence event (store, pwb,
// fence). The checker turns that counter into an exhaustive search:
//
//   1. RECORD — run the scripted workload once, crash-free, noting the
//      persistence-event index at the end of setup and after every
//      operation (the op's durability boundary), plus the trace hash.
//   2. SWEEP — for every event index e in the recorded range (or a stride
//      over it) and for several eviction seeds s: re-execute the script on
//      a fresh device with a crash scheduled at e, simulate the power
//      failure with Crash(s) — the seed decides, per dirty cache line,
//      whether the line survived (evicted) or reverted to its last durable
//      content — run full recovery (JnvmRuntime::Open), and
//   3. JUDGE — ask the workload's oracle whether the recovered state is
//      one the committed/in-flight cut allows, and audit the heap's
//      integrity invariants (I1–I7).
//
// Sweeping seeds per point matters: a single seed explores only one
// survive/revert assignment of the dirty lines; different seeds flip
// different subsets, so both "publication survived" and "publication
// reverted" outcomes are exercised at every crash point.
//
// Every run is deterministic: a reported violation names (workload,
// crash_event, eviction_seed) and CheckPoint() with those values
// reproduces it exactly. Replay fidelity is enforced — a replay whose
// crash lands in a different operation than the recording predicts is
// itself reported as a violation (nondeterministic trace).
#ifndef JNVM_SRC_CRASHCHECK_CHECKER_H_
#define JNVM_SRC_CRASHCHECK_CHECKER_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/crashcheck/workloads.h"

namespace jnvm::crashcheck {

struct CheckerOptions {
  size_t device_bytes = 8 << 20;
  // Smaller log directory than the default 24×32K: formats (one per run)
  // dominate sweep time, and the single-threaded scripts need one slot.
  uint32_t log_slots = 4;
  // Crash-point stride over the recorded event range; 1 = every event.
  uint64_t stride = 1;
  // When non-zero, the stride is raised so at most this many points are
  // explored (bounded CI sweeps).
  uint64_t max_points = 0;
  // Eviction seeds swept per crash point.
  std::vector<uint64_t> eviction_seeds = {1, 7, 1337};
  // Run core::VerifyHeapIntegrity (with the FA-log audit) after recovery.
  bool audit_integrity = true;
  // Violations stored in the result (the count is always exact).
  size_t max_reported = 64;
};

struct Violation {
  std::string workload;
  uint64_t crash_event = 0;
  uint64_t eviction_seed = 0;
  std::string invariant;
};

// One line: workload, crash point, seed, invariant, and the jnvm_crashmc
// repro invocation.
std::string FormatViolation(const Violation& v);

struct SweepResult {
  std::string workload;
  uint64_t setup_events = 0;
  uint64_t total_events = 0;    // events through the last operation
  uint64_t trace_hash = 0;      // recording-pass trace digest
  uint64_t points_explored = 0;
  uint64_t runs = 0;            // points × seeds
  uint64_t violation_count = 0;
  std::vector<Violation> violations;  // first max_reported of them

  bool ok() const { return violation_count == 0; }
  std::string Summary() const;
};

class CrashChecker {
 public:
  // The factory is invoked once per checker; the same workload object is
  // re-run for every point (its script is immutable, its proxies are
  // rebuilt by Setup on each fresh heap).
  CrashChecker(std::unique_ptr<Workload> workload, CheckerOptions opts);

  // Recording-pass data (lazily computed, then cached).
  struct Recording {
    uint64_t setup_events = 0;
    std::vector<uint64_t> op_end;  // event count after each op
    uint64_t trace_hash = 0;
  };
  const Recording& recording();

  // Full sweep per the options.
  SweepResult Sweep();

  // Deterministically re-executes one (crash_event, eviction_seed) pair —
  // the repro path for a reported violation.
  std::vector<Violation> CheckPoint(uint64_t crash_event, uint64_t eviction_seed);

 private:
  std::unique_ptr<nvm::PmemDevice> FreshDevice() const;
  core::RuntimeOptions RtOptions() const;
  void RunPoint(const Recording& rec, uint64_t crash_event, uint64_t seed,
                std::vector<Violation>* out);

  std::unique_ptr<Workload> w_;
  CheckerOptions opts_;
  std::optional<Recording> rec_;
};

}  // namespace jnvm::crashcheck

#endif  // JNVM_SRC_CRASHCHECK_CHECKER_H_
