#include "src/crashcheck/checker.h"

#include <algorithm>
#include <cinttypes>

#include "src/core/integrity.h"

namespace jnvm::crashcheck {

std::string FormatViolation(const Violation& v) {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "VIOLATION workload=%s crash_event=%" PRIu64
                " eviction_seed=%" PRIu64
                " invariant=\"%s\" repro: jnvm_crashmc --workload=%s "
                "--repro=%" PRIu64 ":%" PRIu64,
                v.workload.c_str(), v.crash_event, v.eviction_seed,
                v.invariant.c_str(), v.workload.c_str(), v.crash_event,
                v.eviction_seed);
  return buf;
}

std::string SweepResult::Summary() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%s: %" PRIu64 " events (%" PRIu64 " setup), %" PRIu64
                " crash points x %zu runs each, %" PRIu64 " runs, %" PRIu64
                " violations",
                workload.c_str(), total_events, setup_events, points_explored,
                points_explored == 0 ? 0 : static_cast<size_t>(runs / points_explored),
                runs, violation_count);
  std::string out = buf;
  for (const Violation& v : violations) {
    out += "\n  " + FormatViolation(v);
  }
  return out;
}

CrashChecker::CrashChecker(std::unique_ptr<Workload> workload, CheckerOptions opts)
    : w_(std::move(workload)), opts_(std::move(opts)) {
  JNVM_CHECK(w_ != nullptr);
  JNVM_CHECK(!opts_.eviction_seeds.empty());
}

std::unique_ptr<nvm::PmemDevice> CrashChecker::FreshDevice() const {
  nvm::DeviceOptions o;
  o.size_bytes = opts_.device_bytes;
  o.strict = true;
  return std::make_unique<nvm::PmemDevice>(o);
}

core::RuntimeOptions CrashChecker::RtOptions() const {
  core::RuntimeOptions o;
  o.heap.log_slot_count = opts_.log_slots;
  return o;
}

const CrashChecker::Recording& CrashChecker::recording() {
  if (rec_.has_value()) {
    return *rec_;
  }
  auto dev = FreshDevice();
  auto rt = core::JnvmRuntime::Format(dev.get(), RtOptions());
  w_->Setup(*rt);
  Recording rec;
  rec.setup_events = dev->PersistenceEventCount();
  rec.op_end.reserve(w_->op_count());
  for (size_t i = 0; i < w_->op_count(); ++i) {
    w_->RunOp(*rt, i);
    rec.op_end.push_back(dev->PersistenceEventCount());
  }
  rec.trace_hash = dev->TraceHash();
  JNVM_CHECK_MSG(!rec.op_end.empty() && rec.op_end.back() > rec.setup_events,
                 "workload script performed no persistence events");
  rt->Abandon();  // the recording device is discarded; skip the clean close
  rec_ = std::move(rec);
  return *rec_;
}

void CrashChecker::RunPoint(const Recording& rec, uint64_t crash_event,
                            uint64_t seed, std::vector<Violation>* out) {
  JNVM_CHECK(crash_event > rec.setup_events && crash_event <= rec.op_end.back());
  auto violate = [&](const std::string& msg) {
    out->push_back(Violation{w_->name(), crash_event, seed, msg});
  };

  // The op the recording predicts the crash will interrupt: the first op
  // whose durability boundary lies at or past the crash event. Ops before
  // it completed (their boundary, i.e. their fence, retired strictly before
  // the crash event fired).
  const size_t predicted =
      std::lower_bound(rec.op_end.begin(), rec.op_end.end(), crash_event) -
      rec.op_end.begin();

  auto dev = FreshDevice();
  auto rt = core::JnvmRuntime::Format(dev.get(), RtOptions());
  w_->Setup(*rt);
  if (dev->PersistenceEventCount() != rec.setup_events) {
    violate("nondeterministic replay: setup event count " +
            std::to_string(dev->PersistenceEventCount()) + " != recorded " +
            std::to_string(rec.setup_events));
    return;
  }
  dev->ScheduleCrashAfter(crash_event - rec.setup_events - 1);
  size_t crashed_op = SIZE_MAX;
  bool crashed = false;
  try {
    for (size_t i = 0; i < w_->op_count(); ++i) {
      crashed_op = i;
      w_->RunOp(*rt, i);
    }
    dev->CancelScheduledCrash();
  } catch (const nvm::SimulatedCrash&) {
    crashed = true;
  }
  rt->Abandon();
  rt.reset();
  if (!crashed || crashed_op != predicted) {
    violate("nondeterministic replay: crash " +
            (crashed ? "landed in op " + std::to_string(crashed_op)
                     : std::string("never fired")) +
            ", recording predicts op " + std::to_string(predicted));
    return;
  }

  dev->Crash(seed);
  auto recovered = core::JnvmRuntime::Open(dev.get(), RtOptions());

  CrashCut cut;
  cut.committed = predicted;
  cut.in_flight = predicted;
  std::vector<std::string> msgs;
  w_->Check(*recovered, cut, &msgs);
  for (const std::string& m : msgs) {
    violate(m);
  }
  if (opts_.audit_integrity) {
    core::IntegrityOptions io;
    io.audit_fa_logs = true;
    const auto report = core::VerifyHeapIntegrity(*recovered, io);
    for (const std::string& m : report.violations) {
      violate("integrity: " + m);
    }
  }
}

std::vector<Violation> CrashChecker::CheckPoint(uint64_t crash_event,
                                                uint64_t eviction_seed) {
  std::vector<Violation> out;
  RunPoint(recording(), crash_event, eviction_seed, &out);
  return out;
}

SweepResult CrashChecker::Sweep() {
  const Recording& rec = recording();
  SweepResult res;
  res.workload = w_->name();
  res.setup_events = rec.setup_events;
  res.total_events = rec.op_end.back();
  res.trace_hash = rec.trace_hash;

  const uint64_t first = rec.setup_events + 1;
  const uint64_t last = rec.op_end.back();
  const uint64_t range = last - first + 1;
  uint64_t stride = std::max<uint64_t>(opts_.stride, 1);
  if (opts_.max_points != 0) {
    stride = std::max(stride, (range + opts_.max_points - 1) / opts_.max_points);
  }

  std::vector<Violation> scratch;
  for (uint64_t e = first; e <= last; e += stride) {
    ++res.points_explored;
    for (const uint64_t seed : opts_.eviction_seeds) {
      ++res.runs;
      scratch.clear();
      RunPoint(rec, e, seed, &scratch);
      res.violation_count += scratch.size();
      for (Violation& v : scratch) {
        if (res.violations.size() < opts_.max_reported) {
          res.violations.push_back(std::move(v));
        }
      }
    }
  }
  return res;
}

}  // namespace jnvm::crashcheck
