#include "src/crashcheck/workloads.h"

#include <map>
#include <set>

#include "src/ckpt/ckpt_meta.h"
#include "src/cluster/meta.h"
#include "src/cluster/slot_map.h"
#include "src/common/rand.h"
#include "src/pdt/pext_array.h"
#include "src/pdt/pmap.h"
#include "src/pdt/pstring.h"
#include "src/repl/frame.h"
#include "src/repl/repl_log.h"
#include "src/server/shard.h"
#include "src/store/jpdt_backend.h"
#include "src/store/kvstore.h"
#include "src/txn/txn.h"

namespace jnvm::crashcheck {
namespace {

using core::Handle;
using core::JnvmRuntime;
using core::PObject;

// ---- Script helpers ---------------------------------------------------------

template <typename K>
struct KeyMaker;

template <>
struct KeyMaker<std::string> {
  static std::string Make(int i) { return "k" + std::to_string(i); }
  static std::string Print(const std::string& k) { return k; }
};

template <>
struct KeyMaker<int64_t> {
  static int64_t Make(int i) { return 1000 + i; }
  static std::string Print(int64_t k) { return std::to_string(k); }
};

// Unique per-op values so a lost or stale update is always distinguishable.
// Padded values exceed the pool slot limit and take the chained-block
// representation, so both PString layouts are swept.
std::string ValueFor(size_t i, bool padded) {
  std::string v = "v" + std::to_string(i);
  if (padded) {
    v += std::string(220, 'x');
  }
  return v;
}

std::string PrintString(const Handle<PObject>& v) {
  auto s = std::static_pointer_cast<pdt::PString>(v);
  return s == nullptr ? std::string("<null>") : s->Str();
}

// ---- Map workload (hash / tree / skip-list / long-key adapters) -------------

template <typename MapT>
class MapWorkload final : public Workload {
 public:
  using VKey = typename MapT::VKey;
  struct Op {
    bool remove = false;
    VKey key;
    std::string value;
  };

  MapWorkload(std::string name, uint64_t seed, size_t n) : name_(std::move(name)) {
    Xorshift rng(seed);
    std::set<VKey> live;
    script_.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      const VKey key = KeyMaker<VKey>::Make(static_cast<int>(rng.NextBelow(12)));
      if (live.count(key) != 0 && rng.NextBelow(4) == 0) {
        script_.push_back(Op{true, key, {}});
        live.erase(key);
      } else {
        script_.push_back(Op{false, key, ValueFor(i, rng.NextBelow(6) == 0)});
        live.insert(key);
      }
    }
  }

  const std::string& name() const override { return name_; }
  size_t op_count() const override { return script_.size(); }

  void Setup(JnvmRuntime& rt) override {
    map_.reset();
    map_ = std::make_shared<MapT>(rt, 4);  // small: the growth path is swept
    map_->Pwb();
    map_->Validate();
    rt.root().Put("m", map_.get());
    rt.Psync();
  }

  void RunOp(JnvmRuntime& rt, size_t i) override {
    const Op& op = script_[i];
    if (op.remove) {
      map_->Remove(op.key);
    } else {
      pdt::PString v(rt, op.value);
      map_->Put(op.key, &v);
    }
  }

  void Check(JnvmRuntime& rt, const CrashCut& cut,
             std::vector<std::string>* out) override {
    auto m = rt.root().GetAs<MapT>("m");
    if (m == nullptr) {
      out->push_back("map root binding lost");
      return;
    }
    // Oracle state: the committed prefix, replayed in DRAM.
    std::map<VKey, std::string> expected;
    for (size_t i = 0; i < cut.committed; ++i) {
      const Op& op = script_[i];
      if (op.remove) {
        expected.erase(op.key);
      } else {
        expected[op.key] = op.value;
      }
    }
    // The application view (mirror) ...
    std::map<VKey, std::string> got;
    m->ForEach([&](const VKey& k, Handle<PObject> v) { got[k] = PrintString(v); });
    // ... must agree with the durable cells.
    std::map<VKey, std::string> durable;
    m->ForEachPersisted(
        [&](const VKey& k, Handle<PObject> v) { durable[k] = PrintString(v); });
    if (durable != got) {
      out->push_back("mirror diverges from the persistent cells");
    }
    if (m->Size() != got.size()) {
      out->push_back("map Size() != number of mirrored entries");
    }

    const Op* inflight = cut.in_flight.has_value() && *cut.in_flight < script_.size()
                             ? &script_[*cut.in_flight]
                             : nullptr;
    for (const auto& [k, v] : expected) {
      if (inflight != nullptr && k == inflight->key) {
        continue;  // judged below
      }
      auto it = got.find(k);
      if (it == got.end()) {
        out->push_back("committed key " + KeyMaker<VKey>::Print(k) + " lost");
      } else if (it->second != v) {
        out->push_back("committed key " + KeyMaker<VKey>::Print(k) +
                       " has value '" + it->second + "', want '" + v + "'");
      }
    }
    for (const auto& [k, v] : got) {
      if (expected.count(k) == 0 && (inflight == nullptr || k != inflight->key)) {
        out->push_back("phantom key " + KeyMaker<VKey>::Print(k));
      }
    }
    if (inflight != nullptr) {
      // The interrupted op must be all-or-nothing.
      const auto it = got.find(inflight->key);
      const auto old_it = expected.find(inflight->key);
      if (it == got.end()) {
        if (!inflight->remove && old_it != expected.end()) {
          out->push_back("in-flight put erased pre-existing key " +
                         KeyMaker<VKey>::Print(inflight->key));
        }
      } else {
        const bool is_old = old_it != expected.end() && it->second == old_it->second;
        const bool is_new = !inflight->remove && it->second == inflight->value;
        if (!is_old && !is_new) {
          out->push_back("in-flight op left torn value '" + it->second +
                         "' for key " + KeyMaker<VKey>::Print(inflight->key));
        }
      }
    }
  }

 private:
  std::string name_;
  std::vector<Op> script_;
  Handle<MapT> map_;
};

// ---- Set workload (PSet adapter over the hash map) --------------------------

class SetWorkload final : public Workload {
 public:
  struct Op {
    bool remove = false;
    std::string key;
  };

  SetWorkload(uint64_t seed, size_t n) : name_("set") {
    Xorshift rng(seed);
    std::set<std::string> live;
    script_.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      const std::string key = "e" + std::to_string(rng.NextBelow(14));
      if (live.count(key) != 0 && rng.NextBelow(3) == 0) {
        script_.push_back(Op{true, key});
        live.erase(key);
      } else {
        script_.push_back(Op{false, key});
        live.insert(key);
      }
    }
  }

  const std::string& name() const override { return name_; }
  size_t op_count() const override { return script_.size(); }

  void Setup(JnvmRuntime& rt) override {
    set_.reset();
    auto storage = std::make_shared<pdt::PStringHashMap>(rt, 4);
    storage->Pwb();
    storage->Validate();
    rt.root().Put("s", storage.get());
    rt.Psync();
    set_ = std::make_unique<pdt::PStringHashSet>(std::move(storage));
  }

  void RunOp(JnvmRuntime& rt, size_t i) override {
    const Op& op = script_[i];
    if (op.remove) {
      set_->Remove(op.key);
    } else {
      set_->Add(op.key);
    }
  }

  void Check(JnvmRuntime& rt, const CrashCut& cut,
             std::vector<std::string>* out) override {
    auto storage = rt.root().GetAs<pdt::PStringHashMap>("s");
    if (storage == nullptr) {
      out->push_back("set root binding lost");
      return;
    }
    pdt::PStringHashSet set(storage);
    std::set<std::string> expected;
    for (size_t i = 0; i < cut.committed; ++i) {
      const Op& op = script_[i];
      if (op.remove) {
        expected.erase(op.key);
      } else {
        expected.insert(op.key);
      }
    }
    std::set<std::string> got;
    set.ForEach([&](const std::string& k) { got.insert(k); });

    const Op* inflight = cut.in_flight.has_value() && *cut.in_flight < script_.size()
                             ? &script_[*cut.in_flight]
                             : nullptr;
    for (const std::string& k : expected) {
      if (inflight != nullptr && k == inflight->key) {
        continue;
      }
      if (got.count(k) == 0) {
        out->push_back("committed set element " + k + " lost");
      }
      if (!set.Contains(k)) {
        out->push_back("Contains() denies committed element " + k);
      }
    }
    for (const std::string& k : got) {
      if (expected.count(k) == 0 && (inflight == nullptr || k != inflight->key)) {
        out->push_back("phantom set element " + k);
      }
    }
    // In-flight add/remove: present-or-absent are both fine; nothing to do.
  }

 private:
  std::string name_;
  std::vector<Op> script_;
  std::unique_ptr<pdt::PStringHashSet> set_;
};

// ---- Extensible-array workload ----------------------------------------------

class ArrayWorkload final : public Workload {
 public:
  struct Op {
    bool pop = false;
    std::string value;
  };

  ArrayWorkload(uint64_t seed, size_t n) : name_("array") {
    Xorshift rng(seed);
    size_t size = 0;
    script_.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      if (size > 0 && rng.NextBelow(4) == 0) {
        script_.push_back(Op{true, {}});
        --size;
      } else {
        script_.push_back(Op{false, ValueFor(i, rng.NextBelow(8) == 0)});
        ++size;
      }
    }
  }

  const std::string& name() const override { return name_; }
  size_t op_count() const override { return script_.size(); }

  void Setup(JnvmRuntime& rt) override {
    arr_.reset();
    arr_ = std::make_shared<pdt::PExtArray>(rt, 2);  // grows repeatedly
    arr_->Pwb();
    arr_->Validate();
    rt.root().Put("arr", arr_.get());
    rt.Psync();
  }

  void RunOp(JnvmRuntime& rt, size_t i) override {
    const Op& op = script_[i];
    if (op.pop) {
      arr_->PopBack();
    } else {
      pdt::PString s(rt, op.value);
      arr_->Append(&s);
    }
  }

  void Check(JnvmRuntime& rt, const CrashCut& cut,
             std::vector<std::string>* out) override {
    auto arr = rt.root().GetAs<pdt::PExtArray>("arr");
    if (arr == nullptr) {
      out->push_back("array root binding lost");
      return;
    }
    const uint64_t n = arr->Size();
    std::vector<std::string> got;
    got.reserve(n);
    for (uint64_t i = 0; i < n; ++i) {
      const auto s = std::static_pointer_cast<pdt::PString>(arr->Get(i));
      if (s == nullptr) {
        out->push_back("torn element: index " + std::to_string(i) +
                       " below Size() is null");
        return;
      }
      got.push_back(s->Str());
    }
    // Append's count bump is queued but only the *next* op's fence seals it
    // (§4.3.1: losing the bump loses the append), so the recovered array may
    // trail the committed cut by one op — or lead it by one if the in-flight
    // op landed. Accept the state after j ops for j in [committed-1,
    // committed+1]; anything else is a violation.
    const size_t lo = cut.committed == 0 ? 0 : cut.committed - 1;
    const size_t hi = std::min(script_.size(), cut.committed + 1);
    for (size_t j = lo; j <= hi; ++j) {
      if (StateAfter(j) == got) {
        return;
      }
    }
    out->push_back("array state (size " + std::to_string(got.size()) +
                   ") matches no op prefix in [" + std::to_string(lo) + ", " +
                   std::to_string(hi) + "] (committed " +
                   std::to_string(cut.committed) + ")");
  }

 private:
  std::vector<std::string> StateAfter(size_t j) const {
    std::vector<std::string> st;
    for (size_t i = 0; i < j; ++i) {
      if (script_[i].pop) {
        st.pop_back();
      } else {
        st.push_back(script_[i].value);
      }
    }
    return st;
  }

  std::string name_;
  std::vector<Op> script_;
  Handle<pdt::PExtArray> arr_;
};

// ---- Root-map + PString workload --------------------------------------------
//
// Publishes pool-sized and chained strings under a rotating set of root
// bindings. RootMap::Put/Remove are failure-atomic, so every committed op
// is durable and the in-flight op is all-or-nothing.

class RootStringWorkload final : public Workload {
 public:
  struct Op {
    bool remove = false;
    std::string key;
    std::string value;
  };

  RootStringWorkload(std::string name, uint64_t seed, size_t n, bool faulty)
      : name_(std::move(name)), faulty_(faulty) {
    Xorshift rng(seed);
    std::set<std::string> live;
    script_.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      // The faulty variant uses per-op keys: every op takes the insert
      // path, which never fences — that is the planted bug.
      const std::string key = faulty_ ? "f" + std::to_string(i)
                                      : "s" + std::to_string(rng.NextBelow(6));
      if (!faulty_ && live.count(key) != 0 && rng.NextBelow(5) == 0) {
        script_.push_back(Op{true, key, {}});
        live.erase(key);
      } else {
        script_.push_back(Op{false, key, "w" + ValueFor(i, rng.NextBelow(3) == 0)});
        live.insert(key);
      }
    }
  }

  const std::string& name() const override { return name_; }
  size_t op_count() const override { return script_.size(); }

  void Setup(JnvmRuntime& rt) override { rt.Psync(); }

  void RunOp(JnvmRuntime& rt, size_t i) override {
    const Op& op = script_[i];
    if (op.remove) {
      rt.root().Remove(op.key);
      return;
    }
    pdt::PString v(rt, op.value);
    if (faulty_) {
      v.Pwb();
      v.Validate();
      rt.root().Wput(op.key, &v);  // planted bug: no publication fence
    } else {
      rt.root().Put(op.key, &v);
    }
  }

  void Check(JnvmRuntime& rt, const CrashCut& cut,
             std::vector<std::string>* out) override {
    std::map<std::string, std::string> expected;
    for (size_t i = 0; i < cut.committed; ++i) {
      const Op& op = script_[i];
      if (op.remove) {
        expected.erase(op.key);
      } else {
        expected[op.key] = op.value;
      }
    }
    const Op* inflight = cut.in_flight.has_value() && *cut.in_flight < script_.size()
                             ? &script_[*cut.in_flight]
                             : nullptr;
    const std::string prefix = faulty_ ? "f" : "s";
    std::map<std::string, std::string> got;
    for (const std::string& k : rt.root().Keys()) {
      if (k.rfind(prefix, 0) != 0) {
        continue;
      }
      got[k] = PrintString(rt.root().Get(k));
    }
    for (const auto& [k, v] : expected) {
      if (inflight != nullptr && k == inflight->key) {
        continue;
      }
      auto it = got.find(k);
      if (it == got.end()) {
        out->push_back("committed root binding " + k + " lost");
      } else if (it->second != v) {
        out->push_back("committed root binding " + k + " has value '" +
                       it->second + "', want '" + v + "'");
      }
    }
    for (const auto& [k, v] : got) {
      if (expected.count(k) == 0 && (inflight == nullptr || k != inflight->key)) {
        out->push_back("phantom root binding " + k);
      }
    }
    if (inflight != nullptr) {
      const auto it = got.find(inflight->key);
      const auto old_it = expected.find(inflight->key);
      if (it == got.end()) {
        if (!inflight->remove && old_it != expected.end()) {
          out->push_back("in-flight root put erased binding " + inflight->key);
        }
      } else {
        const bool is_old = old_it != expected.end() && it->second == old_it->second;
        const bool is_new = !inflight->remove && it->second == inflight->value;
        if (!is_old && !is_new) {
          out->push_back("in-flight root op left torn value '" + it->second +
                         "' for binding " + inflight->key);
        }
      }
    }
  }

 private:
  std::string name_;
  bool faulty_;
  std::vector<Op> script_;
};

// ---- J-PFA workload ----------------------------------------------------------
//
// Multi-object transfers inside failure-atomic blocks. The oracle checks the
// §4.2 guarantee: the recovered balances equal the committed-prefix state
// with the in-flight block either fully applied or fully absent, and the
// total is conserved unconditionally.

class CrashAccount final : public PObject {
 public:
  static const core::ClassInfo* Class() {
    static const core::ClassInfo* info =
        core::RegisterClass(core::MakeClassInfo<CrashAccount>("crashcheck.Account"));
    return info;
  }

  explicit CrashAccount(core::Resurrect) {}
  CrashAccount(JnvmRuntime& rt, int64_t balance) {
    AllocatePersistent(rt, Class(), 8);
    SetBalance(balance);
  }

  int64_t Balance() const { return ReadField<int64_t>(0); }
  void SetBalance(int64_t v) { WriteField<int64_t>(0, v); }
};

class PfaWorkload final : public Workload {
 public:
  static constexpr int kAccounts = 6;
  static constexpr int64_t kInitial = 1000;

  struct Transfer {
    int from = 0;
    int to = 0;
    int64_t amount = 0;
  };
  struct Op {
    std::vector<Transfer> transfers;  // applied in one outer FA block
    bool nested = false;              // second transfer runs in a nested block
  };

  PfaWorkload(uint64_t seed, size_t n) : name_("pfa") {
    Xorshift rng(seed);
    script_.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      Op op;
      op.transfers.push_back(RandomTransfer(rng));
      if (rng.NextBelow(4) == 0) {
        op.transfers.push_back(RandomTransfer(rng));
        op.nested = rng.NextBelow(2) == 0;
      }
      script_.push_back(std::move(op));
    }
  }

  const std::string& name() const override { return name_; }
  size_t op_count() const override { return script_.size(); }

  void Setup(JnvmRuntime& rt) override {
    accounts_.clear();
    for (int j = 0; j < kAccounts; ++j) {
      auto a = std::make_shared<CrashAccount>(rt, kInitial);
      rt.root().Put("a" + std::to_string(j), a.get());
      accounts_.push_back(std::move(a));
    }
    rt.Psync();
  }

  void RunOp(JnvmRuntime& rt, size_t i) override {
    const Op& op = script_[i];
    rt.FaStart();
    Apply(op.transfers[0]);
    if (op.transfers.size() > 1) {
      if (op.nested) {
        rt.FaStart();
        Apply(op.transfers[1]);
        rt.FaEnd();  // inner end: must not commit (§4.2 nesting)
      } else {
        Apply(op.transfers[1]);
      }
    }
    rt.FaEnd();
  }

  void Check(JnvmRuntime& rt, const CrashCut& cut,
             std::vector<std::string>* out) override {
    std::vector<int64_t> got;
    for (int j = 0; j < kAccounts; ++j) {
      auto a = rt.root().GetAs<CrashAccount>("a" + std::to_string(j));
      if (a == nullptr) {
        out->push_back("account binding a" + std::to_string(j) + " lost");
        return;
      }
      got.push_back(a->Balance());
    }
    int64_t sum = 0;
    for (const int64_t b : got) {
      sum += b;
    }
    if (sum != kAccounts * kInitial) {
      out->push_back("total balance " + std::to_string(sum) + " != " +
                     std::to_string(kAccounts * kInitial) +
                     " — an FA block applied partially");
    }
    const std::vector<int64_t> before = StateAfter(cut.committed);
    if (got == before) {
      return;
    }
    if (cut.in_flight.has_value() && *cut.in_flight < script_.size() &&
        got == StateAfter(*cut.in_flight + 1)) {
      return;  // the in-flight block committed just before the crash
    }
    std::string msg = "balances [";
    for (size_t j = 0; j < got.size(); ++j) {
      msg += (j == 0 ? "" : ",") + std::to_string(got[j]);
    }
    out->push_back(msg + "] match neither the pre- nor post-in-flight state (committed " +
                   std::to_string(cut.committed) + ")");
  }

 private:
  static Transfer RandomTransfer(Xorshift& rng) {
    Transfer t;
    t.from = static_cast<int>(rng.NextBelow(kAccounts));
    t.to = static_cast<int>(rng.NextBelow(kAccounts - 1));
    if (t.to >= t.from) {
      ++t.to;
    }
    t.amount = 1 + static_cast<int64_t>(rng.NextBelow(50));
    return t;
  }

  void Apply(const Transfer& t) {
    accounts_[t.from]->SetBalance(accounts_[t.from]->Balance() - t.amount);
    accounts_[t.to]->SetBalance(accounts_[t.to]->Balance() + t.amount);
  }

  std::vector<int64_t> StateAfter(size_t j) const {
    std::vector<int64_t> st(kAccounts, kInitial);
    for (size_t i = 0; i < j && i < script_.size(); ++i) {
      for (const Transfer& t : script_[i].transfers) {
        st[t.from] -= t.amount;
        st[t.to] += t.amount;
      }
    }
    return st;
  }

  std::string name_;
  std::vector<Op> script_;
  std::vector<Handle<CrashAccount>> accounts_;
};

// ---- Server workload ---------------------------------------------------------
//
// Models the network server's fence-batching path (src/server): commands are
// routed to per-shard J-PDT stores by server::ShardFor, executed in groups
// under Heap::BeginGroupCommit (durability fences elided), sealed by one
// Psync, and only then are the batch's deferred frees drained — exactly the
// Shard::WorkerLoop sequence. One checker "op" is one whole batch.
//
// Oracle (group-commit contract): every sealed batch is fully visible; each
// command of the in-flight batch is independently old-or-new (its elided
// durability fence means it may not have survived, but the retained
// ordering fences forbid torn values); nothing else may differ. Keys are
// distinct within a batch so "old-or-new" is well defined per key.

class ServerWorkload final : public Workload {
 public:
  static constexpr uint32_t kShards = 4;
  static constexpr uint32_t kBatch = 4;

  struct Cmd {
    bool remove = false;
    std::string key;
    std::string value;
  };

  ServerWorkload(uint64_t seed, size_t n) : name_("server") {
    Xorshift rng(seed);
    std::set<std::string> live;
    script_.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      std::vector<Cmd> batch;
      std::set<std::string> used;  // keys distinct within a batch
      for (uint32_t j = 0; j < kBatch; ++j) {
        std::string key;
        do {
          key = "k" + std::to_string(rng.NextBelow(12));
        } while (used.count(key) != 0);
        used.insert(key);
        if (live.count(key) != 0 && rng.NextBelow(4) == 0) {
          batch.push_back(Cmd{true, key, {}});
          live.erase(key);
        } else {
          batch.push_back(
              Cmd{false, key, ValueFor(i * kBatch + j, rng.NextBelow(6) == 0)});
          live.insert(key);
        }
      }
      script_.push_back(std::move(batch));
    }
  }

  const std::string& name() const override { return name_; }
  size_t op_count() const override { return script_.size(); }

  void Setup(JnvmRuntime& rt) override {
    shards_.clear();
    for (uint32_t s = 0; s < kShards; ++s) {
      shards_.push_back(std::make_unique<store::JpdtBackend>(
          &rt, RootName(s), /*initial_capacity=*/4));
    }
    rt.Psync();
  }

  void RunOp(JnvmRuntime& rt, size_t i) override {
    rt.heap().BeginGroupCommit();
    for (const Cmd& c : script_[i]) {
      store::Backend* b = shards_[server::ShardFor(c.key, kShards)].get();
      if (c.remove) {
        b->Delete(c.key);
      } else {
        store::Record r;
        r.fields.push_back(c.value);
        b->Put(c.key, r);
      }
    }
    rt.heap().EndGroupCommit();
    rt.Psync();  // the batch's single durability point
    rt.DrainGroupFrees();
  }

  void Check(JnvmRuntime& rt, const CrashCut& cut,
             std::vector<std::string>* out) override {
    // Oracle state: the sealed batches, replayed in DRAM.
    std::map<std::string, std::string> expected;
    for (size_t i = 0; i < cut.committed; ++i) {
      for (const Cmd& c : script_[i]) {
        if (c.remove) {
          expected.erase(c.key);
        } else {
          expected[c.key] = c.value;
        }
      }
    }
    const std::vector<Cmd>* inflight =
        cut.in_flight.has_value() && *cut.in_flight < script_.size()
            ? &script_[*cut.in_flight]
            : nullptr;

    std::map<std::string, std::string> got;
    for (uint32_t s = 0; s < kShards; ++s) {
      auto map = rt.root().GetAs<pdt::PStringHashMap>(RootName(s));
      if (map == nullptr) {
        out->push_back("shard root binding " + RootName(s) + " lost");
        return;
      }
      map->ForEach([&](const std::string& k, Handle<PObject> v) {
        auto rec = std::static_pointer_cast<store::PRecord>(v);
        const store::Record r = rec->ToRecord();
        got[k] = r.fields.empty() ? std::string("<empty>") : r.fields[0];
        if (server::ShardFor(k, kShards) != s) {
          out->push_back("key " + k + " found on shard " + std::to_string(s) +
                         ", routed to " +
                         std::to_string(server::ShardFor(k, kShards)));
        }
      });
    }

    auto inflight_cmd = [&](const std::string& k) -> const Cmd* {
      if (inflight == nullptr) {
        return nullptr;
      }
      for (const Cmd& c : *inflight) {
        if (c.key == k) {
          return &c;
        }
      }
      return nullptr;
    };

    for (const auto& [k, v] : expected) {
      const Cmd* c = inflight_cmd(k);
      if (c != nullptr) {
        continue;  // judged below
      }
      auto it = got.find(k);
      if (it == got.end()) {
        out->push_back("sealed-batch key " + k + " lost");
      } else if (it->second != v) {
        out->push_back("sealed-batch key " + k + " has value '" + it->second +
                       "', want '" + v + "'");
      }
    }
    for (const auto& [k, v] : got) {
      if (expected.count(k) == 0 && inflight_cmd(k) == nullptr) {
        out->push_back("phantom key " + k);
      }
    }
    if (inflight != nullptr) {
      // Each in-flight command independently old-or-new, never torn.
      for (const Cmd& c : *inflight) {
        const auto it = got.find(c.key);
        const auto old_it = expected.find(c.key);
        if (it == got.end()) {
          if (!c.remove && old_it != expected.end()) {
            out->push_back("in-flight batch erased pre-existing key " + c.key);
          }
          continue;  // absent: old-absent, removed, or unsurvived put
        }
        const bool is_old = old_it != expected.end() && it->second == old_it->second;
        const bool is_new = !c.remove && it->second == c.value;
        if (!is_old && !is_new) {
          out->push_back("in-flight batch left torn value '" + it->second +
                         "' for key " + c.key);
        }
      }
    }
  }

 private:
  static std::string RootName(uint32_t s) {
    return "shard" + std::to_string(s);
  }

  std::string name_;
  std::vector<std::vector<Cmd>> script_;
  std::vector<std::unique_ptr<store::JpdtBackend>> shards_;
};

// ---- Replication workloads (DESIGN.md §8) ------------------------------------
//
// "repl" models the *primary* produce path: each checker op is one
// group-commit batch that mutates per-shard J-PDT stores AND appends the
// batch's replication record to each touched shard's durable ReplLog —
// store, log and (in the real server) client replies all sealed by the
// batch's one Psync, exactly Shard::WorkerLoop. Tiny segments force the
// ring through rollover, truncation and the oversized-record path.
//
// Oracle: per shard, the recovered log retains sealed_s records with
// sealed_s ∈ {c_s, c_s + 1} — c_s sealed batches, plus possibly the
// in-flight batch's record when its lines happened to survive; every
// retained record must byte-match the script's frame. After the redo tail
// (Shard::Open re-applies the last retained record) the store must equal
// the replay of exactly sealed_s batches, with the usual old-or-new
// allowance for keys of an *unsealed* in-flight batch.

class ReplWorkload final : public Workload {
 public:
  static constexpr uint32_t kShards = 2;
  static constexpr uint32_t kBatch = 3;

  struct Cmd {
    bool remove = false;
    std::string key;
    std::string value;
  };

  ReplWorkload(uint64_t seed, size_t n) : name_("repl") {
    Xorshift rng(seed);
    std::set<std::string> live;
    script_.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      std::vector<Cmd> batch;
      std::set<std::string> used;
      for (uint32_t j = 0; j < kBatch; ++j) {
        std::string key;
        do {
          key = "k" + std::to_string(rng.NextBelow(10));
        } while (used.count(key) != 0);
        used.insert(key);
        if (live.count(key) != 0 && rng.NextBelow(4) == 0) {
          batch.push_back(Cmd{true, key, {}});
          live.erase(key);
        } else {
          batch.push_back(
              Cmd{false, key, ValueFor(i * kBatch + j, rng.NextBelow(6) == 0)});
          live.insert(key);
        }
      }
      script_.push_back(std::move(batch));
    }
    // Pre-encode each batch's per-shard replication frame; `touches_[s]` is
    // the list of batch indices whose frame lands on shard s — entry m of it
    // is the batch sealed as shard-s record m+1.
    for (uint32_t s = 0; s < kShards; ++s) {
      touches_[s].clear();
      frames_[s].clear();
    }
    for (size_t i = 0; i < script_.size(); ++i) {
      std::vector<repl::ReplOp> rops[kShards];
      for (const Cmd& c : script_[i]) {
        repl::ReplOp op;
        op.kind = c.remove ? repl::ReplOp::Kind::kDel : repl::ReplOp::Kind::kPut;
        op.key = c.key;
        if (!c.remove) {
          op.record.fields.push_back(c.value);
        }
        rops[server::ShardFor(c.key, kShards)].push_back(std::move(op));
      }
      for (uint32_t s = 0; s < kShards; ++s) {
        if (!rops[s].empty()) {
          touches_[s].push_back(i);
          std::string f;
          repl::EncodeBatch(rops[s], &f);
          frames_[s].push_back(std::move(f));
        }
      }
    }
  }

  const std::string& name() const override { return name_; }
  size_t op_count() const override { return script_.size(); }

  void Setup(JnvmRuntime& rt) override {
    shards_.clear();
    logs_.clear();
    for (uint32_t s = 0; s < kShards; ++s) {
      shards_.push_back(std::make_unique<store::JpdtBackend>(
          &rt, StoreRoot(s), /*initial_capacity=*/4));
      logs_.push_back(repl::ReplLog::OpenOrCreate(&rt, LogRoot(s), TinyLog()));
    }
    rt.Psync();
  }

  void RunOp(JnvmRuntime& rt, size_t i) override {
    rt.heap().BeginGroupCommit();
    bool touched[kShards] = {};
    for (const Cmd& c : script_[i]) {
      const uint32_t s = server::ShardFor(c.key, kShards);
      touched[s] = true;
      if (c.remove) {
        shards_[s]->Delete(c.key);
      } else {
        store::Record r;
        r.fields.push_back(c.value);
        shards_[s]->Put(c.key, r);
      }
    }
    for (uint32_t s = 0; s < kShards; ++s) {
      if (touched[s]) {
        const size_t rec = logs_[s]->next_seq() - 1;  // 0-based record index
        logs_[s]->Append(logs_[s]->next_seq(), frames_[s][rec]);
      }
    }
    rt.heap().EndGroupCommit();
    rt.Psync();  // seals the store mutations and the log records together
    rt.DrainGroupFrees();
  }

  void Check(JnvmRuntime& rt, const CrashCut& cut,
             std::vector<std::string>* out) override {
    const std::vector<Cmd>* inflight =
        cut.in_flight.has_value() && *cut.in_flight < script_.size()
            ? &script_[*cut.in_flight]
            : nullptr;

    for (uint32_t s = 0; s < kShards; ++s) {
      auto log = repl::ReplLog::OpenOrCreate(&rt, LogRoot(s), TinyLog());
      if (log->needs_snapshot()) {
        out->push_back("shard " + std::to_string(s) +
                       " log reports needs_snapshot on a primary");
        continue;
      }
      // Sealed boundary: c_s committed records, +1 only if the in-flight
      // batch touched this shard and its record's lines survived.
      const uint64_t c_s = CountTouches(s, cut.committed);
      const bool inflight_touches =
          inflight != nullptr && CountTouches(s, *cut.in_flight + 1) > c_s;
      const uint64_t sealed = log->next_seq() - 1;
      if (sealed != c_s && !(inflight_touches && sealed == c_s + 1)) {
        out->push_back("shard " + std::to_string(s) + " log retains " +
                       std::to_string(sealed) + " records, want " +
                       std::to_string(c_s) +
                       (inflight_touches ? " or +1" : ""));
        continue;
      }
      // Every retained record must byte-match the script's frame.
      std::string payload;
      for (uint64_t q = log->start_seq(); q < log->next_seq(); ++q) {
        if (!log->Read(q, &payload)) {
          out->push_back("shard " + std::to_string(s) + " record " +
                         std::to_string(q) + " unreadable");
        } else if (payload != frames_[s][q - 1]) {
          out->push_back("shard " + std::to_string(s) + " record " +
                         std::to_string(q) + " does not match the script");
        }
      }
      // Redo tail (Shard::Open): re-apply the last retained record so the
      // store lands exactly on the sealed boundary.
      auto backend = std::make_unique<store::JpdtBackend>(&rt, StoreRoot(s),
                                                          /*initial_capacity=*/4);
      if (!log->empty() && log->Read(log->next_seq() - 1, &payload)) {
        std::vector<repl::ReplOp> rops;
        if (!repl::DecodeBatch(payload, &rops)) {
          out->push_back("shard " + std::to_string(s) + " tail record corrupt");
        } else {
          ApplyOps(*backend, rops);
        }
      }

      // Store oracle for this shard's keys.
      std::map<std::string, std::string> expected;
      for (uint64_t m = 0; m < sealed; ++m) {
        for (const Cmd& c : script_[touches_[s][m]]) {
          if (server::ShardFor(c.key, kShards) != s) {
            continue;
          }
          if (c.remove) {
            expected.erase(c.key);
          } else {
            expected[c.key] = c.value;
          }
        }
      }
      // Keys of an *unsealed* in-flight batch are individually old-or-new;
      // a sealed in-flight record was forced by the redo above.
      const bool inflight_unsealed = inflight_touches && sealed == c_s;

      std::map<std::string, std::string> got;
      backend->SnapshotRecords([&](const std::string& k, const store::Record& r) {
        got[k] = r.fields.empty() ? std::string("<empty>") : r.fields[0];
      });

      auto inflight_cmd = [&](const std::string& k) -> const Cmd* {
        if (!inflight_unsealed) {
          return nullptr;
        }
        for (const Cmd& c : *inflight) {
          if (c.key == k && server::ShardFor(c.key, kShards) == s) {
            return &c;
          }
        }
        return nullptr;
      };
      for (const auto& [k, v] : expected) {
        if (inflight_cmd(k) != nullptr) {
          continue;
        }
        const auto it = got.find(k);
        if (it == got.end()) {
          out->push_back("shard " + std::to_string(s) + " sealed key " + k +
                         " lost");
        } else if (it->second != v) {
          out->push_back("shard " + std::to_string(s) + " sealed key " + k +
                         " has '" + it->second + "', want '" + v + "'");
        }
      }
      for (const auto& [k, v] : got) {
        if (expected.count(k) == 0 && inflight_cmd(k) == nullptr) {
          out->push_back("shard " + std::to_string(s) + " phantom key " + k);
        }
      }
      if (inflight_unsealed) {
        for (const Cmd& c : *inflight) {
          if (server::ShardFor(c.key, kShards) != s) {
            continue;
          }
          const auto it = got.find(c.key);
          const auto old_it = expected.find(c.key);
          if (it == got.end()) {
            if (!c.remove && old_it != expected.end()) {
              out->push_back("in-flight batch erased pre-existing key " + c.key);
            }
            continue;
          }
          const bool is_old =
              old_it != expected.end() && it->second == old_it->second;
          const bool is_new = !c.remove && it->second == c.value;
          if (!is_old && !is_new) {
            out->push_back("in-flight batch left torn value '" + it->second +
                           "' for key " + c.key);
          }
        }
      }
    }
    rt.Psync();  // leave the heap quiescent for the checker's I1–I7 audit
  }

 private:
  static repl::ReplLogOptions TinyLog() {
    repl::ReplLogOptions o;
    o.segment_bytes = 256;  // forces rollover, truncation and oversized records
    o.max_segments = 3;
    return o;
  }
  static std::string StoreRoot(uint32_t s) { return "shard" + std::to_string(s); }
  static std::string LogRoot(uint32_t s) { return "repl" + std::to_string(s); }

  uint64_t CountTouches(uint32_t s, size_t batches) const {
    uint64_t n = 0;
    for (const size_t b : touches_[s]) {
      n += b < batches ? 1 : 0;
    }
    return n;
  }

  static void ApplyOps(store::Backend& b, const std::vector<repl::ReplOp>& rops) {
    for (const repl::ReplOp& op : rops) {
      switch (op.kind) {
        case repl::ReplOp::Kind::kPut:
          b.Put(op.key, op.record);
          break;
        case repl::ReplOp::Kind::kDel:
          b.Delete(op.key);
          break;
        case repl::ReplOp::Kind::kUpdate:
          b.UpdateField(op.key, op.field, op.value);
          break;
        default:
          break;  // repl scripts carry no txn ops
      }
    }
  }

  std::string name_;
  std::vector<std::vector<Cmd>> script_;
  std::vector<size_t> touches_[kShards];
  std::vector<std::string> frames_[kShards];
  std::vector<std::unique_ptr<store::JpdtBackend>> shards_;
  std::vector<std::unique_ptr<repl::ReplLog>> logs_;
};

// ---- Checkpoint workload (DESIGN.md §11) ------------------------------------
//
// "ckpt" models the fuzzy-checkpoint + truncation plane: write batches (the
// "repl" produce path, one shard) interleave with checkpoint ops that run
// the finalize sequence of Shard::ExecuteCkpt — Psync (store effects
// durable) → CkptMeta::Publish(begin = next_seq) → Pfence → TruncateBelow —
// inside a group-commit batch, so the checker's sweep crashes at every
// persistence event of the walk accounting, the meta publication and the
// segment unlink/free chain.
//
// Oracle: recovery from (image, tail) must equal full-log replay. The store
// image already holds every sealed batch's effects (that is what the
// pre-publish Psync certifies), so replaying only [replay_from, next) —
// replay_from = min(max(meta.begin, log.start), log.next), exactly
// Shard::Open — must land on the same state as replaying the whole script's
// sealed prefix. A checkpoint that published `begin` before the store
// effects below it were durable shows up as a lost sealed key. Meta fields
// are 8-byte stores: a crash inside Publish exposes per-field old-or-new
// (any mix is safe — recovery reads only BeginSeq, and both bounds are
// valid), so exact-match assertions apply only when the in-flight op is not
// a checkpoint.

class CkptWorkload final : public Workload {
 public:
  static constexpr uint32_t kBatch = 3;
  static constexpr size_t kCkptEvery = 4;  // op i is a checkpoint when i%4==3

  struct Cmd {
    bool remove = false;
    std::string key;
    std::string value;
  };

  CkptWorkload(uint64_t seed, size_t n) : name_("ckpt") {
    Xorshift rng(seed);
    std::map<std::string, std::string> model;
    uint64_t next_rec = 1;
    writes_before_.reserve(n + 1);
    ckpts_before_.reserve(n + 1);
    for (size_t i = 0; i < n; ++i) {
      writes_before_.push_back(next_rec - 1);
      ckpts_before_.push_back(ckpt_begin_.size());
      if (i % kCkptEvery == kCkptEvery - 1) {
        // Checkpoint op: record the pair it will publish and the walk
        // accounting over the model state at this point.
        ckpt_begin_.push_back(next_rec);
        uint64_t keys = 0, bytes = 0;
        for (const auto& [k, v] : model) {
          ++keys;
          bytes += k.size() + v.size();
        }
        ckpt_walked_keys_.push_back(keys);
        ckpt_walked_bytes_.push_back(bytes);
        script_.push_back({});  // no commands
        continue;
      }
      std::vector<Cmd> batch;
      std::set<std::string> used;
      for (uint32_t j = 0; j < kBatch; ++j) {
        std::string key;
        do {
          key = "k" + std::to_string(rng.NextBelow(10));
        } while (used.count(key) != 0);
        used.insert(key);
        if (model.count(key) != 0 && rng.NextBelow(4) == 0) {
          batch.push_back(Cmd{true, key, {}});
          model.erase(key);
        } else {
          batch.push_back(
              Cmd{false, key, ValueFor(i * kBatch + j, rng.NextBelow(6) == 0)});
          model[key] = batch.back().value;
        }
      }
      std::vector<repl::ReplOp> rops;
      for (const Cmd& c : batch) {
        repl::ReplOp op;
        op.kind = c.remove ? repl::ReplOp::Kind::kDel : repl::ReplOp::Kind::kPut;
        op.key = c.key;
        if (!c.remove) {
          op.record.fields.push_back(c.value);
        }
        rops.push_back(std::move(op));
      }
      std::string f;
      repl::EncodeBatch(rops, &f);
      frames_.push_back(std::move(f));
      script_.push_back(std::move(batch));
      ++next_rec;
    }
    writes_before_.push_back(next_rec - 1);
    ckpts_before_.push_back(ckpt_begin_.size());
  }

  const std::string& name() const override { return name_; }
  size_t op_count() const override { return script_.size(); }

  void Setup(JnvmRuntime& rt) override {
    backend_ = std::make_unique<store::JpdtBackend>(&rt, "store",
                                                    /*initial_capacity=*/4);
    log_ = repl::ReplLog::OpenOrCreate(&rt, "log", TinyLog());
    ckpt::CkptMeta::Class();
    meta_ = std::make_shared<ckpt::CkptMeta>(rt);
    rt.root().Put("ckptmeta", meta_.get());
    rt.Psync();
  }

  void RunOp(JnvmRuntime& rt, size_t i) override {
    if (i % kCkptEvery == kCkptEvery - 1) {
      // The fuzzy walk: snapshot-cursor accounting (no copying — the store
      // IS the image), then the finalize sequence of ExecuteCkpt.
      uint64_t keys = 0, bytes = 0;
      backend_->SnapshotRecords(
          [&](const std::string& k, const store::Record& r) {
            ++keys;
            for (const std::string& f : r.fields) {
              bytes += f.size();
            }
            bytes += k.size();
          });
      rt.heap().BeginGroupCommit();
      rt.Psync();  // every sealed batch's store effects durable before begin
      const uint64_t begin = log_->next_seq();
      meta_->Publish(begin, begin - 1, keys, bytes);
      rt.Pfence();  // meta durable before the truncation unlinks
      log_->TruncateBelow(begin);
      rt.heap().EndGroupCommit();
      rt.Psync();  // seals the ring-slot unlinks before the deferred frees
      rt.DrainGroupFrees();
      return;
    }
    rt.heap().BeginGroupCommit();
    for (const Cmd& c : script_[i]) {
      if (c.remove) {
        backend_->Delete(c.key);
      } else {
        store::Record r;
        r.fields.push_back(c.value);
        backend_->Put(c.key, r);
      }
    }
    log_->Append(log_->next_seq(), frames_[writes_before_[i]]);
    rt.heap().EndGroupCommit();
    rt.Psync();
    rt.DrainGroupFrees();
  }

  void Check(JnvmRuntime& rt, const CrashCut& cut,
             std::vector<std::string>* out) override {
    const bool has_inflight =
        cut.in_flight.has_value() && *cut.in_flight < script_.size();
    const bool inflight_ckpt =
        has_inflight && *cut.in_flight % kCkptEvery == kCkptEvery - 1;
    const bool inflight_write = has_inflight && !inflight_ckpt;

    auto log = repl::ReplLog::OpenOrCreate(&rt, "log", TinyLog());
    if (log->needs_snapshot()) {
      out->push_back("log reports needs_snapshot on a primary");
      return;
    }
    ckpt::CkptMeta::Class();
    auto meta = rt.root().GetAs<ckpt::CkptMeta>("ckptmeta");
    if (meta == nullptr) {
      out->push_back("checkpoint meta root binding lost");
      return;
    }

    // Sealed boundary (as in "repl"): committed write batches, +1 only when
    // the in-flight op is a write batch whose record lines survived.
    const uint64_t c_w = writes_before_[cut.committed];
    const uint64_t sealed = log->next_seq() - 1;
    if (sealed != c_w && !(inflight_write && sealed == c_w + 1)) {
      out->push_back("log retains " + std::to_string(sealed) +
                     " records, want " + std::to_string(c_w) +
                     (inflight_write ? " or +1" : ""));
      return;
    }

    // Meta: exact for a cut outside a checkpoint op; per-field old-or-new
    // when the crash fell inside one (Publish is plain 8-byte stores).
    const size_t c_k = ckpts_before_[cut.committed];
    const uint64_t begin_old = c_k == 0 ? 1 : ckpt_begin_[c_k - 1];
    const uint64_t keys_old = c_k == 0 ? 0 : ckpt_walked_keys_[c_k - 1];
    const uint64_t bytes_old = c_k == 0 ? 0 : ckpt_walked_bytes_[c_k - 1];
    if (!inflight_ckpt) {
      if (meta->Count() != c_k || meta->BeginSeq() != begin_old ||
          meta->EndSeq() != begin_old - 1 || meta->WalkedKeys() != keys_old ||
          meta->WalkedBytes() != bytes_old) {
        out->push_back("checkpoint meta mismatch: count=" +
                       std::to_string(meta->Count()) + " begin=" +
                       std::to_string(meta->BeginSeq()) + ", want count=" +
                       std::to_string(c_k) + " begin=" +
                       std::to_string(begin_old));
      }
    } else {
      const uint64_t begin_new = ckpt_begin_[c_k];
      auto either = [](uint64_t got, uint64_t a, uint64_t b) {
        return got == a || got == b;
      };
      if (!either(meta->Count(), c_k, c_k + 1) ||
          !either(meta->BeginSeq(), begin_old, begin_new) ||
          !either(meta->EndSeq(), begin_old - 1, begin_new - 1) ||
          !either(meta->WalkedKeys(), keys_old, ckpt_walked_keys_[c_k]) ||
          !either(meta->WalkedBytes(), bytes_old, ckpt_walked_bytes_[c_k])) {
        out->push_back("in-flight checkpoint left torn meta: count=" +
                       std::to_string(meta->Count()) + " begin=" +
                       std::to_string(meta->BeginSeq()));
      }
    }
    // LSN invariant: whatever begin recovery reads, it clamps inside the
    // retained log — never a replay gap.
    if (meta->BeginSeq() > log->next_seq()) {
      out->push_back("checkpoint begin " + std::to_string(meta->BeginSeq()) +
                     " ahead of log next " + std::to_string(log->next_seq()));
    }

    // Every retained record must byte-match the script's frame.
    std::string payload;
    for (uint64_t q = log->start_seq(); q < log->next_seq(); ++q) {
      if (!log->Read(q, &payload)) {
        out->push_back("record " + std::to_string(q) + " unreadable");
      } else if (payload != frames_[q - 1]) {
        out->push_back("record " + std::to_string(q) +
                       " does not match the script");
      }
    }

    // Recovery = image + tail replay from the clamped checkpoint bound
    // (exactly Shard::Open → RedoLogTail).
    auto backend = std::make_unique<store::JpdtBackend>(&rt, "store",
                                                        /*initial_capacity=*/4);
    const uint64_t replay_from = std::min(
        std::max(meta->BeginSeq(), log->start_seq()), log->next_seq());
    for (uint64_t q = replay_from; q < log->next_seq(); ++q) {
      if (!log->Read(q, &payload)) {
        out->push_back("replay record " + std::to_string(q) + " unreadable");
        continue;
      }
      std::vector<repl::ReplOp> rops;
      if (!repl::DecodeBatch(payload, &rops)) {
        out->push_back("replay record " + std::to_string(q) + " corrupt");
        continue;
      }
      for (const repl::ReplOp& op : rops) {
        if (op.kind == repl::ReplOp::Kind::kPut) {
          backend->Put(op.key, op.record);
        } else if (op.kind == repl::ReplOp::Kind::kDel) {
          backend->Delete(op.key);
        }
      }
    }

    // Full-log-replay oracle: the tail-replayed store must equal the state
    // after ALL sealed batches (old-or-new per key for an unsealed
    // in-flight write batch).
    std::map<std::string, std::string> expected;
    {
      uint64_t rec = 0;
      for (size_t i = 0; i < script_.size() && rec < sealed; ++i) {
        if (i % kCkptEvery == kCkptEvery - 1) {
          continue;
        }
        ++rec;
        for (const Cmd& c : script_[i]) {
          if (c.remove) {
            expected.erase(c.key);
          } else {
            expected[c.key] = c.value;
          }
        }
      }
    }
    const std::vector<Cmd>* inflight =
        inflight_write ? &script_[*cut.in_flight] : nullptr;
    const bool inflight_unsealed = inflight != nullptr && sealed == c_w;
    auto inflight_cmd = [&](const std::string& k) -> const Cmd* {
      if (!inflight_unsealed) {
        return nullptr;
      }
      for (const Cmd& c : *inflight) {
        if (c.key == k) {
          return &c;
        }
      }
      return nullptr;
    };

    std::map<std::string, std::string> got;
    backend->SnapshotRecords([&](const std::string& k, const store::Record& r) {
      got[k] = r.fields.empty() ? std::string("<empty>") : r.fields[0];
    });
    for (const auto& [k, v] : expected) {
      if (inflight_cmd(k) != nullptr) {
        continue;
      }
      const auto it = got.find(k);
      if (it == got.end()) {
        out->push_back("sealed key " + k + " lost after tail replay from " +
                       std::to_string(replay_from));
      } else if (it->second != v) {
        out->push_back("sealed key " + k + " has '" + it->second +
                       "', want '" + v + "' after tail replay");
      }
    }
    for (const auto& [k, v] : got) {
      if (expected.count(k) == 0 && inflight_cmd(k) == nullptr) {
        out->push_back("phantom key " + k + " after tail replay");
      }
    }
    if (inflight_unsealed) {
      for (const Cmd& c : *inflight) {
        const auto it = got.find(c.key);
        const auto old_it = expected.find(c.key);
        if (it == got.end()) {
          if (!c.remove && old_it != expected.end()) {
            out->push_back("in-flight batch erased pre-existing key " + c.key);
          }
          continue;
        }
        const bool is_old =
            old_it != expected.end() && it->second == old_it->second;
        const bool is_new = !c.remove && it->second == c.value;
        if (!is_old && !is_new) {
          out->push_back("in-flight batch left torn value '" + it->second +
                         "' for key " + c.key);
        }
      }
    }
    rt.Psync();  // leave the heap quiescent for the checker's I1–I7 audit
  }

 private:
  static repl::ReplLogOptions TinyLog() {
    repl::ReplLogOptions o;
    o.segment_bytes = 256;  // a few records per segment: truncation bites
    o.max_segments = 6;
    return o;
  }

  std::string name_;
  std::vector<std::vector<Cmd>> script_;   // empty vector = checkpoint op
  std::vector<std::string> frames_;        // frames_[seq - 1]
  std::vector<uint64_t> writes_before_;    // write ops among [0, i)
  std::vector<size_t> ckpts_before_;       // ckpt ops among [0, i)
  std::vector<uint64_t> ckpt_begin_;       // per ckpt op: the begin it seals
  std::vector<uint64_t> ckpt_walked_keys_;
  std::vector<uint64_t> ckpt_walked_bytes_;
  std::unique_ptr<store::JpdtBackend> backend_;
  std::unique_ptr<repl::ReplLog> log_;
  Handle<ckpt::CkptMeta> meta_;
};

// "repl-apply" models the *replica* apply path plus the post-crash resync:
// each checker op applies one shipped record under group commit and mirrors
// it into the local log (Shard::ExecuteApply). Check performs the replica's
// full restart sequence — redo tail, then re-pull every record past the
// sealed boundary (what REPLSYNC from sealed+1 delivers) — and the store
// must land exactly on the full-script state: acknowledged-by-primary data
// survives any replica crash, and re-applying records is idempotent.

class ReplApplyWorkload final : public Workload {
 public:
  static constexpr uint32_t kBatch = 3;

  ReplApplyWorkload(uint64_t seed, size_t n) : name_("repl-apply") {
    Xorshift rng(seed);
    std::set<std::string> live;
    script_.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      std::vector<ReplWorkload::Cmd> batch;
      std::set<std::string> used;
      for (uint32_t j = 0; j < kBatch; ++j) {
        std::string key;
        do {
          key = "k" + std::to_string(rng.NextBelow(10));
        } while (used.count(key) != 0);
        used.insert(key);
        if (live.count(key) != 0 && rng.NextBelow(4) == 0) {
          batch.push_back(ReplWorkload::Cmd{true, key, {}});
          live.erase(key);
        } else {
          batch.push_back(ReplWorkload::Cmd{
              false, key, ValueFor(i * kBatch + j, rng.NextBelow(6) == 0)});
          live.insert(key);
        }
      }
      std::vector<repl::ReplOp> rops;
      for (const ReplWorkload::Cmd& c : batch) {
        repl::ReplOp op;
        op.kind = c.remove ? repl::ReplOp::Kind::kDel : repl::ReplOp::Kind::kPut;
        op.key = c.key;
        if (!c.remove) {
          op.record.fields.push_back(c.value);
        }
        rops.push_back(std::move(op));
      }
      std::string f;
      repl::EncodeBatch(rops, &f);
      frames_.push_back(std::move(f));
      ops_.push_back(std::move(rops));
      script_.push_back(std::move(batch));
    }
  }

  const std::string& name() const override { return name_; }
  size_t op_count() const override { return script_.size(); }

  void Setup(JnvmRuntime& rt) override {
    backend_ = std::make_unique<store::JpdtBackend>(&rt, "shard0",
                                                    /*initial_capacity=*/4);
    log_ = repl::ReplLog::OpenOrCreate(&rt, "repl0", TinyLog());
    rt.Psync();
  }

  void RunOp(JnvmRuntime& rt, size_t i) override {
    // Shard::ExecuteApply: apply the record's ops, mirror the record into
    // the local log with the primary's sequence number, one Psync for both.
    rt.heap().BeginGroupCommit();
    Apply(ops_[i]);
    log_->Append(static_cast<uint64_t>(i) + 1, frames_[i]);
    rt.heap().EndGroupCommit();
    rt.Psync();
    rt.DrainGroupFrees();
  }

  void Check(JnvmRuntime& rt, const CrashCut& cut,
             std::vector<std::string>* out) override {
    auto log = repl::ReplLog::OpenOrCreate(&rt, "repl0", TinyLog());
    backend_ = std::make_unique<store::JpdtBackend>(&rt, "shard0",
                                                    /*initial_capacity=*/4);
    if (log->needs_snapshot()) {
      out->push_back("log reports needs_snapshot without a snapshot install");
      return;
    }
    const uint64_t c = cut.committed;
    const bool has_inflight =
        cut.in_flight.has_value() && *cut.in_flight < script_.size();
    const uint64_t sealed = log->next_seq() - 1;
    if (sealed != c && !(has_inflight && sealed == c + 1)) {
      out->push_back("log retains " + std::to_string(sealed) +
                     " records, want " + std::to_string(c) +
                     (has_inflight ? " or +1" : ""));
      return;
    }
    std::string payload;
    for (uint64_t q = log->start_seq(); q < log->next_seq(); ++q) {
      if (!log->Read(q, &payload) || payload != frames_[q - 1]) {
        out->push_back("record " + std::to_string(q) +
                       " unreadable or does not match the shipped frame");
      }
    }

    // Restart sequence: redo the tail record, then resync — REPLSYNC from
    // sealed+1 re-delivers every later record; apply them all.
    if (sealed > 0) {
      Apply(ops_[sealed - 1]);  // redo tail
    }
    for (uint64_t q = sealed; q < script_.size(); ++q) {
      Apply(ops_[q]);  // resync stream
    }
    rt.Psync();

    // After redo + resync the store must equal the full-script state.
    std::map<std::string, std::string> expected;
    for (const auto& batch : script_) {
      for (const ReplWorkload::Cmd& cmd : batch) {
        if (cmd.remove) {
          expected.erase(cmd.key);
        } else {
          expected[cmd.key] = cmd.value;
        }
      }
    }
    std::map<std::string, std::string> got;
    backend_->SnapshotRecords([&](const std::string& k, const store::Record& r) {
      got[k] = r.fields.empty() ? std::string("<empty>") : r.fields[0];
    });
    for (const auto& [k, v] : expected) {
      const auto it = got.find(k);
      if (it == got.end()) {
        out->push_back("post-resync key " + k + " lost");
      } else if (it->second != v) {
        out->push_back("post-resync key " + k + " has '" + it->second +
                       "', want '" + v + "'");
      }
    }
    for (const auto& [k, v] : got) {
      if (expected.count(k) == 0) {
        out->push_back("post-resync phantom key " + k);
      }
    }
  }

 private:
  static repl::ReplLogOptions TinyLog() {
    repl::ReplLogOptions o;
    o.segment_bytes = 256;
    o.max_segments = 3;
    return o;
  }

  void Apply(const std::vector<repl::ReplOp>& rops) {
    for (const repl::ReplOp& op : rops) {
      switch (op.kind) {
        case repl::ReplOp::Kind::kPut:
          backend_->Put(op.key, op.record);
          break;
        case repl::ReplOp::Kind::kDel:
          backend_->Delete(op.key);
          break;
        case repl::ReplOp::Kind::kUpdate:
          backend_->UpdateField(op.key, op.field, op.value);
          break;
        default:
          break;  // these scripts carry no txn ops
      }
    }
  }

  std::string name_;
  std::vector<std::vector<ReplWorkload::Cmd>> script_;
  std::vector<std::vector<repl::ReplOp>> ops_;
  std::vector<std::string> frames_;
  std::unique_ptr<store::JpdtBackend> backend_;
  std::unique_ptr<repl::ReplLog> log_;
};

// "wait" models the WAIT-K ack contract from the follower's side. The
// primary releases a parked batch only after a follower's apply-batch Psync
// retires — the exact event after which the seal hook emits REPLACK. One
// checker op is therefore one *acked unit*: apply the shipped record's ops,
// mirror the record into the local log, one Psync (Shard::ExecuteApply).
//
// The oracle enforces "WAIT-acked implies replayable from the follower's
// log": a committed (= acked to the primary) record missing from the
// recovered log is THE violation — the primary told a client the write
// reached the replica, so no replica crash may lose it. Concretely:
//   * sealed (= log->next_seq()-1) must be >= committed; sealed may exceed
//     it by exactly one when the crash interrupted an op after its append
//     sealed but before the checker observed the fence retire,
//   * every sealed record must byte-match the shipped frame,
//   * redoing the tail record must land the store exactly on the state
//     after `sealed` batches — the in-flight batch's keys may read old or
//     new (its store writes race the crash) but never torn, and no other
//     key may deviate.
class WaitWorkload final : public Workload {
 public:
  static constexpr uint32_t kBatch = 3;

  WaitWorkload(uint64_t seed, size_t n) : name_("wait") {
    Xorshift rng(seed);
    std::set<std::string> live;
    script_.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      std::vector<ReplWorkload::Cmd> batch;
      std::set<std::string> used;
      for (uint32_t j = 0; j < kBatch; ++j) {
        std::string key;
        do {
          key = "k" + std::to_string(rng.NextBelow(10));
        } while (used.count(key) != 0);
        used.insert(key);
        if (live.count(key) != 0 && rng.NextBelow(4) == 0) {
          batch.push_back(ReplWorkload::Cmd{true, key, {}});
          live.erase(key);
        } else {
          batch.push_back(ReplWorkload::Cmd{
              false, key, ValueFor(i * kBatch + j, rng.NextBelow(6) == 0)});
          live.insert(key);
        }
      }
      std::vector<repl::ReplOp> rops;
      for (const ReplWorkload::Cmd& c : batch) {
        repl::ReplOp op;
        op.kind = c.remove ? repl::ReplOp::Kind::kDel : repl::ReplOp::Kind::kPut;
        op.key = c.key;
        if (!c.remove) {
          op.record.fields.push_back(c.value);
        }
        rops.push_back(std::move(op));
      }
      std::string f;
      repl::EncodeBatch(rops, &f);
      frames_.push_back(std::move(f));
      ops_.push_back(std::move(rops));
      script_.push_back(std::move(batch));
    }
  }

  const std::string& name() const override { return name_; }
  size_t op_count() const override { return script_.size(); }

  void Setup(JnvmRuntime& rt) override {
    backend_ = std::make_unique<store::JpdtBackend>(&rt, "shard0",
                                                    /*initial_capacity=*/4);
    log_ = repl::ReplLog::OpenOrCreate(&rt, "repl0", TinyLog());
    rt.Psync();
  }

  void RunOp(JnvmRuntime& rt, size_t i) override {
    rt.heap().BeginGroupCommit();
    Apply(ops_[i]);
    log_->Append(static_cast<uint64_t>(i) + 1, frames_[i]);
    rt.heap().EndGroupCommit();
    rt.Psync();  // <- the ack point: after this retires, REPLACK may go out
    rt.DrainGroupFrees();
  }

  void Check(JnvmRuntime& rt, const CrashCut& cut,
             std::vector<std::string>* out) override {
    auto log = repl::ReplLog::OpenOrCreate(&rt, "repl0", TinyLog());
    backend_ = std::make_unique<store::JpdtBackend>(&rt, "shard0",
                                                    /*initial_capacity=*/4);
    if (log->needs_snapshot()) {
      out->push_back("log reports needs_snapshot without a snapshot install");
      return;
    }
    const uint64_t c = cut.committed;
    const bool has_inflight =
        cut.in_flight.has_value() && *cut.in_flight < script_.size();
    const uint64_t sealed = log->next_seq() - 1;
    if (sealed < c) {
      out->push_back("acked record lost: log retains " +
                     std::to_string(sealed) + " records but " +
                     std::to_string(c) + " were acked to the primary");
      return;
    }
    if (sealed != c && !(has_inflight && sealed == c + 1)) {
      out->push_back("log retains " + std::to_string(sealed) +
                     " records, want " + std::to_string(c) +
                     (has_inflight ? " or +1" : ""));
      return;
    }
    std::string payload;
    for (uint64_t q = log->start_seq(); q < log->next_seq(); ++q) {
      if (!log->Read(q, &payload) || payload != frames_[q - 1]) {
        out->push_back("acked record " + std::to_string(q) +
                       " unreadable or does not match the shipped frame");
      }
    }

    // Replica restart: redo the tail record, then compare against the state
    // exactly `sealed` batches in.
    if (sealed > 0) {
      Apply(ops_[sealed - 1]);
    }
    rt.Psync();

    std::map<std::string, std::string> expected;
    for (uint64_t b = 0; b < sealed; ++b) {
      for (const ReplWorkload::Cmd& cmd : script_[b]) {
        if (cmd.remove) {
          expected.erase(cmd.key);
        } else {
          expected[cmd.key] = cmd.value;
        }
      }
    }
    // Keys the unsealed in-flight batch touched may be old or new: its
    // store mutations happened before the crash but its record never
    // sealed, so the resync stream will re-deliver it.
    std::map<std::string, const ReplWorkload::Cmd*> inflight;
    if (has_inflight && sealed == c) {
      for (const ReplWorkload::Cmd& cmd : script_[c]) {
        inflight[cmd.key] = &cmd;
      }
    }

    std::map<std::string, std::string> got;
    backend_->SnapshotRecords([&](const std::string& k, const store::Record& r) {
      got[k] = r.fields.empty() ? std::string("<empty>") : r.fields[0];
    });
    std::set<std::string> keys;
    for (const auto& [k, v] : expected) keys.insert(k);
    for (const auto& [k, v] : got) keys.insert(k);
    for (const auto& [k, cmd] : inflight) keys.insert(k);
    for (const std::string& k : keys) {
      const auto eit = expected.find(k);
      const auto git = got.find(k);
      const auto iit = inflight.find(k);
      if (iit != inflight.end()) {
        const bool old_ok = (git == got.end() && eit == expected.end()) ||
                            (git != got.end() && eit != expected.end() &&
                             git->second == eit->second);
        const bool new_ok = iit->second->remove
                                ? git == got.end()
                                : git != got.end() &&
                                      git->second == iit->second->value;
        if (!old_ok && !new_ok) {
          out->push_back("in-flight key " + k + " torn: '" +
                         (git == got.end() ? std::string("<absent>")
                                           : git->second) +
                         "' is neither the pre- nor post-batch value");
        }
        continue;
      }
      if (eit == expected.end()) {
        out->push_back("phantom key " + k + " after replaying acked prefix");
      } else if (git == got.end()) {
        out->push_back("acked key " + k + " lost");
      } else if (git->second != eit->second) {
        out->push_back("acked key " + k + " has '" + git->second +
                       "', want '" + eit->second + "'");
      }
    }
  }

 private:
  static repl::ReplLogOptions TinyLog() {
    repl::ReplLogOptions o;
    o.segment_bytes = 256;
    o.max_segments = 3;
    return o;
  }

  void Apply(const std::vector<repl::ReplOp>& rops) {
    for (const repl::ReplOp& op : rops) {
      switch (op.kind) {
        case repl::ReplOp::Kind::kPut:
          backend_->Put(op.key, op.record);
          break;
        case repl::ReplOp::Kind::kDel:
          backend_->Delete(op.key);
          break;
        case repl::ReplOp::Kind::kUpdate:
          backend_->UpdateField(op.key, op.field, op.value);
          break;
        default:
          break;  // these scripts carry no txn ops
      }
    }
  }

  std::string name_;
  std::vector<std::vector<ReplWorkload::Cmd>> script_;
  std::vector<std::vector<repl::ReplOp>> ops_;
  std::vector<std::string> frames_;
  std::unique_ptr<store::JpdtBackend> backend_;
  std::unique_ptr<repl::ReplLog> log_;
};

// "read-your-writes" models the session-read contract (DESIGN.md §8) across
// replica crashes: a client holds a MINSEQ token for every write the primary
// acked to it, and a replica may only answer its reads from a state whose
// applied watermark covers the token. Each checker op is one shipped record
// applied and mirrored under one Psync — the exact event after which
// Shard::PublishReplStats advances the watermark and parked session reads
// are released. The crash cuts at every persistence event inside that op.
//
// Oracle, per cut:
//   * the recovered watermark (sealed = log->next_seq()-1) never regresses
//     below the ack point: sealed >= committed (sealed == committed + 1 only
//     when the in-flight op's append happened to seal),
//   * for every session token m in [1, sealed] — every read a client could
//     legally issue after recovery — the store's value for the key written
//     at seq m carries a version >= m: no read EVER observes state older
//     than the reader's min-seq token,
//   * the full store equals the replay of exactly `sealed` records, with
//     the usual old-or-new allowance for the unsealed in-flight record's
//     key — old is fine for *that* key because its seq is > every issuable
//     token.
//
// Each record writes exactly one key (round-robin over a small key set) with
// the value "v<op-index>", so a stale read is always distinguishable as a
// too-small version number.
class ReadYourWritesWorkload final : public Workload {
 public:
  static constexpr int kKeys = 5;

  ReadYourWritesWorkload(uint64_t seed, size_t n) : name_("read-your-writes") {
    Xorshift rng(seed);
    script_.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      // Round-robin keys with a random skip so every key accumulates
      // multiple versions at irregular seq distances.
      const int k = static_cast<int>((i + rng.NextBelow(2)) % kKeys);
      script_.push_back(Op{"k" + std::to_string(k),
                           ValueFor(i, rng.NextBelow(6) == 0)});
      repl::ReplOp rop;
      rop.kind = repl::ReplOp::Kind::kPut;
      rop.key = script_.back().key;
      rop.record.fields.push_back(script_.back().value);
      std::string f;
      repl::EncodeBatch({rop}, &f);
      frames_.push_back(std::move(f));
    }
  }

  const std::string& name() const override { return name_; }
  size_t op_count() const override { return script_.size(); }

  void Setup(JnvmRuntime& rt) override {
    backend_ = std::make_unique<store::JpdtBackend>(&rt, "shard0",
                                                    /*initial_capacity=*/4);
    log_ = repl::ReplLog::OpenOrCreate(&rt, "repl0", TinyLog());
    rt.Psync();
  }

  void RunOp(JnvmRuntime& rt, size_t i) override {
    rt.heap().BeginGroupCommit();
    store::Record r;
    r.fields.push_back(script_[i].value);
    backend_->Put(script_[i].key, r);
    log_->Append(static_cast<uint64_t>(i) + 1, frames_[i]);
    rt.heap().EndGroupCommit();
    rt.Psync();  // watermark advance: parked session reads release here
    rt.DrainGroupFrees();
  }

  void Check(JnvmRuntime& rt, const CrashCut& cut,
             std::vector<std::string>* out) override {
    auto log = repl::ReplLog::OpenOrCreate(&rt, "repl0", TinyLog());
    backend_ = std::make_unique<store::JpdtBackend>(&rt, "shard0",
                                                    /*initial_capacity=*/4);
    if (log->needs_snapshot()) {
      out->push_back("log reports needs_snapshot without a snapshot install");
      return;
    }
    const uint64_t c = cut.committed;
    const bool has_inflight =
        cut.in_flight.has_value() && *cut.in_flight < script_.size();
    const uint64_t sealed = log->next_seq() - 1;
    if (sealed < c) {
      out->push_back("watermark regressed: log retains " +
                     std::to_string(sealed) + " records but seq " +
                     std::to_string(c) + " was already released to readers");
      return;
    }
    if (sealed != c && !(has_inflight && sealed == c + 1)) {
      out->push_back("log retains " + std::to_string(sealed) +
                     " records, want " + std::to_string(c) +
                     (has_inflight ? " or +1" : ""));
      return;
    }
    std::string payload;
    for (uint64_t q = log->start_seq(); q < log->next_seq(); ++q) {
      if (!log->Read(q, &payload) || payload != frames_[q - 1]) {
        out->push_back("record " + std::to_string(q) +
                       " unreadable or does not match the shipped frame");
      }
    }

    // Replica restart: redo the tail record (Shard::Open), then the store is
    // what post-recovery session reads observe.
    if (sealed > 0) {
      store::Record r;
      r.fields.push_back(script_[sealed - 1].value);
      backend_->Put(script_[sealed - 1].key, r);
    }
    rt.Psync();

    std::map<std::string, std::string> got;
    backend_->SnapshotRecords([&](const std::string& k, const store::Record& r) {
      got[k] = r.fields.empty() ? std::string("<empty>") : r.fields[0];
    });

    // The in-flight record's key (when unsealed) is old-or-new; its seq is
    // above every issuable token, so "old" never violates a session.
    const std::string* inflight_key =
        has_inflight && sealed == c ? &script_[c].key : nullptr;

    // Session-read oracle: every token a client could hold after recovery.
    for (uint64_t m = 1; m <= sealed; ++m) {
      const std::string& k = script_[m - 1].key;
      const auto it = got.find(k);
      if (it == got.end()) {
        out->push_back("session read with token " + std::to_string(m) +
                       " misses key " + k + " written at that seq");
        continue;
      }
      const uint64_t version = VersionOf(it->second);
      if (version < m) {
        out->push_back("session read with token " + std::to_string(m) +
                       " observed key " + k + " at version " +
                       std::to_string(version) + " — older than the token");
      }
    }

    // Full-store check against the replay of exactly `sealed` records.
    std::map<std::string, std::string> expected;
    for (uint64_t q = 0; q < sealed; ++q) {
      expected[script_[q].key] = script_[q].value;
    }
    for (const auto& [k, v] : expected) {
      if (inflight_key != nullptr && k == *inflight_key) {
        continue;
      }
      const auto it = got.find(k);
      if (it == got.end()) {
        out->push_back("released key " + k + " lost");
      } else if (it->second != v) {
        out->push_back("released key " + k + " has '" + it->second +
                       "', want '" + v + "'");
      }
    }
    for (const auto& [k, v] : got) {
      if (expected.count(k) == 0 &&
          (inflight_key == nullptr || k != *inflight_key)) {
        out->push_back("phantom key " + k);
      }
    }
    if (inflight_key != nullptr) {
      const auto it = got.find(*inflight_key);
      const auto old_it = expected.find(*inflight_key);
      if (it != got.end()) {
        const bool is_old =
            old_it != expected.end() && it->second == old_it->second;
        const bool is_new = it->second == script_[c].value;
        if (!is_old && !is_new) {
          out->push_back("in-flight op left torn value '" + it->second +
                         "' for key " + *inflight_key);
        }
      } else if (old_it != expected.end()) {
        out->push_back("in-flight put erased pre-existing key " +
                       *inflight_key);
      }
    }
  }

 private:
  struct Op {
    std::string key;
    std::string value;  // "v<op-index>" (+ optional padding)
  };

  static repl::ReplLogOptions TinyLog() {
    repl::ReplLogOptions o;
    o.segment_bytes = 256;
    o.max_segments = 3;
    return o;
  }

  // ValueFor() encodes the op index right after the leading 'v'; the op at
  // index i seals as seq i+1.
  static uint64_t VersionOf(const std::string& value) {
    uint64_t idx = 0;
    for (size_t p = 1; p < value.size() && value[p] >= '0' && value[p] <= '9';
         ++p) {
      idx = idx * 10 + static_cast<uint64_t>(value[p] - '0');
    }
    return idx + 1;
  }

  std::string name_;
  std::vector<Op> script_;
  std::vector<std::string> frames_;
  std::unique_ptr<store::JpdtBackend> backend_;
  std::unique_ptr<repl::ReplLog> log_;
};

// ---- Cross-shard transaction workload (DESIGN.md §9) -------------------------
//
// "txn" models the 2PC persistence discipline end to end: each checker op is
// one MULTI/EXEC txn driven through the exact record sequence the shard
// worker seals — a single-shard txn as one [prepare|marker] record, a
// cross-shard txn as per-participant kTxnPrepare records, the coordinator's
// kTxnCommit decision record (THE durability point), then the other
// participants' commit markers — with every store apply running strictly
// post-seal of its justifying record, like Shard::ApplyPostSealTxns.
//
// Check re-runs the shard's actual recovery (ScanLogForTxns + redo tail via
// ReplayRecordOps, exactly Shard::Open) and the server's resolution
// (PlanResolution over every shard's view, exactly
// Server::ResolveCrossShardTxns), then judges all-or-nothing: a txn whose
// coordinator's recovered log retains the decision (or, single-shard, the
// combined record) must be fully visible on every participant; any other txn
// must have no store effect anywhere. The expected state is the fold of
// exactly the decided txns, compared key-exact — a partial apply on any
// shard is an atomicity violation, never an allowed outcome.

class TxnWorkload final : public Workload {
 public:
  static constexpr uint32_t kShards = 3;

  struct Part {
    uint32_t shard = 0;
    std::vector<repl::ReplOp> writes;
    std::string writes_frame;     // EncodeBatch(writes)
    uint64_t prepare_seq = 0;     // seq the prepare record seals under
    std::string record_frame;     // single: [prepare|marker]; cross: [prepare]
  };
  struct Txn {
    bool single = false;
    std::vector<Part> parts;      // shard-ascending; parts[0].shard coordinates
    std::string decision_frame;   // cross only: coordinator's decision record
    std::string marker_frame;     // cross only: participant commit marker
  };

  TxnWorkload(uint64_t seed, size_t n) : name_("txn") {
    // Per-shard key pools under the server's routing hash.
    std::vector<std::string> pool[kShards];
    for (int i = 0; i < 64; ++i) {
      const std::string k = "k" + std::to_string(i);
      pool[server::ShardFor(k, kShards)].push_back(k);
    }
    for (uint32_t s = 0; s < kShards; ++s) {
      JNVM_CHECK_MSG(pool[s].size() >= 2, "txn workload: thin key pool");
    }

    Xorshift rng(seed);
    uint64_t next_seq[kShards];
    for (uint32_t s = 0; s < kShards; ++s) {
      next_seq[s] = 1;
      cum_[s].assign(n + 1, 0);
    }
    txns_.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      Txn t;
      t.single = rng.NextBelow(3) == 0;
      // Two writes per txn: same shard (distinct keys) or one per shard on
      // two distinct shards, coordinator = the lower one.
      std::vector<std::pair<uint32_t, std::string>> targets;
      if (t.single) {
        const uint32_t s = static_cast<uint32_t>(rng.NextBelow(kShards));
        const size_t k1 = rng.NextBelow(pool[s].size());
        size_t k2 = rng.NextBelow(pool[s].size() - 1);
        k2 += k2 >= k1 ? 1 : 0;
        targets.emplace_back(s, pool[s][k1]);
        targets.emplace_back(s, pool[s][k2]);
      } else {
        const uint32_t a = static_cast<uint32_t>(rng.NextBelow(kShards));
        uint32_t b = static_cast<uint32_t>(
            (a + 1 + rng.NextBelow(kShards - 1)) % kShards);
        const uint32_t lo = std::min(a, b), hi = std::max(a, b);
        targets.emplace_back(lo, pool[lo][rng.NextBelow(pool[lo].size())]);
        targets.emplace_back(hi, pool[hi][rng.NextBelow(pool[hi].size())]);
      }
      for (size_t j = 0; j < targets.size(); ++j) {
        const auto& [s, key] = targets[j];
        repl::ReplOp w;
        if (rng.NextBelow(5) == 0) {
          w.kind = repl::ReplOp::Kind::kDel;
          w.key = key;
        } else {
          w.kind = repl::ReplOp::Kind::kPut;
          w.key = key;
          w.record.fields.push_back(
              ValueFor(2 * i + j, rng.NextBelow(6) == 0));
        }
        if (t.parts.empty() || t.parts.back().shard != s) {
          Part p;
          p.shard = s;
          t.parts.push_back(std::move(p));
        }
        t.parts.back().writes.push_back(std::move(w));
      }
      const txn::TxnId id = i + 1;
      const uint32_t coord = t.parts[0].shard;
      for (Part& p : t.parts) {
        repl::EncodeBatch(p.writes, &p.writes_frame);
      }
      // Precompute the record frames and the seqs they seal under, in the
      // exact order RunOp appends them; the oracle byte-matches the logs.
      if (t.single) {
        Part& p = t.parts[0];
        p.prepare_seq = next_seq[coord];
        std::vector<repl::ReplOp> rops(2);
        rops[0].kind = repl::ReplOp::Kind::kTxnPrepare;
        rops[0].key = txn::TxnIdKey(id);
        rops[0].field = coord;
        rops[0].value = p.writes_frame;
        rops[1].kind = repl::ReplOp::Kind::kTxnCommit;
        rops[1].key = txn::TxnIdKey(id);
        repl::EncodeBatch(rops, &p.record_frame);
        recs_[coord].push_back(p.record_frame);
        ++next_seq[coord];
      } else {
        for (Part& p : t.parts) {
          p.prepare_seq = next_seq[p.shard];
          std::vector<repl::ReplOp> rops(1);
          rops[0].kind = repl::ReplOp::Kind::kTxnPrepare;
          rops[0].key = txn::TxnIdKey(id);
          rops[0].field = coord;
          rops[0].value = p.writes_frame;
          repl::EncodeBatch(rops, &p.record_frame);
          recs_[p.shard].push_back(p.record_frame);
          ++next_seq[p.shard];
        }
        txn::Decision d;
        for (const Part& p : t.parts) {
          d.parts.push_back({p.shard, p.prepare_seq, p.writes_frame});
        }
        std::vector<repl::ReplOp> drops(1);
        drops[0].kind = repl::ReplOp::Kind::kTxnCommit;
        drops[0].key = txn::TxnIdKey(id);
        txn::EncodeDecision(d, &drops[0].value);
        repl::EncodeBatch(drops, &t.decision_frame);
        recs_[coord].push_back(t.decision_frame);
        ++next_seq[coord];
        std::vector<repl::ReplOp> mrops(1);
        mrops[0].kind = repl::ReplOp::Kind::kTxnCommit;
        mrops[0].key = txn::TxnIdKey(id);
        repl::EncodeBatch(mrops, &t.marker_frame);
        for (size_t j = 1; j < t.parts.size(); ++j) {
          recs_[t.parts[j].shard].push_back(t.marker_frame);
          ++next_seq[t.parts[j].shard];
        }
      }
      for (uint32_t s = 0; s < kShards; ++s) {
        cum_[s][i + 1] = next_seq[s] - 1;
      }
      txns_.push_back(std::move(t));
    }
  }

  const std::string& name() const override { return name_; }
  size_t op_count() const override { return txns_.size(); }

  void Setup(JnvmRuntime& rt) override {
    shards_.clear();
    kvs_.clear();
    logs_.clear();
    for (uint32_t s = 0; s < kShards; ++s) {
      auto backend = std::make_unique<store::JpdtBackend>(
          &rt, StoreRoot(s), /*initial_capacity=*/4);
      kvs_.push_back(std::make_unique<store::KvStore>(backend.get(), nullptr,
                                                      UncachedStore()));
      shards_.push_back(std::move(backend));
      logs_.push_back(repl::ReplLog::OpenOrCreate(&rt, LogRoot(s), LogOpts()));
    }
    rt.Psync();
  }

  void RunOp(JnvmRuntime& rt, size_t i) override {
    const Txn& t = txns_[i];
    if (t.single) {
      // Single-shard fast path: one sealed record, then the post-seal apply.
      AppendRecord(rt, t.parts[0].shard, t.parts[0].record_frame);
      ApplyWrites(rt, t.parts[0].shard, t.parts[0].writes);
      return;
    }
    for (const Part& p : t.parts) {
      AppendRecord(rt, p.shard, p.record_frame);  // phase 1: prepares seal
    }
    const uint32_t coord = t.parts[0].shard;
    AppendRecord(rt, coord, t.decision_frame);    // phase 2: commit point
    ApplyWrites(rt, coord, t.parts[0].writes);
    for (size_t j = 1; j < t.parts.size(); ++j) { // phase 3: markers + applies
      AppendRecord(rt, t.parts[j].shard, t.marker_frame);
      ApplyWrites(rt, t.parts[j].shard, t.parts[j].writes);
    }
  }

  void Check(JnvmRuntime& rt, const CrashCut& cut,
             std::vector<std::string>* out) override {
    const size_t n = txns_.size();
    // Recover each shard exactly like Shard::Open: reopen store + log, scan
    // the records below the tail for txn state, then redo the tail record.
    std::vector<std::unique_ptr<store::JpdtBackend>> backends;
    std::vector<std::unique_ptr<store::KvStore>> kvs;
    std::vector<std::unique_ptr<repl::ReplLog>> logs;
    std::vector<txn::LogScanResult> scans(kShards);
    std::vector<txn::DecisionIndex> indexes(kShards);
    for (uint32_t s = 0; s < kShards; ++s) {
      backends.push_back(std::make_unique<store::JpdtBackend>(
          &rt, StoreRoot(s), /*initial_capacity=*/4));
      kvs.push_back(std::make_unique<store::KvStore>(backends[s].get(), nullptr,
                                                     UncachedStore()));
      logs.push_back(repl::ReplLog::OpenOrCreate(&rt, LogRoot(s), LogOpts()));
      auto& log = *logs[s];
      if (log.needs_snapshot()) {
        out->push_back("shard " + std::to_string(s) +
                       " log reports needs_snapshot on a primary");
        continue;
      }
      // Sealed boundary: between the records of the committed ops and those
      // of the in-flight op (any phase of it may or may not have sealed, and
      // an unsealed append whose lines all survived counts as retained).
      const uint64_t sealed = log.next_seq() - 1;
      const uint64_t lo = cum_[s][std::min(cut.committed, n)];
      const uint64_t hi = cut.in_flight.has_value()
                              ? cum_[s][std::min(*cut.in_flight + 1, n)]
                              : lo;
      if (sealed < lo || sealed > hi) {
        out->push_back("shard " + std::to_string(s) + " log retains " +
                       std::to_string(sealed) + " records, want [" +
                       std::to_string(lo) + ", " + std::to_string(hi) + "]");
        continue;
      }
      std::string payload;
      for (uint64_t q = log.start_seq(); q < log.next_seq(); ++q) {
        if (!log.Read(q, &payload)) {
          out->push_back("shard " + std::to_string(s) + " record " +
                         std::to_string(q) + " unreadable");
        } else if (payload != recs_[s][q - 1]) {
          out->push_back("shard " + std::to_string(s) + " record " +
                         std::to_string(q) + " does not match the script");
        }
      }
      if (!log.empty()) {
        txn::ScanLogForTxns(log, log.next_seq() - 1, &scans[s]);
        if (log.Read(log.next_seq() - 1, &payload)) {
          std::vector<repl::ReplOp> ops;
          if (repl::DecodeBatch(payload, &ops)) {
            txn::ReplayRecordOps(&rt, kvs[s].get(), ops, &scans[s]);
          } else {
            out->push_back("shard " + std::to_string(s) +
                           " tail record corrupt");
          }
        }
        for (auto& [id, st] : scans[s].staged) {
          if (st.prepare_seq == 0) {
            st.prepare_seq = log.next_seq() - 1;
          }
        }
      }
      for (const auto& [id, sd] : scans[s].decisions) {
        indexes[s].Add(id, sd.first, sd.second);
      }
    }
    rt.Psync();

    // Cross-shard resolution, exactly Server::ResolveCrossShardTxns: every
    // prepared-but-undecided txn commits iff its coordinator's recovered log
    // holds the sealed decision, else it aborts (staged writes dropped).
    std::vector<txn::ShardTxnView> views(kShards);
    for (uint32_t s = 0; s < kShards; ++s) {
      for (const auto& [id, st] : scans[s].staged) {
        views[s].undecided.emplace_back(id, st.coordinator);
      }
      views[s].decisions = &indexes[s];
      views[s].log_next_seq = logs[s]->next_seq();
    }
    for (const txn::ResolutionAction& a : txn::PlanResolution(views)) {
      if (!a.commit) {
        continue;
      }
      std::vector<repl::ReplOp> writes;
      if (a.repair) {
        // Unreachable single-node (a decision seals only after every prepare
        // Psync retired), but resolve it the way PROMOTE would.
        if (!repl::DecodeBatch(a.repair_writes_frame, &writes)) {
          out->push_back("resolution repair frame corrupt");
          continue;
        }
      } else {
        const auto it = scans[a.shard].staged.find(a.id);
        if (it == scans[a.shard].staged.end()) {
          out->push_back("resolution commit for unstaged txn " +
                         std::to_string(a.id));
          continue;
        }
        writes = it->second.writes;
      }
      txn::ApplyStagedWrites(&rt, kvs[a.shard].get(), writes);
    }
    rt.Psync();

    // Oracle: txn i is decided iff the coordinator's recovered log reached
    // the end of op i's coordinator slice — single-shard: the combined
    // record; cross-shard: prepare + decision. Everything it wrote must be
    // visible on every participant; an undecided txn must have no effect.
    std::vector<bool> decided(n, false);
    for (size_t i = 0; i < n; ++i) {
      const uint32_t coord = txns_[i].parts[0].shard;
      decided[i] = logs[coord]->next_seq() - 1 >= cum_[coord][i + 1];
    }
    std::map<std::string, std::string> expected[kShards];
    for (size_t i = 0; i < n; ++i) {
      if (!decided[i]) {
        continue;
      }
      for (const Part& p : txns_[i].parts) {
        for (const repl::ReplOp& w : p.writes) {
          if (w.kind == repl::ReplOp::Kind::kDel) {
            expected[p.shard].erase(w.key);
          } else {
            expected[p.shard][w.key] =
                w.record.fields.empty() ? std::string("<empty>")
                                        : w.record.fields[0];
          }
        }
      }
    }
    for (uint32_t s = 0; s < kShards; ++s) {
      std::map<std::string, std::string> got;
      backends[s]->SnapshotRecords(
          [&](const std::string& k, const store::Record& r) {
            got[k] = r.fields.empty() ? std::string("<empty>") : r.fields[0];
          });
      for (const auto& [k, v] : expected[s]) {
        const auto it = got.find(k);
        if (it == got.end()) {
          out->push_back("atomicity: shard " + std::to_string(s) +
                         " lost decided-txn key " + k + " (partial apply)");
        } else if (it->second != v) {
          out->push_back("atomicity: shard " + std::to_string(s) + " key " +
                         k + " has '" + it->second + "', want '" + v + "'");
        }
      }
      for (const auto& [k, v] : got) {
        if (expected[s].count(k) == 0) {
          out->push_back("atomicity: shard " + std::to_string(s) +
                         " phantom key " + k +
                         " (undecided txn left a store effect)");
        }
      }
    }
    rt.Psync();  // leave the heap quiescent for the checker's I1–I7 audit
  }

 private:
  static repl::ReplLogOptions LogOpts() {
    // Roomy segments: the oracle equates "decided" with "record retained",
    // so the sweep must never truncate a record it still reasons about.
    repl::ReplLogOptions o;
    o.segment_bytes = 32768;
    o.max_segments = 8;
    return o;
  }
  static store::StoreOptions UncachedStore() {
    store::StoreOptions o;
    o.cache_ratio = 0.0;
    o.expected_records = 16;
    return o;
  }
  static std::string StoreRoot(uint32_t s) { return "shard" + std::to_string(s); }
  static std::string LogRoot(uint32_t s) { return "txnlog" + std::to_string(s); }

  void AppendRecord(JnvmRuntime& rt, uint32_t s, const std::string& frame) {
    rt.heap().BeginGroupCommit();
    logs_[s]->Append(logs_[s]->next_seq(), frame);
    rt.heap().EndGroupCommit();
    rt.Psync();  // the record is sealed exactly here
  }

  void ApplyWrites(JnvmRuntime& rt, uint32_t s,
                   const std::vector<repl::ReplOp>& writes) {
    rt.heap().BeginGroupCommit();
    txn::ApplyStagedWrites(&rt, kvs_[s].get(), writes);
    rt.heap().EndGroupCommit();
    rt.Psync();
    rt.DrainGroupFrees();
  }

  std::string name_;
  std::vector<Txn> txns_;
  std::vector<std::string> recs_[kShards];  // per-shard record frames, in order
  std::vector<uint64_t> cum_[kShards];      // records through op i (index i+1)
  std::vector<std::unique_ptr<store::JpdtBackend>> shards_;
  std::vector<std::unique_ptr<store::KvStore>> kvs_;
  std::vector<std::unique_ptr<repl::ReplLog>> logs_;
};

// ---- Cluster slot-migration workload (DESIGN.md §10) -------------------------
//
// Models a live slot handoff end to end with BOTH sides' persistent state in
// one heap: two ClusterState roots (source node 0, destination node 1) plus
// one J-PDT backend per side. The script is the migration protocol laid out
// as checker ops — source writes, StartImporting/StartMigrating, the copy
// stream, catch-up writes, EnterHandoff, the post-freeze drain, CommitImport
// (THE commit point), FinishMigration, then post-migration writes routed to
// the new owner — so the sweep crashes inside every persistence point of the
// state machine, including the multi-line owner-range rewrites.
//
// Oracle: recovery must land the two slot tables in a state the crash cut
// allows (migrating rolls back, handoff stays frozen until an owner word
// proves the flip, a committed import owns the range), no slot may ever be
// served by both nodes (split-brain), and each side's store must equal the
// DRAM replay of its committed ops with the usual old-or-new allowance for
// the one in-flight op.

class MigrateWorkload final : public Workload {
 public:
  static constexpr uint32_t kLo = 0;
  static constexpr uint32_t kHi = 8191;  // half the slot space moves

  enum class Kind : uint8_t {
    kSrcPut,        // client write at the source (pre-handoff owner)
    kDstPut,        // client write at the destination (post-commit owner)
    kCopy,          // MIGAPPLY: ship one key's current value to the dest
    kStartImport,   // dest: MIGSTART accepted
    kStartMigrate,  // source: migration record persisted
    kHandoff,       // source: range frozen
    kCommit,        // dest: owner flip — the migration's commit point
    kFinish,        // source: owner flip + record clear
  };
  struct Op {
    Kind kind;
    std::string key;
    std::string value;
  };

  MigrateWorkload(uint64_t seed, size_t n) : name_("migrate") {
    Xorshift rng(seed);
    // Small key pool spanning both sides of the range boundary.
    std::vector<std::string> pool;
    std::vector<std::string> pool_in;
    for (int i = 0; i < 12; ++i) {
      pool.push_back("mk" + std::to_string(i));
      if (InRange(pool.back())) {
        pool_in.push_back(pool.back());
      }
    }
    JNVM_CHECK(!pool_in.empty() && pool_in.size() < pool.size());

    std::map<std::string, std::string> src;  // build-time value model
    std::set<std::string> dirty;             // in-range keys not yet shipped
    size_t opno = 0;
    auto value = [&](const std::string& k) {
      return "v" + std::to_string(opno) + ":" + k;
    };
    auto src_put = [&](const std::string& k) {
      const std::string v = value(k);
      script_.push_back(Op{Kind::kSrcPut, k, v});
      src[k] = v;
      if (InRange(k)) {
        dirty.insert(k);
      }
      ++opno;
    };
    auto copy_dirty = [&]() {
      for (const std::string& k : dirty) {  // std::set: deterministic order
        script_.push_back(Op{Kind::kCopy, k, src[k]});
        ++opno;
      }
      dirty.clear();
    };

    const size_t chunk = n / 3 + 2;
    for (size_t i = 0; i < chunk; ++i) {  // steady state before the move
      src_put(pool[rng.NextBelow(pool.size())]);
    }
    script_.push_back(Op{Kind::kStartImport, {}, {}});
    script_.push_back(Op{Kind::kStartMigrate, {}, {}});
    opno += 2;
    copy_dirty();  // snapshot copy of every live in-range key
    for (size_t i = 0; i < chunk; ++i) {  // writes racing the copy stream
      src_put(pool[rng.NextBelow(pool.size())]);
    }
    copy_dirty();  // catch-up round
    src_put(pool_in[0]);  // late writes the post-freeze drain must ship
    src_put(pool_in[pool_in.size() - 1]);
    script_.push_back(Op{Kind::kHandoff, {}, {}});
    ++opno;
    copy_dirty();  // the drain: tail records shipped after the freeze
    script_.push_back(Op{Kind::kCommit, {}, {}});
    script_.push_back(Op{Kind::kFinish, {}, {}});
    opno += 2;
    for (size_t i = 0; i < chunk; ++i) {  // the new owner takes the writes
      const std::string& k = pool[rng.NextBelow(pool.size())];
      if (InRange(k)) {
        script_.push_back(Op{Kind::kDstPut, k, value(k)});
        ++opno;
      } else {
        src_put(k);
      }
    }
  }

  const std::string& name() const override { return name_; }
  size_t op_count() const override { return script_.size(); }

  void Setup(JnvmRuntime& rt) override {
    src_cs_.reset();
    dst_cs_.reset();
    src_be_.reset();
    dst_be_.reset();
    src_cs_ = cluster::ClusterState::Bind(&rt, "cluster.src", 0, "src:1");
    dst_cs_ = cluster::ClusterState::Bind(&rt, "cluster.dst", 1, "dst:2");
    std::string err;
    for (cluster::ClusterState* cs : {src_cs_.get(), dst_cs_.get()}) {
      JNVM_CHECK(cs->Meet(0, "src:1", &err));
      JNVM_CHECK(cs->Meet(1, "dst:2", &err));
      JNVM_CHECK(cs->AssignRange(0, cluster::kNumSlots - 1, 0, &err));
    }
    src_be_ = std::make_unique<store::JpdtBackend>(&rt, "mig.src",
                                                   /*initial_capacity=*/4);
    dst_be_ = std::make_unique<store::JpdtBackend>(&rt, "mig.dst",
                                                   /*initial_capacity=*/4);
    rt.Psync();
  }

  void RunOp(JnvmRuntime& rt, size_t i) override {
    const Op& op = script_[i];
    std::string err;
    switch (op.kind) {
      case Kind::kSrcPut:
      case Kind::kDstPut:
      case Kind::kCopy: {
        store::Backend* b =
            op.kind == Kind::kSrcPut ? src_be_.get() : dst_be_.get();
        rt.heap().BeginGroupCommit();
        store::Record r;
        r.fields.push_back(op.value);
        b->Put(op.key, r);
        rt.heap().EndGroupCommit();
        rt.Psync();
        rt.DrainGroupFrees();
        return;
      }
      case Kind::kStartImport:
        JNVM_CHECK(dst_cs_->StartImporting(kLo, kHi, 0, &err));
        return;
      case Kind::kStartMigrate:
        JNVM_CHECK(src_cs_->StartMigrating(kLo, kHi, 1, &err));
        return;
      case Kind::kHandoff:
        JNVM_CHECK(src_cs_->EnterHandoff(&err));
        return;
      case Kind::kCommit:
        JNVM_CHECK(dst_cs_->CommitImport(kLo, kHi, src_cs_->epoch() + 1, &err));
        return;
      case Kind::kFinish:
        JNVM_CHECK(src_cs_->FinishMigration(&err));
        return;
    }
  }

  void Check(JnvmRuntime& rt, const CrashCut& cut,
             std::vector<std::string>* out) override {
    // Re-binding runs RecoverLocked — the migration-record recovery rules
    // under test (rollback of `migrating`, frozen or rolled-forward
    // `handoff`, preserved `importing`).
    auto src_cs = cluster::ClusterState::Bind(&rt, "cluster.src", 0, "src:1");
    auto dst_cs = cluster::ClusterState::Bind(&rt, "cluster.dst", 1, "dst:2");
    if (src_cs == nullptr || dst_cs == nullptr) {
      out->push_back("cluster meta root lost");
      return;
    }

    // Recovery may leave only these machine states on each side.
    const cluster::MigState sm = src_cs->mig_state();
    if (sm != cluster::MigState::kNone && sm != cluster::MigState::kHandoff) {
      out->push_back("source recovered in state " +
                     std::to_string(static_cast<uint32_t>(sm)) +
                     " (migrating must roll back)");
    }
    const cluster::MigState dm = dst_cs->mig_state();
    if (dm != cluster::MigState::kNone && dm != cluster::MigState::kImporting) {
      out->push_back("destination recovered in state " +
                     std::to_string(static_cast<uint32_t>(dm)));
    }

    // Fingerprint the recovered tables and match them against the states
    // the cut allows. State-transition ops never change the value maps and
    // writes never change the fingerprint, so the two judgements are
    // independent.
    const State s0 = StateAfter(cut.committed);
    const Op* inflight = cut.in_flight.has_value() &&
                                 *cut.in_flight < script_.size()
                             ? &script_[*cut.in_flight]
                             : nullptr;
    const int src_fp = sm == cluster::MigState::kHandoff ? 1
                       : src_cs->OwnsRange(kLo, kHi)     ? 0
                                                         : 2;
    const int dst_fp = dst_cs->OwnsRange(kLo, kHi) ? 1 : 0;
    bool fp_ok = src_fp == SrcFp(s0) && dst_fp == DstFp(s0);
    if (!fp_ok && inflight != nullptr) {
      const State s1 = StateAfter(*cut.in_flight + 1);
      fp_ok = src_fp == SrcFp(s1) && dst_fp == DstFp(s1);
    }
    if (!fp_ok) {
      out->push_back("slot tables recovered to (src=" +
                     std::to_string(src_fp) + ", dst=" +
                     std::to_string(dst_fp) + "), cut at " +
                     std::to_string(cut.committed) + " allows (src=" +
                     std::to_string(SrcFp(s0)) + ", dst=" +
                     std::to_string(DstFp(s0)) + ")");
    }

    // Split-brain audit: no slot may route kLocal on both nodes, ever.
    for (uint32_t s = 0; s < cluster::kNumSlots; ++s) {
      const auto sr = src_cs->Lookup(static_cast<uint16_t>(s), false);
      const auto dr = dst_cs->Lookup(static_cast<uint16_t>(s), false);
      if (sr.action == cluster::Route::Action::kLocal &&
          dr.action == cluster::Route::Action::kLocal) {
        out->push_back("SPLIT BRAIN: slot " + std::to_string(s) +
                       " served by both nodes");
        return;
      }
    }

    // Value oracle per side: the recovered store equals the committed
    // replay, old-or-new for the in-flight op's key.
    CheckSide(rt, "mig.src", s0.src, InflightFor(inflight, /*src=*/true), out);
    CheckSide(rt, "mig.dst", s0.dst, InflightFor(inflight, /*src=*/false), out);
  }

 private:
  static bool InRange(const std::string& key) {
    const uint16_t s = cluster::SlotForKey(key);
    return s >= kLo && s <= kHi;
  }

  struct State {
    std::map<std::string, std::string> src;
    std::map<std::string, std::string> dst;
    bool handoff = false;
    bool committed = false;
    bool finished = false;
  };

  State StateAfter(size_t j) const {
    State st;
    for (size_t i = 0; i < j && i < script_.size(); ++i) {
      const Op& op = script_[i];
      switch (op.kind) {
        case Kind::kSrcPut:
          st.src[op.key] = op.value;
          break;
        case Kind::kDstPut:
        case Kind::kCopy:
          st.dst[op.key] = op.value;
          break;
        case Kind::kHandoff:
          st.handoff = true;
          break;
        case Kind::kCommit:
          st.committed = true;
          break;
        case Kind::kFinish:
          st.finished = true;
          break;
        default:
          break;
      }
    }
    return st;
  }

  // Source table after recovery: 0 = owns the range and serves it (an
  // interrupted `migrating` rolls back here), 1 = frozen in handoff,
  // 2 = flipped to the peer.
  static int SrcFp(const State& s) {
    return s.finished ? 2 : (s.handoff ? 1 : 0);
  }
  // Destination table: 1 once the import committed.
  static int DstFp(const State& s) { return s.committed ? 1 : 0; }

  // The in-flight op's key on this side, if any (old-or-new allowance).
  static const Op* InflightFor(const Op* inflight, bool src) {
    if (inflight == nullptr) {
      return nullptr;
    }
    const bool on_src = inflight->kind == Kind::kSrcPut;
    const bool on_dst =
        inflight->kind == Kind::kDstPut || inflight->kind == Kind::kCopy;
    return (src ? on_src : on_dst) ? inflight : nullptr;
  }

  static void CheckSide(JnvmRuntime& rt, const std::string& root,
                        const std::map<std::string, std::string>& want,
                        const Op* inflight, std::vector<std::string>* out) {
    auto map = rt.root().GetAs<pdt::PStringHashMap>(root);
    if (map == nullptr) {
      out->push_back("store root " + root + " lost");
      return;
    }
    std::map<std::string, std::string> got;
    map->ForEach([&](const std::string& k, Handle<PObject> v) {
      auto rec = std::static_pointer_cast<store::PRecord>(v);
      const store::Record r = rec->ToRecord();
      got[k] = r.fields.empty() ? std::string("<empty>") : r.fields[0];
    });
    for (const auto& [k, v] : want) {
      if (inflight != nullptr && inflight->key == k) {
        continue;  // judged below
      }
      const auto it = got.find(k);
      if (it == got.end()) {
        out->push_back(root + ": committed key " + k + " lost");
      } else if (it->second != v) {
        out->push_back(root + ": key " + k + " has '" + it->second +
                       "', want '" + v + "'");
      }
    }
    for (const auto& [k, v] : got) {
      if (want.count(k) == 0 && (inflight == nullptr || inflight->key != k)) {
        out->push_back(root + ": phantom key " + k);
      }
    }
    if (inflight != nullptr) {
      const auto it = got.find(inflight->key);
      const auto old_it = want.find(inflight->key);
      if (it == got.end()) {
        if (old_it != want.end()) {
          out->push_back(root + ": in-flight put erased key " + inflight->key);
        }
      } else {
        const bool is_old = old_it != want.end() && it->second == old_it->second;
        const bool is_new = it->second == inflight->value;
        if (!is_old && !is_new) {
          out->push_back(root + ": in-flight op left torn value '" +
                         it->second + "' for key " + inflight->key);
        }
      }
    }
  }

  std::string name_;
  std::vector<Op> script_;
  std::unique_ptr<cluster::ClusterState> src_cs_;
  std::unique_ptr<cluster::ClusterState> dst_cs_;
  std::unique_ptr<store::JpdtBackend> src_be_;
  std::unique_ptr<store::JpdtBackend> dst_be_;
};

}  // namespace

std::vector<std::string> WorkloadKinds() {
  return {"map-hash", "map-tree",   "map-skip", "map-long", "set",  "array",
          "string",   "pfa",        "server",   "repl",     "repl-apply",
          "wait",     "read-your-writes",       "txn",      "migrate",
          "ckpt"};
}

std::unique_ptr<Workload> MakeWorkload(const std::string& kind,
                                       uint64_t script_seed, size_t op_count) {
  if (kind == "map-hash") {
    return std::make_unique<MapWorkload<pdt::PStringHashMap>>("map-hash",
                                                              script_seed, op_count);
  }
  if (kind == "map-tree") {
    return std::make_unique<MapWorkload<pdt::PStringTreeMap>>("map-tree",
                                                              script_seed, op_count);
  }
  if (kind == "map-skip") {
    return std::make_unique<MapWorkload<pdt::PStringSkipListMap>>("map-skip",
                                                                  script_seed, op_count);
  }
  if (kind == "map-long") {
    return std::make_unique<MapWorkload<pdt::PLongHashMap>>("map-long",
                                                            script_seed, op_count);
  }
  if (kind == "set") {
    return std::make_unique<SetWorkload>(script_seed, op_count);
  }
  if (kind == "array") {
    return std::make_unique<ArrayWorkload>(script_seed, op_count);
  }
  if (kind == "string") {
    return std::make_unique<RootStringWorkload>("string", script_seed, op_count,
                                                /*faulty=*/false);
  }
  if (kind == "pfa") {
    return std::make_unique<PfaWorkload>(script_seed, op_count);
  }
  if (kind == "server") {
    return std::make_unique<ServerWorkload>(script_seed, op_count);
  }
  if (kind == "repl") {
    return std::make_unique<ReplWorkload>(script_seed, op_count);
  }
  if (kind == "repl-apply") {
    return std::make_unique<ReplApplyWorkload>(script_seed, op_count);
  }
  if (kind == "wait") {
    return std::make_unique<WaitWorkload>(script_seed, op_count);
  }
  if (kind == "read-your-writes") {
    return std::make_unique<ReadYourWritesWorkload>(script_seed, op_count);
  }
  if (kind == "txn") {
    return std::make_unique<TxnWorkload>(script_seed, op_count);
  }
  if (kind == "migrate") {
    return std::make_unique<MigrateWorkload>(script_seed, op_count);
  }
  if (kind == "ckpt") {
    return std::make_unique<CkptWorkload>(script_seed, op_count);
  }
  JNVM_CHECK_MSG(false, ("unknown crashcheck workload: " + kind).c_str());
  return nullptr;
}

std::unique_ptr<Workload> MakeFaultyWorkload(uint64_t script_seed, size_t op_count) {
  return std::make_unique<RootStringWorkload>("faulty-string", script_seed,
                                              op_count, /*faulty=*/true);
}

}  // namespace jnvm::crashcheck
