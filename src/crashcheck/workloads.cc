#include "src/crashcheck/workloads.h"

#include <map>
#include <set>

#include "src/common/rand.h"
#include "src/pdt/pext_array.h"
#include "src/pdt/pmap.h"
#include "src/pdt/pstring.h"
#include "src/server/shard.h"
#include "src/store/jpdt_backend.h"

namespace jnvm::crashcheck {
namespace {

using core::Handle;
using core::JnvmRuntime;
using core::PObject;

// ---- Script helpers ---------------------------------------------------------

template <typename K>
struct KeyMaker;

template <>
struct KeyMaker<std::string> {
  static std::string Make(int i) { return "k" + std::to_string(i); }
  static std::string Print(const std::string& k) { return k; }
};

template <>
struct KeyMaker<int64_t> {
  static int64_t Make(int i) { return 1000 + i; }
  static std::string Print(int64_t k) { return std::to_string(k); }
};

// Unique per-op values so a lost or stale update is always distinguishable.
// Padded values exceed the pool slot limit and take the chained-block
// representation, so both PString layouts are swept.
std::string ValueFor(size_t i, bool padded) {
  std::string v = "v" + std::to_string(i);
  if (padded) {
    v += std::string(220, 'x');
  }
  return v;
}

std::string PrintString(const Handle<PObject>& v) {
  auto s = std::static_pointer_cast<pdt::PString>(v);
  return s == nullptr ? std::string("<null>") : s->Str();
}

// ---- Map workload (hash / tree / skip-list / long-key adapters) -------------

template <typename MapT>
class MapWorkload final : public Workload {
 public:
  using VKey = typename MapT::VKey;
  struct Op {
    bool remove = false;
    VKey key;
    std::string value;
  };

  MapWorkload(std::string name, uint64_t seed, size_t n) : name_(std::move(name)) {
    Xorshift rng(seed);
    std::set<VKey> live;
    script_.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      const VKey key = KeyMaker<VKey>::Make(static_cast<int>(rng.NextBelow(12)));
      if (live.count(key) != 0 && rng.NextBelow(4) == 0) {
        script_.push_back(Op{true, key, {}});
        live.erase(key);
      } else {
        script_.push_back(Op{false, key, ValueFor(i, rng.NextBelow(6) == 0)});
        live.insert(key);
      }
    }
  }

  const std::string& name() const override { return name_; }
  size_t op_count() const override { return script_.size(); }

  void Setup(JnvmRuntime& rt) override {
    map_.reset();
    map_ = std::make_shared<MapT>(rt, 4);  // small: the growth path is swept
    map_->Pwb();
    map_->Validate();
    rt.root().Put("m", map_.get());
    rt.Psync();
  }

  void RunOp(JnvmRuntime& rt, size_t i) override {
    const Op& op = script_[i];
    if (op.remove) {
      map_->Remove(op.key);
    } else {
      pdt::PString v(rt, op.value);
      map_->Put(op.key, &v);
    }
  }

  void Check(JnvmRuntime& rt, const CrashCut& cut,
             std::vector<std::string>* out) override {
    auto m = rt.root().GetAs<MapT>("m");
    if (m == nullptr) {
      out->push_back("map root binding lost");
      return;
    }
    // Oracle state: the committed prefix, replayed in DRAM.
    std::map<VKey, std::string> expected;
    for (size_t i = 0; i < cut.committed; ++i) {
      const Op& op = script_[i];
      if (op.remove) {
        expected.erase(op.key);
      } else {
        expected[op.key] = op.value;
      }
    }
    // The application view (mirror) ...
    std::map<VKey, std::string> got;
    m->ForEach([&](const VKey& k, Handle<PObject> v) { got[k] = PrintString(v); });
    // ... must agree with the durable cells.
    std::map<VKey, std::string> durable;
    m->ForEachPersisted(
        [&](const VKey& k, Handle<PObject> v) { durable[k] = PrintString(v); });
    if (durable != got) {
      out->push_back("mirror diverges from the persistent cells");
    }
    if (m->Size() != got.size()) {
      out->push_back("map Size() != number of mirrored entries");
    }

    const Op* inflight = cut.in_flight.has_value() && *cut.in_flight < script_.size()
                             ? &script_[*cut.in_flight]
                             : nullptr;
    for (const auto& [k, v] : expected) {
      if (inflight != nullptr && k == inflight->key) {
        continue;  // judged below
      }
      auto it = got.find(k);
      if (it == got.end()) {
        out->push_back("committed key " + KeyMaker<VKey>::Print(k) + " lost");
      } else if (it->second != v) {
        out->push_back("committed key " + KeyMaker<VKey>::Print(k) +
                       " has value '" + it->second + "', want '" + v + "'");
      }
    }
    for (const auto& [k, v] : got) {
      if (expected.count(k) == 0 && (inflight == nullptr || k != inflight->key)) {
        out->push_back("phantom key " + KeyMaker<VKey>::Print(k));
      }
    }
    if (inflight != nullptr) {
      // The interrupted op must be all-or-nothing.
      const auto it = got.find(inflight->key);
      const auto old_it = expected.find(inflight->key);
      if (it == got.end()) {
        if (!inflight->remove && old_it != expected.end()) {
          out->push_back("in-flight put erased pre-existing key " +
                         KeyMaker<VKey>::Print(inflight->key));
        }
      } else {
        const bool is_old = old_it != expected.end() && it->second == old_it->second;
        const bool is_new = !inflight->remove && it->second == inflight->value;
        if (!is_old && !is_new) {
          out->push_back("in-flight op left torn value '" + it->second +
                         "' for key " + KeyMaker<VKey>::Print(inflight->key));
        }
      }
    }
  }

 private:
  std::string name_;
  std::vector<Op> script_;
  Handle<MapT> map_;
};

// ---- Set workload (PSet adapter over the hash map) --------------------------

class SetWorkload final : public Workload {
 public:
  struct Op {
    bool remove = false;
    std::string key;
  };

  SetWorkload(uint64_t seed, size_t n) : name_("set") {
    Xorshift rng(seed);
    std::set<std::string> live;
    script_.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      const std::string key = "e" + std::to_string(rng.NextBelow(14));
      if (live.count(key) != 0 && rng.NextBelow(3) == 0) {
        script_.push_back(Op{true, key});
        live.erase(key);
      } else {
        script_.push_back(Op{false, key});
        live.insert(key);
      }
    }
  }

  const std::string& name() const override { return name_; }
  size_t op_count() const override { return script_.size(); }

  void Setup(JnvmRuntime& rt) override {
    set_.reset();
    auto storage = std::make_shared<pdt::PStringHashMap>(rt, 4);
    storage->Pwb();
    storage->Validate();
    rt.root().Put("s", storage.get());
    rt.Psync();
    set_ = std::make_unique<pdt::PStringHashSet>(std::move(storage));
  }

  void RunOp(JnvmRuntime& rt, size_t i) override {
    const Op& op = script_[i];
    if (op.remove) {
      set_->Remove(op.key);
    } else {
      set_->Add(op.key);
    }
  }

  void Check(JnvmRuntime& rt, const CrashCut& cut,
             std::vector<std::string>* out) override {
    auto storage = rt.root().GetAs<pdt::PStringHashMap>("s");
    if (storage == nullptr) {
      out->push_back("set root binding lost");
      return;
    }
    pdt::PStringHashSet set(storage);
    std::set<std::string> expected;
    for (size_t i = 0; i < cut.committed; ++i) {
      const Op& op = script_[i];
      if (op.remove) {
        expected.erase(op.key);
      } else {
        expected.insert(op.key);
      }
    }
    std::set<std::string> got;
    set.ForEach([&](const std::string& k) { got.insert(k); });

    const Op* inflight = cut.in_flight.has_value() && *cut.in_flight < script_.size()
                             ? &script_[*cut.in_flight]
                             : nullptr;
    for (const std::string& k : expected) {
      if (inflight != nullptr && k == inflight->key) {
        continue;
      }
      if (got.count(k) == 0) {
        out->push_back("committed set element " + k + " lost");
      }
      if (!set.Contains(k)) {
        out->push_back("Contains() denies committed element " + k);
      }
    }
    for (const std::string& k : got) {
      if (expected.count(k) == 0 && (inflight == nullptr || k != inflight->key)) {
        out->push_back("phantom set element " + k);
      }
    }
    // In-flight add/remove: present-or-absent are both fine; nothing to do.
  }

 private:
  std::string name_;
  std::vector<Op> script_;
  std::unique_ptr<pdt::PStringHashSet> set_;
};

// ---- Extensible-array workload ----------------------------------------------

class ArrayWorkload final : public Workload {
 public:
  struct Op {
    bool pop = false;
    std::string value;
  };

  ArrayWorkload(uint64_t seed, size_t n) : name_("array") {
    Xorshift rng(seed);
    size_t size = 0;
    script_.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      if (size > 0 && rng.NextBelow(4) == 0) {
        script_.push_back(Op{true, {}});
        --size;
      } else {
        script_.push_back(Op{false, ValueFor(i, rng.NextBelow(8) == 0)});
        ++size;
      }
    }
  }

  const std::string& name() const override { return name_; }
  size_t op_count() const override { return script_.size(); }

  void Setup(JnvmRuntime& rt) override {
    arr_.reset();
    arr_ = std::make_shared<pdt::PExtArray>(rt, 2);  // grows repeatedly
    arr_->Pwb();
    arr_->Validate();
    rt.root().Put("arr", arr_.get());
    rt.Psync();
  }

  void RunOp(JnvmRuntime& rt, size_t i) override {
    const Op& op = script_[i];
    if (op.pop) {
      arr_->PopBack();
    } else {
      pdt::PString s(rt, op.value);
      arr_->Append(&s);
    }
  }

  void Check(JnvmRuntime& rt, const CrashCut& cut,
             std::vector<std::string>* out) override {
    auto arr = rt.root().GetAs<pdt::PExtArray>("arr");
    if (arr == nullptr) {
      out->push_back("array root binding lost");
      return;
    }
    const uint64_t n = arr->Size();
    std::vector<std::string> got;
    got.reserve(n);
    for (uint64_t i = 0; i < n; ++i) {
      const auto s = std::static_pointer_cast<pdt::PString>(arr->Get(i));
      if (s == nullptr) {
        out->push_back("torn element: index " + std::to_string(i) +
                       " below Size() is null");
        return;
      }
      got.push_back(s->Str());
    }
    // Append's count bump is queued but only the *next* op's fence seals it
    // (§4.3.1: losing the bump loses the append), so the recovered array may
    // trail the committed cut by one op — or lead it by one if the in-flight
    // op landed. Accept the state after j ops for j in [committed-1,
    // committed+1]; anything else is a violation.
    const size_t lo = cut.committed == 0 ? 0 : cut.committed - 1;
    const size_t hi = std::min(script_.size(), cut.committed + 1);
    for (size_t j = lo; j <= hi; ++j) {
      if (StateAfter(j) == got) {
        return;
      }
    }
    out->push_back("array state (size " + std::to_string(got.size()) +
                   ") matches no op prefix in [" + std::to_string(lo) + ", " +
                   std::to_string(hi) + "] (committed " +
                   std::to_string(cut.committed) + ")");
  }

 private:
  std::vector<std::string> StateAfter(size_t j) const {
    std::vector<std::string> st;
    for (size_t i = 0; i < j; ++i) {
      if (script_[i].pop) {
        st.pop_back();
      } else {
        st.push_back(script_[i].value);
      }
    }
    return st;
  }

  std::string name_;
  std::vector<Op> script_;
  Handle<pdt::PExtArray> arr_;
};

// ---- Root-map + PString workload --------------------------------------------
//
// Publishes pool-sized and chained strings under a rotating set of root
// bindings. RootMap::Put/Remove are failure-atomic, so every committed op
// is durable and the in-flight op is all-or-nothing.

class RootStringWorkload final : public Workload {
 public:
  struct Op {
    bool remove = false;
    std::string key;
    std::string value;
  };

  RootStringWorkload(std::string name, uint64_t seed, size_t n, bool faulty)
      : name_(std::move(name)), faulty_(faulty) {
    Xorshift rng(seed);
    std::set<std::string> live;
    script_.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      // The faulty variant uses per-op keys: every op takes the insert
      // path, which never fences — that is the planted bug.
      const std::string key = faulty_ ? "f" + std::to_string(i)
                                      : "s" + std::to_string(rng.NextBelow(6));
      if (!faulty_ && live.count(key) != 0 && rng.NextBelow(5) == 0) {
        script_.push_back(Op{true, key, {}});
        live.erase(key);
      } else {
        script_.push_back(Op{false, key, "w" + ValueFor(i, rng.NextBelow(3) == 0)});
        live.insert(key);
      }
    }
  }

  const std::string& name() const override { return name_; }
  size_t op_count() const override { return script_.size(); }

  void Setup(JnvmRuntime& rt) override { rt.Psync(); }

  void RunOp(JnvmRuntime& rt, size_t i) override {
    const Op& op = script_[i];
    if (op.remove) {
      rt.root().Remove(op.key);
      return;
    }
    pdt::PString v(rt, op.value);
    if (faulty_) {
      v.Pwb();
      v.Validate();
      rt.root().Wput(op.key, &v);  // planted bug: no publication fence
    } else {
      rt.root().Put(op.key, &v);
    }
  }

  void Check(JnvmRuntime& rt, const CrashCut& cut,
             std::vector<std::string>* out) override {
    std::map<std::string, std::string> expected;
    for (size_t i = 0; i < cut.committed; ++i) {
      const Op& op = script_[i];
      if (op.remove) {
        expected.erase(op.key);
      } else {
        expected[op.key] = op.value;
      }
    }
    const Op* inflight = cut.in_flight.has_value() && *cut.in_flight < script_.size()
                             ? &script_[*cut.in_flight]
                             : nullptr;
    const std::string prefix = faulty_ ? "f" : "s";
    std::map<std::string, std::string> got;
    for (const std::string& k : rt.root().Keys()) {
      if (k.rfind(prefix, 0) != 0) {
        continue;
      }
      got[k] = PrintString(rt.root().Get(k));
    }
    for (const auto& [k, v] : expected) {
      if (inflight != nullptr && k == inflight->key) {
        continue;
      }
      auto it = got.find(k);
      if (it == got.end()) {
        out->push_back("committed root binding " + k + " lost");
      } else if (it->second != v) {
        out->push_back("committed root binding " + k + " has value '" +
                       it->second + "', want '" + v + "'");
      }
    }
    for (const auto& [k, v] : got) {
      if (expected.count(k) == 0 && (inflight == nullptr || k != inflight->key)) {
        out->push_back("phantom root binding " + k);
      }
    }
    if (inflight != nullptr) {
      const auto it = got.find(inflight->key);
      const auto old_it = expected.find(inflight->key);
      if (it == got.end()) {
        if (!inflight->remove && old_it != expected.end()) {
          out->push_back("in-flight root put erased binding " + inflight->key);
        }
      } else {
        const bool is_old = old_it != expected.end() && it->second == old_it->second;
        const bool is_new = !inflight->remove && it->second == inflight->value;
        if (!is_old && !is_new) {
          out->push_back("in-flight root op left torn value '" + it->second +
                         "' for binding " + inflight->key);
        }
      }
    }
  }

 private:
  std::string name_;
  bool faulty_;
  std::vector<Op> script_;
};

// ---- J-PFA workload ----------------------------------------------------------
//
// Multi-object transfers inside failure-atomic blocks. The oracle checks the
// §4.2 guarantee: the recovered balances equal the committed-prefix state
// with the in-flight block either fully applied or fully absent, and the
// total is conserved unconditionally.

class CrashAccount final : public PObject {
 public:
  static const core::ClassInfo* Class() {
    static const core::ClassInfo* info =
        core::RegisterClass(core::MakeClassInfo<CrashAccount>("crashcheck.Account"));
    return info;
  }

  explicit CrashAccount(core::Resurrect) {}
  CrashAccount(JnvmRuntime& rt, int64_t balance) {
    AllocatePersistent(rt, Class(), 8);
    SetBalance(balance);
  }

  int64_t Balance() const { return ReadField<int64_t>(0); }
  void SetBalance(int64_t v) { WriteField<int64_t>(0, v); }
};

class PfaWorkload final : public Workload {
 public:
  static constexpr int kAccounts = 6;
  static constexpr int64_t kInitial = 1000;

  struct Transfer {
    int from = 0;
    int to = 0;
    int64_t amount = 0;
  };
  struct Op {
    std::vector<Transfer> transfers;  // applied in one outer FA block
    bool nested = false;              // second transfer runs in a nested block
  };

  PfaWorkload(uint64_t seed, size_t n) : name_("pfa") {
    Xorshift rng(seed);
    script_.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      Op op;
      op.transfers.push_back(RandomTransfer(rng));
      if (rng.NextBelow(4) == 0) {
        op.transfers.push_back(RandomTransfer(rng));
        op.nested = rng.NextBelow(2) == 0;
      }
      script_.push_back(std::move(op));
    }
  }

  const std::string& name() const override { return name_; }
  size_t op_count() const override { return script_.size(); }

  void Setup(JnvmRuntime& rt) override {
    accounts_.clear();
    for (int j = 0; j < kAccounts; ++j) {
      auto a = std::make_shared<CrashAccount>(rt, kInitial);
      rt.root().Put("a" + std::to_string(j), a.get());
      accounts_.push_back(std::move(a));
    }
    rt.Psync();
  }

  void RunOp(JnvmRuntime& rt, size_t i) override {
    const Op& op = script_[i];
    rt.FaStart();
    Apply(op.transfers[0]);
    if (op.transfers.size() > 1) {
      if (op.nested) {
        rt.FaStart();
        Apply(op.transfers[1]);
        rt.FaEnd();  // inner end: must not commit (§4.2 nesting)
      } else {
        Apply(op.transfers[1]);
      }
    }
    rt.FaEnd();
  }

  void Check(JnvmRuntime& rt, const CrashCut& cut,
             std::vector<std::string>* out) override {
    std::vector<int64_t> got;
    for (int j = 0; j < kAccounts; ++j) {
      auto a = rt.root().GetAs<CrashAccount>("a" + std::to_string(j));
      if (a == nullptr) {
        out->push_back("account binding a" + std::to_string(j) + " lost");
        return;
      }
      got.push_back(a->Balance());
    }
    int64_t sum = 0;
    for (const int64_t b : got) {
      sum += b;
    }
    if (sum != kAccounts * kInitial) {
      out->push_back("total balance " + std::to_string(sum) + " != " +
                     std::to_string(kAccounts * kInitial) +
                     " — an FA block applied partially");
    }
    const std::vector<int64_t> before = StateAfter(cut.committed);
    if (got == before) {
      return;
    }
    if (cut.in_flight.has_value() && *cut.in_flight < script_.size() &&
        got == StateAfter(*cut.in_flight + 1)) {
      return;  // the in-flight block committed just before the crash
    }
    std::string msg = "balances [";
    for (size_t j = 0; j < got.size(); ++j) {
      msg += (j == 0 ? "" : ",") + std::to_string(got[j]);
    }
    out->push_back(msg + "] match neither the pre- nor post-in-flight state (committed " +
                   std::to_string(cut.committed) + ")");
  }

 private:
  static Transfer RandomTransfer(Xorshift& rng) {
    Transfer t;
    t.from = static_cast<int>(rng.NextBelow(kAccounts));
    t.to = static_cast<int>(rng.NextBelow(kAccounts - 1));
    if (t.to >= t.from) {
      ++t.to;
    }
    t.amount = 1 + static_cast<int64_t>(rng.NextBelow(50));
    return t;
  }

  void Apply(const Transfer& t) {
    accounts_[t.from]->SetBalance(accounts_[t.from]->Balance() - t.amount);
    accounts_[t.to]->SetBalance(accounts_[t.to]->Balance() + t.amount);
  }

  std::vector<int64_t> StateAfter(size_t j) const {
    std::vector<int64_t> st(kAccounts, kInitial);
    for (size_t i = 0; i < j && i < script_.size(); ++i) {
      for (const Transfer& t : script_[i].transfers) {
        st[t.from] -= t.amount;
        st[t.to] += t.amount;
      }
    }
    return st;
  }

  std::string name_;
  std::vector<Op> script_;
  std::vector<Handle<CrashAccount>> accounts_;
};

// ---- Server workload ---------------------------------------------------------
//
// Models the network server's fence-batching path (src/server): commands are
// routed to per-shard J-PDT stores by server::ShardFor, executed in groups
// under Heap::BeginGroupCommit (durability fences elided), sealed by one
// Psync, and only then are the batch's deferred frees drained — exactly the
// Shard::WorkerLoop sequence. One checker "op" is one whole batch.
//
// Oracle (group-commit contract): every sealed batch is fully visible; each
// command of the in-flight batch is independently old-or-new (its elided
// durability fence means it may not have survived, but the retained
// ordering fences forbid torn values); nothing else may differ. Keys are
// distinct within a batch so "old-or-new" is well defined per key.

class ServerWorkload final : public Workload {
 public:
  static constexpr uint32_t kShards = 4;
  static constexpr uint32_t kBatch = 4;

  struct Cmd {
    bool remove = false;
    std::string key;
    std::string value;
  };

  ServerWorkload(uint64_t seed, size_t n) : name_("server") {
    Xorshift rng(seed);
    std::set<std::string> live;
    script_.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      std::vector<Cmd> batch;
      std::set<std::string> used;  // keys distinct within a batch
      for (uint32_t j = 0; j < kBatch; ++j) {
        std::string key;
        do {
          key = "k" + std::to_string(rng.NextBelow(12));
        } while (used.count(key) != 0);
        used.insert(key);
        if (live.count(key) != 0 && rng.NextBelow(4) == 0) {
          batch.push_back(Cmd{true, key, {}});
          live.erase(key);
        } else {
          batch.push_back(
              Cmd{false, key, ValueFor(i * kBatch + j, rng.NextBelow(6) == 0)});
          live.insert(key);
        }
      }
      script_.push_back(std::move(batch));
    }
  }

  const std::string& name() const override { return name_; }
  size_t op_count() const override { return script_.size(); }

  void Setup(JnvmRuntime& rt) override {
    shards_.clear();
    for (uint32_t s = 0; s < kShards; ++s) {
      shards_.push_back(std::make_unique<store::JpdtBackend>(
          &rt, RootName(s), /*initial_capacity=*/4));
    }
    rt.Psync();
  }

  void RunOp(JnvmRuntime& rt, size_t i) override {
    rt.heap().BeginGroupCommit();
    for (const Cmd& c : script_[i]) {
      store::Backend* b = shards_[server::ShardFor(c.key, kShards)].get();
      if (c.remove) {
        b->Delete(c.key);
      } else {
        store::Record r;
        r.fields.push_back(c.value);
        b->Put(c.key, r);
      }
    }
    rt.heap().EndGroupCommit();
    rt.Psync();  // the batch's single durability point
    rt.DrainGroupFrees();
  }

  void Check(JnvmRuntime& rt, const CrashCut& cut,
             std::vector<std::string>* out) override {
    // Oracle state: the sealed batches, replayed in DRAM.
    std::map<std::string, std::string> expected;
    for (size_t i = 0; i < cut.committed; ++i) {
      for (const Cmd& c : script_[i]) {
        if (c.remove) {
          expected.erase(c.key);
        } else {
          expected[c.key] = c.value;
        }
      }
    }
    const std::vector<Cmd>* inflight =
        cut.in_flight.has_value() && *cut.in_flight < script_.size()
            ? &script_[*cut.in_flight]
            : nullptr;

    std::map<std::string, std::string> got;
    for (uint32_t s = 0; s < kShards; ++s) {
      auto map = rt.root().GetAs<pdt::PStringHashMap>(RootName(s));
      if (map == nullptr) {
        out->push_back("shard root binding " + RootName(s) + " lost");
        return;
      }
      map->ForEach([&](const std::string& k, Handle<PObject> v) {
        auto rec = std::static_pointer_cast<store::PRecord>(v);
        const store::Record r = rec->ToRecord();
        got[k] = r.fields.empty() ? std::string("<empty>") : r.fields[0];
        if (server::ShardFor(k, kShards) != s) {
          out->push_back("key " + k + " found on shard " + std::to_string(s) +
                         ", routed to " +
                         std::to_string(server::ShardFor(k, kShards)));
        }
      });
    }

    auto inflight_cmd = [&](const std::string& k) -> const Cmd* {
      if (inflight == nullptr) {
        return nullptr;
      }
      for (const Cmd& c : *inflight) {
        if (c.key == k) {
          return &c;
        }
      }
      return nullptr;
    };

    for (const auto& [k, v] : expected) {
      const Cmd* c = inflight_cmd(k);
      if (c != nullptr) {
        continue;  // judged below
      }
      auto it = got.find(k);
      if (it == got.end()) {
        out->push_back("sealed-batch key " + k + " lost");
      } else if (it->second != v) {
        out->push_back("sealed-batch key " + k + " has value '" + it->second +
                       "', want '" + v + "'");
      }
    }
    for (const auto& [k, v] : got) {
      if (expected.count(k) == 0 && inflight_cmd(k) == nullptr) {
        out->push_back("phantom key " + k);
      }
    }
    if (inflight != nullptr) {
      // Each in-flight command independently old-or-new, never torn.
      for (const Cmd& c : *inflight) {
        const auto it = got.find(c.key);
        const auto old_it = expected.find(c.key);
        if (it == got.end()) {
          if (!c.remove && old_it != expected.end()) {
            out->push_back("in-flight batch erased pre-existing key " + c.key);
          }
          continue;  // absent: old-absent, removed, or unsurvived put
        }
        const bool is_old = old_it != expected.end() && it->second == old_it->second;
        const bool is_new = !c.remove && it->second == c.value;
        if (!is_old && !is_new) {
          out->push_back("in-flight batch left torn value '" + it->second +
                         "' for key " + c.key);
        }
      }
    }
  }

 private:
  static std::string RootName(uint32_t s) {
    return "shard" + std::to_string(s);
  }

  std::string name_;
  std::vector<std::vector<Cmd>> script_;
  std::vector<std::unique_ptr<store::JpdtBackend>> shards_;
};

}  // namespace

std::vector<std::string> WorkloadKinds() {
  return {"map-hash", "map-tree", "map-skip", "map-long", "set",
          "array",    "string",   "pfa",      "server"};
}

std::unique_ptr<Workload> MakeWorkload(const std::string& kind,
                                       uint64_t script_seed, size_t op_count) {
  if (kind == "map-hash") {
    return std::make_unique<MapWorkload<pdt::PStringHashMap>>("map-hash",
                                                              script_seed, op_count);
  }
  if (kind == "map-tree") {
    return std::make_unique<MapWorkload<pdt::PStringTreeMap>>("map-tree",
                                                              script_seed, op_count);
  }
  if (kind == "map-skip") {
    return std::make_unique<MapWorkload<pdt::PStringSkipListMap>>("map-skip",
                                                                  script_seed, op_count);
  }
  if (kind == "map-long") {
    return std::make_unique<MapWorkload<pdt::PLongHashMap>>("map-long",
                                                            script_seed, op_count);
  }
  if (kind == "set") {
    return std::make_unique<SetWorkload>(script_seed, op_count);
  }
  if (kind == "array") {
    return std::make_unique<ArrayWorkload>(script_seed, op_count);
  }
  if (kind == "string") {
    return std::make_unique<RootStringWorkload>("string", script_seed, op_count,
                                                /*faulty=*/false);
  }
  if (kind == "pfa") {
    return std::make_unique<PfaWorkload>(script_seed, op_count);
  }
  if (kind == "server") {
    return std::make_unique<ServerWorkload>(script_seed, op_count);
  }
  JNVM_CHECK_MSG(false, ("unknown crashcheck workload: " + kind).c_str());
  return nullptr;
}

std::unique_ptr<Workload> MakeFaultyWorkload(uint64_t script_seed, size_t op_count) {
  return std::make_unique<RootStringWorkload>("faulty-string", script_seed,
                                              op_count, /*faulty=*/true);
}

}  // namespace jnvm::crashcheck
