// Scripted workloads for the crash-consistency checker (see checker.h).
//
// A workload is a deterministic script of operations against one persistent
// structure plus a DRAM *oracle* that knows, for every crash cut, which
// states the recovered heap is allowed to be in:
//
//   * every operation whose durability fence retired before the crash
//     ("committed") must be fully visible after recovery,
//   * the operation the crash interrupted ("in-flight") must be absent or
//     fully applied — never torn,
//   * nothing else may differ, and structural invariants (mirror matches
//     the persistent cells, `core::integrity` I1–I7) must hold.
//
// Determinism contract: constructing the same workload kind with the same
// (script_seed, op_count) must produce the identical operation script, and
// running it against a fresh heap must produce the identical persistence
// event trace — the checker verifies this with PmemDevice::TraceHash().
//
// Durability fine print per adapter (derived from the J-PDT/J-PFA code,
// §4.1.6, §4.2, §4.3 of the paper):
//   map/set  — Put/Remove/Add fence before returning: committed ⇒ durable.
//   pfa      — FaEnd's commit protocol fences: committed ⇒ durable; the
//              in-flight block is all-or-nothing (§4.2).
//   string   — RootMap::Put/Remove are failure-atomic: same as pfa.
//   array    — PExtArray::Append queues its count bump but the *next*
//              operation's fence seals it (§4.3.1: losing the bump loses
//              the append). The oracle therefore accepts the state after
//              j ∈ {committed-1, committed, committed+1} operations.
//   server   — one op is one fence-batched group (Heap group commit + one
//              Psync, then deferred frees): sealed batches are fully
//              durable; each in-flight-batch command is independently
//              old-or-new, never torn.
//   txn      — one op is one MULTI/EXEC txn through the 2PC record
//              sequence (DESIGN.md §9): committed ⇒ the decision record is
//              sealed and every participant's writes are (re)applied at
//              recovery; an undecided in-flight txn resolves all-or-nothing
//              by the decision's presence — never a partial apply.
//   ckpt     — write batches interleave with fuzzy-checkpoint ops
//              (DESIGN.md §11): Psync → publish [begin,end] in CkptMeta →
//              Pfence → TruncateBelow. Recovery from (image, log tail from
//              the durable begin) must equal full-log replay; meta is
//              old-or-new per field, never an unsafe replay bound.
//   migrate  — one op is one step of a live slot handoff (DESIGN.md §10):
//              writes, copy stream, and the migration state machine of
//              both nodes' slot tables in one heap. Recovery must roll an
//              interrupted `migrating` back, keep `handoff` frozen until
//              an owner word proves the flip, and never let both tables
//              serve a slot (split-brain); stores stay old-or-new.
#ifndef JNVM_SRC_CRASHCHECK_WORKLOADS_H_
#define JNVM_SRC_CRASHCHECK_WORKLOADS_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/core/runtime.h"

namespace jnvm::crashcheck {

// Where the crash fell: operations [0, committed) completed before the
// crash event; `in_flight` is the operation the crash interrupted (absent
// when the script ran to completion).
struct CrashCut {
  size_t committed = 0;
  std::optional<size_t> in_flight;
};

class Workload {
 public:
  virtual ~Workload() = default;

  virtual const std::string& name() const = 0;
  virtual size_t op_count() const = 0;

  // Creates the persistent roots on a freshly formatted runtime and leaves
  // the heap quiescent (Psync'd): crash points are swept over the
  // operations, not over setup.
  virtual void Setup(core::JnvmRuntime& rt) = 0;

  // Executes operation i. May throw nvm::SimulatedCrash.
  virtual void RunOp(core::JnvmRuntime& rt, size_t i) = 0;

  // Validates the recovered heap against the oracle for `cut`. Appends one
  // human-readable message per violated invariant.
  virtual void Check(core::JnvmRuntime& rt, const CrashCut& cut,
                     std::vector<std::string>* violations) = 0;
};

// Registered workload kinds: "map-hash", "map-tree", "map-skip",
// "map-long", "set", "array", "string", "pfa", "server", "repl",
// "repl-apply", "wait", "read-your-writes", "txn", "migrate", "ckpt".
std::vector<std::string> WorkloadKinds();

// Factory; aborts on an unknown kind. `op_count` is the script length;
// `script_seed` drives the op mix.
std::unique_ptr<Workload> MakeWorkload(const std::string& kind,
                                       uint64_t script_seed, size_t op_count);

// A deliberately broken workload (unfenced root-map publication claimed
// durable) used to prove the oracle fires; not part of WorkloadKinds().
std::unique_ptr<Workload> MakeFaultyWorkload(uint64_t script_seed, size_t op_count);

}  // namespace jnvm::crashcheck

#endif  // JNVM_SRC_CRASHCHECK_WORKLOADS_H_
