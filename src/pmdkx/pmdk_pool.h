// pmdkx — a miniature PMDK-style pool with undo-log transactions.
//
// The paper's PCJ backend "uses the native PMDK 1.9.2 library through the
// Java Native Interface" (§5.1). To reproduce that comparator we implement
// the PMDK cost model PCJ exercises: an object pool on NVMM plus undo-log
// transactions — every to-be-modified range is snapshotted to a persistent
// log and fenced *before* the in-place write (one fence per snapshot, one at
// commit), which is exactly why PMDK transactions are expensive.
//
// Fidelity notes (this is a comparator, not the system under test):
//  * allocations inside an aborted transaction leak until pool reset,
//  * the allocator is a bump pointer plus per-size free lists,
//  * transactions are single-threaded per pool (the PCJ backend serializes,
//    as PCJ itself effectively does through JNI synchronization).
#ifndef JNVM_SRC_PMDKX_PMDK_POOL_H_
#define JNVM_SRC_PMDKX_PMDK_POOL_H_

#include <map>
#include <mutex>
#include <vector>

#include "src/nvm/pmem_device.h"

namespace jnvm::pmdkx {

using nvm::Offset;

class PmdkPool {
 public:
  // Formats a pool over dev[base, base+capacity).
  PmdkPool(nvm::PmemDevice* dev, Offset base, uint64_t capacity);

  // Reopens an existing pool; a non-empty undo log (crash inside a
  // transaction) is rolled back — PMDK's recovery-on-open semantics.
  // Returns the number of undo entries applied.
  static std::unique_ptr<PmdkPool> Open(nvm::PmemDevice* dev, Offset base,
                                        uint64_t capacity, uint32_t* rolled_back = nullptr);

  nvm::PmemDevice& dev() { return *dev_; }

  // ---- Allocation --------------------------------------------------------
  // Returns a pool-relative offset (0 = null / out of memory).
  Offset Alloc(size_t n);
  void Free(Offset off, size_t n);

  // ---- Data access (pool-relative offsets) -------------------------------
  void Read(Offset off, void* dst, size_t n) const;
  void Write(Offset off, const void* src, size_t n);
  template <typename T>
  T ReadT(Offset off) const {
    T v;
    Read(off, &v, sizeof(T));
    return v;
  }
  template <typename T>
  void WriteT(Offset off, T v) {
    Write(off, &v, sizeof(T));
  }

  // ---- Undo-log transactions ----------------------------------------------
  void TxBegin();
  // Snapshot [off, off+n) into the undo log (persisted + fenced) before the
  // caller modifies it — the PMDK TX_ADD discipline.
  void TxSnapshot(Offset off, size_t n);
  // Flush the modified ranges, fence, then truncate the log (fenced).
  void TxCommit();
  // Roll back using the log (crash-recovery / abort path).
  void TxAbort();

  uint64_t bump() const { return bump_; }

  uint64_t tx_count() const { return tx_count_; }
  uint64_t snapshot_bytes() const { return snapshot_bytes_; }

 private:
  struct OpenTag {};
  PmdkPool(OpenTag, nvm::PmemDevice* dev, Offset base, uint64_t capacity);
  uint32_t RollBackLogLocked();

  Offset Absolute(Offset off) const { return base_ + off; }

  nvm::PmemDevice* dev_;
  Offset base_;
  uint64_t capacity_;

  // Persistent layout: [0,8) bump, [8, 8+kLogBytes) undo log, then data.
  static constexpr uint64_t kLogBytes = 1 << 20;
  static constexpr Offset kBumpOff = 0;
  static constexpr Offset kLogCountOff = 8;
  static constexpr Offset kLogDataOff = 16;
  static constexpr Offset kDataOff = 16 + kLogBytes;

  std::mutex mu_;
  uint64_t bump_;  // volatile mirror
  std::map<size_t, std::vector<Offset>> free_lists_;

  // Active transaction (guarded by tx_mu_).
  std::mutex tx_mu_;
  bool in_tx_ = false;
  uint64_t log_used_ = 0;
  std::vector<std::pair<Offset, size_t>> tx_ranges_;
  uint64_t tx_count_ = 0;
  uint64_t snapshot_bytes_ = 0;
};

}  // namespace jnvm::pmdkx

#endif  // JNVM_SRC_PMDKX_PMDK_POOL_H_
