#include "src/pmdkx/pmdk_pool.h"

namespace jnvm::pmdkx {

PmdkPool::PmdkPool(nvm::PmemDevice* dev, Offset base, uint64_t capacity)
    : dev_(dev), base_(base), capacity_(capacity) {
  JNVM_CHECK(base + capacity <= dev->size());
  JNVM_CHECK(capacity > kDataOff);
  bump_ = kDataOff;
  dev_->Write<uint64_t>(Absolute(kBumpOff), bump_);
  dev_->Write<uint64_t>(Absolute(kLogCountOff), 0);
  dev_->PwbRange(Absolute(0), 16);
  dev_->Pfence();
}

PmdkPool::PmdkPool(OpenTag, nvm::PmemDevice* dev, Offset base, uint64_t capacity)
    : dev_(dev), base_(base), capacity_(capacity) {
  bump_ = dev_->Read<uint64_t>(Absolute(kBumpOff));
  JNVM_CHECK_MSG(bump_ >= kDataOff && bump_ <= capacity, "corrupt pmdkx pool");
}

uint32_t PmdkPool::RollBackLogLocked() {
  const uint64_t used = dev_->Read<uint64_t>(Absolute(kLogCountOff));
  if (used == 0) {
    return 0;
  }
  // Apply the undo entries backwards, as TxAbort does.
  std::vector<std::tuple<Offset, uint64_t, std::vector<char>>> entries;
  uint64_t pos = 0;
  while (pos + 16 <= used) {
    const Offset e = kLogDataOff + pos;
    const Offset off = dev_->Read<uint64_t>(Absolute(e));
    const uint64_t n = dev_->Read<uint64_t>(Absolute(e + 8));
    if (pos + 16 + n > used) {
      break;  // torn tail entry: never covered by the log-count flush
    }
    std::vector<char> old(n);
    dev_->ReadBytes(Absolute(e + 16), old.data(), n);
    entries.emplace_back(off, n, std::move(old));
    pos += 16 + n;
  }
  for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
    const auto& [off, n, old] = *it;
    dev_->WriteBytes(Absolute(off), old.data(), n);
    dev_->PwbRange(Absolute(off), n);
  }
  dev_->Pfence();
  dev_->Write<uint64_t>(Absolute(kLogCountOff), 0);
  dev_->Pwb(Absolute(kLogCountOff));
  dev_->Pfence();
  return static_cast<uint32_t>(entries.size());
}

std::unique_ptr<PmdkPool> PmdkPool::Open(nvm::PmemDevice* dev, Offset base,
                                         uint64_t capacity, uint32_t* rolled_back) {
  auto pool = std::unique_ptr<PmdkPool>(new PmdkPool(OpenTag{}, dev, base, capacity));
  const uint32_t n = pool->RollBackLogLocked();
  if (rolled_back != nullptr) {
    *rolled_back = n;
  }
  return pool;
}

Offset PmdkPool::Alloc(size_t n) {
  std::lock_guard<std::mutex> lk(mu_);
  n = (n + 15) / 16 * 16;  // 16-byte granules
  auto it = free_lists_.find(n);
  if (it != free_lists_.end() && !it->second.empty()) {
    const Offset off = it->second.back();
    it->second.pop_back();
    return off;
  }
  if (bump_ + n > capacity_) {
    return 0;
  }
  const Offset off = bump_;
  bump_ += n;
  dev_->Write<uint64_t>(Absolute(kBumpOff), bump_);
  dev_->Pwb(Absolute(kBumpOff));
  return off;
}

void PmdkPool::Free(Offset off, size_t n) {
  std::lock_guard<std::mutex> lk(mu_);
  n = (n + 15) / 16 * 16;
  free_lists_[n].push_back(off);
}

void PmdkPool::Read(Offset off, void* dst, size_t n) const {
  dev_->ReadBytes(Absolute(off), dst, n);
}

void PmdkPool::Write(Offset off, const void* src, size_t n) {
  dev_->WriteBytes(Absolute(off), src, n);
}

void PmdkPool::TxBegin() {
  tx_mu_.lock();
  JNVM_CHECK(!in_tx_);
  in_tx_ = true;
  log_used_ = 0;
  tx_ranges_.clear();
  ++tx_count_;
}

void PmdkPool::TxSnapshot(Offset off, size_t n) {
  JNVM_CHECK(in_tx_);
  // Undo entry: {u64 off, u64 len, old bytes}, persisted before the caller's
  // in-place write (TX_ADD semantics: snapshot + flush + fence).
  JNVM_CHECK_MSG(log_used_ + 16 + n <= kLogBytes, "pmdkx undo log overflow");
  std::vector<char> old(n);
  dev_->ReadBytes(Absolute(off), old.data(), n);
  const Offset e = kLogDataOff + log_used_;
  dev_->Write<uint64_t>(Absolute(e), off);
  dev_->Write<uint64_t>(Absolute(e + 8), n);
  dev_->WriteBytes(Absolute(e + 16), old.data(), n);
  dev_->PwbRange(Absolute(e), 16 + n);
  log_used_ += 16 + n;
  dev_->Write<uint64_t>(Absolute(kLogCountOff), log_used_);
  dev_->Pwb(Absolute(kLogCountOff));
  dev_->Pfence();  // the per-snapshot fence that makes PMDK transactions costly
  snapshot_bytes_ += n;
  tx_ranges_.emplace_back(off, n);
}

void PmdkPool::TxCommit() {
  JNVM_CHECK(in_tx_);
  for (const auto& [off, n] : tx_ranges_) {
    dev_->PwbRange(Absolute(off), n);
  }
  dev_->Pfence();
  dev_->Write<uint64_t>(Absolute(kLogCountOff), 0);
  dev_->Pwb(Absolute(kLogCountOff));
  dev_->Pfence();
  in_tx_ = false;
  tx_mu_.unlock();
}

void PmdkPool::TxAbort() {
  JNVM_CHECK(in_tx_);
  // Apply the undo log backwards.
  std::vector<std::tuple<Offset, uint64_t, std::vector<char>>> entries;
  uint64_t pos = 0;
  while (pos < log_used_) {
    const Offset e = kLogDataOff + pos;
    const Offset off = dev_->Read<uint64_t>(Absolute(e));
    const uint64_t n = dev_->Read<uint64_t>(Absolute(e + 8));
    std::vector<char> old(n);
    dev_->ReadBytes(Absolute(e + 16), old.data(), n);
    entries.emplace_back(off, n, std::move(old));
    pos += 16 + n;
  }
  for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
    const auto& [off, n, old] = *it;
    dev_->WriteBytes(Absolute(off), old.data(), n);
    dev_->PwbRange(Absolute(off), n);
  }
  dev_->Pfence();
  dev_->Write<uint64_t>(Absolute(kLogCountOff), 0);
  dev_->Pwb(Absolute(kLogCountOff));
  dev_->Pfence();
  in_tx_ = false;
  tx_mu_.unlock();
}

}  // namespace jnvm::pmdkx
