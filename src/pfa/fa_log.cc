#include "src/pfa/fa_log.h"

namespace jnvm::pfa {

namespace {
constexpr Offset kCommittedOff = 0;
constexpr Offset kCountOff = 8;
constexpr Offset kEntriesOff = 16;
constexpr size_t kEntryBytes = 24;
}  // namespace

FaLog::FaLog(Heap* heap, uint32_t slot_index)
    : base_(heap->log_dir_off() + static_cast<uint64_t>(slot_index) * heap->log_slot_bytes()),
      capacity_((heap->log_slot_bytes() - kEntriesOff) / kEntryBytes),
      heap_(heap) {
  JNVM_CHECK(slot_index < heap->log_slot_count());
}

uint64_t FaLog::count() const { return heap_->dev().Read<uint64_t>(base_ + kCountOff); }

bool FaLog::committed() const {
  return heap_->dev().Read<uint64_t>(base_ + kCommittedOff) != 0;
}

void FaLog::Append(const LogEntry& entry) {
  const uint64_t n = count();
  JNVM_CHECK_MSG(n < capacity_, "failure-atomic block exceeds redo-log capacity");
  const Offset e = base_ + kEntriesOff + n * kEntryBytes;
  auto& dev = heap_->dev();
  dev.Write<uint64_t>(e, static_cast<uint64_t>(entry.type));
  dev.Write<uint64_t>(e + 8, entry.a);
  dev.Write<uint64_t>(e + 16, entry.b);
  dev.PwbRange(e, kEntryBytes);
  dev.Write<uint64_t>(base_ + kCountOff, n + 1);
  dev.Pwb(base_ + kCountOff);
  // No fence: nothing in NVMM has changed yet (§4.2).
}

LogEntry FaLog::ReadEntry(uint64_t index) const {
  const Offset e = base_ + kEntriesOff + index * kEntryBytes;
  auto& dev = heap_->dev();
  LogEntry entry;
  entry.type = static_cast<EntryType>(dev.Read<uint64_t>(e));
  entry.a = dev.Read<uint64_t>(e + 8);
  entry.b = dev.Read<uint64_t>(e + 16);
  return entry;
}

void FaLog::PersistAndMarkCommitted() {
  auto& dev = heap_->dev();
  // First fence: the log entries, the count and every in-flight block
  // (queued by the writer) become durable.
  dev.Pfence();
  dev.Write<uint64_t>(base_ + kCommittedOff, 1);
  dev.Pwb(base_ + kCommittedOff);
  // Second fence: the committed status reaches NVMM before apply starts.
  dev.Pfence();
}

void FaLog::Apply(Heap* heap, const FaHooks& hooks) const {
  auto& dev = heap->dev();
  const uint32_t payload = heap->payload_per_block();
  const uint64_t n = count();
  std::vector<char> buf(payload);
  for (uint64_t i = 0; i < n; ++i) {
    const LogEntry e = ReadEntry(i);
    switch (e.type) {
      case EntryType::kUpdate: {
        // Copy the in-flight payload over the original (headers untouched).
        dev.ReadBytes(heap->PayloadOf(e.b), buf.data(), payload);
        dev.WriteBytes(heap->PayloadOf(e.a), buf.data(), payload);
        dev.PwbRange(e.a, heap->block_size());
        break;
      }
      case EntryType::kAlloc:
        // Validation makes the object alive iff it is reachable (§4.2).
        heap->SetValid(e.a);
        break;
      case EntryType::kFree:
        heap->FreeObject(e.a);
        break;
      case EntryType::kPoolFree:
        JNVM_CHECK_MSG(static_cast<bool>(hooks.pool_free),
                       "pool free in FA block but no pool hook installed");
        hooks.pool_free(e.a);
        break;
    }
  }
  // No fence during apply (§4.2): a crash here replays the committed log.
}

void FaLog::Erase() {
  auto& dev = heap_->dev();
  // The applied (or discarded) state must be durable before the erase can
  // become durable — otherwise a crash could pair a clean log with a
  // half-applied commit. One fence orders the two.
  dev.Pfence();
  dev.Write<uint64_t>(base_ + kCommittedOff, 0);
  dev.Write<uint64_t>(base_ + kCountOff, 0);
  dev.PwbRange(base_, 16);
  // This fence orders the erase before any future committed flag, so a
  // crash can never pair a stale flag with new entries.
  dev.Pfence();
}

void FaLog::DiscardUncommitted(Heap* heap) {
  const uint64_t n = count();
  for (uint64_t i = 0; i < n; ++i) {
    const LogEntry e = ReadEntry(i);
    if (e.type == EntryType::kUpdate) {
      heap->FreeBlockRaw(e.b);  // drop the in-flight copy
    } else if (e.type == EntryType::kAlloc) {
      heap->FreeObject(e.a);  // still invalid; reclaim immediately
    }
    // kFree / kPoolFree were deferred: nothing was performed yet.
  }
  Erase();
}

ReplayStats ReplayAllLogs(Heap* heap, const FaHooks& hooks) {
  ReplayStats stats;
  for (uint32_t slot = 0; slot < heap->log_slot_count(); ++slot) {
    FaLog log(heap, slot);
    if (log.count() == 0 && !log.committed()) {
      continue;
    }
    if (log.committed()) {
      log.Apply(heap, hooks);
      stats.replayed_entries += log.count();
      ++stats.replayed_logs;
    } else {
      // Aborted: in-flight blocks and invalid allocations are left for the
      // collection pass (they are unreachable / invalid).
      ++stats.aborted_logs;
    }
    log.Erase();
  }
  return stats;
}

LogAudit AuditLogs(Heap* heap) {
  LogAudit audit;
  for (uint32_t slot = 0; slot < heap->log_slot_count(); ++slot) {
    FaLog log(heap, slot);
    if (log.committed()) {
      ++audit.committed_slots;
    }
    if (log.count() != 0) {
      ++audit.active_slots;
      audit.pending_entries += log.count();
    }
  }
  return audit;
}

}  // namespace jnvm::pfa
