#include "src/pfa/fa_context.h"

#include <vector>

namespace jnvm::pfa {

Offset FaContext::WriteBlockCow(Offset block) {
  auto it = inflight_.find(block);
  if (it != inflight_.end()) {
    return it->second;
  }
  const Offset copy = heap_->AllocBlockRaw();
  JNVM_CHECK_MSG(copy != 0, "heap full while creating in-flight copy");
  auto& dev = heap_->dev();
  // Neutral header so a crashed copy can never look like a live master.
  dev.Write<uint64_t>(copy, 0);
  // Clone the payload; subsequent stores in this FA block hit the copy.
  std::vector<char> buf(heap_->payload_per_block());
  dev.ReadBytes(heap_->PayloadOf(block), buf.data(), buf.size());
  dev.WriteBytes(heap_->PayloadOf(copy), buf.data(), buf.size());
  log_.Append({EntryType::kUpdate, block, copy});
  inflight_[block] = copy;
  return copy;
}

void FaContext::Commit() {
  if (log_.count() == 0) {
    inflight_.clear();
    return;  // read-only block: nothing to persist
  }
  // Queue every in-flight block for write-back; the commit fence makes them
  // durable together with the log entries.
  for (const auto& [orig, copy] : inflight_) {
    heap_->PwbRange(copy, heap_->block_size());
  }
  log_.PersistAndMarkCommitted();
  log_.Apply(heap_, *hooks_);
  // Return the in-flight copies to the volatile free queue.
  for (const auto& [orig, copy] : inflight_) {
    heap_->FreeBlockRaw(copy);
  }
  inflight_.clear();
  log_.Erase();
}

void FaContext::Abort() {
  depth_ = 0;
  log_.DiscardUncommitted(heap_);
  inflight_.clear();
}

namespace {

struct TlsKey {
  const FaManager* manager;
  uint64_t generation;
  bool operator==(const TlsKey&) const = default;
};

struct TlsKeyHash {
  size_t operator()(const TlsKey& k) const {
    return std::hash<const void*>()(k.manager) ^ std::hash<uint64_t>()(k.generation);
  }
};

std::atomic<uint64_t> g_manager_generation{1};

thread_local std::unordered_map<TlsKey, std::unique_ptr<FaContext>, TlsKeyHash>
    t_contexts;

}  // namespace

FaManager::FaManager(Heap* heap, FaHooks hooks)
    : heap_(heap),
      hooks_(std::move(hooks)),
      generation_(g_manager_generation.fetch_add(1, std::memory_order_relaxed)) {}

FaManager::~FaManager() {
  // Drop this thread's binding; other threads' TLS entries become dead keys
  // that can never be looked up again (the generation is unique).
  t_contexts.erase(TlsKey{this, generation_});
}

FaContext& FaManager::ForCurrentThread() {
  const TlsKey key{this, generation_};
  auto it = t_contexts.find(key);
  if (it == t_contexts.end()) {
    const uint32_t slot = next_slot_.fetch_add(1, std::memory_order_relaxed);
    JNVM_CHECK_MSG(slot < heap_->log_slot_count(),
                   "more failure-atomic threads than log slots");
    it = t_contexts
             .emplace(key, std::make_unique<FaContext>(heap_, &hooks_, slot))
             .first;
  }
  return *it->second;
}

}  // namespace jnvm::pfa
