// Persistent per-thread redo log for failure-atomic blocks (§4.2).
//
// The algorithm follows the paper (itself inspired by Romulus), adapted to
// the block heap:
//
//  * During a failure-atomic block, every modification is captured in a
//    per-thread persistent log, leaving original data intact:
//      - writes to a *valid* object go to an *in-flight* copy of the
//        affected 256 B block (allocated from the normal heap),
//      - writes to an *invalid* object (e.g. allocated in the same block)
//        go directly to the object — safe, because an uncommitted crash
//        leaves it invalid and recovery deletes it,
//      - allocations and frees are recorded and applied at commit.
//  * Commit: pfence (persist log + in-flight blocks) → set committed flag →
//    pfence → apply entries (copy in-flight payloads over the originals,
//    validate allocations, perform frees) — no fence during apply; a crash
//    replays the committed log.
//  * Recovery (before the heap's collection pass): committed logs are
//    replayed; uncommitted logs are discarded — their allocations are still
//    invalid and their in-flight blocks unreachable, so the collection pass
//    reclaims them.
//
// Log slot layout inside the heap's log directory region:
//   +0   u64 committed
//   +8   u64 count
//   +16  entries: {u64 type, u64 a, u64 b} × count
#ifndef JNVM_SRC_PFA_FA_LOG_H_
#define JNVM_SRC_PFA_FA_LOG_H_

#include <cstdint>
#include <functional>

#include "src/heap/heap.h"

namespace jnvm::pfa {

using heap::Heap;
using nvm::Offset;

enum class EntryType : uint64_t {
  kUpdate = 1,    // a = original block, b = in-flight copy block
  kAlloc = 2,     // a = master block of an object allocated in the FA block
  kFree = 3,      // a = master block of an object freed in the FA block
  kPoolFree = 4,  // a = pool slot offset freed in the FA block
};

struct LogEntry {
  EntryType type;
  Offset a = 0;
  Offset b = 0;
};

// Hooks that let the log apply operations owned by higher layers. The pool
// allocator lives above the heap, so freeing a pool slot is delegated.
struct FaHooks {
  // Frees a small immutable (pool-allocated) object at `slot`.
  std::function<void(Offset slot)> pool_free;
};

// A view over one persistent log slot.
class FaLog {
 public:
  FaLog() = default;
  FaLog(Heap* heap, uint32_t slot_index);

  bool initialized() const { return heap_ != nullptr; }
  uint64_t count() const;
  bool committed() const;
  uint64_t capacity_entries() const { return capacity_; }

  // Appends an entry and queues its line (no fence).
  void Append(const LogEntry& entry);
  LogEntry ReadEntry(uint64_t index) const;

  // Commit protocol, steps as in §4.2. Marking queues + fences internally.
  void PersistAndMarkCommitted();
  // Applies all entries to NVMM (no fences). Idempotent: recovery replays.
  void Apply(Heap* heap, const FaHooks& hooks) const;
  // Erases the log: committed=0, count=0, then a fence so a later commit
  // flag can never be misread against stale entries.
  void Erase();

  // Discards an uncommitted log without applying (abort path): frees the
  // objects allocated in the block and the in-flight copies.
  void DiscardUncommitted(Heap* heap);

 private:
  Offset base_ = 0;
  uint64_t capacity_ = 0;
  Heap* heap_ = nullptr;
};

struct ReplayStats {
  uint32_t replayed_logs = 0;
  uint32_t aborted_logs = 0;
  uint64_t replayed_entries = 0;
};

// Recovery step 1 (§4.2): replay every committed per-thread log, erase the
// uncommitted ones. Must run before the heap's collection pass.
ReplayStats ReplayAllLogs(Heap* heap, const FaHooks& hooks);

// Read-only audit of every log slot, for the integrity checker and the
// crash-consistency oracle. On a quiescent heap (no thread inside a
// failure-atomic block, recovery finished) every slot must be erased:
// a lingering committed flag means replay failed to run to completion.
struct LogAudit {
  uint32_t committed_slots = 0;   // slots with the committed flag still set
  uint32_t active_slots = 0;      // slots holding entries (committed or not)
  uint64_t pending_entries = 0;   // total entries across active slots
};
LogAudit AuditLogs(Heap* heap);

}  // namespace jnvm::pfa

#endif  // JNVM_SRC_PFA_FA_LOG_H_
