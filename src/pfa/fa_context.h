// Per-thread failure-atomic block state (§3.2, §4.2).
//
// J-NVM "maintains a per-thread counter that tracks the nested level of
// failure-atomic blocks. At runtime, J-NVM checks this counter when it loads
// or stores a field" — proxies consult FaContext on every access; a zero
// depth grants direct access to NVMM without mediation.
#ifndef JNVM_SRC_PFA_FA_CONTEXT_H_
#define JNVM_SRC_PFA_FA_CONTEXT_H_

#include <atomic>
#include <memory>
#include <unordered_map>

#include "src/pfa/fa_log.h"

namespace jnvm::pfa {

class FaContext {
 public:
  FaContext(Heap* heap, const FaHooks* hooks, uint32_t slot)
      : heap_(heap), hooks_(hooks), log_(heap, slot) {}

  int depth() const { return depth_; }
  bool InFa() const { return depth_ > 0; }

  // Redo-log slot occupancy, for callers sizing a failure-atomic block
  // against the slot's fixed capacity (e.g. a cross-shard txn apply that
  // must decide between one block and per-write blocks, DESIGN.md §9).
  uint64_t log_capacity() const { return log_.capacity_entries(); }
  uint64_t log_entries_used() const { return log_.count(); }

  void Begin() { ++depth_; }

  // Leaves the current block; the outermost End commits.
  void End() {
    JNVM_CHECK(depth_ > 0);
    if (--depth_ == 0) {
      Commit();
    }
  }

  // Abandons the whole (possibly nested) block: in-flight copies are
  // dropped, allocations reclaimed, deferred frees forgotten.
  void Abort();

  // ---- Redirection used by proxy field accessors (only when InFa()) -----

  // Where should a load of `block` read from?
  Offset ReadBlock(Offset block) const {
    auto it = inflight_.find(block);
    return it == inflight_.end() ? block : it->second;
  }

  // Where should a store to `block` (of a *valid* object) go? Creates the
  // in-flight copy and the log entry on first touch.
  Offset WriteBlockCow(Offset block);

  // Records an object allocated inside the block (validated at commit).
  void NoteAlloc(Offset master) { log_.Append({EntryType::kAlloc, master, 0}); }
  // Defers an object free to commit.
  void NoteFreeObject(Offset master) { log_.Append({EntryType::kFree, master, 0}); }
  // Defers a pool-slot free to commit.
  void NoteFreePoolSlot(Offset slot) { log_.Append({EntryType::kPoolFree, slot, 0}); }

 private:
  void Commit();

  Heap* heap_;
  const FaHooks* hooks_;
  FaLog log_;
  int depth_ = 0;
  std::unordered_map<Offset, Offset> inflight_;  // original block -> copy
};

// Hands out one FaContext per thread, backed by one persistent log slot
// each. Thread bindings are cached in thread-local storage.
class FaManager {
 public:
  FaManager(Heap* heap, FaHooks hooks);
  ~FaManager();

  FaContext& ForCurrentThread();
  const FaHooks& hooks() const { return hooks_; }

 private:
  Heap* heap_;
  FaHooks hooks_;
  uint64_t generation_;  // disambiguates reused FaManager addresses in TLS
  std::atomic<uint32_t> next_slot_{0};
};

}  // namespace jnvm::pfa

#endif  // JNVM_SRC_PFA_FA_CONTEXT_H_
