// Volatile free queue of blocks (§4.1.2).
//
// The paper uses "a concurrent queue to scale with the number of threads".
// We implement a sharded stack: each shard has its own lock and vector;
// threads hash to a home shard and steal from the others when empty. Pushes
// and pops touch only volatile memory — the allocator never updates NVMM
// except through the bump pointer.
#ifndef JNVM_SRC_HEAP_FREE_QUEUE_H_
#define JNVM_SRC_HEAP_FREE_QUEUE_H_

#include <cstdint>
#include <mutex>
#include <vector>

#include "src/nvm/pmem_device.h"

namespace jnvm::heap {

using nvm::Offset;

class FreeQueue {
 public:
  static constexpr size_t kShards = 8;

  void Push(Offset block);
  // Returns 0 when every shard is empty.
  Offset Pop();
  // Bulk insert (used when recovery rebuilds the queue).
  void PushAll(const std::vector<Offset>& blocks);
  size_t ApproxSize() const;
  void Clear();

 private:
  struct Shard {
    mutable std::mutex mu;
    std::vector<Offset> stack;
  };

  static size_t HomeShard();

  Shard shards_[kShards];
};

}  // namespace jnvm::heap

#endif  // JNVM_SRC_HEAP_FREE_QUEUE_H_
