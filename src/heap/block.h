// Block header codec — Table 2 of the paper.
//
// Every block starts with a single 64-bit word:
//
//     id     (15 bits)  — class id; != 0 marks the master block of an object
//     valid  (1 bit)    — object liveness state (§3.2.3)
//     next   (48 bits)  — block index of the next block in the object chain
//
// The states are exactly Table 2:
//     id != 0, valid = any  -> master block of a valid / invalid object
//     id == 0, valid = 0    -> free block, or slave block of some object
// (id == 0, valid = 1 never occurs.)
#ifndef JNVM_SRC_HEAP_BLOCK_H_
#define JNVM_SRC_HEAP_BLOCK_H_

#include <cstdint>

#include "src/common/check.h"

namespace jnvm::heap {

inline constexpr uint64_t kIdBits = 15;
inline constexpr uint64_t kIdMask = (1ull << kIdBits) - 1;
inline constexpr uint64_t kValidBit = 1ull << 15;
inline constexpr uint64_t kNextShift = 16;
inline constexpr uint64_t kNextMask = (1ull << 48) - 1;

inline constexpr uint16_t kMaxClassId = static_cast<uint16_t>(kIdMask);

struct BlockHeader {
  uint16_t id = 0;      // 15 bits used
  bool valid = false;   // object valid bit (master blocks only)
  uint64_t next = 0;    // block index; 0 terminates the chain

  uint64_t Pack() const {
    JNVM_DCHECK(id <= kMaxClassId);
    JNVM_DCHECK(next <= kNextMask);
    return (static_cast<uint64_t>(id) & kIdMask) | (valid ? kValidBit : 0) |
           (next << kNextShift);
  }

  static BlockHeader Unpack(uint64_t word) {
    BlockHeader h;
    h.id = static_cast<uint16_t>(word & kIdMask);
    h.valid = (word & kValidBit) != 0;
    h.next = word >> kNextShift;
    return h;
  }

  bool IsMaster() const { return id != 0; }
};

inline constexpr size_t kBlockHeaderBytes = 8;

}  // namespace jnvm::heap

#endif  // JNVM_SRC_HEAP_BLOCK_H_
