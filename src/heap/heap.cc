#include "src/heap/heap.h"

#include <algorithm>
#include <cstring>

#include "src/common/clock.h"

namespace jnvm::heap {

namespace {

uint64_t AlignUp(uint64_t v, uint64_t align) { return (v + align - 1) / align * align; }

}  // namespace

std::unique_ptr<Heap> Heap::Format(nvm::PmemDevice* dev, const HeapOptions& opts) {
  JNVM_CHECK(opts.block_size >= 64 && opts.block_size % nvm::kCacheLine == 0);

  // The superblock occupies 80 bytes; with 64 B blocks it spans two blocks.
  const Offset class_table =
      AlignUp(std::max<uint64_t>(opts.block_size, 128), opts.block_size);
  const uint64_t class_table_bytes =
      static_cast<uint64_t>(opts.class_table_capacity) * kClassEntryBytes;
  const Offset log_dir = AlignUp(class_table + class_table_bytes, opts.block_size);
  const uint64_t log_bytes =
      static_cast<uint64_t>(opts.log_slot_count) * opts.log_slot_bytes;
  const Offset first_block = AlignUp(log_dir + log_bytes, opts.block_size);
  JNVM_CHECK_MSG(first_block + opts.block_size <= dev->size(),
                 "device too small for heap metadata");

  dev->Write<uint64_t>(kMagicOff, kMagic);
  dev->Write<uint32_t>(kVersionOff, kVersion);
  dev->Write<uint32_t>(kBlockSizeOff, opts.block_size);
  dev->Write<uint64_t>(kHeapBytesOff, dev->size());
  dev->Write<uint64_t>(kBumpOff, first_block);
  dev->Write<uint64_t>(kFirstBlockOff, first_block);
  dev->Write<uint64_t>(kRootMasterOff, 0);
  dev->Write<uint64_t>(kClassTableOff, class_table);
  dev->Write<uint32_t>(kClassTableCapOff, opts.class_table_capacity);
  dev->Write<uint32_t>(kCleanShutdownOff, 1);
  dev->Write<uint64_t>(kLogDirOff, log_dir);
  dev->Write<uint32_t>(kLogSlotCountOff, opts.log_slot_count);
  dev->Write<uint32_t>(kLogSlotBytesOff, opts.log_slot_bytes);

  dev->Memset(class_table, 0, class_table_bytes);
  dev->Memset(log_dir, 0, log_bytes);

  dev->PwbRange(0, opts.block_size);
  dev->PwbRange(class_table, class_table_bytes);
  dev->PwbRange(log_dir, log_bytes);
  dev->Psync();

  return Open(dev);
}

std::unique_ptr<Heap> Heap::Open(nvm::PmemDevice* dev) {
  JNVM_CHECK_MSG(dev->Read<uint64_t>(kMagicOff) == kMagic, "not a J-NVM heap");
  JNVM_CHECK(dev->Read<uint32_t>(kVersionOff) == kVersion);

  auto heap = std::unique_ptr<Heap>(new Heap());
  heap->dev_ = dev;
  heap->LoadSuper();

  // Mark the heap dirty while it is open; CloseClean() restores the flag.
  heap->clean_shutdown_at_open_ = dev->Read<uint32_t>(kCleanShutdownOff) != 0;
  dev->Write<uint32_t>(kCleanShutdownOff, 0);
  dev->Pwb(kCleanShutdownOff);
  dev->Pfence();
  return heap;
}

void Heap::LoadSuper() {
  block_size_ = dev_->Read<uint32_t>(kBlockSizeOff);
  first_block_ = dev_->Read<uint64_t>(kFirstBlockOff);
  class_table_off_ = dev_->Read<uint64_t>(kClassTableOff);
  class_table_cap_ = dev_->Read<uint32_t>(kClassTableCapOff);
  log_dir_off_ = dev_->Read<uint64_t>(kLogDirOff);
  log_slot_count_ = dev_->Read<uint32_t>(kLogSlotCountOff);
  log_slot_bytes_ = dev_->Read<uint32_t>(kLogSlotBytesOff);
  bump_.store(dev_->Read<uint64_t>(kBumpOff), std::memory_order_relaxed);

  // Load the class-name mirror.
  class_names_.clear();
  for (uint32_t i = 0; i < class_table_cap_; ++i) {
    char name[kClassEntryBytes];
    dev_->ReadBytes(class_table_off_ + i * kClassEntryBytes, name, kClassEntryBytes);
    name[kClassEntryBytes - 1] = '\0';
    if (name[0] == '\0') {
      break;
    }
    class_names_.emplace_back(name);
  }
}

uint16_t Heap::InternClassId(std::string_view name) {
  JNVM_CHECK(!name.empty() && name.size() < kClassEntryBytes);
  std::lock_guard<std::mutex> lk(class_mu_);
  for (size_t i = 0; i < class_names_.size(); ++i) {
    if (class_names_[i] == name) {
      return static_cast<uint16_t>(i + 1);
    }
  }
  const size_t index = class_names_.size();
  JNVM_CHECK_MSG(index < class_table_cap_, "class table full");
  JNVM_CHECK(index + 1 <= kMaxClassId);
  char entry[kClassEntryBytes] = {};
  std::memcpy(entry, name.data(), name.size());
  const Offset off = class_table_off_ + index * kClassEntryBytes;
  dev_->WriteBytes(off, entry, kClassEntryBytes);
  dev_->PwbRange(off, kClassEntryBytes);
  dev_->Pfence();
  class_names_.emplace_back(name);
  return static_cast<uint16_t>(index + 1);
}

std::string Heap::ClassName(uint16_t id) const {
  std::lock_guard<std::mutex> lk(class_mu_);
  if (id == 0 || id > class_names_.size()) {
    return "";
  }
  return class_names_[id - 1];
}

Offset Heap::root_master() const { return dev_->Read<uint64_t>(kRootMasterOff); }

void Heap::SetRootMaster(Offset master) {
  dev_->Write<uint64_t>(kRootMasterOff, master);
  dev_->Pwb(kRootMasterOff);
  dev_->Pfence();
}

void Heap::PersistBump(Offset new_bump) {
  dev_->Write<uint64_t>(kBumpOff, new_bump);
  dev_->Pwb(kBumpOff);
  // No fence: the publication fence of whichever object first occupies the
  // new block also makes the bump durable (see DESIGN.md §5). Until then the
  // block holds only invalid/unreachable data in every crash outcome.
}

Offset Heap::AllocBlockRaw() {
  const Offset from_queue = free_queue_.Pop();
  if (from_queue != 0) {
    stat_blocks_allocated_.fetch_add(1, std::memory_order_relaxed);
    return from_queue;
  }
  std::lock_guard<std::mutex> lk(bump_mu_);
  const Offset off = bump_.load(std::memory_order_relaxed);
  if (off + block_size_ > dev_->size()) {
    return 0;  // heap full
  }
  bump_.store(off + block_size_, std::memory_order_relaxed);
  PersistBump(off + block_size_);
  stat_blocks_allocated_.fetch_add(1, std::memory_order_relaxed);
  return off;
}

void Heap::FreeBlockRaw(Offset block) {
  JNVM_DCHECK(IsBlockAligned(block) && block >= first_block_);
  stat_blocks_freed_.fetch_add(1, std::memory_order_relaxed);
  free_queue_.Push(block);
}

Offset Heap::AllocObject(uint16_t class_id, size_t payload_bytes, bool zero) {
  JNVM_CHECK(class_id != 0 && class_id <= kMaxClassId);
  const size_t ppb = payload_per_block();
  const size_t nblocks = payload_bytes == 0 ? 1 : (payload_bytes + ppb - 1) / ppb;

  std::vector<Offset> blocks;
  blocks.reserve(nblocks);
  for (size_t i = 0; i < nblocks; ++i) {
    const Offset b = AllocBlockRaw();
    if (b == 0) {
      for (const Offset freed : blocks) {
        FreeBlockRaw(freed);
      }
      return 0;
    }
    blocks.push_back(b);
  }

  // Headers: master {id, invalid, next}, slaves {0, 0, next}. Payloads are
  // voided and queued so a later fence persists the zeroes (§3.2.3). No
  // fence here (§4.1.4): the master is still in the invalid state.
  for (size_t i = 0; i < nblocks; ++i) {
    BlockHeader h;
    h.id = (i == 0) ? class_id : 0;
    h.valid = false;
    h.next = (i + 1 < nblocks) ? BlockIndex(blocks[i + 1]) : 0;
    dev_->Write<uint64_t>(blocks[i], h.Pack());
    if (zero) {
      dev_->Memset(PayloadOf(blocks[i]), 0, ppb);
      dev_->PwbRange(blocks[i], block_size_);
    } else {
      dev_->Pwb(blocks[i]);  // header line only
    }
  }
  stat_objects_allocated_.fetch_add(1, std::memory_order_relaxed);
  return blocks[0];
}

void Heap::CollectBlocks(Offset master, std::vector<Offset>* out) const {
  const uint64_t limit = BlockIndex(dev_->size()) + 1;
  Offset block = master;
  uint64_t guard = 0;
  while (block != 0) {
    JNVM_CHECK_MSG(++guard <= limit, "block chain cycle");
    out->push_back(block);
    const uint64_t next_index = ReadHeader(block).next;
    block = next_index == 0 ? 0 : BlockOffset(next_index);
  }
}

size_t Heap::ChainLength(Offset master) const {
  std::vector<Offset> blocks;
  CollectBlocks(master, &blocks);
  return blocks.size();
}

void Heap::FreeObject(Offset master) {
  JNVM_DCHECK(IsBlockAligned(master));
  std::vector<Offset> blocks;
  CollectBlocks(master, &blocks);
  SetInvalid(master);  // + pwb, no fence (§4.1.5)
  for (const Offset b : blocks) {
    FreeBlockRaw(b);
  }
  stat_objects_freed_.fetch_add(1, std::memory_order_relaxed);
}

void Heap::SetValid(Offset master) {
  BlockHeader h = ReadHeader(master);
  JNVM_DCHECK(h.IsMaster());
  h.valid = true;
  WriteHeader(master, h);
}

void Heap::SetInvalid(Offset master) {
  BlockHeader h = ReadHeader(master);
  h.valid = false;
  WriteHeader(master, h);
}

void Heap::CloseClean() {
  dev_->Write<uint32_t>(kCleanShutdownOff, 1);
  dev_->Pwb(kCleanShutdownOff);
  dev_->Psync();
}

uint64_t Heap::NumAllocatedBlocks() const {
  return (bump_.load(std::memory_order_relaxed) - first_block_) / block_size_;
}

void Heap::MarkChainLive(Offset master, LiveBitmap* bitmap) const {
  std::vector<Offset> blocks;
  CollectBlocks(master, &blocks);
  for (const Offset b : blocks) {
    bitmap->Mark(BlockIndex(b));
  }
}

Heap::RecoveryStats Heap::SweepUnmarked(const LiveBitmap& bitmap) {
  Stopwatch sw;
  RecoveryStats stats;
  free_queue_.Clear();
  std::vector<Offset> free_blocks;
  const Offset end = bump_.load(std::memory_order_relaxed);
  for (Offset b = first_block_; b < end; b += block_size_) {
    ++stats.scanned_blocks;
    if (bitmap.IsMarked(BlockIndex(b))) {
      ++stats.live_blocks;
      continue;
    }
    // Void the header so a recycled block can never be mistaken for a live
    // master (§4.1.3: recovery writes 0 in the valid bit of free blocks).
    if (dev_->Read<uint64_t>(b) != 0) {
      dev_->Write<uint64_t>(b, 0);
      dev_->Pwb(b);
    }
    free_blocks.push_back(b);
    ++stats.freed_blocks;
  }
  free_queue_.PushAll(free_blocks);
  dev_->Pfence();  // §4.1.3: one fence once the procedure terminates
  stats.seconds = sw.ElapsedSec();
  return stats;
}

Heap::RecoveryStats Heap::RecoverBlockScan() {
  Stopwatch sw;
  LiveBitmap bitmap = NewBitmap();
  const Offset end = bump_.load(std::memory_order_relaxed);
  for (Offset b = first_block_; b < end; b += block_size_) {
    const BlockHeader h = ReadHeader(b);
    if (h.IsMaster() && h.valid) {
      MarkChainLive(b, &bitmap);
    }
  }
  RecoveryStats stats = SweepUnmarked(bitmap);
  stats.seconds = sw.ElapsedSec();
  return stats;
}

Heap::Usage Heap::GetUsage() const {
  Usage u;
  u.capacity_blocks = capacity_blocks();
  u.bumped_blocks = NumAllocatedBlocks();
  u.free_queue_blocks = free_queue_.ApproxSize();
  u.in_use_blocks = u.bumped_blocks > u.free_queue_blocks
                        ? u.bumped_blocks - u.free_queue_blocks
                        : 0;
  u.utilization = u.capacity_blocks == 0
                      ? 0.0
                      : static_cast<double>(u.in_use_blocks) /
                            static_cast<double>(u.capacity_blocks);
  return u;
}

HeapStats Heap::stats() const {
  HeapStats s;
  s.blocks_allocated = stat_blocks_allocated_.load(std::memory_order_relaxed);
  s.blocks_freed = stat_blocks_freed_.load(std::memory_order_relaxed);
  s.objects_allocated = stat_objects_allocated_.load(std::memory_order_relaxed);
  s.objects_freed = stat_objects_freed_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace jnvm::heap
