// The persistent heap (§4.1 of the paper).
//
// The heap splits the device into fixed-size blocks (256 B by default — the
// paper's sweet spot, §5.3.5). An object is a chain of blocks: the first is
// the *master* block (header id != 0), the rest are *slaves*. Using fixed
// blocks eliminates external fragmentation by design; large objects become
// linked lists of blocks, and proxies (src/core) hide the chain.
//
// Allocation uses a persistent bump pointer plus a volatile free queue; it
// never fences (§4.1.2, §4.1.4). Deletion invalidates the master and pushes
// the chain to the volatile queue, also without a fence (§4.1.5). Liveness
// is decided at recovery time by reachability from the root plus the valid
// bit (§2.4, §3.2.3).
//
// Device layout:
//   block 0            superblock
//   class table        fixed array of class-name slots (id = index + 1)
//   log directory      per-thread redo-log regions (managed by src/pfa)
//   blocks             first_block .. heap end
#ifndef JNVM_SRC_HEAP_HEAP_H_
#define JNVM_SRC_HEAP_HEAP_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "src/heap/block.h"
#include "src/heap/free_queue.h"
#include "src/nvm/pmem_device.h"

namespace jnvm::heap {

struct HeapOptions {
  uint32_t block_size = 256;
  uint32_t class_table_capacity = 512;
  uint32_t log_slot_count = 24;        // max concurrent failure-atomic threads
  uint32_t log_slot_bytes = 32 * 1024; // redo-log region per slot
};

struct HeapStats {
  uint64_t blocks_allocated = 0;
  uint64_t blocks_freed = 0;
  uint64_t objects_allocated = 0;
  uint64_t objects_freed = 0;
};

// One bit per block; used by recovery to mark live blocks (§4.1.3).
class LiveBitmap {
 public:
  explicit LiveBitmap(uint64_t num_blocks) : bits_((num_blocks + 63) / 64, 0) {}

  void Mark(uint64_t block_index) { bits_[block_index >> 6] |= 1ull << (block_index & 63); }
  bool IsMarked(uint64_t block_index) const {
    return (bits_[block_index >> 6] & (1ull << (block_index & 63))) != 0;
  }

 private:
  std::vector<uint64_t> bits_;
};

class Heap {
 public:
  // Formats the device as a fresh heap.
  static std::unique_ptr<Heap> Format(nvm::PmemDevice* dev, const HeapOptions& opts);
  // Opens an existing heap. Does NOT run recovery: callers must either run
  // core::Recover (full, with graph traversal) or Heap::RecoverBlockScan
  // (the J-PFA-nogc variant) before allocating.
  static std::unique_ptr<Heap> Open(nvm::PmemDevice* dev);

  nvm::PmemDevice& dev() const { return *dev_; }
  uint32_t block_size() const { return block_size_; }
  uint32_t payload_per_block() const { return block_size_ - kBlockHeaderBytes; }
  Offset first_block() const { return first_block_; }
  Offset bump() const { return bump_.load(std::memory_order_relaxed); }
  uint64_t capacity_blocks() const { return (dev_->size() - first_block_) / block_size_; }

  uint64_t BlockIndex(Offset block_off) const { return block_off / block_size_; }
  Offset BlockOffset(uint64_t index) const { return index * block_size_; }
  Offset PayloadOf(Offset block_off) const { return block_off + kBlockHeaderBytes; }
  bool IsBlockAligned(Offset off) const { return off % block_size_ == 0; }

  // ---- Class table -------------------------------------------------------

  // Finds or persists the id for a class name (fences internally; meant for
  // startup-time registration, not hot paths).
  uint16_t InternClassId(std::string_view name);
  // Returns "" for unknown ids.
  std::string ClassName(uint16_t id) const;

  // ---- Root object -------------------------------------------------------

  Offset root_master() const;
  void SetRootMaster(Offset master);  // persists with a fence (startup path)

  // ---- Blocks ------------------------------------------------------------

  // Pops a free block or bumps. The header is NOT initialized: the caller
  // (object allocation, pools, redo log) writes it. Returns 0 when full.
  Offset AllocBlockRaw();
  // Returns a single block to the volatile free queue (no NVMM write).
  void FreeBlockRaw(Offset block);

  BlockHeader ReadHeader(Offset block) const {
    return BlockHeader::Unpack(dev_->Read<uint64_t>(block));
  }
  // Stores the header and queues its line for write-back (no fence).
  void WriteHeader(Offset block, BlockHeader h) {
    dev_->Write<uint64_t>(block, h.Pack());
    dev_->Pwb(block);
  }

  // ---- Objects -----------------------------------------------------------

  // Allocates a chained object in the *invalid* state (§3.2.3). By default
  // the payload is voided and queued for write-back so that a later fence
  // makes the zeroes durable before the object can become live; classes
  // without reference fields that fully initialize their payload may skip
  // the voiding (`zero = false`). No fence here. Returns 0 when full.
  Offset AllocObject(uint16_t class_id, size_t payload_bytes, bool zero = true);

  // Appends the chain blocks of `master` (master first) to `out`.
  void CollectBlocks(Offset master, std::vector<Offset>* out) const;
  size_t ChainLength(Offset master) const;

  // JNVM.free (§4.1.5): invalidate the master, push all blocks to the
  // volatile queue. Deliberately no fence — a developer can free a whole
  // graph of objects under a single explicit pfence.
  void FreeObject(Offset master);

  bool IsValid(Offset master) const { return ReadHeader(master).valid; }
  uint16_t ClassIdOf(Offset block) const { return ReadHeader(block).id; }
  // Sets / clears the valid bit and queues the header line; no fence
  // (validation is decoupled from publication, §3.2.3).
  void SetValid(Offset master);
  void SetInvalid(Offset master);

  // ---- Persistence passthroughs -----------------------------------------

  void Pwb(Offset off) { dev_->Pwb(off); }
  void PwbRange(Offset off, size_t n) { dev_->PwbRange(off, n); }
  void Pfence() { dev_->Pfence(); }
  void Psync() { dev_->Psync(); }

  // ---- Group commit (fence batching, §3.2.3 / Figure 5) ------------------
  //
  // Between BeginGroupCommit and EndGroupCommit, *durability* fences — the
  // trailing "durable on return" fence of a write-through operation — are
  // elided; the caller promises one Psync for the whole batch before it
  // acknowledges any operation in it. *Ordering* fences (contents durable
  // before a publishing store, unlink durable before memory reuse) are NOT
  // affected: they keep the heap crash-consistent inside a batch, so a
  // crash mid-batch loses only unacknowledged operations, never tears one.
  //
  // The mode is heap-wide and unsynchronized by design: it is meant for a
  // single-writer heap (one shard worker per heap in src/server).

  void BeginGroupCommit() { ++group_commit_depth_; }
  void EndGroupCommit() {
    JNVM_DCHECK(group_commit_depth_ > 0);
    --group_commit_depth_;
  }
  bool InGroupCommit() const { return group_commit_depth_ > 0; }
  // Count of durability fences skipped under group commit.
  uint64_t elided_fences() const {
    return stat_elided_fences_.load(std::memory_order_relaxed);
  }

  // A durability-only fence: full Pfence normally, elided under group
  // commit (the batch's final Psync provides durability instead).
  void DurabilityFence() {
    if (group_commit_depth_ > 0) {
      stat_elided_fences_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    dev_->Pfence();
  }

  // ---- Lifecycle & recovery ---------------------------------------------

  void CloseClean();
  bool was_clean_shutdown() const { return clean_shutdown_at_open_; }

  // Log directory (used by src/pfa).
  Offset log_dir_off() const { return log_dir_off_; }
  uint32_t log_slot_count() const { return log_slot_count_; }
  uint32_t log_slot_bytes() const { return log_slot_bytes_; }

  uint64_t NumAllocatedBlocks() const;  // blocks in [first_block, bump)

  struct RecoveryStats {
    uint64_t scanned_blocks = 0;
    uint64_t live_blocks = 0;
    uint64_t freed_blocks = 0;
    double seconds = 0.0;
  };

  // The J-PFA-nogc recovery (§5.3.3): one pass over the blocks — chains of
  // valid masters are live, everything else is freed. No object-graph
  // traversal, so invalid-but-reachable references are NOT nullified; only
  // safe when the application cannot create them (e.g. it always allocates
  // and publishes inside the same failure-atomic block).
  RecoveryStats RecoverBlockScan();

  // Helpers for the full graph recovery implemented in src/core:
  LiveBitmap NewBitmap() const { return LiveBitmap(BlockIndex(dev_->size()) + 1); }
  // Marks all blocks of `master`'s chain live.
  void MarkChainLive(Offset master, LiveBitmap* bitmap) const;
  // Frees every allocated block not marked live: zeroes its header word
  // (clearing the valid bit, §4.1.3), queues it, then issues one fence.
  RecoveryStats SweepUnmarked(const LiveBitmap& bitmap);

  HeapStats stats() const;

  // Point-in-time occupancy snapshot (tooling/examples).
  struct Usage {
    uint64_t capacity_blocks = 0;   // total allocatable blocks
    uint64_t bumped_blocks = 0;     // ever handed out by the bump pointer
    uint64_t free_queue_blocks = 0; // recycled and ready for reuse
    uint64_t in_use_blocks = 0;     // bumped minus queued
    double utilization = 0.0;       // in_use / capacity
  };
  Usage GetUsage() const;

 private:
  Heap() = default;

  void LoadSuper();
  void PersistBump(Offset new_bump);

  // Superblock field offsets.
  static constexpr Offset kMagicOff = 0;
  static constexpr Offset kVersionOff = 8;
  static constexpr Offset kBlockSizeOff = 12;
  static constexpr Offset kHeapBytesOff = 16;
  static constexpr Offset kBumpOff = 24;
  static constexpr Offset kFirstBlockOff = 32;
  static constexpr Offset kRootMasterOff = 40;
  static constexpr Offset kClassTableOff = 48;
  static constexpr Offset kClassTableCapOff = 56;
  static constexpr Offset kCleanShutdownOff = 60;
  static constexpr Offset kLogDirOff = 64;
  static constexpr Offset kLogSlotCountOff = 72;
  static constexpr Offset kLogSlotBytesOff = 76;

  static constexpr uint64_t kMagic = 0x4a4e564d48454150ull;  // "JNVMHEAP"
  static constexpr uint32_t kVersion = 1;
  static constexpr size_t kClassEntryBytes = 64;

  nvm::PmemDevice* dev_ = nullptr;
  uint32_t block_size_ = 0;
  Offset first_block_ = 0;
  Offset class_table_off_ = 0;
  uint32_t class_table_cap_ = 0;
  Offset log_dir_off_ = 0;
  uint32_t log_slot_count_ = 0;
  uint32_t log_slot_bytes_ = 0;
  bool clean_shutdown_at_open_ = false;

  std::atomic<uint64_t> bump_{0};
  std::mutex bump_mu_;
  FreeQueue free_queue_;

  mutable std::mutex class_mu_;
  std::vector<std::string> class_names_;  // index = id - 1

  std::atomic<uint64_t> stat_blocks_allocated_{0};
  std::atomic<uint64_t> stat_blocks_freed_{0};
  std::atomic<uint64_t> stat_objects_allocated_{0};
  std::atomic<uint64_t> stat_objects_freed_{0};

  uint32_t group_commit_depth_ = 0;  // single-writer heaps only
  std::atomic<uint64_t> stat_elided_fences_{0};
};

}  // namespace jnvm::heap

#endif  // JNVM_SRC_HEAP_HEAP_H_
