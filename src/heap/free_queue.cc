#include "src/heap/free_queue.h"

#include <atomic>
#include <thread>

namespace jnvm::heap {

size_t FreeQueue::HomeShard() {
  static std::atomic<size_t> next_id{0};
  thread_local const size_t id = next_id.fetch_add(1, std::memory_order_relaxed);
  return id % kShards;
}

void FreeQueue::Push(Offset block) {
  Shard& s = shards_[HomeShard()];
  std::lock_guard<std::mutex> lk(s.mu);
  s.stack.push_back(block);
}

Offset FreeQueue::Pop() {
  const size_t home = HomeShard();
  for (size_t i = 0; i < kShards; ++i) {
    Shard& s = shards_[(home + i) % kShards];
    std::lock_guard<std::mutex> lk(s.mu);
    if (!s.stack.empty()) {
      const Offset off = s.stack.back();
      s.stack.pop_back();
      return off;
    }
  }
  return 0;
}

void FreeQueue::PushAll(const std::vector<Offset>& blocks) {
  // Spread across shards so concurrent allocators do not contend on one.
  for (size_t i = 0; i < blocks.size(); ++i) {
    Shard& s = shards_[i % kShards];
    std::lock_guard<std::mutex> lk(s.mu);
    s.stack.push_back(blocks[i]);
  }
}

size_t FreeQueue::ApproxSize() const {
  size_t n = 0;
  for (const Shard& s : shards_) {
    std::lock_guard<std::mutex> lk(s.mu);
    n += s.stack.size();
  }
  return n;
}

void FreeQueue::Clear() {
  for (Shard& s : shards_) {
    std::lock_guard<std::mutex> lk(s.mu);
    s.stack.clear();
  }
}

}  // namespace jnvm::heap
