// Cross-shard transaction subsystem (DESIGN.md §9).
//
// MULTI/EXEC batches that touch one shard commit through the existing group
// commit (one record, one Psync). Cross-shard batches run two-phase over
// the per-shard replication logs, in the ARIES log-as-commit-point
// tradition:
//
//   prepare   each participant shard seals a kTxnPrepare record carrying
//             the txn's staged writes for that shard — a physical redo
//             image persisted *without* applying; the store is untouched.
//   decision  the coordinator shard (lowest write-participant index) seals
//             one kTxnCommit record carrying the participant set, each
//             participant's prepare seq and its staged-writes frame. That
//             seal is the txn's durability point.
//   apply     each participant replays its staged writes through the
//             store's apply path inside J-PFA failure-atomic block(s) and
//             seals a kTxnCommit marker in its own log, so every shard's
//             log stays a self-contained deterministic apply script for
//             replicas and chained followers.
//
// A prepared-but-undecided txn resolves at recovery (and at PROMOTE) by
// presence/absence of the sealed decision record on the coordinator's log:
// present → apply + marker, absent → explicit kTxnAbort marker. Abort is
// always explicit on the wire (-TXNABORT) and in the log — never a silent
// partial apply.
//
// This header holds the pieces shared by the shard worker, the server's
// coordinator hook, recovery, and the crashcheck `txn` workload: record
// payload framing, the per-shard participant state (staged table + decision
// index), log scanning/replay, and the in-flight coordinator state machine.
#ifndef JNVM_SRC_TXN_TXN_H_
#define JNVM_SRC_TXN_TXN_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "src/repl/frame.h"
#include "src/repl/repl_log.h"

namespace jnvm::core {
class JnvmRuntime;
}
namespace jnvm::store {
class KvStore;
}

namespace jnvm::txn {

using TxnId = uint64_t;

// 8-byte little-endian txn id <-> the ReplOp::key of a txn record.
std::string TxnIdKey(TxnId id);
bool ParseTxnIdKey(std::string_view key, TxnId* id);

// Monotonic id source. Ids embed the generator's construction time so they
// never repeat across server incarnations: recovery pairs prepare records
// with decision records *by id*, and a reused id could marry a fresh
// prepare to a stale decision still retained in the coordinator's log.
class TxnIdGenerator {
 public:
  TxnIdGenerator();
  TxnId Next() { return base_ + next_.fetch_add(1, std::memory_order_relaxed); }

 private:
  TxnId base_;
  std::atomic<uint64_t> next_{1};
};

// ---- Decision record payload ----------------------------------------------

// One write participant in a sealed decision. The staged-writes frame makes
// the decision self-contained: a promoted replica whose participant stream
// never received the prepare (per-shard streams are independent) can replay
// the writes from the coordinator's record instead of losing the txn.
struct DecisionPart {
  uint32_t shard = 0;
  uint64_t prepare_seq = 0;   // participant log seq that sealed the prepare
  std::string writes_frame;   // EncodeBatch of the participant's staged writes

  bool operator==(const DecisionPart&) const = default;
};

struct Decision {
  std::vector<DecisionPart> parts;

  bool operator==(const Decision&) const = default;
};

void EncodeDecision(const Decision& d, std::string* out);
bool DecodeDecision(std::string_view frame, Decision* out);

// ---- Per-shard participant state -------------------------------------------

// A prepared-but-not-yet-decided txn on one shard.
struct StagedTxn {
  uint32_t coordinator = 0;   // shard whose log holds (or will hold) the decision
  uint64_t prepare_seq = 0;   // log seq of this shard's sealed prepare record
  std::vector<repl::ReplOp> writes;
};

// Staged txns keyed by id. The shard worker is the only mutator; the event
// loop reads it when planning PROMOTE-time resolution, hence the lock.
class StagedTable {
 public:
  void Stage(TxnId id, StagedTxn t);
  // Removes and returns the staged txn; false when absent (idempotent
  // re-delivery of a marker, or an abort for a never-prepared txn).
  bool Take(TxnId id, StagedTxn* out);
  bool Drop(TxnId id);
  bool Has(TxnId id) const;
  size_t Size() const;
  // (id, coordinator) of every staged txn, for resolution planning.
  std::vector<std::pair<TxnId, uint32_t>> Undecided() const;
  // Smallest prepare_seq among staged txns, UINT64_MAX when none. Checkpoint
  // truncation clamps below it: an undecided txn's prepare record must stay
  // in the log until its decision resolves it (DESIGN.md §11).
  uint64_t MinPrepareSeq() const;

 private:
  mutable std::mutex mu_;
  std::map<TxnId, StagedTxn> staged_;
};

// Sealed decisions retained by a coordinator shard, keyed by id. Bounded by
// pruning against the log's start_seq: a decision older than the log's
// retention can no longer pair with a retained prepare.
class DecisionIndex {
 public:
  void Add(TxnId id, uint64_t seq, Decision d);
  bool Has(TxnId id) const;
  bool Lookup(TxnId id, Decision* out) const;
  void PruneBelow(uint64_t start_seq);
  size_t Size() const;
  std::vector<std::pair<TxnId, Decision>> All() const;

 private:
  mutable std::mutex mu_;
  std::map<TxnId, std::pair<uint64_t, Decision>> by_id_;  // id -> (seq, decision)
};

// ---- Log scan + replay (recovery, redo tail, crashcheck oracle) ------------

struct LogScanResult {
  std::map<TxnId, StagedTxn> staged;                       // prepared, undecided
  std::map<TxnId, std::pair<uint64_t, Decision>> decisions;  // id -> (seq, d)
};

// Rebuilds txn state from the sealed records [log.start_seq(), stop_before)
// — pass stop_before = 0 for the whole retained log. Transitions: prepare
// stages, marker/decision resolves (erases the staged entry, decisions are
// indexed), abort drops. Store state is not touched.
void ScanLogForTxns(const repl::ReplLog& log, uint64_t stop_before,
                    LogScanResult* out);

// Replays one sealed record's ops against the store *and* the txn state:
// plain ops go through the Apply* path, prepare stages, marker/decision
// applies the staged writes (idempotently) then erases, abort drops. Used
// by the shard's redo-tail recovery and the crashcheck recovery oracle.
// `rt` may be null (no failure-atomic wrapping — crashcheck runtimes).
void ReplayRecordOps(core::JnvmRuntime* rt, store::KvStore* kv,
                     const std::vector<repl::ReplOp>& ops, LogScanResult* state);

// Applies a txn's staged writes through the store's apply path inside
// failure-atomic block(s): one J-PFA redo-log block when the per-thread log
// can hold the whole txn (an entry budget per write, against the capacity
// the runtime reports), else one block per write — cross-write atomicity is
// then still guaranteed by redo replay of the prepare record at recovery.
// Idempotent. `rt` may be null (plain apply, no FA mediation). `observe`,
// when set, is called per write with whether the store changed shape
// (kPut inserted / kDel removed) — the shard's per-slot accounting hook.
void ApplyStagedWrites(
    core::JnvmRuntime* rt, store::KvStore* kv,
    const std::vector<repl::ReplOp>& writes,
    const std::function<void(const repl::ReplOp&, bool)>& observe = {});

// ---- Recovery / promote resolution -----------------------------------------

// One shard's view for resolution planning.
struct ShardTxnView {
  std::vector<std::pair<TxnId, uint32_t>> undecided;  // (id, coordinator)
  const DecisionIndex* decisions = nullptr;
  uint64_t log_next_seq = 0;
};

struct ResolutionAction {
  uint32_t shard = 0;
  TxnId id = 0;
  uint32_t coordinator = 0;     // the shard whose log holds (or lacks) the decision
  bool commit = false;          // true → apply + marker; false → abort marker
  // Promote repair: the participant never received its prepare (its log
  // never reached prepare_seq), so the writes come from the decision record.
  bool repair = false;
  std::string repair_writes_frame;
};

// Cross-shard resolution: every staged-undecided txn commits iff its
// coordinator's log holds the sealed decision; decisions whose participant
// provably never received the prepare (gapless logs: next_seq <=
// prepare_seq) yield repair actions carrying the writes.
std::vector<ResolutionAction> PlanResolution(
    const std::vector<ShardTxnView>& shards);

// ---- In-flight coordinator state (wire path) -------------------------------

// One queued MULTI op, with its slot in the EXEC reply array.
struct TxnOp {
  enum class Kind : uint8_t { kSet, kGet, kDel };
  Kind kind = Kind::kSet;
  std::string key;
  std::string value;        // kSet only
  size_t reply_index = 0;
};

// One participant shard's slice of the txn.
struct TxnPart {
  uint32_t shard = 0;
  std::vector<TxnOp> ops;     // this shard's ops, in original txn order
  bool has_writes = false;
  std::string writes_frame;   // filled by the shard worker at prepare
  uint64_t prepare_seq = 0;   // filled when the prepare batch seals
};

// The coordinator-side state of one in-flight EXEC. Phase transitions run
// on the event loop; shard workers fill per-part results and count the
// per-phase joins down (the last arrival posts one completion back to the
// loop). Replies and the failure funnel are mutex-guarded — parts touch
// disjoint reply slots but abort can race delivery.
struct TxnState {
  TxnId id = 0;
  uint64_t conn_id = 0;
  uint64_t reply_seq = 0;     // conn reorder slot reserved for the EXEC reply
  uint32_t coordinator = 0;
  size_t nops = 0;
  bool single_shard = false;

  std::vector<TxnPart> parts;

  enum Phase { kPhasePrepare = 0, kPhaseDecide = 1, kPhaseApply = 2 };
  std::atomic<int> phase{kPhasePrepare};
  std::atomic<uint32_t> remaining{0};

  mutable std::mutex mu;
  std::vector<std::string> replies;  // per-op RESP fragments (index = reply_index)
  std::string abort_reason;          // first failure wins; empty = healthy
  bool wait_timeout = false;         // WAIT-K deadline passed on some batch

  void Fail(const std::string& reason);
  void NoteWaitTimeout();
  bool Failed() const;
  std::string AbortReason() const;
  bool WaitTimedOut() const;
  // Decision payload over the write participants (prepare phase complete).
  Decision BuildDecision() const;
};

}  // namespace jnvm::txn

#endif  // JNVM_SRC_TXN_TXN_H_
