#include "src/txn/txn.h"

#include <chrono>
#include <cstring>

#include "src/core/runtime.h"
#include "src/store/kvstore.h"

namespace jnvm::txn {

namespace {

// Entry budget per staged write when sizing one failure-atomic block: a
// worst-case apply touches the record allocation, a couple of string
// allocations, the bucket chain COW and the free of a replaced record.
constexpr uint64_t kFaEntriesPerWrite = 16;

void PutU32(std::string* out, uint32_t v) {
  char b[4];
  std::memcpy(b, &v, 4);
  out->append(b, 4);
}

void PutU64(std::string* out, uint64_t v) {
  char b[8];
  std::memcpy(b, &v, 8);
  out->append(b, 8);
}

void PutBytes(std::string* out, std::string_view s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s.data(), s.size());
}

struct Cursor {
  std::string_view in;
  size_t off = 0;

  bool TakeU32(uint32_t* v) {
    if (in.size() - off < 4) return false;
    std::memcpy(v, in.data() + off, 4);
    off += 4;
    return true;
  }
  bool TakeU64(uint64_t* v) {
    if (in.size() - off < 8) return false;
    std::memcpy(v, in.data() + off, 8);
    off += 8;
    return true;
  }
  bool TakeBytes(std::string* s) {
    uint32_t n = 0;
    if (!TakeU32(&n) || in.size() - off < n) return false;
    s->assign(in.data() + off, n);
    off += n;
    return true;
  }
  bool Done() const { return off == in.size(); }
};

// Returns whether the store changed shape: kPut that inserted a fresh key,
// kDel that removed one. Updates rewrite in place and report false.
bool ApplyOneWrite(store::KvStore* kv, const repl::ReplOp& op) {
  switch (op.kind) {
    case repl::ReplOp::Kind::kPut:
      return kv->ApplyPut(op.key, op.record);
    case repl::ReplOp::Kind::kDel:
      return kv->ApplyDelete(op.key);
    case repl::ReplOp::Kind::kUpdate:
      kv->ApplyUpdate(op.key, op.field, op.value);
      return false;
    default:
      return false;  // txn kinds never nest inside a staged-writes frame
  }
}

}  // namespace

std::string TxnIdKey(TxnId id) {
  std::string key;
  PutU64(&key, id);
  return key;
}

bool ParseTxnIdKey(std::string_view key, TxnId* id) {
  if (key.size() != 8) return false;
  std::memcpy(id, key.data(), 8);
  return true;
}

TxnIdGenerator::TxnIdGenerator() {
  const auto now = std::chrono::system_clock::now().time_since_epoch();
  base_ = static_cast<TxnId>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(now).count());
}

// ---- Decision payload ------------------------------------------------------

void EncodeDecision(const Decision& d, std::string* out) {
  out->clear();
  PutU32(out, static_cast<uint32_t>(d.parts.size()));
  for (const DecisionPart& p : d.parts) {
    PutU32(out, p.shard);
    PutU64(out, p.prepare_seq);
    PutBytes(out, p.writes_frame);
  }
}

bool DecodeDecision(std::string_view frame, Decision* out) {
  Cursor c{frame};
  uint32_t nparts = 0;
  if (!c.TakeU32(&nparts)) return false;
  // shard + prepare_seq + writes length prefix per part.
  if (nparts > (frame.size() - c.off) / 16) return false;
  out->parts.clear();
  out->parts.reserve(nparts);
  for (uint32_t i = 0; i < nparts; ++i) {
    DecisionPart p;
    if (!c.TakeU32(&p.shard) || !c.TakeU64(&p.prepare_seq) ||
        !c.TakeBytes(&p.writes_frame)) {
      return false;
    }
    out->parts.push_back(std::move(p));
  }
  return c.Done();
}

// ---- StagedTable -----------------------------------------------------------

void StagedTable::Stage(TxnId id, StagedTxn t) {
  std::lock_guard<std::mutex> lk(mu_);
  staged_[id] = std::move(t);
}

bool StagedTable::Take(TxnId id, StagedTxn* out) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = staged_.find(id);
  if (it == staged_.end()) return false;
  *out = std::move(it->second);
  staged_.erase(it);
  return true;
}

bool StagedTable::Drop(TxnId id) {
  std::lock_guard<std::mutex> lk(mu_);
  return staged_.erase(id) != 0;
}

bool StagedTable::Has(TxnId id) const {
  std::lock_guard<std::mutex> lk(mu_);
  return staged_.count(id) != 0;
}

size_t StagedTable::Size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return staged_.size();
}

std::vector<std::pair<TxnId, uint32_t>> StagedTable::Undecided() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<std::pair<TxnId, uint32_t>> out;
  out.reserve(staged_.size());
  for (const auto& [id, t] : staged_) {
    out.emplace_back(id, t.coordinator);
  }
  return out;
}

uint64_t StagedTable::MinPrepareSeq() const {
  std::lock_guard<std::mutex> lk(mu_);
  uint64_t min_seq = UINT64_MAX;
  for (const auto& [id, t] : staged_) {
    if (t.prepare_seq != 0 && t.prepare_seq < min_seq) {
      min_seq = t.prepare_seq;
    }
  }
  return min_seq;
}

// ---- DecisionIndex ---------------------------------------------------------

void DecisionIndex::Add(TxnId id, uint64_t seq, Decision d) {
  std::lock_guard<std::mutex> lk(mu_);
  by_id_[id] = {seq, std::move(d)};
}

bool DecisionIndex::Has(TxnId id) const {
  std::lock_guard<std::mutex> lk(mu_);
  return by_id_.count(id) != 0;
}

bool DecisionIndex::Lookup(TxnId id, Decision* out) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = by_id_.find(id);
  if (it == by_id_.end()) return false;
  *out = it->second.second;
  return true;
}

void DecisionIndex::PruneBelow(uint64_t start_seq) {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto it = by_id_.begin(); it != by_id_.end();) {
    if (it->second.first < start_seq) {
      it = by_id_.erase(it);
    } else {
      ++it;
    }
  }
}

size_t DecisionIndex::Size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return by_id_.size();
}

std::vector<std::pair<TxnId, Decision>> DecisionIndex::All() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<std::pair<TxnId, Decision>> out;
  out.reserve(by_id_.size());
  for (const auto& [id, sd] : by_id_) {
    out.emplace_back(id, sd.second);
  }
  return out;
}

// ---- Log scan + replay -----------------------------------------------------

namespace {

// One txn-op state transition, shared by the pure scan (kv == nullptr) and
// the redo replay (kv != nullptr, store effects applied).
void TxnTransition(core::JnvmRuntime* rt, store::KvStore* kv,
                   const repl::ReplOp& op, uint64_t seq, LogScanResult* state) {
  TxnId id = 0;
  if (!ParseTxnIdKey(op.key, &id)) return;
  switch (op.kind) {
    case repl::ReplOp::Kind::kTxnPrepare: {
      StagedTxn t;
      t.coordinator = op.field;
      t.prepare_seq = seq;
      std::vector<repl::ReplOp> writes;
      if (repl::DecodeBatch(op.value, &writes)) {
        t.writes = std::move(writes);
      }
      state->staged[id] = std::move(t);
      break;
    }
    case repl::ReplOp::Kind::kTxnCommit: {
      auto it = state->staged.find(id);
      if (kv != nullptr && it != state->staged.end()) {
        ApplyStagedWrites(rt, kv, it->second.writes);
      }
      if (it != state->staged.end()) state->staged.erase(it);
      if (!op.value.empty()) {
        Decision d;
        if (DecodeDecision(op.value, &d)) {
          state->decisions[id] = {seq, std::move(d)};
        }
      }
      break;
    }
    case repl::ReplOp::Kind::kTxnAbort:
      state->staged.erase(id);
      break;
    default:
      break;
  }
}

}  // namespace

void ScanLogForTxns(const repl::ReplLog& log, uint64_t stop_before,
                    LogScanResult* out) {
  const uint64_t stop = stop_before != 0 ? stop_before : log.next_seq();
  std::string payload;
  std::vector<repl::ReplOp> ops;
  for (uint64_t seq = log.start_seq(); seq < stop; ++seq) {
    if (!log.Read(seq, &payload)) continue;
    if (!repl::DecodeBatch(payload, &ops)) continue;
    for (const repl::ReplOp& op : ops) {
      switch (op.kind) {
        case repl::ReplOp::Kind::kTxnPrepare:
        case repl::ReplOp::Kind::kTxnCommit:
        case repl::ReplOp::Kind::kTxnAbort:
          TxnTransition(nullptr, nullptr, op, seq, out);
          break;
        default:
          break;
      }
    }
  }
}

void ReplayRecordOps(core::JnvmRuntime* rt, store::KvStore* kv,
                     const std::vector<repl::ReplOp>& ops,
                     LogScanResult* state) {
  for (const repl::ReplOp& op : ops) {
    switch (op.kind) {
      case repl::ReplOp::Kind::kPut:
        kv->ApplyPut(op.key, op.record);
        break;
      case repl::ReplOp::Kind::kDel:
        kv->ApplyDelete(op.key);
        break;
      case repl::ReplOp::Kind::kUpdate:
        kv->ApplyUpdate(op.key, op.field, op.value);
        break;
      case repl::ReplOp::Kind::kTxnPrepare:
      case repl::ReplOp::Kind::kTxnCommit:
      case repl::ReplOp::Kind::kTxnAbort:
        TxnTransition(rt, kv, op, /*seq=*/0, state);
        break;
    }
  }
}

void ApplyStagedWrites(
    core::JnvmRuntime* rt, store::KvStore* kv,
    const std::vector<repl::ReplOp>& writes,
    const std::function<void(const repl::ReplOp&, bool)>& observe) {
  const auto apply = [&](const repl::ReplOp& op) {
    const bool changed = ApplyOneWrite(kv, op);
    if (observe) {
      observe(op, changed);
    }
  };
  if (rt == nullptr) {
    for (const repl::ReplOp& op : writes) apply(op);
    return;
  }
  const uint64_t cap = rt->FaLogCapacity();
  if (writes.size() * kFaEntriesPerWrite <= cap) {
    core::FaBlock fa(*rt);
    for (const repl::ReplOp& op : writes) apply(op);
  } else {
    // The txn outgrows one J-PFA redo-log slot: apply per-write blocks;
    // cross-write atomicity still holds through redo replay of the sealed
    // prepare record at recovery.
    for (const repl::ReplOp& op : writes) {
      core::FaBlock fa(*rt);
      apply(op);
    }
  }
}

// ---- Resolution planning ---------------------------------------------------

std::vector<ResolutionAction> PlanResolution(
    const std::vector<ShardTxnView>& shards) {
  std::vector<ResolutionAction> plan;
  // Staged ids per shard, for the repair pass below.
  std::vector<std::set<TxnId>> staged_ids(shards.size());

  for (uint32_t s = 0; s < shards.size(); ++s) {
    for (const auto& [id, coord] : shards[s].undecided) {
      staged_ids[s].insert(id);
      const bool commit = coord < shards.size() &&
                          shards[coord].decisions != nullptr &&
                          shards[coord].decisions->Has(id);
      plan.push_back({s, id, coord, commit, /*repair=*/false, {}});
    }
  }

  // Repair pass: a sealed decision names each participant's prepare seq.
  // Logs are gapless, so a participant whose log never reached that seq
  // provably never received the prepare — replay its writes from the
  // decision record itself (the promote-with-lagging-stream case).
  for (uint32_t c = 0; c < shards.size(); ++c) {
    if (shards[c].decisions == nullptr) continue;
    for (const auto& [id, d] : shards[c].decisions->All()) {
      for (const DecisionPart& p : d.parts) {
        if (p.shard >= shards.size() || p.shard == c) continue;
        if (staged_ids[p.shard].count(id) != 0) continue;  // resolved above
        if (shards[p.shard].log_next_seq > p.prepare_seq) continue;  // done
        plan.push_back({p.shard, id, c, /*commit=*/true, /*repair=*/true,
                        p.writes_frame});
      }
    }
  }
  return plan;
}

// ---- TxnState --------------------------------------------------------------

void TxnState::Fail(const std::string& reason) {
  std::lock_guard<std::mutex> lk(mu);
  if (abort_reason.empty()) abort_reason = reason;
}

void TxnState::NoteWaitTimeout() {
  std::lock_guard<std::mutex> lk(mu);
  wait_timeout = true;
}

bool TxnState::Failed() const {
  std::lock_guard<std::mutex> lk(mu);
  return !abort_reason.empty();
}

std::string TxnState::AbortReason() const {
  std::lock_guard<std::mutex> lk(mu);
  return abort_reason;
}

bool TxnState::WaitTimedOut() const {
  std::lock_guard<std::mutex> lk(mu);
  return wait_timeout;
}

Decision TxnState::BuildDecision() const {
  Decision d;
  for (const TxnPart& p : parts) {
    if (!p.has_writes) continue;
    d.parts.push_back({p.shard, p.prepare_seq, p.writes_frame});
  }
  return d;
}

}  // namespace jnvm::txn
