// YCSB load and run phases against a KvStore (§5.2).
//
// The runner measures per-operation latency into log-bucket histograms (one
// per op type) and aggregate throughput, single- or multi-threaded ("If not
// otherwise specified, YCSB executes in sequential mode (single-threaded
// client)"). Inserts (workload D) extend the key space; the latest
// distribution follows the insertion frontier.
#ifndef JNVM_SRC_YCSB_RUNNER_H_
#define JNVM_SRC_YCSB_RUNNER_H_

#include <atomic>

#include "src/common/histogram.h"
#include "src/store/kvstore.h"
#include "src/ycsb/workload.h"

namespace jnvm::ycsb {

struct RunResult {
  double seconds = 0.0;
  uint64_t ops = 0;
  double throughput_ops_s = 0.0;
  Histogram read;
  Histogram update;
  Histogram insert;
  Histogram rmw;
  Histogram all;

  // CPU time breakdown when a gcsim heap is attached (Figures 1 and 2).
  uint64_t gc_ns = 0;
  uint64_t gc_collections = 0;
};

// Inserts `spec.record_count` records (the YCSB load phase).
void LoadPhase(store::KvStore* kv, const WorkloadSpec& spec, uint64_t seed = 1);

// Executes `total_ops` operations split across `threads` client threads.
// When `gc_heap` is given, the result carries its GC-time delta.
RunResult RunPhase(store::KvStore* kv, const WorkloadSpec& spec, uint64_t total_ops,
                   uint32_t threads = 1, uint64_t seed = 42,
                   gcsim::ManagedHeap* gc_heap = nullptr);

}  // namespace jnvm::ycsb

#endif  // JNVM_SRC_YCSB_RUNNER_H_
