// YCSB workload definitions (§5.2; Cooper et al., SoCC'10, version 0.18).
//
// "Workload A is update-heavy (50% of update), B is read-heavy (95% of
// read) and C is read-only. Workload D consists of repeated reads (95%)
// followed by insertions of new values. Workload F is a mix of read and
// read-modify-write operations." E (scans) is excluded exactly as in the
// paper. Defaults: 3M records of 10 fields × 100 B, zipfian/latest request
// distributions.
#ifndef JNVM_SRC_YCSB_WORKLOAD_H_
#define JNVM_SRC_YCSB_WORKLOAD_H_

#include <cstdint>
#include <string>

namespace jnvm::ycsb {

enum class Dist { kZipfian, kLatest, kUniform };

struct WorkloadSpec {
  std::string name;
  double read = 0.0;
  double update = 0.0;
  double insert = 0.0;
  double rmw = 0.0;
  Dist dist = Dist::kZipfian;

  uint64_t record_count = 3'000'000;
  uint32_t fields = 10;
  uint32_t field_len = 100;

  static WorkloadSpec A() {
    return {.name = "A", .read = 0.5, .update = 0.5, .dist = Dist::kZipfian};
  }
  static WorkloadSpec B() {
    return {.name = "B", .read = 0.95, .update = 0.05, .dist = Dist::kZipfian};
  }
  static WorkloadSpec C() {
    return {.name = "C", .read = 1.0, .dist = Dist::kZipfian};
  }
  static WorkloadSpec D() {
    return {.name = "D", .read = 0.95, .insert = 0.05, .dist = Dist::kLatest};
  }
  static WorkloadSpec F() {
    return {.name = "F", .read = 0.5, .rmw = 0.5, .dist = Dist::kZipfian};
  }
};

// YCSB key format for record index i ("user" + hashed number).
std::string KeyFor(uint64_t index);

}  // namespace jnvm::ycsb

#endif  // JNVM_SRC_YCSB_WORKLOAD_H_
