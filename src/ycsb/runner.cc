#include "src/ycsb/runner.h"

#include <memory>
#include <thread>
#include <vector>

#include "src/common/clock.h"
#include "src/common/rand.h"

namespace jnvm::ycsb {

std::string KeyFor(uint64_t index) {
  // YCSB hashes ordered keys to spread them; "user" + number.
  char buf[32];
  std::snprintf(buf, sizeof(buf), "user%llu",
                static_cast<unsigned long long>(Mix64(index) % 1000000000000ull));
  return buf;
}

void LoadPhase(store::KvStore* kv, const WorkloadSpec& spec, uint64_t seed) {
  for (uint64_t i = 0; i < spec.record_count; ++i) {
    kv->Insert(KeyFor(i),
               store::SyntheticRecord(i, 0, spec.fields, spec.field_len));
  }
}

namespace {

// Shared insertion frontier for workload D.
struct SharedState {
  std::atomic<uint64_t> key_count;
};

class Client {
 public:
  // YCSB's ScrambledZipfianGenerator draws ranks from a zipfian over a huge
  // constant item space (10^10) and hashes them into the actual key space —
  // much flatter over the real keys than a direct zipfian, which is what
  // makes the paper's 10% cache ineffective for FS. The latest distribution
  // uses a direct (unscrambled) zipfian over the insertion window.
  static constexpr uint64_t kScrambledItemSpace = 10'000'000'000ull;

  Client(store::KvStore* kv, const WorkloadSpec& spec, SharedState* shared,
         uint64_t seed)
      : kv_(kv),
        spec_(spec),
        shared_(shared),
        rng_(seed),
        zipf_(spec.dist == Dist::kZipfian ? kScrambledItemSpace : spec.record_count,
              0.99, seed * 31 + 7),
        value_rng_(seed * 131 + 3) {}

  void Run(uint64_t ops, RunResult* out) {
    for (uint64_t i = 0; i < ops; ++i) {
      const double p = rng_.NextDouble();
      const uint64_t t0 = NowNs();
      if (p < spec_.read) {
        DoRead();
        out->read.Record(NowNs() - t0);
      } else if (p < spec_.read + spec_.update) {
        DoUpdate();
        out->update.Record(NowNs() - t0);
      } else if (p < spec_.read + spec_.update + spec_.insert) {
        DoInsert();
        out->insert.Record(NowNs() - t0);
      } else {
        DoRmw();
        out->rmw.Record(NowNs() - t0);
      }
      out->all.Record(NowNs() - t0);
    }
  }

 private:
  uint64_t ChooseKey() {
    const uint64_t n = shared_->key_count.load(std::memory_order_relaxed);
    switch (spec_.dist) {
      case Dist::kZipfian:
        return Mix64(zipf_.Next()) % n;  // scrambled zipfian (see above)
      case Dist::kLatest: {
        const uint64_t off = zipf_.Next() % n;  // skewed to the newest keys
        return n - 1 - off;
      }
      case Dist::kUniform:
        return rng_.NextBelow(n);
    }
    return 0;
  }

  std::string RandomFieldValue() {
    std::string v(spec_.field_len, '\0');
    for (uint32_t i = 0; i < spec_.field_len; ++i) {
      v[i] = static_cast<char>('A' + value_rng_.NextBelow(26));
    }
    return v;
  }

  void DoRead() { kv_->ReadTouch(KeyFor(ChooseKey())); }

  void DoUpdate() {
    kv_->Update(KeyFor(ChooseKey()), rng_.NextBelow(spec_.fields),
                RandomFieldValue());
  }

  void DoInsert() {
    const uint64_t i = shared_->key_count.fetch_add(1, std::memory_order_relaxed);
    kv_->Insert(KeyFor(i),
                store::SyntheticRecord(i, 1, spec_.fields, spec_.field_len));
  }

  void DoRmw() {
    const std::string key = KeyFor(ChooseKey());
    kv_->ReadTouch(key);
    kv_->Update(key, rng_.NextBelow(spec_.fields), RandomFieldValue());
  }

  store::KvStore* kv_;
  const WorkloadSpec& spec_;
  SharedState* shared_;
  Xorshift rng_;
  ZipfianGenerator zipf_;
  Xorshift value_rng_;
};

}  // namespace

RunResult RunPhase(store::KvStore* kv, const WorkloadSpec& spec, uint64_t total_ops,
                   uint32_t threads, uint64_t seed, gcsim::ManagedHeap* gc_heap) {
  SharedState shared{.key_count{spec.record_count}};
  std::vector<RunResult> partial(threads);

  const uint64_t gc_ns_before = gc_heap != nullptr ? gc_heap->stats().gc_ns_total : 0;
  const uint64_t gc_runs_before = gc_heap != nullptr ? gc_heap->stats().collections : 0;

  Stopwatch sw;
  if (threads == 1) {
    Client c(kv, spec, &shared, seed);
    c.Run(total_ops, &partial[0]);
  } else {
    std::vector<std::thread> workers;
    const uint64_t per_thread = total_ops / threads;
    for (uint32_t t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        Client c(kv, spec, &shared, seed + t * 1000003);
        c.Run(per_thread, &partial[t]);
      });
    }
    for (auto& w : workers) {
      w.join();
    }
  }

  RunResult out;
  out.seconds = sw.ElapsedSec();
  for (const RunResult& p : partial) {
    out.read.Merge(p.read);
    out.update.Merge(p.update);
    out.insert.Merge(p.insert);
    out.rmw.Merge(p.rmw);
    out.all.Merge(p.all);
  }
  out.ops = out.all.count();
  out.throughput_ops_s = static_cast<double>(out.ops) / out.seconds;
  if (gc_heap != nullptr) {
    out.gc_ns = gc_heap->stats().gc_ns_total - gc_ns_before;
    out.gc_collections = gc_heap->stats().collections - gc_runs_before;
  }
  return out;
}

}  // namespace jnvm::ycsb
