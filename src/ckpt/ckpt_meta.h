// Durable per-shard checkpoint metadata (DESIGN.md §11).
//
// One single-block PObject per shard heap records the LSN pair of the last
// completed fuzzy checkpoint:
//
//   begin_seq   the replication-log sequence recovery must replay from: the
//               log's next_seq at the instant the checkpoint finalized,
//               *after* a Psync made every sealed record's store effects
//               durable. Every record below begin_seq is fully reflected in
//               the store image, so the log may truncate below it.
//   end_seq     the last sealed record the checkpoint covers (begin_seq - 1
//               by construction; stored explicitly so the pair is
//               self-describing in STATS and jnvm_inspect).
//   count       checkpoints completed on this heap; zero means "never
//               checkpointed" and recovery falls back to tail-only replay.
//
// Crash consistency: the finalize sequence is Psync (store effects durable)
// → Publish (writes + write-backs, single block) → Pfence (meta durable) →
// TruncateBelow(begin_seq). The meta lines are written strictly after the
// Psync in program order, so even a torn finalize only ever exposes a meta
// whose begin_seq is safe — either the old pair or the new one, and both
// name a replay point whose predecessors are durably applied. Truncation
// runs strictly after the meta fence, so a retained-log gap below begin_seq
// can only exist once begin_seq itself is durable.
#ifndef JNVM_SRC_CKPT_CKPT_META_H_
#define JNVM_SRC_CKPT_CKPT_META_H_

#include <cstdint>

#include "src/core/pobject.h"
#include "src/core/runtime.h"

namespace jnvm::ckpt {

class CkptMeta final : public core::PObject {
 public:
  static const core::ClassInfo* Class();

  explicit CkptMeta(core::Resurrect) {}
  explicit CkptMeta(core::JnvmRuntime& rt);

  static constexpr size_t kBeginSeqOff = 0;
  static constexpr size_t kEndSeqOff = 8;
  static constexpr size_t kCountOff = 16;
  static constexpr size_t kWalkedKeysOff = 24;
  static constexpr size_t kWalkedBytesOff = 32;
  static constexpr size_t kBytes = 40;

  uint64_t BeginSeq() const { return ReadField<uint64_t>(kBeginSeqOff); }
  uint64_t EndSeq() const { return ReadField<uint64_t>(kEndSeqOff); }
  uint64_t Count() const { return ReadField<uint64_t>(kCountOff); }
  uint64_t WalkedKeys() const { return ReadField<uint64_t>(kWalkedKeysOff); }
  uint64_t WalkedBytes() const { return ReadField<uint64_t>(kWalkedBytesOff); }

  // Writes the new pair and write-backs the block; the caller orders it
  // after the store-durability Psync and seals it with its own fence (see
  // the finalize sequence above). Bumps Count() by one.
  void Publish(uint64_t begin_seq, uint64_t end_seq, uint64_t walked_keys,
               uint64_t walked_bytes);
};

}  // namespace jnvm::ckpt

#endif  // JNVM_SRC_CKPT_CKPT_META_H_
