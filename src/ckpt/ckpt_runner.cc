#include "src/ckpt/ckpt_runner.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "src/cluster/slot_map.h"
#include "src/server/protocol.h"
#include "src/server/shard.h"

namespace jnvm::ckpt {

namespace {

// Slots walked per kCkpt chunk: 8 chunks cover the 16384-slot space, so
// client batches interleave at least 8 times per shard during the walk.
constexpr uint32_t kWalkChunkSlots = cluster::kNumSlots / 8;

// Submits an internal control request and waits for the waiter payload
// ('+…' = success, '-…' = failure). False when the shard is stopping.
bool RoundtripShard(server::Shard* shard, server::Request&& req, bool* ok,
                    std::string* payload) {
  auto waiter = std::make_shared<server::ReplWaiter>();
  req.waiter = waiter;
  if (!shard->Submit(std::move(req))) {
    return false;
  }
  *ok = waiter->Wait();
  *payload = std::move(waiter->error);
  return true;
}

}  // namespace

CheckpointRunner::CheckpointRunner(std::vector<server::Shard*> shards,
                                   server::CompletionSink* sink)
    : shards_(std::move(shards)), sink_(sink) {}

CheckpointRunner::~CheckpointRunner() { Join(); }

void CheckpointRunner::Join() {
  if (thread_.joinable()) {
    thread_.join();
  }
}

std::string CheckpointRunner::status() const {
  std::lock_guard<std::mutex> lk(mu_);
  return status_;
}

void CheckpointRunner::SetStatus(const std::string& s) {
  std::lock_guard<std::mutex> lk(mu_);
  status_ = s;
}

bool CheckpointRunner::Trigger(uint64_t conn_id, uint64_t seq) {
  if (busy_.exchange(true, std::memory_order_acq_rel)) {
    return false;
  }
  Join();  // reap the previous pass's thread
  SetStatus("starting");
  thread_ = std::thread(&CheckpointRunner::Run, this, conn_id, seq);
  return true;
}

bool CheckpointRunner::CheckpointShard(size_t shard_idx, std::string* summary,
                                       std::string* err) {
  server::Shard* shard = shards_[shard_idx];
  // Walk phase: fuzzy — each chunk is one singleton control batch, client
  // batches run in between.
  for (uint32_t lo = 0; lo < cluster::kNumSlots; lo += kWalkChunkSlots) {
    const uint32_t hi =
        std::min<uint32_t>(lo + kWalkChunkSlots, cluster::kNumSlots) - 1;
    SetStatus("walk shard " + std::to_string(shard_idx + 1) + "/" +
              std::to_string(shards_.size()) + " slots " + std::to_string(lo) +
              ".." + std::to_string(hi));
    server::Request req;
    req.op = server::Request::Op::kCkpt;
    req.field = 0;  // walk
    req.slot_lo = static_cast<uint16_t>(lo);
    req.slot_hi = static_cast<uint16_t>(hi);
    bool ok = false;
    std::string payload;
    if (!RoundtripShard(shard, std::move(req), &ok, &payload)) {
      *err = "shard " + std::to_string(shard_idx) + " is stopping";
      return false;
    }
    if (!ok) {
      *err = "shard " + std::to_string(shard_idx) + " walk: " +
             (payload.empty() ? "refused" : payload.substr(1));
      return false;
    }
  }
  // Finalize: THE durability point of the checkpoint (see ckpt_meta.h).
  SetStatus("finalize shard " + std::to_string(shard_idx + 1) + "/" +
            std::to_string(shards_.size()));
  server::Request req;
  req.op = server::Request::Op::kCkpt;
  req.field = 1;  // finalize
  bool ok = false;
  std::string payload;
  if (!RoundtripShard(shard, std::move(req), &ok, &payload)) {
    *err = "shard " + std::to_string(shard_idx) + " is stopping";
    return false;
  }
  if (!ok) {
    *err = "shard " + std::to_string(shard_idx) + " finalize: " +
           (payload.empty() ? "refused" : payload.substr(1));
    return false;
  }
  *summary = payload.substr(1);  // "begin=<b> end=<e> truncated=<n>"
  return true;
}

void CheckpointRunner::Run(uint64_t conn_id, uint64_t seq) {
  std::string reply;
  std::string detail;
  bool failed = false;
  for (size_t i = 0; i < shards_.size(); ++i) {
    std::string summary;
    std::string err;
    if (!CheckpointShard(i, &summary, &err)) {
      SetStatus("failed: " + err);
      if (conn_id != 0) {
        server::AppendErrorCode(&reply, "CKPT " + err);
      }
      failed = true;
      break;
    }
    if (!detail.empty()) {
      detail += " ";
    }
    detail += "shard" + std::to_string(i) + " " + summary;
  }
  if (!failed) {
    SetStatus("done " + detail);
    if (conn_id != 0) {
      server::AppendSimple(&reply, "OK " + detail);
    }
  }
  // Clear busy before posting the completion: the reply means "this pass is
  // over", so a client that pipelines CKPT right behind it must not race a
  // still-set flag into -BUSY. A concurrent Trigger that wins the flag while
  // this thread unwinds simply Join()s it first.
  busy_.store(false, std::memory_order_release);
  if (conn_id != 0) {
    server::Completion c;
    c.conn_id = conn_id;
    c.seq = seq;
    c.reply = std::move(reply);
    sink_->OnCompletion(std::move(c));
  }
}

}  // namespace jnvm::ckpt
