// Fuzzy checkpoint driver (DESIGN.md §11) — one per server.
//
// A checkpoint bounds recovery and resync: after it completes, replay
// starts at the durable [ckpt_begin_seq] instead of the image boundary, and
// the replication log reclaims every sealed segment below it. The runner
// drives all shards from a dedicated thread (the Migrator discipline — the
// event loop never blocks) in two phases per shard:
//
//   walk       chunked kCkpt control batches, one slot range at a time.
//              Under the J-NVM heap the store *is* the checkpoint image —
//              every batch's Psync already made its effects durable in
//              place — so the walk does no copying: it validates the
//              in-range records through the snapshot cursor and accounts
//              keys/bytes. Client traffic interleaves between chunks; the
//              checkpoint is fuzzy, never stop-the-world.
//   finalize   one singleton kCkpt batch: Psync (seals every record's
//              store effects) → publish the LSN pair in CkptMeta → Pfence →
//              TruncateBelow(begin). See ckpt_meta.h for why a crash at any
//              point of this sequence leaves a safe replay bound.
//
// Triggered by the CKPT admin verb (reply posted through the CompletionSink
// when done) or by the --ckpt-interval timer (conn_id 0, no reply).
#ifndef JNVM_SRC_CKPT_CKPT_RUNNER_H_
#define JNVM_SRC_CKPT_CKPT_RUNNER_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace jnvm::server {
class CompletionSink;
class Shard;
}  // namespace jnvm::server

namespace jnvm::ckpt {

class CheckpointRunner {
 public:
  // Borrows the shard fleet and the completion sink; both must outlive it.
  CheckpointRunner(std::vector<server::Shard*> shards,
                   server::CompletionSink* sink);
  ~CheckpointRunner();

  // Launches one checkpoint pass over every shard. False when a pass is
  // already running (the caller replies -BUSY). conn_id 0 = timer-triggered,
  // no completion is posted.
  bool Trigger(uint64_t conn_id, uint64_t seq);

  bool busy() const { return busy_.load(std::memory_order_acquire); }
  // One line for STATS: "idle", "walk shard 1/4 slots 2048..4095",
  // "done ...", "failed: <reason>".
  std::string status() const;
  // Blocks until the running pass (if any) finishes. Tests, CI, shutdown.
  void Join();

 private:
  void Run(uint64_t conn_id, uint64_t seq);
  void SetStatus(const std::string& s);
  // False = terminal failure (status set, *err carries the reason).
  bool CheckpointShard(size_t shard_idx, std::string* summary,
                       std::string* err);

  std::vector<server::Shard*> shards_;
  server::CompletionSink* sink_;

  std::atomic<bool> busy_{false};
  std::thread thread_;
  mutable std::mutex mu_;
  std::string status_ = "idle";
};

}  // namespace jnvm::ckpt

#endif  // JNVM_SRC_CKPT_CKPT_RUNNER_H_
