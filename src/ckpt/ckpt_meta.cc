#include "src/ckpt/ckpt_meta.h"

namespace jnvm::ckpt {

const core::ClassInfo* CkptMeta::Class() {
  // No Trace: the block holds plain counters, no references.
  static const core::ClassInfo* info =
      RegisterClass(core::MakeClassInfo<CkptMeta>("ckpt.Meta"));
  return info;
}

CkptMeta::CkptMeta(core::JnvmRuntime& rt) {
  AllocatePersistent(rt, Class(), kBytes);
  // begin_seq = 1 / count = 0 is the "never checkpointed" state: recovery
  // treats it as "no bound below the tail" and replays tail-only.
  WriteField<uint64_t>(kBeginSeqOff, 1);
  WriteField<uint64_t>(kEndSeqOff, 0);
  WriteField<uint64_t>(kCountOff, 0);
  WriteField<uint64_t>(kWalkedKeysOff, 0);
  WriteField<uint64_t>(kWalkedBytesOff, 0);
  Pwb();
  Validate();
}

void CkptMeta::Publish(uint64_t begin_seq, uint64_t end_seq,
                       uint64_t walked_keys, uint64_t walked_bytes) {
  WriteField<uint64_t>(kBeginSeqOff, begin_seq);
  WriteField<uint64_t>(kEndSeqOff, end_seq);
  WriteField<uint64_t>(kCountOff, Count() + 1);
  WriteField<uint64_t>(kWalkedKeysOff, walked_keys);
  WriteField<uint64_t>(kWalkedBytesOff, walked_bytes);
  Pwb();
}

}  // namespace jnvm::ckpt
