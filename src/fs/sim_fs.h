// Simulated file systems (§5.1 "Persistent backends").
//
// The paper's FS backend stores Infinispan records through ext4-DAX on
// NVMM; the reference baselines are TmpFS (DRAM file system) and NullFS (a
// virtual file system that treats read/write as no-ops [1]). Figure 8's
// punchline is that all three perform alike: the dominant cost is
// marshalling, not the file system.
//
// SimFs models one flat file (Infinispan's single-file store): pread/pwrite
// with a per-call syscall latency, plus fsync. Implementations:
//   NvmFs  — backed by a region of the simulated NVMM device (ext4-DAX),
//   TmpFs  — backed by DRAM,
//   NullFs — data is discarded; a DRAM shadow keeps reads answerable so the
//            store above behaves correctly (documented deviation — the real
//            nullfs returns garbage, which Infinispan tolerated because the
//            benchmark never validates reads).
#ifndef JNVM_SRC_FS_SIM_FS_H_
#define JNVM_SRC_FS_SIM_FS_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "src/common/check.h"
#include "src/common/clock.h"
#include "src/nvm/pmem_device.h"

namespace jnvm::fs {

struct FsOptions {
  // Fixed cost per pread/pwrite/fsync call (system-call + VFS path).
  uint32_t syscall_latency_ns = 600;
};

struct FsStats {
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t syncs = 0;
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
};

class SimFs {
 public:
  explicit SimFs(const FsOptions& opts) : opts_(opts) {}
  virtual ~SimFs() = default;

  virtual void Pwrite(uint64_t off, const void* src, size_t n) = 0;
  virtual void Pread(uint64_t off, void* dst, size_t n) = 0;
  virtual void Fsync() = 0;
  virtual uint64_t capacity() const = 0;

  FsStats stats() const {
    FsStats s;
    s.reads = reads_.load(std::memory_order_relaxed);
    s.writes = writes_.load(std::memory_order_relaxed);
    s.syncs = syncs_.load(std::memory_order_relaxed);
    s.bytes_read = bytes_read_.load(std::memory_order_relaxed);
    s.bytes_written = bytes_written_.load(std::memory_order_relaxed);
    return s;
  }

 protected:
  void ChargeCall() { SpinFor(opts_.syscall_latency_ns); }
  void CountRead(size_t n) {
    reads_.fetch_add(1, std::memory_order_relaxed);
    bytes_read_.fetch_add(n, std::memory_order_relaxed);
  }
  void CountWrite(size_t n) {
    writes_.fetch_add(1, std::memory_order_relaxed);
    bytes_written_.fetch_add(n, std::memory_order_relaxed);
  }
  void CountSync() { syncs_.fetch_add(1, std::memory_order_relaxed); }

  FsOptions opts_;

 private:
  std::atomic<uint64_t> reads_{0}, writes_{0}, syncs_{0};
  std::atomic<uint64_t> bytes_read_{0}, bytes_written_{0};
};

// ext4-DAX on the simulated NVMM device: data lands in a device region.
class NvmFs final : public SimFs {
 public:
  NvmFs(nvm::PmemDevice* dev, uint64_t base, uint64_t capacity, const FsOptions& opts)
      : SimFs(opts), dev_(dev), base_(base), capacity_(capacity) {
    JNVM_CHECK(base + capacity <= dev->size());
  }

  void Pwrite(uint64_t off, const void* src, size_t n) override {
    JNVM_CHECK(off + n <= capacity_);
    ChargeCall();
    dev_->WriteBytes(base_ + off, src, n);
    // DAX write-through semantics used by the store: flush written lines.
    dev_->PwbRange(base_ + off, n);
    CountWrite(n);
  }

  void Pread(uint64_t off, void* dst, size_t n) override {
    JNVM_CHECK(off + n <= capacity_);
    ChargeCall();
    dev_->ReadBytes(base_ + off, dst, n);
    CountRead(n);
  }

  void Fsync() override {
    ChargeCall();
    dev_->Psync();
    CountSync();
  }

  uint64_t capacity() const override { return capacity_; }

 private:
  nvm::PmemDevice* dev_;
  uint64_t base_;
  uint64_t capacity_;
};

// A DRAM-backed file system (tmpfs).
class TmpFs final : public SimFs {
 public:
  TmpFs(uint64_t capacity, const FsOptions& opts) : SimFs(opts), data_(capacity) {}

  void Pwrite(uint64_t off, const void* src, size_t n) override {
    JNVM_CHECK(off + n <= data_.size());
    ChargeCall();
    memcpy(data_.data() + off, src, n);
    CountWrite(n);
  }

  void Pread(uint64_t off, void* dst, size_t n) override {
    JNVM_CHECK(off + n <= data_.size());
    ChargeCall();
    memcpy(dst, data_.data() + off, n);
    CountRead(n);
  }

  void Fsync() override {
    ChargeCall();
    CountSync();
  }

  uint64_t capacity() const override { return data_.size(); }

 private:
  std::vector<char> data_;
};

// nullfs: reads and writes are no-ops (no copying); a shadow buffer keeps
// the contents observable so the store above still works.
class NullFs final : public SimFs {
 public:
  NullFs(uint64_t capacity, const FsOptions& opts) : SimFs(opts), shadow_(capacity) {}

  void Pwrite(uint64_t off, const void* src, size_t n) override {
    JNVM_CHECK(off + n <= shadow_.size());
    ChargeCall();
    // The "no-op" write: the data path is skipped. The shadow copy below is
    // bookkeeping for correctness, excluded from the modelled cost.
    memcpy(shadow_.data() + off, src, n);
    CountWrite(n);
  }

  void Pread(uint64_t off, void* dst, size_t n) override {
    JNVM_CHECK(off + n <= shadow_.size());
    ChargeCall();
    memcpy(dst, shadow_.data() + off, n);
    CountRead(n);
  }

  void Fsync() override {
    ChargeCall();
    CountSync();
  }

  uint64_t capacity() const override { return shadow_.size(); }

 private:
  std::vector<char> shadow_;
};

}  // namespace jnvm::fs

#endif  // JNVM_SRC_FS_SIM_FS_H_
