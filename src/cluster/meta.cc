#include "src/cluster/meta.h"

#include <cstring>
#include <sstream>

#include "src/common/check.h"

namespace jnvm::cluster {

namespace {
constexpr char kRootName[] = "cluster.meta";
}

const char* ClusterState::RootName() { return kRootName; }

// ---- ClusterMetaRoot ---------------------------------------------------------

const core::ClassInfo* ClusterMetaRoot::Class() {
  static const core::ClassInfo* info =
      RegisterClass(core::MakeClassInfo<ClusterMetaRoot>("cluster.Meta"));
  return info;
}

ClusterMetaRoot::ClusterMetaRoot(core::JnvmRuntime& rt) {
  // Zero-allocated: epoch 0, empty node table. Owners must read as
  // kNoOwner, not node 0, so the table is explicitly filled.
  AllocatePersistent(rt, Class(), kPayloadBytes);
  std::vector<uint16_t> unowned(kNumSlots, kNoOwner);
  WriteBytesField(kOwnersOff, unowned.data(), 2ull * kNumSlots);
  Pwb();
  Validate();
}

void ClusterMetaRoot::WriteEpoch(uint64_t v) {
  WriteField<uint64_t>(kEpochOff, v);
  PwbField(kEpochOff, 8);
}

void ClusterMetaRoot::WriteSelf(uint32_t v) {
  WriteField<uint32_t>(kSelfOff, v);
  PwbField(kSelfOff, 4);
}

void ClusterMetaRoot::WriteNodeCount(uint32_t v) {
  WriteField<uint32_t>(kNodeCountOff, v);
  PwbField(kNodeCountOff, 4);
}

void ClusterMetaRoot::WriteMigRecord(uint32_t state, uint32_t peer,
                                     uint32_t lo, uint32_t hi) {
  // All four words live in one cache line (offsets 16..31): the record
  // transitions atomically under the strict device model.
  WriteField<uint32_t>(kMigStateOff, state);
  WriteField<uint32_t>(kMigPeerOff, peer);
  WriteField<uint32_t>(kMigLoOff, lo);
  WriteField<uint32_t>(kMigHiOff, hi);
  PwbField(kMigStateOff, 16);
}

std::string ClusterMetaRoot::NodeAddr(uint32_t i) const {
  JNVM_CHECK(i < kMaxNodes);
  char buf[kAddrBytes];
  ReadBytesField(kNodesOff + i * kAddrBytes, buf, kAddrBytes);
  buf[kAddrBytes - 1] = '\0';
  return std::string(buf);
}

void ClusterMetaRoot::WriteNodeAddr(uint32_t i, const std::string& addr) {
  JNVM_CHECK(i < kMaxNodes);
  JNVM_CHECK_MSG(addr.size() < kAddrBytes, "node address too long");
  char buf[kAddrBytes] = {};
  std::memcpy(buf, addr.data(), addr.size());
  WriteBytesField(kNodesOff + i * kAddrBytes, buf, kAddrBytes);
  PwbField(kNodesOff + i * kAddrBytes, kAddrBytes);
}

uint16_t ClusterMetaRoot::Owner(uint32_t slot) const {
  JNVM_CHECK(slot < kNumSlots);
  return ReadField<uint16_t>(kOwnersOff + 2ull * slot);
}

void ClusterMetaRoot::ReadOwners(uint16_t* out) const {
  ReadBytesField(kOwnersOff, out, 2ull * kNumSlots);
}

void ClusterMetaRoot::WriteOwnerRange(uint32_t lo, uint32_t hi, uint16_t node) {
  JNVM_CHECK(lo <= hi && hi < kNumSlots);
  std::vector<uint16_t> run(hi - lo + 1, node);
  WriteBytesField(kOwnersOff + 2ull * lo, run.data(), 2ull * run.size());
  PwbField(kOwnersOff + 2ull * lo, 2ull * run.size());
}

// ---- ClusterState ------------------------------------------------------------

std::unique_ptr<ClusterState> ClusterState::Open(const ClusterOptions& opts,
                                                 std::string* error) {
  // Register before recovery: a fresh process restarting on an existing
  // meta heap scans live objects during Open() below.
  ClusterMetaRoot::Class();
  auto cs = std::unique_ptr<ClusterState>(new ClusterState());
  bool recovered = false;
  if (!opts.dax_path.empty()) {
    nvm::DeviceOptions dopts;
    dopts.size_bytes = opts.device_bytes;
    cs->dev_ = nvm::PmemDevice::MapFile(opts.dax_path, dopts, &recovered, error);
    if (cs->dev_ == nullptr) {
      return nullptr;
    }
  } else if (!opts.image_path.empty()) {
    cs->dev_ = nvm::PmemDevice::LoadFrom(opts.image_path, {});
    recovered = cs->dev_ != nullptr;
    cs->image_path_ = opts.image_path;
  }
  if (cs->dev_ == nullptr) {
    nvm::DeviceOptions dopts;
    dopts.size_bytes = opts.device_bytes;
    cs->dev_ = std::make_unique<nvm::PmemDevice>(dopts);
  }
  cs->rt_own_ = recovered ? core::JnvmRuntime::Open(cs->dev_.get())
                          : core::JnvmRuntime::Format(cs->dev_.get());
  if (cs->rt_own_ == nullptr) {
    if (error != nullptr) *error = "cluster meta heap open failed";
    return nullptr;
  }
  cs->rt_ = cs->rt_own_.get();
  cs->BindRoot(kRootName, opts.self, opts.announce);
  return cs;
}

std::unique_ptr<ClusterState> ClusterState::Bind(core::JnvmRuntime* rt,
                                                 const std::string& root_name,
                                                 uint32_t self,
                                                 const std::string& announce) {
  JNVM_CHECK(rt != nullptr);
  auto cs = std::unique_ptr<ClusterState>(new ClusterState());
  cs->rt_ = rt;
  cs->BindRoot(root_name, self, announce);
  return cs;
}

ClusterState::~ClusterState() = default;

void ClusterState::BindRoot(const std::string& root_name, uint32_t self,
                            const std::string& announce) {
  ClusterMetaRoot::Class();
  std::lock_guard<std::mutex> lk(mu_);
  owners_.resize(kNumSlots, kNoOwner);
  if (rt_->root().Exists(root_name)) {
    root_ = rt_->root().GetAs<ClusterMetaRoot>(root_name);
    JNVM_CHECK(root_ != nullptr);
  } else {
    root_ = std::make_shared<ClusterMetaRoot>(*rt_);
    rt_->root().Put(root_name, root_.get());
    root_->WriteSelf(self);
    if (!announce.empty()) {
      root_->WriteNodeAddr(self, announce);
      root_->WriteNodeCount(self + 1);
    }
    rt_->Psync();
  }
  // Mirror the persisted table, then run the migration-record recovery
  // rules (no-ops on a fresh table).
  epoch_ = root_->Epoch();
  self_ = root_->Self();
  node_count_ = root_->NodeCount();
  for (uint32_t i = 0; i < ClusterMetaRoot::kMaxNodes; ++i) {
    nodes_[i] = root_->NodeAddr(i);
  }
  root_->ReadOwners(owners_.data());
  mig_state_ = static_cast<MigState>(root_->MigState());
  mig_peer_ = root_->MigPeer();
  mig_lo_ = root_->MigLo();
  mig_hi_ = root_->MigHi();
  // A caller-supplied announce address updates a stale persisted one (the
  // node may come back on a different port).
  if (!announce.empty() && nodes_[self_] != announce) {
    root_->WriteNodeAddr(self_, announce);
    nodes_[self_] = announce;
    if (node_count_ < self_ + 1) {
      node_count_ = self_ + 1;
      root_->WriteNodeCount(node_count_);
    }
    rt_->Psync();
  }
  RecoverLocked();
}

void ClusterState::RecoverLocked() {
  switch (mig_state_) {
    case MigState::kNone:
    case MigState::kImporting:
      // Importing survives restart: partial copies are unserved (owners
      // still name the source) and a re-driven MIGSTART resets the range.
      return;
    case MigState::kMigrating:
      // The destination cannot have committed (commit requires handoff
      // first), so the source still owns every key: roll back.
      PersistMigRecordLocked(MigState::kNone, 0, 0, 0);
      rt_->Psync();
      return;
    case MigState::kHandoff: {
      // The owner rewrite is redone only when it visibly began: an owner
      // word naming the peer proves FinishMigration ran, which proves the
      // destination acked MIGCOMMIT. Otherwise the destination's state is
      // unknown and the range stays frozen until the driver re-runs the
      // migration (Lookup answers -TRYAGAIN for it meanwhile).
      bool began = false;
      for (uint32_t s = mig_lo_; s <= mig_hi_ && !began; ++s) {
        began = owners_[s] == mig_peer_;
      }
      if (began) {
        PersistOwnerRangeLocked(mig_lo_, mig_hi_, static_cast<uint16_t>(mig_peer_));
        rt_->Psync();
        PersistEpochLocked(epoch_ + 1);
        PersistMigRecordLocked(MigState::kNone, 0, 0, 0);
        rt_->Psync();
      }
      return;
    }
  }
}

bool ClusterState::Close() {
  std::lock_guard<std::mutex> lk(mu_);
  if (rt_own_ != nullptr) {
    rt_own_->Psync();
    rt_own_->Close();
    rt_own_.reset();
    rt_ = nullptr;
    root_.reset();
    if (!image_path_.empty() && dev_ != nullptr) {
      return dev_->SaveTo(image_path_);
    }
  }
  return true;
}

uint64_t ClusterState::epoch() const {
  std::lock_guard<std::mutex> lk(mu_);
  return epoch_;
}

std::string ClusterState::NodeAddr(uint32_t i) const {
  std::lock_guard<std::mutex> lk(mu_);
  return i < ClusterMetaRoot::kMaxNodes ? nodes_[i] : std::string();
}

uint32_t ClusterState::node_count() const {
  std::lock_guard<std::mutex> lk(mu_);
  return node_count_;
}

uint64_t ClusterState::slots_owned() const {
  std::lock_guard<std::mutex> lk(mu_);
  uint64_t n = 0;
  for (const uint16_t o : owners_) {
    n += o == self_ ? 1 : 0;
  }
  return n;
}

uint16_t ClusterState::OwnerOf(uint16_t slot) const {
  std::lock_guard<std::mutex> lk(mu_);
  return owners_[slot];
}

MigState ClusterState::mig_state() const {
  std::lock_guard<std::mutex> lk(mu_);
  return mig_state_;
}

void ClusterState::MigRange(uint32_t* lo, uint32_t* hi, uint32_t* peer) const {
  std::lock_guard<std::mutex> lk(mu_);
  *lo = mig_lo_;
  *hi = mig_hi_;
  *peer = mig_peer_;
}

Route ClusterState::Lookup(uint16_t slot, bool asking) const {
  std::lock_guard<std::mutex> lk(mu_);
  Route r;
  const uint16_t owner = owners_[slot];
  if (owner == kNoOwner) {
    r.action = Route::Action::kDown;
    return r;
  }
  const bool in_mig_range =
      mig_state_ != MigState::kNone && slot >= mig_lo_ && slot <= mig_hi_;
  if (owner == self_) {
    if (in_mig_range && mig_state_ == MigState::kHandoff) {
      // Frozen: the destination may already serve this range; answering
      // here could return stale data or lose a write.
      r.action = Route::Action::kTryAgain;
      return r;
    }
    if (in_mig_range && mig_state_ == MigState::kMigrating) {
      r.action = Route::Action::kLocal;
      r.migrating = true;
      r.addr = mig_peer_ < ClusterMetaRoot::kMaxNodes ? nodes_[mig_peer_]
                                                      : std::string();
      return r;
    }
    r.action = Route::Action::kLocal;
    return r;
  }
  if (in_mig_range && mig_state_ == MigState::kImporting && asking) {
    // One-shot ASK redirect landed here: accept the key even though the
    // table still names the source.
    r.action = Route::Action::kLocal;
    return r;
  }
  r.action = Route::Action::kMoved;
  r.addr = owner < ClusterMetaRoot::kMaxNodes ? nodes_[owner] : std::string();
  return r;
}

bool ClusterState::Meet(uint32_t idx, const std::string& addr, std::string* err) {
  std::lock_guard<std::mutex> lk(mu_);
  if (idx >= ClusterMetaRoot::kMaxNodes) {
    if (err != nullptr) *err = "node index out of range";
    return false;
  }
  if (addr.empty() || addr.size() >= ClusterMetaRoot::kAddrBytes) {
    if (err != nullptr) *err = "bad node address";
    return false;
  }
  root_->WriteNodeAddr(idx, addr);
  nodes_[idx] = addr;
  if (idx + 1 > node_count_) {
    node_count_ = idx + 1;
    root_->WriteNodeCount(node_count_);
  }
  rt_->Psync();
  return true;
}

bool ClusterState::AssignRange(uint32_t lo, uint32_t hi, uint32_t node,
                               std::string* err) {
  std::lock_guard<std::mutex> lk(mu_);
  if (lo > hi || hi >= kNumSlots || node >= ClusterMetaRoot::kMaxNodes) {
    if (err != nullptr) *err = "bad slot range or node";
    return false;
  }
  if (mig_state_ != MigState::kNone && !(hi < mig_lo_ || lo > mig_hi_)) {
    if (err != nullptr) *err = "range overlaps an active migration";
    return false;
  }
  PersistOwnerRangeLocked(lo, hi, static_cast<uint16_t>(node));
  rt_->Psync();
  PersistEpochLocked(epoch_ + 1);
  rt_->Psync();
  return true;
}

bool ClusterState::StartMigrating(uint32_t lo, uint32_t hi, uint32_t peer,
                                  std::string* err) {
  std::lock_guard<std::mutex> lk(mu_);
  if (lo > hi || hi >= kNumSlots || peer >= ClusterMetaRoot::kMaxNodes ||
      peer == self_ || nodes_[peer].empty()) {
    if (err != nullptr) *err = "bad slot range or peer";
    return false;
  }
  if (mig_state_ == MigState::kMigrating || mig_state_ == MigState::kHandoff) {
    if (mig_lo_ == lo && mig_hi_ == hi && mig_peer_ == peer) {
      return true;  // re-drive of the same migration
    }
    if (err != nullptr) *err = "another migration is active";
    return false;
  }
  if (mig_state_ != MigState::kNone) {
    if (err != nullptr) *err = "node is importing";
    return false;
  }
  if (!RangeOwnedByLocked(lo, hi, static_cast<uint16_t>(self_))) {
    if (err != nullptr) *err = "range not owned by this node";
    return false;
  }
  PersistMigRecordLocked(MigState::kMigrating, peer, lo, hi);
  rt_->Psync();
  migrations_out_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool ClusterState::EnterHandoff(std::string* err) {
  std::lock_guard<std::mutex> lk(mu_);
  if (mig_state_ == MigState::kHandoff) {
    return true;  // idempotent for re-drives
  }
  if (mig_state_ != MigState::kMigrating) {
    if (err != nullptr) *err = "no migration to hand off";
    return false;
  }
  PersistMigRecordLocked(MigState::kHandoff, mig_peer_, mig_lo_, mig_hi_);
  rt_->Psync();
  return true;
}

bool ClusterState::FinishMigration(std::string* err) {
  std::lock_guard<std::mutex> lk(mu_);
  if (mig_state_ != MigState::kHandoff) {
    if (err != nullptr) *err = "not in handoff";
    return false;
  }
  // Owner rewrite first (redoable from the still-persisted record), then
  // epoch bump + record clear once the rewrite is sealed.
  PersistOwnerRangeLocked(mig_lo_, mig_hi_, static_cast<uint16_t>(mig_peer_));
  rt_->Psync();
  PersistEpochLocked(epoch_ + 1);
  PersistMigRecordLocked(MigState::kNone, 0, 0, 0);
  rt_->Psync();
  return true;
}

bool ClusterState::AbortMigration(std::string* err) {
  std::lock_guard<std::mutex> lk(mu_);
  if (mig_state_ != MigState::kMigrating && mig_state_ != MigState::kHandoff) {
    if (err != nullptr) *err = "no migration active";
    return false;
  }
  PersistMigRecordLocked(MigState::kNone, 0, 0, 0);
  rt_->Psync();
  return true;
}

bool ClusterState::StartImporting(uint32_t lo, uint32_t hi, uint32_t peer,
                                  std::string* err) {
  std::lock_guard<std::mutex> lk(mu_);
  if (lo > hi || hi >= kNumSlots || peer >= ClusterMetaRoot::kMaxNodes) {
    if (err != nullptr) *err = "bad slot range or peer";
    return false;
  }
  if (mig_state_ == MigState::kImporting && mig_lo_ == lo && mig_hi_ == hi) {
    migrations_in_.fetch_add(1, std::memory_order_relaxed);
    return true;  // re-drive
  }
  if (mig_state_ != MigState::kNone) {
    if (err != nullptr) *err = "another migration is active";
    return false;
  }
  PersistMigRecordLocked(MigState::kImporting, peer, lo, hi);
  rt_->Psync();
  migrations_in_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool ClusterState::CommitImport(uint32_t lo, uint32_t hi, uint64_t new_epoch,
                                std::string* err) {
  std::lock_guard<std::mutex> lk(mu_);
  if (RangeOwnedByLocked(lo, hi, static_cast<uint16_t>(self_))) {
    return true;  // already committed (re-driven MIGCOMMIT)
  }
  if (mig_state_ != MigState::kImporting || mig_lo_ != lo || mig_hi_ != hi) {
    if (err != nullptr) *err = "no matching import";
    return false;
  }
  // THE commit point of the whole migration: once these owner words are
  // durable the destination serves the range, whatever happens to the
  // source.
  PersistOwnerRangeLocked(lo, hi, static_cast<uint16_t>(self_));
  rt_->Psync();
  PersistEpochLocked(std::max(epoch_ + 1, new_epoch));
  PersistMigRecordLocked(MigState::kNone, 0, 0, 0);
  rt_->Psync();
  return true;
}

bool ClusterState::AbortImport(std::string* err) {
  std::lock_guard<std::mutex> lk(mu_);
  if (mig_state_ != MigState::kImporting) {
    if (err != nullptr) *err = "no import active";
    return false;
  }
  PersistMigRecordLocked(MigState::kNone, 0, 0, 0);
  rt_->Psync();
  return true;
}

bool ClusterState::OwnsRange(uint32_t lo, uint32_t hi) const {
  std::lock_guard<std::mutex> lk(mu_);
  return lo <= hi && hi < kNumSlots &&
         RangeOwnedByLocked(lo, hi, static_cast<uint16_t>(self_));
}

std::string ClusterState::Describe() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::ostringstream os;
  os << "epoch:" << epoch_ << "\n";
  os << "self:" << self_ << " " << nodes_[self_] << "\n";
  os << "nodes:" << node_count_ << "\n";
  for (uint32_t i = 0; i < node_count_; ++i) {
    uint64_t owned = 0;
    for (const uint16_t o : owners_) {
      owned += o == i ? 1 : 0;
    }
    os << "node" << i << ":" << (nodes_[i].empty() ? "?" : nodes_[i])
       << " slots:" << owned << "\n";
  }
  uint64_t unassigned = 0;
  for (const uint16_t o : owners_) {
    unassigned += o == kNoOwner ? 1 : 0;
  }
  os << "slots_unassigned:" << unassigned << "\n";
  static const char* kStateNames[] = {"none", "migrating", "importing", "handoff"};
  os << "migration:" << kStateNames[static_cast<uint32_t>(mig_state_)];
  if (mig_state_ != MigState::kNone) {
    os << " lo:" << mig_lo_ << " hi:" << mig_hi_ << " peer:" << mig_peer_;
  }
  os << "\n";
  return os.str();
}

void ClusterState::PersistMigRecordLocked(MigState s, uint32_t peer,
                                          uint32_t lo, uint32_t hi) {
  root_->WriteMigRecord(static_cast<uint32_t>(s), peer, lo, hi);
  mig_state_ = s;
  mig_peer_ = peer;
  mig_lo_ = lo;
  mig_hi_ = hi;
}

void ClusterState::PersistOwnerRangeLocked(uint32_t lo, uint32_t hi,
                                           uint16_t node) {
  root_->WriteOwnerRange(lo, hi, node);
  for (uint32_t s = lo; s <= hi; ++s) {
    owners_[s] = node;
  }
}

void ClusterState::PersistEpochLocked(uint64_t v) {
  root_->WriteEpoch(v);
  epoch_ = v;
}

bool ClusterState::RangeOwnedByLocked(uint32_t lo, uint32_t hi,
                                      uint16_t node) const {
  for (uint32_t s = lo; s <= hi; ++s) {
    if (owners_[s] != node) {
      return false;
    }
  }
  return true;
}

}  // namespace jnvm::cluster
