// Hash-slot key space for the cluster plane (DESIGN.md §10).
//
// The key space is divided into 16384 slots, redis-cluster style: a slot is
// the unit of ownership and of live migration. Every node hashes a key to
// the same slot with the same function, so routing decisions ("is this key
// mine, or do I answer -MOVED?") need only the slot → node table, never the
// key set. The slot hash is deliberately independent of the *shard* hash
// (src/server/shard.h ShardFor): slots place keys on nodes, shards place
// keys on worker threads within a node, and the two partitions compose —
// one slot's keys spread across all of a node's shards, so migrating a slot
// range drains a per-slot filtered cursor from every shard.
#ifndef JNVM_SRC_CLUSTER_SLOT_MAP_H_
#define JNVM_SRC_CLUSTER_SLOT_MAP_H_

#include <cstdint>
#include <string_view>

namespace jnvm::cluster {

inline constexpr uint32_t kNumSlots = 16384;

// Owner value for a slot nobody claims (fresh table).
inline constexpr uint16_t kNoOwner = 0xFFFF;

// FNV-1a over the key with an avalanche finalizer, folded into the slot
// space. The finalizer is load-bearing: a distinct offset basis alone does
// NOT decorrelate two FNV streams in their low bits — the FNV prime is odd,
// so the low bit of every multiply round is preserved and the two hashes'
// low bits differ by a constant. Without the mix, a slot's keys could only
// reach half the shards of a power-of-two shard fleet (exactly one shard
// for nshards=2). The xor-shift/multiply rounds push high-bit entropy into
// the low 14 bits before the fold.
inline uint16_t SlotForKey(std::string_view key) {
  uint64_t h = 0xcbf29ce484222325ull ^ 0x243f6a8885a308d3ull;
  for (const char c : key) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  h ^= h >> 29;
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 32;
  return static_cast<uint16_t>(h % kNumSlots);
}

}  // namespace jnvm::cluster

#endif  // JNVM_SRC_CLUSTER_SLOT_MAP_H_
