#include "src/cluster/cluster_client.h"

#include <chrono>
#include <cstdlib>
#include <thread>

#include "src/server/client.h"

namespace jnvm::cluster {

namespace {

bool SplitAddr(const std::string& addr, std::string* host, uint16_t* port) {
  const size_t colon = addr.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= addr.size()) {
    return false;
  }
  *host = addr.substr(0, colon);
  const long p = std::strtol(addr.c_str() + colon + 1, nullptr, 10);
  if (p <= 0 || p > 65535) {
    return false;
  }
  *port = static_cast<uint16_t>(p);
  return true;
}

// "-MOVED <slot> <addr>" / "-ASK <slot> <addr>" → target address.
bool ParseRedirect(const std::string& msg, std::string* addr) {
  const size_t sp1 = msg.find(' ');
  if (sp1 == std::string::npos) {
    return false;
  }
  const size_t sp2 = msg.find(' ', sp1 + 1);
  if (sp2 == std::string::npos || sp2 + 1 >= msg.size()) {
    return false;
  }
  *addr = msg.substr(sp2 + 1);
  return true;
}

}  // namespace

ClusterClient::ClusterClient(const ClusterClientOptions& opts)
    : opts_(opts), owners_(kNumSlots) {}

ClusterClient::~ClusterClient() = default;

std::unique_ptr<ClusterClient> ClusterClient::Connect(
    const ClusterClientOptions& opts, std::string* error) {
  auto cc = std::unique_ptr<ClusterClient>(new ClusterClient(opts));
  if (!cc->RefreshSlots()) {
    if (error != nullptr) {
      *error = cc->err_.empty() ? "no seed reachable" : cc->err_;
    }
    return nullptr;
  }
  return cc;
}

server::Client* ClusterClient::ClientFor(const std::string& addr) {
  auto it = pool_.find(addr);
  if (it != pool_.end()) {
    return it->second.get();
  }
  std::string host;
  uint16_t port = 0;
  if (!SplitAddr(addr, &host, &port)) {
    err_ = "bad node address: " + addr;
    return nullptr;
  }
  std::string cerr;
  std::unique_ptr<server::Client> c = server::Client::Connect(host, port, &cerr);
  if (c == nullptr) {
    err_ = "connect " + addr + ": " + cerr;
    return nullptr;
  }
  return pool_.emplace(addr, std::move(c)).first->second.get();
}

void ClusterClient::DropClient(const std::string& addr) { pool_.erase(addr); }

bool ClusterClient::RefreshFrom(server::Client* c) {
  server::RespReply r;
  if (!c->Roundtrip({"CLUSTER", "SLOTS"}, &r) ||
      r.type != server::RespReply::Type::kArray) {
    return false;
  }
  std::vector<std::string> fresh(kNumSlots);
  bool any = false;
  // Flat array: one bulk "lo hi host:port" per contiguous owned run.
  for (const server::RespReply& e : r.elements) {
    if (e.type != server::RespReply::Type::kBulk) {
      continue;
    }
    const char* s = e.str.c_str();
    char* end = nullptr;
    const unsigned long lo = std::strtoul(s, &end, 10);
    const unsigned long hi = std::strtoul(end, &end, 10);
    while (*end == ' ') ++end;
    const std::string addr(end);
    if (hi >= kNumSlots || lo > hi || addr.empty()) {
      continue;
    }
    for (unsigned long slot = lo; slot <= hi; ++slot) {
      fresh[slot] = addr;
    }
    any = true;
  }
  if (!any) {
    return false;
  }
  owners_ = std::move(fresh);
  stats_.slot_refreshes++;
  return true;
}

bool ClusterClient::RefreshSlots() {
  // Prefer nodes we already talk to, then the seeds.
  for (auto& [addr, c] : pool_) {
    if (RefreshFrom(c.get())) {
      return true;
    }
  }
  for (const std::string& seed : opts_.seeds) {
    server::Client* c = ClientFor(seed);
    if (c != nullptr && RefreshFrom(c)) {
      return true;
    }
  }
  if (err_.empty()) {
    err_ = "no node answered CLUSTER SLOTS with an assigned table";
  }
  return false;
}

std::string ClusterClient::CachedOwner(uint16_t slot) const {
  return slot < owners_.size() ? owners_[slot] : std::string();
}

std::string ClusterClient::AnyAddr() const {
  if (!pool_.empty()) {
    return pool_.begin()->first;
  }
  return opts_.seeds.empty() ? std::string() : opts_.seeds.front();
}

bool ClusterClient::Roundtrip(const std::vector<std::string>& args,
                              const std::string& key,
                              server::RespReply* reply) {
  const uint16_t slot = SlotForKey(key);
  std::string addr = owners_[slot].empty() ? AnyAddr() : owners_[slot];
  bool asking = false;
  uint32_t tryagains = 0;
  for (uint32_t hop = 0; hop < opts_.max_hops;) {
    if (addr.empty()) {
      err_ = "no route to slot " + std::to_string(slot);
      return false;
    }
    server::Client* c = ClientFor(addr);
    if (c == nullptr) {
      return false;  // err_ set
    }
    if (asking) {
      server::RespReply ar;
      if (!c->Roundtrip({"ASKING"}, &ar)) {
        DropClient(addr);
        err_ = "ASKING i/o: " + addr;
        return false;
      }
    }
    if (!c->Roundtrip(args, reply)) {
      DropClient(addr);
      err_ = "i/o: " + addr;
      return false;
    }
    if (reply->type != server::RespReply::Type::kError) {
      return true;
    }
    const std::string& msg = reply->str;
    if (msg.rfind("MOVED ", 0) == 0) {
      // Stable redirect: learn the new owner, retry there. The whole table
      // likely shifted (a handoff committed) — refresh it opportunistically
      // so other slots don't each pay a redirect.
      std::string target;
      if (!ParseRedirect(msg, &target)) {
        err_ = "bad MOVED reply: " + msg;
        return false;
      }
      stats_.moved_redirects++;
      owners_[slot] = target;
      addr = target;
      asking = false;
      ++hop;
      continue;
    }
    if (msg.rfind("ASK ", 0) == 0) {
      // One-shot: follow WITHOUT caching — ownership has not flipped yet.
      std::string target;
      if (!ParseRedirect(msg, &target)) {
        err_ = "bad ASK reply: " + msg;
        return false;
      }
      stats_.ask_redirects++;
      addr = target;
      asking = true;
      ++hop;
      continue;
    }
    if (msg.rfind("TRYAGAIN", 0) == 0) {
      // Frozen handoff: short bounded wait, then retry. Re-resolve the
      // route — the freeze usually ends with the slot owned elsewhere.
      if (++tryagains > opts_.tryagain_max) {
        err_ = "slot " + std::to_string(slot) + " frozen too long";
        return false;
      }
      stats_.tryagain_retries++;
      std::this_thread::sleep_for(
          std::chrono::milliseconds(opts_.tryagain_ms));
      if (RefreshSlots() && !owners_[slot].empty()) {
        addr = owners_[slot];
      }
      asking = false;
      continue;
    }
    if (msg.rfind("CLUSTERDOWN", 0) == 0) {
      err_ = msg;
      return false;
    }
    return true;  // an ordinary command error (-ERR …): the caller's problem
  }
  err_ = "redirect loop: slot " + std::to_string(slot) + " exceeded " +
         std::to_string(opts_.max_hops) + " hops";
  return false;
}

bool ClusterClient::Set(const std::string& key, const std::string& value) {
  server::RespReply r;
  if (!Roundtrip({"SET", key, value}, key, &r)) {
    return false;
  }
  if (r.type == server::RespReply::Type::kError) {
    err_ = r.str;
    return false;
  }
  return r.type == server::RespReply::Type::kSimple;
}

std::optional<std::string> ClusterClient::Get(const std::string& key) {
  server::RespReply r;
  if (!Roundtrip({"GET", key}, key, &r)) {
    return std::nullopt;
  }
  if (r.type != server::RespReply::Type::kBulk) {
    if (r.type == server::RespReply::Type::kError) {
      err_ = r.str;
    }
    return std::nullopt;
  }
  return r.str;
}

bool ClusterClient::Del(const std::string& key) {
  server::RespReply r;
  if (!Roundtrip({"DEL", key}, key, &r)) {
    return false;
  }
  return r.type == server::RespReply::Type::kInteger && r.integer > 0;
}

}  // namespace jnvm::cluster
