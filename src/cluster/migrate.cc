#include "src/cluster/migrate.h"

#include <chrono>
#include <cstring>

#include "src/cluster/slot_map.h"
#include "src/server/client.h"
#include "src/server/shard.h"

namespace jnvm::cluster {

namespace {

// "host:port" → parts; false on malformed addresses (empty node slots).
bool SplitAddr(const std::string& addr, std::string* host, uint16_t* port) {
  const size_t colon = addr.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= addr.size()) {
    return false;
  }
  *host = addr.substr(0, colon);
  const long p = std::strtol(addr.c_str() + colon + 1, nullptr, 10);
  if (p <= 0 || p > 65535) {
    return false;
  }
  *port = static_cast<uint16_t>(p);
  return true;
}

// Submits an internal control request and waits for the waiter payload.
// Returns false when the shard is stopping; *ok / *payload carry the
// execute-side outcome ('+…' or empty = success, '-…' = failure).
bool RoundtripShard(server::Shard* shard, server::Request&& req, bool* ok,
                    std::string* payload) {
  auto waiter = std::make_shared<server::ReplWaiter>();
  req.waiter = waiter;
  if (!shard->Submit(std::move(req))) {
    return false;
  }
  *ok = waiter->Wait();
  *payload = std::move(waiter->error);
  return true;
}

}  // namespace

Migrator::Migrator(ClusterState* cs, std::vector<server::Shard*> shards)
    : cs_(cs), shards_(std::move(shards)) {}

Migrator::~Migrator() { Join(); }

void Migrator::Join() {
  if (thread_.joinable()) {
    thread_.join();
  }
}

std::string Migrator::status() const {
  std::lock_guard<std::mutex> lk(mu_);
  return status_;
}

void Migrator::SetStatus(const std::string& s) {
  std::lock_guard<std::mutex> lk(mu_);
  status_ = s;
}

void Migrator::Throttle(const MigrateOptions& o) const {
  if (o.throttle_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(o.throttle_ms));
  }
}

bool Migrator::Start(const MigrateOptions& opts, std::string* err) {
  if (busy_.exchange(true, std::memory_order_acq_rel)) {
    if (err != nullptr) *err = "a migration is already running";
    return false;
  }
  // Take (or re-take, for a restart re-drive) the persisted migrating
  // state before the thread spawns, so a Start that the state machine
  // refuses never leaves a zombie thread.
  const bool resuming = cs_->mig_state() == MigState::kHandoff;
  if (!resuming && !cs_->StartMigrating(opts.lo, opts.hi, opts.peer, err)) {
    busy_.store(false, std::memory_order_release);
    return false;
  }
  if (resuming) {
    uint32_t lo = 0, hi = 0, peer = 0;
    cs_->MigRange(&lo, &hi, &peer);
    if (lo != opts.lo || hi != opts.hi || peer != opts.peer) {
      if (err != nullptr) {
        *err = "a frozen handoff for a different range must be re-driven "
               "with its own parameters";
      }
      busy_.store(false, std::memory_order_release);
      return false;
    }
  }
  Join();  // reap the previous run's thread
  SetStatus("starting");
  thread_ = std::thread(&Migrator::Run, this, opts);
  return true;
}

bool Migrator::ShipOps(const MigrateOptions& o, server::Client* dest,
                       std::vector<repl::ReplOp>& ops) {
  std::vector<repl::ReplOp> chunk;
  uint64_t bytes = 0;
  const auto flush = [&]() -> bool {
    if (chunk.empty()) {
      return true;
    }
    std::string frame;
    repl::EncodeBatch(chunk, &frame);
    server::RespReply r;
    if (!dest->Roundtrip({"MIGAPPLY", frame}, &r)) {
      SetStatus("failed: MIGAPPLY i/o: " + dest->last_error());
      return false;
    }
    if (r.type != server::RespReply::Type::kSimple) {
      SetStatus("failed: MIGAPPLY rejected: " + r.str);
      return false;
    }
    chunk.clear();
    bytes = 0;
    return true;
  };
  for (repl::ReplOp& op : ops) {
    bytes += op.key.size() + op.value.size() + 32;
    for (const std::string& f : op.record.fields) {
      bytes += f.size();
    }
    chunk.push_back(std::move(op));
    if (bytes >= o.apply_chunk_bytes && !flush()) {
      return false;
    }
  }
  ops.clear();
  return flush();
}

bool Migrator::SnapshotShard(const MigrateOptions& o, size_t shard_idx,
                             server::Client* dest, uint64_t* cursor) {
  for (uint32_t attempt = 0;; ++attempt) {
    server::Request req;
    req.op = server::Request::Op::kSlotSnap;
    req.slot_lo = static_cast<uint16_t>(o.lo);
    req.slot_hi = static_cast<uint16_t>(o.hi);
    bool ok = false;
    std::string payload;
    if (!RoundtripShard(shards_[shard_idx], std::move(req), &ok, &payload)) {
      SetStatus("failed: shard stopping");
      return false;
    }
    if (!ok) {
      if (payload.rfind("-TRYAGAIN", 0) == 0 && attempt < o.max_retries) {
        std::this_thread::sleep_for(std::chrono::milliseconds(o.retry_ms));
        continue;  // staged txns in flight; wait them out
      }
      SetStatus("failed: slot snapshot: " + payload);
      return false;
    }
    uint64_t snap_seq = 0;
    std::vector<repl::SnapshotEntry> entries;
    if (payload.empty() ||
        !repl::DecodeSnapshot(std::string_view(payload).substr(1), &snap_seq,
                              &entries)) {
      SetStatus("failed: bad slot snapshot frame");
      return false;
    }
    std::vector<repl::ReplOp> ops;
    ops.reserve(entries.size());
    for (repl::SnapshotEntry& e : entries) {
      repl::ReplOp op;
      op.kind = repl::ReplOp::Kind::kPut;
      op.key = std::move(e.key);
      op.record = std::move(e.record);
      ops.push_back(std::move(op));
    }
    if (!ShipOps(o, dest, ops)) {
      return false;
    }
    *cursor = snap_seq + 1;
    return true;
  }
}

Migrator::TailResult Migrator::TailShard(const MigrateOptions& o,
                                         size_t shard_idx,
                                         server::Client* dest,
                                         uint64_t* cursor, bool* caught_up) {
  server::Request req;
  req.op = server::Request::Op::kSlotTail;
  req.slot_lo = static_cast<uint16_t>(o.lo);
  req.slot_hi = static_cast<uint16_t>(o.hi);
  req.repl_seq = *cursor;
  bool ok = false;
  std::string payload;
  if (!RoundtripShard(shards_[shard_idx], std::move(req), &ok, &payload)) {
    SetStatus("failed: shard stopping");
    return TailResult::kFail;
  }
  if (!ok) {
    if (payload.rfind("-TXNTAIL", 0) == 0 ||
        payload.rfind("-TAILTRUNC", 0) == 0) {
      return TailResult::kResnap;
    }
    SetStatus("failed: slot tail: " + payload);
    return TailResult::kFail;
  }
  // "+<u64 next LE><u8 caught_up><batch frame>"
  if (payload.size() < 1 + 8 + 1) {
    SetStatus("failed: short slot tail frame");
    return TailResult::kFail;
  }
  uint64_t next = 0;
  for (int i = 0; i < 8; ++i) {
    next |= static_cast<uint64_t>(static_cast<unsigned char>(payload[1 + i]))
            << (8 * i);
  }
  *caught_up = payload[9] != 0;
  std::vector<repl::ReplOp> ops;
  if (!repl::DecodeBatch(std::string_view(payload).substr(10), &ops)) {
    SetStatus("failed: bad slot tail batch");
    return TailResult::kFail;
  }
  if (!ops.empty() && !ShipOps(o, dest, ops)) {
    return TailResult::kFail;
  }
  *cursor = next;
  return TailResult::kOk;
}

bool Migrator::BarrierSeq(size_t shard_idx, uint64_t* seq) {
  server::Request req;
  req.op = server::Request::Op::kLastSeq;
  bool ok = false;
  std::string payload;
  if (!RoundtripShard(shards_[shard_idx], std::move(req), &ok, &payload) ||
      !ok || payload.empty() || payload[0] != ':') {
    SetStatus("failed: handoff barrier: " + payload);
    return false;
  }
  *seq = std::strtoull(payload.c_str() + 1, nullptr, 10);
  return true;
}

void Migrator::Run(MigrateOptions o) {
  const auto done = [&](const std::string& s) {
    SetStatus(s);
    busy_.store(false, std::memory_order_release);
  };
  // Rollback is legal only before MIGCOMMIT is acked: the destination has
  // provably not committed (commit needs the source in handoff AND the
  // commit ack closes the only window), so the source still owns every key.
  const auto fail_rollback = [&](server::Client* dest) {
    if (dest != nullptr) {
      server::RespReply r;
      dest->Roundtrip({"MIGABORT", std::to_string(o.lo), std::to_string(o.hi)},
                      &r);  // best effort
    }
    if (cs_->mig_state() == MigState::kMigrating) {
      cs_->AbortMigration(nullptr);
    }
    // In handoff the destination's state is unknown — stay frozen and let a
    // re-drive resolve it (MIGSTART answers +OWNED or +IMPORTING).
    busy_.store(false, std::memory_order_release);
  };

  std::string host;
  uint16_t port = 0;
  if (!SplitAddr(cs_->NodeAddr(o.peer), &host, &port)) {
    SetStatus("failed: peer has no address");
    fail_rollback(nullptr);
    return;
  }
  std::string cerr;
  std::unique_ptr<server::Client> dest =
      server::Client::Connect(host, port, &cerr);
  if (dest == nullptr) {
    SetStatus("failed: connect " + host + ": " + cerr);
    fail_rollback(nullptr);
    return;
  }

  SetStatus("migstart");
  Throttle(o);
  server::RespReply r;
  if (!dest->Roundtrip({"MIGSTART", std::to_string(o.lo), std::to_string(o.hi),
                        std::to_string(cs_->self()),
                        std::to_string(cs_->epoch())},
                       &r)) {
    SetStatus("failed: MIGSTART i/o: " + dest->last_error());
    fail_rollback(nullptr);
    return;
  }
  if (r.type == server::RespReply::Type::kSimple && r.str == "OWNED") {
    // The destination durably committed a previous drive of this exact
    // migration: roll forward, whatever side we crashed on.
    std::string err;
    if (!cs_->EnterHandoff(&err) || !cs_->FinishMigration(&err)) {
      done("failed: roll-forward: " + err);
      return;
    }
    done("done");
    return;
  }
  if (r.type != server::RespReply::Type::kSimple) {
    SetStatus("failed: MIGSTART rejected: " + r.str);
    fail_rollback(nullptr);
    return;
  }

  const bool resumed_frozen = cs_->mig_state() == MigState::kHandoff;
  std::vector<uint64_t> cursor(shards_.size(), 0);

  // Copy phase: image every shard's slice of the range.
  for (size_t i = 0; i < shards_.size(); ++i) {
    SetStatus("copy shard " + std::to_string(i + 1) + "/" +
              std::to_string(shards_.size()));
    Throttle(o);
    if (!SnapshotShard(o, i, dest.get(), &cursor[i])) {
      fail_rollback(dest.get());
      return;
    }
  }

  // Catch-up: drain tails while the range still serves, to shrink the
  // frozen window. Convergence is not required here — the handoff barrier
  // below guarantees it.
  if (!resumed_frozen) {
    for (uint32_t round = 0; round < o.catchup_rounds; ++round) {
      SetStatus("catch-up round " + std::to_string(round + 1));
      bool all_caught = true;
      for (size_t i = 0; i < shards_.size(); ++i) {
        bool caught = false;
        const TailResult t = TailShard(o, i, dest.get(), &cursor[i], &caught);
        if (t == TailResult::kResnap) {
          if (!SnapshotShard(o, i, dest.get(), &cursor[i])) {
            fail_rollback(dest.get());
            return;
          }
          caught = false;
        } else if (t == TailResult::kFail) {
          fail_rollback(dest.get());
          return;
        }
        all_caught &= caught;
      }
      if (all_caught) {
        break;
      }
    }
  }

  // Handoff: freeze the range (reads AND writes answer -TRYAGAIN), then
  // drain the bounded remainder behind a per-shard barrier.
  SetStatus("handoff");
  std::string err;
  if (!cs_->EnterHandoff(&err)) {
    SetStatus("failed: handoff: " + err);
    fail_rollback(dest.get());
    return;
  }
  Throttle(o);
  for (size_t i = 0; i < shards_.size(); ++i) {
    uint64_t barrier = 0;
    if (!BarrierSeq(i, &barrier)) {
      fail_rollback(dest.get());
      return;
    }
    uint32_t attempts = 0;
    while (cursor[i] <= barrier) {
      bool caught = false;
      const TailResult t = TailShard(o, i, dest.get(), &cursor[i], &caught);
      if (t == TailResult::kResnap) {
        // A still-staged txn straddles the range: wait it out, re-image.
        if (++attempts > o.max_retries) {
          SetStatus("failed: staged txn never resolved during handoff");
          fail_rollback(dest.get());
          return;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(o.retry_ms));
        if (!SnapshotShard(o, i, dest.get(), &cursor[i])) {
          fail_rollback(dest.get());
          return;
        }
        // The re-image needs a fresh barrier: records kept sealing.
        if (!BarrierSeq(i, &barrier)) {
          fail_rollback(dest.get());
          return;
        }
        continue;
      }
      if (t == TailResult::kFail) {
        fail_rollback(dest.get());
        return;
      }
    }
  }

  // MIGCOMMIT: the destination's owner-word rewrite is THE commit point.
  SetStatus("commit");
  Throttle(o);
  if (!dest->Roundtrip({"MIGCOMMIT", std::to_string(o.lo),
                        std::to_string(o.hi),
                        std::to_string(cs_->epoch() + 1)},
                       &r) ||
      r.type != server::RespReply::Type::kSimple) {
    // The commit may or may not have landed: DO NOT roll back. Stay frozen;
    // the re-drive asks MIGSTART and learns the truth (+OWNED / +IMPORTING).
    done("failed: MIGCOMMIT unacked (" +
         (r.type == server::RespReply::Type::kError ? r.str
                                                    : dest->last_error()) +
         "); range frozen, re-drive to resolve");
    return;
  }
  Throttle(o);
  if (!cs_->FinishMigration(&err)) {
    done("failed: finish: " + err);
    return;
  }
  done("done");
}

}  // namespace jnvm::cluster
