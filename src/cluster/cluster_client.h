// Redirect-following client for the cluster plane (DESIGN.md §10).
//
// Wraps one blocking server::Client per node behind a slot cache: a command
// hashes its key to a slot, goes to the cached owner, and follows the
// server's explicit redirects:
//
//   -MOVED <slot> <addr>   stable miss — the cache entry is refreshed to
//                          <addr> and the command retries there (the next
//                          command for the slot goes straight to it);
//   -ASK <slot> <addr>     one-shot redirect during a live migration — the
//                          retry sends ASKING then the command to <addr>,
//                          WITHOUT caching (the table still names the
//                          source until the handoff commits);
//   -TRYAGAIN              frozen handoff window — bounded sleep + retry;
//   -CLUSTERDOWN           unassigned slot — surfaced to the caller.
//
// Redirect chains are bounded by max_hops: a routing loop (mis-configured
// tables pointing at each other) surfaces as an error, never a hang. Not
// thread-safe — one ClusterClient per thread, like server::Client.
#ifndef JNVM_SRC_CLUSTER_CLUSTER_CLIENT_H_
#define JNVM_SRC_CLUSTER_CLUSTER_CLIENT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/cluster/slot_map.h"
#include "src/server/protocol.h"

namespace jnvm::server {
class Client;
}

namespace jnvm::cluster {

struct ClusterClientOptions {
  // Any live node; the slot cache bootstraps from the first that answers
  // CLUSTER SLOTS.
  std::vector<std::string> seeds;
  uint32_t max_hops = 8;
  // -TRYAGAIN backoff (frozen handoff windows are short-lived).
  uint32_t tryagain_ms = 10;
  uint32_t tryagain_max = 1000;
};

struct ClusterClientStats {
  uint64_t moved_redirects = 0;
  uint64_t ask_redirects = 0;
  uint64_t tryagain_retries = 0;
  uint64_t slot_refreshes = 0;
};

class ClusterClient {
 public:
  // Connects to a seed and loads the slot table. nullptr + *error on
  // failure (no seed reachable, or none has an assigned table).
  static std::unique_ptr<ClusterClient> Connect(
      const ClusterClientOptions& opts, std::string* error);
  ~ClusterClient();

  bool Set(const std::string& key, const std::string& value);
  std::optional<std::string> Get(const std::string& key);
  bool Del(const std::string& key);

  // Generic single-key command; the key decides the route.
  bool Roundtrip(const std::vector<std::string>& args, const std::string& key,
                 server::RespReply* reply);

  // Re-reads CLUSTER SLOTS from any reachable node.
  bool RefreshSlots();
  // Cached owner address of a slot ("" = unknown). Tests.
  std::string CachedOwner(uint16_t slot) const;

  const ClusterClientStats& stats() const { return stats_; }
  const std::string& last_error() const { return err_; }

 private:
  explicit ClusterClient(const ClusterClientOptions& opts);

  server::Client* ClientFor(const std::string& addr);
  void DropClient(const std::string& addr);
  bool RefreshFrom(server::Client* c);
  std::string AnyAddr() const;

  ClusterClientOptions opts_;
  std::vector<std::string> owners_;  // slot → "host:port" ("" unknown)
  std::map<std::string, std::unique_ptr<server::Client>> pool_;
  ClusterClientStats stats_;
  std::string err_;
};

}  // namespace jnvm::cluster

#endif  // JNVM_SRC_CLUSTER_CLUSTER_CLIENT_H_
