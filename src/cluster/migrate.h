// Live slot migration driver (DESIGN.md §10) — the source node's side.
//
// One Migrator per server. A migration moves the slot range [lo, hi] to a
// peer node in five phases, driven by a dedicated thread so the event loop
// never blocks:
//
//   1. MIGSTART        destination enters `importing` and purges the range
//                      (idempotent re-drive; "+OWNED" short-circuits to 5)
//   2. copy            per shard: a kSlotSnap cursor images the range's
//                      keys; entries ship as MIGAPPLY batches
//   3. catch-up        per shard: kSlotTail replays the replication log's
//                      logical ops for the range from the snapshot seq
//   4. handoff         the range freezes (-TRYAGAIN) on the source; a
//                      kLastSeq barrier per shard bounds the final drain,
//                      then MIGCOMMIT flips ownership on the destination —
//                      THE commit point of the whole migration
//   5. finish          the source rewrites its owner words to the peer,
//                      bumps the epoch and clears the migration record; the
//                      range now answers -MOVED (the forwarding tombstone)
//
// Crash discipline: before MIGCOMMIT is acked the source rolls back (it
// still owns every key — the destination never served); after the ack the
// source rolls forward (FinishMigration, possibly on the re-drive after a
// restart — MIGSTART answering "+OWNED" is the destination's durable proof).
// A source that dies mid-handoff recovers frozen and stays frozen until the
// driver re-runs the same migration.
#ifndef JNVM_SRC_CLUSTER_MIGRATE_H_
#define JNVM_SRC_CLUSTER_MIGRATE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/cluster/meta.h"
#include "src/repl/frame.h"

namespace jnvm::server {
class Client;
class Shard;
}  // namespace jnvm::server

namespace jnvm::cluster {

struct MigrateOptions {
  uint32_t lo = 0;
  uint32_t hi = 0;
  uint32_t peer = 0;
  // MIGAPPLY frame budget: ops accumulate until their encoded size passes
  // this, then the chunk ships (well under the server's bulk cap).
  uint64_t apply_chunk_bytes = 256 << 10;
  // Sleep between protocol steps. The CI cluster job raises it to widen the
  // kill -9 window around the handoff; 0 for tests.
  uint32_t throttle_ms = 0;
  // Backoff and bound for -TRYAGAIN (staged txns) / -TXNTAIL re-snapshots.
  uint32_t retry_ms = 20;
  uint32_t max_retries = 500;
  // Catch-up rounds before entering handoff regardless (the handoff barrier
  // guarantees convergence; pre-handoff rounds only shrink the frozen
  // window).
  uint32_t catchup_rounds = 16;
};

class Migrator {
 public:
  // Borrows the cluster state and the shard fleet; both must outlive it.
  Migrator(ClusterState* cs, std::vector<server::Shard*> shards);
  ~Migrator();

  // Launches the migration thread. False (with *err) when one is already
  // running or the state machine refuses the transition. Re-invoking with
  // the frozen migration's own range resumes it (restart re-drive).
  bool Start(const MigrateOptions& opts, std::string* err);

  bool busy() const { return busy_.load(std::memory_order_acquire); }
  // One line for CLUSTER INFO: "idle", "copy shard 1/4 ...", "done",
  // "failed: <reason>".
  std::string status() const;
  // Blocks until the running migration (if any) finishes. Tests and CI.
  void Join();

 private:
  void Run(MigrateOptions o);
  void SetStatus(const std::string& s);
  void Throttle(const MigrateOptions& o) const;

  // Phase helpers; false = terminal failure (status set).
  bool SnapshotShard(const MigrateOptions& o, size_t shard_idx,
                     server::Client* dest, uint64_t* cursor);
  // Tail outcome: advanced (possibly caught up), needs a re-snapshot
  // (-TXNTAIL / -TAILTRUNC), or failed terminally.
  enum class TailResult { kOk, kResnap, kFail };
  TailResult TailShard(const MigrateOptions& o, size_t shard_idx,
                       server::Client* dest, uint64_t* cursor,
                       bool* caught_up);
  bool ShipOps(const MigrateOptions& o, server::Client* dest,
               std::vector<repl::ReplOp>& ops);
  bool BarrierSeq(size_t shard_idx, uint64_t* seq);

  ClusterState* cs_;
  std::vector<server::Shard*> shards_;

  std::atomic<bool> busy_{false};
  std::thread thread_;
  mutable std::mutex mu_;
  std::string status_ = "idle";
};

}  // namespace jnvm::cluster

#endif  // JNVM_SRC_CLUSTER_MIGRATE_H_
