// Persisted cluster metadata: the 16384-slot ownership table (DESIGN.md §10).
//
// Every node persists one ClusterMetaRoot in a small dedicated J-PDT heap:
// the node table (index → "host:port"), the epoch'd slot → node ownership
// array, and the single in-flight migration record. The root survives
// restart like any other persistent object — a node that comes back after
// `kill -9` knows exactly which slots it owns and whether it died mid-
// handoff — and is the ground truth `jnvm_inspect --summary` prints.
//
// Crash discipline (the migration state machine's persistence points):
//   * Single-word state transitions (epoch, migration state) are one-line
//     stores sealed by a Psync — atomic under the strict device model.
//   * The owner-range rewrite of a handoff is multi-line and therefore NOT
//     atomic; it is made redoable by ordering: the migration record (the
//     intent) is durable *before* any owner word changes, and the record is
//     cleared only *after* the rewrite is sealed. Recovery inspects the
//     record: a torn rewrite is either rolled forward (some owner words
//     already name the peer — the handoff had passed its commit point) or
//     the range stays frozen in `handoff` until the driver re-runs the
//     migration (source side, destination's commit unknown — serving the
//     range could split-brain, so the node refuses it with -TRYAGAIN).
//   * An interrupted `migrating` phase rolls back to `none`: the
//     destination cannot have committed (commit requires the source to
//     reach handoff first), so the source still owns every key.
#ifndef JNVM_SRC_CLUSTER_META_H_
#define JNVM_SRC_CLUSTER_META_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/cluster/slot_map.h"
#include "src/core/pobject.h"
#include "src/core/runtime.h"
#include "src/nvm/pmem_device.h"

namespace jnvm::cluster {

// The J-PDT root object holding the slot table. Layout (offsets fixed):
//   u64 epoch              config epoch; bumps on every ownership change
//   u32 self               this node's index in the node table
//   u32 node_count
//   u32 mig_state          MigState below
//   u32 mig_peer           node index of the migration peer
//   u32 mig_lo, mig_hi     inclusive slot range being moved
//   char nodes[16][48]     NUL-padded "host:port" per node index
//   u16 owners[16384]      slot → node index (kNoOwner = unassigned)
class ClusterMetaRoot final : public core::PObject {
 public:
  static const core::ClassInfo* Class();

  explicit ClusterMetaRoot(core::Resurrect) {}
  explicit ClusterMetaRoot(core::JnvmRuntime& rt);

  static constexpr uint32_t kMaxNodes = 16;
  static constexpr size_t kAddrBytes = 48;

  static constexpr size_t kEpochOff = 0;
  static constexpr size_t kSelfOff = 8;
  static constexpr size_t kNodeCountOff = 12;
  static constexpr size_t kMigStateOff = 16;
  static constexpr size_t kMigPeerOff = 20;
  static constexpr size_t kMigLoOff = 24;
  static constexpr size_t kMigHiOff = 28;
  static constexpr size_t kNodesOff = 32;
  static constexpr size_t kOwnersOff = kNodesOff + kMaxNodes * kAddrBytes;
  static constexpr size_t kPayloadBytes = kOwnersOff + 2ull * kNumSlots;

  uint64_t Epoch() const { return ReadField<uint64_t>(kEpochOff); }
  uint32_t Self() const { return ReadField<uint32_t>(kSelfOff); }
  uint32_t NodeCount() const { return ReadField<uint32_t>(kNodeCountOff); }
  uint32_t MigState() const { return ReadField<uint32_t>(kMigStateOff); }
  uint32_t MigPeer() const { return ReadField<uint32_t>(kMigPeerOff); }
  uint32_t MigLo() const { return ReadField<uint32_t>(kMigLoOff); }
  uint32_t MigHi() const { return ReadField<uint32_t>(kMigHiOff); }

  void WriteEpoch(uint64_t v);
  void WriteSelf(uint32_t v);
  void WriteNodeCount(uint32_t v);
  // One-line store: the whole migration record updates atomically.
  void WriteMigRecord(uint32_t state, uint32_t peer, uint32_t lo, uint32_t hi);
  std::string NodeAddr(uint32_t i) const;
  void WriteNodeAddr(uint32_t i, const std::string& addr);
  uint16_t Owner(uint32_t slot) const;
  void ReadOwners(uint16_t* out) const;  // all kNumSlots words
  void WriteOwnerRange(uint32_t lo, uint32_t hi, uint16_t node);
};

enum class MigState : uint32_t {
  kNone = 0,
  kMigrating = 1,  // source: range still served; missing keys answer -ASK
  kImporting = 2,  // destination: range accepted only under ASKING
  kHandoff = 3,    // source: range frozen (-TRYAGAIN) until ownership flips
};

// A routing decision for one slot (taken by the server per key command).
struct Route {
  enum class Action {
    kLocal,     // serve here (when `migrating`, a key miss answers -ASK)
    kMoved,     // stable miss: -MOVED <slot> <addr>
    kTryAgain,  // handoff in progress: -TRYAGAIN, client retries
    kDown,      // slot unassigned: -CLUSTERDOWN
  };
  Action action = Action::kLocal;
  std::string addr;        // kMoved target; kLocal+migrating: the -ASK target
  bool migrating = false;  // kLocal during MIGRATING: redirect misses to addr
};

struct ClusterOptions {
  // Backing store for the meta heap: dax_path takes precedence (mmap'd
  // MAP_SHARED file, survives kill -9); otherwise image_path is loaded at
  // open and saved at close; otherwise the heap is volatile (tests).
  std::string dax_path;
  std::string image_path;
  uint64_t device_bytes = 8ull << 20;
  uint32_t self = 0;
  std::string announce;  // this node's client-visible "host:port"
};

// Volatile manager over the persisted slot table. Thread-safe: the server
// event loop routes through Lookup() while the migrator thread advances the
// migration state machine.
class ClusterState {
 public:
  // Opens (or creates) the meta heap per `opts` and binds the root.
  static std::unique_ptr<ClusterState> Open(const ClusterOptions& opts,
                                            std::string* error);
  // Binds into an existing runtime (crashcheck: several roots in one heap).
  static std::unique_ptr<ClusterState> Bind(core::JnvmRuntime* rt,
                                            const std::string& root_name,
                                            uint32_t self,
                                            const std::string& announce);
  ~ClusterState();

  // Clean shutdown: Psync + image save (image mode). Safe to skip on crash.
  bool Close();

  uint32_t self() const { return self_; }
  uint64_t epoch() const;
  std::string NodeAddr(uint32_t i) const;
  uint32_t node_count() const;
  uint64_t slots_owned() const;
  uint16_t OwnerOf(uint16_t slot) const;
  MigState mig_state() const;
  void MigRange(uint32_t* lo, uint32_t* hi, uint32_t* peer) const;

  // Per-slot routing (see Route). `asking` = the connection sent ASKING.
  Route Lookup(uint16_t slot, bool asking) const;

  // ---- Admin surface (CLUSTER MEET / SETSLOT ...) --------------------------
  bool Meet(uint32_t idx, const std::string& addr, std::string* err);
  bool AssignRange(uint32_t lo, uint32_t hi, uint32_t node, std::string* err);

  // ---- Migration state machine ---------------------------------------------
  // Source side.
  bool StartMigrating(uint32_t lo, uint32_t hi, uint32_t peer, std::string* err);
  bool EnterHandoff(std::string* err);
  bool FinishMigration(std::string* err);
  bool AbortMigration(std::string* err);
  // Destination side.
  bool StartImporting(uint32_t lo, uint32_t hi, uint32_t peer, std::string* err);
  bool CommitImport(uint32_t lo, uint32_t hi, uint64_t new_epoch, std::string* err);
  bool AbortImport(std::string* err);
  // True when this node owns every slot of [lo, hi] (MIGSTART "+OWNED").
  bool OwnsRange(uint32_t lo, uint32_t hi) const;

  // Lifetime counters for STATS (volatile; restart resets them).
  uint64_t migrations_out() const { return migrations_out_.load(std::memory_order_relaxed); }
  uint64_t migrations_in() const { return migrations_in_.load(std::memory_order_relaxed); }

  // Human-readable summary (CLUSTER INFO, jnvm_inspect --summary).
  std::string Describe() const;

  // The root-map name the meta root binds under.
  static const char* RootName();

 private:
  ClusterState() = default;
  void BindRoot(const std::string& root_name, uint32_t self,
                const std::string& announce);
  void RecoverLocked();
  void PersistMigRecordLocked(MigState s, uint32_t peer, uint32_t lo, uint32_t hi);
  void PersistOwnerRangeLocked(uint32_t lo, uint32_t hi, uint16_t node);
  void PersistEpochLocked(uint64_t v);
  bool RangeOwnedByLocked(uint32_t lo, uint32_t hi, uint16_t node) const;

  mutable std::mutex mu_;
  std::unique_ptr<nvm::PmemDevice> dev_;       // null when Bind()-attached
  std::unique_ptr<core::JnvmRuntime> rt_own_;  // null when Bind()-attached
  core::JnvmRuntime* rt_ = nullptr;
  core::Handle<ClusterMetaRoot> root_;
  std::string image_path_;

  // Volatile mirrors of the persisted table (mu_).
  uint64_t epoch_ = 0;
  uint32_t self_ = 0;
  uint32_t node_count_ = 0;
  std::array<std::string, ClusterMetaRoot::kMaxNodes> nodes_;
  std::vector<uint16_t> owners_;
  MigState mig_state_ = MigState::kNone;
  uint32_t mig_peer_ = 0, mig_lo_ = 0, mig_hi_ = 0;

  std::atomic<uint64_t> migrations_out_{0};
  std::atomic<uint64_t> migrations_in_{0};
};

}  // namespace jnvm::cluster

#endif  // JNVM_SRC_CLUSTER_META_H_
