// Simulated Non-Volatile Main Memory device.
//
// This is the hardware substitute for the Intel Optane DC PMM used by the
// paper (see DESIGN.md §2). It provides:
//
//  * a flat byte-addressable region (DRAM-backed),
//  * the three architecture-agnostic persistence primitives of the paper
//    (§3.2.2): Pwb (clwb — queue a cache line for write-back), Pfence and
//    Psync (both sfence on Intel ADR platforms, as in the paper §4.4),
//  * an optional latency model so benchmarks feel the DRAM/NVM asymmetry,
//  * and, in *strict mode*, a faithful crash model: stores are tracked at
//    64-byte cache-line granularity; on a simulated power failure each line
//    that was dirtied but never covered by a Pwb+fence either survives (the
//    CPU happened to evict it) or rolls back to its last durable content —
//    chosen pseudo-randomly from a seed. Lines made durable by Pwb+fence
//    always survive. This is exactly the guarantee of clwb/sfence + ADR.
//
// Strict mode is single-threaded by design (it is a testing device); fast
// mode (strict=false) is thread-safe for data access and used by the
// benchmarks.
#ifndef JNVM_SRC_NVM_PMEM_DEVICE_H_
#define JNVM_SRC_NVM_PMEM_DEVICE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <unordered_map>

#include "src/common/check.h"
#include "src/common/clock.h"

namespace jnvm::nvm {

// Byte offset into the device. Offset 0 is valid device space, but the heap
// layer never hands it out, so 0 doubles as the null persistent reference.
using Offset = uint64_t;

inline constexpr size_t kCacheLine = 64;

// Thrown when a scheduled crash point is reached (strict mode). Tests catch
// it, call Crash(), and then run recovery on a reopened heap.
struct SimulatedCrash {
  uint64_t event_number = 0;
};

struct DeviceOptions {
  size_t size_bytes = 0;
  // Strict mode: track stores per cache line and support crash simulation.
  bool strict = false;
  // Latency model (all zero by default: tests run at memory speed).
  uint32_t read_delay_ns = 0;   // applied per ReadBytes call
  uint32_t write_delay_ns = 0;  // applied per WriteBytes call
  uint32_t pwb_delay_ns = 0;    // applied per Pwb
  uint32_t fence_delay_ns = 0;  // applied per Pfence/Psync
};

struct DeviceStats {
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
  uint64_t pwbs = 0;
  uint64_t pfences = 0;
  uint64_t psyncs = 0;
};

class PmemDevice {
 public:
  explicit PmemDevice(const DeviceOptions& opts);
  PmemDevice(const PmemDevice&) = delete;
  PmemDevice& operator=(const PmemDevice&) = delete;
  ~PmemDevice();

  size_t size() const { return opts_.size_bytes; }
  const DeviceOptions& options() const { return opts_; }
  bool strict() const { return opts_.strict; }

  // ---- Data access -------------------------------------------------------
  // Every persistent store MUST go through WriteBytes/Write so strict mode
  // can track it; reads always observe the current (cached) view.

  void ReadBytes(Offset off, void* dst, size_t n) const {
    JNVM_DCHECK(off + n <= opts_.size_bytes);
    if (opts_.read_delay_ns != 0) SpinFor(opts_.read_delay_ns);
    std::memcpy(dst, data_ + off, n);
    stats_reads_.fetch_add(1, std::memory_order_relaxed);
    stats_bytes_read_.fetch_add(n, std::memory_order_relaxed);
  }

  void WriteBytes(Offset off, const void* src, size_t n) {
    JNVM_DCHECK(off + n <= opts_.size_bytes);
    if (powered_off_) {
      return;  // a store after the simulated power cut reaches nothing
    }
    if (opts_.strict) {
      CrashTick();
      TrackStore(off, n, src, 0);
    }
    if (opts_.write_delay_ns != 0) SpinFor(opts_.write_delay_ns);
    std::memcpy(data_ + off, src, n);
    stats_writes_.fetch_add(1, std::memory_order_relaxed);
    stats_bytes_written_.fetch_add(n, std::memory_order_relaxed);
  }

  template <typename T>
  T Read(Offset off) const {
    static_assert(std::is_trivially_copyable_v<T>);
    T v;
    ReadBytes(off, &v, sizeof(T));
    return v;
  }

  template <typename T>
  void Write(Offset off, T v) {
    static_assert(std::is_trivially_copyable_v<T>);
    WriteBytes(off, &v, sizeof(T));
  }

  // Zeroes a range (bulk helper; tracked like a normal store).
  void Memset(Offset off, int value, size_t n);

  // ---- Persistence primitives (§3.2.2) -----------------------------------

  // Adds the cache line containing `off` to the write-pending queue.
  void Pwb(Offset off);
  // Queues every line overlapping [off, off+n).
  void PwbRange(Offset off, size_t n);
  // Orders preceding Pwbs/stores before succeeding ones; on this simulated
  // ADR platform (as on the paper's Intel machine) it also drains the queue,
  // making queued lines durable.
  void Pfence();
  // Same as Pfence plus guaranteed propagation to media.
  void Psync();

  // ---- Crash simulation (strict mode only) -------------------------------

  // Throws SimulatedCrash after `events` further persistence events
  // (stores, pwbs, fences). Pass 0 to trigger on the very next event.
  void ScheduleCrashAfter(uint64_t events);
  void CancelScheduledCrash();

  // Simulates a power failure: every line dirtied since its last fence
  // either keeps its current content (seeded coin flip: the CPU evicted it)
  // or reverts to its last durable content. Clears all tracking.
  //
  // Between the SimulatedCrash throw and this call the device is powered
  // off: every store/pwb/fence is silently dropped, so destructors running
  // while the crash exception unwinds (RAII commit guards and the like)
  // cannot mutate post-crash NVMM. Crash() restores power.
  void Crash(uint64_t eviction_seed);

  // Number of lines currently dirty-or-queued (i.e. not guaranteed durable).
  size_t UnflushedLineCount() const;

  // ---- Deterministic replay hooks (strict mode) --------------------------
  // The crash-consistency checker (src/crashcheck) re-executes a scripted
  // workload many times, crashing at every persistence-event index. These
  // two queries make that sound: the event count maps op boundaries to
  // crash points, and the trace hash (a running digest of every tracked
  // store/pwb/fence, content included) detects a replay that diverged from
  // the recording — crashing a diverged replay would test a different
  // interleaving than the one reported.

  // Total persistence events (stores, pwbs, fences) ticked so far. Crash
  // points are expressed as 1-based indices into this sequence; the event
  // that trips a scheduled crash is NOT applied.
  uint64_t PersistenceEventCount() const { return event_counter_; }
  // Running digest of the tracked-event sequence. Two runs with equal
  // hashes performed the same stores (offsets and bytes), flushes and
  // fences in the same order.
  uint64_t TraceHash() const { return trace_hash_; }

  // ---- Device images ------------------------------------------------------
  // A simulated DIMM can be saved to / loaded from a file — the equivalent
  // of the DAX file backing a real region. Unflushed strict-mode state is
  // NOT part of an image: quiesce (Psync) before saving. Saving with
  // unflushed lines fails (returns false, no file is written) — an image of
  // a half-flushed device would resurrect state the hardware never
  // guaranteed.

  bool SaveTo(const std::string& path) const;
  // Returns nullptr when the file is missing/corrupt. `opts.size_bytes` of
  // the loaded device comes from the image; other options apply as given.
  static std::unique_ptr<PmemDevice> LoadFrom(const std::string& path,
                                              DeviceOptions opts = {});

  // ---- DAX mode ------------------------------------------------------------
  // Maps `path` MAP_SHARED as the device's backing store — the moral
  // equivalent of a real DAX region. Unlike SaveTo/LoadFrom images (an
  // explicit quiesce-then-snapshot step), every store lands in the shared
  // mapping immediately, so the contents survive a `kill -9` of the process:
  // the kernel page cache holds the file's dirty pages independently of the
  // process's life. That is exactly the failure CI's cluster job injects —
  // process death, not power loss — and recovery reopens the heap from the
  // file as if from a machine that never lost power.
  //
  // Creates the file (sized to opts.size_bytes) when absent; otherwise the
  // existing file's size wins and *existed is set so the caller knows to run
  // recovery instead of Format. Strict mode is rejected (the crash model
  // tracks durability itself; mixing the two would double-model).
  static std::unique_ptr<PmemDevice> MapFile(const std::string& path,
                                             DeviceOptions opts, bool* existed,
                                             std::string* error);
  bool mapped() const { return mmapped_; }

  DeviceStats stats() const;
  void ResetStats();

  // Direct pointer into the current view. Used only by the Table 3 "C"
  // baseline benchmark and by read-mostly fast paths that bypass latency
  // accounting; never use it for persistent stores in strict mode.
  char* raw() { return data_; }
  const char* raw() const { return data_; }

 private:
  // DAX-mode constructor: adopts an mmap'd base instead of allocating.
  PmemDevice(const DeviceOptions& opts, char* mapped_base);

  struct LineState {
    std::array<char, kCacheLine> durable;  // content as of the last fence
    bool queued = false;                   // covered by a Pwb since dirtying
  };

  // Tracks a store's lines and folds it into the trace hash; `src` is the
  // written bytes (nullptr for Memset, which passes the fill value as
  // `content_tag` instead).
  void TrackStore(Offset off, size_t n, const void* src, uint64_t content_tag);
  void TraceNote(uint64_t kind, uint64_t a, uint64_t b);
  void CrashTick();
  void DrainQueued();

  DeviceOptions opts_;
  // Owned heap allocation (mmapped_ == false) or an mmap'd MAP_SHARED file
  // view (mmapped_ == true); the destructor delete[]s or munmaps to match.
  char* data_ = nullptr;
  bool mmapped_ = false;

  // Strict-mode tracking (single-threaded use).
  std::unordered_map<uint64_t, LineState> lines_;
  int64_t crash_countdown_ = -1;
  bool powered_off_ = false;  // set when a scheduled crash fires
  uint64_t event_counter_ = 0;
  uint64_t trace_hash_ = 0xcbf29ce484222325ull;

  mutable std::atomic<uint64_t> stats_reads_{0};
  mutable std::atomic<uint64_t> stats_bytes_read_{0};
  std::atomic<uint64_t> stats_writes_{0};
  std::atomic<uint64_t> stats_bytes_written_{0};
  std::atomic<uint64_t> stats_pwbs_{0};
  std::atomic<uint64_t> stats_pfences_{0};
  std::atomic<uint64_t> stats_psyncs_{0};
};

}  // namespace jnvm::nvm

#endif  // JNVM_SRC_NVM_PMEM_DEVICE_H_
